# Empty compiler generated dependencies file for ascan_cli.
# This may be replaced when dependencies are built.
