file(REMOVE_RECURSE
  "CMakeFiles/ascan_cli.dir/ascan_cli.cpp.o"
  "CMakeFiles/ascan_cli.dir/ascan_cli.cpp.o.d"
  "ascan_cli"
  "ascan_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
