file(REMOVE_RECURSE
  "CMakeFiles/test_batched_scan.dir/test_batched_scan.cpp.o"
  "CMakeFiles/test_batched_scan.dir/test_batched_scan.cpp.o.d"
  "test_batched_scan"
  "test_batched_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batched_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
