# Empty dependencies file for test_batched_scan.
# This may be replaced when dependencies are built.
