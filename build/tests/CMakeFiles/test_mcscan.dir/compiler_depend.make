# Empty compiler generated dependencies file for test_mcscan.
# This may be replaced when dependencies are built.
