file(REMOVE_RECURSE
  "CMakeFiles/test_mcscan.dir/test_mcscan.cpp.o"
  "CMakeFiles/test_mcscan.dir/test_mcscan.cpp.o.d"
  "test_mcscan"
  "test_mcscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
