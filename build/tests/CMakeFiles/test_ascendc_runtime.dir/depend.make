# Empty dependencies file for test_ascendc_runtime.
# This may be replaced when dependencies are built.
