file(REMOVE_RECURSE
  "CMakeFiles/test_ascendc_runtime.dir/test_ascendc_runtime.cpp.o"
  "CMakeFiles/test_ascendc_runtime.dir/test_ascendc_runtime.cpp.o.d"
  "test_ascendc_runtime"
  "test_ascendc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ascendc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
