# Empty compiler generated dependencies file for test_session_api.
# This may be replaced when dependencies are built.
