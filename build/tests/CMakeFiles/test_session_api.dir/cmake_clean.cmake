file(REMOVE_RECURSE
  "CMakeFiles/test_session_api.dir/test_session_api.cpp.o"
  "CMakeFiles/test_session_api.dir/test_session_api.cpp.o.d"
  "test_session_api"
  "test_session_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
