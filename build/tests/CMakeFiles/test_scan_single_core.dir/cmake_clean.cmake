file(REMOVE_RECURSE
  "CMakeFiles/test_scan_single_core.dir/test_scan_single_core.cpp.o"
  "CMakeFiles/test_scan_single_core.dir/test_scan_single_core.cpp.o.d"
  "test_scan_single_core"
  "test_scan_single_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scan_single_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
