# Empty compiler generated dependencies file for test_scan_single_core.
# This may be replaced when dependencies are built.
