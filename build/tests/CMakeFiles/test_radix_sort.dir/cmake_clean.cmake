file(REMOVE_RECURSE
  "CMakeFiles/test_radix_sort.dir/test_radix_sort.cpp.o"
  "CMakeFiles/test_radix_sort.dir/test_radix_sort.cpp.o.d"
  "test_radix_sort"
  "test_radix_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radix_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
