# Empty compiler generated dependencies file for test_topk_sampling.
# This may be replaced when dependencies are built.
