file(REMOVE_RECURSE
  "CMakeFiles/test_topk_sampling.dir/test_topk_sampling.cpp.o"
  "CMakeFiles/test_topk_sampling.dir/test_topk_sampling.cpp.o.d"
  "test_topk_sampling"
  "test_topk_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topk_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
