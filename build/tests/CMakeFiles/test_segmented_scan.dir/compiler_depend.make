# Empty compiler generated dependencies file for test_segmented_scan.
# This may be replaced when dependencies are built.
