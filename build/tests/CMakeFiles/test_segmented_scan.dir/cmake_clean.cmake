file(REMOVE_RECURSE
  "CMakeFiles/test_segmented_scan.dir/test_segmented_scan.cpp.o"
  "CMakeFiles/test_segmented_scan.dir/test_segmented_scan.cpp.o.d"
  "test_segmented_scan"
  "test_segmented_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_segmented_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
