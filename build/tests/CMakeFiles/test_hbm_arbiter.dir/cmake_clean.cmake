file(REMOVE_RECURSE
  "CMakeFiles/test_hbm_arbiter.dir/test_hbm_arbiter.cpp.o"
  "CMakeFiles/test_hbm_arbiter.dir/test_hbm_arbiter.cpp.o.d"
  "test_hbm_arbiter"
  "test_hbm_arbiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hbm_arbiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
