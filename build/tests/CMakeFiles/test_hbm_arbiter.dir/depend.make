# Empty dependencies file for test_hbm_arbiter.
# This may be replaced when dependencies are built.
