file(REMOVE_RECURSE
  "CMakeFiles/test_intrinsics.dir/test_intrinsics.cpp.o"
  "CMakeFiles/test_intrinsics.dir/test_intrinsics.cpp.o.d"
  "test_intrinsics"
  "test_intrinsics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intrinsics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
