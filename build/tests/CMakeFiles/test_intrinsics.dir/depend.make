# Empty dependencies file for test_intrinsics.
# This may be replaced when dependencies are built.
