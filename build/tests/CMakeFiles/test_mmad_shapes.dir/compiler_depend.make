# Empty compiler generated dependencies file for test_mmad_shapes.
# This may be replaced when dependencies are built.
