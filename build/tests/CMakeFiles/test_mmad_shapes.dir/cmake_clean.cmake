file(REMOVE_RECURSE
  "CMakeFiles/test_mmad_shapes.dir/test_mmad_shapes.cpp.o"
  "CMakeFiles/test_mmad_shapes.dir/test_mmad_shapes.cpp.o.d"
  "test_mmad_shapes"
  "test_mmad_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mmad_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
