file(REMOVE_RECURSE
  "CMakeFiles/test_scan_strategies.dir/test_scan_strategies.cpp.o"
  "CMakeFiles/test_scan_strategies.dir/test_scan_strategies.cpp.o.d"
  "test_scan_strategies"
  "test_scan_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scan_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
