# Empty compiler generated dependencies file for test_scan_strategies.
# This may be replaced when dependencies are built.
