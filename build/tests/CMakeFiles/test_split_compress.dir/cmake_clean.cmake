file(REMOVE_RECURSE
  "CMakeFiles/test_split_compress.dir/test_split_compress.cpp.o"
  "CMakeFiles/test_split_compress.dir/test_split_compress.cpp.o.d"
  "test_split_compress"
  "test_split_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_split_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
