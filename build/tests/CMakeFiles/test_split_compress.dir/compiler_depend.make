# Empty compiler generated dependencies file for test_split_compress.
# This may be replaced when dependencies are built.
