file(REMOVE_RECURSE
  "CMakeFiles/ascan_core.dir/ascan.cpp.o"
  "CMakeFiles/ascan_core.dir/ascan.cpp.o.d"
  "libascan_core.a"
  "libascan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
