file(REMOVE_RECURSE
  "libascan_core.a"
)
