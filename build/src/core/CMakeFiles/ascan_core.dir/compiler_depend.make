# Empty compiler generated dependencies file for ascan_core.
# This may be replaced when dependencies are built.
