# Empty compiler generated dependencies file for ascan_kernels.
# This may be replaced when dependencies are built.
