file(REMOVE_RECURSE
  "CMakeFiles/ascan_kernels.dir/batched_scan.cpp.o"
  "CMakeFiles/ascan_kernels.dir/batched_scan.cpp.o.d"
  "CMakeFiles/ascan_kernels.dir/copy_kernel.cpp.o"
  "CMakeFiles/ascan_kernels.dir/copy_kernel.cpp.o.d"
  "CMakeFiles/ascan_kernels.dir/mcscan.cpp.o"
  "CMakeFiles/ascan_kernels.dir/mcscan.cpp.o.d"
  "CMakeFiles/ascan_kernels.dir/radix_sort.cpp.o"
  "CMakeFiles/ascan_kernels.dir/radix_sort.cpp.o.d"
  "CMakeFiles/ascan_kernels.dir/reduce.cpp.o"
  "CMakeFiles/ascan_kernels.dir/reduce.cpp.o.d"
  "CMakeFiles/ascan_kernels.dir/reference.cpp.o"
  "CMakeFiles/ascan_kernels.dir/reference.cpp.o.d"
  "CMakeFiles/ascan_kernels.dir/sampling.cpp.o"
  "CMakeFiles/ascan_kernels.dir/sampling.cpp.o.d"
  "CMakeFiles/ascan_kernels.dir/scan_strategies.cpp.o"
  "CMakeFiles/ascan_kernels.dir/scan_strategies.cpp.o.d"
  "CMakeFiles/ascan_kernels.dir/scan_u.cpp.o"
  "CMakeFiles/ascan_kernels.dir/scan_u.cpp.o.d"
  "CMakeFiles/ascan_kernels.dir/scan_ul1.cpp.o"
  "CMakeFiles/ascan_kernels.dir/scan_ul1.cpp.o.d"
  "CMakeFiles/ascan_kernels.dir/segmented_scan.cpp.o"
  "CMakeFiles/ascan_kernels.dir/segmented_scan.cpp.o.d"
  "CMakeFiles/ascan_kernels.dir/sort_baseline.cpp.o"
  "CMakeFiles/ascan_kernels.dir/sort_baseline.cpp.o.d"
  "CMakeFiles/ascan_kernels.dir/split.cpp.o"
  "CMakeFiles/ascan_kernels.dir/split.cpp.o.d"
  "CMakeFiles/ascan_kernels.dir/topk.cpp.o"
  "CMakeFiles/ascan_kernels.dir/topk.cpp.o.d"
  "CMakeFiles/ascan_kernels.dir/vec_cumsum.cpp.o"
  "CMakeFiles/ascan_kernels.dir/vec_cumsum.cpp.o.d"
  "libascan_kernels.a"
  "libascan_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascan_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
