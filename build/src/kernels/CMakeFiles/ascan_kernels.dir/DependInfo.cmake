
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/batched_scan.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/batched_scan.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/batched_scan.cpp.o.d"
  "/root/repo/src/kernels/copy_kernel.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/copy_kernel.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/copy_kernel.cpp.o.d"
  "/root/repo/src/kernels/mcscan.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/mcscan.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/mcscan.cpp.o.d"
  "/root/repo/src/kernels/radix_sort.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/radix_sort.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/radix_sort.cpp.o.d"
  "/root/repo/src/kernels/reduce.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/reduce.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/reduce.cpp.o.d"
  "/root/repo/src/kernels/reference.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/reference.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/reference.cpp.o.d"
  "/root/repo/src/kernels/sampling.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/sampling.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/sampling.cpp.o.d"
  "/root/repo/src/kernels/scan_strategies.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/scan_strategies.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/scan_strategies.cpp.o.d"
  "/root/repo/src/kernels/scan_u.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/scan_u.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/scan_u.cpp.o.d"
  "/root/repo/src/kernels/scan_ul1.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/scan_ul1.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/scan_ul1.cpp.o.d"
  "/root/repo/src/kernels/segmented_scan.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/segmented_scan.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/segmented_scan.cpp.o.d"
  "/root/repo/src/kernels/sort_baseline.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/sort_baseline.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/sort_baseline.cpp.o.d"
  "/root/repo/src/kernels/split.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/split.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/split.cpp.o.d"
  "/root/repo/src/kernels/topk.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/topk.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/topk.cpp.o.d"
  "/root/repo/src/kernels/vec_cumsum.cpp" "src/kernels/CMakeFiles/ascan_kernels.dir/vec_cumsum.cpp.o" "gcc" "src/kernels/CMakeFiles/ascan_kernels.dir/vec_cumsum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ascendc/CMakeFiles/ascan_ascendc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ascan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ascan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
