file(REMOVE_RECURSE
  "libascan_kernels.a"
)
