# Empty compiler generated dependencies file for ascan_ascendc.
# This may be replaced when dependencies are built.
