file(REMOVE_RECURSE
  "CMakeFiles/ascan_ascendc.dir/context.cpp.o"
  "CMakeFiles/ascan_ascendc.dir/context.cpp.o.d"
  "libascan_ascendc.a"
  "libascan_ascendc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascan_ascendc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
