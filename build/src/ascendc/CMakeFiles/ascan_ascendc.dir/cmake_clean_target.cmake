file(REMOVE_RECURSE
  "libascan_ascendc.a"
)
