file(REMOVE_RECURSE
  "libascan_sim.a"
)
