file(REMOVE_RECURSE
  "CMakeFiles/ascan_sim.dir/hbm_arbiter.cpp.o"
  "CMakeFiles/ascan_sim.dir/hbm_arbiter.cpp.o.d"
  "CMakeFiles/ascan_sim.dir/l2_cache.cpp.o"
  "CMakeFiles/ascan_sim.dir/l2_cache.cpp.o.d"
  "CMakeFiles/ascan_sim.dir/report.cpp.o"
  "CMakeFiles/ascan_sim.dir/report.cpp.o.d"
  "CMakeFiles/ascan_sim.dir/scheduler.cpp.o"
  "CMakeFiles/ascan_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/ascan_sim.dir/trace_export.cpp.o"
  "CMakeFiles/ascan_sim.dir/trace_export.cpp.o.d"
  "libascan_sim.a"
  "libascan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
