# Empty compiler generated dependencies file for ascan_sim.
# This may be replaced when dependencies are built.
