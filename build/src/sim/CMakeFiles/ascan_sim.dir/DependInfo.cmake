
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/hbm_arbiter.cpp" "src/sim/CMakeFiles/ascan_sim.dir/hbm_arbiter.cpp.o" "gcc" "src/sim/CMakeFiles/ascan_sim.dir/hbm_arbiter.cpp.o.d"
  "/root/repo/src/sim/l2_cache.cpp" "src/sim/CMakeFiles/ascan_sim.dir/l2_cache.cpp.o" "gcc" "src/sim/CMakeFiles/ascan_sim.dir/l2_cache.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/sim/CMakeFiles/ascan_sim.dir/report.cpp.o" "gcc" "src/sim/CMakeFiles/ascan_sim.dir/report.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/ascan_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/ascan_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/sim/CMakeFiles/ascan_sim.dir/trace_export.cpp.o" "gcc" "src/sim/CMakeFiles/ascan_sim.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ascan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
