# Empty dependencies file for ascan_common.
# This may be replaced when dependencies are built.
