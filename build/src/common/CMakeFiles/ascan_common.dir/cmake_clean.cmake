file(REMOVE_RECURSE
  "CMakeFiles/ascan_common.dir/half.cpp.o"
  "CMakeFiles/ascan_common.dir/half.cpp.o.d"
  "CMakeFiles/ascan_common.dir/rng.cpp.o"
  "CMakeFiles/ascan_common.dir/rng.cpp.o.d"
  "CMakeFiles/ascan_common.dir/table.cpp.o"
  "CMakeFiles/ascan_common.dir/table.cpp.o.d"
  "libascan_common.a"
  "libascan_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascan_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
