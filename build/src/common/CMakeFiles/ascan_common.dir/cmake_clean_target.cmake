file(REMOVE_RECURSE
  "libascan_common.a"
)
