file(REMOVE_RECURSE
  "CMakeFiles/sort_and_select.dir/sort_and_select.cpp.o"
  "CMakeFiles/sort_and_select.dir/sort_and_select.cpp.o.d"
  "sort_and_select"
  "sort_and_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_and_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
