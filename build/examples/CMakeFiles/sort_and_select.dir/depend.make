# Empty dependencies file for sort_and_select.
# This may be replaced when dependencies are built.
