file(REMOVE_RECURSE
  "CMakeFiles/sequence_pooling.dir/sequence_pooling.cpp.o"
  "CMakeFiles/sequence_pooling.dir/sequence_pooling.cpp.o.d"
  "sequence_pooling"
  "sequence_pooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
