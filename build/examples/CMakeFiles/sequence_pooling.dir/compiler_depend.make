# Empty compiler generated dependencies file for sequence_pooling.
# This may be replaced when dependencies are built.
