file(REMOVE_RECURSE
  "CMakeFiles/llm_sampling.dir/llm_sampling.cpp.o"
  "CMakeFiles/llm_sampling.dir/llm_sampling.cpp.o.d"
  "llm_sampling"
  "llm_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
