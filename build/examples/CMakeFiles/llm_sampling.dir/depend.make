# Empty dependencies file for llm_sampling.
# This may be replaced when dependencies are built.
