file(REMOVE_RECURSE
  "CMakeFiles/tensor_masking.dir/tensor_masking.cpp.o"
  "CMakeFiles/tensor_masking.dir/tensor_masking.cpp.o.d"
  "tensor_masking"
  "tensor_masking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
