# Empty dependencies file for tensor_masking.
# This may be replaced when dependencies are built.
