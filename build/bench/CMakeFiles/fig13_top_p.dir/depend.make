# Empty dependencies file for fig13_top_p.
# This may be replaced when dependencies are built.
