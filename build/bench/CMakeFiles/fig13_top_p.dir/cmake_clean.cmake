file(REMOVE_RECURSE
  "CMakeFiles/fig13_top_p.dir/fig13_top_p.cpp.o"
  "CMakeFiles/fig13_top_p.dir/fig13_top_p.cpp.o.d"
  "fig13_top_p"
  "fig13_top_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_top_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
