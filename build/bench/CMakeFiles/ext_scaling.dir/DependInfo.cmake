
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_scaling.cpp" "bench/CMakeFiles/ext_scaling.dir/ext_scaling.cpp.o" "gcc" "bench/CMakeFiles/ext_scaling.dir/ext_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ascan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/ascan_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/ascendc/CMakeFiles/ascan_ascendc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ascan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ascan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
