# Empty dependencies file for fig03_single_core_scan.
# This may be replaced when dependencies are built.
