file(REMOVE_RECURSE
  "CMakeFiles/fig03_single_core_scan.dir/fig03_single_core_scan.cpp.o"
  "CMakeFiles/fig03_single_core_scan.dir/fig03_single_core_scan.cpp.o.d"
  "fig03_single_core_scan"
  "fig03_single_core_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_single_core_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
