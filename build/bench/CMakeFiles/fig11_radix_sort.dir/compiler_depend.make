# Empty compiler generated dependencies file for fig11_radix_sort.
# This may be replaced when dependencies are built.
