file(REMOVE_RECURSE
  "CMakeFiles/fig11_radix_sort.dir/fig11_radix_sort.cpp.o"
  "CMakeFiles/fig11_radix_sort.dir/fig11_radix_sort.cpp.o.d"
  "fig11_radix_sort"
  "fig11_radix_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_radix_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
