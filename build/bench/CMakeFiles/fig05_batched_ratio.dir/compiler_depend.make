# Empty compiler generated dependencies file for fig05_batched_ratio.
# This may be replaced when dependencies are built.
