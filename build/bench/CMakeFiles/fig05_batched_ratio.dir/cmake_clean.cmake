file(REMOVE_RECURSE
  "CMakeFiles/fig05_batched_ratio.dir/fig05_batched_ratio.cpp.o"
  "CMakeFiles/fig05_batched_ratio.dir/fig05_batched_ratio.cpp.o.d"
  "fig05_batched_ratio"
  "fig05_batched_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_batched_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
