# Empty dependencies file for ext_low_precision.
# This may be replaced when dependencies are built.
