file(REMOVE_RECURSE
  "CMakeFiles/ext_low_precision.dir/ext_low_precision.cpp.o"
  "CMakeFiles/ext_low_precision.dir/ext_low_precision.cpp.o.d"
  "ext_low_precision"
  "ext_low_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_low_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
