# Empty compiler generated dependencies file for bench_sim_host.
# This may be replaced when dependencies are built.
