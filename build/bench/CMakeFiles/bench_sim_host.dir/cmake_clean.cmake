file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_host.dir/bench_sim_host.cpp.o"
  "CMakeFiles/bench_sim_host.dir/bench_sim_host.cpp.o.d"
  "bench_sim_host"
  "bench_sim_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
