file(REMOVE_RECURSE
  "CMakeFiles/fig10_compress.dir/fig10_compress.cpp.o"
  "CMakeFiles/fig10_compress.dir/fig10_compress.cpp.o.d"
  "fig10_compress"
  "fig10_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
