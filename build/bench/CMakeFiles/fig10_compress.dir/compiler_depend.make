# Empty compiler generated dependencies file for fig10_compress.
# This may be replaced when dependencies are built.
