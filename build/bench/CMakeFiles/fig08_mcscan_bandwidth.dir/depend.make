# Empty dependencies file for fig08_mcscan_bandwidth.
# This may be replaced when dependencies are built.
