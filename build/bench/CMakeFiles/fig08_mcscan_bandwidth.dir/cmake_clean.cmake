file(REMOVE_RECURSE
  "CMakeFiles/fig08_mcscan_bandwidth.dir/fig08_mcscan_bandwidth.cpp.o"
  "CMakeFiles/fig08_mcscan_bandwidth.dir/fig08_mcscan_bandwidth.cpp.o.d"
  "fig08_mcscan_bandwidth"
  "fig08_mcscan_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_mcscan_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
