file(REMOVE_RECURSE
  "CMakeFiles/fig09_mcscan_dtypes.dir/fig09_mcscan_dtypes.cpp.o"
  "CMakeFiles/fig09_mcscan_dtypes.dir/fig09_mcscan_dtypes.cpp.o.d"
  "fig09_mcscan_dtypes"
  "fig09_mcscan_dtypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mcscan_dtypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
