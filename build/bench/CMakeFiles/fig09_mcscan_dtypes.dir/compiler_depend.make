# Empty compiler generated dependencies file for fig09_mcscan_dtypes.
# This may be replaced when dependencies are built.
