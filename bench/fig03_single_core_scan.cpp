// Fig. 3: execution time of the CumSum AscendC API (vec_only) versus ScanU
// and ScanUL1 (log-log in the paper). Single AI core, s = 128.
//
// Paper result: for sufficiently large inputs, ScanU is ~5x and ScanUL1
// ~9.6x faster than the vector-only baseline; ScanUL1 ~2x over ScanU; at
// small lengths all three are launch-overhead-bound (flat).
#include "bench_common.hpp"
#include "kernels/scan_u.hpp"
#include "kernels/scan_ul1.hpp"
#include "kernels/vec_cumsum.hpp"

using namespace ascend;
using namespace ascend::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("Fig. 3", "single-core scan: CumSum API vs ScanU vs ScanUL1");

  acc::Device dev(sim::MachineConfig::single_core());
  Table table({"n", "vec_only_us", "scanU_us", "scanUL1_us", "vec/scanU",
               "vec/scanUL1", "scanU/scanUL1"});

  const int max_pow = args.quick ? 20 : 22;
  for (int p = 10; p <= max_pow; p += args.quick ? 2 : 1) {
    const std::size_t n = 1ull << p;
    auto x = dev.alloc<half>(n, half(0.0f));
    auto y = dev.alloc<half>(n, half(0.0f));
    const double tv = kernels::vec_cumsum(dev, x.tensor(), y.tensor(), n)
                          .time_s;
    const double tu =
        kernels::scan_u(dev, x.tensor(), y.tensor(), n, 128).time_s;
    const double tul =
        kernels::scan_ul1(dev, x.tensor(), y.tensor(), n, 128).time_s;
    table.add_row({static_cast<std::int64_t>(n), tv * 1e6, tu * 1e6,
                   tul * 1e6, tv / tu, tv / tul, tu / tul});
  }
  table.print(std::cout);
  std::printf("\npaper: vec/ScanU -> ~5x, vec/ScanUL1 -> ~9.6x, "
              "ScanU/ScanUL1 -> ~2x at large n\n");
  return 0;
}
