// Ablation A3: scan strategies from the literature (§2.1) head-to-head on
// the 910B model — the paper's MCScan (SSA-structured, cube-assisted)
// versus single-pass StreamScan [48] and decoupled look-back [36]
// implemented on the same AscendC layer (vector-only, 2N traffic).
//
// Why this matters: StreamScan/look-back move fewer bytes (2N vs MCScan's
// effective 16 per element through the L2), but on the split Ascend
// architecture cross-core communication goes through GM ("each data
// transfer between the AIC and AIV cores might be expensive", §3.1), so
// the serial tile chain of StreamScan pays a GM round-trip latency per
// tile. Decoupled look-back removes the serial chain and is the closest
// single-pass competitor.
#include "bench_common.hpp"
#include "kernels/mcscan.hpp"
#include "kernels/scan_strategies.hpp"

using namespace ascend;
using namespace ascend::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("Ablation A3",
               "scan strategies: MCScan vs StreamScan vs decoupled look-back");

  Table table({"n", "mcscan_us", "streamscan_us", "lookback_us",
               "mcscan_gbps", "streamscan_gbps", "lookback_gbps"});
  const int max_pow = args.quick ? 21 : 23;
  for (int p = 15; p <= max_pow; ++p) {
    const std::size_t n = 1ull << p;
    acc::Device dev;
    auto x = dev.alloc<half>(n, half(0.0f));
    auto y = dev.alloc<float>(n, 0.0f);
    const auto mc =
        kernels::mcscan<half, float>(dev, x.tensor(), y.tensor(), n, {});
    const auto ss = kernels::stream_scan(dev, x.tensor(), y.tensor(), n, {});
    const auto lb = kernels::lookback_scan(dev, x.tensor(), y.tensor(), n, {});
    table.add_row({static_cast<std::int64_t>(n), us(mc), us(ss), us(lb),
                   gbps(mc, n * 6), gbps(ss, n * 6), gbps(lb, n * 6)});
  }
  table.print(std::cout);
  std::printf(
      "\nreading: StreamScan is bound by one GM-latency hop per 8K tile; "
      "look-back removes the serial chain and competes with MCScan while "
      "moving fewer bytes — but spends all 40 vector cores on the local "
      "scans the cube computes for free in MCScan.\n");
  return 0;
}
