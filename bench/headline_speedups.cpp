// Headline-claims table: every scalar performance claim in the paper's
// abstract/introduction/§6 text, reproduced side by side with the value
// this repository measures.
#include "bench_common.hpp"
#include "kernels/copy_kernel.hpp"
#include "kernels/mcscan.hpp"
#include "kernels/radix_sort.hpp"
#include "kernels/scan_u.hpp"
#include "kernels/scan_ul1.hpp"
#include "kernels/sort_baseline.hpp"
#include "kernels/split.hpp"
#include "kernels/vec_cumsum.hpp"

using namespace ascend;
using namespace ascend::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("Headline claims", "paper text vs measured");
  const std::size_t n = args.quick ? (1u << 20) : (1u << 22);
  Rng rng(1);

  Table table({"claim", "paper", "measured"});

  double t_u, t_ul, t_vec;
  {
    acc::Device dev(sim::MachineConfig::single_core());
    auto x = dev.alloc<half>(n, half(0.0f));
    auto y = dev.alloc<half>(n, half(0.0f));
    t_vec = kernels::vec_cumsum(dev, x.tensor(), y.tensor(), n).time_s;
    t_u = kernels::scan_u(dev, x.tensor(), y.tensor(), n, 128).time_s;
    t_ul = kernels::scan_ul1(dev, x.tensor(), y.tensor(), n, 128).time_s;
  }
  table.add_row({std::string("ScanU vs vector-only CumSum"),
                 std::string("~5x"), t_vec / t_u});
  table.add_row({std::string("ScanUL1 vs vector-only CumSum"),
                 std::string("~9.6x"), t_vec / t_ul});
  table.add_row({std::string("ScanUL1 vs ScanU"), std::string("~2x"),
                 t_u / t_ul});

  // Fresh devices per measurement so no kernel benefits from another's
  // L2-resident data.
  double t1;
  {
    acc::Device dev;
    auto x = dev.alloc<half>(n, half(0.0f));
    auto y16 = dev.alloc<half>(n, half(0.0f));
    t1 = kernels::scan_u(dev, x.tensor(), y16.tensor(), n, 128).time_s;
  }
  ascan::Report mc;
  {
    acc::Device dev;
    auto x = dev.alloc<half>(n, half(0.0f));
    auto y32 = dev.alloc<float>(n, 0.0f);
    mc = kernels::mcscan<half, float>(dev, x.tensor(), y32.tensor(), n, {});
    table.add_row({std::string("MCScan vs ScanU (20 AI cores)"),
                   std::string("up to 15.2x"), t1 / mc.time_s});
    table.add_row({std::string("MCScan peak bandwidth fraction"),
                   std::string("up to 37.5%"),
                   100.0 * mc.bandwidth(n * 6) / 800e9});
  }
  {
    acc::Device dev;
    auto xi = dev.alloc<std::int8_t>(n, std::int8_t{0});
    auto yi = dev.alloc<std::int32_t>(n, 0);
    const auto mi = kernels::mcscan<std::int8_t, std::int32_t>(
        dev, xi.tensor(), yi.tensor(), n, {});
    table.add_row({std::string("MCScan int8 vs f16 elements/s"),
                   std::string("~+10%"),
                   100.0 * (mi.elements_per_s(n) / mc.elements_per_s(n) -
                            1.0)});
  }

  {
    acc::Device dev;
    auto x = dev.upload(rng.uniform_f16(n, -1.0, 1.0));
    auto mask = dev.upload(rng.mask_i8(n, 0.5));
    auto out = dev.alloc<half>(n);
    const auto c = kernels::compress(dev, x.tensor(), mask.tensor(),
                                     out.tensor(), n, {});
    table.add_row({std::string("Compress peak bandwidth fraction"),
                   std::string("up to ~20%"),
                   100.0 * c.report.bandwidth(n * 3 + c.num_true * 2) /
                       800e9});
  }

  {
    acc::Device dev;
    auto keys = dev.upload(rng.uniform_f16(n, -100.0, 100.0));
    auto ok = dev.alloc<half>(n);
    auto oi = dev.alloc<std::int32_t>(n);
    const auto r = kernels::radix_sort_f16(dev, keys.tensor(), ok.tensor(),
                                           oi.tensor(), n, {});
    const auto b = kernels::sort_baseline_f16(dev, keys.tensor(), ok.tensor(),
                                              oi.tensor(), n, false);
    table.add_row({std::string("radix sort vs torch.sort (large n)"),
                   std::string("1.3x-3.3x"), b.time_s / r.time_s});
  }

  table.print(std::cout);
  return 0;
}
