// Shared helpers for the figure-reproduction benches.
//
// Every binary regenerates one table/figure of the paper's evaluation
// (§6); run with --quick for a reduced sweep (CI) or no argument for the
// full sweep used in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/ascan.hpp"

namespace ascend::bench {

struct BenchArgs {
  bool quick = false;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        a.quick = true;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf("usage: %s [--quick]\n", argv[0]);
        std::exit(0);
      }
    }
    return a;
  }
};

inline void print_header(const char* figure, const char* what) {
  std::printf("==================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("machine: simulated Ascend 910B4 (20 AIC + 40 AIV, "
              "HBM 800 GB/s)\n");
  std::printf("==================================================\n");
}

/// GB/s from useful bytes (the paper's reporting convention: input read +
/// output written).
inline double gbps(const ascan::Report& rep, std::uint64_t useful_bytes) {
  return rep.bandwidth(useful_bytes) / 1e9;
}

inline double ms(const ascan::Report& rep) { return rep.time_s * 1e3; }
inline double us(const ascan::Report& rep) { return rep.time_s * 1e6; }

}  // namespace ascend::bench
