// Extension E2: strong scaling of MCScan over the AI-core count — the
// curve behind the paper's "15.2x with all available (20) cube cores and
// vector cores" claim, plus the cube-assisted reduction of [12] as a
// second data point for the cube-accumulation path.
#include "bench_common.hpp"
#include "kernels/mcscan.hpp"
#include "kernels/reduce.hpp"
#include "kernels/scan_u.hpp"

using namespace ascend;
using namespace ascend::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("Extension E2", "MCScan strong scaling over AI cores");

  const std::size_t n = args.quick ? (1u << 20) : (1u << 22);
  double t1 = 0.0;
  Table table({"cores", "time_us", "speedup_vs_1", "gbps"});
  for (int cores : {1, 2, 4, 8, 12, 16, 20}) {
    acc::Device dev;
    auto x = dev.alloc<half>(n, half(0.0f));
    auto y = dev.alloc<float>(n, 0.0f);
    const auto r = kernels::mcscan<half, float>(dev, x.tensor(), y.tensor(),
                                                n, {.blocks = cores});
    if (cores == 1) t1 = r.time_s;
    table.add_row({static_cast<std::int64_t>(cores), us(r), t1 / r.time_s,
                   gbps(r, n * 6)});
  }
  table.print(std::cout);

  {
    acc::Device dev;
    auto x = dev.alloc<half>(n, half(0.0f));
    auto y16 = dev.alloc<half>(n, half(0.0f));
    const double tu =
        kernels::scan_u(dev, x.tensor(), y16.tensor(), n, 128).time_s;
    acc::Device dev2;
    auto x2 = dev2.alloc<half>(n, half(0.0f));
    auto y2 = dev2.alloc<float>(n, 0.0f);
    const double tm = kernels::mcscan<half, float>(dev2, x2.tensor(),
                                                   y2.tensor(), n, {})
                          .time_s;
    std::printf("\nMCScan(20 cores) vs single-core ScanU: %.1fx "
                "(paper: 15.2x)\n", tu / tm);
  }

  std::printf("\ncube-accumulated reduction vs vector reduction:\n");
  Table rt({"n", "cube_us", "vector_us", "cube/vector"});
  for (int p = 18; p <= (args.quick ? 20 : 22); p += 2) {
    const std::size_t m = 1ull << p;
    acc::Device dev;
    auto x = dev.alloc<half>(m, half(1.0f));
    const auto rc = kernels::reduce_cube(dev, x.tensor(), m, {});
    const auto rv = kernels::reduce_vector(dev, x.tensor(), m);
    rt.add_row({static_cast<std::int64_t>(m), us(rc.report), us(rv.report),
                rv.report.time_s / rc.report.time_s});
  }
  rt.print(std::cout);
  return 0;
}
