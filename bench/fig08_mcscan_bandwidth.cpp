// Fig. 8: bandwidth of MCScan (Algorithm 3) for s = 32/64/128 versus the
// copy kernel (torch.clone) and the baseline torch.cumsum.
//
// Paper results: s = 128 is best and reaches up to 37.5% of the 800 GB/s
// peak (= 300 GB/s); the copy approaches the peak for working sets below
// the L2 capacity; the baseline is flat and slow; MCScan saturates at
// 15.2x over single-core ScanU.
//
// Reporting convention (paper): useful bytes = input read + output
// written. MCScan emits fp32 for fp16 input, so useful = n*(2+4) bytes;
// copy is n*(2+2).
#include "bench_common.hpp"
#include "kernels/copy_kernel.hpp"
#include "kernels/mcscan.hpp"
#include "kernels/scan_u.hpp"
#include "kernels/vec_cumsum.hpp"

using namespace ascend;
using namespace ascend::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("Fig. 8",
               "MCScan bandwidth vs copy (torch.clone) and torch.cumsum");

  Table table({"n", "mcscan_s32", "mcscan_s64", "mcscan_s128", "copy",
               "baseline_cumsum"});
  const int max_pow = args.quick ? 21 : 23;
  for (int p = 13; p <= max_pow; ++p) {
    const std::size_t n = 1ull << p;
    acc::Device dev;  // fresh L2 per size
    auto x = dev.alloc<half>(n, half(0.0f));
    auto y32 = dev.alloc<float>(n, 0.0f);
    auto y16 = dev.alloc<half>(n, half(0.0f));

    std::vector<Table::Cell> row{static_cast<std::int64_t>(n)};
    for (std::size_t s : {std::size_t{32}, std::size_t{64},
                          std::size_t{128}}) {
      const auto rep = kernels::mcscan<half, float>(dev, x.tensor(),
                                                    y32.tensor(), n, {.s = s});
      row.push_back(gbps(rep, n * (2 + 4)));
    }
    const auto copy = kernels::copy_kernel<half>(dev, x.tensor(),
                                                 y16.tensor(), n);
    row.push_back(gbps(copy, n * (2 + 2)));
    const auto base = kernels::vec_cumsum(dev, x.tensor(), y16.tensor(), n);
    row.push_back(gbps(base, n * (2 + 2)));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // The saturation speedup over single-core ScanU the paper quotes.
  {
    const std::size_t n = 1ull << max_pow;
    acc::Device dev;
    auto x = dev.alloc<half>(n, half(0.0f));
    auto y32 = dev.alloc<float>(n, 0.0f);
    auto y16 = dev.alloc<half>(n, half(0.0f));
    const double t_mc =
        kernels::mcscan<half, float>(dev, x.tensor(), y32.tensor(), n, {})
            .time_s;
    const double t_u =
        kernels::scan_u(dev, x.tensor(), y16.tensor(), n, 128).time_s;
    std::printf("\nMCScan speedup over ScanU at n=%zu: %.1fx (paper: 15.2x)\n",
                n, t_u / t_mc);
  }
  std::printf("paper: s=128 best, up to 300 GB/s (37.5%% of 800); copy near "
              "peak below L2 (96 MiB working set)\n");
  return 0;
}
