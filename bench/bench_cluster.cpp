// Multi-device cluster serving benchmark: throughput scaling and tail
// latency of serve::Cluster versus a single-device serve::Engine.
//
//   bench_cluster [--quick] [--chaos] [--json PATH] [--ref-rps RPS]
//   bench_cluster --stress SECONDS [--seed S]
//
// Two claims are measured:
//
//  * Capacity scaling — a 4-device cluster sustains >= 3x the simulated
//    serving capacity of one device. The host running this bench has one
//    core, so *wall-clock* throughput cannot scale with device count;
//    capacity is therefore measured in simulated device time: every
//    response carries (device, launch_id, report.time_s), launches are
//    deduplicated per device, and capacity = completed requests divided by
//    the busiest device's summed simulated launch time. Single device and
//    cluster are measured with the identical formula. --ref-rps (the
//    saturating batched wall-clock figure from BENCH_serve.json) is
//    recorded alongside for context.
//
//  * Work stealing cuts the bulk tail — a hot-key burst (every request
//    sharing one GroupKey) pins the whole backlog on its affinity device;
//    with stealing enabled, idle siblings take formed bulk batches and the
//    simulated completion-time p99 of the burst drops. Simulated
//    completion of a request = prefix sum of its device's unique launch
//    times up to and including its own launch.
//
// --chaos adds a third scenario: a closed-loop load where a seeded
// persistent fault kills 1 of 4 devices mid-run. Every request records the
// bad device's health state at submit time, so per-request wall latency
// (Response::timing.total_s) splits into before / during / after the
// quarantine. Reported: availability (Ok fraction — the failover machinery
// should hold it at 1.0), failover latency (requests resumed on another
// device from their tile checkpoint), and the phase p50/p99 showing the
// tail spike while faulted batches re-dispatch and its recovery once
// placement stops offering the dead device.
//
// --stress SECONDS runs a seeded multi-client mixed workload (all four op
// kinds, invalid requests sprinkled in) against a 4-device cluster for the
// given wall time, then verifies every future resolved and the merged
// metrics agree with the futures' testimony. Nonzero exit on violation —
// this is the CI cluster stress job.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "kernels/vec_ref.hpp"
#include "serve/cluster.hpp"

using namespace ascend;
using namespace ascend::bench;
using namespace ascan::serve;

namespace {

std::vector<ascan::half> bit_row(Rng& rng, std::size_t n) {
  std::vector<ascan::half> x(n);
  for (auto& v : x) v = ascan::half(rng.bernoulli(0.5) ? 1.0f : 0.0f);
  return x;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  return v[lo] + (v[hi] - v[lo]) * (pos - static_cast<double>(lo));
}

// ---------------------------------------------------------------------------
// Simulated-time reconstruction from response (device, launch_id) tags.

struct DeviceSim {
  std::uint64_t served = 0;    ///< Ok responses this device produced
  std::uint64_t launches = 0;  ///< unique coalesced launches
  double busy_s = 0;           ///< summed simulated launch time
};

/// Per-device simulated busy time, deduplicating batched launches that
/// several responses share.
std::map<int, DeviceSim> device_sim(const std::vector<Response>& rs) {
  std::map<int, std::map<std::uint64_t, double>> uniq;
  std::map<int, DeviceSim> out;
  for (const auto& r : rs) {
    if (!r.ok() || r.launch_id == 0) continue;
    uniq[r.device][r.launch_id] = r.report.time_s;
    out[r.device].served++;
  }
  for (const auto& [dev, launches] : uniq) {
    auto& d = out[dev];
    d.launches = launches.size();
    for (const auto& [id, t] : launches) d.busy_s += t;
  }
  return out;
}

/// Simulated completion time of every Ok response: devices run their own
/// launches back to back (concurrently with each other), so a request
/// finishes at the prefix sum of its device's launch times up to and
/// including its own launch_id.
std::vector<double> sim_completions(const std::vector<Response>& rs) {
  std::map<int, std::map<std::uint64_t, double>> uniq;
  for (const auto& r : rs) {
    if (r.ok() && r.launch_id != 0) uniq[r.device][r.launch_id] = r.report.time_s;
  }
  std::map<int, std::map<std::uint64_t, double>> finish;
  for (const auto& [dev, launches] : uniq) {
    double acc = 0;
    for (const auto& [id, t] : launches) {
      acc += t;
      finish[dev][id] = acc;
    }
  }
  std::vector<double> out;
  out.reserve(rs.size());
  for (const auto& r : rs) {
    if (r.ok() && r.launch_id != 0) out.push_back(finish[r.device][r.launch_id]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Capacity scaling: closed-loop mixed-key load, single device vs cluster.

struct CapacityResult {
  std::string name;
  std::uint64_t completed = 0;
  double wall_s = 0;
  double wall_rps = 0;
  double busiest_sim_s = 0;
  double sim_capacity_rps = 0;
  std::uint64_t steals = 0;
  std::uint64_t stolen_requests = 0;
  std::map<int, DeviceSim> devices;
  std::vector<MetricsSnapshot> shards;
  vecref::VerifyStats verify;  ///< every Ok response checked bit-for-bit
};

/// Saturating open loop: `total` requests are submitted as fast as the
/// submitter threads can go, then every future is harvested. The backlog
/// stays deep enough that each device forms full batches — the capacity
/// question is "how fast can the fleet chew through a saturating queue",
/// not "how well does it idle". Mixed row lengths and tiles spread the
/// traffic over eight GroupKeys so affinity placement has something to
/// distribute.
struct DriveResult {
  std::vector<Response> responses;
  double wall_s = 0;
  vecref::VerifyStats verify;
};

DriveResult drive(const std::function<std::future<Response>(Request)>& submit,
                  std::size_t total, std::uint64_t seed) {
  constexpr int kSubmitters = 4;
  std::vector<std::future<Response>> futs(total);
  std::vector<std::vector<ascan::half>> inputs(total);
  std::vector<std::thread> threads;
  threads.reserve(kSubmitters);
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < kSubmitters; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed + static_cast<std::uint64_t>(c) * 7919);
      for (std::size_t i = static_cast<std::size_t>(c); i < total;
           i += kSubmitters) {
        const std::size_t n = 128 + 64 * (i % 4);
        const std::size_t tile = (i % 2 != 0) ? 64 : 128;
        inputs[i] = bit_row(rng, n);
        futs[i] = submit(
            Request::cumsum(inputs[i], tile, false, Priority::Bulk));
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<Response> rs;
  rs.reserve(total);
  for (auto& f : futs) rs.push_back(f.get());
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Verify after the clock stops: every Ok response bit-compared against
  // the SIMD host reference (0/1 rows: the exact-comparison corpus). The
  // counters certify the throughput numbers are for correct answers; the
  // check itself stays outside the measured wall time.
  DriveResult out;
  out.wall_s = wall;
  for (std::size_t i = 0; i < total; ++i) {
    if (rs[i].ok()) {
      vecref::verify_cumsum(inputs[i], rs[i].values_f16, out.verify);
    }
  }
  out.responses = std::move(rs);
  return out;
}

CapacityResult finish_capacity(std::string name, DriveResult d) {
  CapacityResult out;
  out.name = std::move(name);
  out.wall_s = d.wall_s;
  out.verify = d.verify;
  const auto& rs = d.responses;
  out.devices = device_sim(rs);
  for (const auto& [dev, d] : out.devices) {
    out.completed += d.served;
    out.busiest_sim_s = std::max(out.busiest_sim_s, d.busy_s);
  }
  out.wall_rps =
      d.wall_s > 0 ? static_cast<double>(out.completed) / d.wall_s : 0;
  out.sim_capacity_rps =
      out.busiest_sim_s > 0
          ? static_cast<double>(out.completed) / out.busiest_sim_s
          : 0;
  return out;
}

CapacityResult run_capacity_single(const BatchPolicy& policy,
                                   std::size_t total) {
  Engine engine({.policy = policy, .max_queue = 4 * total});
  auto d = drive(
      [&](Request r) { return engine.submit(std::move(r)); }, total, 100);
  engine.shutdown(ShutdownMode::Drain);
  auto out = finish_capacity("single_device", std::move(d));
  out.shards.push_back(engine.metrics());
  return out;
}

/// The monolithic control for the cluster row: the same four devices, but
/// served by ONE engine through one shared submission queue — the
/// configuration whose global host front end made the original cluster row
/// lose to a single device. Cluster-vs-this isolates what sharding the
/// front end (placement + per-device queues + stealing) is worth at equal
/// host parallelism; a cluster row below this one means the cluster front
/// end's own overhead regressed.
CapacityResult run_capacity_fleet_shared(const BatchPolicy& policy,
                                         std::size_t total) {
  Engine engine(
      {.policy = policy, .max_queue = 4 * total, .num_workers = 4});
  auto d = drive(
      [&](Request r) { return engine.submit(std::move(r)); }, total, 100);
  engine.shutdown(ShutdownMode::Drain);
  auto out = finish_capacity("fleet4_shared_queue", std::move(d));
  out.shards.push_back(engine.metrics());
  return out;
}

/// Wall-clock rps on a time-shared host is noisy; repeat the closed-loop
/// drive and keep the fastest run (the one least perturbed by unrelated
/// scheduling), merging the bit-exactness counters from every repeat so
/// the verification corpus still covers all of them.
template <typename Fn>
CapacityResult best_of(int reps, Fn&& run) {
  CapacityResult best = run();
  vecref::VerifyStats all = best.verify;
  for (int i = 1; i < reps; ++i) {
    CapacityResult r = run();
    all.merge(r.verify);
    if (r.wall_rps > best.wall_rps) best = std::move(r);
  }
  best.verify = all;
  return best;
}

CapacityResult run_capacity_cluster(const BatchPolicy& policy,
                                    std::size_t total) {
  Cluster cluster({.policy = policy,
                   .num_devices = 4,
                   .max_queue = 4 * total,
                   .steal_min_backlog = 8,
                   .steal_poll_s = 50e-6,
                   .spill_margin = 2});
  auto d = drive(
      [&](Request r) { return cluster.submit(std::move(r)); }, total, 100);
  cluster.shutdown(ShutdownMode::Drain);
  auto out = finish_capacity("cluster4_stealing", std::move(d));
  out.shards = cluster.per_device_metrics();
  const auto m = cluster.metrics();
  out.steals = m.steals;
  out.stolen_requests = m.stolen_requests;
  return out;
}

// ---------------------------------------------------------------------------
// Hot-key burst: one GroupKey's backlog, affinity-only vs work stealing.

struct BurstResult {
  std::string name;
  std::uint64_t completed = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  std::uint64_t steals = 0;
  std::uint64_t stolen_requests = 0;
  std::map<int, DeviceSim> devices;
};

BurstResult run_burst(bool stealing, int reqs) {
  Cluster cluster({.policy = {.max_batch = 8, .max_wait_s = 100e-6},
                   .num_devices = 4,
                   .max_queue = 2048,
                   .work_stealing = stealing,
                   .steal_min_backlog = 8,
                   .steal_poll_s = 50e-6,
                   // Placement stays pinned to the affinity device so work
                   // stealing is the only rebalancing mechanism measured.
                   .spill_margin = 1u << 20});
  Rng rng(42);
  std::vector<std::future<Response>> futs;
  futs.reserve(static_cast<std::size_t>(reqs));
  for (int i = 0; i < reqs; ++i) {
    futs.push_back(cluster.submit(
        Request::cumsum(bit_row(rng, 256), 128, false, Priority::Bulk)));
  }
  std::vector<Response> rs;
  rs.reserve(futs.size());
  for (auto& f : futs) rs.push_back(f.get());
  cluster.shutdown(ShutdownMode::Drain);

  BurstResult out;
  out.name = stealing ? "work_stealing" : "affinity_only";
  out.devices = device_sim(rs);
  for (const auto& [dev, d] : out.devices) out.completed += d.served;
  const auto done = sim_completions(rs);
  out.p50_us = percentile(done, 0.50) * 1e6;
  out.p95_us = percentile(done, 0.95) * 1e6;
  out.p99_us = percentile(done, 0.99) * 1e6;
  const auto m = cluster.metrics();
  out.steals = m.steals;
  out.stolen_requests = m.stolen_requests;
  return out;
}

// ---------------------------------------------------------------------------
// Chaos: a seeded persistent fault kills one device mid-run. Availability,
// failover latency, and the latency tail before / during / after the
// cluster quarantines the dead device.

struct ChaosPhase {
  std::uint64_t requests = 0;
  double p50_us = 0, p99_us = 0;
};

struct ChaosResult {
  std::uint64_t submitted = 0, ok = 0, failed = 0, rejected = 0;
  double availability = 0;
  int bad_device = -1;
  std::uint64_t failovers = 0, tiles_resumed = 0, health_transitions = 0,
                 canary_probes = 0, shed_brownout = 0, resumed_responses = 0;
  double failover_p50_us = 0, failover_max_us = 0;
  ChaosPhase before, during, after;
};

ChaosResult run_chaos(int reqs) {
  // One quarter of the traffic is a long multi-step shape (2048 elements at
  // tile 16: eight stepwise launches per batch), so faulted batches carry
  // mid-scan tile checkpoints. Kill that shape's affinity device — the
  // victim is guaranteed a steady share of checkpointable load. It serves
  // its first launches cleanly, then every launch faults: a hard device
  // death mid-run, not a transient blip.
  constexpr std::size_t kLongN = 2048, kLongTile = 16;
  Rng key_rng(1);
  const int kBad = static_cast<int>(
      group_key_hash(group_key(Request::cumsum(bit_row(key_rng, kLongN),
                                               kLongTile, false,
                                               Priority::Bulk))) %
      4);
  std::vector<sim::FaultPlan> plans(4);
  plans[static_cast<std::size_t>(kBad)] = sim::FaultPlan::dead_from_launch(6);
  HealthPolicy hp;
  hp.window = 8;
  // React on the very first fault, so no faulted batch is ever retried
  // locally on the dead device (a persistent fault makes that retry a
  // guaranteed loss).
  hp.min_samples = 1;
  // Keep the device down: this scenario measures the before/during/after
  // cut, not half-open readmission (canaries would blur the "after" tail).
  hp.quarantine_hold_s = 3600;
  Cluster cluster({.policy = {.max_batch = 8, .max_wait_s = 100e-6},
                   .num_devices = 4,
                   .max_queue = 2048,
                   .retry = {.max_attempts = 2, .backoff_s = 1e-6},
                   .device_fault_plans = plans,
                   // Stealing off and spill pinned so quarantine-driven
                   // placement is the only rebalancing mechanism measured.
                   .work_stealing = false,
                   .spill_margin = 1u << 20,
                   .health = hp});

  struct Sample {
    double us = 0;
    int phase = 0;  ///< 0 before, 1 during (faulting, not yet out), 2 after
    int resumed_from = -1;
    Status status = Status::Failed;
  };
  std::vector<Sample> samples(static_cast<std::size_t>(reqs));
  constexpr int kClients = 4;
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(2026 + static_cast<std::uint64_t>(c) * 7919);
      for (std::size_t i = next.fetch_add(1);
           i < static_cast<std::size_t>(reqs); i = next.fetch_add(1)) {
        const bool long_shape = i % 4 == 3;
        const std::size_t n = long_shape ? kLongN : 128 + 64 * (i % 4);
        const std::size_t tile = long_shape ? kLongTile
                                 : (i % 2 != 0) ? 64
                                                : 128;
        const auto h = cluster.device_health(kBad);
        const int phase = h == HealthState::Healthy        ? 0
                          : h == HealthState::Quarantined ? 2
                                                          : 1;
        auto fut = cluster.submit(
            Request::cumsum(bit_row(rng, n), tile, false, Priority::Bulk));
        const Response r = fut.get();
        samples[i] = {r.timing.total_s * 1e6, phase, r.resumed_from, r.status};
      }
    });
  }
  for (auto& t : clients) t.join();
  cluster.shutdown(ShutdownMode::Drain);

  ChaosResult out;
  out.bad_device = kBad;
  out.submitted = static_cast<std::uint64_t>(reqs);
  std::vector<double> lat[3], failover_lat;
  for (const auto& s : samples) {
    switch (s.status) {
      case Status::Ok: out.ok++; break;
      case Status::Rejected: out.rejected++; break;
      default: out.failed++; break;
    }
    if (s.status != Status::Ok) continue;
    lat[s.phase].push_back(s.us);
    if (s.resumed_from >= 0) failover_lat.push_back(s.us);
  }
  out.availability =
      reqs > 0 ? static_cast<double>(out.ok) / static_cast<double>(reqs) : 0;
  out.resumed_responses = failover_lat.size();
  out.failover_p50_us = percentile(failover_lat, 0.50);
  out.failover_max_us =
      failover_lat.empty()
          ? 0
          : *std::max_element(failover_lat.begin(), failover_lat.end());
  const auto phase_of = [&](int i) {
    ChaosPhase p;
    p.requests = lat[i].size();
    p.p50_us = percentile(lat[i], 0.50);
    p.p99_us = percentile(lat[i], 0.99);
    return p;
  };
  out.before = phase_of(0);
  out.during = phase_of(1);
  out.after = phase_of(2);
  const auto m = cluster.metrics();
  out.failovers = m.failovers;
  out.tiles_resumed = m.tiles_resumed;
  out.health_transitions = m.health_transitions;
  out.canary_probes = m.canary_probes;
  out.shed_brownout = m.shed_brownout;
  return out;
}

// ---------------------------------------------------------------------------
// Stress mode: seeded mixed workload, every-future-resolves verification.

Request random_request(Rng& rng) {
  const auto prio = rng.bernoulli(0.3) ? Priority::Interactive : Priority::Bulk;
  const std::size_t n = 32 + 16 * rng.next_below(4);
  switch (rng.next_below(4)) {
    case 0:
      return Request::cumsum(bit_row(rng, n), rng.bernoulli(0.5) ? 64 : 128,
                             rng.bernoulli(0.25), prio);
    case 1: {
      auto x = bit_row(rng, n);
      auto f = rng.mask_i8(n, 0.1);
      f[0] = 1;
      return Request::segmented_cumsum(std::move(x), std::move(f), prio);
    }
    case 2:
      return Request::sort(rng.uniform_f16(n, -10.0, 10.0), rng.bernoulli(0.5),
                           ascan::SortAlgo::Radix, prio);
    default:
      return Request::top_p(rng.token_probs_f16(128), 0.9, rng.next_double(),
                            128, prio);
  }
}

int run_stress(double seconds, std::uint64_t seed) {
  std::printf("cluster stress: %.0f s, seed %llu, 4 devices\n", seconds,
              static_cast<unsigned long long>(seed));
  Cluster cluster({.policy = {.max_batch = 8, .max_wait_s = 200e-6},
                   .num_devices = 4,
                   .max_queue = 128,
                   .interactive_reserve = 16,
                   .steal_min_backlog = 4,
                   .spill_margin = 2});
  constexpr int kClients = 4;
  std::atomic<std::uint64_t> submitted{0}, ok{0}, rejected{0}, cancelled{0},
      failed{0}, unresolved{0};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(seed + static_cast<std::uint64_t>(c) * 7919);
      std::deque<std::future<Response>> pending;
      const auto harvest = [&](std::future<Response>& f) {
        if (f.wait_for(std::chrono::seconds(30)) !=
            std::future_status::ready) {
          unresolved++;  // a dangling future: the bug this mode hunts
          return;
        }
        switch (f.get().status) {
          case Status::Ok: ok++; break;
          case Status::Rejected: rejected++; break;
          case Status::Cancelled: cancelled++; break;
          case Status::Failed: failed++; break;
        }
      };
      while (std::chrono::steady_clock::now() < deadline) {
        Request r = random_request(rng);
        if (rng.bernoulli(0.02)) r.x.clear();  // sprinkle invalid requests
        pending.push_back(cluster.submit(std::move(r)));
        submitted++;
        if (pending.size() > 512) {  // bound the resident future backlog
          harvest(pending.front());
          pending.pop_front();
        }
      }
      for (auto& f : pending) harvest(f);
    });
  }
  for (auto& t : clients) t.join();
  cluster.shutdown(ShutdownMode::Drain);

  const auto m = cluster.metrics();
  const std::uint64_t resolved = ok + rejected + cancelled + failed;
  std::printf("submitted %llu  ok %llu  rejected %llu  cancelled %llu  "
              "failed %llu  unresolved %llu\n",
              static_cast<unsigned long long>(submitted.load()),
              static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(rejected.load()),
              static_cast<unsigned long long>(cancelled.load()),
              static_cast<unsigned long long>(failed.load()),
              static_cast<unsigned long long>(unresolved.load()));
  std::printf("merged metrics: submitted %llu  admitted %llu  completed %llu  "
              "steals %llu  stolen %llu  spills %llu\n",
              static_cast<unsigned long long>(m.submitted),
              static_cast<unsigned long long>(m.admitted),
              static_cast<unsigned long long>(m.completed),
              static_cast<unsigned long long>(m.steals),
              static_cast<unsigned long long>(m.stolen_requests),
              static_cast<unsigned long long>(m.routed_spill));

  bool pass = true;
  const auto expect = [&](bool cond, const char* what) {
    if (!cond) {
      std::printf("VIOLATION: %s\n", what);
      pass = false;
    }
  };
  expect(unresolved.load() == 0, "every future resolves");
  expect(resolved == submitted.load(), "every submission accounted for");
  expect(m.submitted == submitted.load(), "metrics saw every submission");
  expect(m.rejected_capacity + m.rejected_invalid + m.rejected_shutdown ==
             rejected.load(),
         "rejection counters match futures");
  expect(m.admitted == m.completed + m.failed + m.cancelled,
         "no admitted request vanished");
  expect(m.completed == ok.load(), "completion counter matches futures");
  std::printf("stress: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

// ---------------------------------------------------------------------------

void devices_json(std::ostringstream& os, const CapacityResult& r) {
  os << "[";
  bool first = true;
  for (const auto& [dev, d] : r.devices) {
    const auto* shard =
        static_cast<std::size_t>(dev) < r.shards.size()
            ? &r.shards[static_cast<std::size_t>(dev)]
            : nullptr;
    os << (first ? "" : ", ") << "{\"device\": " << dev
       << ", \"served\": " << d.served << ", \"launches\": " << d.launches
       << ", \"sim_busy_s\": " << d.busy_s << ", \"occupancy\": "
       << (shard ? shard->avg_batch_occupancy : 0.0) << "}";
    first = false;
  }
  os << "]";
}

std::string to_json(const CapacityResult& single, const CapacityResult& fleet,
                    const CapacityResult& cluster, const BurstResult& affinity,
                    const BurstResult& stealing, double ref_rps,
                    unsigned host_cores, const ChaosResult* chaos) {
  const double sim_ratio =
      single.sim_capacity_rps > 0
          ? cluster.sim_capacity_rps / single.sim_capacity_rps
          : 0;
  // A 1-core host time-slices the cluster's device workers against each
  // other and the submitters, so a single device with the whole core to
  // itself can win on wall clock no matter how lean the front end is. The
  // single-device ordering is therefore asserted only when the host can
  // actually run the fleet concurrently; the fleet4_shared_queue ordering
  // has no such excuse (same devices, same thread count) and is asserted
  // everywhere — with a small tolerance, since both sides are wall clock.
  const bool host_parallel = host_cores >= 4 /*devices*/ + 1;
  std::ostringstream os;
  os << "{\n  \"bench\": \"cluster_serving\",\n"
     << "  \"machine\": \"4x simulated Ascend 910B4, " << host_cores
     << " host core(s)\",\n"
     << "  \"note\": \"wall-clock rps cannot scale with device count on a "
        "single-core host; capacity is completed requests / busiest device's "
        "summed simulated launch time, measured identically for every row; "
        "wall_rps rows are best-of-N closed-loop runs\",\n"
     << "  \"throughput\": {\n";
  for (const auto* r : {&single, &fleet, &cluster}) {
    os << "    \"" << r->name << "\": {\"completed\": " << r->completed
       << ", \"wall_s\": " << r->wall_s << ", \"wall_rps\": " << r->wall_rps
       << ", \"busiest_sim_s\": " << r->busiest_sim_s
       << ", \"sim_capacity_rps\": " << r->sim_capacity_rps
       << ", \"steals\": " << r->steals
       << ", \"stolen_requests\": " << r->stolen_requests
       << ", \"verified\": " << r->verify.requests
       << ", \"mismatches\": " << r->verify.mismatches
       << ", \"devices\": ";
    devices_json(os, *r);
    os << "},\n";
  }
  os << "    \"capacity_ratio\": " << sim_ratio
     << ",\n    \"ref_saturating_wall_rps\": " << ref_rps
     << ",\n    \"sim_capacity_vs_ref\": "
     << (ref_rps > 0 ? cluster.sim_capacity_rps / ref_rps : 0)
     << ",\n    \"ordering\": {\"note\": \"expected orderings: cluster sim "
        "capacity must scale (>= 3x one device); cluster wall rps must hold "
        "within 10% of the same four devices behind one shared-queue engine "
        "(sharded front end vs shared front end, equal host parallelism — "
        "asserted at exit alongside bit_exact in full runs); and cluster "
        "wall rps must beat one device outright when the host has cores to "
        "run the fleet concurrently (annotated, not asserted, when "
        "host_limited)\", "
        "\"host_limited\": "
     << (host_parallel ? "false" : "true")
     << ", \"cluster_over_fleet_wall_ratio\": "
     << (fleet.wall_rps > 0 ? cluster.wall_rps / fleet.wall_rps : 0)
     << ", \"cluster_over_single_wall_ratio\": "
     << (single.wall_rps > 0 ? cluster.wall_rps / single.wall_rps : 0)
     << ", \"cluster_wall_holds_vs_shared_queue_fleet\": "
     << (cluster.wall_rps >= 0.90 * fleet.wall_rps ? "true" : "false")
     << ", \"cluster_wall_ge_single\": "
     << (cluster.wall_rps >= single.wall_rps ? "true" : "false")
     << ", \"cluster_sim_capacity_ge_3x\": "
     << (sim_ratio >= 3.0 ? "true" : "false") << ", \"bit_exact\": "
     << (single.verify.clean() && fleet.verify.clean() &&
                 cluster.verify.clean()
             ? "true"
             : "false")
     << "}\n  },\n"
     << "  \"hot_key_burst\": {\n";
  for (const auto* b : {&affinity, &stealing}) {
    os << "    \"" << b->name << "\": {\"completed\": " << b->completed
       << ", \"bulk_p50_us\": " << b->p50_us
       << ", \"bulk_p95_us\": " << b->p95_us
       << ", \"bulk_p99_us\": " << b->p99_us << ", \"steals\": " << b->steals
       << ", \"stolen_requests\": " << b->stolen_requests
       << ", \"devices_used\": " << b->devices.size() << "},\n";
  }
  os << "    \"p99_improvement\": "
     << (stealing.p99_us > 0 ? affinity.p99_us / stealing.p99_us : 0)
     << "\n  }";
  if (chaos) {
    const auto phase = [&os](const char* name, const ChaosPhase& p,
                             const char* trail) {
      os << "      \"" << name << "\": {\"requests\": " << p.requests
         << ", \"p50_us\": " << p.p50_us << ", \"p99_us\": " << p.p99_us
         << "}" << trail << "\n";
    };
    os << ",\n  \"chaos\": {\n"
       << "    \"note\": \"persistent fault kills device " << chaos->bad_device
       << " mid-run; phases tagged by that device's health state at submit "
          "time; latency is wall-clock Response::timing.total_s\",\n"
       << "    \"requests\": " << chaos->submitted
       << ",\n    \"ok\": " << chaos->ok
       << ",\n    \"failed\": " << chaos->failed
       << ",\n    \"rejected\": " << chaos->rejected
       << ",\n    \"availability\": " << chaos->availability
       << ",\n    \"bad_device\": " << chaos->bad_device
       << ",\n    \"failovers\": " << chaos->failovers
       << ",\n    \"tiles_resumed\": " << chaos->tiles_resumed
       << ",\n    \"health_transitions\": " << chaos->health_transitions
       << ",\n    \"canary_probes\": " << chaos->canary_probes
       << ",\n    \"shed_brownout\": " << chaos->shed_brownout
       << ",\n    \"failover_latency_us\": {\"resumed_responses\": "
       << chaos->resumed_responses << ", \"p50\": " << chaos->failover_p50_us
       << ", \"max\": " << chaos->failover_max_us << "},\n"
       << "    \"phases\": {\n";
    phase("before_quarantine", chaos->before, ",");
    phase("during_failover", chaos->during, ",");
    phase("after_quarantine", chaos->after, "");
    os << "    }\n  }";
  }
  os << "\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  std::string json_path;
  double stress_s = 0, ref_rps = 0;
  std::uint64_t seed = 1;
  bool chaos_on = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos_on = true;
    } else if (std::strcmp(argv[i], "--stress") == 0 && i + 1 < argc) {
      stress_s = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--ref-rps") == 0 && i + 1 < argc) {
      ref_rps = std::atof(argv[i + 1]);
    }
  }
  if (stress_s > 0) return run_stress(stress_s, seed);

  print_header("Cluster serving",
               "4-device capacity scaling and work-stealing tail latency");

  const BatchPolicy policy{.max_batch = 32, .max_wait_s = 1e-3};
  const std::size_t total = args.quick ? 1600 : 6400;
  const int burst_reqs = args.quick ? 128 : 256;

  const int reps = args.quick ? 1 : 3;
  const auto single =
      best_of(reps, [&] { return run_capacity_single(policy, total); });
  const auto fleet =
      best_of(reps, [&] { return run_capacity_fleet_shared(policy, total); });
  const auto cluster =
      best_of(reps, [&] { return run_capacity_cluster(policy, total); });
  const unsigned host_cores = std::max(1u, std::thread::hardware_concurrency());

  Table cap({"run", "completed", "wall req/s", "sim capacity req/s",
             "busiest sim ms", "steals"});
  for (const auto* r : {&single, &fleet, &cluster}) {
    cap.add_row({r->name, static_cast<std::int64_t>(r->completed), r->wall_rps,
                 r->sim_capacity_rps, r->busiest_sim_s * 1e3,
                 static_cast<std::int64_t>(r->steals)});
  }
  cap.print(std::cout);
  const double ratio = single.sim_capacity_rps > 0
                           ? cluster.sim_capacity_rps / single.sim_capacity_rps
                           : 0;
  std::printf("\ncapacity: cluster %.0f req/s vs single device %.0f req/s "
              "(%.2fx, simulated device time)\n",
              cluster.sim_capacity_rps, single.sim_capacity_rps, ratio);
  vecref::VerifyStats all_verify = single.verify;
  all_verify.merge(fleet.verify);
  all_verify.merge(cluster.verify);
  std::printf("verify: %llu responses (%llu elements) checked against the "
              "SIMD host reference, %llu bit mismatches%s\n",
              static_cast<unsigned long long>(all_verify.requests),
              static_cast<unsigned long long>(all_verify.elements),
              static_cast<unsigned long long>(all_verify.mismatches),
              all_verify.clean() ? "" : "  ** BIT-EXACTNESS BROKEN **");
  // Sharded front end vs the same fleet behind one shared-queue engine:
  // equal device fleet, equal host thread count, so this ordering holds on
  // any host up to scheduler noise — both front ends are lock-free now, so
  // the two rows are legitimately close, and the exit-status assert uses a
  // 10% wall-clock band to flag only real regressions (a reintroduced
  // global bottleneck in the cluster front end, not a bad scheduler draw).
  // Quick mode is a smoke run (1 rep, small corpus): numbers are printed
  // but only bit-exactness and future resolution are load-bearing.
  const bool shard_win =
      args.quick || cluster.wall_rps >= 0.90 * fleet.wall_rps;
  if (!shard_win) {
    std::printf("FAIL: cluster wall rps %.0f more than 10%% below the "
                "shared-queue fleet's %.0f — the sharded front end lost to "
                "the single shared-queue engine it exists to beat\n",
                cluster.wall_rps, fleet.wall_rps);
  }
  if (cluster.wall_rps < single.wall_rps) {
    if (host_cores >= 5) {
      std::printf("WARNING: cluster wall rps %.0f below single-device %.0f "
                  "on a %u-core host — host hot-path overhead is eating the "
                  "fleet's headroom\n",
                  cluster.wall_rps, single.wall_rps, host_cores);
    } else {
      std::printf("note: cluster wall rps %.0f vs single-device %.0f — "
                  "host-limited (%u core(s) time-slicing %d device workers; "
                  "see ordering.host_limited)\n",
                  cluster.wall_rps, single.wall_rps, host_cores, 4);
    }
  }
  if (ratio < 3.0) {
    std::printf("WARNING: sim capacity ratio %.2fx below the 3x scaling "
                "claim\n", ratio);
  }
  if (ref_rps > 0) {
    std::printf("reference: BENCH_serve.json saturating batched wall rate "
                "%.0f req/s (cluster sim capacity = %.1fx)\n",
                ref_rps, cluster.sim_capacity_rps / ref_rps);
  }

  const auto affinity = run_burst(/*stealing=*/false, burst_reqs);
  const auto stealing = run_burst(/*stealing=*/true, burst_reqs);
  Table tail({"hot-key burst", "devices", "p50 us", "p95 us", "p99 us",
              "steals", "stolen"});
  for (const auto* b : {&affinity, &stealing}) {
    tail.add_row({b->name, static_cast<std::int64_t>(b->devices.size()),
                  b->p50_us, b->p95_us, b->p99_us,
                  static_cast<std::int64_t>(b->steals),
                  static_cast<std::int64_t>(b->stolen_requests)});
  }
  tail.print(std::cout);
  std::printf("\ntail: stealing cuts the burst's simulated bulk p99 from "
              "%.0f us to %.0f us (%.2fx)\n",
              affinity.p99_us, stealing.p99_us,
              stealing.p99_us > 0 ? affinity.p99_us / stealing.p99_us : 0.0);

  ChaosResult chaos;
  if (chaos_on) {
    chaos = run_chaos(args.quick ? 256 : 512);
    Table ct({"chaos phase", "requests", "p50 us", "p99 us"});
    const std::pair<const char*, const ChaosPhase*> phases[] = {
        {"before quarantine", &chaos.before},
        {"during failover", &chaos.during},
        {"after quarantine", &chaos.after}};
    for (const auto& [name, p] : phases) {
      ct.add_row({name, static_cast<std::int64_t>(p->requests), p->p50_us,
                  p->p99_us});
    }
    ct.print(std::cout);
    std::printf("\nchaos: device %d died mid-run; availability %.4f "
                "(%llu/%llu ok), %llu failovers, %llu tile-checkpoint "
                "resumes, %llu responses finished on another device "
                "(p50 %.0f us, max %.0f us)\n",
                chaos.bad_device, chaos.availability,
                static_cast<unsigned long long>(chaos.ok),
                static_cast<unsigned long long>(chaos.submitted),
                static_cast<unsigned long long>(chaos.failovers),
                static_cast<unsigned long long>(chaos.tiles_resumed),
                static_cast<unsigned long long>(chaos.resumed_responses),
                chaos.failover_p50_us, chaos.failover_max_us);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << to_json(single, fleet, cluster, affinity, stealing, ref_rps,
                   host_cores, chaos_on ? &chaos : nullptr);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_verify.clean() && shard_win ? 0 : 1;
}
