// Fig. 5: execution-time ratio between the ScanUL1-based and ScanU-based
// batched scans across array length (x) and batch size (y). Ratio < 1
// means the ScanUL1 schedule wins.
//
// Paper result: ScanU-based wins for batch > ~18 and length < ~4K;
// ScanUL1-based wins for batch < ~18 and length > ~4K.
#include "bench_common.hpp"
#include "kernels/batched_scan.hpp"

using namespace ascend;
using namespace ascend::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("Fig. 5", "batched scan: time(ScanUL1-based)/time(ScanU-based)");

  acc::Device dev;
  const std::vector<std::size_t> lens =
      args.quick ? std::vector<std::size_t>{1024, 4096, 16384, 65536}
                 : std::vector<std::size_t>{512,  1024,  2048, 4096,
                                            8192, 16384, 32768, 65536};
  const std::vector<std::size_t> batches =
      args.quick ? std::vector<std::size_t>{4, 16, 24, 40}
                 : std::vector<std::size_t>{2, 4, 8, 12, 16, 18, 20, 24, 32,
                                            40};

  std::printf("rows: batch size, columns: array length; "
              "ratio UL1/U (<1: UL1 schedule wins)\n\n        ");
  for (auto len : lens) std::printf("%8zu", len);
  std::printf("\n");
  for (auto b : batches) {
    std::printf("b=%-5zu ", b);
    for (auto len : lens) {
      auto x = dev.alloc<half>(b * len, half(0.0f));
      auto y = dev.alloc<half>(b * len, half(0.0f));
      const double tu = kernels::batched_scan_u(dev, x.tensor(), y.tensor(),
                                                b, len, {})
                            .time_s;
      const double tul = kernels::batched_scan_ul1(dev, x.tensor(),
                                                   y.tensor(), b, len, {})
                             .time_s;
      std::printf("%8.2f", tul / tu);
    }
    std::printf("\n");
  }
  std::printf("\npaper: UL1 wins (ratio < 1) for small batch & long arrays; "
              "ScanU-based wins for batch > ~18 & short arrays\n");
  return 0;
}
