// Extension E1 (paper §6.3 future work): sorting low-bit-width keys.
// "The number of radix sort iterations equals the input bit-width ...
// an additional performance improvement (2x) for sorting in low-precision
// 8-bit scenarios is expected without further development effort."
//
// This bench measures exactly that: the same radix machinery on 16-bit vs
// 8-bit keys (16 vs 8 split passes).
#include "bench_common.hpp"
#include "kernels/radix_sort.hpp"

using namespace ascend;
using namespace ascend::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("Extension E1", "radix sort bit-width sweep: u16 vs u8 keys");

  Rng rng(0x8b17);
  Table table({"n", "u16_ms", "u8_ms", "u16/u8"});
  const int max_pow = args.quick ? 21 : 23;
  for (int p = 17; p <= max_pow; ++p) {
    const std::size_t n = 1ull << p;
    acc::Device dev;
    std::vector<std::uint16_t> k16(n);
    std::vector<std::uint8_t> k8(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto r = rng.next_u64();
      k16[i] = static_cast<std::uint16_t>(r);
      k8[i] = static_cast<std::uint8_t>(r >> 16);
    }
    auto g16 = dev.upload(k16);
    auto o16 = dev.alloc<std::uint16_t>(n);
    auto g8 = dev.upload(k8);
    auto o8 = dev.alloc<std::uint8_t>(n);
    auto idx = dev.alloc<std::int32_t>(n);
    const auto r16 = kernels::radix_sort_u16(dev, g16.tensor(), o16.tensor(),
                                             idx.tensor(), n, {});
    const auto r8 = kernels::radix_sort_u8(dev, g8.tensor(), o8.tensor(),
                                           idx.tensor(), n, {});
    table.add_row({static_cast<std::int64_t>(n), ms(r16), ms(r8),
                   r16.time_s / r8.time_s});
  }
  table.print(std::cout);
  std::printf("\npaper expectation: ~2x from halving the pass count\n");
  return 0;
}
