// Fig. 13: execution time of Llama-3 top-p sampling (single batch, one
// draw) — the PyTorch baseline ops (torch.sort + torch.cumsum) versus the
// scan pipeline built on radix sort (s = 32/64/128) and MCScan.
//
// Paper result: the baseline scales poorly (its cumsum in particular);
// the cube-assisted pipeline wins at scale.
#include "bench_common.hpp"
#include "kernels/sampling.hpp"

using namespace ascend;
using namespace ascend::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("Fig. 13", "top-p sampling time (p = 0.9, one draw)");

  Rng rng(0x70b);
  Table table({"vocab", "pytorch_ms", "s32_ms", "s64_ms", "s128_ms"});
  const int max_pow = args.quick ? 18 : 20;
  for (int p = 10; p <= max_pow; p += 2) {
    const std::size_t n = 1ull << p;
    acc::Device dev;
    auto probs = dev.upload(rng.token_probs_f16(n));
    std::vector<Table::Cell> row{static_cast<std::int64_t>(n)};
    const auto base = kernels::top_p_sample(dev, probs.tensor(), n, 0.9, 0.37,
                                            {.use_baseline_ops = true});
    row.push_back(ms(base.report));
    for (std::size_t s : {std::size_t{32}, std::size_t{64},
                          std::size_t{128}}) {
      const auto r =
          kernels::top_p_sample(dev, probs.tensor(), n, 0.9, 0.37, {.s = s});
      row.push_back(ms(r.report));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\npaper: the PyTorch baseline scales poorly; the scan "
              "pipeline (17 scans/draw) wins at large vocabularies\n");
  return 0;
}
