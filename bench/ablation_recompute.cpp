// Ablation A1: MCScan's phase-I *recomputation* strategy (vector cores
// re-read the input to build the reductions while the cube cores scan —
// the paper's stated novelty, §4.3) versus a classic SSA-style schedule
// where the reduction runs as a separate pass before the local scans (no
// cube/vector overlap on the input).
//
// Expectation: the recomputing kernel wins because the input read is
// shared between the phases in time — the vector pass otherwise serialises
// a full extra traversal.
#include "bench_common.hpp"
#include "kernels/common.hpp"
#include "kernels/mcscan.hpp"

using namespace ascend;
using namespace ascend::bench;
using namespace ascend::acc;
using namespace ascend::kernels;

namespace {

/// SSA-style variant: pass 1 (vector-only) computes the sub-chunk
/// reductions; pass 2 is MCScan's cube phase + propagation, with the
/// vector units idle during phase I. Implemented with the same building
/// blocks to isolate the scheduling difference.
sim::Report mcscan_no_recompute(Device& dev, GlobalTensor<half> x,
                                GlobalTensor<float> y, std::size_t n) {
  const auto& cfg = dev.config();
  const int blocks = cfg.num_ai_cores;
  const int vpc = cfg.vec_per_core;
  const std::size_t s = 128, l = s * s;
  constexpr std::size_t kVecChunk = 8192;
  const std::size_t vtiles = num_tiles(n, kVecChunk);
  const std::size_t tiles = num_tiles(n, l);

  auto upper = dev.upload(make_upper_ones<half>(s));
  auto u_gm = upper.tensor();
  auto r_buf = dev.alloc<float>(static_cast<std::size_t>(blocks * vpc), 0.0f);
  auto r_gm = r_buf.tensor();

  // Pass 1: reductions only (vector cores, cubes idle).
  sim::Report rep = launch(
      dev, {.block_dim = blocks * vpc, .mode = LaunchMode::VectorOnly,
            .name = "ssa_reduce"},
      [&, n, vtiles](KernelContext& ctx) {
        TPipe pipe(ctx);
        TQue in_q(ctx, TPosition::VECIN);
        pipe.InitBuffer(in_q, 2, kVecChunk * sizeof(half));
        TBuf wide_buf(ctx, TPosition::VECCALC), sum_buf(ctx,
                                                        TPosition::VECCALC);
        pipe.InitBuffer(wide_buf, kVecChunk * sizeof(float));
        pipe.InitBuffer(sum_buf, 64);
        auto wide = wide_buf.Get<float>();
        auto sum = sum_buf.Get<float>();
        const BlockShare share =
            block_share(vtiles, ctx.GetBlockDim(), ctx.GetBlockIdx());
        float acc = 0.0f;
        for (std::size_t t = share.begin; t < share.begin + share.count;
             ++t) {
          const TileRange r = tile_range(t, n, kVecChunk);
          auto chunk = in_q.AllocTensor<half>();
          DataCopy(ctx, chunk, x.sub(r.begin, r.len), r.len);
          in_q.EnQue(chunk);
          auto ch = in_q.DeQue<half>();
          Cast(ctx, wide, ch, r.len);
          in_q.FreeTensor(ch);
          ReduceSum(ctx, sum, wide, r.len);
          acc += GetValue(ctx, sum, 0);
        }
        SetValue(ctx, sum, 0, acc);
        DataCopy(ctx,
                 r_gm.sub(static_cast<std::size_t>(ctx.GetBlockIdx()), 1),
                 sum, 1);
      });

  // Pass 2: cube local scans + vector propagation (the vector cores wait
  // for the cube output instead of recomputing).
  rep += launch(
      dev, {.block_dim = blocks, .mode = LaunchMode::Mix, .name = "ssa_scan"},
      [&, n, tiles, blocks, vpc](KernelContext& ctx) {
        const int b = ctx.GetBlockIdx();
        if (ctx.is_cube()) {
          TPipe pipe(ctx);
          TBuf u_l1(ctx, TPosition::B1), u_l0(ctx, TPosition::B2);
          pipe.InitBuffer(u_l1, l * sizeof(half));
          pipe.InitBuffer(u_l0, l * sizeof(half));
          TQue a_l1(ctx, TPosition::A1), a_l0(ctx, TPosition::A2),
              c_out(ctx, TPosition::CO1);
          pipe.InitBuffer(a_l1, 2, l * sizeof(half));
          pipe.InitBuffer(a_l0, 2, l * sizeof(half));
          pipe.InitBuffer(c_out, 2, l * sizeof(float));
          auto u_stage = u_l1.Get<half>();
          DataCopy(ctx, u_stage, u_gm, l);
          auto u_tile = u_l0.Get<half>();
          LoadData(ctx, u_tile, u_stage, l);
          const BlockShare share = block_share(tiles, blocks, b);
          for (std::size_t t = share.begin; t < share.begin + share.count;
               ++t) {
            const TileRange r = tile_range(t, n, l);
            auto stage = a_l1.AllocTensor<half>();
            if (r.len < l) InitConstValue(ctx, stage, half(0.0f), l);
            DataCopy(ctx, stage, x.sub(r.begin, r.len), r.len);
            a_l1.EnQue(stage);
            auto st = a_l1.DeQue<half>();
            auto a_tile = a_l0.AllocTensor<half>();
            LoadData(ctx, a_tile, st, l);
            a_l1.FreeTensor(st);
            auto c_tile = c_out.AllocTensor<float>();
            Mmad(ctx, c_tile, a_tile, u_tile, s, s, s, false);
            a_l0.FreeTensor(a_tile);
            Fixpipe(ctx, y.sub(r.begin, r.len), c_tile, r.len);
            c_out.FreeTensor(c_tile);
          }
          ctx.SyncAll();
        } else {
          const int v = ctx.GetSubBlockIdx();
          const int sub_idx = b * vpc + v;
          TPipe pipe(ctx);
          TQue y_q(ctx, TPosition::VECOUT);
          pipe.InitBuffer(y_q, 2, kVecChunk * sizeof(float));
          TBuf r_ub(ctx, TPosition::VECCALC), sum_buf(ctx,
                                                      TPosition::VECCALC);
          pipe.InitBuffer(r_ub,
                          static_cast<std::size_t>(blocks * vpc) *
                              sizeof(float));
          pipe.InitBuffer(sum_buf, 64);
          ctx.SyncAll();  // wait for the cube scans
          auto r_local = r_ub.Get<float>();
          auto sum = sum_buf.Get<float>();
          DataCopy(ctx, r_local, r_gm,
                   static_cast<std::size_t>(blocks * vpc));
          float base = 0.0f;
          if (sub_idx > 0) {
            ReduceSum(ctx, sum, r_local,
                      static_cast<std::size_t>(sub_idx));
            base = GetValue(ctx, sum, 0);
          }
          const BlockShare blk = block_share(vtiles, blocks, b);
          const BlockShare subshare = block_share(blk.count, vpc, v);
          float partial = base;
          for (std::size_t t = blk.begin + subshare.begin;
               t < blk.begin + subshare.begin + subshare.count; ++t) {
            const TileRange r = tile_range(t, n, kVecChunk);
            auto tile = y_q.AllocTensor<float>();
            DataCopy(ctx, tile, y.sub(r.begin, r.len), r.len);
            for (std::size_t off = 0; off < r.len; off += s) {
              const std::size_t len = std::min(s, r.len - off);
              auto row = tile.sub(off, len);
              Adds(ctx, row, row, partial, len);
              partial = GetValue(ctx, row, len - 1);
            }
            DataCopy(ctx, y.sub(r.begin, r.len), tile, r.len);
            y_q.FreeTensor(tile);
          }
        }
      });
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("Ablation A1",
               "MCScan phase-I recomputation vs SSA-style separate passes");

  Table table({"n", "mcscan_us", "ssa_variant_us", "recompute_gain"});
  const int max_pow = args.quick ? 21 : 23;
  for (int p = 15; p <= max_pow; ++p) {
    const std::size_t n = 1ull << p;
    acc::Device dev;
    auto x = dev.alloc<half>(n, half(0.0f));
    auto y = dev.alloc<float>(n, 0.0f);
    const auto mc =
        mcscan<half, float>(dev, x.tensor(), y.tensor(), n, {});
    const auto ssa = mcscan_no_recompute(dev, x.tensor(), y.tensor(), n);
    table.add_row({static_cast<std::int64_t>(n), us(mc), us(ssa),
                   ssa.time_s / mc.time_s});
  }
  table.print(std::cout);
  std::printf("\nexpectation: the recomputation schedule wins by hiding the "
              "reduction read under the cube phase (§4.3)\n");
  return 0;
}
