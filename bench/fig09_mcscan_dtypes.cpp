// Fig. 9: MCScan element throughput (Gelem/s) for float16 vs int8 inputs.
//
// Paper result: ~10% higher element throughput for int8 (1 input byte vs
// 2; int32 vs float32 output) — the property the split/compress mask scans
// exploit.
#include "bench_common.hpp"
#include "kernels/mcscan.hpp"

using namespace ascend;
using namespace ascend::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("Fig. 9", "MCScan Gelem/s: float16 vs int8 inputs");

  Table table({"n", "f16_gelems", "i8_gelems", "i8/f16"});
  const int max_pow = args.quick ? 21 : 23;
  for (int p = 14; p <= max_pow; ++p) {
    const std::size_t n = 1ull << p;
    acc::Device dev;
    auto xf = dev.alloc<half>(n, half(0.0f));
    auto yf = dev.alloc<float>(n, 0.0f);
    auto xi = dev.alloc<std::int8_t>(n, std::int8_t{0});
    auto yi = dev.alloc<std::int32_t>(n, 0);
    const auto rf =
        kernels::mcscan<half, float>(dev, xf.tensor(), yf.tensor(), n, {});
    const auto ri = kernels::mcscan<std::int8_t, std::int32_t>(
        dev, xi.tensor(), yi.tensor(), n, {});
    const double gf = rf.elements_per_s(n) / 1e9;
    const double gi = ri.elements_per_s(n) / 1e9;
    table.add_row({static_cast<std::int64_t>(n), gf, gi, gi / gf});
  }
  table.print(std::cout);
  std::printf("\npaper: int8 ~10%% above float16 in elements/s\n");
  return 0;
}
