// Fig. 11: fp16 radix sort (MCScan-powered splits) vs the torch.sort
// baseline, both returning values and indices.
//
// Paper results: the baseline wins below ~525K elements; above, radix sort
// delivers 1.3x–3.3x.
#include "bench_common.hpp"
#include "kernels/radix_sort.hpp"
#include "kernels/sort_baseline.hpp"

using namespace ascend;
using namespace ascend::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("Fig. 11", "fp16 radix sort vs torch.sort (values + indices)");

  Rng rng(0x50f7);
  Table table({"n", "radix_ms", "baseline_ms", "speedup"});
  const int max_pow = args.quick ? 21 : 23;
  for (int p = 16; p <= max_pow; ++p) {
    const std::size_t n = 1ull << p;
    acc::Device dev;
    auto keys = dev.upload(rng.uniform_f16(n, -100.0, 100.0));
    auto out_k = dev.alloc<half>(n);
    auto out_i = dev.alloc<std::int32_t>(n);
    const auto r = kernels::radix_sort_f16(dev, keys.tensor(), out_k.tensor(),
                                           out_i.tensor(), n, {});
    const auto b = kernels::sort_baseline_f16(dev, keys.tensor(),
                                              out_k.tensor(), out_i.tensor(),
                                              n, false);
    table.add_row({static_cast<std::int64_t>(n), ms(r), ms(b),
                   b.time_s / r.time_s});
  }
  table.print(std::cout);
  std::printf("\npaper: baseline wins below ~525K; radix 1.3x-3.3x above\n");
  return 0;
}
