// Ablation A2: MCScan matrix-tile-size sweep (§6.1: "the larger the matrix
// multiplication dimension s is, the better the performance"; s = 128
// maximises L0A/L0B utilisation; larger tiles are left as future work
// because they exceed the L0 capacity in one load).
#include "bench_common.hpp"
#include "kernels/mcscan.hpp"

using namespace ascend;
using namespace ascend::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("Ablation A2", "MCScan tile-size sweep (s = 16..128)");

  const std::size_t n = args.quick ? (1u << 20) : (1u << 22);
  Table table({"s", "time_us", "gbps", "l0_tile_bytes", "l0_util_%"});
  acc::Device dev;
  auto x = dev.alloc<half>(n, half(0.0f));
  auto y = dev.alloc<float>(n, 0.0f);
  for (std::size_t s : {std::size_t{16}, std::size_t{32}, std::size_t{64},
                        std::size_t{128}}) {
    const auto r =
        kernels::mcscan<half, float>(dev, x.tensor(), y.tensor(), n, {.s = s});
    const std::size_t tile_bytes = s * s * sizeof(half);
    table.add_row({static_cast<std::int64_t>(s), us(r), gbps(r, n * 6),
                   static_cast<std::int64_t>(tile_bytes),
                   100.0 * static_cast<double>(2 * tile_bytes) /
                       static_cast<double>(dev.config().l0a_bytes)});
  }
  table.print(std::cout);
  std::printf("\ns = 128 fills both 32 KiB double-buffered L0A slots; "
              "smaller tiles pay per-instruction overheads on 256x more "
              "DataCopy/Mmad issues\n");
  return 0;
}
