// Fig. 10: bandwidth of the Compress operator (MCScan-based, s = 32/64/128)
// versus the torch.masked_select baseline, Bernoulli(0.5) masks.
//
// Paper results: Compress reaches ~160 GB/s (20% of peak); the baseline
// uses neither the vector nor the cube units and is orders of magnitude
// slower.
//
// Useful bytes: x (2) + mask (1) + kept output (~1 at 50% density) per
// element.
#include "bench_common.hpp"
#include "kernels/split.hpp"

using namespace ascend;
using namespace ascend::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("Fig. 10", "compress vs torch.masked_select (p = 0.5 masks)");

  Rng rng(0xfeed);
  Table table({"n", "compress_s32", "compress_s64", "compress_s128",
               "masked_select"});
  const int max_pow = args.quick ? 20 : 22;
  for (int p = 13; p <= max_pow; ++p) {
    const std::size_t n = 1ull << p;
    acc::Device dev;
    auto x = dev.upload(rng.uniform_f16(n, -1.0, 1.0));
    auto mask = dev.upload(rng.mask_i8(n, 0.5));
    auto out = dev.alloc<half>(n);

    std::vector<Table::Cell> row{static_cast<std::int64_t>(n)};
    std::size_t kept = 0;
    for (std::size_t s : {std::size_t{32}, std::size_t{64},
                          std::size_t{128}}) {
      const auto r = kernels::compress(dev, x.tensor(), mask.tensor(),
                                       out.tensor(), n, {.s = s});
      kept = r.num_true;
      row.push_back(gbps(r.report, n * 3 + kept * 2));
    }
    const auto b = kernels::masked_select_baseline(dev, x.tensor(),
                                                   mask.tensor(), out.tensor(),
                                                   n);
    row.push_back(gbps(b.report, n * 3 + kept * 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\npaper: compress up to ~160 GB/s (20%% of peak); baseline "
              "orders of magnitude below\n");
  return 0;
}
