// Fig. 12: bandwidth of the batched scan (ScanU-based, Algorithm 1
// schedule) for increasing batch sizes at input length 65K, for tile sizes
// s = 16/32/64/128, plus the vector-only baseline.
//
// Paper results: s = 64 and 128 reach up to ~400 GB/s; s = 16/32 perform
// poorly; s = 16 is comparable to the baseline.
#include "bench_common.hpp"
#include "kernels/batched_scan.hpp"
#include "kernels/common.hpp"
#include "kernels/vec_cumsum.hpp"

using namespace ascend;
using namespace ascend::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("Fig. 12",
               "batched scan bandwidth vs batch size (length 65536)");

  const std::size_t len = 65536;
  Table table({"batch", "s16", "s32", "s64", "s128", "vec_baseline"});
  const std::vector<std::size_t> batches =
      args.quick ? std::vector<std::size_t>{2, 8, 20, 40}
                 : std::vector<std::size_t>{1, 2, 4, 8, 12, 16, 20, 24, 32,
                                            40, 48, 64};
  for (auto b : batches) {
    acc::Device dev;
    const std::size_t total = b * len;
    auto x = dev.alloc<half>(total, half(0.0f));
    auto y = dev.alloc<half>(total, half(0.0f));
    std::vector<Table::Cell> row{static_cast<std::int64_t>(b)};
    for (std::size_t s : {std::size_t{16}, std::size_t{32}, std::size_t{64},
                          std::size_t{128}}) {
      const auto r = kernels::batched_scan_u(dev, x.tensor(), y.tensor(), b,
                                             len, {.s = s});
      row.push_back(gbps(r, total * (2 + 2)));
    }
    // Vector-only baseline: the batched torch.cumsum spreads rows over the
    // vector cores, each running the CumSum API chain on its rows.
    const int nv = std::min<int>(dev.config().num_vec_cores(),
                                 static_cast<int>(b));
    auto xt = x.tensor();
    auto yt = y.tensor();
    const auto base = acc::launch(
        dev,
        {.block_dim = nv, .mode = acc::LaunchMode::VectorOnly,
         .name = "batched_cumsum_baseline"},
        [&, b, len](acc::KernelContext& ctx) {
          acc::TPipe pipe(ctx);
          acc::TQue in(ctx, acc::TPosition::VECIN),
              out(ctx, acc::TPosition::VECOUT);
          const std::size_t chunk = std::min<std::size_t>(len, 16384);
          pipe.InitBuffer(in, 2, chunk * sizeof(half));
          pipe.InitBuffer(out, 2, chunk * sizeof(half));
          const auto share = kernels::block_share(b, ctx.GetBlockDim(),
                                                  ctx.GetBlockIdx());
          for (std::size_t rw = share.begin; rw < share.begin + share.count;
               ++rw) {
            half partial(0.0f);
            for (std::size_t off = 0; off < len; off += chunk) {
              const std::size_t cl = std::min(chunk, len - off);
              auto src = in.AllocTensor<half>();
              acc::DataCopy(ctx, src, xt.sub(rw * len + off, cl), cl);
              in.EnQue(src);
              auto c = in.DeQue<half>();
              auto dst = out.AllocTensor<half>();
              acc::CumSum(ctx, dst, c, cl);
              in.FreeTensor(c);
              acc::Adds(ctx, dst, dst, partial, cl);
              partial = acc::GetValue(ctx, dst, cl - 1);
              acc::DataCopy(ctx, yt.sub(rw * len + off, cl), dst, cl);
              out.FreeTensor(dst);
            }
          }
        });
    row.push_back(gbps(base, total * (2 + 2)));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\npaper: s=64/128 up to ~400 GB/s; s=16/32 poor; s=16 "
              "comparable to the baseline\n");
  return 0;
}
