// Host-side microbenchmarks (google-benchmark) of the simulator itself:
// how fast the functional+timing machine model executes on the host. These
// are *not* paper figures — they track the cost of running this
// reproduction (useful when extending the simulator).
#include <benchmark/benchmark.h>

#include "kernels/mcscan.hpp"
#include "kernels/scan_u.hpp"
#include "sim/hbm_arbiter.hpp"
#include "sim/l2_cache.hpp"

using namespace ascend;

static void BM_L2CacheAccess(benchmark::State& state) {
  sim::L2Cache l2(96ull << 20, 512);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l2.access(addr, 32768, (addr & 1) != 0));
    addr += 32768;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          32768);
}
BENCHMARK(BM_L2CacheAccess);

static void BM_HbmArbiterChurn(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::HbmArbiter a(600e9, 800e9);
    double t = 0;
    for (int i = 0; i < flows; ++i) a.add_flow(t, 64e3, 128e9, 1.0, 1.0);
    while (!a.idle()) {
      t = a.next_completion_time();
      benchmark::DoNotOptimize(a.advance_and_pop(t));
    }
  }
}
BENCHMARK(BM_HbmArbiterChurn)->Arg(4)->Arg(60);

static void BM_SimulateScanU(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  acc::Device dev(sim::MachineConfig::single_core());
  auto x = dev.alloc<half>(n, half(0.0f));
  auto y = dev.alloc<half>(n, half(0.0f));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::scan_u(dev, x.tensor(), y.tensor(), n, 128));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulateScanU)->Arg(1 << 16)->Arg(1 << 18);

static void BM_SimulateMcScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  acc::Device dev;
  auto x = dev.alloc<half>(n, half(0.0f));
  auto y = dev.alloc<float>(n, 0.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::mcscan<half, float>(dev, x.tensor(), y.tensor(), n, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulateMcScan)->Arg(1 << 18)->Arg(1 << 20);

BENCHMARK_MAIN();
