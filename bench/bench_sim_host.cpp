// Host-side microbenchmarks (google-benchmark) of the simulator itself:
// how fast the functional+timing machine model executes on the host. These
// are *not* paper figures — they track the cost of running this
// reproduction (useful when extending the simulator).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "core/ascan.hpp"
#include "kernels/copy_kernel.hpp"
#include "kernels/mcscan.hpp"
#include "kernels/scan_u.hpp"
#include "sim/hbm_arbiter.hpp"
#include "sim/l2_cache.hpp"

using namespace ascend;

namespace {

sim::MachineConfig cfg_mode(sim::ExecutorMode mode, bool timing_cache = false) {
  auto cfg = sim::MachineConfig::ascend_910b4();
  cfg.executor = mode;
  cfg.timing_cache = timing_cache;
  return cfg;
}

std::vector<half> bench_workload(std::size_t n) {
  std::vector<half> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = half(static_cast<float>((i * 2654435761u) % 7) - 3.0f);
  }
  return x;
}

/// Runs `op` once on a spawn and a pool session and returns whether the
/// simulated time is bit-identical and the values match. Recorded as the
/// `cross_exec_ok` counter so BENCH_sim_host.json carries the determinism
/// evidence from the same run as the throughput numbers.
template <typename Op>
bool cross_executor_identical(Op&& op) {
  ascan::Session spawn(cfg_mode(sim::ExecutorMode::Spawn));
  ascan::Session pool(cfg_mode(sim::ExecutorMode::Pool));
  return op(spawn, pool);
}

}  // namespace

static void BM_L2CacheAccess(benchmark::State& state) {
  sim::L2Cache l2(96ull << 20, 512);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l2.access(addr, 32768, (addr & 1) != 0));
    addr += 32768;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          32768);
}
BENCHMARK(BM_L2CacheAccess);

static void BM_HbmArbiterChurn(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::HbmArbiter a(600e9, 800e9);
    double t = 0;
    for (int i = 0; i < flows; ++i) a.add_flow(t, 64e3, 128e9, 1.0, 1.0);
    while (!a.idle()) {
      t = a.next_completion_time();
      benchmark::DoNotOptimize(a.advance_and_pop(t));
    }
  }
}
BENCHMARK(BM_HbmArbiterChurn)->Arg(4)->Arg(60);

static void BM_SimulateScanU(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  acc::Device dev(sim::MachineConfig::single_core());
  auto x = dev.alloc<half>(n, half(0.0f));
  auto y = dev.alloc<half>(n, half(0.0f));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::scan_u(dev, x.tensor(), y.tensor(), n, 128));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulateScanU)->Arg(1 << 16)->Arg(1 << 18);

static void BM_SimulateMcScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  acc::Device dev;
  auto x = dev.alloc<half>(n, half(0.0f));
  auto y = dev.alloc<float>(n, 0.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::mcscan<half, float>(dev, x.tensor(), y.tensor(), n, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulateMcScan)->Arg(1 << 18)->Arg(1 << 20);

// ---------------------------------------------------------------------------
// End-to-end host throughput of the Session API, spawn vs pool executor.
// `launches_per_s` is the headline metric for the persistent-pool engine:
// it counts simulated kernel launches retired per host wall-clock second.
// `items_per_second` (built in) is simulated elements per host second.

static void BM_SessionCumsum(benchmark::State& state, sim::ExecutorMode mode) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto x = bench_workload(n);
  const bool ok = cross_executor_identical([&](ascan::Session& a,
                                               ascan::Session& b) {
    const auto ra = a.cumsum(x);
    const auto rb = b.cumsum(x);
    return ra.report.time_s == rb.report.time_s && ra.values == rb.values;
  });
  if (!ok) {
    state.SkipWithError("spawn/pool cumsum diverged");
    return;
  }
  ascan::Session s(cfg_mode(mode));
  std::int64_t launches = 0;
  for (auto _ : state) {
    const auto r = s.cumsum(x);
    launches += r.report.launches;
    benchmark::DoNotOptimize(r.values.data());
  }
  state.counters["launches_per_s"] = benchmark::Counter(
      static_cast<double>(launches), benchmark::Counter::kIsRate);
  state.counters["cross_exec_ok"] = 1.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_SessionCumsum, spawn, sim::ExecutorMode::Spawn)
    ->Arg(1 << 12)->Arg(1 << 16)->UseRealTime();
BENCHMARK_CAPTURE(BM_SessionCumsum, pool, sim::ExecutorMode::Pool)
    ->Arg(1 << 12)->Arg(1 << 16)->UseRealTime();

static void BM_SessionSort(benchmark::State& state, sim::ExecutorMode mode) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<half> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = (i * 2654435761u) % n;
    keys[i] = half(static_cast<float>(p) - static_cast<float>(n / 2));
  }
  const bool ok = cross_executor_identical([&](ascan::Session& a,
                                               ascan::Session& b) {
    const auto ra = a.sort(keys);
    const auto rb = b.sort(keys);
    return ra.report.time_s == rb.report.time_s && ra.values == rb.values &&
           ra.indices == rb.indices;
  });
  if (!ok) {
    state.SkipWithError("spawn/pool sort diverged");
    return;
  }
  ascan::Session s(cfg_mode(mode));
  std::int64_t launches = 0;
  for (auto _ : state) {
    const auto r = s.sort(keys);
    launches += r.report.launches;
    benchmark::DoNotOptimize(r.values.data());
  }
  state.counters["launches_per_s"] = benchmark::Counter(
      static_cast<double>(launches), benchmark::Counter::kIsRate);
  state.counters["cross_exec_ok"] = 1.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_SessionSort, spawn, sim::ExecutorMode::Spawn)
    ->Arg(1 << 11)->UseRealTime();
BENCHMARK_CAPTURE(BM_SessionSort, pool, sim::ExecutorMode::Pool)
    ->Arg(1 << 11)->UseRealTime();

static void BM_SessionTopPSampleBatch(benchmark::State& state,
                                      sim::ExecutorMode mode) {
  const std::size_t batch = 4;
  const std::size_t vocab = static_cast<std::size_t>(state.range(0));
  std::vector<half> probs(batch * vocab);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t i = 0; i < vocab; ++i) {
      const std::size_t p = (i * 2654435761u) % vocab;
      probs[b * vocab + i] = half(static_cast<float>(p + 1) /
                                  static_cast<float>(vocab));
    }
  }
  const std::vector<double> u = {0.1, 0.4, 0.7, 0.95};
  const bool ok = cross_executor_identical([&](ascan::Session& a,
                                               ascan::Session& b) {
    const auto ra = a.top_p_sample_batch(probs, batch, vocab, 0.9, u);
    const auto rb = b.top_p_sample_batch(probs, batch, vocab, 0.9, u);
    return ra.report.time_s == rb.report.time_s && ra.tokens == rb.tokens;
  });
  if (!ok) {
    state.SkipWithError("spawn/pool top_p diverged");
    return;
  }
  ascan::Session s(cfg_mode(mode));
  std::int64_t launches = 0;
  for (auto _ : state) {
    const auto r = s.top_p_sample_batch(probs, batch, vocab, 0.9, u);
    launches += r.report.launches;
    benchmark::DoNotOptimize(r.tokens.data());
  }
  state.counters["launches_per_s"] = benchmark::Counter(
      static_cast<double>(launches), benchmark::Counter::kIsRate);
  state.counters["cross_exec_ok"] = 1.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * vocab));
}
BENCHMARK_CAPTURE(BM_SessionTopPSampleBatch, spawn, sim::ExecutorMode::Spawn)
    ->Arg(512)->UseRealTime();
BENCHMARK_CAPTURE(BM_SessionTopPSampleBatch, pool, sim::ExecutorMode::Pool)
    ->Arg(512)->UseRealTime();

// The purest repeated-launch workload: one full-width kernel relaunched on
// device-resident buffers. This isolates per-launch host overhead (thread
// management + context setup + replay), which is exactly what the pool and
// the timing cache attack.
static void BM_RepeatedLaunch(benchmark::State& state, sim::ExecutorMode mode,
                              bool timing_cache) {
  const std::size_t n = 8192;
  acc::Device dev(cfg_mode(mode, timing_cache));
  auto x = dev.alloc<half>(n, half(2.0f));
  auto y = dev.alloc<half>(n);
  std::int64_t launches = 0;
  for (auto _ : state) {
    const auto r = kernels::copy_kernel<half>(dev, x.tensor(), y.tensor(), n, 0);
    launches += r.launches;
    benchmark::DoNotOptimize(r.time_s);
  }
  state.counters["launches_per_s"] = benchmark::Counter(
      static_cast<double>(launches), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_RepeatedLaunch, spawn, sim::ExecutorMode::Spawn, false)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_RepeatedLaunch, pool, sim::ExecutorMode::Pool, false)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_RepeatedLaunch, pool_cached, sim::ExecutorMode::Pool,
                  true)
    ->UseRealTime();

BENCHMARK_MAIN();
