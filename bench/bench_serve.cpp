// Closed-loop serving load generator: request throughput and latency
// percentiles of the serve::Engine versus offered load (client count), for
// several batching policies. The headline claim this reproduces: at
// saturating load, dynamic batching amortises the fixed per-launch host
// cost (see BENCH_sim_host.json) and serves >= 2x the request throughput
// of batch_size = 1.
//
// A second scenario measures the streaming / continuous-batching path:
// long streamed cumsum rows plus short interactive requests of the same
// GroupKey, once with continuation admission on and once boundary-only.
// Headlines: time-to-first-chunk is a fraction of the full-response
// latency, and continuation admission cuts the interactive queue wait.
//
//   bench_serve [--quick] [--stream] [--json PATH]
//
// --stream runs only the streaming scenario (the perf_smoke_stream test).
// --json writes the full sweep as one JSON object (tools/run_serve_bench.sh
// puts it at BENCH_serve.json).
#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "serve/engine.hpp"

using namespace ascend;
using namespace ascend::bench;
using namespace ascan::serve;

namespace {

struct PolicyCase {
  const char* name;
  BatchPolicy policy;
};

struct RunResult {
  std::string policy;
  int clients = 0;
  std::uint64_t requests = 0;
  double wall_s = 0;
  double rps = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  double avg_occupancy = 0;
  std::uint64_t rejected = 0;
};

/// Closed loop: each client thread submits, waits for the future, repeats.
/// Offered load is therefore bounded by `clients` outstanding requests.
RunResult run_load(const PolicyCase& pc, int clients,
                   std::uint64_t requests_per_client) {
  Engine engine({.policy = pc.policy});
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Mixed row lengths exercise the zero-padding path; all requests
      // share a GroupKey so they stay coalescible.
      Rng rng(100 + static_cast<std::uint64_t>(c));
      for (std::uint64_t i = 0; i < requests_per_client; ++i) {
        const std::size_t n = 128 + 64 * ((i + static_cast<std::uint64_t>(c)) % 4);
        std::vector<ascan::half> x(n);
        for (auto& v : x) v = ascan::half(rng.bernoulli(0.5) ? 1.0f : 0.0f);
        engine.submit(Request::cumsum(std::move(x))).get();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  engine.shutdown(ShutdownMode::Drain);

  const auto m = engine.metrics();
  RunResult r;
  r.policy = pc.name;
  r.clients = clients;
  r.requests = m.completed;
  r.wall_s = wall;
  r.rps = wall > 0 ? static_cast<double>(m.completed) / wall : 0;
  r.p50_us = m.total_latency.percentile(0.50) * 1e6;
  r.p95_us = m.total_latency.percentile(0.95) * 1e6;
  r.p99_us = m.total_latency.percentile(0.99) * 1e6;
  r.avg_occupancy = m.avg_batch_occupancy;
  r.rejected = m.rejected_capacity;
  return r;
}

/// One streaming-scenario measurement: long streamed bulk rows and short
/// interactive requests of the same GroupKey served concurrently.
struct StreamResult {
  std::string mode;  ///< "continuous" | "boundary_only"
  std::uint64_t long_requests = 0, short_requests = 0;
  double ttfc_us = 0;          ///< mean client time-to-first-chunk (long rows)
  double full_latency_us = 0;  ///< mean client full-response latency
  double interactive_queue_us = 0;  ///< mean interactive queue wait
  std::uint64_t continuation_admits = 0;
  std::uint64_t stream_chunks = 0;
};

/// Long streamed rows (12 steps at tile 16) from bulk clients while
/// interactive clients submit single-step rows with the same GroupKey. The
/// only difference between the two modes is BatchPolicy::continuous: with
/// it on, the short rows join the in-flight launch between steps instead of
/// waiting for it to finish.
StreamResult run_stream_scenario(bool continuous, int long_clients,
                                 int short_clients,
                                 std::uint64_t long_per_client,
                                 std::uint64_t short_per_client) {
  constexpr std::size_t kTile = 16;
  constexpr std::size_t kLongLen = kTile * kTile * 12;
  constexpr std::size_t kShortLen = kTile * kTile;
  Engine engine({.policy = {.max_batch = 8, .max_wait_s = 200e-6,
                            .continuous = continuous}});
  std::mutex mu;
  double ttfc_sum = 0, full_sum = 0, queue_sum = 0;
  std::uint64_t ttfc_n = 0, queue_n = 0;

  const auto fill = [](Rng& rng, std::size_t n) {
    std::vector<ascan::half> x(n);
    for (auto& v : x) v = ascan::half(rng.bernoulli(0.5) ? 1.0f : 0.0f);
    return x;
  };

  std::vector<std::thread> threads;
  for (int c = 0; c < long_clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(500 + static_cast<std::uint64_t>(c));
      for (std::uint64_t i = 0; i < long_per_client; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        double first = -1;
        Request r = Request::cumsum(fill(rng, kLongLen), kTile, false,
                                    Priority::Bulk);
        r.on_chunk = [&](const StreamChunk&) {
          if (first < 0) {
            first = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
          }
        };
        engine.submit(std::move(r)).get();
        const double total = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
        std::lock_guard<std::mutex> lk(mu);
        full_sum += total;
        if (first >= 0) {
          ttfc_sum += first;
          ++ttfc_n;
        }
      }
    });
  }
  for (int c = 0; c < short_clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(900 + static_cast<std::uint64_t>(c));
      for (std::uint64_t i = 0; i < short_per_client; ++i) {
        const auto resp = engine.submit(Request::cumsum(fill(rng, kShortLen),
                                                        kTile))
                              .get();
        std::lock_guard<std::mutex> lk(mu);
        queue_sum += resp.timing.queue_s;
        ++queue_n;
      }
    });
  }
  for (auto& t : threads) t.join();
  engine.shutdown(ShutdownMode::Drain);

  const auto m = engine.metrics();
  StreamResult r;
  r.mode = continuous ? "continuous" : "boundary_only";
  r.long_requests =
      static_cast<std::uint64_t>(long_clients) * long_per_client;
  r.short_requests =
      static_cast<std::uint64_t>(short_clients) * short_per_client;
  r.ttfc_us = ttfc_n ? ttfc_sum / static_cast<double>(ttfc_n) * 1e6 : 0;
  r.full_latency_us =
      r.long_requests ? full_sum / static_cast<double>(r.long_requests) * 1e6
                      : 0;
  r.interactive_queue_us =
      queue_n ? queue_sum / static_cast<double>(queue_n) * 1e6 : 0;
  r.continuation_admits = m.continuation_admits;
  r.stream_chunks = m.stream_chunks;
  return r;
}

std::string stream_json(const std::vector<StreamResult>& runs) {
  std::ostringstream os;
  os << "  \"streaming\": {\n"
     << "    \"workload\": \"streamed cumsum rows of 3072 fp16 elements "
        "(tile 16, 12 steps) + interactive 256-element rows, same "
        "GroupKey\",\n"
     << "    \"modes\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    os << "      {\"mode\": \"" << r.mode
       << "\", \"long_requests\": " << r.long_requests
       << ", \"short_requests\": " << r.short_requests
       << ", \"time_to_first_chunk_us\": " << r.ttfc_us
       << ", \"full_latency_us\": " << r.full_latency_us
       << ", \"interactive_queue_us\": " << r.interactive_queue_us
       << ", \"continuation_admits\": " << r.continuation_admits
       << ", \"stream_chunks\": " << r.stream_chunks << "}"
       << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }";
  return os.str();
}

std::string to_json(const std::vector<RunResult>& runs, double no_batching_rps,
                    double batched_rps,
                    const std::vector<StreamResult>& stream_runs) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"serve_closed_loop\",\n"
     << "  \"machine\": \"simulated Ascend 910B4\",\n"
     << "  \"workload\": \"cumsum rows of 128..320 fp16 elements\",\n"
     << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    os << "    {\"policy\": \"" << r.policy << "\", \"clients\": " << r.clients
       << ", \"requests\": " << r.requests << ", \"wall_s\": " << r.wall_s
       << ", \"rps\": " << r.rps << ", \"p50_us\": " << r.p50_us
       << ", \"p95_us\": " << r.p95_us << ", \"p99_us\": " << r.p99_us
       << ", \"avg_occupancy\": " << r.avg_occupancy
       << ", \"rejected\": " << r.rejected << "}"
       << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"headline\": {\"no_batching_rps\": " << no_batching_rps
     << ", \"batched_rps\": " << batched_rps << ", \"ratio\": "
     << (no_batching_rps > 0 ? batched_rps / no_batching_rps : 0) << "},\n"
     << stream_json(stream_runs) << "\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  std::string json_path;
  bool stream_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::string(argv[i]) == "--stream") stream_only = true;
  }

  std::vector<StreamResult> stream_runs;
  const auto run_streaming = [&] {
    print_header("Streaming / continuous batching",
                 "long streamed rows + interactive same-key traffic");
    const int long_clients = args.quick ? 2 : 4;
    const int short_clients = args.quick ? 2 : 4;
    const std::uint64_t long_per = args.quick ? 6 : 16;
    const std::uint64_t short_per = args.quick ? 40 : 150;
    Table st({"mode", "ttfc us", "full us", "inter q us", "cont admits",
              "chunks"});
    for (bool continuous : {true, false}) {
      const auto r = run_stream_scenario(continuous, long_clients,
                                         short_clients, long_per, short_per);
      stream_runs.push_back(r);
      st.add_row({r.mode, r.ttfc_us, r.full_latency_us,
                  r.interactive_queue_us,
                  static_cast<std::int64_t>(r.continuation_admits),
                  static_cast<std::int64_t>(r.stream_chunks)});
    }
    st.print(std::cout);
    const auto& cont = stream_runs[0];
    const auto& bound = stream_runs[1];
    std::printf("\nstreaming: first chunk after %.0f us vs %.0f us full "
                "response (%.1fx earlier); continuation admission cuts "
                "interactive queue wait %.0f us -> %.0f us\n",
                cont.ttfc_us, cont.full_latency_us,
                cont.ttfc_us > 0 ? cont.full_latency_us / cont.ttfc_us : 0.0,
                bound.interactive_queue_us, cont.interactive_queue_us);
  };

  if (stream_only) {
    run_streaming();
    return 0;
  }

  print_header("Serving throughput",
               "closed-loop load vs batching policy (serve::Engine)");

  const PolicyCase cases[] = {
      {"no_batching", {.max_batch = 1, .max_wait_s = 0}},
      {"batch8_200us", {.max_batch = 8, .max_wait_s = 200e-6}},
      {"batch16_500us", {.max_batch = 16, .max_wait_s = 500e-6}},
      {"batch32_1ms", {.max_batch = 32, .max_wait_s = 1e-3}},
  };
  const std::vector<int> client_counts =
      args.quick ? std::vector<int>{1, 16} : std::vector<int>{1, 4, 16, 32};
  const std::uint64_t per_client = args.quick ? 100 : 400;

  Table table({"policy", "clients", "req/s", "p50 us", "p95 us", "p99 us",
               "occupancy"});
  std::vector<RunResult> runs;
  double no_batching_rps = 0, batched_rps = 0;
  for (const auto& pc : cases) {
    for (int clients : client_counts) {
      const auto r = run_load(pc, clients, per_client);
      runs.push_back(r);
      table.add_row({r.policy, static_cast<std::int64_t>(r.clients), r.rps,
                     r.p50_us, r.p95_us, r.p99_us, r.avg_occupancy});
      const bool saturating = clients == client_counts.back();
      if (saturating && r.policy == "no_batching") no_batching_rps = r.rps;
      if (saturating) batched_rps = std::max(batched_rps, r.rps);
    }
  }
  table.print(std::cout);
  std::printf("\nheadline: batched %.0f req/s vs no-batching %.0f req/s "
              "(%.1fx) at saturating load\n",
              batched_rps, no_batching_rps,
              no_batching_rps > 0 ? batched_rps / no_batching_rps : 0.0);

  run_streaming();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << to_json(runs, no_batching_rps, batched_rps, stream_runs);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
