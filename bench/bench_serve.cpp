// Closed-loop serving load generator: request throughput and latency
// percentiles of the serve::Engine versus offered load (client count), for
// several batching policies. The headline claim this reproduces: at
// saturating load, dynamic batching amortises the fixed per-launch host
// cost (see BENCH_sim_host.json) and serves >= 2x the request throughput
// of batch_size = 1.
//
// A second scenario measures the streaming / continuous-batching path:
// long streamed cumsum rows plus short interactive requests of the same
// GroupKey, once with continuation admission on and once boundary-only.
// Headlines: time-to-first-chunk is a fraction of the full-response
// latency, and continuation admission cuts the interactive queue wait.
//
// A third scenario measures the SLO / preemption path: saturating bulk
// load (long multi-step cumsum launches) against deadline-bearing
// interactive traffic of a different GroupKey, once with tile-boundary
// preemption on and once off. Headline: preemption strictly lowers the
// interactive deadline-miss rate and p99 at the same offered load.
//
//   bench_serve [--quick] [--stream] [--slo] [--json PATH]
//   bench_serve --slo-stress SECONDS [--seed S]
//
// --stream runs only the streaming scenario (the perf_smoke_stream test).
// --slo runs only the SLO / preemption scenario.
// --slo-stress runs a seeded randomized deadline/tier/preemption soak for
// SECONDS wall seconds and exits nonzero on any invariant violation (CI
// runs this for 30 s per push).
// --json writes the full sweep as one JSON object (tools/run_serve_bench.sh
// puts it at BENCH_serve.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "kernels/vec_ref.hpp"
#include "serve/engine.hpp"

using namespace ascend;
using namespace ascend::bench;
using namespace ascan::serve;

namespace {

struct PolicyCase {
  const char* name;
  BatchPolicy policy;
};

struct RunResult {
  std::string policy;
  int clients = 0;
  std::uint64_t requests = 0;
  double wall_s = 0;
  double rps = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  double avg_occupancy = 0;
  std::uint64_t rejected = 0;
  vecref::VerifyStats verify;  ///< every Ok response checked bit-for-bit
};

/// Closed loop: each client thread submits, waits for the future, repeats.
/// Offered load is therefore bounded by `clients` outstanding requests.
RunResult run_load(const PolicyCase& pc, int clients,
                   std::uint64_t requests_per_client) {
  Engine engine({.policy = pc.policy});
  std::mutex verify_mu;
  vecref::VerifyStats verify;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Mixed row lengths exercise the zero-padding path; all requests
      // share a GroupKey so they stay coalescible. Every Ok response is
      // checked bit-for-bit against the SIMD host reference (0/1 rows:
      // the exact-comparison corpus), so the throughput figures certify
      // correct answers, not just resolved futures.
      Rng rng(100 + static_cast<std::uint64_t>(c));
      vecref::VerifyStats local;
      for (std::uint64_t i = 0; i < requests_per_client; ++i) {
        const std::size_t n = 128 + 64 * ((i + static_cast<std::uint64_t>(c)) % 4);
        std::vector<ascan::half> x(n);
        for (auto& v : x) v = ascan::half(rng.bernoulli(0.5) ? 1.0f : 0.0f);
        const auto input = x;
        const auto resp = engine.submit(Request::cumsum(std::move(x))).get();
        if (resp.ok()) vecref::verify_cumsum(input, resp.values_f16, local);
      }
      std::lock_guard<std::mutex> lk(verify_mu);
      verify.merge(local);
    });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  engine.shutdown(ShutdownMode::Drain);

  const auto m = engine.metrics();
  RunResult r;
  r.policy = pc.name;
  r.clients = clients;
  r.requests = m.completed;
  r.wall_s = wall;
  r.rps = wall > 0 ? static_cast<double>(m.completed) / wall : 0;
  r.p50_us = m.total_latency.percentile(0.50) * 1e6;
  r.p95_us = m.total_latency.percentile(0.95) * 1e6;
  r.p99_us = m.total_latency.percentile(0.99) * 1e6;
  r.avg_occupancy = m.avg_batch_occupancy;
  r.rejected = m.rejected_capacity;
  r.verify = verify;
  return r;
}

/// One streaming-scenario measurement: long streamed bulk rows and short
/// interactive requests of the same GroupKey served concurrently.
struct StreamResult {
  std::string mode;  ///< "continuous" | "boundary_only"
  std::uint64_t long_requests = 0, short_requests = 0;
  double ttfc_us = 0;          ///< mean client time-to-first-chunk (long rows)
  double full_latency_us = 0;  ///< mean client full-response latency
  double interactive_queue_us = 0;  ///< mean interactive queue wait
  std::uint64_t continuation_admits = 0;
  std::uint64_t stream_chunks = 0;
};

/// Long streamed rows (12 steps at tile 16) from bulk clients while
/// interactive clients submit single-step rows with the same GroupKey. The
/// only difference between the two modes is BatchPolicy::continuous: with
/// it on, the short rows join the in-flight launch between steps instead of
/// waiting for it to finish.
StreamResult run_stream_scenario(bool continuous, int long_clients,
                                 int short_clients,
                                 std::uint64_t long_per_client,
                                 std::uint64_t short_per_client) {
  constexpr std::size_t kTile = 16;
  constexpr std::size_t kLongLen = kTile * kTile * 12;
  constexpr std::size_t kShortLen = kTile * kTile;
  Engine engine({.policy = {.max_batch = 8, .max_wait_s = 200e-6,
                            .continuous = continuous}});
  std::mutex mu;
  double ttfc_sum = 0, full_sum = 0, queue_sum = 0;
  std::uint64_t ttfc_n = 0, queue_n = 0;

  const auto fill = [](Rng& rng, std::size_t n) {
    std::vector<ascan::half> x(n);
    for (auto& v : x) v = ascan::half(rng.bernoulli(0.5) ? 1.0f : 0.0f);
    return x;
  };

  std::vector<std::thread> threads;
  for (int c = 0; c < long_clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(500 + static_cast<std::uint64_t>(c));
      for (std::uint64_t i = 0; i < long_per_client; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        double first = -1;
        Request r = Request::cumsum(fill(rng, kLongLen), kTile, false,
                                    Priority::Bulk);
        r.on_chunk = [&](const StreamChunk&) {
          if (first < 0) {
            first = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
          }
        };
        engine.submit(std::move(r)).get();
        const double total = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
        std::lock_guard<std::mutex> lk(mu);
        full_sum += total;
        if (first >= 0) {
          ttfc_sum += first;
          ++ttfc_n;
        }
      }
    });
  }
  for (int c = 0; c < short_clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(900 + static_cast<std::uint64_t>(c));
      for (std::uint64_t i = 0; i < short_per_client; ++i) {
        const auto resp = engine.submit(Request::cumsum(fill(rng, kShortLen),
                                                        kTile))
                              .get();
        std::lock_guard<std::mutex> lk(mu);
        queue_sum += resp.timing.queue_s;
        ++queue_n;
      }
    });
  }
  for (auto& t : threads) t.join();
  engine.shutdown(ShutdownMode::Drain);

  const auto m = engine.metrics();
  StreamResult r;
  r.mode = continuous ? "continuous" : "boundary_only";
  r.long_requests =
      static_cast<std::uint64_t>(long_clients) * long_per_client;
  r.short_requests =
      static_cast<std::uint64_t>(short_clients) * short_per_client;
  r.ttfc_us = ttfc_n ? ttfc_sum / static_cast<double>(ttfc_n) * 1e6 : 0;
  r.full_latency_us =
      r.long_requests ? full_sum / static_cast<double>(r.long_requests) * 1e6
                      : 0;
  r.interactive_queue_us =
      queue_n ? queue_sum / static_cast<double>(queue_n) * 1e6 : 0;
  r.continuation_admits = m.continuation_admits;
  r.stream_chunks = m.stream_chunks;
  return r;
}

std::string stream_json(const std::vector<StreamResult>& runs) {
  std::ostringstream os;
  os << "  \"streaming\": {\n"
     << "    \"workload\": \"streamed cumsum rows of 3072 fp16 elements "
        "(tile 16, 12 steps) + interactive 256-element rows, same "
        "GroupKey\",\n"
     << "    \"modes\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    os << "      {\"mode\": \"" << r.mode
       << "\", \"long_requests\": " << r.long_requests
       << ", \"short_requests\": " << r.short_requests
       << ", \"time_to_first_chunk_us\": " << r.ttfc_us
       << ", \"full_latency_us\": " << r.full_latency_us
       << ", \"interactive_queue_us\": " << r.interactive_queue_us
       << ", \"continuation_admits\": " << r.continuation_admits
       << ", \"stream_chunks\": " << r.stream_chunks << "}"
       << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }";
  return os.str();
}

// ---------------------------------------------------------------------------
// SLO / preemption scenario.

struct SloResult {
  std::string mode;  ///< "preemption" | "no_preemption"
  std::uint64_t interactive_requests = 0;
  std::uint64_t deadline_misses = 0;
  double miss_rate = 0;
  double interactive_p50_us = 0, interactive_p99_us = 0;
  double bulk_mean_us = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t preempted_tiles_resumed = 0;
};

double percentile_of(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = std::min(
      v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(v.size())));
  return v[idx];
}

/// Saturating bulk load — long multi-step cumsum launches (tile 16) kept
/// continuously in flight by closed-loop bulk clients — against
/// interactive clients submitting short gold-tier rows of a *different*
/// GroupKey (tile 64) with a per-request deadline. The only difference
/// between the two modes is BatchPolicy::preemption: with it on, a queued
/// interactive deadline parks the bulk launch at the next tile boundary
/// instead of waiting out its remaining steps.
SloResult run_slo_scenario(bool preemption, double deadline_s,
                           int bulk_clients, int inter_clients,
                           std::uint64_t bulk_per, std::uint64_t inter_per) {
  constexpr std::size_t kTile = 16;
  constexpr std::size_t kBulkLen = kTile * kTile * 48;  // 48 tile boundaries
  constexpr std::size_t kInterLen = 256;  // tile 64: one step, distinct key
  // Aging limit far above the deadline scale: the scenario measures the
  // preemption lever in isolation (the no-starvation interplay is pinned
  // by tests/test_slo.cpp).
  Engine engine({.policy = {.max_batch = 4,
                            .max_wait_s = 100e-6,
                            .aging_factor = 1e6,
                            .preemption = preemption,
                            .preempt_slack_s = deadline_s}});
  std::mutex mu;
  std::vector<double> inter_lat;
  double bulk_sum = 0;
  std::uint64_t misses = 0;

  const auto fill = [](Rng& rng, std::size_t n) {
    std::vector<ascan::half> x(n);
    for (auto& v : x) v = ascan::half(rng.bernoulli(0.5) ? 1.0f : 0.0f);
    return x;
  };
  std::vector<std::thread> threads;
  for (int c = 0; c < bulk_clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(1500 + static_cast<std::uint64_t>(c));
      for (std::uint64_t i = 0; i < bulk_per; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        engine
            .submit(Request::cumsum(fill(rng, kBulkLen), kTile, false,
                                    Priority::Bulk))
            .get();
        const double total = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
        std::lock_guard<std::mutex> lk(mu);
        bulk_sum += total;
      }
    });
  }
  for (int c = 0; c < inter_clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(1900 + static_cast<std::uint64_t>(c));
      for (std::uint64_t i = 0; i < inter_per; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto resp =
            engine
                .submit(Request::cumsum(fill(rng, kInterLen), 64)
                            .with_slo(SloTier::Gold, deadline_s))
                .get();
        const double total = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
        std::lock_guard<std::mutex> lk(mu);
        inter_lat.push_back(total);
        if (resp.deadline_missed) ++misses;
      }
    });
  }
  for (auto& t : threads) t.join();
  engine.shutdown(ShutdownMode::Drain);

  const auto m = engine.metrics();
  SloResult r;
  r.mode = preemption ? "preemption" : "no_preemption";
  r.interactive_requests = inter_lat.size();
  r.deadline_misses = misses;
  r.miss_rate = inter_lat.empty()
                    ? 0
                    : static_cast<double>(misses) /
                          static_cast<double>(inter_lat.size());
  r.interactive_p50_us = percentile_of(inter_lat, 0.50) * 1e6;
  r.interactive_p99_us = percentile_of(inter_lat, 0.99) * 1e6;
  const auto bulk_total =
      static_cast<double>(bulk_clients) * static_cast<double>(bulk_per);
  r.bulk_mean_us = bulk_total > 0 ? bulk_sum / bulk_total * 1e6 : 0;
  r.preemptions = m.preemptions;
  r.preempted_tiles_resumed = m.preempted_tiles_resumed;
  return r;
}

/// One uncontended long bulk launch, to scale the scenario deadline to
/// whatever this host actually simulates the launch at.
double calibrate_bulk_wall_s() {
  Engine engine({.policy = {.max_batch = 1, .max_wait_s = 0}});
  Rng rng(7);
  std::vector<ascan::half> x(16 * 16 * 48);
  for (auto& v : x) v = ascan::half(rng.bernoulli(0.5) ? 1.0f : 0.0f);
  const auto t0 = std::chrono::steady_clock::now();
  engine.submit(Request::cumsum(std::move(x), 16, false, Priority::Bulk))
      .get();
  const double w = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  engine.shutdown(ShutdownMode::Drain);
  return w;
}

std::string slo_json(const std::vector<SloResult>& runs, double deadline_s) {
  std::ostringstream os;
  os << "  \"slo\": {\n"
     << "    \"workload\": \"bulk cumsum rows of 12288 fp16 elements "
        "(tile 16, 48 boundaries) + gold-tier 256-element rows, distinct "
        "GroupKey\",\n"
     << "    \"deadline_us\": " << deadline_s * 1e6 << ",\n"
     << "    \"modes\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    os << "      {\"mode\": \"" << r.mode
       << "\", \"interactive_requests\": " << r.interactive_requests
       << ", \"deadline_misses\": " << r.deadline_misses
       << ", \"miss_rate\": " << r.miss_rate
       << ", \"interactive_p50_us\": " << r.interactive_p50_us
       << ", \"interactive_p99_us\": " << r.interactive_p99_us
       << ", \"bulk_mean_us\": " << r.bulk_mean_us
       << ", \"preemptions\": " << r.preemptions
       << ", \"preempted_tiles_resumed\": " << r.preempted_tiles_resumed
       << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }";
  return os.str();
}

// ---------------------------------------------------------------------------
// Seeded SLO soak (CI): randomized tiers, deadlines and lengths under
// full preemption for a fixed wall duration. Every future must resolve
// Ok; the process exits nonzero on any violation.

int run_slo_stress(double seconds, std::uint64_t seed) {
  std::printf("slo stress: %.0f s, seed %llu\n", seconds,
              static_cast<unsigned long long>(seed));
  Engine engine({.policy = {.max_batch = 4,
                            .max_wait_s = 100e-6,
                            .aging_factor = 16.0,
                            .preempt_slack_s = 0},  // adaptive horizon
                 .max_queue = 512});
  std::atomic<std::uint64_t> served{0};
  std::atomic<bool> violated{false};
  const auto t_end =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  std::vector<std::thread> threads;
  for (int c = 0; c < 6; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed * 1000003ull + static_cast<std::uint64_t>(c));
      while (std::chrono::steady_clock::now() < t_end) {
        Request r = [&] {
          if (rng.bernoulli(0.3)) {  // long preemptible bulk launch
            const std::size_t n = 16 * 16 * (8 + rng.next_below(40));
            std::vector<ascan::half> x(n);
            for (auto& v : x) v = ascan::half(rng.bernoulli(0.5) ? 1.f : 0.f);
            return Request::cumsum(std::move(x), 16, false, Priority::Bulk);
          }
          std::vector<ascan::half> x(64 + 64 * rng.next_below(8));
          for (auto& v : x) v = ascan::half(rng.bernoulli(0.5) ? 1.f : 0.f);
          return Request::cumsum(std::move(x), 64);
        }();
        if (rng.bernoulli(0.7)) {
          const auto tier = static_cast<SloTier>(rng.next_below(3));
          r.with_slo(tier, 100e-6 * static_cast<double>(1 + rng.next_below(50)));
        }
        const auto resp = engine.submit(std::move(r)).get();
        if (!resp.ok()) {
          std::fprintf(stderr, "slo stress: request failed: %s\n",
                       resp.reason.c_str());
          violated.store(true);
          return;
        }
        served.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  engine.shutdown(ShutdownMode::Drain);
  const auto m = engine.metrics();
  std::printf("slo stress: served %llu (misses %llu, preemptions %llu, "
              "parked tiles resumed %llu)\n",
              static_cast<unsigned long long>(served.load()),
              static_cast<unsigned long long>(m.deadline_misses),
              static_cast<unsigned long long>(m.preemptions),
              static_cast<unsigned long long>(m.preempted_tiles_resumed));
  if (m.admitted != m.completed) {
    std::fprintf(stderr, "slo stress: admitted %llu != completed %llu\n",
                 static_cast<unsigned long long>(m.admitted),
                 static_cast<unsigned long long>(m.completed));
    violated.store(true);
  }
  return violated.load() ? 1 : 0;
}

std::string to_json(const std::vector<RunResult>& runs, double no_batching_rps,
                    double batched_rps,
                    const std::vector<StreamResult>& stream_runs,
                    const std::vector<SloResult>& slo_runs,
                    double slo_deadline_s) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"serve_closed_loop\",\n"
     << "  \"machine\": \"simulated Ascend 910B4\",\n"
     << "  \"workload\": \"cumsum rows of 128..320 fp16 elements\",\n"
     << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    os << "    {\"policy\": \"" << r.policy << "\", \"clients\": " << r.clients
       << ", \"requests\": " << r.requests << ", \"wall_s\": " << r.wall_s
       << ", \"rps\": " << r.rps << ", \"p50_us\": " << r.p50_us
       << ", \"p95_us\": " << r.p95_us << ", \"p99_us\": " << r.p99_us
       << ", \"avg_occupancy\": " << r.avg_occupancy
       << ", \"rejected\": " << r.rejected
       << ", \"verified\": " << r.verify.requests
       << ", \"mismatches\": " << r.verify.mismatches << "}"
       << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  vecref::VerifyStats all;
  for (const auto& r : runs) all.merge(r.verify);
  os << "  ],\n  \"verify\": {\"note\": \"every Ok response compared "
        "bit-for-bit against the SIMD host reference (kernels/vec_ref)\", "
        "\"requests\": "
     << all.requests << ", \"elements\": " << all.elements
     << ", \"mismatches\": " << all.mismatches << ", \"bit_exact\": "
     << (all.clean() ? "true" : "false") << "},\n"
     << "  \"headline\": {\"no_batching_rps\": " << no_batching_rps
     << ", \"batched_rps\": " << batched_rps << ", \"ratio\": "
     << (no_batching_rps > 0 ? batched_rps / no_batching_rps : 0) << "},\n"
     << stream_json(stream_runs) << ",\n"
     << slo_json(slo_runs, slo_deadline_s) << "\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  std::string json_path;
  bool stream_only = false;
  bool slo_only = false;
  double stress_seconds = 0;
  std::uint64_t stress_seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::string(argv[i]) == "--stream") stream_only = true;
    if (std::string(argv[i]) == "--slo") slo_only = true;
    if (std::string(argv[i]) == "--slo-stress" && i + 1 < argc) {
      stress_seconds = std::atof(argv[i + 1]);
    }
    if (std::string(argv[i]) == "--seed" && i + 1 < argc) {
      stress_seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
    }
  }
  if (stress_seconds > 0) return run_slo_stress(stress_seconds, stress_seed);

  std::vector<StreamResult> stream_runs;
  const auto run_streaming = [&] {
    print_header("Streaming / continuous batching",
                 "long streamed rows + interactive same-key traffic");
    const int long_clients = args.quick ? 2 : 4;
    const int short_clients = args.quick ? 2 : 4;
    const std::uint64_t long_per = args.quick ? 6 : 16;
    const std::uint64_t short_per = args.quick ? 40 : 150;
    Table st({"mode", "ttfc us", "full us", "inter q us", "cont admits",
              "chunks"});
    for (bool continuous : {true, false}) {
      const auto r = run_stream_scenario(continuous, long_clients,
                                         short_clients, long_per, short_per);
      stream_runs.push_back(r);
      st.add_row({r.mode, r.ttfc_us, r.full_latency_us,
                  r.interactive_queue_us,
                  static_cast<std::int64_t>(r.continuation_admits),
                  static_cast<std::int64_t>(r.stream_chunks)});
    }
    st.print(std::cout);
    const auto& cont = stream_runs[0];
    const auto& bound = stream_runs[1];
    std::printf("\nstreaming: first chunk after %.0f us vs %.0f us full "
                "response (%.1fx earlier); continuation admission cuts "
                "interactive queue wait %.0f us -> %.0f us\n",
                cont.ttfc_us, cont.full_latency_us,
                cont.ttfc_us > 0 ? cont.full_latency_us / cont.ttfc_us : 0.0,
                bound.interactive_queue_us, cont.interactive_queue_us);
  };

  std::vector<SloResult> slo_runs;
  double slo_deadline_s = 0;
  const auto run_slo = [&] {
    print_header("SLO tiers / tile-boundary preemption",
                 "saturating bulk load vs gold-tier deadline traffic");
    // Scale the deadline to this host: a third of one uncontended bulk
    // launch. Without preemption an interactive arrival mid-launch waits
    // out the remaining steps and blows through it; with preemption it
    // waits at most one tile step.
    const double bulk_wall = calibrate_bulk_wall_s();
    slo_deadline_s = std::max(200e-6, bulk_wall / 3.0);
    const int bulk_clients = 2;
    const int inter_clients = args.quick ? 2 : 4;
    const std::uint64_t bulk_per = args.quick ? 8 : 24;
    const std::uint64_t inter_per = args.quick ? 60 : 200;
    Table st({"mode", "inter p50 us", "inter p99 us", "miss rate",
              "bulk mean us", "preemptions"});
    for (bool preemption : {true, false}) {
      const auto r = run_slo_scenario(preemption, slo_deadline_s,
                                      bulk_clients, inter_clients, bulk_per,
                                      inter_per);
      slo_runs.push_back(r);
      st.add_row({r.mode, r.interactive_p50_us, r.interactive_p99_us,
                  r.miss_rate, r.bulk_mean_us,
                  static_cast<std::int64_t>(r.preemptions)});
    }
    st.print(std::cout);
    const auto& on = slo_runs[0];
    const auto& off = slo_runs[1];
    std::printf("\nslo: deadline %.0f us; preemption cuts interactive p99 "
                "%.0f us -> %.0f us and miss rate %.1f%% -> %.1f%% "
                "(%llu parks)\n",
                slo_deadline_s * 1e6, off.interactive_p99_us,
                on.interactive_p99_us, off.miss_rate * 100,
                on.miss_rate * 100,
                static_cast<unsigned long long>(on.preemptions));
  };

  if (stream_only) {
    run_streaming();
    return 0;
  }
  if (slo_only) {
    run_slo();
    return 0;
  }

  print_header("Serving throughput",
               "closed-loop load vs batching policy (serve::Engine)");

  const PolicyCase cases[] = {
      {"no_batching", {.max_batch = 1, .max_wait_s = 0}},
      {"batch8_200us", {.max_batch = 8, .max_wait_s = 200e-6}},
      {"batch16_500us", {.max_batch = 16, .max_wait_s = 500e-6}},
      {"batch32_1ms", {.max_batch = 32, .max_wait_s = 1e-3}},
  };
  const std::vector<int> client_counts =
      args.quick ? std::vector<int>{1, 16} : std::vector<int>{1, 4, 16, 32};
  const std::uint64_t per_client = args.quick ? 100 : 400;

  Table table({"policy", "clients", "req/s", "p50 us", "p95 us", "p99 us",
               "occupancy"});
  std::vector<RunResult> runs;
  double no_batching_rps = 0, batched_rps = 0;
  for (const auto& pc : cases) {
    for (int clients : client_counts) {
      const auto r = run_load(pc, clients, per_client);
      runs.push_back(r);
      table.add_row({r.policy, static_cast<std::int64_t>(r.clients), r.rps,
                     r.p50_us, r.p95_us, r.p99_us, r.avg_occupancy});
      const bool saturating = clients == client_counts.back();
      if (saturating && r.policy == "no_batching") no_batching_rps = r.rps;
      if (saturating) batched_rps = std::max(batched_rps, r.rps);
    }
  }
  table.print(std::cout);
  std::printf("\nheadline: batched %.0f req/s vs no-batching %.0f req/s "
              "(%.1fx) at saturating load\n",
              batched_rps, no_batching_rps,
              no_batching_rps > 0 ? batched_rps / no_batching_rps : 0.0);
  vecref::VerifyStats all_verify;
  for (const auto& r : runs) all_verify.merge(r.verify);
  std::printf("verify: %llu responses (%llu elements) checked against the "
              "SIMD host reference, %llu bit mismatches%s\n",
              static_cast<unsigned long long>(all_verify.requests),
              static_cast<unsigned long long>(all_verify.elements),
              static_cast<unsigned long long>(all_verify.mismatches),
              all_verify.clean() ? "" : "  ** BIT-EXACTNESS BROKEN **");
  if (!all_verify.clean()) return 1;

  run_streaming();
  run_slo();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << to_json(runs, no_batching_rps, batched_rps, stream_runs, slo_runs,
                   slo_deadline_s);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
