// Closed-loop serving load generator: request throughput and latency
// percentiles of the serve::Engine versus offered load (client count), for
// several batching policies. The headline claim this reproduces: at
// saturating load, dynamic batching amortises the fixed per-launch host
// cost (see BENCH_sim_host.json) and serves >= 2x the request throughput
// of batch_size = 1.
//
//   bench_serve [--quick] [--json PATH]
//
// --json writes the full sweep as one JSON object (tools/run_serve_bench.sh
// puts it at BENCH_serve.json).
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "serve/engine.hpp"

using namespace ascend;
using namespace ascend::bench;
using namespace ascan::serve;

namespace {

struct PolicyCase {
  const char* name;
  BatchPolicy policy;
};

struct RunResult {
  std::string policy;
  int clients = 0;
  std::uint64_t requests = 0;
  double wall_s = 0;
  double rps = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  double avg_occupancy = 0;
  std::uint64_t rejected = 0;
};

/// Closed loop: each client thread submits, waits for the future, repeats.
/// Offered load is therefore bounded by `clients` outstanding requests.
RunResult run_load(const PolicyCase& pc, int clients,
                   std::uint64_t requests_per_client) {
  Engine engine({.policy = pc.policy});
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Mixed row lengths exercise the zero-padding path; all requests
      // share a GroupKey so they stay coalescible.
      Rng rng(100 + static_cast<std::uint64_t>(c));
      for (std::uint64_t i = 0; i < requests_per_client; ++i) {
        const std::size_t n = 128 + 64 * ((i + static_cast<std::uint64_t>(c)) % 4);
        std::vector<ascan::half> x(n);
        for (auto& v : x) v = ascan::half(rng.bernoulli(0.5) ? 1.0f : 0.0f);
        engine.submit(Request::cumsum(std::move(x))).get();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  engine.shutdown(ShutdownMode::Drain);

  const auto m = engine.metrics();
  RunResult r;
  r.policy = pc.name;
  r.clients = clients;
  r.requests = m.completed;
  r.wall_s = wall;
  r.rps = wall > 0 ? static_cast<double>(m.completed) / wall : 0;
  r.p50_us = m.total_latency.percentile(0.50) * 1e6;
  r.p95_us = m.total_latency.percentile(0.95) * 1e6;
  r.p99_us = m.total_latency.percentile(0.99) * 1e6;
  r.avg_occupancy = m.avg_batch_occupancy;
  r.rejected = m.rejected_capacity;
  return r;
}

std::string to_json(const std::vector<RunResult>& runs, double no_batching_rps,
                    double batched_rps) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"serve_closed_loop\",\n"
     << "  \"machine\": \"simulated Ascend 910B4\",\n"
     << "  \"workload\": \"cumsum rows of 128..320 fp16 elements\",\n"
     << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    os << "    {\"policy\": \"" << r.policy << "\", \"clients\": " << r.clients
       << ", \"requests\": " << r.requests << ", \"wall_s\": " << r.wall_s
       << ", \"rps\": " << r.rps << ", \"p50_us\": " << r.p50_us
       << ", \"p95_us\": " << r.p95_us << ", \"p99_us\": " << r.p99_us
       << ", \"avg_occupancy\": " << r.avg_occupancy
       << ", \"rejected\": " << r.rejected << "}"
       << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"headline\": {\"no_batching_rps\": " << no_batching_rps
     << ", \"batched_rps\": " << batched_rps << ", \"ratio\": "
     << (no_batching_rps > 0 ? batched_rps / no_batching_rps : 0) << "}\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  print_header("Serving throughput",
               "closed-loop load vs batching policy (serve::Engine)");

  const PolicyCase cases[] = {
      {"no_batching", {.max_batch = 1, .max_wait_s = 0}},
      {"batch8_200us", {.max_batch = 8, .max_wait_s = 200e-6}},
      {"batch16_500us", {.max_batch = 16, .max_wait_s = 500e-6}},
      {"batch32_1ms", {.max_batch = 32, .max_wait_s = 1e-3}},
  };
  const std::vector<int> client_counts =
      args.quick ? std::vector<int>{1, 16} : std::vector<int>{1, 4, 16, 32};
  const std::uint64_t per_client = args.quick ? 100 : 400;

  Table table({"policy", "clients", "req/s", "p50 us", "p95 us", "p99 us",
               "occupancy"});
  std::vector<RunResult> runs;
  double no_batching_rps = 0, batched_rps = 0;
  for (const auto& pc : cases) {
    for (int clients : client_counts) {
      const auto r = run_load(pc, clients, per_client);
      runs.push_back(r);
      table.add_row({r.policy, static_cast<std::int64_t>(r.clients), r.rps,
                     r.p50_us, r.p95_us, r.p99_us, r.avg_occupancy});
      const bool saturating = clients == client_counts.back();
      if (saturating && r.policy == "no_batching") no_batching_rps = r.rps;
      if (saturating) batched_rps = std::max(batched_rps, r.rps);
    }
  }
  table.print(std::cout);
  std::printf("\nheadline: batched %.0f req/s vs no-batching %.0f req/s "
              "(%.1fx) at saturating load\n",
              batched_rps, no_batching_rps,
              no_batching_rps > 0 ? batched_rps / no_batching_rps : 0.0);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << to_json(runs, no_batching_rps, batched_rps);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
