#include "kernels/copy_kernel.hpp"

#include "kernels/common.hpp"

namespace ascend::kernels {

using namespace acc;

template <typename T>
sim::Report copy_kernel(Device& dev, GlobalTensor<T> x, GlobalTensor<T> y,
                        std::size_t n, int blocks) {
  ASCAN_CHECK(x.size() >= n && y.size() >= n, "copy: tensors too small");
  if (n == 0) {
    sim::Report r;
    r.launches = 1;
    r.time_s = dev.config().launch_overhead_s;
    return r;
  }
  const int nb = blocks > 0 ? blocks : dev.config().num_vec_cores();
  constexpr std::size_t kChunk = 16384;
  const std::size_t chunks = num_tiles(n, kChunk);

  return launch(
      dev, {.block_dim = nb, .mode = LaunchMode::VectorOnly, .name = "copy"},
      [&, n, chunks, nb](KernelContext& ctx) {
        TPipe pipe(ctx);
        TQue q(ctx, TPosition::VECIN);
        pipe.InitBuffer(q, 2, kChunk * sizeof(T));
        const BlockShare share = block_share(chunks, nb, ctx.GetBlockIdx());
        for (std::size_t c = share.begin; c < share.begin + share.count; ++c) {
          const TileRange r = tile_range(c, n, kChunk);
          auto t = q.AllocTensor<T>();
          DataCopy(ctx, t, x.sub(r.begin, r.len), r.len);
          q.EnQue(t);
          auto u = q.DeQue<T>();
          DataCopy(ctx, y.sub(r.begin, r.len), u, r.len);
          q.FreeTensor(u);
        }
      });
}

template sim::Report copy_kernel<half>(Device&, GlobalTensor<half>,
                                       GlobalTensor<half>, std::size_t, int);
template sim::Report copy_kernel<float>(Device&, GlobalTensor<float>,
                                        GlobalTensor<float>, std::size_t, int);

}  // namespace ascend::kernels
