// Scan-based sampling operators (§5): top-p (nucleus) sampling as in the
// Llama-3 pipeline, and inverse-transform weighted sampling.
//
// Top-p with the radix sort is "a scan-intensive operator": 16 scans for
// the fp16 radix sort plus one cumulative-sum scan — the 17 scans per batch
// the paper counts. After the descending sort, the nucleus is a *prefix* of
// the sorted array, so the final inverse-transform draw reuses the same
// cumulative sums: a count-below kernel finds the sampled position.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/report.hpp"

namespace ascend::kernels {

struct SamplingOptions {
  std::size_t s = 128;
  int blocks = 0;
  bool use_baseline_ops = false;  ///< torch.sort + torch.cumsum pipeline
};

struct TopPResult {
  sim::Report report;
  std::int32_t token = -1;    ///< sampled original index
  std::size_t nucleus = 0;    ///< tokens kept by the top-p mask
};

/// Draws one token from probs[0..n) with nucleus parameter p, using the
/// uniform variate u in [0,1). With use_baseline_ops the sort and scan run
/// on the baseline kernels (the "PyTorch" series of Fig. 13); otherwise on
/// radix sort + MCScan (the paper's s = 32/64/128 series).
TopPResult top_p_sample(acc::Device& dev, acc::GlobalTensor<half> probs,
                        std::size_t n, double p, double u,
                        const SamplingOptions& opt = {});

struct WeightedSampleResult {
  sim::Report report;
  std::int32_t index = -1;
};

/// Inverse-transform sampling: returns i with probability w[i]/sum(w).
/// Unlike the torch.multinomial baseline (support capped at 2^24, §5),
/// the support size is unbounded.
WeightedSampleResult weighted_sample(acc::Device& dev,
                                     acc::GlobalTensor<half> weights,
                                     std::size_t n, double u,
                                     const SamplingOptions& opt = {});

/// Building block: counts elements of the monotone array cum[0..m) that
/// are <= theta (vector compare + reduce, one count per block summed on
/// the host). Exposed for tests.
template <typename T>
std::size_t count_below(acc::Device& dev, acc::GlobalTensor<T> cum,
                        std::size_t m, double theta, sim::Report& rep,
                        int blocks = 0);

}  // namespace ascend::kernels
