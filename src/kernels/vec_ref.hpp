// SIMD host-side reference / verification path for the scan operators.
//
// ref::inclusive_scan is the semantic gold standard, but it is scalar and
// double-accumulating — fine for unit tests, too slow to verify every
// response of a closed-loop serving benchmark without the verification
// itself becoming the bottleneck (and perturbing the throughput being
// measured). This module recomputes cumsum / segmented-cumsum with AVX2
// 8-lane prefix sums so benches can check bit-exactness of every response
// at a small fraction of the launch cost.
//
// Exactness contract: for *integer-valued* inputs whose running sums stay
// below 2^24, every float addition here is exact, so the result is
// bit-identical to ref::inclusive_scan regardless of summation order (the
// SIMD tree order differs from the reference's sequential order). That is
// precisely the repo's exact-comparison corpus convention — the serving
// benches drive 0/1 rows, where any order of exact additions agrees. For
// general floats the tree order can round differently and this path is NOT
// a bit-exact stand-in for ref::; tests pin the integer-valued equivalence
// (tests/test_vecref.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/half.hpp"

namespace ascend::vecref {

/// Inclusive prefix sum, fp16 in / fp16 out — bit-identical to
/// ref::inclusive_scan<half, half> on integer-valued inputs (see header).
std::vector<half> inclusive_scan_f16(std::span<const half> x);

/// Inclusive prefix sum, fp16 in / fp32 out — matches
/// ref::inclusive_scan<half, float> under the same contract.
std::vector<float> inclusive_scan_f32(std::span<const half> x);

/// Segmented inclusive scan: y[i] = sum of x[j] for j in (last flagged
/// position <= i) .. i; position 0 implicitly starts a segment. fp16
/// values, fp32 output — the kernels::segmented_scan contract.
std::vector<float> segmented_inclusive_scan(std::span<const half> x,
                                            std::span<const std::int8_t> flags);

/// Element-wise bit mismatches (NaN payloads and signed zeros count as
/// distinct); a length difference counts every absent element.
std::uint64_t mismatch_count(std::span<const half> expected,
                             std::span<const half> got);
std::uint64_t mismatch_count(std::span<const float> expected,
                             std::span<const float> got);

/// Accumulated verification tallies for a bench run. Mismatches indicate a
/// bit-exactness break between the served responses and the host
/// reference — the counter the serving benches export as proof that the
/// throughput numbers are numbers for *correct* answers.
struct VerifyStats {
  std::uint64_t requests = 0;
  std::uint64_t elements = 0;
  std::uint64_t mismatches = 0;

  bool clean() const { return mismatches == 0; }
  void merge(const VerifyStats& o) {
    requests += o.requests;
    elements += o.elements;
    mismatches += o.mismatches;
  }
};

/// Recomputes the cumsum of `x` and tallies bit mismatches against `got`.
void verify_cumsum(std::span<const half> x, std::span<const half> got,
                   VerifyStats& stats);

/// Same for a segmented cumsum response.
void verify_segmented(std::span<const half> x,
                      std::span<const std::int8_t> flags,
                      std::span<const float> got, VerifyStats& stats);

}  // namespace ascend::vecref
