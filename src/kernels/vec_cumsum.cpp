#include "kernels/vec_cumsum.hpp"

#include "kernels/common.hpp"

namespace ascend::kernels {

using namespace acc;

sim::Report vec_cumsum(Device& dev, GlobalTensor<half> x, GlobalTensor<half> y,
                       std::size_t n) {
  ASCAN_CHECK(x.size() >= n && y.size() >= n, "vec_cumsum: tensors too small");
  if (n == 0) {
    sim::Report r;
    r.launches = 1;
    r.time_s = dev.config().launch_overhead_s;
    return r;
  }

  // CumSumInfo(128, 128): process 16K-element chunks (the same tile volume
  // as the cube kernels at s = 128, for a fair comparison).
  constexpr std::size_t kChunk = 128 * 128;
  const std::size_t tiles = num_tiles(n, kChunk);

  return launch(
      dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly,
            .name = "vec_cumsum", .outputs = {guard_output(y)}},
      [&, n, tiles](KernelContext& ctx) {
        TPipe pipe(ctx);
        TQue in(ctx, TPosition::VECIN), out(ctx, TPosition::VECOUT);
        pipe.InitBuffer(in, 2, kChunk * sizeof(half));
        pipe.InitBuffer(out, 2, kChunk * sizeof(half));

        half partial(0.0f);
        auto fetch = [&](std::size_t t) {
          const TileRange r = tile_range(t, n, kChunk);
          auto src = in.AllocTensor<half>();
          DataCopy(ctx, src, x.sub(r.begin, r.len), r.len);
          in.EnQue(src);
        };
        if (tiles > 0) fetch(0);
        for (std::size_t t = 0; t < tiles; ++t) {
          const TileRange r = tile_range(t, n, kChunk);
          if (t + 1 < tiles) fetch(t + 1);
          auto chunk = in.DeQue<half>();
          auto dst = out.AllocTensor<half>();
          CumSum(ctx, dst, chunk, r.len);
          in.FreeTensor(chunk);
          Adds(ctx, dst, dst, partial, r.len);
          partial = GetValue(ctx, dst, r.len - 1);
          DataCopy(ctx, y.sub(r.begin, r.len), dst, r.len);
          out.FreeTensor(dst);
        }
      });
}

}  // namespace ascend::kernels
