// CPU reference ("golden") implementations of every operator in the
// library. These define functional correctness for the device kernels; the
// test suite compares device results against them, exactly (integer-valued
// inputs) or within accumulated-rounding tolerances (general floats).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/dtype.hpp"
#include "common/half.hpp"

namespace ascend::ref {

/// Inclusive prefix sum with a wide accumulator (the cube path accumulates
/// float16 inputs in float32 / int8 in int32), cast to Out per element.
template <typename In, typename Out>
std::vector<Out> inclusive_scan(std::span<const In> x);

/// Exclusive prefix sum (first element 0).
template <typename In, typename Out>
std::vector<Out> exclusive_scan(std::span<const In> x);

/// Batched inclusive scan over `batch` rows of length `len` (row-major).
template <typename In, typename Out>
std::vector<Out> batched_inclusive_scan(std::span<const In> x,
                                        std::size_t batch, std::size_t len);

struct SplitResult {
  std::vector<half> values;
  std::vector<std::int32_t> indices;  ///< original input positions
  std::size_t num_true = 0;
};

/// Stable split: elements with mask != 0 first, then the rest; relative
/// order preserved in both groups (paper §5).
SplitResult split(std::span<const half> x, std::span<const std::int8_t> mask);

/// Compress / masked_select: only the mask != 0 elements, in order.
std::vector<half> compress(std::span<const half> x,
                           std::span<const std::int8_t> mask);

struct SortResult {
  std::vector<half> values;
  std::vector<std::int32_t> indices;
};

/// Stable ascending sort returning values and original indices (the
/// PyTorch sort() contract the paper's radix sort satisfies).
SortResult stable_sort(std::span<const half> x, bool descending = false);

/// Stable ascending sort of unsigned 16-bit keys with indices.
struct SortResultU16 {
  std::vector<std::uint16_t> values;
  std::vector<std::int32_t> indices;
};
SortResultU16 stable_sort_u16(std::span<const std::uint16_t> x);

struct TopKResult {
  std::vector<half> values;           ///< descending
  std::vector<std::int32_t> indices;
};

/// Largest k elements in descending order (ties broken by lower index
/// first, matching a stable descending sort).
TopKResult topk(std::span<const half> x, std::size_t k);

/// The Llama-3 top-p sampling pipeline (paper §5, §6.5): sort probabilities
/// descending, cumulative-sum, mask out tokens once the cumulative sum
/// exceeds p (keeping at least one), renormalise, then inverse-transform
/// sample with the uniform draw u in [0,1). Returns the sampled token id.
std::int32_t top_p_sample(std::span<const half> probs, double p, double u);

/// Inverse-transform weighted sampling: index i with probability
/// w[i] / sum(w), given uniform u in [0,1).
std::int32_t multinomial(std::span<const half> weights, double u);

/// Encodes fp16 bit patterns so unsigned integer comparison matches float
/// ordering (flip MSB of positives, all bits of negatives) — the radix
/// pre-processing step of §5; decode inverts it.
std::uint16_t radix_encode_f16(half h);
half radix_decode_f16(std::uint16_t bits);

}  // namespace ascend::ref
