// Vector-only scan baseline: the AscendC CumSum API path the paper
// benchmarks against in Fig. 3 (labelled "vec_only"), and the stand-in for
// the unoptimised torch.cumsum operator of Figs. 8 and 13.
//
// The kernel streams UB-sized chunks through one vector core, invokes the
// CumSum macro instruction per chunk (CumSumInfo 128x128 tiling as in the
// paper's comparison), and chains the chunks with a scalar partial.
#pragma once

#include <cstddef>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/report.hpp"

namespace ascend::kernels {

/// Inclusive scan of x[0..n) into y[0..n) on a single vector core.
sim::Report vec_cumsum(acc::Device& dev, acc::GlobalTensor<half> x,
                       acc::GlobalTensor<half> y, std::size_t n);

}  // namespace ascend::kernels
