#include "kernels/vec_ref.hpp"

#include <algorithm>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/check.hpp"

namespace ascend::vecref {

namespace {

#if defined(__AVX2__)
/// 8-lane inclusive prefix sum of one vector (Hillis–Steele within the
/// register: two in-lane shifted adds, then the low 128-bit lane's total
/// folded into the high lane). Tree order — exact for integer-valued data.
inline __m256 scan8(__m256 x) {
  x = _mm256_add_ps(x, _mm256_castsi256_ps(_mm256_slli_si256(
                           _mm256_castps_si256(x), 4)));
  x = _mm256_add_ps(x, _mm256_castsi256_ps(_mm256_slli_si256(
                           _mm256_castps_si256(x), 8)));
  // Each 128-bit lane now holds its own inclusive prefix; add the low
  // lane's total (element 3 broadcast) to every high-lane element.
  const __m256 tot = _mm256_shuffle_ps(x, x, 0xff);
  return _mm256_add_ps(x, _mm256_permute2f128_ps(tot, tot, 0x08));
}
#endif

/// In-place inclusive prefix sum over a float buffer: vector blocks of 8
/// with a sequential scalar carry between blocks, scalar tail.
void prefix_inplace(float* v, std::size_t n) {
  float carry = 0.0f;
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 8 <= n; i += 8) {
    const __m256 x =
        _mm256_add_ps(scan8(_mm256_loadu_ps(v + i)), _mm256_set1_ps(carry));
    _mm256_storeu_ps(v + i, x);
    carry = v[i + 7];
  }
#endif
  for (; i < n; ++i) {
    carry += v[i];
    v[i] = carry;
  }
}

}  // namespace

std::vector<half> inclusive_scan_f16(std::span<const half> x) {
  std::vector<float> wide(x.size());
  half_to_float_n(x.data(), wide.data(), x.size());
  prefix_inplace(wide.data(), wide.size());
  std::vector<half> out(x.size());
  float_to_half_n(wide.data(), out.data(), wide.size());
  return out;
}

std::vector<float> inclusive_scan_f32(std::span<const half> x) {
  std::vector<float> out(x.size());
  half_to_float_n(x.data(), out.data(), x.size());
  prefix_inplace(out.data(), out.size());
  return out;
}

std::vector<float> segmented_inclusive_scan(
    std::span<const half> x, std::span<const std::int8_t> flags) {
  ASCAN_CHECK(x.size() == flags.size(), "segmented scan: flag length mismatch");
  std::vector<float> out(x.size());
  half_to_float_n(x.data(), out.data(), x.size());
  std::size_t start = 0;
  while (start < out.size()) {
    // Find the end of the segment beginning at `start` and prefix-sum the
    // whole run vectorized; segment boundaries reset the carry. Long
    // segments (the common serving shape: one forced start per request)
    // spend nearly all elements in the 8-lane path.
    std::size_t end = start + 1;
    while (end < out.size() && flags[end] == 0) ++end;
    prefix_inplace(out.data() + start, end - start);
    start = end;
  }
  return out;
}

namespace {
template <typename T>
std::uint64_t bit_mismatches(std::span<const T> expected, std::span<const T> got) {
  const std::size_t n = std::min(expected.size(), got.size());
  std::uint64_t bad =
      static_cast<std::uint64_t>(std::max(expected.size(), got.size()) - n);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::memcmp(&expected[i], &got[i], sizeof(T)) != 0) ++bad;
  }
  return bad;
}
}  // namespace

std::uint64_t mismatch_count(std::span<const half> expected,
                             std::span<const half> got) {
  return bit_mismatches(expected, got);
}

std::uint64_t mismatch_count(std::span<const float> expected,
                             std::span<const float> got) {
  return bit_mismatches(expected, got);
}

void verify_cumsum(std::span<const half> x, std::span<const half> got,
                   VerifyStats& stats) {
  const auto expect = inclusive_scan_f16(x);
  stats.requests += 1;
  stats.elements += x.size();
  stats.mismatches += mismatch_count(std::span<const half>(expect), got);
}

void verify_segmented(std::span<const half> x,
                      std::span<const std::int8_t> flags,
                      std::span<const float> got, VerifyStats& stats) {
  const auto expect = segmented_inclusive_scan(x, flags);
  stats.requests += 1;
  stats.elements += x.size();
  stats.mismatches += mismatch_count(std::span<const float>(expect), got);
}

}  // namespace ascend::vecref
