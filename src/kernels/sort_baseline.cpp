#include "kernels/sort_baseline.hpp"

#include <algorithm>

#include "kernels/common.hpp"
#include "kernels/radix_sort.hpp"

namespace ascend::kernels {

using namespace acc;

namespace {

constexpr std::size_t kSeg = 8192;    ///< UB-resident segment length
constexpr std::size_t kMerge = 4096;  ///< streaming-merge chunk length

/// Streams the merge of runs A = [a_begin, a_begin+a_len) and
/// B = [b_begin, ...) into out[o_begin, ...) using UB chunks. The scalar
/// unit steers the data-dependent chunk consumption (one scalar decision
/// per chunk), the vector unit merges.
void merge_runs(KernelContext& ctx, GlobalTensor<std::uint16_t> keys,
                GlobalTensor<std::int32_t> idx,
                GlobalTensor<std::uint16_t> keys_out,
                GlobalTensor<std::int32_t> idx_out, std::size_t a_begin,
                std::size_t a_len, std::size_t b_begin, std::size_t b_len,
                std::size_t o_begin, const LocalTensor<std::uint16_t>& ka,
                const LocalTensor<std::int32_t>& ia,
                const LocalTensor<std::uint16_t>& kb,
                const LocalTensor<std::int32_t>& ib,
                const LocalTensor<std::uint16_t>& ko,
                const LocalTensor<std::int32_t>& io) {
  std::size_t ia_pos = 0, ib_pos = 0, out = 0;
  const std::size_t total = a_len + b_len;
  while (out < total) {
    const std::size_t take = std::min(kMerge, total - out);
    // Scalar-unit steering: find how many elements of each run feed the
    // next chunk (two-pointer over GM-resident keys).
    std::size_t na = 0, nb = 0;
    {
      std::size_t pa = ia_pos, pb = ib_pos;
      for (std::size_t k = 0; k < take; ++k) {
        const bool from_b =
            pa >= a_len ||
            (pb < b_len &&
             keys.data()[b_begin + pb] < keys.data()[a_begin + pa]);
        if (from_b) {
          ++pb;
        } else {
          ++pa;
        }
      }
      na = pa - ia_pos;
      nb = pb - ib_pos;
      ctx.record_compute(sim::EngineKind::Scalar,
                         ctx.cfg().scalar_read_cycles, "merge.steer", {}, {});
    }
    if (na > 0) {
      DataCopy(ctx, ka, keys.sub(a_begin + ia_pos, na), na);
      DataCopy(ctx, ia, idx.sub(a_begin + ia_pos, na), na);
    }
    if (nb > 0) {
      DataCopy(ctx, kb, keys.sub(b_begin + ib_pos, nb), nb);
      DataCopy(ctx, ib, idx.sub(b_begin + ib_pos, nb), nb);
    }
    MergeSorted(ctx, ko, io, ka, ia, na, kb, ib, nb);
    DataCopy(ctx, keys_out.sub(o_begin + out, take), ko, take);
    DataCopy(ctx, idx_out.sub(o_begin + out, take), io, take);
    ia_pos += na;
    ib_pos += nb;
    out += take;
  }
}

}  // namespace

sim::Report sort_baseline_f16(Device& dev, GlobalTensor<half> keys,
                              GlobalTensor<half> keys_out,
                              GlobalTensor<std::int32_t> idx_out,
                              std::size_t n, bool descending) {
  ASCAN_CHECK(keys.size() >= n && keys_out.size() >= n && idx_out.size() >= n,
              "sort_baseline: tensors too small");
  sim::Report rep;
  if (n == 0) {
    rep.launches = 1;
    rep.time_s = dev.config().launch_overhead_s;
    return rep;
  }

  const int nv = dev.config().num_vec_cores();
  auto enc_a = dev.alloc<std::uint16_t>(n);
  auto enc_b = dev.alloc<std::uint16_t>(n);
  auto idx_a = dev.alloc<std::int32_t>(n);
  auto idx_b = dev.alloc<std::int32_t>(n);

  rep += radix_encode_kernel(dev, keys, enc_a.tensor(), idx_a.tensor(), n,
                             descending);

  // --- Phase 1: sort 8K segments entirely inside the UB. -------------------
  const std::size_t segs = num_tiles(n, kSeg);
  rep += launch(
      dev,
      {.block_dim = nv, .mode = LaunchMode::VectorOnly, .name = "seg_sort"},
      [&, n, segs, nv](KernelContext& ctx) {
        TPipe pipe(ctx);
        TBuf k1(ctx, TPosition::VECIN), i1(ctx, TPosition::VECIN),
            k2(ctx, TPosition::VECCALC), i2(ctx, TPosition::VECCALC);
        pipe.InitBuffer(k1, kSeg * sizeof(std::uint16_t));
        pipe.InitBuffer(i1, kSeg * sizeof(std::int32_t));
        pipe.InitBuffer(k2, kSeg * sizeof(std::uint16_t));
        pipe.InitBuffer(i2, kSeg * sizeof(std::int32_t));
        auto ka = k1.Get<std::uint16_t>();
        auto ia = i1.Get<std::int32_t>();
        auto kb = k2.Get<std::uint16_t>();
        auto ib = i2.Get<std::int32_t>();

        auto enc = enc_a.tensor();
        auto idx = idx_a.tensor();
        const BlockShare share = block_share(segs, nv, ctx.GetBlockIdx());
        for (std::size_t sg = share.begin; sg < share.begin + share.count;
             ++sg) {
          const TileRange r = tile_range(sg, n, kSeg);
          DataCopy(ctx, ka, enc.sub(r.begin, r.len), r.len);
          DataCopy(ctx, ia, idx.sub(r.begin, r.len), r.len);
          Sort32(ctx, ka, ia, r.len);
          // Local merge passes: 32 -> 64 -> ... -> segment, ping-ponging
          // between the two UB buffers.
          auto* src_k = &ka;
          auto* src_i = &ia;
          auto* dst_k = &kb;
          auto* dst_i = &ib;
          for (std::size_t w = 32; w < r.len; w *= 2) {
            for (std::size_t off = 0; off < r.len; off += 2 * w) {
              const std::size_t la = std::min(w, r.len - off);
              const std::size_t lb =
                  off + la >= r.len ? 0 : std::min(w, r.len - off - la);
              MergeSorted(ctx, dst_k->sub(off, la + lb),
                          dst_i->sub(off, la + lb), src_k->sub(off, la),
                          src_i->sub(off, la),
                          la, src_k->sub(off + la, lb), src_i->sub(off + la, lb),
                          lb);
            }
            std::swap(src_k, dst_k);
            std::swap(src_i, dst_i);
          }
          DataCopy(ctx, enc.sub(r.begin, r.len), *src_k, r.len);
          DataCopy(ctx, idx.sub(r.begin, r.len), *src_i, r.len);
        }
      });

  // --- Phase 2: global merge tree, one launch per level. -------------------
  GlobalTensor<std::uint16_t> src_k = enc_a.tensor(), dst_k = enc_b.tensor();
  GlobalTensor<std::int32_t> src_i = idx_a.tensor(), dst_i = idx_b.tensor();
  for (std::size_t run = kSeg; run < n; run *= 2) {
    const std::size_t pairs = num_tiles(n, 2 * run);
    const int active = static_cast<int>(
        std::min<std::size_t>(pairs, static_cast<std::size_t>(nv)));
    rep += launch(
        dev, {.block_dim = active, .mode = LaunchMode::VectorOnly,
              .name = "merge_level"},
        [&, n, run, pairs, active](KernelContext& ctx) {
          TPipe pipe(ctx);
          TBuf k1(ctx, TPosition::VECIN), i1(ctx, TPosition::VECIN),
              k2(ctx, TPosition::VECIN), i2(ctx, TPosition::VECIN),
              k3(ctx, TPosition::VECOUT), i3(ctx, TPosition::VECOUT);
          pipe.InitBuffer(k1, kMerge * sizeof(std::uint16_t));
          pipe.InitBuffer(i1, kMerge * sizeof(std::int32_t));
          pipe.InitBuffer(k2, kMerge * sizeof(std::uint16_t));
          pipe.InitBuffer(i2, kMerge * sizeof(std::int32_t));
          pipe.InitBuffer(k3, kMerge * sizeof(std::uint16_t));
          pipe.InitBuffer(i3, kMerge * sizeof(std::int32_t));
          auto ka = k1.Get<std::uint16_t>();
          auto ia = i1.Get<std::int32_t>();
          auto kb = k2.Get<std::uint16_t>();
          auto ib = i2.Get<std::int32_t>();
          auto ko = k3.Get<std::uint16_t>();
          auto io = i3.Get<std::int32_t>();

          const BlockShare share =
              block_share(pairs, active, ctx.GetBlockIdx());
          for (std::size_t p = share.begin; p < share.begin + share.count;
               ++p) {
            const std::size_t a_begin = p * 2 * run;
            const std::size_t a_len = std::min(run, n - a_begin);
            const std::size_t b_begin = a_begin + a_len;
            const std::size_t b_len =
                b_begin >= n ? 0 : std::min(run, n - b_begin);
            merge_runs(ctx, src_k, src_i, dst_k, dst_i, a_begin, a_len,
                       b_begin, b_len, a_begin, ka, ia, kb, ib, ko, io);
          }
        });
    std::swap(src_k, dst_k);
    std::swap(src_i, dst_i);
  }

  rep += radix_decode_kernel(dev, src_k, keys_out, n, descending);
  // The indices live in a working buffer; copy them into the caller's.
  {
    const std::size_t chunks = num_tiles(n, kSeg);
    rep += launch(
        dev, {.block_dim = nv, .mode = LaunchMode::VectorOnly,
              .name = "idx_copy"},
        [&, n, chunks, nv](KernelContext& ctx) {
          TPipe pipe(ctx);
          TQue q(ctx, TPosition::VECIN);
          pipe.InitBuffer(q, 2, kSeg * sizeof(std::int32_t));
          const BlockShare share = block_share(chunks, nv, ctx.GetBlockIdx());
          for (std::size_t c = share.begin; c < share.begin + share.count;
               ++c) {
            const TileRange r = tile_range(c, n, kSeg);
            auto t = q.AllocTensor<std::int32_t>();
            DataCopy(ctx, t, src_i.sub(r.begin, r.len), r.len);
            DataCopy(ctx, idx_out.sub(r.begin, r.len), t, r.len);
            q.FreeTensor(t);
          }
        });
  }
  return rep;
}

}  // namespace ascend::kernels
