#include "kernels/segmented_scan.hpp"

#include "kernels/common.hpp"

namespace ascend::kernels {

using namespace acc;

namespace {
constexpr std::size_t kChunk = 4096;  // UB budget: several f32 scratches
}  // namespace

sim::Report segmented_scan(Device& dev, GlobalTensor<half> x,
                           GlobalTensor<std::int8_t> flags,
                           GlobalTensor<float> y, std::size_t n,
                           const SegmentedScanOptions& opt) {
  ASCAN_CHECK(x.size() >= n && flags.size() >= n && y.size() >= n,
              "segmented_scan: tensors too small");
  if (n == 0) {
    sim::Report r;
    r.launches = 1;
    r.time_s = dev.config().launch_overhead_s;
    return r;
  }

  const sim::MachineConfig& cfg = dev.config();
  const int blocks = opt.blocks > 0 ? opt.blocks : cfg.num_ai_cores;
  const int nb = blocks * cfg.vec_per_core;
  const std::size_t chunks = num_tiles(n, kChunk);
  const auto workers =
      std::min<std::size_t>(static_cast<std::size_t>(nb), chunks);

  // Per-worker aggregates: (has_start, tail sum after the last start).
  auto agg_flag = dev.alloc<std::int32_t>(workers, 0);
  auto agg_tail = dev.alloc<float>(workers, 0.0f);
  auto af_gm = agg_flag.tensor();
  auto at_gm = agg_tail.tensor();

  return launch(
      dev,
      {.block_dim = static_cast<int>(workers),
       .mode = LaunchMode::VectorOnly,
       .name = "segmented_scan",
       .outputs = {guard_output(y)}},
      [&, n, chunks, workers](KernelContext& ctx) {
        const auto w = static_cast<std::size_t>(ctx.GetBlockIdx());
        TPipe pipe(ctx);
        TQue xin(ctx, TPosition::VECIN), fin(ctx, TPosition::VECIN);
        pipe.InitBuffer(xin, 2, kChunk * sizeof(half));
        pipe.InitBuffer(fin, 2, kChunk);
        TBuf wb(ctx, TPosition::VECCALC), csb(ctx, TPosition::VECCALC),
            csxb(ctx, TPosition::VECCALC), sidb(ctx, TPosition::VECCALC),
            baseb(ctx, TPosition::VECCALC), gatherb(ctx, TPosition::VECOUT),
            smallb(ctx, TPosition::VECCALC);
        pipe.InitBuffer(wb, kChunk * sizeof(float));
        pipe.InitBuffer(csb, kChunk * sizeof(float));
        pipe.InitBuffer(csxb, (kChunk + 1) * sizeof(float));
        pipe.InitBuffer(sidb, kChunk * sizeof(std::int32_t));
        pipe.InitBuffer(baseb, (kChunk + 1) * sizeof(float));
        pipe.InitBuffer(gatherb, kChunk * sizeof(float));
        pipe.InitBuffer(smallb, 256);

        auto wide = wb.Get<float>();
        auto cs = csb.Get<float>();
        auto csx = csxb.Get<float>();
        auto segid = sidb.Get<std::int32_t>();
        auto bases = baseb.Get<float>();
        auto out = gatherb.Get<float>();
        auto small = smallb.Get<float>();
        auto small_i = smallb.Get<std::int32_t>();

        const BlockShare share = block_share(chunks, ctx.GetBlockDim(),
                                             ctx.GetBlockIdx());

        // Processes one chunk given the carry (sum of the open segment so
        // far); returns the updated (has_start, carry).
        auto process = [&](std::size_t c, bool emit, bool& has_start,
                           float& carry) {
          const TileRange r = tile_range(c, n, kChunk);
          auto xin_t = xin.AllocTensor<half>();
          DataCopy(ctx, xin_t, x.sub(r.begin, r.len), r.len);
          auto fin_t = fin.AllocTensor<std::int8_t>();
          DataCopy(ctx, fin_t, flags.sub(r.begin, r.len), r.len);

          Cast(ctx, wide, xin_t, r.len);
          xin.FreeTensor(xin_t);
          CumSum(ctx, cs, wide, r.len);                 // inclusive sums
          Sub(ctx, csx, cs, wide, r.len);               // exclusive sums
          // Segment ids local to the chunk: cumsum of the flags.
          Cast(ctx, segid, fin_t, r.len);
          CumSum(ctx, segid, segid, r.len);
          // Per-start bases: the exclusive sum at each flagged position.
          const std::size_t starts =
              GatherMask(ctx, bases.sub(1, kChunk), csx, fin_t, r.len);
          fin.FreeTensor(fin_t);

          if (emit) {
            // Slot 0 carries the running segment: y = cs - base + carry
            // for segid 0 elements, i.e. base[0] = -carry.
            SetValue(ctx, bases, 0, -carry);
            Gather(ctx, out, bases, segid, r.len);
            Sub(ctx, out, cs, out, r.len);
            DataCopy(ctx, y.sub(r.begin, r.len), out, r.len);
            // Carry out: the value of the last element's running segment.
            carry = GetValue(ctx, out, r.len - 1);
            has_start = has_start || starts > 0;
          } else {
            // Aggregate-only pass (phase I): tail = cs[last] - csx at the
            // last start (or previous carry + total when no start).
            const float total = GetValue(ctx, cs, r.len - 1);
            if (starts > 0) {
              const float last_base =
                  GetValue(ctx, bases, starts);  // slot `starts` (1-based)
              carry = total - last_base;
              has_start = true;
            } else {
              carry = carry + total;
            }
          }
        };

        // ---- Phase I: this worker's (has_start, tail) aggregate.
        bool has_start = false;
        float tail = 0.0f;
        for (std::size_t c = share.begin; c < share.begin + share.count;
             ++c) {
          process(c, /*emit=*/false, has_start, tail);
        }
        SetValue(ctx, small_i, 0, has_start ? 1 : 0);
        DataCopy(ctx, af_gm.sub(w, 1), small_i, 1);
        SetValue(ctx, small, 1, tail);
        DataCopy(ctx, at_gm.sub(w, 1), small.sub(1, 1), 1);

        ctx.SyncAll();

        // ---- Phase II: fold predececessors' aggregates right-to-left
        // until one with a start; that is this worker's carry-in.
        auto all_f = smallb.Get<std::int32_t>().sub(8, workers);
        auto all_t = baseb.Get<float>().sub(0, workers);
        if (w > 0) {
          DataCopy(ctx, all_f, af_gm, workers);
          DataCopy(ctx, all_t, at_gm, workers);
        }
        float carry = 0.0f;
        for (std::size_t j = w; j-- > 0;) {
          carry += GetValue(ctx, all_t, j);
          if (GetValue(ctx, all_f, j) != 0) break;
        }
        bool hs = false;
        for (std::size_t c = share.begin; c < share.begin + share.count;
             ++c) {
          process(c, /*emit=*/true, hs, carry);
        }
      });
}

}  // namespace ascend::kernels
