#include "kernels/topk.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "kernels/common.hpp"
#include "kernels/radix_sort.hpp"
#include "kernels/sort_baseline.hpp"
#include "kernels/split.hpp"

namespace ascend::kernels {

using namespace acc;

namespace {

constexpr std::size_t kChunk = 8192;

/// Vector kernel: mask[i] = (x[i] > pivot).
sim::Report compare_gt_kernel(Device& dev, GlobalTensor<half> x,
                              GlobalTensor<std::int8_t> mask, std::size_t n,
                              half pivot, int blocks) {
  const int nb = (blocks > 0 ? blocks : dev.config().num_ai_cores) *
                 dev.config().vec_per_core;
  const std::size_t chunks = num_tiles(n, kChunk);
  return launch(
      dev,
      {.block_dim = nb, .mode = LaunchMode::VectorOnly, .name = "cmp_gt"},
      [&, n, chunks, nb, pivot](KernelContext& ctx) {
        TPipe pipe(ctx);
        TBuf xb(ctx, TPosition::VECIN), mb(ctx, TPosition::VECOUT);
        pipe.InitBuffer(xb, kChunk * sizeof(half));
        pipe.InitBuffer(mb, kChunk);
        auto x_ub = xb.Get<half>();
        auto m_ub = mb.Get<std::int8_t>();
        const BlockShare share = block_share(chunks, nb, ctx.GetBlockIdx());
        for (std::size_t c = share.begin; c < share.begin + share.count; ++c) {
          const TileRange r = tile_range(c, n, kChunk);
          DataCopy(ctx, x_ub, x.sub(r.begin, r.len), r.len);
          CompareScalar(ctx, m_ub, x_ub, pivot, CmpMode::GT, r.len);
          DataCopy(ctx, mask.sub(r.begin, r.len), m_ub, r.len);
        }
      });
}

/// Copies a key+index range device-side (banking confirmed winners).
sim::Report copy_pairs_kernel(Device& dev, GlobalTensor<half> keys,
                              GlobalTensor<std::int32_t> idx,
                              GlobalTensor<half> keys_dst,
                              GlobalTensor<std::int32_t> idx_dst,
                              std::size_t n) {
  const int nb = std::max(
      1, std::min(dev.config().num_vec_cores(),
                  static_cast<int>(num_tiles(n, kChunk))));
  const std::size_t chunks = num_tiles(n, kChunk);
  return launch(
      dev,
      {.block_dim = nb, .mode = LaunchMode::VectorOnly, .name = "copy_pairs"},
      [&, n, chunks, nb](KernelContext& ctx) {
        TPipe pipe(ctx);
        TBuf kb(ctx, TPosition::VECIN), ib(ctx, TPosition::VECIN);
        pipe.InitBuffer(kb, kChunk * sizeof(half));
        pipe.InitBuffer(ib, kChunk * sizeof(std::int32_t));
        auto k_ub = kb.Get<half>();
        auto i_ub = ib.Get<std::int32_t>();
        const BlockShare share = block_share(chunks, nb, ctx.GetBlockIdx());
        for (std::size_t c = share.begin; c < share.begin + share.count; ++c) {
          const TileRange r = tile_range(c, n, kChunk);
          DataCopy(ctx, k_ub, keys.sub(r.begin, r.len), r.len);
          DataCopy(ctx, keys_dst.sub(r.begin, r.len), k_ub, r.len);
          DataCopy(ctx, i_ub, idx.sub(r.begin, r.len), r.len);
          DataCopy(ctx, idx_dst.sub(r.begin, r.len), i_ub, r.len);
        }
      });
}

}  // namespace

sim::Report topk_f16(Device& dev, GlobalTensor<half> x,
                     GlobalTensor<half> values_out,
                     GlobalTensor<std::int32_t> idx_out, std::size_t n,
                     std::size_t k, const TopKOptions& opt) {
  ASCAN_CHECK(k >= 1 && k <= n, "topk: need 1 <= k <= n");
  ASCAN_CHECK(x.size() >= n && values_out.size() >= k && idx_out.size() >= k,
              "topk: tensors too small");
  sim::Report rep;

  // Working candidate set (keys + original indices), ping-pong buffers.
  auto keys_a = dev.alloc<half>(n);
  auto keys_b = dev.alloc<half>(n);
  auto idx_a = dev.alloc<std::int32_t>(n);
  auto idx_b = dev.alloc<std::int32_t>(n);
  auto mask = dev.alloc<std::int8_t>(n);
  // Banked winners (elements proven to be in the top k).
  auto bank_keys = dev.alloc<half>(k);
  auto bank_idx = dev.alloc<std::int32_t>(k);

  // Seed the candidate set = the whole input with identity indices
  // (radix_encode's identity-index path would also do; reuse split's prep
  // by a plain copy + iota kernel).
  {
    const int nb = dev.config().num_vec_cores();
    const std::size_t chunks = num_tiles(n, kChunk);
    rep += launch(
        dev,
        {.block_dim = std::min<int>(nb, static_cast<int>(chunks)),
         .mode = LaunchMode::VectorOnly,
         .name = "topk_prep"},
        [&, n, chunks](KernelContext& ctx) {
          TPipe pipe(ctx);
          TBuf kb(ctx, TPosition::VECIN), ib(ctx, TPosition::VECOUT);
          pipe.InitBuffer(kb, kChunk * sizeof(half));
          pipe.InitBuffer(ib, kChunk * sizeof(std::int32_t));
          auto k_ub = kb.Get<half>();
          auto i_ub = ib.Get<std::int32_t>();
          const BlockShare share =
              block_share(chunks, ctx.GetBlockDim(), ctx.GetBlockIdx());
          for (std::size_t c = share.begin; c < share.begin + share.count;
               ++c) {
            const TileRange r = tile_range(c, n, kChunk);
            DataCopy(ctx, k_ub, x.sub(r.begin, r.len), r.len);
            DataCopy(ctx, keys_a.tensor().sub(r.begin, r.len), k_ub, r.len);
            CreateVecIndex(ctx, i_ub, static_cast<std::int32_t>(r.begin),
                           r.len);
            DataCopy(ctx, idx_a.tensor().sub(r.begin, r.len), i_ub, r.len);
          }
        });
  }

  GlobalTensor<half> cur_k = keys_a.tensor(), nxt_k = keys_b.tensor();
  GlobalTensor<std::int32_t> cur_i = idx_a.tensor(), nxt_i = idx_b.tensor();
  std::size_t cur_len = n;
  std::size_t need = k;
  std::size_t banked = 0;
  Rng pivot_rng(0x70cb5eed);
  int stall = 0;

  while (need > 0 && cur_len > need) {
    // Host-side pivot selection: median of three samples (one host sync).
    half samples[3];
    for (auto& sv : samples) {
      sv = cur_k.data()[pivot_rng.next_below(cur_len)];
    }
    std::sort(std::begin(samples), std::end(samples),
              [](half a, half b) { return float(a) < float(b); });
    const half pivot = samples[1];
    rep += dev.host_sync_report();

    rep += compare_gt_kernel(dev, cur_k, mask.tensor(), cur_len, pivot,
                             opt.blocks);
    auto sr = split_ind<half>(dev, cur_k, cur_i, mask.tensor(), nxt_k, nxt_i,
                              cur_len, {.s = opt.s, .blocks = opt.blocks});
    rep += sr.report;
    const std::size_t m = sr.num_true;  // elements strictly above the pivot

    if (m == need) {
      rep += copy_pairs_kernel(dev, nxt_k, nxt_i,
                               bank_keys.tensor().sub(banked, m),
                               bank_idx.tensor().sub(banked, m), m);
      banked += m;
      need = 0;
      break;
    }
    if (m > need) {
      // Winners are among the trues.
      if (m == cur_len) {
        ++stall;  // pivot below the whole candidate set (duplicates)
      } else {
        stall = 0;
      }
      std::swap(cur_k, nxt_k);
      std::swap(cur_i, nxt_i);
      cur_len = m;
    } else {
      // All trues are winners; keep selecting among the falses.
      if (m > 0) {
        rep += copy_pairs_kernel(dev, nxt_k, nxt_i,
                                 bank_keys.tensor().sub(banked, m),
                                 bank_idx.tensor().sub(banked, m), m);
        banked += m;
        need -= m;
      } else {
        ++stall;
      }
      const std::size_t f = cur_len - m;
      // Falses sit after the trues in the split output.
      rep += copy_pairs_kernel(dev, nxt_k.sub(m, f), nxt_i.sub(m, f), cur_k,
                               cur_i, f);
      cur_len = f;
    }
    if (stall >= 2) break;  // duplicate-heavy input: finish by sorting
  }

  if (need > 0) {
    // The remaining candidates straddle the boundary (or the pivot loop
    // stalled on duplicates): order them and take the top `need`.
    auto sorted_k = dev.alloc<half>(cur_len);
    auto sorted_i = dev.alloc<std::int32_t>(cur_len);
    rep += radix_sort_f16(dev, cur_k.sub(0, cur_len), sorted_k.tensor(),
                          sorted_i.tensor(), cur_len,
                          {.s = opt.s, .blocks = opt.blocks,
                           .descending = true},
                          cur_i.sub(0, cur_len));
    rep += copy_pairs_kernel(dev, sorted_k.tensor(), sorted_i.tensor(),
                             bank_keys.tensor().sub(banked, need),
                             bank_idx.tensor().sub(banked, need), need);
    banked += need;
    need = 0;
  }
  ASCAN_ASSERT(banked == k);

  // Final ordering of the k winners (descending, payload indices).
  rep += radix_sort_f16(dev, bank_keys.tensor(), values_out, idx_out, k,
                        {.s = opt.s, .blocks = opt.blocks, .descending = true},
                        bank_idx.tensor());
  return rep;
}

namespace {

/// The streaming candidate-list kernel behind the baseline top-k: every
/// vector core keeps its running top-k (sorted) in the UB, merging each
/// incoming chunk into it; the per-core lists are then merged on one core.
/// This is why the device's baseline is hard to beat while k fits the UB
/// (k <= 4096) — exactly the regime where the paper "could not improve the
/// performance of the baseline top-k".
constexpr std::size_t kBaselineUbK = 4096;

sim::Report topk_streaming_baseline(Device& dev, GlobalTensor<half> x,
                                    GlobalTensor<half> values_out,
                                    GlobalTensor<std::int32_t> idx_out,
                                    std::size_t n, std::size_t k) {
  const int nv = dev.config().num_vec_cores();
  const std::size_t chunks = num_tiles(n, kChunk);
  const int active = std::min<int>(nv, static_cast<int>(chunks));
  // Per-block candidate lists (keys sign-flipped so ascending merges give
  // stable descending order), gathered in GM for the final merge.
  auto cand_keys = dev.alloc<half>(static_cast<std::size_t>(active) * k);
  auto cand_idx =
      dev.alloc<std::int32_t>(static_cast<std::size_t>(active) * k);
  auto cand_len = dev.alloc<std::int32_t>(static_cast<std::size_t>(active), 0);

  auto ck = cand_keys.tensor();
  auto ci = cand_idx.tensor();
  auto cl = cand_len.tensor();

  sim::Report rep = launch(
      dev,
      {.block_dim = active, .mode = LaunchMode::VectorOnly,
       .name = "topk_baseline_stream"},
      [&, n, k, chunks](KernelContext& ctx) {
        TPipe pipe(ctx);
        TBuf kc(ctx, TPosition::VECIN), ic(ctx, TPosition::VECIN),
            ks(ctx, TPosition::VECCALC), is(ctx, TPosition::VECCALC),
            km(ctx, TPosition::VECCALC), im(ctx, TPosition::VECCALC);
        pipe.InitBuffer(kc, kChunk * sizeof(half));
        pipe.InitBuffer(ic, kChunk * sizeof(std::int32_t));
        pipe.InitBuffer(ks, kChunk * sizeof(half));
        pipe.InitBuffer(is, kChunk * sizeof(std::int32_t));
        pipe.InitBuffer(km, (kChunk + kBaselineUbK) * sizeof(half));
        pipe.InitBuffer(im, (kChunk + kBaselineUbK) * sizeof(std::int32_t));
        auto chunk_k = kc.Get<half>();
        auto chunk_i = ic.Get<std::int32_t>();
        auto scratch_k = ks.Get<half>();
        auto scratch_i = is.Get<std::int32_t>();
        auto merged_k = km.Get<half>();
        auto merged_i = im.Get<std::int32_t>();
        // Candidates live at the tail of the merged buffer between chunks.
        std::size_t cand = 0;  // current candidate count

        const BlockShare share =
            block_share(chunks, ctx.GetBlockDim(), ctx.GetBlockIdx());
        for (std::size_t c = share.begin; c < share.begin + share.count;
             ++c) {
          const TileRange r = tile_range(c, n, kChunk);
          DataCopy(ctx, chunk_k, x.sub(r.begin, r.len), r.len);
          // Sign-flip so ascending == original descending (stable).
          Xors(ctx, chunk_k.reinterpret<std::uint16_t>(),
               chunk_k.reinterpret<std::uint16_t>(), std::uint16_t{0x8000},
               r.len);
          CreateVecIndex(ctx, chunk_i, static_cast<std::int32_t>(r.begin),
                         r.len);
          // Sort the chunk: Sort32 then local merge passes.
          Sort32(ctx, chunk_k, chunk_i, r.len);
          auto* sk = &chunk_k;
          auto* si = &chunk_i;
          auto* dk = &scratch_k;
          auto* di = &scratch_i;
          for (std::size_t w = 32; w < r.len; w *= 2) {
            for (std::size_t off = 0; off < r.len; off += 2 * w) {
              const std::size_t la = std::min(w, r.len - off);
              const std::size_t lb =
                  off + la >= r.len ? 0 : std::min(w, r.len - off - la);
              MergeSorted(ctx, dk->sub(off, la + lb), di->sub(off, la + lb),
                          sk->sub(off, la), si->sub(off, la), la,
                          sk->sub(off + la, lb), si->sub(off + la, lb), lb);
            }
            std::swap(sk, dk);
            std::swap(si, di);
          }
          // An odd number of merge passes leaves the sorted chunk in the
          // scratch buffer, which we need below: normalise to chunk_k.
          if (sk != &chunk_k) {
            DataCopyLocal(ctx, chunk_k, *sk, r.len);
            DataCopyLocal(ctx, chunk_i, *si, r.len);
          }
          // Merge candidates (earlier stream positions: ties first) with
          // the sorted chunk, keep the best k.
          if (cand > 0) {
            DataCopyLocal(ctx, scratch_k, merged_k.sub(kChunk, cand), cand);
            DataCopyLocal(ctx, scratch_i, merged_i.sub(kChunk, cand), cand);
          }
          MergeSorted(ctx, merged_k, merged_i, scratch_k, scratch_i, cand,
                      chunk_k, chunk_i, r.len);
          cand = std::min(k, cand + r.len);
          // Stash the surviving candidates at the buffer tail.
          DataCopyLocal(ctx, merged_k.sub(kChunk, cand), merged_k, cand);
          DataCopyLocal(ctx, merged_i.sub(kChunk, cand), merged_i, cand);
        }
        // Publish this block's candidates.
        const auto b = static_cast<std::size_t>(ctx.GetBlockIdx());
        if (cand > 0) {
          DataCopy(ctx, ck.sub(b * k, cand), merged_k.sub(kChunk, cand),
                   cand);
          DataCopy(ctx, ci.sub(b * k, cand), merged_i.sub(kChunk, cand),
                   cand);
        }
        auto len_ub = is.Get<std::int32_t>();
        SetValue(ctx, len_ub, 0, static_cast<std::int32_t>(cand));
        DataCopy(ctx, cl.sub(b, 1), len_ub, 1);
      });

  // Final single-core merge of the per-block lists (block order keeps
  // stability: lower blocks hold lower original indices).
  rep += launch(
      dev,
      {.block_dim = 1, .mode = LaunchMode::VectorOnly,
       .name = "topk_baseline_final"},
      [&, k, active](KernelContext& ctx) {
        TPipe pipe(ctx);
        TBuf ra(ctx, TPosition::VECCALC), rb(ctx, TPosition::VECCALC),
            rc(ctx, TPosition::VECIN), rl(ctx, TPosition::VECIN),
            ia(ctx, TPosition::VECCALC), ib2(ctx, TPosition::VECCALC),
            ic2(ctx, TPosition::VECIN);
        pipe.InitBuffer(ra, 2 * kBaselineUbK * sizeof(half));
        pipe.InitBuffer(rb, 2 * kBaselineUbK * sizeof(half));
        pipe.InitBuffer(rc, kBaselineUbK * sizeof(half));
        pipe.InitBuffer(rl, 256);
        pipe.InitBuffer(ia, 2 * kBaselineUbK * sizeof(std::int32_t));
        pipe.InitBuffer(ib2, 2 * kBaselineUbK * sizeof(std::int32_t));
        pipe.InitBuffer(ic2, kBaselineUbK * sizeof(std::int32_t));
        auto run_k = ra.Get<half>();
        auto out_k = rb.Get<half>();
        auto blk_k = rc.Get<half>();
        auto len_ub = rl.Get<std::int32_t>();
        auto run_i = ia.Get<std::int32_t>();
        auto out_i = ib2.Get<std::int32_t>();
        auto blk_i = ic2.Get<std::int32_t>();

        std::size_t have = 0;
        for (int b = 0; b < active; ++b) {
          DataCopy(ctx, len_ub, cl.sub(static_cast<std::size_t>(b), 1), 1);
          const auto len =
              static_cast<std::size_t>(GetValue(ctx, len_ub, 0));
          if (len == 0) continue;
          DataCopy(ctx, blk_k, ck.sub(static_cast<std::size_t>(b) * k, len),
                   len);
          DataCopy(ctx, blk_i, ci.sub(static_cast<std::size_t>(b) * k, len),
                   len);
          MergeSorted(ctx, out_k, out_i, run_k, run_i, have, blk_k, blk_i,
                      len);
          have = std::min(k, have + len);
          DataCopyLocal(ctx, run_k, out_k, have);
          DataCopyLocal(ctx, run_i, out_i, have);
        }
        // Flip the signs back and emit the final top-k.
        Xors(ctx, run_k.reinterpret<std::uint16_t>(),
             run_k.reinterpret<std::uint16_t>(), std::uint16_t{0x8000}, have);
        DataCopy(ctx, values_out.sub(0, have), run_k, have);
        DataCopy(ctx, idx_out.sub(0, have), run_i, have);
      });
  return rep;
}

}  // namespace

sim::Report topk_baseline_f16(Device& dev, GlobalTensor<half> x,
                              GlobalTensor<half> values_out,
                              GlobalTensor<std::int32_t> idx_out,
                              std::size_t n, std::size_t k) {
  ASCAN_CHECK(k >= 1 && k <= n, "topk: need 1 <= k <= n");
  ASCAN_CHECK(x.size() >= n && values_out.size() >= k && idx_out.size() >= k,
              "topk: tensors too small");
  if (k <= kBaselineUbK) {
    // UB-resident candidate lists: the fast regime of the device baseline.
    return topk_streaming_baseline(dev, x, values_out, idx_out, n, k);
  }
  // Large k falls back to a full sort (the regime where RadiK-style and
  // split-based approaches win).
  auto sorted_k = dev.alloc<half>(n);
  auto sorted_i = dev.alloc<std::int32_t>(n);
  sim::Report rep = sort_baseline_f16(dev, x, sorted_k.tensor(),
                                      sorted_i.tensor(), n,
                                      /*descending=*/true);
  rep += copy_pairs_kernel(dev, sorted_k.tensor(), sorted_i.tensor(),
                           values_out, idx_out, k);
  return rep;
}

}  // namespace ascend::kernels
