// SplitInd (§5): stable split of an array by a 0/1 mask, returning the
// permuted values and their original indices.
//
// Implementation per the paper: an exclusive MCScan over the int8 mask
// yields each element's destination offset; a vector gather kernel then
// compacts the true elements (GatherMask) and the false elements (mask
// complement) per tile and writes both groups to their scanned offsets in
// GM. The stable order follows from the offsets being a prefix sum.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/report.hpp"

namespace ascend::kernels {

struct SplitOptions {
  std::size_t s = 128;  ///< MCScan tile size for the mask scan
  int blocks = 0;       ///< AI cores (0 = all)
};

struct SplitReport {
  sim::Report report;
  std::size_t num_true = 0;  ///< elements placed in the first group
};

/// Splits keys[0..n) (and, when idx_in is valid, their payload indices;
/// otherwise the identity indices) by mask into keys_out/idx_out.
/// K is half or uint16_t (the radix passes operate on encoded keys).
template <typename K>
SplitReport split_ind(acc::Device& dev, acc::GlobalTensor<K> keys,
                      acc::GlobalTensor<std::int32_t> idx_in,
                      acc::GlobalTensor<std::int8_t> mask,
                      acc::GlobalTensor<K> keys_out,
                      acc::GlobalTensor<std::int32_t> idx_out, std::size_t n,
                      const SplitOptions& opt = {});

extern template SplitReport split_ind<half>(
    acc::Device&, acc::GlobalTensor<half>, acc::GlobalTensor<std::int32_t>,
    acc::GlobalTensor<std::int8_t>, acc::GlobalTensor<half>,
    acc::GlobalTensor<std::int32_t>, std::size_t, const SplitOptions&);
extern template SplitReport split_ind<std::uint16_t>(
    acc::Device&, acc::GlobalTensor<std::uint16_t>,
    acc::GlobalTensor<std::int32_t>, acc::GlobalTensor<std::int8_t>,
    acc::GlobalTensor<std::uint16_t>, acc::GlobalTensor<std::int32_t>,
    std::size_t, const SplitOptions&);

/// Compress (§5): keeps only the mask != 0 elements (torch.masked_select).
/// Returns the kept count in SplitReport::num_true.
SplitReport compress(acc::Device& dev, acc::GlobalTensor<half> x,
                     acc::GlobalTensor<std::int8_t> mask,
                     acc::GlobalTensor<half> out, std::size_t n,
                     const SplitOptions& opt = {});

/// The unoptimised torch.masked_select baseline: a scalar loop using
/// neither vector nor cube units (paper §6.2).
SplitReport masked_select_baseline(acc::Device& dev,
                                   acc::GlobalTensor<half> x,
                                   acc::GlobalTensor<std::int8_t> mask,
                                   acc::GlobalTensor<half> out, std::size_t n);

}  // namespace ascend::kernels
