#include "kernels/scan_strategies.hpp"

#include "kernels/common.hpp"

namespace ascend::kernels {

using namespace acc;

namespace {
constexpr std::size_t kTile = 8192;

sim::Report empty_launch(Device& dev) {
  sim::Report r;
  r.launches = 1;
  r.time_s = dev.config().launch_overhead_s;
  return r;
}
}  // namespace

sim::Report stream_scan(Device& dev, GlobalTensor<half> x,
                        GlobalTensor<float> y, std::size_t n,
                        const StrategyOptions& opt) {
  ASCAN_CHECK(x.size() >= n && y.size() >= n, "stream_scan: tensors too small");
  if (n == 0) return empty_launch(dev);

  const int nb = opt.blocks > 0 ? opt.blocks : dev.config().num_vec_cores();
  const std::size_t tiles = num_tiles(n, kTile);
  // Running totals published tile-by-tile through GM — the StreamScan
  // adjacent-block dependency.
  auto totals = dev.alloc<float>(tiles, 0.0f);
  auto totals_gm = totals.tensor();

  return launch(
      dev,
      {.block_dim = static_cast<int>(
           std::min<std::size_t>(static_cast<std::size_t>(nb), tiles)),
       .mode = LaunchMode::VectorOnly,
       .name = "stream_scan"},
      [&, n, tiles](KernelContext& ctx) {
        auto& ready = ctx.shared().flags("total_ready", tiles);
        const auto blocks = static_cast<std::size_t>(ctx.GetBlockDim());
        const auto b = static_cast<std::size_t>(ctx.GetBlockIdx());

        TPipe pipe(ctx);
        TQue in_q(ctx, TPosition::VECIN);
        pipe.InitBuffer(in_q, 3, kTile * sizeof(half));
        TBuf wide_buf(ctx, TPosition::VECCALC), out_buf(ctx, TPosition::VECOUT),
            sum_buf(ctx, TPosition::VECCALC), tot_buf(ctx, TPosition::VECIN);
        pipe.InitBuffer(wide_buf, kTile * sizeof(float));
        pipe.InitBuffer(out_buf, kTile * sizeof(float));
        pipe.InitBuffer(sum_buf, 64);
        pipe.InitBuffer(tot_buf, 64);

        auto wide = wide_buf.Get<float>();
        auto out = out_buf.Get<float>();
        auto sum = sum_buf.Get<float>();
        auto tot = tot_buf.Get<float>();

        auto fetch = [&](std::size_t t) {
          const TileRange r = tile_range(t, n, kTile);
          auto chunk = in_q.AllocTensor<half>();
          DataCopy(ctx, chunk, x.sub(r.begin, r.len), r.len);
          in_q.EnQue(chunk);
        };
        if (b < tiles) fetch(b);
        for (std::size_t t = b; t < tiles; t += blocks) {
          const TileRange r = tile_range(t, n, kTile);
          if (t + blocks < tiles) fetch(t + blocks);
          auto chunk = in_q.DeQue<half>();
          Cast(ctx, wide, chunk, r.len);
          in_q.FreeTensor(chunk);

          // Publish this tile's running total as early as possible: local
          // reduce, then one GM round trip to the predecessor's total.
          ReduceSum(ctx, sum, wide, r.len);
          const float local_total = GetValue(ctx, sum, 0);
          float prefix = 0.0f;
          if (t > 0) {
            ready.wait(ctx, t - 1);
            DataCopy(ctx, tot, totals_gm.sub(t - 1, 1), 1);
            prefix = GetValue(ctx, tot, 0);
          }
          SetValue(ctx, tot, 0, prefix + local_total);
          DataCopy(ctx, totals_gm.sub(t, 1), tot, 1);
          ready.set(ctx, t);

          // Local inclusive scan (the CumSum vector primitive) + offset.
          CumSum(ctx, out, wide, r.len);
          Adds(ctx, out, out, prefix, r.len);
          DataCopy(ctx, y.sub(r.begin, r.len), out, r.len);
        }
      });
}

sim::Report lookback_scan(Device& dev, GlobalTensor<half> x,
                          GlobalTensor<float> y, std::size_t n,
                          const StrategyOptions& opt) {
  ASCAN_CHECK(x.size() >= n && y.size() >= n,
              "lookback_scan: tensors too small");
  if (n == 0) return empty_launch(dev);

  const int nb_req = opt.blocks > 0 ? opt.blocks : dev.config().num_vec_cores();
  const std::size_t tiles = num_tiles(n, kTile);
  const auto blocks =
      std::min<std::size_t>(static_cast<std::size_t>(nb_req), tiles);
  // Per-tile aggregates published through GM. A tile's exclusive prefix is
  // its owner's previous-tile inclusive prefix (kept in a scalar register)
  // plus the aggregates of the in-flight window — the decoupled look-back.
  auto aggregates = dev.alloc<float>(tiles, 0.0f);
  auto agg_gm = aggregates.tensor();

  return launch(
      dev,
      {.block_dim = static_cast<int>(blocks), .mode = LaunchMode::VectorOnly,
       .name = "lookback_scan"},
      [&, n, tiles, blocks](KernelContext& ctx) {
        auto& agg_ready = ctx.shared().flags("agg_ready", tiles);
        const auto b = static_cast<std::size_t>(ctx.GetBlockIdx());

        TPipe pipe(ctx);
        TQue in_q(ctx, TPosition::VECIN);
        pipe.InitBuffer(in_q, 3, kTile * sizeof(half));
        TBuf wide_buf(ctx, TPosition::VECCALC), out_buf(ctx, TPosition::VECOUT),
            sum_buf(ctx, TPosition::VECCALC), win_buf(ctx, TPosition::VECIN);
        pipe.InitBuffer(wide_buf, kTile * sizeof(float));
        pipe.InitBuffer(out_buf, kTile * sizeof(float));
        pipe.InitBuffer(sum_buf, 64);
        pipe.InitBuffer(win_buf, blocks * sizeof(float) + 64);

        auto wide = wide_buf.Get<float>();
        auto out = out_buf.Get<float>();
        auto sum = sum_buf.Get<float>();
        auto window = win_buf.Get<float>();

        auto fetch = [&](std::size_t t) {
          const TileRange r = tile_range(t, n, kTile);
          auto chunk = in_q.AllocTensor<half>();
          DataCopy(ctx, chunk, x.sub(r.begin, r.len), r.len);
          in_q.EnQue(chunk);
        };
        if (b < tiles) fetch(b);
        float own_prefix = 0.0f;  // inclusive prefix of this core's last tile
        bool own_prefix_valid = false;
        for (std::size_t t = b; t < tiles; t += blocks) {
          const TileRange r = tile_range(t, n, kTile);
          if (t + blocks < tiles) fetch(t + blocks);
          auto chunk = in_q.DeQue<half>();
          Cast(ctx, wide, chunk, r.len);
          in_q.FreeTensor(chunk);

          // Publish the aggregate immediately (no serial dependency).
          ReduceSum(ctx, sum, wide, r.len);
          const float aggregate = GetValue(ctx, sum, 0);
          SetValue(ctx, sum, 0, aggregate);
          DataCopy(ctx, agg_gm.sub(t, 1), sum, 1);
          agg_ready.set(ctx, t);

          // Look back: this core knows its own previous inclusive prefix;
          // only the window of other cores' in-flight tiles is missing.
          const std::size_t win_begin =
              own_prefix_valid ? t - blocks + 1 : 0;
          float prefix = own_prefix_valid ? own_prefix : 0.0f;
          if (t > 0 && win_begin <= t - 1) {
            for (std::size_t j = win_begin; j <= t - 1; ++j) {
              agg_ready.wait(ctx, j);
            }
            const std::size_t win_len = t - win_begin;
            DataCopy(ctx, window, agg_gm.sub(win_begin, win_len), win_len);
            ReduceSum(ctx, sum, window, win_len);
            prefix = prefix + GetValue(ctx, sum, 0);
          }

          CumSum(ctx, out, wide, r.len);
          Adds(ctx, out, out, prefix, r.len);
          DataCopy(ctx, y.sub(r.begin, r.len), out, r.len);

          own_prefix = prefix + aggregate;
          own_prefix_valid = true;
        }
      });
}

}  // namespace ascend::kernels
