// Multi-core GM->GM copy — the torch.clone() comparison kernel of Fig. 8.
// Pure data movement: its achieved bandwidth is the practical ceiling any
// memory-bound operator can reach on the machine.
#pragma once

#include <cstddef>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/report.hpp"

namespace ascend::kernels {

/// Copies x[0..n) to y[0..n) using `blocks` vector cores (0 = all).
template <typename T>
sim::Report copy_kernel(acc::Device& dev, acc::GlobalTensor<T> x,
                        acc::GlobalTensor<T> y, std::size_t n, int blocks = 0);

extern template sim::Report copy_kernel<half>(acc::Device&,
                                              acc::GlobalTensor<half>,
                                              acc::GlobalTensor<half>,
                                              std::size_t, int);
extern template sim::Report copy_kernel<float>(acc::Device&,
                                               acc::GlobalTensor<float>,
                                               acc::GlobalTensor<float>,
                                               std::size_t, int);

}  // namespace ascend::kernels
