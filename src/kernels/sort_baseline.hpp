// Baseline sort — the torch.sort() comparator of Fig. 11.
//
// The Ascend PyTorch sort kernel is closed source; the paper's data shows
// it beats radix sort below ~525K elements and loses by a growing factor
// (up to 3.3x) above. This baseline reproduces that behaviour with a
// vector-only merge sort: every 8K segment is sorted in the UB (Sort32 +
// local merge passes, no GM round trips), then log2(n/8K) global merge
// levels stream pairs of runs through the UB (MergeSorted). Upper levels
// have fewer pairs than vector cores, so the tree serialises at the top —
// the poor large-n scaling the paper measures.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/report.hpp"

namespace ascend::kernels {

/// Stable sort of fp16 keys with original indices (torch.sort contract).
sim::Report sort_baseline_f16(acc::Device& dev, acc::GlobalTensor<half> keys,
                              acc::GlobalTensor<half> keys_out,
                              acc::GlobalTensor<std::int32_t> idx_out,
                              std::size_t n, bool descending = false);

}  // namespace ascend::kernels
