// Multi-core reduction (sum) — the companion primitive of [12]
// ("Accelerating Reduction and Scan Using Tensor Core Units"), included to
// exercise the cube unit's accumulation buffer: every tile is multiplied
// into the same L0C accumulator (C += A @ 1_s), so a block's whole share
// reduces without leaving the cube core; one Fixpipe drains s partial sums
// per block and a final vector pass folds them.
#pragma once

#include <cstddef>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/report.hpp"

namespace ascend::kernels {

struct ReduceOptions {
  std::size_t s = 128;
  int blocks = 0;
};

struct ReduceResult {
  sim::Report report;
  float value = 0.0f;
};

/// Sum of x[0..n) using the cube units' accumulate-in-L0C path.
ReduceResult reduce_cube(acc::Device& dev, acc::GlobalTensor<half> x,
                         std::size_t n, const ReduceOptions& opt = {});

/// Vector-only baseline reduction (ReduceSum over UB chunks, all AIVs).
ReduceResult reduce_vector(acc::Device& dev, acc::GlobalTensor<half> x,
                           std::size_t n, int blocks = 0);

}  // namespace ascend::kernels
