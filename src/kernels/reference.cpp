#include "kernels/reference.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace ascend::ref {

namespace {
template <typename T>
double widen(T v) {
  return static_cast<double>(static_cast<float>(v));
}
}  // namespace

template <typename In, typename Out>
std::vector<Out> inclusive_scan(std::span<const In> x) {
  std::vector<Out> out(x.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += widen(x[i]);
    if constexpr (std::is_same_v<Out, half>) {
      out[i] = half(static_cast<float>(acc));
    } else {
      out[i] = static_cast<Out>(acc);
    }
  }
  return out;
}

template <typename In, typename Out>
std::vector<Out> exclusive_scan(std::span<const In> x) {
  std::vector<Out> out(x.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if constexpr (std::is_same_v<Out, half>) {
      out[i] = half(static_cast<float>(acc));
    } else {
      out[i] = static_cast<Out>(acc);
    }
    acc += widen(x[i]);
  }
  return out;
}

template <typename In, typename Out>
std::vector<Out> batched_inclusive_scan(std::span<const In> x,
                                        std::size_t batch, std::size_t len) {
  ASCAN_CHECK(x.size() == batch * len, "batched scan shape mismatch");
  std::vector<Out> out(x.size());
  for (std::size_t b = 0; b < batch; ++b) {
    auto row = inclusive_scan<In, Out>(x.subspan(b * len, len));
    std::copy(row.begin(), row.end(), out.begin() + static_cast<long>(b * len));
  }
  return out;
}

// Explicit instantiations for the types the kernels support.
template std::vector<half> inclusive_scan<half, half>(std::span<const half>);
template std::vector<float> inclusive_scan<half, float>(std::span<const half>);
template std::vector<float> inclusive_scan<float, float>(std::span<const float>);
template std::vector<std::int32_t> inclusive_scan<std::int8_t, std::int32_t>(
    std::span<const std::int8_t>);
template std::vector<half> exclusive_scan<half, half>(std::span<const half>);
template std::vector<float> exclusive_scan<half, float>(std::span<const half>);
template std::vector<std::int32_t> exclusive_scan<std::int8_t, std::int32_t>(
    std::span<const std::int8_t>);
template std::vector<half> batched_inclusive_scan<half, half>(
    std::span<const half>, std::size_t, std::size_t);
template std::vector<float> batched_inclusive_scan<half, float>(
    std::span<const half>, std::size_t, std::size_t);

SplitResult split(std::span<const half> x, std::span<const std::int8_t> mask) {
  ASCAN_CHECK(x.size() == mask.size(), "split: mask length mismatch");
  SplitResult r;
  r.values.reserve(x.size());
  r.indices.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (mask[i] != 0) {
      r.values.push_back(x[i]);
      r.indices.push_back(static_cast<std::int32_t>(i));
    }
  }
  r.num_true = r.values.size();
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (mask[i] == 0) {
      r.values.push_back(x[i]);
      r.indices.push_back(static_cast<std::int32_t>(i));
    }
  }
  return r;
}

std::vector<half> compress(std::span<const half> x,
                           std::span<const std::int8_t> mask) {
  ASCAN_CHECK(x.size() == mask.size(), "compress: mask length mismatch");
  std::vector<half> out;
  out.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (mask[i] != 0) out.push_back(x[i]);
  }
  return out;
}

SortResult stable_sort(std::span<const half> x, bool descending) {
  SortResult r;
  r.indices.resize(x.size());
  std::iota(r.indices.begin(), r.indices.end(), 0);
  std::stable_sort(r.indices.begin(), r.indices.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     const float fa = float(x[static_cast<std::size_t>(a)]);
                     const float fb = float(x[static_cast<std::size_t>(b)]);
                     return descending ? fb < fa : fa < fb;
                   });
  r.values.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    r.values[i] = x[static_cast<std::size_t>(r.indices[i])];
  }
  return r;
}

SortResultU16 stable_sort_u16(std::span<const std::uint16_t> x) {
  SortResultU16 r;
  r.indices.resize(x.size());
  std::iota(r.indices.begin(), r.indices.end(), 0);
  std::stable_sort(r.indices.begin(), r.indices.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return x[static_cast<std::size_t>(a)] <
                            x[static_cast<std::size_t>(b)];
                   });
  r.values.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    r.values[i] = x[static_cast<std::size_t>(r.indices[i])];
  }
  return r;
}

TopKResult topk(std::span<const half> x, std::size_t k) {
  ASCAN_CHECK(k <= x.size(), "topk: k exceeds input length");
  const SortResult sorted = stable_sort(x, /*descending=*/true);
  TopKResult r;
  r.values.assign(sorted.values.begin(),
                  sorted.values.begin() + static_cast<long>(k));
  r.indices.assign(sorted.indices.begin(),
                   sorted.indices.begin() + static_cast<long>(k));
  return r;
}

std::int32_t top_p_sample(std::span<const half> probs, double p, double u) {
  ASCAN_CHECK(!probs.empty(), "top_p_sample: empty distribution");
  const SortResult sorted = stable_sort(probs, /*descending=*/true);
  // Cumulative sum over the sorted probabilities; the Llama-3 rule masks a
  // token when the cumulative sum *before* it already exceeds p.
  std::vector<double> cum(sorted.values.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < sorted.values.size(); ++i) {
    acc += widen(sorted.values[i]);
    cum[i] = acc;
  }
  std::size_t kept = sorted.values.size();
  for (std::size_t i = 1; i < cum.size(); ++i) {
    if (cum[i - 1] > p) {
      kept = i;
      break;
    }
  }
  const double total = cum[kept - 1];
  // Inverse transform over the kept prefix.
  const double theta = u * total;
  double run = 0.0;
  for (std::size_t i = 0; i < kept; ++i) {
    run += widen(sorted.values[i]);
    if (run > theta) return sorted.indices[i];
  }
  return sorted.indices[kept - 1];
}

std::int32_t multinomial(std::span<const half> weights, double u) {
  ASCAN_CHECK(!weights.empty(), "multinomial: empty distribution");
  double total = 0.0;
  for (const half w : weights) {
    ASCAN_CHECK(float(w) >= 0.0f, "multinomial: negative weight");
    total += widen(w);
  }
  ASCAN_CHECK(total > 0.0, "multinomial: zero total weight");
  const double theta = u * total;
  double run = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    run += widen(weights[i]);
    if (run > theta) return static_cast<std::int32_t>(i);
  }
  return static_cast<std::int32_t>(weights.size() - 1);
}

std::uint16_t radix_encode_f16(half h) {
  const std::uint16_t b = h.bits();
  // Negative numbers: flip all bits (reverses their order); positives:
  // set the MSB (places them above all negatives).
  return (b & 0x8000u) ? static_cast<std::uint16_t>(~b)
                       : static_cast<std::uint16_t>(b | 0x8000u);
}

half radix_decode_f16(std::uint16_t bits) {
  return half::from_bits((bits & 0x8000u)
                             ? static_cast<std::uint16_t>(bits & 0x7fffu)
                             : static_cast<std::uint16_t>(~bits));
}

}  // namespace ascend::ref
