#include "kernels/batched_scan.hpp"

#include "kernels/common.hpp"

namespace ascend::kernels {

using namespace acc;

namespace {

sim::Report empty_launch(Device& dev) {
  sim::Report r;
  r.launches = 1;
  r.time_s = dev.config().launch_overhead_s;
  return r;
}

/// The ScanU vector-side chain over one row tile held in UB.
void propagate_row_tile(KernelContext& ctx, const LocalTensor<half>& tile,
                        std::size_t len, std::size_t s, half& partial) {
  for (std::size_t off = 0; off < len; off += s) {
    const std::size_t chunk = std::min(s, len - off);
    auto row = tile.sub(off, chunk);
    Adds(ctx, row, row, partial, chunk);
    partial = GetValue(ctx, row, chunk - 1);
  }
}

}  // namespace

sim::Report batched_scan_u(Device& dev, GlobalTensor<half> x,
                           GlobalTensor<half> y, std::size_t batch,
                           std::size_t len, const BatchedScanOptions& opt) {
  const std::size_t s = opt.s;
  ASCAN_CHECK(valid_tile_size(s), "batched_scan_u: invalid tile size " << s);
  ASCAN_CHECK(x.size() >= batch * len && y.size() >= batch * len,
              "batched_scan_u: tensors too small");
  if (batch == 0 || len == 0) return empty_launch(dev);

  const sim::MachineConfig& cfg = dev.config();
  const int blocks = opt.blocks > 0 ? opt.blocks : cfg.num_ai_cores;
  const int vpc = cfg.vec_per_core;

  auto upper = dev.upload(make_upper_ones<half>(s));
  auto u_gm = upper.tensor();

  const std::size_t l = s * s;
  const std::size_t row_tiles = num_tiles(len, l);
  // Row pairs are dealt round-robin to AI cores; within a core, vector
  // core v owns row (pair*vpc + v).
  const std::size_t groups = ceil_div(batch, static_cast<std::size_t>(vpc));

  return launch(
      dev,
      {.block_dim = blocks, .mode = LaunchMode::Mix, .name = "batched_scan_u",
       .outputs = {guard_output(y)}},
      [&, batch, len, s, l, row_tiles, groups, blocks, vpc](KernelContext& ctx) {
    const int b = ctx.GetBlockIdx();
    auto& ready = ctx.shared().flags("row_tile_ready", batch * row_tiles);

    if (ctx.is_cube()) {
      TPipe pipe(ctx);
      TBuf u_l1(ctx, TPosition::B1), u_l0(ctx, TPosition::B2);
      pipe.InitBuffer(u_l1, l * sizeof(half));
      pipe.InitBuffer(u_l0, l * sizeof(half));
      TQue a_l1(ctx, TPosition::A1), a_l0(ctx, TPosition::A2),
          c_out(ctx, TPosition::CO1);
      pipe.InitBuffer(a_l1, 2, l * sizeof(half));
      pipe.InitBuffer(a_l0, 2, l * sizeof(half));
      pipe.InitBuffer(c_out, 2, l * sizeof(float));

      auto u_stage = u_l1.Get<half>();
      DataCopy(ctx, u_stage, u_gm, l);
      auto u_tile = u_l0.Get<half>();
      LoadData(ctx, u_tile, u_stage, l);

      for (std::size_t g = static_cast<std::size_t>(b); g < groups;
           g += static_cast<std::size_t>(blocks)) {
        // Interleave the tiles of the group's rows so both vector cores
        // receive work at the same rate (Fig. 4).
        for (std::size_t t = 0; t < row_tiles; ++t) {
          for (int v = 0; v < vpc; ++v) {
            const std::size_t row = g * static_cast<std::size_t>(vpc) +
                                    static_cast<std::size_t>(v);
            if (row >= batch) continue;
            const TileRange r = tile_range(t, len, l);
            const std::size_t base = row * len + r.begin;
            auto stage = a_l1.AllocTensor<half>();
            if (r.len < l) InitConstValue(ctx, stage, half(0.0f), l);
            DataCopy(ctx, stage, x.sub(base, r.len), r.len);
            a_l1.EnQue(stage);
            auto st = a_l1.DeQue<half>();
            auto a_tile = a_l0.AllocTensor<half>();
            LoadData(ctx, a_tile, st, l);
            a_l1.FreeTensor(st);
            auto c_tile = c_out.AllocTensor<float>();
            Mmad(ctx, c_tile, a_tile, u_tile, s, s, s, false);
            a_l0.FreeTensor(a_tile);
            Fixpipe(ctx, y.sub(base, r.len), c_tile, r.len);
            c_out.FreeTensor(c_tile);
            ready.set(ctx, row * row_tiles + t);
          }
        }
      }
    } else {
      const int v = ctx.GetSubBlockIdx();
      TPipe pipe(ctx);
      TQue ub(ctx, TPosition::VECIN);
      pipe.InitBuffer(ub, 2, l * sizeof(half));

      for (std::size_t g = static_cast<std::size_t>(b); g < groups;
           g += static_cast<std::size_t>(blocks)) {
        const std::size_t row =
            g * static_cast<std::size_t>(vpc) + static_cast<std::size_t>(v);
        if (row >= batch) continue;
        half partial(0.0f);
        for (std::size_t t = 0; t < row_tiles; ++t) {
          const TileRange r = tile_range(t, len, l);
          const std::size_t base = row * len + r.begin;
          ready.wait(ctx, row * row_tiles + t);
          auto tile = ub.AllocTensor<half>();
          DataCopy(ctx, tile, y.sub(base, r.len), r.len);
          propagate_row_tile(ctx, tile, r.len, s, partial);
          DataCopy(ctx, y.sub(base, r.len), tile, r.len);
          ub.FreeTensor(tile);
        }
      }
    }
  });
}

sim::Report batched_scan_ul1(Device& dev, GlobalTensor<half> x,
                             GlobalTensor<half> y, std::size_t batch,
                             std::size_t len, const BatchedScanOptions& opt) {
  const std::size_t s = opt.s;
  ASCAN_CHECK(valid_tile_size(s), "batched_scan_ul1: invalid tile size " << s);
  ASCAN_CHECK(x.size() >= batch * len && y.size() >= batch * len,
              "batched_scan_ul1: tensors too small");
  if (batch == 0 || len == 0) return empty_launch(dev);

  const sim::MachineConfig& cfg = dev.config();
  const int blocks = opt.blocks > 0 ? opt.blocks : cfg.num_ai_cores;
  const int vpc = cfg.vec_per_core;

  auto consts = ScanConstants<half>::make(dev, s);
  auto u_gm = consts.upper.tensor();
  auto lm_gm = consts.strict_lower.tensor();
  auto ones_gm = consts.ones.tensor();

  const std::size_t l = s * s;
  const std::size_t row_tiles = num_tiles(len, l);

  return launch(
      dev, {.block_dim = blocks, .mode = LaunchMode::Mix,
            .name = "batched_scan_ul1", .outputs = {guard_output(y)}},
      [&, batch, len, s, l, row_tiles, blocks, vpc](KernelContext& ctx) {
    const int b = ctx.GetBlockIdx();
    auto& ready = ctx.shared().flags("row_tile_ready", batch * row_tiles);

    if (ctx.is_cube()) {
      TPipe pipe(ctx);
      TBuf u_l1(ctx, TPosition::B1), lm_l1(ctx, TPosition::B1),
          ones_l1(ctx, TPosition::B1), c1_l1(ctx, TPosition::B1);
      for (auto* buf : {&u_l1, &lm_l1, &ones_l1, &c1_l1}) {
        pipe.InitBuffer(*buf, l * sizeof(half));
      }
      TQue a_l1(ctx, TPosition::A1), a_l0(ctx, TPosition::A2),
          b_l0(ctx, TPosition::B2), c_l0(ctx, TPosition::CO1);
      pipe.InitBuffer(a_l1, 2, l * sizeof(half));
      pipe.InitBuffer(a_l0, 2, l * sizeof(half));
      pipe.InitBuffer(b_l0, 2, l * sizeof(half));
      pipe.InitBuffer(c_l0, 2, l * sizeof(float));

      auto u_stage = u_l1.Get<half>();
      auto lm_stage = lm_l1.Get<half>();
      auto ones_stage = ones_l1.Get<half>();
      auto c1_stage = c1_l1.Get<half>();
      DataCopy(ctx, u_stage, u_gm, l);
      DataCopy(ctx, lm_stage, lm_gm, l);
      DataCopy(ctx, ones_stage, ones_gm, l);

      for (std::size_t row = static_cast<std::size_t>(b); row < batch;
           row += static_cast<std::size_t>(blocks)) {
        for (std::size_t t = 0; t < row_tiles; ++t) {
          const TileRange r = tile_range(t, len, l);
          const std::size_t base = row * len + r.begin;
          auto stage = a_l1.AllocTensor<half>();
          if (r.len < l) InitConstValue(ctx, stage, half(0.0f), l);
          DataCopy(ctx, stage, x.sub(base, r.len), r.len);
          a_l1.EnQue(stage);
          auto st = a_l1.DeQue<half>();
          auto a_tile = a_l0.AllocTensor<half>();
          LoadData(ctx, a_tile, st, l);
          a_l1.FreeTensor(st);

          auto b1_tile = b_l0.AllocTensor<half>();
          LoadData(ctx, b1_tile, ones_stage, l);
          auto c1 = c_l0.AllocTensor<float>();
          Mmad(ctx, c1, a_tile, b1_tile, s, s, s, false);
          b_l0.FreeTensor(b1_tile);
          FixpipeLocal(ctx, c1_stage, c1, l);
          c_l0.FreeTensor(c1);

          auto u_tile = b_l0.AllocTensor<half>();
          LoadData(ctx, u_tile, u_stage, l);
          auto c2 = c_l0.AllocTensor<float>();
          Mmad(ctx, c2, a_tile, u_tile, s, s, s, false);
          b_l0.FreeTensor(u_tile);
          a_l0.FreeTensor(a_tile);

          auto lm_tile = a_l0.AllocTensor<half>();
          LoadData(ctx, lm_tile, lm_stage, l);
          auto c1_tile = b_l0.AllocTensor<half>();
          LoadData(ctx, c1_tile, c1_stage, l);
          Mmad(ctx, c2, lm_tile, c1_tile, s, s, s, true);
          a_l0.FreeTensor(lm_tile);
          b_l0.FreeTensor(c1_tile);

          Fixpipe(ctx, y.sub(base, r.len), c2, r.len);
          c_l0.FreeTensor(c2);
          ready.set(ctx, row * row_tiles + t);
        }
      }
    } else {
      // The block's rows alternate between its two vector cores.
      const int v = ctx.GetSubBlockIdx();
      TPipe pipe(ctx);
      TQue ub(ctx, TPosition::VECIN);
      pipe.InitBuffer(ub, 2, l * sizeof(half));

      std::size_t local = 0;
      for (std::size_t row = static_cast<std::size_t>(b); row < batch;
           row += static_cast<std::size_t>(blocks), ++local) {
        if (local % static_cast<std::size_t>(vpc) !=
            static_cast<std::size_t>(v)) {
          continue;
        }
        half partial(0.0f);
        for (std::size_t t = 0; t < row_tiles; ++t) {
          const TileRange r = tile_range(t, len, l);
          const std::size_t base = row * len + r.begin;
          ready.wait(ctx, row * row_tiles + t);
          auto tile = ub.AllocTensor<half>();
          DataCopy(ctx, tile, y.sub(base, r.len), r.len);
          Adds(ctx, tile, tile, partial, r.len);  // one add per l-tile
          partial = GetValue(ctx, tile, r.len - 1);
          DataCopy(ctx, y.sub(base, r.len), tile, r.len);
          ub.FreeTensor(tile);
        }
      }
    }
  });
}

}  // namespace ascend::kernels
