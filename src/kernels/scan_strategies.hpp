// Alternative multi-core scan strategies from the literature (§2.1), built
// on the same AscendC layer so they can be compared head-to-head with
// MCScan on the simulated 910B:
//
//  * StreamScan [48]: single-pass, 2N global-memory traffic, with a strict
//    serial dependency between adjacent tiles — each tile's prefix is
//    published through GM and consumed by the next tile's owner, so every
//    tile boundary pays a full GM round-trip latency.
//  * Decoupled look-back [36]: also single-pass 2N, but each tile
//    publishes its *aggregate* early and its *inclusive prefix* when known;
//    consumers walk back over predecessors' aggregates instead of waiting
//    for the full serial chain, which substantially shortens the critical
//    path.
//
// Both are vector-only here (the cube's local scans would add a GM round
// trip and break the 2N property — one reason the paper's MCScan uses the
// SSA-style structure instead on this architecture, §3.1/§4.3).
#pragma once

#include <cstddef>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/report.hpp"

namespace ascend::kernels {

struct StrategyOptions {
  int blocks = 0;  ///< vector cores to use (0 = all)
};

/// StreamScan: inclusive scan, fp16 -> fp32, 2N traffic, adjacent-tile
/// serial dependency.
sim::Report stream_scan(acc::Device& dev, acc::GlobalTensor<half> x,
                        acc::GlobalTensor<float> y, std::size_t n,
                        const StrategyOptions& opt = {});

/// Decoupled look-back: inclusive scan, fp16 -> fp32, 2N traffic,
/// aggregate/prefix two-phase flags per tile.
sim::Report lookback_scan(acc::Device& dev, acc::GlobalTensor<half> x,
                          acc::GlobalTensor<float> y, std::size_t n,
                          const StrategyOptions& opt = {});

}  // namespace ascend::kernels
