// LSB radix sort (§5): one stable split per bit, with the splits' scans
// running on the cube units via MCScan (int8 masks, int32 offsets).
//
// fp16 keys are made radix-sortable by the classic encoding (invert the
// MSB of positives, all bits of negatives — Knuth ex. 5.2.5-8/9, also used
// on the CM-2 [9]); RadixSingle, a vector-only kernel, extracts each pass's
// radix with ShiftRight/And/Not before the split executes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/report.hpp"

namespace ascend::kernels {

struct RadixSortOptions {
  std::size_t s = 128;       ///< MCScan tile size for the split scans
  int blocks = 0;            ///< AI cores (0 = all)
  bool descending = false;   ///< sort order
};

/// Stable sort of fp16 keys; writes sorted keys and their original indices
/// (the torch.sort contract, §6.3). When `idx_in` is valid it is carried as
/// the payload instead of the identity indices (used by top-k to keep the
/// original positions through a final ordering pass).
sim::Report radix_sort_f16(acc::Device& dev, acc::GlobalTensor<half> keys,
                           acc::GlobalTensor<half> keys_out,
                           acc::GlobalTensor<std::int32_t> idx_out,
                           std::size_t n, const RadixSortOptions& opt = {},
                           acc::GlobalTensor<std::int32_t> idx_in = {});

/// Stable ascending sort of 8-bit keys: only 8 split passes — the
/// low-precision regime where the paper expects "an additional performance
/// improvement (2x) ... without further development effort" (§6.3).
sim::Report radix_sort_u8(acc::Device& dev,
                          acc::GlobalTensor<std::uint8_t> keys,
                          acc::GlobalTensor<std::uint8_t> keys_out,
                          acc::GlobalTensor<std::int32_t> idx_out,
                          std::size_t n, const RadixSortOptions& opt = {});

/// Stable ascending sort of unsigned 16-bit keys (no float encoding).
sim::Report radix_sort_u16(acc::Device& dev,
                           acc::GlobalTensor<std::uint16_t> keys,
                           acc::GlobalTensor<std::uint16_t> keys_out,
                           acc::GlobalTensor<std::int32_t> idx_out,
                           std::size_t n, const RadixSortOptions& opt = {});

// --- Building-block kernels (shared with the baseline sort) -----------------

/// Vector kernel: encodes fp16 bit patterns into order-preserving uint16
/// (complemented when descending) and emits identity indices (or copies
/// `idx_in` when valid).
sim::Report radix_encode_kernel(acc::Device& dev, acc::GlobalTensor<half> keys,
                                acc::GlobalTensor<std::uint16_t> enc,
                                acc::GlobalTensor<std::int32_t> idx,
                                std::size_t n, bool descending, int blocks = 0,
                                acc::GlobalTensor<std::int32_t> idx_in = {});

/// Vector kernel: decodes uint16 back to fp16 keys.
sim::Report radix_decode_kernel(acc::Device& dev,
                                acc::GlobalTensor<std::uint16_t> enc,
                                acc::GlobalTensor<half> keys_out,
                                std::size_t n, bool descending,
                                int blocks = 0);

/// RadixSingle (§5): builds the pass-`bit` split mask (1 where the bit is
/// 0, so zero-bit elements go first) using ShiftRight / And / Not.
sim::Report radix_extract_kernel(acc::Device& dev,
                                 acc::GlobalTensor<std::uint16_t> enc,
                                 acc::GlobalTensor<std::int8_t> mask,
                                 std::size_t n, int bit, int blocks = 0);

}  // namespace ascend::kernels
