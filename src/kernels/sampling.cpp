#include "kernels/sampling.hpp"

#include <algorithm>

#include "kernels/common.hpp"
#include "kernels/mcscan.hpp"
#include "kernels/radix_sort.hpp"
#include "kernels/sort_baseline.hpp"
#include "kernels/vec_cumsum.hpp"

namespace ascend::kernels {

using namespace acc;

namespace {
constexpr std::size_t kChunk = 8192;
}  // namespace

template <typename T>
std::size_t count_below(Device& dev, GlobalTensor<T> cum, std::size_t m,
                        double theta, sim::Report& rep, int blocks) {
  if (m == 0) return 0;
  const int nb = (blocks > 0 ? blocks : dev.config().num_ai_cores) *
                 dev.config().vec_per_core;
  const std::size_t chunks = num_tiles(m, kChunk);
  const int active = std::min<int>(nb, static_cast<int>(chunks));
  auto counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(active), 0);
  auto counts_gm = counts.tensor();
  const T theta_t = static_cast<T>(theta);

  rep += launch(
      dev,
      {.block_dim = active, .mode = LaunchMode::VectorOnly,
       .name = "count_below"},
      [&, m, chunks, theta_t](KernelContext& ctx) {
        TPipe pipe(ctx);
        TBuf cb(ctx, TPosition::VECIN), mb(ctx, TPosition::VECCALC),
            wb(ctx, TPosition::VECCALC), sb(ctx, TPosition::VECCALC);
        pipe.InitBuffer(cb, kChunk * sizeof(T));
        pipe.InitBuffer(mb, kChunk);
        pipe.InitBuffer(wb, kChunk * sizeof(std::int32_t));
        pipe.InitBuffer(sb, 64);
        auto c_ub = cb.Get<T>();
        auto m_ub = mb.Get<std::int8_t>();
        auto w_ub = wb.Get<std::int32_t>();
        auto s_ub = sb.Get<std::int32_t>();

        std::int32_t total = 0;
        const BlockShare share =
            block_share(chunks, ctx.GetBlockDim(), ctx.GetBlockIdx());
        for (std::size_t c = share.begin; c < share.begin + share.count; ++c) {
          const TileRange r = tile_range(c, m, kChunk);
          DataCopy(ctx, c_ub, cum.sub(r.begin, r.len), r.len);
          CompareScalar(ctx, m_ub, c_ub, theta_t, CmpMode::LE, r.len);
          Cast(ctx, w_ub, m_ub, r.len);
          ReduceSum(ctx, s_ub, w_ub, r.len);
          total += GetValue(ctx, s_ub, 0);
        }
        SetValue(ctx, s_ub, 0, total);
        DataCopy(ctx,
                 counts_gm.sub(static_cast<std::size_t>(ctx.GetBlockIdx()), 1),
                 s_ub, 1);
      });

  std::size_t count = 0;
  for (int b = 0; b < active; ++b) {
    count += static_cast<std::size_t>(counts[static_cast<std::size_t>(b)]);
  }
  rep += dev.host_sync_report();
  return count;
}

template std::size_t count_below<float>(Device&, GlobalTensor<float>,
                                        std::size_t, double, sim::Report&,
                                        int);
template std::size_t count_below<half>(Device&, GlobalTensor<half>,
                                       std::size_t, double, sim::Report&, int);

TopPResult top_p_sample(Device& dev, GlobalTensor<half> probs, std::size_t n,
                        double p, double u, const SamplingOptions& opt) {
  ASCAN_CHECK(n >= 1 && probs.size() >= n, "top_p: bad input");
  ASCAN_CHECK(p > 0.0 && p <= 1.0, "top_p: p must be in (0, 1]");
  ASCAN_CHECK(u >= 0.0 && u < 1.0, "top_p: u must be in [0, 1)");
  TopPResult result;

  auto sorted = dev.alloc<half>(n);
  auto sorted_idx = dev.alloc<std::int32_t>(n);

  // 1) Sort the token probabilities in descending order.
  if (opt.use_baseline_ops) {
    result.report += sort_baseline_f16(dev, probs, sorted.tensor(),
                                       sorted_idx.tensor(), n,
                                       /*descending=*/true);
  } else {
    result.report += radix_sort_f16(
        dev, probs, sorted.tensor(), sorted_idx.tensor(), n,
        {.s = opt.s, .blocks = opt.blocks, .descending = true});
  }

  // 2) Cumulative sum of the sorted probabilities (the 17th scan).
  sim::Report scan_rep;
  auto cum32 = dev.alloc<float>(opt.use_baseline_ops ? 0 : n);
  auto cum16 = dev.alloc<half>(opt.use_baseline_ops ? n : 0);
  if (opt.use_baseline_ops) {
    scan_rep = vec_cumsum(dev, sorted.tensor(), cum16.tensor(), n);
  } else {
    scan_rep = mcscan<half, float>(dev, sorted.tensor(), cum32.tensor(), n,
                                   {.s = opt.s, .blocks = opt.blocks});
  }
  result.report += scan_rep;

  // 3) Nucleus size: the Llama-3 rule keeps token i while the cumulative
  //    sum *before* it is <= p, i.e. kept = count(cum - prob <= p). Since
  //    cum is monotone, cum[i] - prob[i] = cum[i-1], so this is
  //    1 + count(cum <= p) clipped to n (and at least 1).
  std::size_t kept;
  if (opt.use_baseline_ops) {
    kept = count_below<half>(dev, cum16.tensor(), n, p, result.report,
                             opt.blocks);
  } else {
    kept = count_below<float>(dev, cum32.tensor(), n, p, result.report,
                              opt.blocks);
  }
  kept = std::min(n, kept + 1);
  result.nucleus = kept;

  // 4) Inverse-transform draw within the nucleus prefix, reusing the same
  //    cumulative sums: theta = u * cum[kept-1]; the sampled position is
  //    the number of cum values <= theta.
  const double total = opt.use_baseline_ops
                           ? double(float(cum16[kept - 1]))
                           : double(cum32[kept - 1]);
  result.report += dev.host_sync_report();
  const double theta = u * total;
  std::size_t pos;
  if (opt.use_baseline_ops) {
    pos = count_below<half>(dev, cum16.tensor(), kept, theta, result.report,
                            opt.blocks);
  } else {
    pos = count_below<float>(dev, cum32.tensor(), kept, theta, result.report,
                             opt.blocks);
  }
  pos = std::min(pos, kept - 1);
  result.token = sorted_idx[pos];
  result.report += dev.host_sync_report();
  return result;
}

WeightedSampleResult weighted_sample(Device& dev, GlobalTensor<half> weights,
                                     std::size_t n, double u,
                                     const SamplingOptions& opt) {
  ASCAN_CHECK(n >= 1 && weights.size() >= n, "weighted_sample: bad input");
  ASCAN_CHECK(u >= 0.0 && u < 1.0, "weighted_sample: u must be in [0, 1)");
  WeightedSampleResult result;

  auto cum = dev.alloc<float>(n);
  result.report += mcscan<half, float>(dev, weights, cum.tensor(), n,
                                       {.s = opt.s, .blocks = opt.blocks});
  const double total = cum[n - 1];
  result.report += dev.host_sync_report();
  ASCAN_CHECK(total > 0.0, "weighted_sample: zero total weight");

  const double theta = u * total;
  const std::size_t pos =
      count_below<float>(dev, cum.tensor(), n, theta, result.report,
                         opt.blocks);
  result.index = static_cast<std::int32_t>(std::min(pos, n - 1));
  return result;
}

}  // namespace ascend::kernels
