#include "kernels/scan_u.hpp"

#include "kernels/common.hpp"

namespace ascend::kernels {

using namespace acc;

sim::Report scan_u(Device& dev, GlobalTensor<half> x, GlobalTensor<half> y,
                   std::size_t n, std::size_t s) {
  ASCAN_CHECK(valid_tile_size(s), "scan_u: invalid tile size " << s);
  ASCAN_CHECK(x.size() >= n && y.size() >= n, "scan_u: tensors too small");
  if (n == 0) {
    sim::Report r;
    r.launches = 1;
    r.time_s = dev.config().launch_overhead_s;
    return r;
  }

  // Host-side static pre-allocation of U_s (paper §6.1).
  auto upper = dev.upload(make_upper_ones<half>(s));
  auto u_gm = upper.tensor();

  const std::size_t l = s * s;
  const std::size_t tiles = num_tiles(n, l);

  return launch(dev,
                {.block_dim = 1, .mode = LaunchMode::Mix, .name = "scan_u",
                 .outputs = {guard_output(y)}},
                [&, n, s, l, tiles](KernelContext& ctx) {
    auto& tile_ready = ctx.shared().flags("tile_ready", tiles);

    if (ctx.is_cube()) {
      TPipe pipe(ctx);
      TBuf u_l1(ctx, TPosition::B1), u_l0(ctx, TPosition::B2);
      pipe.InitBuffer(u_l1, l * sizeof(half));
      pipe.InitBuffer(u_l0, l * sizeof(half));
      TQue a_l1(ctx, TPosition::A1), a_l0(ctx, TPosition::A2),
          c_out(ctx, TPosition::CO1);
      pipe.InitBuffer(a_l1, 2, l * sizeof(half));
      pipe.InitBuffer(a_l0, 2, l * sizeof(half));
      pipe.InitBuffer(c_out, 2, l * sizeof(float));

      // Load U_s once into L0B (Algorithm 1 line 4).
      auto u_stage = u_l1.Get<half>();
      DataCopy(ctx, u_stage, u_gm, l);
      auto u_tile = u_l0.Get<half>();
      LoadData(ctx, u_tile, u_stage, l);

      for (std::size_t t = 0; t < tiles; ++t) {
        const TileRange r = tile_range(t, n, l);
        auto stage = a_l1.AllocTensor<half>();
        if (r.len < l) InitConstValue(ctx, stage, half(0.0f), l);
        DataCopy(ctx, stage, x.sub(r.begin, r.len), r.len);
        a_l1.EnQue(stage);

        auto st = a_l1.DeQue<half>();
        auto a_tile = a_l0.AllocTensor<half>();
        LoadData(ctx, a_tile, st, l);
        a_l1.FreeTensor(st);

        auto c_tile = c_out.AllocTensor<float>();
        Mmad(ctx, c_tile, a_tile, u_tile, s, s, s, /*accumulate=*/false);
        a_l0.FreeTensor(a_tile);

        // Local row scans land in GM for the vector core (cast f32->f16).
        Fixpipe(ctx, y.sub(r.begin, r.len), c_tile, r.len);
        c_out.FreeTensor(c_tile);
        tile_ready.set(ctx, t);
      }
    } else if (ctx.GetSubBlockIdx() == 0) {
      // A single vector core propagates the partial sums (Fig. 2).
      TPipe pipe(ctx);
      TQue ub(ctx, TPosition::VECIN);
      pipe.InitBuffer(ub, 2, l * sizeof(half));

      half partial(0.0f);  // scalar register (Algorithm 1 line 2)
      // Software pipelining: wait + fetch the next tile before propagating
      // through the current one, hiding the GM round trip.
      auto fetch = [&](std::size_t t) {
        const TileRange r = tile_range(t, n, l);
        tile_ready.wait(ctx, t);
        auto tile = ub.AllocTensor<half>();
        DataCopy(ctx, tile, y.sub(r.begin, r.len), r.len);
        ub.EnQue(tile);
      };
      if (tiles > 0) fetch(0);
      for (std::size_t t = 0; t < tiles; ++t) {
        const TileRange r = tile_range(t, n, l);
        if (t + 1 < tiles) fetch(t + 1);
        auto tile = ub.DeQue<half>();
        for (std::size_t off = 0; off < r.len; off += s) {
          const std::size_t len = std::min(s, r.len - off);
          auto row = tile.sub(off, len);
          Adds(ctx, row, row, partial, len);             // line 12
          partial = GetValue(ctx, row, len - 1);         // line 13
        }
        DataCopy(ctx, y.sub(r.begin, r.len), tile, r.len);
        ub.FreeTensor(tile);
      }
    }
  });
}

}  // namespace ascend::kernels
