#include "kernels/radix_sort.hpp"

#include "kernels/common.hpp"
#include "kernels/split.hpp"

namespace ascend::kernels {

using namespace acc;

namespace {
constexpr std::size_t kChunk = 8192;

int vector_blocks(Device& dev, int blocks) {
  return (blocks > 0 ? blocks : dev.config().num_ai_cores) *
         dev.config().vec_per_core;
}
}  // namespace

sim::Report radix_encode_kernel(Device& dev, GlobalTensor<half> keys,
                                GlobalTensor<std::uint16_t> enc,
                                GlobalTensor<std::int32_t> idx, std::size_t n,
                                bool descending, int blocks,
                                GlobalTensor<std::int32_t> idx_in) {
  ASCAN_CHECK(keys.size() >= n && enc.size() >= n && idx.size() >= n,
              "radix_encode: tensors too small");
  const int nb = vector_blocks(dev, blocks);
  const std::size_t chunks = num_tiles(n, kChunk);
  auto bits = keys.reinterpret<std::uint16_t>();

  return launch(
      dev,
      {.block_dim = nb, .mode = LaunchMode::VectorOnly, .name = "radix_encode"},
      [&, n, chunks, nb, descending](KernelContext& ctx) {
        const bool have_idx = idx_in.valid();
        TPipe pipe(ctx);
        TBuf kb(ctx, TPosition::VECIN), nb1(ctx, TPosition::VECCALC),
            ob(ctx, TPosition::VECCALC), sb(ctx, TPosition::VECCALC),
            eb(ctx, TPosition::VECOUT), ib(ctx, TPosition::VECOUT);
        pipe.InitBuffer(kb, kChunk * sizeof(std::uint16_t));
        pipe.InitBuffer(nb1, kChunk * sizeof(std::uint16_t));
        pipe.InitBuffer(ob, kChunk * sizeof(std::uint16_t));
        pipe.InitBuffer(sb, kChunk);
        pipe.InitBuffer(eb, kChunk * sizeof(std::uint16_t));
        pipe.InitBuffer(ib, kChunk * sizeof(std::int32_t));
        auto k_ub = kb.Get<std::uint16_t>();
        auto not_ub = nb1.Get<std::uint16_t>();
        auto or_ub = ob.Get<std::uint16_t>();
        auto sign_ub = sb.Get<std::int8_t>();
        auto enc_ub = eb.Get<std::uint16_t>();
        auto idx_ub = ib.Get<std::int32_t>();

        const BlockShare share = block_share(chunks, nb, ctx.GetBlockIdx());
        for (std::size_t c = share.begin; c < share.begin + share.count; ++c) {
          const TileRange r = tile_range(c, n, kChunk);
          DataCopy(ctx, k_ub, bits.sub(r.begin, r.len), r.len);
          // sign bit set <=> bits > 0x7fff
          CompareScalar(ctx, sign_ub, k_ub, std::uint16_t{0x7fff},
                        CmpMode::GT, r.len);
          Not(ctx, not_ub, k_ub, r.len);                         // negatives
          Ors(ctx, or_ub, k_ub, std::uint16_t{0x8000}, r.len);   // positives
          Select(ctx, enc_ub, sign_ub, not_ub, or_ub, r.len);
          if (descending) Not(ctx, enc_ub, enc_ub, r.len);
          DataCopy(ctx, enc.sub(r.begin, r.len), enc_ub, r.len);
          if (have_idx) {
            DataCopy(ctx, idx_ub, idx_in.sub(r.begin, r.len), r.len);
          } else {
            CreateVecIndex(ctx, idx_ub, static_cast<std::int32_t>(r.begin),
                           r.len);
          }
          DataCopy(ctx, idx.sub(r.begin, r.len), idx_ub, r.len);
        }
      });
}

sim::Report radix_decode_kernel(Device& dev, GlobalTensor<std::uint16_t> enc,
                                GlobalTensor<half> keys_out, std::size_t n,
                                bool descending, int blocks) {
  ASCAN_CHECK(enc.size() >= n && keys_out.size() >= n,
              "radix_decode: tensors too small");
  const int nb = vector_blocks(dev, blocks);
  const std::size_t chunks = num_tiles(n, kChunk);
  auto out_bits = keys_out.reinterpret<std::uint16_t>();

  return launch(
      dev,
      {.block_dim = nb, .mode = LaunchMode::VectorOnly, .name = "radix_decode"},
      [&, n, chunks, nb, descending](KernelContext& ctx) {
        TPipe pipe(ctx);
        TBuf eb(ctx, TPosition::VECIN), nb1(ctx, TPosition::VECCALC),
            ab(ctx, TPosition::VECCALC), sb(ctx, TPosition::VECCALC),
            kb(ctx, TPosition::VECOUT);
        pipe.InitBuffer(eb, kChunk * sizeof(std::uint16_t));
        pipe.InitBuffer(nb1, kChunk * sizeof(std::uint16_t));
        pipe.InitBuffer(ab, kChunk * sizeof(std::uint16_t));
        pipe.InitBuffer(sb, kChunk);
        pipe.InitBuffer(kb, kChunk * sizeof(std::uint16_t));
        auto enc_ub = eb.Get<std::uint16_t>();
        auto not_ub = nb1.Get<std::uint16_t>();
        auto and_ub = ab.Get<std::uint16_t>();
        auto pos_ub = sb.Get<std::int8_t>();
        auto key_ub = kb.Get<std::uint16_t>();

        const BlockShare share = block_share(chunks, nb, ctx.GetBlockIdx());
        for (std::size_t c = share.begin; c < share.begin + share.count; ++c) {
          const TileRange r = tile_range(c, n, kChunk);
          DataCopy(ctx, enc_ub, enc.sub(r.begin, r.len), r.len);
          if (descending) Not(ctx, enc_ub, enc_ub, r.len);
          // encoded positives have the MSB set
          CompareScalar(ctx, pos_ub, enc_ub, std::uint16_t{0x7fff},
                        CmpMode::GT, r.len);
          Ands(ctx, and_ub, enc_ub, std::uint16_t{0x7fff}, r.len);
          Not(ctx, not_ub, enc_ub, r.len);
          Select(ctx, key_ub, pos_ub, and_ub, not_ub, r.len);
          DataCopy(ctx, out_bits.sub(r.begin, r.len), key_ub, r.len);
        }
      });
}

sim::Report radix_extract_kernel(Device& dev, GlobalTensor<std::uint16_t> enc,
                                 GlobalTensor<std::int8_t> mask, std::size_t n,
                                 int bit, int blocks) {
  ASCAN_CHECK(enc.size() >= n && mask.size() >= n,
              "radix_extract: tensors too small");
  ASCAN_CHECK(bit >= 0 && bit < 16, "radix_extract: bad bit " << bit);
  const int nb = vector_blocks(dev, blocks);
  const std::size_t chunks = num_tiles(n, kChunk);

  return launch(
      dev, {.block_dim = nb, .mode = LaunchMode::VectorOnly,
            .name = "radix_extract"},
      [&, n, chunks, nb, bit](KernelContext& ctx) {
        TPipe pipe(ctx);
        TBuf eb(ctx, TPosition::VECIN), tb(ctx, TPosition::VECCALC),
            mb(ctx, TPosition::VECOUT);
        pipe.InitBuffer(eb, kChunk * sizeof(std::uint16_t));
        pipe.InitBuffer(tb, kChunk * sizeof(std::uint16_t));
        pipe.InitBuffer(mb, kChunk);
        auto enc_ub = eb.Get<std::uint16_t>();
        auto t_ub = tb.Get<std::uint16_t>();
        auto m_ub = mb.Get<std::int8_t>();

        const BlockShare share = block_share(chunks, nb, ctx.GetBlockIdx());
        for (std::size_t c = share.begin; c < share.begin + share.count; ++c) {
          const TileRange r = tile_range(c, n, kChunk);
          DataCopy(ctx, enc_ub, enc.sub(r.begin, r.len), r.len);
          ShiftRights(ctx, t_ub, enc_ub, bit, r.len);  // RadixSingle (§5)
          Ands(ctx, t_ub, t_ub, std::uint16_t{1}, r.len);
          Xors(ctx, t_ub, t_ub, std::uint16_t{1}, r.len);  // Not: 0-bits first
          Cast(ctx, m_ub, t_ub.reinterpret<std::int16_t>(), r.len);
          DataCopy(ctx, mask.sub(r.begin, r.len), m_ub, r.len);
        }
      });
}

namespace {

/// Shared pass driver over encoded keys already in enc_a/idx_a.
/// Leaves the sorted keys in enc_a/idx_a (an even number of passes
/// ping-pongs back).
sim::Report radix_passes(Device& dev, GlobalTensor<std::uint16_t> enc_a,
                         GlobalTensor<std::int32_t> idx_a,
                         GlobalTensor<std::uint16_t> enc_b,
                         GlobalTensor<std::int32_t> idx_b,
                         GlobalTensor<std::int8_t> mask, std::size_t n,
                         const RadixSortOptions& opt, int nbits = 16) {
  ASCAN_ASSERT(nbits % 2 == 0, "radix pass count must be even");
  sim::Report rep;
  GlobalTensor<std::uint16_t> src_k = enc_a, dst_k = enc_b;
  GlobalTensor<std::int32_t> src_i = idx_a, dst_i = idx_b;
  for (int bit = 0; bit < nbits; ++bit) {
    rep += radix_extract_kernel(dev, src_k, mask, n, bit, opt.blocks);
    auto sr = split_ind<std::uint16_t>(
        dev, src_k, src_i, mask, dst_k, dst_i, n,
        {.s = opt.s, .blocks = opt.blocks});
    rep += sr.report;
    std::swap(src_k, dst_k);
    std::swap(src_i, dst_i);
  }
  return rep;  // even pass count: results are back in enc_a/idx_a
}

}  // namespace

sim::Report radix_sort_f16(Device& dev, GlobalTensor<half> keys,
                           GlobalTensor<half> keys_out,
                           GlobalTensor<std::int32_t> idx_out, std::size_t n,
                           const RadixSortOptions& opt,
                           GlobalTensor<std::int32_t> idx_in) {
  ASCAN_CHECK(valid_tile_size(opt.s), "radix_sort: invalid tile size");
  ASCAN_CHECK(keys.size() >= n && keys_out.size() >= n && idx_out.size() >= n,
              "radix_sort: tensors too small");
  sim::Report rep;
  if (n == 0) {
    rep.launches = 1;
    rep.time_s = dev.config().launch_overhead_s;
    return rep;
  }

  auto enc_a = dev.alloc<std::uint16_t>(n);
  auto enc_b = dev.alloc<std::uint16_t>(n);
  auto idx_b = dev.alloc<std::int32_t>(n);
  auto mask = dev.alloc<std::int8_t>(n);

  rep += radix_encode_kernel(dev, keys, enc_a.tensor(), idx_out, n,
                             opt.descending, opt.blocks, idx_in);
  rep += radix_passes(dev, enc_a.tensor(), idx_out, enc_b.tensor(),
                      idx_b.tensor(), mask.tensor(), n, opt);
  rep += radix_decode_kernel(dev, enc_a.tensor(), keys_out, n, opt.descending,
                             opt.blocks);
  return rep;
}

sim::Report radix_sort_u16(Device& dev, GlobalTensor<std::uint16_t> keys,
                           GlobalTensor<std::uint16_t> keys_out,
                           GlobalTensor<std::int32_t> idx_out, std::size_t n,
                           const RadixSortOptions& opt) {
  ASCAN_CHECK(valid_tile_size(opt.s), "radix_sort: invalid tile size");
  ASCAN_CHECK(!opt.descending, "radix_sort_u16 supports ascending order");
  ASCAN_CHECK(keys.size() >= n && keys_out.size() >= n && idx_out.size() >= n,
              "radix_sort: tensors too small");
  sim::Report rep;
  if (n == 0) {
    rep.launches = 1;
    rep.time_s = dev.config().launch_overhead_s;
    return rep;
  }

  auto enc_b = dev.alloc<std::uint16_t>(n);
  auto idx_b = dev.alloc<std::int32_t>(n);
  auto mask = dev.alloc<std::int8_t>(n);

  // Prep kernel: copy keys into the working buffer, emit identity indices.
  const int nb = vector_blocks(dev, opt.blocks);
  const std::size_t chunks = num_tiles(n, kChunk);
  rep += launch(
      dev,
      {.block_dim = nb, .mode = LaunchMode::VectorOnly, .name = "radix_prep"},
      [&, n, chunks, nb](KernelContext& ctx) {
        TPipe pipe(ctx);
        TBuf kb(ctx, TPosition::VECIN), ib(ctx, TPosition::VECOUT);
        pipe.InitBuffer(kb, kChunk * sizeof(std::uint16_t));
        pipe.InitBuffer(ib, kChunk * sizeof(std::int32_t));
        auto k_ub = kb.Get<std::uint16_t>();
        auto idx_ub = ib.Get<std::int32_t>();
        const BlockShare share = block_share(chunks, nb, ctx.GetBlockIdx());
        for (std::size_t c = share.begin; c < share.begin + share.count; ++c) {
          const TileRange r = tile_range(c, n, kChunk);
          DataCopy(ctx, k_ub, keys.sub(r.begin, r.len), r.len);
          DataCopy(ctx, keys_out.sub(r.begin, r.len), k_ub, r.len);
          CreateVecIndex(ctx, idx_ub, static_cast<std::int32_t>(r.begin),
                         r.len);
          DataCopy(ctx, idx_out.sub(r.begin, r.len), idx_ub, r.len);
        }
      });
  rep += radix_passes(dev, keys_out, idx_out, enc_b.tensor(), idx_b.tensor(),
                      mask.tensor(), n, opt);
  return rep;
}

sim::Report radix_sort_u8(Device& dev, GlobalTensor<std::uint8_t> keys,
                          GlobalTensor<std::uint8_t> keys_out,
                          GlobalTensor<std::int32_t> idx_out, std::size_t n,
                          const RadixSortOptions& opt) {
  ASCAN_CHECK(valid_tile_size(opt.s), "radix_sort: invalid tile size");
  ASCAN_CHECK(!opt.descending, "radix_sort_u8 supports ascending order");
  ASCAN_CHECK(keys.size() >= n && keys_out.size() >= n && idx_out.size() >= n,
              "radix_sort: tensors too small");
  sim::Report rep;
  if (n == 0) {
    rep.launches = 1;
    rep.time_s = dev.config().launch_overhead_s;
    return rep;
  }

  auto enc_a = dev.alloc<std::uint16_t>(n);
  auto enc_b = dev.alloc<std::uint16_t>(n);
  auto idx_b = dev.alloc<std::int32_t>(n);
  auto mask = dev.alloc<std::int8_t>(n);
  auto ea = enc_a.tensor();

  // Prep: widen u8 keys to the u16 working format, emit identity indices.
  const int nb = vector_blocks(dev, opt.blocks);
  const std::size_t chunks = num_tiles(n, kChunk);
  rep += launch(
      dev,
      {.block_dim = nb, .mode = LaunchMode::VectorOnly, .name = "radix_prep8"},
      [&, n, chunks, nb](KernelContext& ctx) {
        TPipe pipe(ctx);
        TBuf kb(ctx, TPosition::VECIN), wb(ctx, TPosition::VECCALC),
            ib(ctx, TPosition::VECOUT);
        pipe.InitBuffer(kb, kChunk);
        pipe.InitBuffer(wb, kChunk * sizeof(std::uint16_t));
        pipe.InitBuffer(ib, kChunk * sizeof(std::int32_t));
        auto k_ub = kb.Get<std::uint8_t>();
        auto w_ub = wb.Get<std::uint16_t>();
        auto idx_ub = ib.Get<std::int32_t>();
        const BlockShare share = block_share(chunks, nb, ctx.GetBlockIdx());
        for (std::size_t c = share.begin; c < share.begin + share.count; ++c) {
          const TileRange r = tile_range(c, n, kChunk);
          DataCopy(ctx, k_ub, keys.sub(r.begin, r.len), r.len);
          Cast(ctx, w_ub, k_ub, r.len);
          DataCopy(ctx, ea.sub(r.begin, r.len), w_ub, r.len);
          CreateVecIndex(ctx, idx_ub, static_cast<std::int32_t>(r.begin),
                         r.len);
          DataCopy(ctx, idx_out.sub(r.begin, r.len), idx_ub, r.len);
        }
      });
  // Only 8 split passes: the whole point of the low-bit-width regime.
  rep += radix_passes(dev, ea, idx_out, enc_b.tensor(), idx_b.tensor(),
                      mask.tensor(), n, opt, /*nbits=*/8);
  // Narrow the sorted keys back to u8.
  rep += launch(
      dev, {.block_dim = nb, .mode = LaunchMode::VectorOnly,
            .name = "radix_narrow8"},
      [&, n, chunks, nb](KernelContext& ctx) {
        TPipe pipe(ctx);
        TBuf wb(ctx, TPosition::VECIN), kb(ctx, TPosition::VECOUT);
        pipe.InitBuffer(wb, kChunk * sizeof(std::uint16_t));
        pipe.InitBuffer(kb, kChunk);
        auto w_ub = wb.Get<std::uint16_t>();
        auto k_ub = kb.Get<std::uint8_t>();
        const BlockShare share = block_share(chunks, nb, ctx.GetBlockIdx());
        for (std::size_t c = share.begin; c < share.begin + share.count; ++c) {
          const TileRange r = tile_range(c, n, kChunk);
          DataCopy(ctx, w_ub, ea.sub(r.begin, r.len), r.len);
          Cast(ctx, k_ub, w_ub.reinterpret<std::int16_t>(), r.len);
          DataCopy(ctx, keys_out.sub(r.begin, r.len), k_ub, r.len);
        }
      });
  return rep;
}

}  // namespace ascend::kernels
