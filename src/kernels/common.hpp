// Shared helpers for the scan kernels: the constant matrices of §4
// (U_s upper-triangular all-ones, L_s^- strictly-lower all-ones, 1_s
// all-ones), tiling arithmetic, and the host-side constant pre-allocation
// the paper's PyTorch operator performs ("statically pre-allocates an
// upper triangular all-ones matrix U_s", §6.1).
#pragma once

#include <cstdint>
#include <vector>

#include "ascendc/ascendc.hpp"
#include "common/check.hpp"
#include "common/half.hpp"
#include "common/math_util.hpp"

namespace ascend::kernels {

/// Valid matrix-multiplication tile edges on the cube unit. s = 128
/// maximises L0A/L0B utilisation (paper §6.1); smaller values trade
/// efficiency for latency.
inline bool valid_tile_size(std::size_t s) {
  return s == 16 || s == 32 || s == 64 || s == 128;
}

/// Upper-triangular all-ones U_s (ones on the diagonal), row-major.
template <typename T>
std::vector<T> make_upper_ones(std::size_t s) {
  std::vector<T> m(s * s, T(0));
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = i; j < s; ++j) m[i * s + j] = T(1);
  }
  return m;
}

/// Strictly lower-triangular all-ones L_s^- (zero diagonal), row-major.
template <typename T>
std::vector<T> make_strict_lower_ones(std::size_t s) {
  std::vector<T> m(s * s, T(0));
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < i; ++j) m[i * s + j] = T(1);
  }
  return m;
}

/// All-ones 1_s, row-major.
template <typename T>
std::vector<T> make_all_ones(std::size_t s) {
  return std::vector<T>(s * s, T(1));
}

/// Device-resident constant matrices for a given tile size, allocated once
/// per operator invocation (mirrors the static pre-allocation in the
/// paper's PyTorch integration).
template <typename T>
struct ScanConstants {
  acc::GlobalBuffer<T> upper;        // U_s
  acc::GlobalBuffer<T> strict_lower; // L_s^-
  acc::GlobalBuffer<T> ones;         // 1_s

  static ScanConstants make(acc::Device& dev, std::size_t s) {
    ScanConstants c;
    c.upper = dev.upload(make_upper_ones<T>(s));
    c.strict_lower = dev.upload(make_strict_lower_ones<T>(s));
    c.ones = dev.upload(make_all_ones<T>(s));
    return c;
  }
};

/// Contiguous [begin, end) element range of tile `t` among tiles of
/// length `tile` covering `n` elements.
struct TileRange {
  std::size_t begin;
  std::size_t len;
};

inline std::size_t num_tiles(std::size_t n, std::size_t tile) {
  return ceil_div(n, tile);
}

inline TileRange tile_range(std::size_t t, std::size_t n, std::size_t tile) {
  const std::size_t begin = t * tile;
  ASCAN_ASSERT(begin < n);
  return {begin, std::min(tile, n - begin)};
}

/// Static block partition of `count` items over `blocks` workers:
/// block b owns [item_begin, item_begin + item_count).
struct BlockShare {
  std::size_t begin;
  std::size_t count;
};

inline BlockShare block_share(std::size_t count, int blocks, int b) {
  const std::size_t base = count / static_cast<std::size_t>(blocks);
  const std::size_t rem = count % static_cast<std::size_t>(blocks);
  const auto ub = static_cast<std::size_t>(b);
  const std::size_t begin = ub * base + std::min(ub, rem);
  const std::size_t cnt = base + (ub < rem ? 1 : 0);
  return {begin, cnt};
}

}  // namespace ascend::kernels
