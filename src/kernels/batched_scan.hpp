// Batched scans (§4.2): prefix sums of a batch of equal-length arrays.
//
// Two schedules, mirroring the paper's comparison (Figs. 4, 5, 12):
//  * ScanU-based: each AI core takes a *pair* of rows; its cube computes
//    the local s-row scans of both rows tile-by-tile, and its two vector
//    cores each finish one row's partial-sum chain — the schedule that
//    exploits the 2:1 vector-to-cube ratio of the 910B.
//  * ScanUL1-based: each AI core scans whole rows on its own (ScanUL1 per
//    row), rows assigned round-robin across cores.
//
// ScanU-based wins for many short rows (all 40 AIVs busy); ScanUL1-based
// wins for few long rows (each row gets a full cube pipeline).
#pragma once

#include <cstddef>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/report.hpp"

namespace ascend::kernels {

struct BatchedScanOptions {
  std::size_t s = 128;
  int blocks = 0;  ///< AI cores to use; 0 = all
};

/// Row-wise inclusive scan of x viewed as [batch, len] row-major, into y
/// (same shape). ScanU-based schedule (the paper's reference/baseline).
sim::Report batched_scan_u(acc::Device& dev, acc::GlobalTensor<half> x,
                           acc::GlobalTensor<half> y, std::size_t batch,
                           std::size_t len, const BatchedScanOptions& opt = {});

/// Row-wise inclusive scan, ScanUL1-based schedule (one row per AI core).
sim::Report batched_scan_ul1(acc::Device& dev, acc::GlobalTensor<half> x,
                             acc::GlobalTensor<half> y, std::size_t batch,
                             std::size_t len,
                             const BatchedScanOptions& opt = {});

}  // namespace ascend::kernels
