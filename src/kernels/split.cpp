#include "kernels/split.hpp"

#include "kernels/common.hpp"
#include "kernels/mcscan.hpp"

namespace ascend::kernels {

using namespace acc;

namespace {

sim::Report empty_launch(Device& dev) {
  sim::Report r;
  r.launches = 1;
  r.time_s = dev.config().launch_overhead_s;
  return r;
}

}  // namespace

template <typename K>
SplitReport split_ind(Device& dev, GlobalTensor<K> keys,
                      GlobalTensor<std::int32_t> idx_in,
                      GlobalTensor<std::int8_t> mask, GlobalTensor<K> keys_out,
                      GlobalTensor<std::int32_t> idx_out, std::size_t n,
                      const SplitOptions& opt) {
  static_assert(sizeof(K) == 2, "split_ind keys are 16-bit (paper §5)");
  ASCAN_CHECK(keys.size() >= n && mask.size() >= n && keys_out.size() >= n &&
                  idx_out.size() >= n,
              "split_ind: tensors too small");
  ASCAN_CHECK(!idx_in.valid() || idx_in.size() >= n,
              "split_ind: payload index tensor too small");
  SplitReport result;
  if (n == 0) {
    result.report = empty_launch(dev);
    return result;
  }

  // 1) Exclusive scan of the mask gives every true element's destination
  //    offset (§5: "executes an exclusive scan using MCScan on the mask").
  auto offsets = dev.alloc<std::int32_t>(n);
  auto off_gm = offsets.tensor();
  result.report = mcscan<std::int8_t, std::int32_t>(
      dev, mask, off_gm, n, {.s = opt.s, .blocks = opt.blocks, .exclusive = true});

  // 2) Host sync: total number of true elements (the false group's base).
  const std::size_t total_true =
      static_cast<std::size_t>(offsets[n - 1]) + (mask.data()[n - 1] ? 1 : 0);
  result.report += dev.host_sync_report();
  result.num_true = total_true;

  // 3) Gather kernel: per tile, compact trues and falses with GatherMask
  //    and write both groups at their scanned offsets.
  const int nb = (opt.blocks > 0 ? opt.blocks : dev.config().num_ai_cores) *
                 dev.config().vec_per_core;
  constexpr std::size_t kChunk = 8192;
  const std::size_t chunks = num_tiles(n, kChunk);
  const bool have_idx = idx_in.valid();

  result.report += launch(
      dev,
      {.block_dim = nb, .mode = LaunchMode::VectorOnly, .name = "split_ind",
       .outputs = {guard_output(keys_out), guard_output(idx_out)}},
      [&, n, total_true, chunks, nb, have_idx](KernelContext& ctx) {
        TPipe pipe(ctx);
        TBuf kb(ctx, TPosition::VECIN), mb(ctx, TPosition::VECIN),
            nmb(ctx, TPosition::VECCALC), ib(ctx, TPosition::VECIN),
            kg(ctx, TPosition::VECOUT), ig(ctx, TPosition::VECOUT),
            ob(ctx, TPosition::VECIN);
        pipe.InitBuffer(kb, kChunk * sizeof(K));
        pipe.InitBuffer(mb, kChunk);
        pipe.InitBuffer(nmb, kChunk);
        pipe.InitBuffer(ib, kChunk * sizeof(std::int32_t));
        pipe.InitBuffer(kg, kChunk * sizeof(K));
        pipe.InitBuffer(ig, kChunk * sizeof(std::int32_t));
        pipe.InitBuffer(ob, 64);

        auto keys_ub = kb.Get<K>();
        auto mask_ub = mb.Get<std::int8_t>();
        auto nmask_ub = nmb.Get<std::int8_t>();
        auto idx_ub = ib.Get<std::int32_t>();
        auto kgath = kg.Get<K>();
        auto igath = ig.Get<std::int32_t>();
        auto off_ub = ob.Get<std::int32_t>();

        const BlockShare share = block_share(chunks, nb, ctx.GetBlockIdx());
        for (std::size_t c = share.begin; c < share.begin + share.count; ++c) {
          const TileRange r = tile_range(c, n, kChunk);
          // This tile's true-group base comes from the scanned offsets.
          DataCopy(ctx, off_ub, off_gm.sub(r.begin, 1), 1);
          const std::size_t base_true =
              static_cast<std::size_t>(GetValue(ctx, off_ub, 0));
          const std::size_t base_false =
              total_true + (r.begin - base_true);

          DataCopy(ctx, keys_ub, keys.sub(r.begin, r.len), r.len);
          DataCopy(ctx, mask_ub, mask.sub(r.begin, r.len), r.len);
          if (have_idx) {
            DataCopy(ctx, idx_ub, idx_in.sub(r.begin, r.len), r.len);
          } else {
            CreateVecIndex(ctx, idx_ub, static_cast<std::int32_t>(r.begin),
                           r.len);
          }

          const std::size_t nt = GatherMask(ctx, kgath, keys_ub, mask_ub,
                                            r.len);
          if (nt > 0) {
            DataCopy(ctx, keys_out.sub(base_true, nt), kgath, nt);
          }
          GatherMask(ctx, igath, idx_ub, mask_ub, r.len);
          if (nt > 0) {
            DataCopy(ctx, idx_out.sub(base_true, nt), igath, nt);
          }

          Xors(ctx, nmask_ub, mask_ub, std::int8_t{1}, r.len);
          const std::size_t nf = GatherMask(ctx, kgath, keys_ub, nmask_ub,
                                            r.len);
          if (nf > 0) {
            DataCopy(ctx, keys_out.sub(base_false, nf), kgath, nf);
          }
          GatherMask(ctx, igath, idx_ub, nmask_ub, r.len);
          if (nf > 0) {
            DataCopy(ctx, idx_out.sub(base_false, nf), igath, nf);
          }
        }
      });
  return result;
}

template SplitReport split_ind<half>(Device&, GlobalTensor<half>,
                                     GlobalTensor<std::int32_t>,
                                     GlobalTensor<std::int8_t>,
                                     GlobalTensor<half>,
                                     GlobalTensor<std::int32_t>, std::size_t,
                                     const SplitOptions&);
template SplitReport split_ind<std::uint16_t>(
    Device&, GlobalTensor<std::uint16_t>, GlobalTensor<std::int32_t>,
    GlobalTensor<std::int8_t>, GlobalTensor<std::uint16_t>,
    GlobalTensor<std::int32_t>, std::size_t, const SplitOptions&);

SplitReport compress(Device& dev, GlobalTensor<half> x,
                     GlobalTensor<std::int8_t> mask, GlobalTensor<half> out,
                     std::size_t n, const SplitOptions& opt) {
  ASCAN_CHECK(x.size() >= n && mask.size() >= n, "compress: tensors too small");
  SplitReport result;
  if (n == 0) {
    result.report = empty_launch(dev);
    return result;
  }

  auto offsets = dev.alloc<std::int32_t>(n);
  auto off_gm = offsets.tensor();
  result.report = mcscan<std::int8_t, std::int32_t>(
      dev, mask, off_gm, n,
      {.s = opt.s, .blocks = opt.blocks, .exclusive = true});

  const std::size_t total_true =
      static_cast<std::size_t>(offsets[n - 1]) + (mask.data()[n - 1] ? 1 : 0);
  result.report += dev.host_sync_report();
  result.num_true = total_true;
  ASCAN_CHECK(out.size() >= total_true, "compress: output tensor too small");

  const int nb = (opt.blocks > 0 ? opt.blocks : dev.config().num_ai_cores) *
                 dev.config().vec_per_core;
  constexpr std::size_t kChunk = 16384;
  const std::size_t chunks = num_tiles(n, kChunk);

  result.report += launch(
      dev,
      {.block_dim = nb, .mode = LaunchMode::VectorOnly, .name = "compress",
       .outputs = {guard_output(out)}},
      [&, n, chunks, nb](KernelContext& ctx) {
        TPipe pipe(ctx);
        TBuf kb(ctx, TPosition::VECIN), mb(ctx, TPosition::VECIN),
            kg(ctx, TPosition::VECOUT), ob(ctx, TPosition::VECIN);
        pipe.InitBuffer(kb, kChunk * sizeof(half));
        pipe.InitBuffer(mb, kChunk);
        pipe.InitBuffer(kg, kChunk * sizeof(half));
        pipe.InitBuffer(ob, 64);
        auto x_ub = kb.Get<half>();
        auto mask_ub = mb.Get<std::int8_t>();
        auto gath = kg.Get<half>();
        auto off_ub = ob.Get<std::int32_t>();

        const BlockShare share = block_share(chunks, nb, ctx.GetBlockIdx());
        for (std::size_t c = share.begin; c < share.begin + share.count; ++c) {
          const TileRange r = tile_range(c, n, kChunk);
          DataCopy(ctx, off_ub, off_gm.sub(r.begin, 1), 1);
          const std::size_t base =
              static_cast<std::size_t>(GetValue(ctx, off_ub, 0));
          DataCopy(ctx, x_ub, x.sub(r.begin, r.len), r.len);
          DataCopy(ctx, mask_ub, mask.sub(r.begin, r.len), r.len);
          const std::size_t nt = GatherMask(ctx, gath, x_ub, mask_ub, r.len);
          if (nt > 0) DataCopy(ctx, out.sub(base, nt), gath, nt);
        }
      });
  return result;
}

SplitReport masked_select_baseline(Device& dev, GlobalTensor<half> x,
                                   GlobalTensor<std::int8_t> mask,
                                   GlobalTensor<half> out, std::size_t n) {
  ASCAN_CHECK(x.size() >= n && mask.size() >= n,
              "masked_select: tensors too small");
  SplitReport result;
  if (n == 0) {
    result.report = empty_launch(dev);
    return result;
  }
  constexpr std::size_t kChunk = 8192;
  const std::size_t chunks = num_tiles(n, kChunk);
  std::size_t total = 0;
  result.report += launch(
      dev,
      {.block_dim = 1, .mode = LaunchMode::VectorOnly,
       .name = "masked_select_baseline"},
      [&, n, chunks](KernelContext& ctx) {
        TPipe pipe(ctx);
        TBuf kb(ctx, TPosition::VECIN), mb(ctx, TPosition::VECIN),
            kg(ctx, TPosition::VECOUT);
        pipe.InitBuffer(kb, kChunk * sizeof(half));
        pipe.InitBuffer(mb, kChunk);
        pipe.InitBuffer(kg, kChunk * sizeof(half));
        auto x_ub = kb.Get<half>();
        auto mask_ub = mb.Get<std::int8_t>();
        auto gath = kg.Get<half>();
        for (std::size_t c = 0; c < chunks; ++c) {
          const TileRange r = tile_range(c, n, kChunk);
          DataCopy(ctx, x_ub, x.sub(r.begin, r.len), r.len);
          DataCopy(ctx, mask_ub, mask.sub(r.begin, r.len), r.len);
          const std::size_t cnt =
              ScalarCompact(ctx, gath, x_ub, mask_ub, r.len);
          ASCAN_CHECK(out.size() >= total + cnt,
                      "masked_select: output tensor too small");
          if (cnt > 0) DataCopy(ctx, out.sub(total, cnt), gath, cnt);
          total += cnt;
        }
      });
  result.num_true = total;
  return result;
}

}  // namespace ascend::kernels
