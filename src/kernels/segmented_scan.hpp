// Segmented inclusive scan — the classic scan-vector primitive of Blelloch
// [6, 7] (the paper's §2.4 umbrella of scan applications): given values x
// and a 0/1 flag array marking segment starts, compute the prefix sums
// restarting at every flagged position.
//
// Multi-core structure mirrors MCScan: phase I computes each sub-chunk's
// aggregate under the segmented-sum semigroup
//     (has_start, tail) ∘ (has_start', tail') =
//         (has_start | has_start', has_start' ? tail' : tail + tail')
// on the vector cores; after SyncAll, phase II folds the predecessors'
// aggregates into a carry and rebuilds the per-element result in the UB
// from existing primitives only: CumSum over values and flags, GatherMask
// to collect per-segment bases, and Gather to broadcast them back.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/report.hpp"

namespace ascend::kernels {

struct SegmentedScanOptions {
  int blocks = 0;  ///< AI cores (0 = all); vector cores do the work
};

/// y[i] = sum of x[j] for j in (last flagged position <= i) .. i.
/// Position 0 implicitly starts a segment. fp16 values, fp32 output.
sim::Report segmented_scan(acc::Device& dev, acc::GlobalTensor<half> x,
                           acc::GlobalTensor<std::int8_t> flags,
                           acc::GlobalTensor<float> y, std::size_t n,
                           const SegmentedScanOptions& opt = {});

}  // namespace ascend::kernels
