#include "kernels/mcscan.hpp"

#include "kernels/common.hpp"

namespace ascend::kernels {

using namespace acc;

namespace {

/// Sub-chunks of phase-I vector reduction / phase-II propagation: each
/// block's tile range is split between its two AIV cores, so the r array
/// has blocks * vec_per_core entries (the 2:1 ratio of §4.2 / §4.3).
struct SubChunk {
  std::size_t tile_begin;
  std::size_t tile_count;
};

SubChunk subchunk_of(std::size_t tiles, int blocks, int vec_per_core, int b,
                     int v) {
  const BlockShare blk = block_share(tiles, blocks, b);
  const BlockShare sub =
      block_share(blk.count, vec_per_core, v);
  return {blk.begin + sub.begin, sub.count};
}

}  // namespace

template <typename In, typename Out>
sim::Report mcscan(Device& dev, GlobalTensor<In> x, GlobalTensor<Out> y,
                   std::size_t n, const McScanOptions& opt) {
  static_assert(std::is_same_v<Out, cube_accum_t<In>>,
                "MCScan output type must be the cube accumulator type");
  const std::size_t s = opt.s;
  ASCAN_CHECK(valid_tile_size(s), "mcscan: invalid tile size " << s);
  ASCAN_CHECK(x.size() >= n && y.size() >= n, "mcscan: tensors too small");
  if (n == 0) {
    sim::Report r;
    r.launches = 1;
    r.time_s = dev.config().launch_overhead_s;
    return r;
  }

  const sim::MachineConfig& cfg = dev.config();
  const int blocks = opt.blocks > 0 ? opt.blocks : cfg.num_ai_cores;
  const int vpc = cfg.vec_per_core;

  auto upper = dev.upload(make_upper_ones<In>(s));
  auto u_gm = upper.tensor();

  const std::size_t l = s * s;
  const std::size_t tiles = num_tiles(n, l);
  // Phase-I reductions and phase-II propagation work on UB-friendly
  // chunks (independent of the matmul tile so big s still fits the UB).
  const std::size_t kVecChunk = 8192;
  const std::size_t vtiles = num_tiles(n, kVecChunk);

  // Block-level (strictly: sub-chunk-level) reduction array r in GM.
  auto r_buf = dev.alloc<Out>(static_cast<std::size_t>(blocks * vpc), Out{});
  auto r_gm = r_buf.tensor();

  // Exclusive scans write shifted by one element (§4.3); the local scans
  // then need their own GM buffer, otherwise a vector core's shifted write
  // could overwrite the local-scan value of its neighbour's first tile
  // before the neighbour has read it.
  acc::GlobalBuffer<Out> scratch;
  if (opt.exclusive) scratch = dev.alloc<Out>(n);
  auto local_scans = opt.exclusive ? scratch.tensor() : y;

  auto rep = launch(
      dev,
      {.block_dim = blocks, .mode = LaunchMode::Mix, .name = "mcscan",
       .timeline = opt.timeline,
       .outputs = {guard_output(y), guard_output(r_gm)}},
      [&, n, s, l, tiles, vtiles, blocks, vpc](KernelContext& ctx) {
    const int b = ctx.GetBlockIdx();

    if (ctx.is_cube()) {
      // ---- Phase I, cube side: local s-row scans of this block's tiles.
      TPipe pipe(ctx);
      TBuf u_l1(ctx, TPosition::B1), u_l0(ctx, TPosition::B2);
      pipe.InitBuffer(u_l1, l * sizeof(In));
      pipe.InitBuffer(u_l0, l * sizeof(In));
      TQue a_l1(ctx, TPosition::A1), a_l0(ctx, TPosition::A2),
          c_out(ctx, TPosition::CO1);
      pipe.InitBuffer(a_l1, 3, l * sizeof(In));  // hide GM latency
      pipe.InitBuffer(a_l0, 2, l * sizeof(In));
      pipe.InitBuffer(c_out, 2, l * sizeof(Out));

      auto u_stage = u_l1.Get<In>();
      DataCopy(ctx, u_stage, u_gm, l);
      auto u_tile = u_l0.Get<In>();
      LoadData(ctx, u_tile, u_stage, l);

      const BlockShare share = block_share(tiles, blocks, b);
      for (std::size_t t = share.begin; t < share.begin + share.count; ++t) {
        const TileRange r = tile_range(t, n, l);
        auto stage = a_l1.AllocTensor<In>();
        if (r.len < l) InitConstValue(ctx, stage, In{}, l);
        DataCopy(ctx, stage, x.sub(r.begin, r.len), r.len);
        a_l1.EnQue(stage);

        auto st = a_l1.DeQue<In>();
        auto a_tile = a_l0.AllocTensor<In>();
        LoadData(ctx, a_tile, st, l);
        a_l1.FreeTensor(st);

        auto c_tile = c_out.AllocTensor<Out>();
        Mmad(ctx, c_tile, a_tile, u_tile, s, s, s, /*accumulate=*/false);
        a_l0.FreeTensor(a_tile);
        Fixpipe(ctx, local_scans.sub(r.begin, r.len), c_tile, r.len);
        c_out.FreeTensor(c_tile);
      }
      ctx.SyncAll();
      // Cube cores are idle in phase II.
    } else {
      const int v = ctx.GetSubBlockIdx();
      const int sub_idx = b * vpc + v;
      TPipe pipe(ctx);
      // Phase I buffers: input chunks + widened copy for the reduction.
      TQue in_q(ctx, TPosition::VECIN);
      pipe.InitBuffer(in_q, 3, kVecChunk * sizeof(In));  // hide GM latency
      TBuf wide_buf(ctx, TPosition::VECCALC), sum_buf(ctx, TPosition::VECCALC);
      pipe.InitBuffer(wide_buf, kVecChunk * sizeof(Out));
      pipe.InitBuffer(sum_buf, 64);
      // Phase II buffers: local-scan chunks of the Out type + the r array.
      TQue y_q(ctx, TPosition::VECOUT);
      pipe.InitBuffer(y_q, 3, kVecChunk * sizeof(Out));  // hide GM latency
      TBuf r_ub(ctx, TPosition::VECCALC);
      pipe.InitBuffer(r_ub, static_cast<std::size_t>(blocks * vpc) *
                                sizeof(Out));

      // ---- Phase I, vector side: recompute the sub-chunk reduction from
      // the *input* (lines 11-13) — in parallel with the cube's scans.
      const SubChunk sc = subchunk_of(vtiles, blocks, vpc, b, v);
      auto wide = wide_buf.Get<Out>();
      auto sum = sum_buf.Get<Out>();
      Out acc{};  // scalar register
      // Software pipelining: the next chunk's DataCopy is issued before the
      // current chunk is consumed, hiding the GM latency behind compute.
      auto fetch_in = [&](std::size_t t) {
        const TileRange r = tile_range(t, n, kVecChunk);
        auto chunk = in_q.AllocTensor<In>();
        DataCopy(ctx, chunk, x.sub(r.begin, r.len), r.len);
        in_q.EnQue(chunk);
        return r;
      };
      const std::size_t sc_end = sc.tile_begin + sc.tile_count;
      if (sc.tile_count > 0) fetch_in(sc.tile_begin);
      for (std::size_t t = sc.tile_begin; t < sc_end; ++t) {
        const TileRange r = tile_range(t, n, kVecChunk);
        if (t + 1 < sc_end) fetch_in(t + 1);
        auto ch = in_q.DeQue<In>();
        Cast(ctx, wide, ch, r.len);  // widen: f16->f32 / i8->i32
        in_q.FreeTensor(ch);
        ReduceSum(ctx, sum, wide, r.len);
        acc = acc + GetValue(ctx, sum, 0);
      }
      // Write this sub-chunk's reduction into r (line 13).
      SetValue(ctx, sum, 0, acc);
      DataCopy(ctx, r_gm.sub(static_cast<std::size_t>(sub_idx), 1), sum, 1);

      ctx.SyncAll();  // line 15

      // ---- Phase II: prefix the reductions, then propagate (lines 16-26).
      auto r_local = r_ub.Get<Out>();
      DataCopy(ctx, r_local, r_gm, static_cast<std::size_t>(blocks * vpc));
      Out base{};
      if (sub_idx > 0) {
        ReduceSum(ctx, sum, r_local, static_cast<std::size_t>(sub_idx));
        base = GetValue(ctx, sum, 0);
      }

      const bool excl = opt.exclusive;
      Out partial = base;
      auto fetch_y = [&](std::size_t t) {
        const TileRange r = tile_range(t, n, kVecChunk);
        auto tile = y_q.AllocTensor<Out>();
        DataCopy(ctx, tile, local_scans.sub(r.begin, r.len), r.len);
        y_q.EnQue(tile);
      };
      if (sc.tile_count > 0) fetch_y(sc.tile_begin);
      for (std::size_t t = sc.tile_begin; t < sc_end; ++t) {
        const TileRange r = tile_range(t, n, kVecChunk);
        if (t + 1 < sc_end) fetch_y(t + 1);
        auto tile = y_q.DeQue<Out>();
        for (std::size_t off = 0; off < r.len; off += s) {
          const std::size_t len = std::min(s, r.len - off);
          auto row = tile.sub(off, len);
          Adds(ctx, row, row, partial, len);
          partial = GetValue(ctx, row, len - 1);
        }
        if (!excl) {
          DataCopy(ctx, y.sub(r.begin, r.len), tile, r.len);
        } else {
          // Exclusive scan: write shifted one element right, dropping the
          // globally last value (§4.3).
          const std::size_t end = r.begin + r.len;
          const std::size_t wlen = end >= n ? r.len - 1 : r.len;
          if (wlen > 0) DataCopy(ctx, y.sub(r.begin + 1, wlen), tile, wlen);
        }
        y_q.FreeTensor(tile);
      }
      if (excl && b == 0 && v == 0) {
        // A single block writes the leading zero (§4.3).
        SetValue(ctx, sum, 0, Out{});
        DataCopy(ctx, y.sub(0, 1), sum, 1);
      }
    }
  });
  return rep;
}

template sim::Report mcscan<half, float>(Device&, GlobalTensor<half>,
                                         GlobalTensor<float>, std::size_t,
                                         const McScanOptions&);
template sim::Report mcscan<std::int8_t, std::int32_t>(
    Device&, GlobalTensor<std::int8_t>, GlobalTensor<std::int32_t>,
    std::size_t, const McScanOptions&);

}  // namespace ascend::kernels
