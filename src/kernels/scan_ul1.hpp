// ScanUL1 (Algorithm 2): single-cube-core scan via the matrix identity
//
//   scan(z) = A_s @ U_s + L_s^- @ A_s @ 1_s        (Equation 1, from [12])
//
// evaluated per l = s^2 tile as C1 = A @ 1_s; C2 = A @ U_s;
// C2 += L^- @ C1 (using the cube accumulation buffer). The whole l-tile is
// then corrected with a single vector add of the running partial — one
// scalar read-back per 16K elements instead of ScanU's one per 128, which
// is where its ~2x advantage over ScanU comes from.
#pragma once

#include <cstddef>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/report.hpp"

namespace ascend::kernels {

/// Inclusive scan of x[0..n) into y[0..n) using one AI core.
sim::Report scan_ul1(acc::Device& dev, acc::GlobalTensor<half> x,
                     acc::GlobalTensor<half> y, std::size_t n,
                     std::size_t s = 128);

}  // namespace ascend::kernels
