// ScanU (Algorithm 1): single-cube-core scan.
//
// The cube unit computes s consecutive local scans of tiles of size s with
// one matrix multiplication per l = s^2 tile (A_s @ U_s computes the row
// scans of the row-major tile view), writes the result to GM, and a single
// vector core completes the prefix sum by adding the running partial to
// each s-row and reading the row's last value back into a scalar register
// (the serial dependency that bounds this kernel).
#pragma once

#include <cstddef>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/report.hpp"

namespace ascend::kernels {

/// Inclusive scan of x[0..n) into y[0..n) using one AI core (1 cube + 1
/// vector sub-core). `s` is the matrix tile edge (16/32/64/128).
sim::Report scan_u(acc::Device& dev, acc::GlobalTensor<half> x,
                   acc::GlobalTensor<half> y, std::size_t n,
                   std::size_t s = 128);

}  // namespace ascend::kernels
