// MCScan (Algorithm 3): the paper's multi-core scan for large 1-D arrays.
//
// Phase I (all cube and vector cores in parallel, the novel *partial
// recomputation* strategy): each block's cube core computes the local
// s-row scans of its tiles (A @ U_s) and writes them to GM, while — at the
// same time, re-reading the same input — its vector cores compute the
// block-level reductions into the r array. Phase II (after SyncAll): every
// vector core loads r, prefix-sums the entries before its share, and
// propagates the partial into the local scans with the s-row scalar chain.
//
// Data types follow the cube unit: float16 inputs accumulate and emit
// float32; int8 inputs emit int32 (the variant split/compress rely on,
// §4.3 "exclusive scan and int8 support").
#pragma once

#include <cstddef>
#include <cstdint>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/report.hpp"
#include "sim/timeline.hpp"

namespace ascend::kernels {

struct McScanOptions {
  std::size_t s = 128;     ///< matrix tile edge (16/32/64/128)
  int blocks = 0;          ///< AI cores to use; 0 = all
  bool exclusive = false;  ///< shift-by-one exclusive scan (§4.3)
  /// Optional schedule capture for chrome://tracing export.
  sim::Timeline* timeline = nullptr;
};

/// Multi-core inclusive (or exclusive) scan of x[0..n) into y[0..n).
/// In = half with Out = float, or In = int8_t with Out = int32_t.
template <typename In, typename Out>
sim::Report mcscan(acc::Device& dev, acc::GlobalTensor<In> x,
                   acc::GlobalTensor<Out> y, std::size_t n,
                   const McScanOptions& opt = {});

extern template sim::Report mcscan<half, float>(acc::Device&,
                                                acc::GlobalTensor<half>,
                                                acc::GlobalTensor<float>,
                                                std::size_t,
                                                const McScanOptions&);
extern template sim::Report mcscan<std::int8_t, std::int32_t>(
    acc::Device&, acc::GlobalTensor<std::int8_t>,
    acc::GlobalTensor<std::int32_t>, std::size_t, const McScanOptions&);

}  // namespace ascend::kernels
