#include "kernels/reduce.hpp"

#include "kernels/common.hpp"

namespace ascend::kernels {

using namespace acc;

namespace {
sim::Report empty_launch(Device& dev) {
  sim::Report r;
  r.launches = 1;
  r.time_s = dev.config().launch_overhead_s;
  return r;
}
}  // namespace

ReduceResult reduce_cube(Device& dev, GlobalTensor<half> x, std::size_t n,
                         const ReduceOptions& opt) {
  const std::size_t s = opt.s;
  ASCAN_CHECK(valid_tile_size(s), "reduce_cube: invalid tile size " << s);
  ASCAN_CHECK(x.size() >= n, "reduce_cube: tensor too small");
  ReduceResult result;
  if (n == 0) {
    result.report = empty_launch(dev);
    return result;
  }

  const sim::MachineConfig& cfg = dev.config();
  const int blocks = opt.blocks > 0 ? opt.blocks : cfg.num_ai_cores;
  const std::size_t l = s * s;
  const std::size_t tiles = num_tiles(n, l);
  const auto active =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(blocks), tiles));

  auto ones = dev.upload(make_all_ones<half>(s));
  auto ones_gm = ones.tensor();
  // Per-block partial sums: each block drains its whole accumulator tile
  // (every entry of column j equals the row sum, so the grand total is the
  // tile sum divided by s — exact for power-of-two s).
  auto partials = dev.alloc<float>(static_cast<std::size_t>(active) * l, 0.0f);
  auto part_gm = partials.tensor();
  // Stage-2 per-block partials and the final result.
  auto stage2 = dev.alloc<float>(static_cast<std::size_t>(active), 0.0f);
  auto st2_gm = stage2.tensor();
  auto out = dev.alloc<float>(1, 0.0f);
  auto out_gm = out.tensor();

  result.report = launch(
      dev,
      {.block_dim = active, .mode = LaunchMode::Mix, .name = "reduce_cube"},
      [&, n, s, l, tiles, active](KernelContext& ctx) {
        const int b = ctx.GetBlockIdx();
        if (ctx.is_cube()) {
          TPipe pipe(ctx);
          TBuf ones_l1(ctx, TPosition::B1), ones_l0(ctx, TPosition::B2),
              acc_l0(ctx, TPosition::CO1);
          pipe.InitBuffer(ones_l1, l * sizeof(half));
          pipe.InitBuffer(ones_l0, l * sizeof(half));
          pipe.InitBuffer(acc_l0, l * sizeof(float));
          TQue a_l1(ctx, TPosition::A1), a_l0(ctx, TPosition::A2);
          pipe.InitBuffer(a_l1, 3, l * sizeof(half));
          pipe.InitBuffer(a_l0, 2, l * sizeof(half));

          auto ones_stage = ones_l1.Get<half>();
          DataCopy(ctx, ones_stage, ones_gm, l);
          auto ones_tile = ones_l0.Get<half>();
          LoadData(ctx, ones_tile, ones_stage, l);
          auto acc = acc_l0.Get<float>();

          const BlockShare share = block_share(tiles, active, b);
          bool first = true;
          for (std::size_t t = share.begin; t < share.begin + share.count;
               ++t) {
            const TileRange r = tile_range(t, n, l);
            auto stage = a_l1.AllocTensor<half>();
            if (r.len < l) InitConstValue(ctx, stage, half(0.0f), l);
            DataCopy(ctx, stage, x.sub(r.begin, r.len), r.len);
            a_l1.EnQue(stage);
            auto st = a_l1.DeQue<half>();
            auto a_tile = a_l0.AllocTensor<half>();
            LoadData(ctx, a_tile, st, l);
            a_l1.FreeTensor(st);
            // The whole share accumulates into one L0C tile.
            Mmad(ctx, acc, a_tile, ones_tile, s, s, s, /*accumulate=*/!first);
            first = false;
            a_l0.FreeTensor(a_tile);
          }
          if (share.count > 0) {
            // Drain the whole accumulator tile: row i repeats its row sum
            // in every column, so the tile total is s * (block partial).
            Fixpipe(ctx, part_gm.sub(static_cast<std::size_t>(b) * l, l),
                    acc, l);
          }
          ctx.SyncAll();
          ctx.SyncAll();  // stage-2 barrier (vector folds)
        } else if (ctx.GetSubBlockIdx() == 0) {
          TPipe pipe(ctx);
          TBuf pb(ctx, TPosition::VECIN), sb(ctx, TPosition::VECCALC);
          constexpr std::size_t kRed = 8192;
          pipe.InitBuffer(pb, kRed * sizeof(float));
          pipe.InitBuffer(sb, 64);
          ctx.SyncAll();
          // Each block folds its own accumulator tile in parallel.
          auto parts = pb.Get<float>();
          auto sum = sb.Get<float>();
          float acc2 = 0.0f;
          for (std::size_t off = 0; off < l; off += kRed) {
            const std::size_t len = std::min(kRed, l - off);
            DataCopy(ctx, parts,
                     part_gm.sub(static_cast<std::size_t>(b) * l + off, len),
                     len);
            ReduceSum(ctx, sum, parts, len);
            acc2 += GetValue(ctx, sum, 0);
          }
          // Every row sum is repeated s times across the columns.
          SetValue(ctx, sum, 0, acc2 / static_cast<float>(s));
          DataCopy(ctx, st2_gm.sub(static_cast<std::size_t>(b), 1), sum, 1);
          ctx.SyncAll();
          if (b == 0) {
            DataCopy(ctx, parts, st2_gm, static_cast<std::size_t>(active));
            ReduceSum(ctx, sum, parts, static_cast<std::size_t>(active));
            DataCopy(ctx, out_gm, sum, 1);
          }
        } else {
          ctx.SyncAll();
          ctx.SyncAll();
        }
      });
  result.value = out[0];
  result.report += dev.host_sync_report();
  return result;
}

ReduceResult reduce_vector(Device& dev, GlobalTensor<half> x, std::size_t n,
                           int blocks) {
  ASCAN_CHECK(x.size() >= n, "reduce_vector: tensor too small");
  ReduceResult result;
  if (n == 0) {
    result.report = empty_launch(dev);
    return result;
  }
  const int nb = (blocks > 0 ? blocks : dev.config().num_ai_cores) *
                 dev.config().vec_per_core;
  constexpr std::size_t kChunk = 8192;
  const std::size_t chunks = num_tiles(n, kChunk);
  const auto active = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(nb), chunks));
  auto partials = dev.alloc<float>(static_cast<std::size_t>(active), 0.0f);
  auto part_gm = partials.tensor();

  result.report = launch(
      dev,
      {.block_dim = active, .mode = LaunchMode::VectorOnly,
       .name = "reduce_vector"},
      [&, n, chunks](KernelContext& ctx) {
        TPipe pipe(ctx);
        TQue in_q(ctx, TPosition::VECIN);
        pipe.InitBuffer(in_q, 3, kChunk * sizeof(half));
        TBuf wb(ctx, TPosition::VECCALC), sb(ctx, TPosition::VECCALC);
        pipe.InitBuffer(wb, kChunk * sizeof(float));
        pipe.InitBuffer(sb, 64);
        auto wide = wb.Get<float>();
        auto sum = sb.Get<float>();
        const BlockShare share =
            block_share(chunks, ctx.GetBlockDim(), ctx.GetBlockIdx());
        auto fetch = [&](std::size_t c) {
          const TileRange r = tile_range(c, n, kChunk);
          auto t = in_q.AllocTensor<half>();
          DataCopy(ctx, t, x.sub(r.begin, r.len), r.len);
          in_q.EnQue(t);
        };
        float acc = 0.0f;
        const std::size_t end = share.begin + share.count;
        if (share.count > 0) fetch(share.begin);
        for (std::size_t c = share.begin; c < end; ++c) {
          const TileRange r = tile_range(c, n, kChunk);
          if (c + 1 < end) fetch(c + 1);
          auto t = in_q.DeQue<half>();
          Cast(ctx, wide, t, r.len);
          in_q.FreeTensor(t);
          ReduceSum(ctx, sum, wide, r.len);
          acc += GetValue(ctx, sum, 0);
        }
        SetValue(ctx, sum, 0, acc);
        DataCopy(ctx,
                 part_gm.sub(static_cast<std::size_t>(ctx.GetBlockIdx()), 1),
                 sum, 1);
      });

  double total = 0.0;
  for (int b = 0; b < active; ++b) {
    total += partials[static_cast<std::size_t>(b)];
  }
  result.value = static_cast<float>(total);
  result.report += dev.host_sync_report();
  return result;
}

}  // namespace ascend::kernels
