#include "kernels/scan_ul1.hpp"

#include "kernels/common.hpp"

namespace ascend::kernels {

using namespace acc;

sim::Report scan_ul1(Device& dev, GlobalTensor<half> x, GlobalTensor<half> y,
                     std::size_t n, std::size_t s) {
  ASCAN_CHECK(valid_tile_size(s), "scan_ul1: invalid tile size " << s);
  ASCAN_CHECK(x.size() >= n && y.size() >= n, "scan_ul1: tensors too small");
  if (n == 0) {
    sim::Report r;
    r.launches = 1;
    r.time_s = dev.config().launch_overhead_s;
    return r;
  }

  auto consts = ScanConstants<half>::make(dev, s);
  auto u_gm = consts.upper.tensor();
  auto lm_gm = consts.strict_lower.tensor();
  auto ones_gm = consts.ones.tensor();

  const std::size_t l = s * s;
  const std::size_t tiles = num_tiles(n, l);

  return launch(
      dev,
      {.block_dim = 1, .mode = LaunchMode::Mix, .name = "scan_ul1",
       .outputs = {guard_output(y)}},
      [&, n, s, l, tiles](KernelContext& ctx) {
    auto& tile_ready = ctx.shared().flags("tile_ready", tiles);

    if (ctx.is_cube()) {
      TPipe pipe(ctx);
      // L1 staging: the three constant matrices (loaded once, Algorithm 2
      // line 4), the streamed A tile, and the C1 round-trip buffer.
      TBuf u_l1(ctx, TPosition::B1), lm_l1(ctx, TPosition::B1),
          ones_l1(ctx, TPosition::B1), c1_l1(ctx, TPosition::B1);
      for (auto* b : {&u_l1, &lm_l1, &ones_l1, &c1_l1}) {
        pipe.InitBuffer(*b, l * sizeof(half));
      }
      TQue a_l1(ctx, TPosition::A1);
      pipe.InitBuffer(a_l1, 2, l * sizeof(half));
      // L0A holds A then L^-; L0B cycles 1_s, U_s, C1. L0C holds C1 and C2.
      TQue a_l0(ctx, TPosition::A2), b_l0(ctx, TPosition::B2),
          c_l0(ctx, TPosition::CO1);
      pipe.InitBuffer(a_l0, 2, l * sizeof(half));
      pipe.InitBuffer(b_l0, 2, l * sizeof(half));
      pipe.InitBuffer(c_l0, 2, l * sizeof(float));

      auto u_stage = u_l1.Get<half>();
      auto lm_stage = lm_l1.Get<half>();
      auto ones_stage = ones_l1.Get<half>();
      auto c1_stage = c1_l1.Get<half>();
      DataCopy(ctx, u_stage, u_gm, l);
      DataCopy(ctx, lm_stage, lm_gm, l);
      DataCopy(ctx, ones_stage, ones_gm, l);

      for (std::size_t t = 0; t < tiles; ++t) {
        const TileRange r = tile_range(t, n, l);
        auto stage = a_l1.AllocTensor<half>();
        if (r.len < l) InitConstValue(ctx, stage, half(0.0f), l);
        DataCopy(ctx, stage, x.sub(r.begin, r.len), r.len);
        a_l1.EnQue(stage);

        auto st = a_l1.DeQue<half>();
        auto a_tile = a_l0.AllocTensor<half>();
        LoadData(ctx, a_tile, st, l);  // A stays in L0A for two Mmads
        a_l1.FreeTensor(st);

        // C1 = A @ 1_s  (lines 6-7; no accumulation, inputs kept)
        auto b_tile = b_l0.AllocTensor<half>();
        LoadData(ctx, b_tile, ones_stage, l);
        auto c1 = c_l0.AllocTensor<float>();
        Mmad(ctx, c1, a_tile, b_tile, s, s, s, /*accumulate=*/false);
        b_l0.FreeTensor(b_tile);

        // Copy C1 from L0C to L1 (line 8), quantised to f16 for reuse as a
        // matmul operand.
        FixpipeLocal(ctx, c1_stage, c1, l);
        c_l0.FreeTensor(c1);

        // C2 = A @ U_s  (lines 9-10)
        auto u_tile = b_l0.AllocTensor<half>();
        LoadData(ctx, u_tile, u_stage, l);
        auto c2 = c_l0.AllocTensor<float>();
        Mmad(ctx, c2, a_tile, u_tile, s, s, s, /*accumulate=*/false);
        b_l0.FreeTensor(u_tile);
        a_l0.FreeTensor(a_tile);

        // C2 += L^- @ C1  (lines 11-12; accumulation on, frees all inputs)
        auto lm_tile = a_l0.AllocTensor<half>();
        LoadData(ctx, lm_tile, lm_stage, l);
        auto c1_tile = b_l0.AllocTensor<half>();
        LoadData(ctx, c1_tile, c1_stage, l);
        Mmad(ctx, c2, lm_tile, c1_tile, s, s, s, /*accumulate=*/true);
        a_l0.FreeTensor(lm_tile);
        b_l0.FreeTensor(c1_tile);

        Fixpipe(ctx, y.sub(r.begin, r.len), c2, r.len);  // line 13
        c_l0.FreeTensor(c2);
        tile_ready.set(ctx, t);
      }
    } else if (ctx.GetSubBlockIdx() == 0) {
      TPipe pipe(ctx);
      TQue ub(ctx, TPosition::VECIN);
      pipe.InitBuffer(ub, 2, l * sizeof(half));

      half partial(0.0f);
      auto fetch = [&](std::size_t t) {
        const TileRange r = tile_range(t, n, l);
        tile_ready.wait(ctx, t);
        auto tile = ub.AllocTensor<half>();
        DataCopy(ctx, tile, y.sub(r.begin, r.len), r.len);
        ub.EnQue(tile);
      };
      if (tiles > 0) fetch(0);
      for (std::size_t t = 0; t < tiles; ++t) {
        const TileRange r = tile_range(t, n, l);
        if (t + 1 < tiles) fetch(t + 1);
        auto tile = ub.DeQue<half>();
        Adds(ctx, tile, tile, partial, r.len);     // line 16: whole tile
        partial = GetValue(ctx, tile, r.len - 1);  // line 17
        DataCopy(ctx, y.sub(r.begin, r.len), tile, r.len);
        ub.FreeTensor(tile);
      }
    }
  });
}

}  // namespace ascend::kernels
