// Top-k selection (§5): quickselect (partial quicksort) built on SplitInd,
// plus the sort-based baseline it is compared against.
//
// The host drives the selection loop: pick a pivot (scalar read-back of a
// few samples), build the (key > pivot) mask on the vector cores, SplitInd,
// then recurse into whichever side still straddles the k boundary.
// Elements proven to be in the top k are banked along the way; a final
// descending radix sort orders the k winners (the torch.topk contract).
// The paper reports this does *not* beat the baseline for k <= 4096 — our
// benches reproduce that honestly.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/report.hpp"

namespace ascend::kernels {

struct TopKOptions {
  std::size_t s = 128;
  int blocks = 0;
};

/// Largest k of x[0..n), descending, with original indices.
sim::Report topk_f16(acc::Device& dev, acc::GlobalTensor<half> x,
                     acc::GlobalTensor<half> values_out,
                     acc::GlobalTensor<std::int32_t> idx_out, std::size_t n,
                     std::size_t k, const TopKOptions& opt = {});

/// Baseline top-k: full baseline sort, then truncate to k.
sim::Report topk_baseline_f16(acc::Device& dev, acc::GlobalTensor<half> x,
                              acc::GlobalTensor<half> values_out,
                              acc::GlobalTensor<std::int32_t> idx_out,
                              std::size_t n, std::size_t k);

}  // namespace ascend::kernels
