#include "core/ascan.hpp"

#include "kernels/batched_scan.hpp"
#include "kernels/copy_kernel.hpp"
#include "kernels/mcscan.hpp"
#include "kernels/radix_sort.hpp"
#include "kernels/reduce.hpp"
#include "kernels/sampling.hpp"
#include "kernels/scan_u.hpp"
#include "kernels/segmented_scan.hpp"
#include "kernels/scan_ul1.hpp"
#include "kernels/sort_baseline.hpp"
#include "kernels/split.hpp"
#include "kernels/topk.hpp"
#include "kernels/vec_cumsum.hpp"

namespace ascan {

namespace k = ascend::kernels;
using ascend::Error;

Session::Session(MachineConfig cfg) : dev_(cfg) {}

// ---------------------------------------------------------------------------
// Resilient execution: bounded retries with simulated backoff, then core
// exclusion (see RetryPolicy in the header for the state machine).

Report Session::run_resilient(const char* what,
                              const std::function<Report()>& attempt) {
  Report rep = resilient(what, attempt);
  total_ += rep;
  return rep;
}

Report Session::resilient(const char* what,
                          const std::function<Report()>& attempt) {
  (void)what;
  last_stats_ = RetryStats{};
  // Whatever happens, fold this call's stats into the lifetime totals —
  // the per-device degradation view of a multi-Session serving cluster.
  const auto accumulate = [this](bool failed) {
    cumulative_stats_.calls++;
    if (failed) cumulative_stats_.failures++;
    cumulative_stats_.attempts += last_stats_.attempts;
    cumulative_stats_.retries += last_stats_.retries;
    cumulative_stats_.excluded_cores += last_stats_.excluded_cores;
    cumulative_stats_.backoff_s += last_stats_.backoff_s;
  };
  try {
    Report r = resilient_loop(attempt);
    accumulate(false);
    return r;
  } catch (...) {
    accumulate(true);
    throw;
  }
}

Report Session::resilient_loop(const std::function<Report()>& attempt) {
  Report penalty;  // simulated cost of failed attempts + backoff
  int attempts_at_level = 0;
  double backoff = retry_.backoff_s;
  // Deterministic anti-stampede jitter (see RetryPolicy::backoff_jitter):
  // a pure splitmix64 hash of (seed, call ordinal, retry ordinal), so the
  // same policy yields the same delays on every run and host executor.
  const auto jittered = [this](double b) {
    if (retry_.backoff_jitter <= 0) return b;
    const auto mix64 = [](std::uint64_t x) {
      x += 0x9e3779b97f4a7c15ull;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return x ^ (x >> 31);
    };
    std::uint64_t h = mix64(retry_.jitter_seed ^ 0x6a09e667f3bcc909ull);
    h = mix64(h ^ cumulative_stats_.calls);
    h = mix64(h ^ last_stats_.retries);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    return b * (1.0 + retry_.backoff_jitter * (2.0 * u - 1.0));
  };
  for (;;) {
    ++attempts_at_level;
    ++last_stats_.attempts;
    try {
      Report r = attempt();
      r += penalty;
      r.retries = last_stats_.retries;
      r.excluded_cores = last_stats_.excluded_cores;
      r.backoff_s = last_stats_.backoff_s;
      return r;
    } catch (const ascend::sim::FaultError& e) {
      penalty += e.attempt_report();
      last_stats_.last_fault = e.kind();
      if (e.retryable() && attempts_at_level < retry_.max_attempts) {
        ++last_stats_.retries;
        const double applied = jittered(backoff);
        penalty.time_s += applied;
        last_stats_.backoff_s += applied;
        backoff *= 2;
        continue;
      }
      // Retries exhausted (or the fault is not retryable on this core set,
      // e.g. an uncorrectable ECC page): degrade gracefully by taking the
      // core offline and relaunching with blocks-1.
      if (last_stats_.excluded_cores <
              static_cast<std::uint32_t>(retry_.max_core_exclusions) &&
          dev_.config().num_ai_cores > 1) {
        exclude_core();
        ++last_stats_.excluded_cores;
        ++last_stats_.retries;
        const double applied = jittered(backoff);
        penalty.time_s += applied;
        last_stats_.backoff_s += applied;
        backoff *= 2;
        attempts_at_level = 0;
        continue;
      }
      throw;  // out of options — the typed error reaches the caller
    }
  }
}

void Session::exclude_core() {
  MachineConfig cfg = dev_.config();
  ASCAN_ASSERT(cfg.num_ai_cores > 1, "cannot exclude the last AI core");
  cfg.num_ai_cores -= 1;
  // The injector (and its launch ordinal, which the deterministic fault
  // sequence is keyed on) survives the device swap.
  auto injector = dev_.fault_injector();
  dev_ = ascend::acc::Device(cfg);
  dev_.set_fault_injector(std::move(injector));
}

// ---------------------------------------------------------------------------
// Operators. Each validates its arguments (typed ascend::Error on misuse),
// then runs its kernel(s) under the resilient wrapper: the attempt lambda
// is re-invoked verbatim on retry, which is safe because kernels fully
// overwrite their outputs and never modify their inputs.

ValueResult<float> Session::cumsum(const std::vector<half>& x,
                                   const ScanOptions& opt) {
  ASCAN_CHECK(!x.empty(), "cumsum: empty input");
  ASCAN_CHECK(opt.algo == ScanAlgo::MCScan,
              "fp32-output cumsum is the MCScan path; use cumsum_f16 for "
              "the single-core algorithms");
  ASCAN_CHECK(opt.blocks <= config().num_ai_cores,
              "cumsum: " << opt.blocks << " blocks exceed "
                         << config().num_ai_cores << " online AI cores");
  auto in = dev_.upload(x);
  auto out = dev_.alloc<float>(x.size());
  ValueResult<float> r;
  r.report = resilient("cumsum", [&] {
    return k::mcscan<half, float>(
        dev_, in.tensor(), out.tensor(), x.size(),
        {.s = opt.tile, .blocks = opt.blocks, .exclusive = opt.exclusive});
  });
  r.values = std::move(out.host());
  total_ += r.report;
  return r;
}

ValueResult<half> Session::cumsum_f16(const std::vector<half>& x,
                                      const ScanOptions& opt) {
  ASCAN_CHECK(!x.empty(), "cumsum_f16: empty input");
  auto in = dev_.upload(x);
  auto out = dev_.alloc<half>(x.size());
  ValueResult<half> r;
  r.report = resilient("cumsum_f16", [&]() -> Report {
    switch (opt.algo) {
      case ScanAlgo::ScanU:
        ASCAN_CHECK(!opt.exclusive, "exclusive scan is MCScan-only (§4.3)");
        return k::scan_u(dev_, in.tensor(), out.tensor(), x.size(), opt.tile);
      case ScanAlgo::ScanUL1:
        ASCAN_CHECK(!opt.exclusive, "exclusive scan is MCScan-only (§4.3)");
        return k::scan_ul1(dev_, in.tensor(), out.tensor(), x.size(),
                           opt.tile);
      case ScanAlgo::VectorBaseline:
        ASCAN_CHECK(!opt.exclusive, "exclusive scan is MCScan-only (§4.3)");
        return k::vec_cumsum(dev_, in.tensor(), out.tensor(), x.size());
      case ScanAlgo::MCScan:
      default:
        throw Error("MCScan emits fp32; call cumsum() instead");
    }
  });
  r.values = std::move(out.host());
  total_ += r.report;
  return r;
}

ValueResult<std::int32_t> Session::cumsum_i8(const std::vector<std::int8_t>& x,
                                             const ScanOptions& opt) {
  ASCAN_CHECK(!x.empty(), "cumsum_i8: empty input");
  ASCAN_CHECK(opt.algo == ScanAlgo::MCScan,
              "int8 scans run on the MCScan path (§4.3)");
  auto in = dev_.upload(x);
  auto out = dev_.alloc<std::int32_t>(x.size());
  ValueResult<std::int32_t> r;
  r.report = resilient("cumsum_i8", [&] {
    return k::mcscan<std::int8_t, std::int32_t>(
        dev_, in.tensor(), out.tensor(), x.size(),
        {.s = opt.tile, .blocks = opt.blocks, .exclusive = opt.exclusive});
  });
  r.values = std::move(out.host());
  total_ += r.report;
  return r;
}

ValueResult<half> Session::cumsum_batched(const std::vector<half>& x,
                                          std::size_t batch, std::size_t len,
                                          std::size_t tile,
                                          bool use_ul1_schedule) {
  ASCAN_CHECK(!x.empty(), "cumsum_batched: empty input");
  ASCAN_CHECK(batch > 0, "cumsum_batched: batch must be > 0");
  ASCAN_CHECK(len > 0, "cumsum_batched: len must be > 0");
  ASCAN_CHECK(x.size() == batch * len, "cumsum_batched: shape mismatch");
  auto in = dev_.upload(x);
  auto out = dev_.alloc<half>(x.size());
  ValueResult<half> r;
  r.report = resilient("cumsum_batched", [&] {
    return use_ul1_schedule
               ? k::batched_scan_ul1(dev_, in.tensor(), out.tensor(), batch,
                                     len, {.s = tile})
               : k::batched_scan_u(dev_, in.tensor(), out.tensor(), batch,
                                   len, {.s = tile});
  });
  r.values = std::move(out.host());
  total_ += r.report;
  return r;
}

ValueResult<half> Session::clone(const std::vector<half>& x) {
  ASCAN_CHECK(!x.empty(), "clone: empty input");
  auto in = dev_.upload(x);
  auto out = dev_.alloc<half>(x.size());
  ValueResult<half> r;
  r.report = resilient("clone", [&] {
    return k::copy_kernel<half>(dev_, in.tensor(), out.tensor(), x.size());
  });
  r.values = std::move(out.host());
  total_ += r.report;
  return r;
}

SplitResult Session::split(const std::vector<half>& x,
                           const std::vector<std::int8_t>& mask,
                           std::size_t tile) {
  ASCAN_CHECK(!x.empty(), "split: empty input");
  ASCAN_CHECK(x.size() == mask.size(), "split: mask length mismatch");
  auto in = dev_.upload(x);
  auto m = dev_.upload(mask);
  auto vals = dev_.alloc<half>(x.size());
  auto idx = dev_.alloc<std::int32_t>(x.size());
  SplitResult r;
  r.report = resilient("split", [&] {
    auto sr = k::split_ind<half>(dev_, in.tensor(), {}, m.tensor(),
                                 vals.tensor(), idx.tensor(), x.size(),
                                 {.s = tile});
    r.num_true = sr.num_true;
    return sr.report;
  });
  r.values = std::move(vals.host());
  r.indices = std::move(idx.host());
  total_ += r.report;
  return r;
}

MaskedSelectResult Session::masked_select(const std::vector<half>& x,
                                          const std::vector<std::int8_t>& mask,
                                          std::size_t tile, bool baseline) {
  ASCAN_CHECK(!x.empty(), "masked_select: empty input");
  ASCAN_CHECK(x.size() == mask.size(), "masked_select: mask length mismatch");
  auto in = dev_.upload(x);
  auto m = dev_.upload(mask);
  auto out = dev_.alloc<half>(x.size());
  MaskedSelectResult r;
  std::size_t num_true = 0;
  r.report = resilient("masked_select", [&] {
    const auto sr =
        baseline ? k::masked_select_baseline(dev_, in.tensor(), m.tensor(),
                                             out.tensor(), x.size())
                 : k::compress(dev_, in.tensor(), m.tensor(), out.tensor(),
                               x.size(), {.s = tile});
    num_true = sr.num_true;
    return sr.report;
  });
  out.host().resize(num_true);
  r.values = std::move(out.host());
  total_ += r.report;
  return r;
}

SortResult Session::sort(const std::vector<half>& keys, bool descending,
                         SortAlgo algo, std::size_t tile) {
  ASCAN_CHECK(!keys.empty(), "sort: empty input");
  auto in = dev_.upload(keys);
  auto vals = dev_.alloc<half>(keys.size());
  auto idx = dev_.alloc<std::int32_t>(keys.size());
  SortResult r;
  r.report = resilient("sort", [&] {
    return algo == SortAlgo::Radix
               ? k::radix_sort_f16(dev_, in.tensor(), vals.tensor(),
                                   idx.tensor(), keys.size(),
                                   {.s = tile, .descending = descending})
               : k::sort_baseline_f16(dev_, in.tensor(), vals.tensor(),
                                      idx.tensor(), keys.size(), descending);
  });
  r.values = std::move(vals.host());
  r.indices = std::move(idx.host());
  total_ += r.report;
  return r;
}

TopKResult Session::topk(const std::vector<half>& x, std::size_t k,
                         bool baseline, std::size_t tile) {
  ASCAN_CHECK(!x.empty(), "topk: empty input");
  ASCAN_CHECK(k > 0 && k <= x.size(), "topk: k=" << k << " out of range for "
                                                 << x.size() << " elements");
  auto in = dev_.upload(x);
  auto vals = dev_.alloc<half>(k);
  auto idx = dev_.alloc<std::int32_t>(k);
  TopKResult r;
  r.report = resilient("topk", [&] {
    return baseline
               ? k::topk_baseline_f16(dev_, in.tensor(), vals.tensor(),
                                      idx.tensor(), x.size(), k)
               : k::topk_f16(dev_, in.tensor(), vals.tensor(), idx.tensor(),
                             x.size(), k, {.s = tile});
  });
  r.values = std::move(vals.host());
  r.indices = std::move(idx.host());
  total_ += r.report;
  return r;
}

SampleResult Session::top_p_sample(const std::vector<half>& probs, double p,
                                   double u, bool baseline_ops,
                                   std::size_t tile) {
  ASCAN_CHECK(!probs.empty(), "top_p_sample: empty input");
  auto in = dev_.upload(probs);
  SampleResult r;
  r.report = resilient("top_p_sample", [&] {
    const auto tr = k::top_p_sample(dev_, in.tensor(), probs.size(), p, u,
                                    {.s = tile,
                                     .use_baseline_ops = baseline_ops});
    r.index = tr.token;
    r.nucleus = tr.nucleus;
    return tr.report;
  });
  total_ += r.report;
  return r;
}

SampleResult Session::multinomial(const std::vector<half>& weights, double u,
                                  std::size_t tile) {
  ASCAN_CHECK(!weights.empty(), "multinomial: empty input");
  auto in = dev_.upload(weights);
  SampleResult r;
  r.report = resilient("multinomial", [&] {
    const auto wr =
        k::weighted_sample(dev_, in.tensor(), weights.size(), u, {.s = tile});
    r.index = wr.index;
    return wr.report;
  });
  total_ += r.report;
  return r;
}

Session::BatchSampleResult Session::top_p_sample_batch(
    const std::vector<half>& probs, std::size_t batch, std::size_t vocab,
    double p, const std::vector<double>& u, std::size_t tile) {
  ASCAN_CHECK(!probs.empty(), "top_p_sample_batch: empty input");
  ASCAN_CHECK(batch > 0, "top_p_sample_batch: batch must be > 0");
  ASCAN_CHECK(vocab > 0, "top_p_sample_batch: vocab must be > 0");
  ASCAN_CHECK(probs.size() == batch * vocab,
              "top_p_sample_batch: shape mismatch");
  ASCAN_CHECK(u.size() == batch, "top_p_sample_batch: one variate per row");
  ASCAN_CHECK(p > 0.0 && p <= 1.0,
              "top_p_sample_batch: p=" << p << " outside (0, 1]");
  for (std::size_t b = 0; b < batch; ++b) {
    ASCAN_CHECK(u[b] >= 0.0 && u[b] < 1.0,
                "top_p_sample_batch: u[" << b << "]=" << u[b]
                                         << " outside [0, 1)");
  }
  BatchSampleResult r;
  auto in = dev_.upload(probs);
  r.report = resilient("top_p_sample_batch", [&] {
    Report rep;
    r.tokens.clear();
    r.tokens.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      const auto tr = k::top_p_sample(dev_, in.tensor().sub(b * vocab, vocab),
                                      vocab, p, u[b], {.s = tile});
      r.tokens.push_back(tr.token);
      rep += tr.report;
    }
    return rep;
  });
  total_ += r.report;
  return r;
}

ValueResult<float> Session::segmented_cumsum(
    const std::vector<half>& x, const std::vector<std::int8_t>& flags) {
  ASCAN_CHECK(!x.empty(), "segmented_cumsum: empty input");
  ASCAN_CHECK(x.size() == flags.size(), "segmented_cumsum: shape mismatch");
  auto in = dev_.upload(x);
  auto f = dev_.upload(flags);
  auto out = dev_.alloc<float>(x.size());
  ValueResult<float> r;
  r.report = resilient("segmented_cumsum", [&] {
    return k::segmented_scan(dev_, in.tensor(), f.tensor(), out.tensor(),
                             x.size(), {});
  });
  r.values = std::move(out.host());
  total_ += r.report;
  return r;
}

// ---------------------------------------------------------------------------
// Stepwise (tile-granular) launches. Each step() is its own resilient kernel
// launch over the same device, so the retry/degradation machinery and the
// launch-shape timing cache behave exactly as for monolithic calls; the step
// report is stamped with Report::steps = 1 before aggregation so both the
// per-stream aggregate and Session::total() count resumable slices.

Session::LaunchStream Session::cumsum_batched_begin(std::size_t tile,
                                                    bool use_ul1_schedule) {
  LaunchStream ls;
  ls.tile = tile;
  ls.ul1 = use_ul1_schedule;
  ls.open = true;
  return ls;
}

ValueResult<half> Session::cumsum_batched_step(
    LaunchStream& ls, const std::vector<half>& xs, std::size_t batch,
    std::size_t len, const std::vector<half>& carries) {
  ASCAN_CHECK(ls.open, "cumsum_batched_step: stream not open");
  ASCAN_CHECK(batch > 0, "cumsum_batched_step: batch must be > 0");
  ASCAN_CHECK(len > 0 && len <= ls.tile * ls.tile,
              "cumsum_batched_step: len=" << len << " exceeds the l-tile "
                                          << ls.tile * ls.tile);
  ASCAN_CHECK(xs.size() == batch * len, "cumsum_batched_step: shape mismatch");
  ASCAN_CHECK(carries.size() == batch,
              "cumsum_batched_step: one carry per row");
  auto in = dev_.upload(xs);
  auto out = dev_.alloc<half>(xs.size());
  ValueResult<half> r;
  r.report = resilient("cumsum_batched_step", [&] {
    return ls.ul1 ? k::batched_scan_ul1(dev_, in.tensor(), out.tensor(),
                                        batch, len, {.s = ls.tile})
                  : k::batched_scan_u(dev_, in.tensor(), out.tensor(), batch,
                                      len, {.s = ls.tile});
  });
  r.values = std::move(out.host());
  // Apply each row's carry-in host-side: one uniform add per element, exact
  // for integer-valued workloads (see the header's rounding note).
  for (std::size_t b = 0; b < batch; ++b) {
    const float c = static_cast<float>(carries[b]);
    if (c == 0.0f) continue;
    for (std::size_t j = 0; j < len; ++j) {
      half& v = r.values[b * len + j];
      v = half(static_cast<float>(v) + c);
    }
  }
  r.report.steps = 1;
  ls.report += r.report;
  ++ls.steps;
  total_ += r.report;
  return r;
}

Report Session::cumsum_batched_finish(LaunchStream& ls) {
  ASCAN_CHECK(ls.open, "cumsum_batched_finish: stream not open");
  ls.open = false;
  return ls.report;
}

Session::LaunchStream Session::segmented_cumsum_begin() {
  LaunchStream ls;
  ls.open = true;
  return ls;
}

ValueResult<float> Session::segmented_cumsum_step(
    LaunchStream& ls, const std::vector<half>& xs,
    const std::vector<std::int8_t>& flags,
    const std::vector<std::size_t>& row_len,
    const std::vector<float>& carries) {
  ASCAN_CHECK(ls.open, "segmented_cumsum_step: stream not open");
  ASCAN_CHECK(!xs.empty(), "segmented_cumsum_step: empty input");
  ASCAN_CHECK(xs.size() == flags.size(),
              "segmented_cumsum_step: shape mismatch");
  ASCAN_CHECK(!row_len.empty() && row_len.size() == carries.size(),
              "segmented_cumsum_step: one carry per row");
  std::size_t total = 0;
  for (std::size_t n : row_len) {
    ASCAN_CHECK(n > 0, "segmented_cumsum_step: empty row chunk");
    total += n;
  }
  ASCAN_CHECK(total == xs.size(),
              "segmented_cumsum_step: row lengths don't sum to input size");
  // Force a segment start at every row boundary so no carry crosses rows
  // (or steps) in-device; cross-step continuation is the host carry below.
  std::vector<std::int8_t> forced = flags;
  std::size_t off = 0;
  for (std::size_t n : row_len) {
    forced[off] = 1;
    off += n;
  }
  auto in = dev_.upload(xs);
  auto f = dev_.upload(forced);
  auto out = dev_.alloc<float>(xs.size());
  ValueResult<float> r;
  r.report = resilient("segmented_cumsum_step", [&] {
    return k::segmented_scan(dev_, in.tensor(), f.tensor(), out.tensor(),
                             xs.size(), {});
  });
  r.values = std::move(out.host());
  // Row i's carry-in applies to its leading elements, up to (not including)
  // the chunk's first real segment start.
  off = 0;
  for (std::size_t b = 0; b < row_len.size(); ++b) {
    if (carries[b] != 0.0f) {
      for (std::size_t j = 0; j < row_len[b]; ++j) {
        if (flags[off + j]) break;
        r.values[off + j] += carries[b];
      }
    }
    off += row_len[b];
  }
  r.report.steps = 1;
  ls.report += r.report;
  ++ls.steps;
  total_ += r.report;
  return r;
}

Report Session::segmented_cumsum_finish(LaunchStream& ls) {
  ASCAN_CHECK(ls.open, "segmented_cumsum_finish: stream not open");
  ls.open = false;
  return ls.report;
}

Session::LaunchStream Session::top_p_begin(double p, std::size_t tile) {
  ASCAN_CHECK(p > 0.0 && p <= 1.0, "top_p_begin: p=" << p << " outside (0, 1]");
  LaunchStream ls;
  ls.p = p;
  ls.tile = tile;
  ls.open = true;
  return ls;
}

SampleResult Session::top_p_step(LaunchStream& ls,
                                 const std::vector<half>& probs, double u) {
  ASCAN_CHECK(ls.open, "top_p_step: stream not open");
  ASCAN_CHECK(!probs.empty(), "top_p_step: empty input");
  ASCAN_CHECK(u >= 0.0 && u < 1.0, "top_p_step: u=" << u << " outside [0, 1)");
  auto in = dev_.upload(probs);
  SampleResult r;
  r.report = resilient("top_p_step", [&] {
    const auto tr = k::top_p_sample(dev_, in.tensor(), probs.size(), ls.p, u,
                                    {.s = ls.tile});
    r.index = tr.token;
    r.nucleus = tr.nucleus;
    return tr.report;
  });
  r.report.steps = 1;
  ls.report += r.report;
  ++ls.steps;
  total_ += r.report;
  return r;
}

Report Session::top_p_finish(LaunchStream& ls) {
  ASCAN_CHECK(ls.open, "top_p_finish: stream not open");
  ls.open = false;
  return ls.report;
}

ValueResult<float> Session::reduce(const std::vector<half>& x,
                                   bool use_cube) {
  ASCAN_CHECK(!x.empty(), "reduce: empty input");
  auto in = dev_.upload(x);
  ValueResult<float> r;
  float value = 0;
  r.report = resilient("reduce", [&] {
    const auto rr = use_cube ? k::reduce_cube(dev_, in.tensor(), x.size(), {})
                             : k::reduce_vector(dev_, in.tensor(), x.size());
    value = rr.value;
    return rr.report;
  });
  r.values = {value};
  total_ += r.report;
  return r;
}

}  // namespace ascan
