#include "core/ascan.hpp"

#include "kernels/batched_scan.hpp"
#include "kernels/copy_kernel.hpp"
#include "kernels/mcscan.hpp"
#include "kernels/radix_sort.hpp"
#include "kernels/reduce.hpp"
#include "kernels/sampling.hpp"
#include "kernels/scan_u.hpp"
#include "kernels/segmented_scan.hpp"
#include "kernels/scan_ul1.hpp"
#include "kernels/sort_baseline.hpp"
#include "kernels/split.hpp"
#include "kernels/topk.hpp"
#include "kernels/vec_cumsum.hpp"

namespace ascan {

namespace k = ascend::kernels;
using ascend::Error;

Session::Session(MachineConfig cfg) : dev_(cfg) {}

ValueResult<float> Session::cumsum(const std::vector<half>& x,
                                   const ScanOptions& opt) {
  ASCAN_CHECK(opt.algo == ScanAlgo::MCScan,
              "fp32-output cumsum is the MCScan path; use cumsum_f16 for "
              "the single-core algorithms");
  auto in = dev_.upload(x);
  auto out = dev_.alloc<float>(x.size());
  ValueResult<float> r;
  r.report = k::mcscan<half, float>(
      dev_, in.tensor(), out.tensor(), x.size(),
      {.s = opt.tile, .blocks = opt.blocks, .exclusive = opt.exclusive});
  r.values = std::move(out.host());
  total_ += r.report;
  return r;
}

ValueResult<half> Session::cumsum_f16(const std::vector<half>& x,
                                      const ScanOptions& opt) {
  auto in = dev_.upload(x);
  auto out = dev_.alloc<half>(x.size());
  ValueResult<half> r;
  switch (opt.algo) {
    case ScanAlgo::ScanU:
      ASCAN_CHECK(!opt.exclusive, "exclusive scan is MCScan-only (§4.3)");
      r.report = k::scan_u(dev_, in.tensor(), out.tensor(), x.size(),
                           opt.tile);
      break;
    case ScanAlgo::ScanUL1:
      ASCAN_CHECK(!opt.exclusive, "exclusive scan is MCScan-only (§4.3)");
      r.report = k::scan_ul1(dev_, in.tensor(), out.tensor(), x.size(),
                             opt.tile);
      break;
    case ScanAlgo::VectorBaseline:
      ASCAN_CHECK(!opt.exclusive, "exclusive scan is MCScan-only (§4.3)");
      r.report = k::vec_cumsum(dev_, in.tensor(), out.tensor(), x.size());
      break;
    case ScanAlgo::MCScan:
      throw Error("MCScan emits fp32; call cumsum() instead");
  }
  r.values = std::move(out.host());
  total_ += r.report;
  return r;
}

ValueResult<std::int32_t> Session::cumsum_i8(const std::vector<std::int8_t>& x,
                                             const ScanOptions& opt) {
  ASCAN_CHECK(opt.algo == ScanAlgo::MCScan,
              "int8 scans run on the MCScan path (§4.3)");
  auto in = dev_.upload(x);
  auto out = dev_.alloc<std::int32_t>(x.size());
  ValueResult<std::int32_t> r;
  r.report = k::mcscan<std::int8_t, std::int32_t>(
      dev_, in.tensor(), out.tensor(), x.size(),
      {.s = opt.tile, .blocks = opt.blocks, .exclusive = opt.exclusive});
  r.values = std::move(out.host());
  total_ += r.report;
  return r;
}

ValueResult<half> Session::cumsum_batched(const std::vector<half>& x,
                                          std::size_t batch, std::size_t len,
                                          std::size_t tile,
                                          bool use_ul1_schedule) {
  ASCAN_CHECK(x.size() == batch * len, "cumsum_batched: shape mismatch");
  auto in = dev_.upload(x);
  auto out = dev_.alloc<half>(x.size());
  ValueResult<half> r;
  r.report = use_ul1_schedule
                 ? k::batched_scan_ul1(dev_, in.tensor(), out.tensor(), batch,
                                       len, {.s = tile})
                 : k::batched_scan_u(dev_, in.tensor(), out.tensor(), batch,
                                     len, {.s = tile});
  r.values = std::move(out.host());
  total_ += r.report;
  return r;
}

ValueResult<half> Session::clone(const std::vector<half>& x) {
  auto in = dev_.upload(x);
  auto out = dev_.alloc<half>(x.size());
  ValueResult<half> r;
  r.report = k::copy_kernel<half>(dev_, in.tensor(), out.tensor(), x.size());
  r.values = std::move(out.host());
  total_ += r.report;
  return r;
}

SplitResult Session::split(const std::vector<half>& x,
                           const std::vector<std::int8_t>& mask,
                           std::size_t tile) {
  ASCAN_CHECK(x.size() == mask.size(), "split: mask length mismatch");
  auto in = dev_.upload(x);
  auto m = dev_.upload(mask);
  auto vals = dev_.alloc<half>(x.size());
  auto idx = dev_.alloc<std::int32_t>(x.size());
  SplitResult r;
  auto sr = k::split_ind<half>(dev_, in.tensor(), {}, m.tensor(),
                               vals.tensor(), idx.tensor(), x.size(),
                               {.s = tile});
  r.report = sr.report;
  r.num_true = sr.num_true;
  r.values = std::move(vals.host());
  r.indices = std::move(idx.host());
  total_ += r.report;
  return r;
}

MaskedSelectResult Session::masked_select(const std::vector<half>& x,
                                          const std::vector<std::int8_t>& mask,
                                          std::size_t tile, bool baseline) {
  ASCAN_CHECK(x.size() == mask.size(), "masked_select: mask length mismatch");
  auto in = dev_.upload(x);
  auto m = dev_.upload(mask);
  auto out = dev_.alloc<half>(x.size());
  MaskedSelectResult r;
  const auto sr =
      baseline ? k::masked_select_baseline(dev_, in.tensor(), m.tensor(),
                                           out.tensor(), x.size())
               : k::compress(dev_, in.tensor(), m.tensor(), out.tensor(),
                             x.size(), {.s = tile});
  r.report = sr.report;
  out.host().resize(sr.num_true);
  r.values = std::move(out.host());
  total_ += r.report;
  return r;
}

SortResult Session::sort(const std::vector<half>& keys, bool descending,
                         SortAlgo algo, std::size_t tile) {
  auto in = dev_.upload(keys);
  auto vals = dev_.alloc<half>(keys.size());
  auto idx = dev_.alloc<std::int32_t>(keys.size());
  SortResult r;
  if (keys.empty()) {
    r.report.launches = 1;
    return r;
  }
  r.report = algo == SortAlgo::Radix
                 ? k::radix_sort_f16(dev_, in.tensor(), vals.tensor(),
                                     idx.tensor(), keys.size(),
                                     {.s = tile, .descending = descending})
                 : k::sort_baseline_f16(dev_, in.tensor(), vals.tensor(),
                                        idx.tensor(), keys.size(),
                                        descending);
  r.values = std::move(vals.host());
  r.indices = std::move(idx.host());
  total_ += r.report;
  return r;
}

TopKResult Session::topk(const std::vector<half>& x, std::size_t k,
                         bool baseline, std::size_t tile) {
  auto in = dev_.upload(x);
  auto vals = dev_.alloc<half>(k);
  auto idx = dev_.alloc<std::int32_t>(k);
  TopKResult r;
  r.report = baseline
                 ? k::topk_baseline_f16(dev_, in.tensor(), vals.tensor(),
                                        idx.tensor(), x.size(), k)
                 : k::topk_f16(dev_, in.tensor(), vals.tensor(), idx.tensor(),
                               x.size(), k, {.s = tile});
  r.values = std::move(vals.host());
  r.indices = std::move(idx.host());
  total_ += r.report;
  return r;
}

SampleResult Session::top_p_sample(const std::vector<half>& probs, double p,
                                   double u, bool baseline_ops,
                                   std::size_t tile) {
  auto in = dev_.upload(probs);
  SampleResult r;
  const auto tr = k::top_p_sample(dev_, in.tensor(), probs.size(), p, u,
                                  {.s = tile,
                                   .use_baseline_ops = baseline_ops});
  r.report = tr.report;
  r.index = tr.token;
  r.nucleus = tr.nucleus;
  total_ += r.report;
  return r;
}

SampleResult Session::multinomial(const std::vector<half>& weights, double u,
                                  std::size_t tile) {
  auto in = dev_.upload(weights);
  SampleResult r;
  const auto wr =
      k::weighted_sample(dev_, in.tensor(), weights.size(), u, {.s = tile});
  r.report = wr.report;
  r.index = wr.index;
  total_ += r.report;
  return r;
}

Session::BatchSampleResult Session::top_p_sample_batch(
    const std::vector<half>& probs, std::size_t batch, std::size_t vocab,
    double p, const std::vector<double>& u, std::size_t tile) {
  ASCAN_CHECK(probs.size() == batch * vocab,
              "top_p_sample_batch: shape mismatch");
  ASCAN_CHECK(u.size() == batch, "top_p_sample_batch: one variate per row");
  BatchSampleResult r;
  r.tokens.reserve(batch);
  auto in = dev_.upload(probs);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto tr = k::top_p_sample(dev_, in.tensor().sub(b * vocab, vocab),
                                    vocab, p, u[b], {.s = tile});
    r.tokens.push_back(tr.token);
    r.report += tr.report;
  }
  total_ += r.report;
  return r;
}

ValueResult<float> Session::segmented_cumsum(
    const std::vector<half>& x, const std::vector<std::int8_t>& flags) {
  ASCAN_CHECK(x.size() == flags.size(), "segmented_cumsum: shape mismatch");
  auto in = dev_.upload(x);
  auto f = dev_.upload(flags);
  auto out = dev_.alloc<float>(x.size());
  ValueResult<float> r;
  r.report = k::segmented_scan(dev_, in.tensor(), f.tensor(), out.tensor(),
                               x.size(), {});
  r.values = std::move(out.host());
  total_ += r.report;
  return r;
}

ValueResult<float> Session::reduce(const std::vector<half>& x,
                                   bool use_cube) {
  auto in = dev_.upload(x);
  ValueResult<float> r;
  const auto rr = use_cube ? k::reduce_cube(dev_, in.tensor(), x.size(), {})
                           : k::reduce_vector(dev_, in.tensor(), x.size());
  r.report = rr.report;
  r.values = {rr.value};
  total_ += r.report;
  return r;
}

}  // namespace ascan
