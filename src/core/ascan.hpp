// ascan — the public API of the library.
//
// This layer plays the role of the paper's PyTorch/op-plugin integration
// (§6): a session owns a simulated Ascend 910B4 device, every operator
// takes and returns host vectors, and every call reports its simulated
// execution profile so callers can reproduce the paper's measurements.
//
//   ascan::Session session;                       // a simulated 910B4
//   auto r = session.cumsum(x);                   // r.values, r.report
//   auto sorted = session.sort(keys);             // radix sort + indices
//   auto tok = session.top_p_sample(probs, 0.9);  // nucleus sampling
//
// For device-resident composition (chaining kernels without host round
// trips), use the kernel layer in src/kernels directly — Session is a thin
// convenience wrapper over it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ascendc/ascendc.hpp"
#include "common/half.hpp"
#include "sim/config.hpp"
#include "sim/fault.hpp"
#include "sim/report.hpp"

namespace ascan {

using ascend::half;
using ascend::sim::FaultKind;
using ascend::sim::FaultPlan;
using ascend::sim::MachineConfig;
using ascend::sim::Report;

/// Bounded-retry / graceful-degradation policy applied to every operator
/// call on a Session (see DESIGN.md "Fault model & resilience").
///
/// State machine per call:
///   attempt -> (FaultError) -> retry with doubled simulated backoff, up to
///   max_attempts per degradation level -> (still failing, or fault not
///   retryable) -> exclude the faulted AI core and relaunch with blocks-1,
///   up to max_core_exclusions -> rethrow the typed error.
struct RetryPolicy {
  int max_attempts = 1;  ///< attempts per degradation level (1 = no retry)
  double backoff_s = 20e-6;  ///< simulated backoff before a retry; doubles
  int max_core_exclusions = 0;  ///< AI cores that may be taken offline
  /// Seeded deterministic jitter on each applied backoff: the delay is
  /// scaled by a factor in [1 - backoff_jitter, 1 + backoff_jitter] drawn
  /// from a splitmix64 hash of (jitter_seed, session call ordinal, retry
  /// ordinal). With a whole batch of sessions retrying against one
  /// degraded device, synchronized exponential backoff re-stampedes it at
  /// every doubling; jitter de-synchronizes the herd while staying a pure
  /// function of the seed — Reports remain bit-identical across runs and
  /// host executors. 0 keeps the legacy fixed doubling.
  double backoff_jitter = 0;
  std::uint64_t jitter_seed = 0;
};

/// Resilience accounting for the most recent operator call.
struct RetryStats {
  std::uint32_t attempts = 0;  ///< launches attempted (success included)
  std::uint32_t retries = 0;   ///< failed attempts that were relaunched
  std::uint32_t excluded_cores = 0;  ///< cores taken offline by this call
  double backoff_s = 0;              ///< simulated backoff spent
  FaultKind last_fault = FaultKind::None;
};

/// Lifetime resilience accounting of a Session: the sums of every
/// operator call's RetryStats (failed calls included). A serving layer that
/// owns one Session per simulated device reads this to report per-device
/// degradation — how battered each device is — without threading Reports
/// through every call site.
struct CumulativeRetryStats {
  std::uint64_t calls = 0;     ///< operator calls run under the retry loop
  std::uint64_t failures = 0;  ///< calls that exhausted every option
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t excluded_cores = 0;
  double backoff_s = 0;
};

/// Scan algorithm selector.
enum class ScanAlgo {
  MCScan,          ///< multi-core, cube + vector (Algorithm 3) — default
  ScanU,           ///< single-core cube scan (Algorithm 1)
  ScanUL1,         ///< single-core cube scan via Equation 1 (Algorithm 2)
  VectorBaseline,  ///< AscendC CumSum API path (the paper's baseline)
};

/// Sort algorithm selector.
enum class SortAlgo {
  Radix,     ///< cube-assisted LSB radix sort (§5) — default
  Baseline,  ///< torch.sort-like vector merge sort
};

struct ScanOptions {
  ScanAlgo algo = ScanAlgo::MCScan;
  std::size_t tile = 128;  ///< matrix tile edge s (16/32/64/128)
  int blocks = 0;          ///< AI cores (0 = all)
  bool exclusive = false;  ///< MCScan only
};

template <typename T>
struct ValueResult {
  std::vector<T> values;
  Report report;
};

struct SortResult {
  std::vector<half> values;
  std::vector<std::int32_t> indices;
  Report report;
};

struct SplitResult {
  std::vector<half> values;
  std::vector<std::int32_t> indices;
  std::size_t num_true = 0;
  Report report;
};

struct MaskedSelectResult {
  std::vector<half> values;  ///< exactly the kept elements
  Report report;
};

struct TopKResult {
  std::vector<half> values;  ///< descending
  std::vector<std::int32_t> indices;
  Report report;
};

struct SampleResult {
  std::int32_t index = -1;
  std::size_t nucleus = 0;  ///< top-p only
  Report report;
};

class Session {
 public:
  explicit Session(MachineConfig cfg = MachineConfig::ascend_910b4());

  const MachineConfig& config() const { return dev_.config(); }
  ascend::acc::Device& device() { return dev_; }

  /// Aggregate of every operator executed on this session.
  const Report& total() const { return total_; }

  // --- Fault injection & resilience -----------------------------------------

  /// Installs a seeded fault plan on the session's device. Deterministic:
  /// the same plan on the same call sequence produces the identical fault
  /// sequence and Report on every run.
  void set_fault_plan(const FaultPlan& plan) { dev_.set_fault_plan(plan); }

  /// Retry / degradation policy applied to every operator call.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Resilience accounting for the most recent operator call.
  const RetryStats& last_retry_stats() const { return last_stats_; }

  /// Lifetime resilience accounting (sum of every call's RetryStats).
  /// Not synchronised: read it from the thread running the session's
  /// calls, or after that thread has been joined.
  const CumulativeRetryStats& cumulative_retry_stats() const {
    return cumulative_stats_;
  }

  /// AI cores still online (excluded stragglers/bad cores are gone until
  /// the session is destroyed, like a production NPU taking a core
  /// offline).
  int active_cores() const { return dev_.config().num_ai_cores; }

  // --- Scans ----------------------------------------------------------------

  /// Inclusive (or exclusive) prefix sum; fp16 input, fp32 output
  /// (the cube accumulator type). Single-core algorithms emit fp16.
  ValueResult<float> cumsum(const std::vector<half>& x,
                            const ScanOptions& opt = {});

  /// fp16-output scan (single-core algorithms and the vector baseline).
  ValueResult<half> cumsum_f16(const std::vector<half>& x,
                               const ScanOptions& opt = {});

  /// int8 -> int32 scan (mask offsets for split/compress).
  ValueResult<std::int32_t> cumsum_i8(const std::vector<std::int8_t>& x,
                                      const ScanOptions& opt = {});

  /// Row-wise scan of a [batch, len] tensor. `use_ul1_schedule` picks the
  /// one-row-per-core ScanUL1 schedule instead of the paired ScanU one.
  ValueResult<half> cumsum_batched(const std::vector<half>& x,
                                   std::size_t batch, std::size_t len,
                                   std::size_t tile = 128,
                                   bool use_ul1_schedule = false);

  // --- Data movement ----------------------------------------------------------

  /// torch.clone: bandwidth yardstick.
  ValueResult<half> clone(const std::vector<half>& x);

  // --- Scan-based operators ----------------------------------------------------

  SplitResult split(const std::vector<half>& x,
                    const std::vector<std::int8_t>& mask,
                    std::size_t tile = 128);

  MaskedSelectResult masked_select(const std::vector<half>& x,
                                   const std::vector<std::int8_t>& mask,
                                   std::size_t tile = 128,
                                   bool baseline = false);

  SortResult sort(const std::vector<half>& keys, bool descending = false,
                  SortAlgo algo = SortAlgo::Radix, std::size_t tile = 128);

  TopKResult topk(const std::vector<half>& x, std::size_t k,
                  bool baseline = false, std::size_t tile = 128);

  /// Nucleus sampling (Llama-3 pipeline): returns the sampled token id.
  /// `u` is the uniform variate; pass your own RNG draw for determinism.
  SampleResult top_p_sample(const std::vector<half>& probs, double p,
                            double u, bool baseline_ops = false,
                            std::size_t tile = 128);

  /// Inverse-transform weighted sampling (torch.multinomial, without its
  /// 2^24 support-size cap).
  SampleResult multinomial(const std::vector<half>& weights, double u,
                           std::size_t tile = 128);

  /// Batched nucleus sampling over `batch` packed rows of `vocab`
  /// probabilities (the constant-batch LLM serving pattern of §5): one
  /// token per row, one uniform variate per row, aggregated report.
  struct BatchSampleResult {
    std::vector<std::int32_t> tokens;  ///< row-local token ids
    Report report;
  };
  BatchSampleResult top_p_sample_batch(const std::vector<half>& probs,
                                       std::size_t batch, std::size_t vocab,
                                       double p, const std::vector<double>& u,
                                       std::size_t tile = 128);

  // --- Extensions beyond the paper ----------------------------------------------

  /// Segmented inclusive scan: prefix sums restarting at every flags[i]!=0.
  ValueResult<float> segmented_cumsum(const std::vector<half>& x,
                                      const std::vector<std::int8_t>& flags);

  // --- Stepwise (tile-granular) launches --------------------------------------
  //
  // Iteration-level entry points for a serving layer: instead of one opaque
  // call over the whole batch, the caller drives the operator one
  // tile-column at a time — begin() fixes the launch shape, each step()
  // runs one resumable slice (its own resilient kernel launch, so the
  // retry/degradation state machine and the launch-shape timing cache apply
  // per step), finish() returns the aggregated Report with Report::steps
  // stamped. Between steps the caller may change the row set: every row's
  // outputs depend only on its own data and carry-in, never on batch
  // composition, which is what makes mid-launch admission bit-exact with a
  // standalone run of the same request (tests/test_serve.cpp pins this).
  //
  // Rounding note: a step applies the row carry as one uniform fp add per
  // element, where the monolithic kernels chain carries at s-element
  // granularity — for integer-valued data both are exact and identical; for
  // general fp data they may differ by the usual 1-ulp reassociation
  // already documented for batched serving.

  /// In-progress stepwise launch: aggregated accounting plus the fixed
  /// group shape. Treat as opaque outside Session and the serving layer.
  struct LaunchStream {
    Report report;           ///< sum of the steps' reports so far
    int steps = 0;           ///< step() calls so far
    std::size_t tile = 128;  ///< matrix tile edge s of the group
    bool ul1 = false;        ///< Cumsum: ScanUL1 row schedule
    double p = 0;            ///< TopP: nucleus mass of the group
    bool open = false;       ///< begin() called, finish() not yet
  };

  /// Stepwise batched row scan. Each step scans `batch` packed rows of
  /// `len` fp16 elements (len <= tile*tile, the kernel's l-tile) and adds
  /// `carries[i]` — row i's running prefix from its previous steps — to
  /// every element of row i. Rows shorter than `len` must be zero-padded
  /// (trailing zeros cannot change any valid prefix). The caller reads row
  /// i's carry-out from its last valid output element.
  LaunchStream cumsum_batched_begin(std::size_t tile = 128,
                                    bool use_ul1_schedule = false);
  ValueResult<half> cumsum_batched_step(LaunchStream& ls,
                                        const std::vector<half>& xs,
                                        std::size_t batch, std::size_t len,
                                        const std::vector<half>& carries);
  Report cumsum_batched_finish(LaunchStream& ls);

  /// Stepwise segmented scan over concatenated per-row chunks. `xs`/`flags`
  /// hold sum(row_len) elements: row i's next chunk of its flagged stream.
  /// Each row's chunk start is treated as a forced segment start inside the
  /// kernel (so no carry crosses rows or steps in-device); `carries[i]` —
  /// row i's running prefix — is then added to row i's elements up to (not
  /// including) the first real flag of the chunk. The caller reads row i's
  /// carry-out from its last output element.
  LaunchStream segmented_cumsum_begin();
  ValueResult<float> segmented_cumsum_step(
      LaunchStream& ls, const std::vector<half>& xs,
      const std::vector<std::int8_t>& flags,
      const std::vector<std::size_t>& row_len,
      const std::vector<float>& carries);
  Report segmented_cumsum_finish(LaunchStream& ls);

  /// Stepwise batched nucleus sampling: one row per step (a row's sample is
  /// already a multi-kernel pipeline, so the row is the natural resumable
  /// slice). Identical to top_p_sample of the row — the monolithic batch
  /// path loops the same per-row kernel.
  LaunchStream top_p_begin(double p, std::size_t tile = 128);
  SampleResult top_p_step(LaunchStream& ls, const std::vector<half>& probs,
                          double u);
  Report top_p_finish(LaunchStream& ls);

  /// Sum reduction; `use_cube` accumulates on the cube units' L0C path.
  ValueResult<float> reduce(const std::vector<half>& x, bool use_cube = true);

  // --- Composition hooks ------------------------------------------------------

  /// Runs a caller-composed sequence of kernel calls under the session's
  /// retry/degradation state machine, exactly like a built-in operator.
  /// `attempt` must be idempotent-relaunchable (the kernels are). This is
  /// the re-entry point for higher layers — src/serve uses it so a whole
  /// coalesced batch launch retries/degrades as one unit.
  Report run_resilient(const char* what, const std::function<Report()>& attempt);

 private:
  /// Runs one operator attempt under the retry/degradation state machine.
  /// `attempt` performs the kernel call(s) and returns their report; it is
  /// re-invoked verbatim on retry (kernels are idempotent-relaunchable).
  Report resilient(const char* what, const std::function<Report()>& attempt);
  Report resilient_loop(const std::function<Report()>& attempt);

  /// Takes the faulted AI core offline: rebuilds the device with blocks-1,
  /// carrying the fault injector (and its launch ordinal) over.
  void exclude_core();

  ascend::acc::Device dev_;
  Report total_;
  RetryPolicy retry_;
  RetryStats last_stats_;
  CumulativeRetryStats cumulative_stats_;
};

/// RAII request-scoped retry policy: installs `policy` for the lifetime of
/// the scope and restores the session's previous policy on exit. Lets a
/// serving layer give individual requests their own resilience budget
/// without perturbing the session default.
class ScopedRetryPolicy {
 public:
  ScopedRetryPolicy(Session& session, const RetryPolicy& policy)
      : session_(session), saved_(session.retry_policy()) {
    session_.set_retry_policy(policy);
  }
  ~ScopedRetryPolicy() { session_.set_retry_policy(saved_); }

  ScopedRetryPolicy(const ScopedRetryPolicy&) = delete;
  ScopedRetryPolicy& operator=(const ScopedRetryPolicy&) = delete;

 private:
  Session& session_;
  RetryPolicy saved_;
};

}  // namespace ascan
