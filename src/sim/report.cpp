#include "sim/report.hpp"

#include <ostream>
#include <sstream>

#include "common/table.hpp"

namespace ascend::sim {

std::string Report::summary() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Report& r) {
  os << "time=" << format_time_s(r.time_s) << " launches=" << r.launches;
  if (r.steps > 0) os << " steps=" << r.steps;
  os << " gm_read=" << format_bytes(r.gm_read_bytes)
     << " gm_write=" << format_bytes(r.gm_write_bytes)
     << " l2_hit=" << format_bytes(r.l2_hit_bytes)
     << " busy[cube=" << format_time_s(r.cube_busy_s)
     << " vec=" << format_time_s(r.vec_busy_s)
     << " mte=" << format_time_s(r.mte_busy_s)
     << " hbm=" << format_time_s(r.hbm_busy_s) << "] ops=" << r.num_ops;
  if (r.any_faults()) {
    os << " faults[mte=" << r.mte_faults << " ecc1=" << r.ecc_single
       << " ecc2=" << r.ecc_double << " hang=" << r.hangs
       << " throttled=" << r.throttled_subcores << " retries=" << r.retries
       << " excluded=" << r.excluded_cores << "]";
  }
  return os;
}

}  // namespace ascend::sim
