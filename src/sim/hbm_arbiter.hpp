// Fluid-flow model of the shared memory system: an on-chip L2 bandwidth
// pool and an off-chip HBM pool.
//
// Every in-flight GM transfer is a "flow" with a remaining byte count, a
// per-flow rate cap (the MTE engine's streaming bandwidth) and two demand
// fractions derived from the L2 model: l2_frac (all traffic streams through
// the L2) and hbm_frac (misses plus dirty write-backs; can exceed 1 when a
// write triggers an eviction per line). Rates are assigned by iterative
// proportional throttling (a max-min/water-filling approximation): start
// every flow at its cap and repeatedly scale down flows that oversubscribe
// a pool. This reproduces the regimes behind the paper's figures: one core
// is MTE-limited, 20 cores on an L2-resident working set saturate the
// on-chip pool (copy "almost approaches the theoretical limit"), and larger
// working sets degrade to HBM-efficiency-limited streaming.
//
// Hot-path note: all sweeps run over `active_slots_`, kept sorted by slot
// index so iteration order — and therefore floating-point summation order —
// is identical to scanning the whole `flows_` vector and skipping inactive
// entries, while costing O(active) instead of O(ever-created).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace ascend::sim {

class HbmArbiter {
 public:
  HbmArbiter(double hbm_bytes_per_s, double l2_bytes_per_s)
      : hbm_bw_(hbm_bytes_per_s), l2_bw_(l2_bytes_per_s) {}

  /// Registers a transfer starting at time `now`. The flow finishes when
  /// `bytes` have streamed at the assigned rate r; it consumes r*hbm_frac
  /// from the HBM pool and r*l2_frac from the L2 pool while active.
  std::uint32_t add_flow(double now, double bytes, double rate_cap,
                         double hbm_frac, double l2_frac);

  /// Time of the earliest flow completion, or +inf when no flows active.
  double next_completion_time() const { return next_completion_; }

  /// Advances the fluid state to `now` and pops every flow that completes
  /// at (or before) `now`. Returns their handles in ascending slot order.
  const std::vector<std::uint32_t>& advance_and_pop(double now);

  bool idle() const { return active_slots_.empty(); }
  double hbm_busy_time() const { return hbm_busy_time_; }

 private:
  struct Flow {
    double remaining = 0;
    double cap = 0;
    double hbm_frac = 0;
    double l2_frac = 0;
    double rate = 0;
    bool active = false;
  };

  void advance_to(double now);
  void recompute_rates();

  double hbm_bw_;
  double l2_bw_;
  double last_update_ = 0;
  double next_completion_ = kInf;
  double hbm_busy_time_ = 0;  ///< integral of (hbm demand > 0)
  int hbm_active_ = 0;        ///< active flows with hbm_frac > 0
  std::vector<Flow> flows_;
  std::vector<std::uint32_t> active_slots_;  ///< sorted ascending
  std::vector<std::uint32_t> free_slots_cached_;
  std::vector<std::uint32_t> done_;  ///< advance_and_pop result buffer

  static constexpr double kInf = 1e300;
};

}  // namespace ascend::sim
