// Shared L2 cache model.
//
// The 910B places a shared L2 between the AI cores and HBM; in the split
// architecture cube and vector cores exchange data *only* through GM/L2
// (paper §3.1), so the round trip a tile takes from the cube core's Fixpipe
// to the vector core's MTE2 stays on-chip when the working set fits. The
// copy comparison in Fig. 8 ("for sizes smaller than the L2 cache we almost
// approach the theoretical limit") is a direct consequence, and so is the
// 37.5%-of-peak ceiling of MCScan: the algorithm moves 16 bytes through the
// L2 per element of which 6 are useful, and 6/16 = 37.5%.
//
// Model: set-associative LRU over fixed-size lines with write-allocate and
// write-back. Every access reports how many bytes hit, how many missed
// (HBM reads), and how many dirty bytes were evicted (HBM write-backs,
// charged to the transfer that caused the eviction — correct in steady
// state for streaming kernels).
#pragma once

#include <cstdint>
#include <vector>

namespace ascend::sim {

struct L2Access {
  std::uint64_t hit_bytes = 0;
  std::uint64_t miss_bytes = 0;
  std::uint64_t writeback_bytes = 0;

  double hit_frac(std::uint64_t total) const {
    return total == 0 ? 0.0
                      : static_cast<double>(hit_bytes) /
                            static_cast<double>(total);
  }
};

class L2Cache {
 public:
  L2Cache(std::uint64_t capacity_bytes, std::uint64_t line_bytes,
          int ways = 16);

  /// Touches [addr, addr+bytes). Missed lines are allocated (reads and
  /// writes both allocate); writes mark lines dirty; evicted dirty lines
  /// are reported as write-back bytes.
  L2Access access(std::uint64_t addr, std::uint64_t bytes, bool is_write);

  void reset();

  std::uint64_t hits() const { return hit_lines_; }
  std::uint64_t misses() const { return miss_lines_; }
  std::uint64_t line_bytes() const { return line_bytes_; }

  /// Bumped on every reset(): external invalidation of the cached state.
  /// The launch-shape timing cache folds this into its generation check so
  /// a reset L2 can never satisfy a stale cached timing (per-access
  /// mutations are covered separately by counting scheduler replays).
  std::uint64_t generation() const { return generation_; }

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;
    bool dirty = false;
  };

  std::uint64_t line_bytes_;
  std::uint64_t num_sets_;
  int ways_;
  std::uint64_t tick_ = 0;
  std::uint64_t hit_lines_ = 0;
  std::uint64_t miss_lines_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<Way> sets_;  // num_sets_ * ways_
};

}  // namespace ascend::sim
