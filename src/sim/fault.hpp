// Deterministic fault injection for the simulated 910B4.
//
// Field studies of multi-core NPU serving show that transient DMA errors,
// HBM ECC events and straggler/throttled cores dominate real deployments;
// the simulator is the one place those faults can be reproduced exactly.
// A FaultPlan describes *rates*; a FaultInjector turns them into concrete,
// seed-deterministic decisions. Every decision is a pure hash of
// (seed, launch ordinal, sub-core, per-sub-core op ordinal), so the same
// plan produces the identical fault sequence — and the identical Report —
// on every run, independent of host-thread interleaving.
//
// Fault taxonomy (what the scheduler does with each decision):
//  * MteTransient — a DMA transfer fails mid-flight. The launch aborts with
//    TransferError at the op's fault time; a relaunch is expected to succeed
//    (the decision is keyed on the launch ordinal, which advances per
//    attempt).
//  * EccSingle — correctable HBM single-bit error: the transfer pays a
//    scrub penalty (cfg.ecc_scrub_cycles) and is logged; execution
//    continues and results are unaffected.
//  * EccDouble — uncorrectable double-bit error: the launch aborts with
//    EccError. Not retryable on the same core set (the page is bad);
//    recovery is core exclusion.
//  * Hang — the op never completes (lost interrupt / wedged engine). The
//    launch watchdog converts this into TimeoutError at its deadline.
//  * Throttle — a sub-core runs at `throttle_factor` of nominal clock for
//    the whole launch (thermal straggler). Purely a timing fault.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "sim/report.hpp"

namespace ascend::sim {

/// What kind of device fault aborted (or perturbed) a launch.
enum class FaultKind : std::uint8_t {
  None,
  MteTransient,  ///< transient DMA/MTE transfer failure (retryable)
  EccSingle,     ///< correctable HBM ECC event (scrub + log, non-fatal)
  EccDouble,     ///< uncorrectable HBM ECC event (abort, not retryable)
  Hang,          ///< op never completes; surfaces as a watchdog timeout
  Throttle,      ///< sub-core clock throttled for the launch (non-fatal)
};

constexpr const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::None: return "none";
    case FaultKind::MteTransient: return "mte-transient";
    case FaultKind::EccSingle: return "ecc-single";
    case FaultKind::EccDouble: return "ecc-double";
    case FaultKind::Hang: return "hang";
    case FaultKind::Throttle: return "throttle";
  }
  return "?";
}

/// Seeded description of the faults a device should experience. All rates
/// are per-opportunity probabilities (per transfer op, or per sub-core per
/// launch for throttling) in [0, 1].
struct FaultPlan {
  std::uint64_t seed = 1;

  double mte_transient_rate = 0;  ///< per transfer: DMA failure -> abort
  double ecc_single_rate = 0;     ///< per transfer: correctable ECC scrub
  double ecc_double_rate = 0;     ///< per transfer: uncorrectable -> abort
  double hang_rate = 0;           ///< per transfer: op never completes
  double throttle_rate = 0;       ///< per sub-core per launch: straggler
  double throttle_factor = 0.5;   ///< throttled clock as fraction of nominal

  /// When >= 0: force exactly one MteTransient on the first transfer
  /// considered for launch ordinal `force_mte_on_launch` (targeted tests:
  /// "any single transient fault must be survivable").
  std::int64_t force_mte_on_launch = -1;

  /// When >= 0: the device suffers a *persistent* fault — every launch
  /// from ordinal `persistent_from_launch` onward fails with
  /// `persistent_kind` on its first transfer, attempt after attempt. This
  /// models a device that serves traffic normally and then dies mid-run
  /// and stays dead (bad HBM stack, wedged DMA ring): retries burn their
  /// budget without ever succeeding, which is exactly the signal a
  /// cluster-level health state machine must quarantine on.
  std::int64_t persistent_from_launch = -1;
  FaultKind persistent_kind = FaultKind::MteTransient;

  bool any() const {
    return mte_transient_rate > 0 || ecc_single_rate > 0 ||
           ecc_double_rate > 0 || hang_rate > 0 || throttle_rate > 0 ||
           force_mte_on_launch >= 0 || persistent_from_launch >= 0;
  }

  /// A plan with no faults (the default device behaviour).
  static FaultPlan none() { return FaultPlan{}; }

  /// Exactly one transient MTE fault on the `launch`-th kernel launch.
  static FaultPlan one_transient_mte(std::int64_t launch = 0) {
    FaultPlan p;
    p.force_mte_on_launch = launch;
    return p;
  }

  /// A device that dies at launch ordinal `launch` and never recovers.
  static FaultPlan dead_from_launch(std::int64_t launch,
                                    FaultKind kind = FaultKind::MteTransient) {
    FaultPlan p;
    p.persistent_from_launch = launch;
    p.persistent_kind = kind;
    return p;
  }
};

/// Turns a FaultPlan into concrete per-op decisions. Owned (shared) by the
/// Device so the launch ordinal survives retries and core exclusions.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }
  bool armed() const { return plan_.any(); }

  /// Called once per kernel launch (per *attempt*); returns the launch
  /// ordinal all decisions for that launch are keyed on.
  std::uint64_t begin_launch() {
    return next_launch_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t launches_started() const {
    return next_launch_.load(std::memory_order_relaxed);
  }

  /// Fault decision for the `ordinal`-th GM transfer recorded by
  /// `subcore` in launch `launch`. Only returns None / MteTransient /
  /// EccSingle / EccDouble / Hang.
  FaultKind transfer_fault(std::uint64_t launch, std::uint32_t subcore,
                           std::uint32_t ordinal);

  /// Clock scale for `subcore` in `launch`: 1.0, or plan.throttle_factor
  /// when the sub-core is a straggler this launch.
  double clock_scale(std::uint64_t launch, std::uint32_t subcore) const;

 private:
  double u01(std::uint64_t launch, std::uint32_t subcore,
             std::uint32_t ordinal, std::uint32_t salt) const;

  FaultPlan plan_;
  std::atomic<std::uint64_t> next_launch_{0};
  std::atomic<bool> forced_mte_done_{false};
};

// ---------------------------------------------------------------------------
// Typed fault errors thrown by the resilient execution path.

/// Base class of all injected-fault failures. Carries the partial report of
/// the aborted attempt (simulated time until the abort plus fault counters)
/// so callers can account for wasted simulated time, and the faulting
/// sub-core / block for core-exclusion decisions.
class FaultError : public Error {
 public:
  FaultError(const std::string& what, FaultKind kind, Report attempt,
             int subcore)
      : Error(what), kind_(kind), attempt_(attempt), subcore_(subcore) {}

  FaultKind kind() const { return kind_; }
  /// Simulated cost of the failed attempt (time up to the abort).
  const Report& attempt_report() const { return attempt_; }
  /// Global sub-core index the fault manifested on (-1 if unknown).
  int subcore() const { return subcore_; }
  /// Block (AI-core) index of the faulting sub-core; filled in by
  /// acc::launch, which knows the sub-core plan. -1 if unknown.
  int block() const { return block_; }
  void set_block(int b) { block_ = b; }

  /// Whether an immediate relaunch on the same core set can succeed.
  bool retryable() const { return kind_ != FaultKind::EccDouble; }

 private:
  FaultKind kind_;
  Report attempt_;
  int subcore_;
  int block_ = -1;
};

/// Transient MTE/DMA transfer failure.
class TransferError : public FaultError {
 public:
  using FaultError::FaultError;
};

/// Uncorrectable (double-bit) HBM ECC event.
class EccError : public FaultError {
 public:
  using FaultError::FaultError;
};

/// Watchdog deadline expired (kernel hang or pathological straggler).
class TimeoutError : public FaultError {
 public:
  using FaultError::FaultError;
};

}  // namespace ascend::sim
