#include "sim/fault.hpp"

namespace ascend::sim {

namespace {

// splitmix64: the standard 64-bit finaliser. Each decision hashes the full
// (seed, launch, subcore, ordinal, salt) key independently, so decisions
// are order-free: it does not matter in which order the scheduler asks.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double FaultInjector::u01(std::uint64_t launch, std::uint32_t subcore,
                          std::uint32_t ordinal, std::uint32_t salt) const {
  std::uint64_t h = mix64(plan_.seed ^ 0xa5c3u);
  h = mix64(h ^ launch);
  h = mix64(h ^ ((static_cast<std::uint64_t>(subcore) << 32) | ordinal));
  h = mix64(h ^ salt);
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultKind FaultInjector::transfer_fault(std::uint64_t launch,
                                        std::uint32_t subcore,
                                        std::uint32_t ordinal) {
  if (plan_.persistent_from_launch >= 0 &&
      launch >= static_cast<std::uint64_t>(plan_.persistent_from_launch) &&
      ordinal == 0) {
    // Persistent device death: every sub-core's first transfer fails on
    // every launch from the configured ordinal on, attempt after attempt.
    // The earliest such op aborts the launch; marking one per sub-core
    // keeps the decision independent of which sub-cores carry transfers.
    return plan_.persistent_kind;
  }
  if (plan_.force_mte_on_launch >= 0 &&
      launch == static_cast<std::uint64_t>(plan_.force_mte_on_launch)) {
    // Exactly one forced fault: the first transfer queried for that launch.
    // Queries happen in deterministic trace-setup order, so "first" is
    // stable across runs.
    if (!forced_mte_done_.exchange(true, std::memory_order_relaxed)) {
      return FaultKind::MteTransient;
    }
  }
  // Disjoint probability bands over one uniform draw, so at most one fault
  // kind fires per transfer and individual rates stay faithful.
  const double u = u01(launch, subcore, ordinal, /*salt=*/1);
  double lo = 0;
  if (u < (lo += plan_.mte_transient_rate)) return FaultKind::MteTransient;
  if (u < (lo += plan_.ecc_double_rate)) return FaultKind::EccDouble;
  if (u < (lo += plan_.hang_rate)) return FaultKind::Hang;
  if (u < (lo += plan_.ecc_single_rate)) return FaultKind::EccSingle;
  return FaultKind::None;
}

double FaultInjector::clock_scale(std::uint64_t launch,
                                  std::uint32_t subcore) const {
  if (plan_.throttle_rate <= 0) return 1.0;
  const double u = u01(launch, subcore, /*ordinal=*/0, /*salt=*/2);
  return u < plan_.throttle_rate ? plan_.throttle_factor : 1.0;
}

}  // namespace ascend::sim
