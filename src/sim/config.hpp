// Machine description and cost model for the simulated Ascend accelerator.
//
// The defaults describe the Ascend 910B4 used in the paper's evaluation:
// 20 AI Cores, each with one AI Cube (AIC) core and two AI Vector (AIV)
// cores (the 2:1 vector-to-cube ratio of the split DaVinci architecture),
// 800 GB/s of HBM bandwidth behind a shared L2, and the UB/L1/L0 scratchpad
// capacities documented for the DaVinci architecture.
//
// Cost-model philosophy (see DESIGN.md §4): scan is memory bound, so the
// *memory side* of the model (bytes moved per engine, shared-HBM
// arbitration, L2 hits) is derived from first principles and determines
// every bandwidth figure. The *compute side* constants (cube MACs/cycle,
// vector bytes/cycle, scalar read-back latency, per-instruction issue cost,
// kernel launch overhead) are taken from published DaVinci material where
// available and otherwise calibrated once against the single-core ratios the
// paper reports (Fig. 3); they are never tuned per-experiment.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ascend::sim {

/// How kernel launches execute their sub-core bodies on the host.
///  * Spawn — legacy path: one fresh std::thread per sub-core per launch
///    (kept selectable for debugging and determinism A/B tests).
///  * Pool  — persistent worker pool owned by the device; bodies dispatch
///    to long-lived workers (the fast path).
///  * Auto  — consult the ASCAN_EXECUTOR environment variable ("spawn" or
///    "pool"); default Pool.
/// Both paths produce bit-identical traces, Reports and output values.
enum class ExecutorMode : std::uint8_t { Auto, Spawn, Pool };

struct MachineConfig {
  // --- Topology ------------------------------------------------------------
  int num_ai_cores = 20;  ///< AIC count ("blocks" at full occupancy)
  int vec_per_core = 2;   ///< AIV cores per AI core

  // --- Clocks and raw rates --------------------------------------------------
  double clock_hz = 1.8e9;          ///< core clock
  double hbm_bandwidth = 800e9;     ///< aggregate HBM bytes/s (910B4 peak)
  double hbm_efficiency = 0.75;     ///< achievable fraction of peak on streams
  /// Aggregate on-chip L2 bandwidth. Set to the nominal HBM peak: an
  /// L2-resident working set is what lets kernels "almost approach the
  /// theoretical limit given by the memory bandwidth" (paper §6.1).
  double l2_bandwidth = 800e9;
  double mte_bandwidth = 128e9;     ///< per-MTE engine GM bytes/s cap
  double local_copy_bytes_per_cycle = 40;  ///< L1<->L0 fractal-layout moves

  // --- Memory sizes ----------------------------------------------------------
  std::size_t l2_bytes = 96ull << 20;  ///< shared L2 cache capacity
  std::size_t l2_line_bytes = 512;
  std::size_t ub_bytes = 192ull << 10;   ///< per-AIV Unified Buffer
  std::size_t l1_bytes = 512ull << 10;   ///< per-AIC L1
  std::size_t l0a_bytes = 64ull << 10;   ///< per-AIC L0A (left matrix)
  std::size_t l0b_bytes = 64ull << 10;   ///< per-AIC L0B (right matrix)
  std::size_t l0c_bytes = 128ull << 10;  ///< per-AIC L0C (accumulator)

  // --- Cube unit -------------------------------------------------------------
  double cube_macs_per_cycle_f16 = 4096;  ///< 16x16x16 MACs per cycle
  double cube_macs_per_cycle_i8 = 8192;   ///< int8 doubles MAC throughput
  double cube_issue_cycles = 50;          ///< fixed cost per Mmad instruction

  // --- Vector unit -----------------------------------------------------------
  double vec_bytes_per_cycle = 256;   ///< SIMD throughput per AIV
  double vec_issue_cycles = 16;       ///< fixed cost per vector instruction
  double gather_bytes_per_cycle = 96; ///< GatherMask & friends are slower

  // --- Scalar unit -----------------------------------------------------------
  double scalar_read_cycles = 48;  ///< UB value -> scalar register (serialises)
  double scalar_op_cycles = 4;     ///< basic scalar arithmetic / control

  // --- Composite/macro instructions -------------------------------------------
  // The AscendC CumSum API is closed source; the paper measures it to be
  // ~5x slower than ScanU and ~9.6x slower than ScanUL1 at s = 128
  // (Fig. 3). This per-element cost reproduces the measured throughput of
  // that API and is used *only* by the vector-baseline kernel.
  double cumsum_cycles_per_elem = 2.55;
  // torch.masked_select on Ascend uses neither vector nor cube units
  // (paper §6.2); it is modelled as a scalar/AICPU loop at this cost.
  double scalar_loop_cycles_per_elem = 24;
  // Data-dependent two-way merge step of the baseline sort (per output
  // element, on one AIV). torch.sort's kernel is closed; calibrated so the
  // baseline matches the paper's radix-sort crossover (Fig. 11).
  double vec_merge_cycles_per_elem = 1.9;

  // --- Transfer / control overheads -------------------------------------------
  /// One-way GM/HBM access latency. Irrelevant to pipelined streaming
  /// kernels (double buffering hides it) but decisive for dependent
  /// GM round trips — cross-core flags and the adjacent-block chains of
  /// StreamScan / decoupled-lookback strategies (§2.1): "each data
  /// transfer between the AIC and AIV cores might be expensive" (§3.1).
  double gm_latency_s = 3e-7;
  double mte_issue_cycles = 40;    ///< fixed cost per DataCopy instruction
  double launch_overhead_s = 2.8e-6;  ///< host->device kernel launch
  double sync_all_s = 1.2e-6;         ///< global SyncAll barrier latency
  double flag_cost_cycles = 24;       ///< cross-core flag set/wait

  // --- Reliability -------------------------------------------------------------
  /// Extra cycles a GM transfer pays when a correctable (single-bit) HBM
  /// ECC event is scrubbed in-line (detect, correct, write back the line).
  double ecc_scrub_cycles = 2000;
  /// Default watchdog deadline for a kernel launch in *simulated* seconds
  /// (0 = disabled). A launch whose simulated clock would pass the deadline
  /// aborts with TimeoutError instead of hanging forever.
  double watchdog_s = 0;
  /// Launch-shape scaling of the watchdog: the effective deadline is
  /// watchdog_s + watchdog_scale * T_ref, where T_ref is a serial-work
  /// estimate of the launch derived from its own trace (total GM bytes at
  /// effective HBM bandwidth plus total recorded cycles at the nominal
  /// clock). A flat deadline tuned for small launches misclassifies
  /// giant-but-healthy launches (many rows x many tiles) as hangs and
  /// burns their retry budget; scaling grows the headroom with the shape
  /// while real hangs are still caught (a wedged engine never completes,
  /// deadline or not). 0 restores the flat pre-scaling deadline.
  double watchdog_scale = 8.0;

  // --- Host execution engine ---------------------------------------------------
  /// Sub-core execution strategy (see ExecutorMode). Runtime-switchable via
  /// ASCAN_EXECUTOR when left at Auto.
  ExecutorMode executor = ExecutorMode::Auto;
  /// Opt-in launch-shape timing cache: identical repeated launches skip the
  /// discrete-event replay once their Report has provably converged. Always
  /// bypassed when a fault injector is armed or a Timeline is requested.
  /// The ASCAN_TIMING_CACHE environment variable overrides this field.
  bool timing_cache = false;

  // --- Derived helpers ---------------------------------------------------------
  double cycles_to_s(double cycles) const { return cycles / clock_hz; }
  int num_vec_cores() const { return num_ai_cores * vec_per_core; }

  /// The 910B4 configuration used throughout the paper's evaluation.
  static MachineConfig ascend_910b4() { return MachineConfig{}; }

  /// A single-AI-core configuration (used by unit tests and the
  /// single-core experiments of §4.1).
  static MachineConfig single_core() {
    MachineConfig c;
    c.num_ai_cores = 1;
    return c;
  }

  /// Copy of this config with a different AI-core count. Multi-device
  /// serving tests use it to build deliberately heterogeneous clusters
  /// (skewed per-device capacity) from one base description.
  MachineConfig with_ai_cores(int cores) const {
    MachineConfig c = *this;
    c.num_ai_cores = cores;
    return c;
  }
};

}  // namespace ascend::sim
