#include "sim/trace_export.hpp"

#include <fstream>
#include <ostream>

#include "common/check.hpp"

namespace ascend::sim {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

void export_chrome_trace(const Timeline& tl, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  // Process-name metadata per sub-core.
  for (std::size_t s = 0; s < tl.is_cube_subcore.size(); ++s) {
    if (!first) os << ",\n";
    first = false;
    const bool cube = tl.is_cube_subcore[s];
    os << "{\"ph\":\"M\",\"pid\":" << s
       << ",\"name\":\"process_name\",\"args\":{\"name\":\""
       << (cube ? "AIC" : "AIV") << " subcore " << s << "\"}}";
  }
  for (const auto& e : tl.events) {
    if (!first) os << ",\n";
    first = false;
    const double ts_us = e.start_s * 1e6;
    const double dur_us = (e.end_s - e.start_s) * 1e6;
    os << "{\"ph\":\"X\",\"pid\":" << e.subcore << ",\"tid\":"
       << static_cast<int>(e.engine) << ",\"name\":\"" << escape(e.name)
       << "\",\"cat\":\"" << engine_name(e.engine) << "\",\"ts\":" << ts_us
       << ",\"dur\":" << dur_us << ",\"args\":{\"bytes\":" << e.bytes
       << "}}";
  }
  os << "\n]}\n";
}

void export_chrome_trace_file(const Timeline& tl, const std::string& path) {
  std::ofstream f(path);
  ASCAN_CHECK(f.good(), "cannot open trace file " << path);
  export_chrome_trace(tl, f);
  ASCAN_CHECK(f.good(), "failed writing trace file " << path);
}

}  // namespace ascend::sim
