// Execution report produced by the timing pass of a kernel launch.
//
// All paper metrics derive from this: execution time, achieved bandwidth
// (the caller supplies the "useful" byte count — input read + output
// written — exactly as the paper reports GB/s), elements/s, and per-engine
// utilisation for diagnosing whether a kernel is cube-, vector-, MTE- or
// HBM-bound.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace ascend::sim {

struct Report {
  double time_s = 0;  ///< simulated end-to-end time (incl. launch overhead)
  int launches = 0;   ///< kernel launches aggregated into this report
  /// Tile-granular steps of a step-resumable (stepwise) launch aggregated
  /// into this report — 0 for a monolithic launch. A serving layer that
  /// drives an operator tile-by-tile (Session::cumsum_batched_begin/step/
  /// finish) stamps the step count here so occupancy/bandwidth accounting
  /// can distinguish "one big launch" from "N resumable slices".
  int steps = 0;

  std::uint64_t gm_read_bytes = 0;
  std::uint64_t gm_write_bytes = 0;
  std::uint64_t l2_hit_bytes = 0;

  double cube_busy_s = 0;    ///< summed over all AIC compute engines
  double vec_busy_s = 0;     ///< summed over all AIV compute engines
  double mte_busy_s = 0;     ///< summed over all MTE engines
  double scalar_busy_s = 0;  ///< summed over all scalar units
  double hbm_busy_s = 0;     ///< time the HBM had at least one active flow

  std::uint64_t num_ops = 0;

  // --- Fault & resilience counters (see sim/fault.hpp) ----------------------
  std::uint64_t mte_faults = 0;   ///< transient MTE/DMA failures (aborted)
  std::uint64_t ecc_single = 0;   ///< correctable HBM ECC events (scrubbed)
  std::uint64_t ecc_double = 0;   ///< uncorrectable HBM ECC events (aborted)
  std::uint64_t hangs = 0;        ///< injected kernel hangs (watchdog fired)
  std::uint64_t throttled_subcores = 0;  ///< straggler sub-cores, per launch
  std::uint32_t retries = 0;         ///< failed attempts that were relaunched
  std::uint32_t excluded_cores = 0;  ///< AI cores taken offline to recover
  double backoff_s = 0;  ///< simulated retry backoff included in time_s

  bool any_faults() const {
    return mte_faults + ecc_single + ecc_double + hangs +
               throttled_subcores + retries + excluded_cores >
           0;
  }

  /// Aggregates sequentially launched kernels (times add).
  Report& operator+=(const Report& o) {
    time_s += o.time_s;
    launches += o.launches;
    steps += o.steps;
    gm_read_bytes += o.gm_read_bytes;
    gm_write_bytes += o.gm_write_bytes;
    l2_hit_bytes += o.l2_hit_bytes;
    cube_busy_s += o.cube_busy_s;
    vec_busy_s += o.vec_busy_s;
    mte_busy_s += o.mte_busy_s;
    scalar_busy_s += o.scalar_busy_s;
    hbm_busy_s += o.hbm_busy_s;
    num_ops += o.num_ops;
    mte_faults += o.mte_faults;
    ecc_single += o.ecc_single;
    ecc_double += o.ecc_double;
    hangs += o.hangs;
    throttled_subcores += o.throttled_subcores;
    retries += o.retries;
    excluded_cores += o.excluded_cores;
    backoff_s += o.backoff_s;
    return *this;
  }

  /// Achieved bandwidth given the useful (paper-reported) bytes.
  double bandwidth(std::uint64_t useful_bytes) const {
    return time_s > 0 ? static_cast<double>(useful_bytes) / time_s : 0.0;
  }
  /// Elements per second for an n-element operator.
  double elements_per_s(std::uint64_t n) const {
    return time_s > 0 ? static_cast<double>(n) / time_s : 0.0;
  }

  std::string summary() const;
};

std::ostream& operator<<(std::ostream& os, const Report& r);

/// Bit-exact equality over every field (times compared with ==, which is
/// exact for the deterministic scheduler). Used by the launch-shape timing
/// cache to detect that a launch shape's Report has converged, and by the
/// determinism tests comparing executors.
inline bool identical(const Report& a, const Report& b) {
  return a.time_s == b.time_s && a.launches == b.launches &&
         a.steps == b.steps && a.gm_read_bytes == b.gm_read_bytes &&
         a.gm_write_bytes == b.gm_write_bytes &&
         a.l2_hit_bytes == b.l2_hit_bytes && a.cube_busy_s == b.cube_busy_s &&
         a.vec_busy_s == b.vec_busy_s && a.mte_busy_s == b.mte_busy_s &&
         a.scalar_busy_s == b.scalar_busy_s && a.hbm_busy_s == b.hbm_busy_s &&
         a.num_ops == b.num_ops && a.mte_faults == b.mte_faults &&
         a.ecc_single == b.ecc_single && a.ecc_double == b.ecc_double &&
         a.hangs == b.hangs && a.throttled_subcores == b.throttled_subcores &&
         a.retries == b.retries && a.excluded_cores == b.excluded_cores &&
         a.backoff_s == b.backoff_s;
}

}  // namespace ascend::sim
