// Host execution engine primitives: the persistent sub-core worker pool
// that replaces thread-per-launch spawning, and the launch-shape timing
// cache that lets constant-shape repeated launches skip the discrete-event
// replay.
//
// Motivation (see DESIGN.md "Host execution engine"): every kernel launch
// used to create and join up to 60 fresh std::threads and re-allocate every
// KernelContext and scheduler scratch structure. Multi-launch workloads
// (radix sort, batched top-p sampling) pay that cost thousands of times per
// figure, making the *host* the bottleneck of the machine model. The pieces
// here keep that state alive across launches without changing any simulated
// result: pooled execution is bit-identical to spawned execution, and a
// timing-cache hit returns a Report that a replay would have reproduced
// bit-exactly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/config.hpp"
#include "sim/report.hpp"
#include "sim/trace.hpp"

namespace ascend::sim {

/// Resolves MachineConfig::executor: Auto consults the ASCAN_EXECUTOR
/// environment variable ("spawn" or "pool") and defaults to Pool.
ExecutorMode resolve_executor_mode(ExecutorMode requested);

/// Resolves MachineConfig::timing_cache: the ASCAN_TIMING_CACHE environment
/// variable ("1"/"on" or "0"/"off") overrides the config field when set.
bool resolve_timing_cache(bool requested);

/// Persistent pool of sub-core workers. One launch dispatches `n` bodies,
/// each of which may block on launch barriers/flags until every sibling has
/// arrived — so tasks are assigned statically, one worker per sub-core
/// index, and the pool is sized to the largest launch seen (a full MIX
/// launch may block all 60 sub-cores simultaneously; fewer workers would
/// deadlock the barrier). The pool grows once per high-water mark and never
/// shrinks mid-launch; workers are joined on destruction.
///
/// Handoff discipline (see DESIGN.md "Host hot path"): a full-width launch
/// used to move ~60 workers through the pool mutex twice per launch — once
/// to read the dispatched body under the lock and once to bump the done
/// count — a serial convoy of hundreds of futex transitions per launch
/// that dominated host wall time once batch formation itself went
/// lock-free. Dispatch is now a single release-store of a packed
/// generation|width word that workers wait on directly
/// (std::atomic::wait), and completion is an atomic countdown whose last
/// decrementer flips a separate per-generation done flag — the dispatcher
/// sleeps and wakes at most once per launch and no worker ever touches a
/// mutex on the launch path.
class SubcorePool {
 public:
  SubcorePool() = default;
  ~SubcorePool();

  SubcorePool(const SubcorePool&) = delete;
  SubcorePool& operator=(const SubcorePool&) = delete;

  /// Runs body(0) .. body(n-1) concurrently (worker i runs body(i)) and
  /// blocks until all of them returned. Bodies must not re-enter run().
  /// Exceptions must be handled inside `body` (the launch wrapper already
  /// catches per-sub-core and poisons the launch barrier).
  void run(int n, const std::function<void(int)>& body);

  /// Workers currently alive (the high-water mark of launch widths).
  int workers() const;

 private:
  void ensure_workers(int n);
  void worker_loop(int worker_idx, std::uint32_t start_word);

  /// word_ layout: [generation:23][stop:1][width:8]. One atomic word
  /// carries everything a worker may read without a launch assignment, so
  /// a straggler from an earlier, wider launch (worker_idx >= width) never
  /// races the dispatcher's plain writes to body_ — it reads the word,
  /// sees it is not assigned, and goes back to waiting. Generation
  /// wraparound (2^23 launches) is harmless: every launch notifies all
  /// waiters, so no worker can sleep across a full wrap unwoken.
  static constexpr std::uint32_t kWidthMask = 0xffu;
  static constexpr std::uint32_t kStopBit = 0x100u;
  static constexpr std::uint32_t kGenOne = 0x200u;
  static constexpr std::uint32_t gen_of(std::uint32_t w) {
    return w & ~(kWidthMask | kStopBit);
  }

  // Hot atomics on separate cache lines: workers hammer done_ with RMWs at
  // launch end while later sleepers poll word_.
  alignas(64) std::atomic<std::uint32_t> word_{0};
  alignas(64) std::atomic<std::uint32_t> done_{0};
  /// Generation tag of the last fully-completed launch. The dispatcher
  /// waits on this, not on done_, so the n-1 intermediate countdown steps
  /// never wake it.
  alignas(64) std::atomic<std::uint32_t> done_flag_{0};
  /// Dispatched body. Written by the (single) dispatcher before the word_
  /// release-store; read only by workers assigned to the current launch,
  /// which acquire-loaded the new word first.
  const std::function<void(int)>* body_ = nullptr;
  mutable std::mutex threads_mu_;  ///< guards threads_ growth vs workers()
  std::vector<std::thread> threads_;
};

/// Interleaving-independent fingerprint of a KernelTrace. Op ids are
/// assigned by a shared atomic counter and therefore differ between runs of
/// the same kernel; the fingerprint canonicalises every id to
/// (sub-core, position-within-sub-core) before hashing so identical launches
/// hash identically regardless of host-thread timing. `id_scratch` is reused
/// between calls to avoid an allocation per launch.
std::uint64_t trace_fingerprint(const KernelTrace& trace,
                                std::vector<std::uint64_t>& id_scratch);

/// Identity of a launch shape for the timing cache. Two launches with equal
/// keys replay to bit-identical Reports provided the L2 starts in the same
/// state — which is what the generation check below enforces.
struct LaunchKey {
  std::string name;            ///< LaunchSpec::name
  int mode = 0;                ///< LaunchMode as int
  int block_dim = 0;
  std::uint64_t fingerprint = 0;  ///< trace_fingerprint of the launch
  std::uint64_t watchdog_bits = 0;  ///< effective deadline, bit pattern

  bool operator==(const LaunchKey& o) const {
    return mode == o.mode && block_dim == o.block_dim &&
           fingerprint == o.fingerprint && watchdog_bits == o.watchdog_bits &&
           name == o.name;
  }
};

struct LaunchKeyHash {
  std::size_t operator()(const LaunchKey& k) const;
};

/// Opt-in memo of Report results for repeated identical launches.
///
/// Soundness rule (the "L2 generation" check): a cached Report may be
/// returned only when (a) the entry has been observed *stable* — two
/// consecutive replays of the same key produced bit-identical Reports, i.e.
/// the L2 has converged to its steady state for this launch shape — and
/// (b) nothing has perturbed the L2 since the stable observation: no other
/// replay ran and the L2 was not reset (`generation` folds both in). A hit
/// therefore leaves the device in a state where replaying would have
/// changed nothing observable; skipping the replay is bit-exact.
///
/// Callers must bypass the cache entirely when a fault injector is armed
/// (fault decisions are keyed on the per-attempt launch ordinal) or when a
/// Timeline is requested (a hit has no schedule to export).
class TimingCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;   ///< cache-eligible launches
    std::uint64_t hits = 0;      ///< replays skipped
    std::uint64_t misses = 0;    ///< replays run while the cache was on
    std::uint64_t bypasses = 0;  ///< launches ineligible (fault/timeline)
  };

  /// Returns the cached Report when the entry is stable and `generation`
  /// matches the stable observation; nullptr forces a replay.
  const Report* lookup(const LaunchKey& key, std::uint64_t generation);

  /// Records a replay result. `gen_before`/`gen_after` are the generation
  /// surrounding the replay; an entry becomes stable when the same key
  /// replays twice back-to-back (gen_before equals the previous entry's
  /// generation) with bit-identical Reports.
  void record(const LaunchKey& key, const Report& rep,
              std::uint64_t gen_before, std::uint64_t gen_after);

  void note_bypass() { ++stats_.bypasses; }
  const Stats& stats() const { return stats_; }
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Report report;
    std::uint64_t generation = 0;  ///< generation right after the recording
    bool stable = false;           ///< two consecutive identical replays seen
  };

  std::unordered_map<LaunchKey, Entry, LaunchKeyHash> entries_;
  Stats stats_;
};

}  // namespace ascend::sim
