#include "sim/l2_cache.hpp"

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace ascend::sim {

L2Cache::L2Cache(std::uint64_t capacity_bytes, std::uint64_t line_bytes,
                 int ways)
    : line_bytes_(line_bytes), ways_(ways) {
  ASCAN_CHECK(is_pow2(line_bytes), "L2 line size must be a power of two");
  ASCAN_CHECK(ways >= 1);
  std::uint64_t lines = capacity_bytes / line_bytes;
  num_sets_ = next_pow2(lines / static_cast<std::uint64_t>(ways));
  if (num_sets_ == 0) num_sets_ = 1;
  sets_.assign(num_sets_ * static_cast<std::uint64_t>(ways_), Way{});
}

L2Access L2Cache::access(std::uint64_t addr, std::uint64_t bytes,
                         bool is_write) {
  L2Access result;
  if (bytes == 0) return result;
  const std::uint64_t first = addr / line_bytes_;
  const std::uint64_t last = (addr + bytes - 1) / line_bytes_;
  for (std::uint64_t line = first; line <= last; ++line) {
    const std::uint64_t set = line & (num_sets_ - 1);
    Way* base = &sets_[set * static_cast<std::uint64_t>(ways_)];
    ++tick_;
    int victim = 0;
    bool hit = false;
    for (int w = 0; w < ways_; ++w) {
      if (base[w].tag == line) {
        base[w].lru = tick_;
        if (is_write) base[w].dirty = true;
        hit = true;
        break;
      }
      if (base[w].lru < base[victim].lru) victim = w;
    }
    if (hit) {
      ++hit_lines_;
      result.hit_bytes += line_bytes_;
    } else {
      ++miss_lines_;
      result.miss_bytes += line_bytes_;
      if (base[victim].dirty && base[victim].tag != ~0ull) {
        result.writeback_bytes += line_bytes_;
      }
      base[victim].tag = line;
      base[victim].lru = tick_;
      base[victim].dirty = is_write;
    }
  }
  // Normalise the first/last partial lines so hit+miss == bytes.
  const std::uint64_t covered = (last - first + 1) * line_bytes_;
  if (covered > bytes) {
    const double scale =
        static_cast<double>(bytes) / static_cast<double>(covered);
    result.hit_bytes =
        static_cast<std::uint64_t>(static_cast<double>(result.hit_bytes) * scale);
    result.miss_bytes = bytes - result.hit_bytes;
  }
  return result;
}

void L2Cache::reset() {
  for (auto& w : sets_) w = Way{};
  tick_ = hit_lines_ = miss_lines_ = 0;
  ++generation_;
}

}  // namespace ascend::sim
