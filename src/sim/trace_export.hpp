// chrome://tracing (Perfetto-compatible) export of a captured Timeline:
// one process row per sub-core (named AIC/AIV), one thread row per engine
// (scalar, MTE1/2/3, compute), complete ("X") events in microseconds.
//
// Open the produced JSON in chrome://tracing or https://ui.perfetto.dev to
// see the pipeline overlap the simulator computed — double buffering,
// cube/vector parallelism, SyncAll alignment, HBM contention stretches.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/timeline.hpp"

namespace ascend::sim {

/// Writes the timeline as Chrome Trace Event JSON.
void export_chrome_trace(const Timeline& tl, std::ostream& os);

/// Convenience: writes to a file; throws on I/O failure.
void export_chrome_trace_file(const Timeline& tl, const std::string& path);

}  // namespace ascend::sim
