// Optional per-op timeline capture: when a Timeline is attached to a
// launch, the scheduler records every op's scheduled interval so the
// execution can be inspected (and exported to chrome://tracing — see
// trace_export.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace ascend::sim {

struct TimelineEvent {
  std::string name;       ///< op tag ("mmad", "datacopy.in", ...)
  std::uint32_t subcore;  ///< global sub-core index
  EngineKind engine;
  TraceOp::Kind kind;
  double start_s;
  double end_s;
  std::uint64_t bytes;  ///< for transfers
};

struct Timeline {
  std::vector<TimelineEvent> events;
  std::vector<bool> is_cube_subcore;
  double total_s = 0;
};

}  // namespace ascend::sim
