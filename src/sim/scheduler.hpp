// Discrete-event scheduler: replays a KernelTrace against the machine model
// and produces the simulated execution time.
//
// Semantics:
//  * Each (sub-core, engine) pair is an in-order FIFO: an op starts only
//    when it is the engine's oldest unstarted op AND all its dependency
//    edges have completed. This mirrors the per-engine instruction queues of
//    the DaVinci core (§3.1 of the paper): MTEs and compute engines run in
//    parallel, synchronised explicitly.
//  * Kind::Compute ops occupy their engine for `cycles / clock`.
//  * Kind::Transfer ops stream through the HbmArbiter; their duration is
//    setup + fluid completion under shared-bandwidth arbitration, with the
//    L2 model deciding the HBM/L2 byte split in deterministic start order.
//  * Kind::Barrier ops are grouped by epoch; every sub-core's barrier
//    completes simultaneously once all of them are ready (SyncAll).
//  * Launch overhead is added before time zero's first op.
//
// Determinism: ties are broken by op id, the L2 is queried in event order,
// and the trace itself is independent of host-thread interleaving.
#pragma once

#include <memory>

#include "sim/config.hpp"
#include "sim/fault.hpp"
#include "sim/l2_cache.hpp"
#include "sim/report.hpp"
#include "sim/timeline.hpp"
#include "sim/trace.hpp"

namespace ascend::sim {

/// Reusable scratch arenas for Scheduler::run. One launch used to allocate
/// O(num_ops) heap blocks (per-op dependent lists, hash maps for barriers
/// and in-flight flows, per-event hot lists); keeping one SchedScratch
/// alive across launches turns all of that into cleared-and-reused flat
/// vectors. Purely an allocation cache: results are bit-identical with and
/// without it. Not thread-safe — one scratch per device.
class SchedScratch {
 public:
  SchedScratch();
  ~SchedScratch();
  SchedScratch(const SchedScratch&) = delete;
  SchedScratch& operator=(const SchedScratch&) = delete;

 private:
  friend class Scheduler;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Fault-injection and watchdog parameters for one scheduler run.
struct SchedulerFaults {
  /// Fault decisions for this launch; nullptr = fault-free execution.
  FaultInjector* injector = nullptr;
  /// Base simulated-time deadline for the launch; 0 falls back to
  /// cfg.watchdog_s, and a final value of 0 disables the watchdog. The
  /// effective deadline additionally grows with the launch's own trace
  /// shape (cfg.watchdog_scale), so one flat constant cannot misclassify
  /// giant-but-healthy launches as hangs.
  double watchdog_s = 0;
};

class Scheduler {
 public:
  /// `l2` persists across launches of one device so inter-kernel reuse is
  /// modelled (pass nullptr to disable the L2).
  Scheduler(const MachineConfig& cfg, L2Cache* l2) : cfg_(cfg), l2_(l2) {}

  /// Computes the simulated report for one kernel launch. When `timeline`
  /// is non-null, every op's scheduled interval is recorded into it.
  ///
  /// With an armed injector in `faults`, transfers may scrub correctable
  /// ECC events in-line (timing penalty), sub-cores may be throttled, and
  /// fatal faults abort the run by throwing TransferError / EccError /
  /// TimeoutError carrying the partial Report of the aborted attempt.
  ///
  /// `scratch` (optional) recycles the run's working memory across
  /// launches; pass the device-owned instance on hot paths.
  Report run(const KernelTrace& trace, Timeline* timeline = nullptr,
             const SchedulerFaults& faults = {},
             SchedScratch* scratch = nullptr);

 private:
  const MachineConfig& cfg_;
  L2Cache* l2_;
};

}  // namespace ascend::sim
