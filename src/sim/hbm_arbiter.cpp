#include "sim/hbm_arbiter.hpp"

#include <algorithm>
#include <cmath>

namespace ascend::sim {

namespace {
constexpr double kEps = 1e-15;      // seconds; completion-time tolerance
constexpr double kByteEps = 1e-6;   // bytes considered "done"
}  // namespace

std::uint32_t HbmArbiter::add_flow(double now, double bytes, double rate_cap,
                                   double hbm_frac, double l2_frac) {
  ASCAN_ASSERT(bytes > 0 && rate_cap > 0);
  advance_to(now);
  Flow f;
  f.remaining = bytes;
  f.cap = rate_cap;
  f.hbm_frac = std::max(hbm_frac, 0.0);
  f.l2_frac = std::max(l2_frac, 0.0);
  f.active = true;
  std::uint32_t handle;
  // Reuse finished slots to keep the vector compact across long kernels.
  if (!free_slots_cached_.empty()) {
    handle = free_slots_cached_.back();
    free_slots_cached_.pop_back();
    flows_[handle] = f;
  } else {
    handle = static_cast<std::uint32_t>(flows_.size());
    flows_.push_back(f);
  }
  // Keep active_slots_ sorted so every sweep visits flows in ascending slot
  // order (bit-identical FP summation vs. the full-vector scan it replaces).
  active_slots_.insert(
      std::lower_bound(active_slots_.begin(), active_slots_.end(), handle),
      handle);
  if (f.hbm_frac > 0.0) ++hbm_active_;
  recompute_rates();
  return handle;
}

void HbmArbiter::advance_to(double now) {
  const double dt = now - last_update_;
  if (dt <= 0) {
    last_update_ = std::max(last_update_, now);
    return;
  }
  for (std::uint32_t i : active_slots_) {
    Flow& f = flows_[i];
    f.remaining -= f.rate * dt;
  }
  // Assigned rates are strictly positive, so the HBM pool is busy exactly
  // while some active flow demands HBM bytes.
  if (hbm_active_ > 0) hbm_busy_time_ += dt;
  last_update_ = now;
}

const std::vector<std::uint32_t>& HbmArbiter::advance_and_pop(double now) {
  advance_to(now);
  done_.clear();
  std::size_t keep = 0;
  for (std::size_t k = 0; k < active_slots_.size(); ++k) {
    const std::uint32_t i = active_slots_[k];
    Flow& f = flows_[i];
    if (f.remaining <= kByteEps) {
      f.active = false;
      if (f.hbm_frac > 0.0) --hbm_active_;
      done_.push_back(i);
      free_slots_cached_.push_back(i);
    } else {
      active_slots_[keep++] = i;  // compaction preserves ascending order
    }
  }
  if (!done_.empty()) {
    active_slots_.resize(keep);
    recompute_rates();
  } else if (active_slots_.empty()) {
    recompute_rates();
  }
  return done_;
}

void HbmArbiter::recompute_rates() {
  if (active_slots_.empty()) {
    next_completion_ = kInf;
    return;
  }
  // Start at cap, then repeatedly throttle the pool that is oversubscribed.
  for (std::uint32_t i : active_slots_) {
    flows_[i].rate = flows_[i].cap;
  }
  auto throttle_pool = [&](double limit, double Flow::* frac) {
    double use = 0;
    for (std::uint32_t i : active_slots_) {
      const Flow& f = flows_[i];
      use += f.rate * f.*frac;
    }
    if (use <= limit * (1 + 1e-9)) return false;
    const double scale = limit / use;
    for (std::uint32_t i : active_slots_) {
      Flow& f = flows_[i];
      if (f.*frac > 0.0) f.rate *= scale;
    }
    return true;
  };
  for (int iter = 0; iter < 16; ++iter) {
    bool changed = throttle_pool(hbm_bw_, &Flow::hbm_frac);
    changed = throttle_pool(l2_bw_, &Flow::l2_frac) || changed;
    if (!changed) break;
  }
  next_completion_ = kInf;
  for (std::uint32_t i : active_slots_) {
    const Flow& f = flows_[i];
    ASCAN_ASSERT(f.rate > 0);
    next_completion_ =
        std::min(next_completion_, last_update_ + f.remaining / f.rate + kEps);
  }
}

}  // namespace ascend::sim
