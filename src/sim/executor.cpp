#include "sim/executor.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

namespace ascend::sim {

// ---------------------------------------------------------------------------
// Mode resolution

namespace {

const char* env_lower(const char* name, std::string& out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return nullptr;
  out.assign(v);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out.c_str();
}

}  // namespace

ExecutorMode resolve_executor_mode(ExecutorMode requested) {
  if (requested != ExecutorMode::Auto) return requested;
  std::string buf;
  if (env_lower("ASCAN_EXECUTOR", buf) != nullptr) {
    if (buf == "spawn") return ExecutorMode::Spawn;
    if (buf == "pool") return ExecutorMode::Pool;
    throw Error("ASCAN_EXECUTOR must be 'spawn' or 'pool', got '" + buf + "'");
  }
  return ExecutorMode::Pool;
}

bool resolve_timing_cache(bool requested) {
  std::string buf;
  if (env_lower("ASCAN_TIMING_CACHE", buf) != nullptr) {
    if (buf == "1" || buf == "on" || buf == "true") return true;
    if (buf == "0" || buf == "off" || buf == "false") return false;
    throw Error("ASCAN_TIMING_CACHE must be 0/1/on/off, got '" + buf + "'");
  }
  return requested;
}

// ---------------------------------------------------------------------------
// SubcorePool

SubcorePool::~SubcorePool() {
  word_.fetch_or(kStopBit, std::memory_order_release);
  word_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int SubcorePool::workers() const {
  std::lock_guard<std::mutex> lk(threads_mu_);
  return static_cast<int>(threads_.size());
}

void SubcorePool::ensure_workers(int n) {
  std::lock_guard<std::mutex> lk(threads_mu_);
  while (static_cast<int>(threads_.size()) < n) {
    const int idx = static_cast<int>(threads_.size());
    // A worker spawned now must ignore every launch that already passed: it
    // observes the current word as its starting point. run() publishes this
    // launch's word only after ensure_workers returns, so the newcomer
    // still sees that as a change and participates.
    threads_.emplace_back(&SubcorePool::worker_loop, this, idx,
                          word_.load(std::memory_order_relaxed));
  }
}

void SubcorePool::run(int n, const std::function<void(int)>& body) {
  ASCAN_ASSERT(n > 0 && n <= static_cast<int>(kWidthMask),
               "SubcorePool::run: launch width exceeds the packed word");
  ASCAN_ASSERT(body_ == nullptr, "SubcorePool::run is not reentrant");
  ensure_workers(n);
  body_ = &body;
  done_.store(0, std::memory_order_relaxed);
  const std::uint32_t prev = word_.load(std::memory_order_relaxed);
  const std::uint32_t next =
      (gen_of(prev) + kGenOne) | static_cast<std::uint32_t>(n);
  // The release-store publishes body_ and the done_ reset to every worker
  // that acquire-loads the new word.
  word_.store(next, std::memory_order_release);
  word_.notify_all();
  // Wait for the whole launch on the done flag, not the countdown: only
  // the last worker's store changes it, so the intermediate n-1 decrements
  // cannot wake the dispatcher.
  const std::uint32_t gen = gen_of(next);
  for (std::uint32_t f = done_flag_.load(std::memory_order_acquire);
       f != gen; f = done_flag_.load(std::memory_order_acquire)) {
    done_flag_.wait(f, std::memory_order_acquire);
  }
  body_ = nullptr;
}

void SubcorePool::worker_loop(int worker_idx, std::uint32_t start_word) {
  std::uint32_t seen = start_word;
  for (;;) {
    std::uint32_t w = word_.load(std::memory_order_acquire);
    while (w == seen) {
      word_.wait(w, std::memory_order_acquire);
      w = word_.load(std::memory_order_acquire);
    }
    if ((w & kStopBit) != 0) return;
    seen = w;
    const int n = static_cast<int>(w & kWidthMask);
    if (worker_idx >= n) continue;  // not assigned; never touch body_/done_
    (*body_)(worker_idx);
    // acq_rel so the release sequence on done_ chains every sibling's body
    // effects into the last increment, whose done_flag_ release-store the
    // dispatcher acquires — run() returns with all n bodies visible.
    if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        static_cast<std::uint32_t>(n)) {
      done_flag_.store(gen_of(w), std::memory_order_release);
      done_flag_.notify_one();
    }
  }
}

// ---------------------------------------------------------------------------
// Trace fingerprint

namespace {

inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // splitmix64 finalisation step as the combine function.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  std::uint64_t z = h;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::uint64_t double_bits(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

}  // namespace

std::uint64_t trace_fingerprint(const KernelTrace& trace,
                                std::vector<std::uint64_t>& id_scratch) {
  // Pass 1: canonical id of every op = (sub-core << 32) | position. Op ids
  // come from a shared atomic counter, so their absolute values depend on
  // host-thread interleaving; canonical ids do not.
  id_scratch.assign(static_cast<std::size_t>(trace.max_op_id) + 1, 0);
  for (std::size_t s = 0; s < trace.per_subcore.size(); ++s) {
    const auto& ops = trace.per_subcore[s];
    for (std::size_t i = 0; i < ops.size(); ++i) {
      id_scratch[ops[i].id] = (static_cast<std::uint64_t>(s) << 32) |
                              static_cast<std::uint64_t>(i + 1);
    }
  }

  std::uint64_t h = mix(0x243f6a8885a308d3ull, trace.per_subcore.size());
  for (std::size_t s = 0; s < trace.per_subcore.size(); ++s) {
    const bool cube =
        s < trace.is_cube_subcore.size() && trace.is_cube_subcore[s];
    h = mix(h, (static_cast<std::uint64_t>(s) << 1) | (cube ? 1 : 0));
    for (const TraceOp& op : trace.per_subcore[s]) {
      h = mix(h, (static_cast<std::uint64_t>(op.engine) << 8) |
                     static_cast<std::uint64_t>(op.kind));
      h = mix(h, double_bits(op.cycles));
      h = mix(h, op.bytes);
      h = mix(h, op.gm_addr);
      h = mix(h, (static_cast<std::uint64_t>(op.barrier_epoch) << 1) |
                     (op.gm_write ? 1 : 0));
      h = mix(h, op.num_deps);
      for (std::uint8_t d = 0; d < op.num_deps; ++d) {
        h = mix(h, id_scratch[op.deps[d]]);
      }
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// TimingCache

std::size_t LaunchKeyHash::operator()(const LaunchKey& k) const {
  std::uint64_t h = std::hash<std::string>{}(k.name);
  h = mix(h, (static_cast<std::uint64_t>(k.mode) << 32) |
                 static_cast<std::uint32_t>(k.block_dim));
  h = mix(h, k.fingerprint);
  h = mix(h, k.watchdog_bits);
  return static_cast<std::size_t>(h);
}

const Report* TimingCache::lookup(const LaunchKey& key,
                                  std::uint64_t generation) {
  ++stats_.lookups;
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.stable &&
      it->second.generation == generation) {
    ++stats_.hits;
    return &it->second.report;
  }
  return nullptr;
}

void TimingCache::record(const LaunchKey& key, const Report& rep,
                         std::uint64_t gen_before, std::uint64_t gen_after) {
  ++stats_.misses;
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.generation == gen_before &&
      identical(it->second.report, rep)) {
    // The same shape replayed twice in a row with nothing perturbing the L2
    // in between, and the Reports are bit-identical: the L2 has reached its
    // steady state for this shape. Future occurrences may skip the replay.
    it->second.stable = true;
    it->second.generation = gen_after;
    return;
  }
  entries_[key] = Entry{rep, gen_after, false};
}

}  // namespace ascend::sim
