// Timed operation traces recorded by the functional pass and replayed by the
// discrete-event scheduler.
//
// Every AscendC intrinsic executed during the functional pass appends one
// TraceOp describing *which engine* it occupies, *how long* it runs (compute
// cycles, or bytes for GM transfers that are arbitrated dynamically), and
// *which earlier ops it must wait for* (queue Enque/Deque edges, buffer
// hazards, scalar read-backs, cross-core flags). The scheduler then derives
// the kernel's simulated execution time from the trace alone, so simulated
// time is deterministic regardless of host-thread interleaving.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace ascend::sim {

/// Hardware engines inside one sub-core. An AIC sub-core uses Mte2 (GM->L1/L0),
/// Mte1 (L1->L0), Compute (the cube engine) and Mte3 (Fixpipe, L0C->GM); an AIV
/// sub-core uses Mte2 (GM->UB), Compute (the vector engine) and Mte3 (UB->GM).
/// Scalar is the in-order dispatch/control unit of either kind.
enum class EngineKind : std::uint8_t { Scalar, Mte1, Mte2, Mte3, Compute };
inline constexpr int kNumEngineKinds = 5;

constexpr const char* engine_name(EngineKind k) {
  switch (k) {
    case EngineKind::Scalar: return "scalar";
    case EngineKind::Mte1: return "mte1";
    case EngineKind::Mte2: return "mte2";
    case EngineKind::Mte3: return "mte3";
    case EngineKind::Compute: return "compute";
  }
  return "?";
}

struct TraceOp {
  enum class Kind : std::uint8_t {
    Compute,   ///< fixed-duration work on an engine
    Transfer,  ///< GM transfer; duration decided by the HBM arbiter
    FlagSet,   ///< cross-core flag write (tiny, but a dependency anchor)
    FlagWait,  ///< blocks until the matching FlagSet completes
    Barrier,   ///< SyncAll: one per sub-core, grouped by epoch
  };

  std::uint32_t id = 0;       ///< globally unique, 1-based
  std::uint32_t subcore = 0;  ///< global sub-core index
  EngineKind engine = EngineKind::Scalar;
  Kind kind = Kind::Compute;
  double cycles = 0;          ///< compute duration / transfer setup cost
  std::uint64_t bytes = 0;    ///< GM bytes for Kind::Transfer
  std::uint64_t gm_addr = 0;  ///< GM address (L2 modelling); 0 if n/a
  bool gm_write = false;      ///< direction of a Transfer
  std::uint32_t barrier_epoch = 0;

  // Dependency edges; small and bounded by construction (per-operand
  // hazards, scalar serialisation, flags). The widest consumer is the
  // multi-operand merge intrinsic.
  std::array<std::uint32_t, 12> deps{};
  std::uint8_t num_deps = 0;

  const char* tag = "";

  void add_dep(std::uint32_t dep_id) {
    if (dep_id == 0) return;
    for (std::uint8_t i = 0; i < num_deps; ++i) {
      if (deps[i] == dep_id) return;
    }
    ASCAN_ASSERT(num_deps < deps.size(), "too many dependencies on op " << tag);
    deps[num_deps++] = dep_id;
  }
};

/// Per-sub-core trace under construction. Each sub-core's functional thread
/// owns exactly one TraceBuilder; only the id counter is shared.
class TraceBuilder {
 public:
  TraceBuilder(std::uint32_t subcore, std::atomic<std::uint32_t>* id_counter)
      : subcore_(subcore), id_counter_(id_counter) {}

  /// Rebinds a pooled builder to a new launch, clearing the op list but
  /// keeping its capacity (the per-launch allocation this avoids is the
  /// point of pooling kernel contexts).
  void reset(std::uint32_t subcore, std::atomic<std::uint32_t>* id_counter) {
    subcore_ = subcore;
    id_counter_ = id_counter;
    serial_anchor_ = 0;
    ops_.clear();
  }

  /// Appends an op, assigning its global id. Serialising context (scalar
  /// read-backs, flag waits, barriers) is added as a dependency
  /// automatically; pass extra explicit deps via TraceOp::add_dep before or
  /// after. Returns the op id.
  std::uint32_t push(TraceOp op) {
    op.id = id_counter_->fetch_add(1, std::memory_order_relaxed);
    op.subcore = subcore_;
    op.add_dep(serial_anchor_);
    ops_.push_back(op);
    return op.id;
  }

  /// Makes every subsequently pushed op depend on `op_id` (used after
  /// scalar read-backs, flag waits and barriers, which stall the in-order
  /// dispatch of the sub-core).
  void set_serial_anchor(std::uint32_t op_id) { serial_anchor_ = op_id; }
  std::uint32_t serial_anchor() const { return serial_anchor_; }

  /// Adds a dependency onto the most recently pushed op (e.g. linking a
  /// consumer recorded just now to a producer id discovered afterwards).
  void add_dep_to_last(std::uint32_t dep_id) {
    ASCAN_ASSERT(!ops_.empty());
    ops_.back().add_dep(dep_id);
  }

  std::uint32_t last_id() const { return ops_.empty() ? 0 : ops_.back().id; }
  const std::vector<TraceOp>& ops() const { return ops_; }
  std::vector<TraceOp>& mutable_ops() { return ops_; }
  std::uint32_t subcore() const { return subcore_; }

 private:
  std::uint32_t subcore_;
  std::atomic<std::uint32_t>* id_counter_;
  std::uint32_t serial_anchor_ = 0;
  std::vector<TraceOp> ops_;
};

/// The merged result of a functional pass: one op list per sub-core.
struct KernelTrace {
  std::vector<std::vector<TraceOp>> per_subcore;
  std::vector<bool> is_cube_subcore;  ///< per-sub-core engine classification
  std::uint32_t max_op_id = 0;

  std::size_t total_ops() const {
    std::size_t n = 0;
    for (const auto& v : per_subcore) n += v.size();
    return n;
  }
};

}  // namespace ascend::sim
