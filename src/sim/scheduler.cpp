#include "sim/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <sstream>
#include <vector>

#include "common/math_util.hpp"
#include "sim/hbm_arbiter.hpp"

namespace ascend::sim {

namespace {
constexpr double kInf = 1e300;

struct OpState {
  const TraceOp* op = nullptr;
  std::uint32_t engine = 0;        // dense engine index
  std::uint32_t pending_deps = 0;  // explicit edges not yet finished
  double start = 0;
  double finish = -1;  // <0: not finished
  bool started = false;
  bool engine_released = false;
};
}  // namespace

// Every per-launch working structure of the hot loop lives here so a
// persistent SchedScratch turns one launch's O(num_ops) heap churn (per-op
// dependent lists, hash maps, per-event hot lists) into vector reuse.
// The ready-queue design: each dense engine index owns an in-order FIFO of
// its op ids with a head cursor (`fifo_head`) marking the oldest unstarted
// op; an engine enters `hot` only when something that could unblock its
// head happened (engine freed, or a dependency of some queued op finished
// — tracked by the incremental `pending_deps` counters). The main loop
// never rescans FIFOs.
struct SchedScratch::Impl {
  std::vector<OpState> st;
  // Per-engine FIFOs: outer vector sized to num_engines, inner vectors
  // cleared per launch but keeping their capacity.
  std::vector<std::vector<std::uint32_t>> fifo;
  std::vector<std::uint32_t> fifo_head;
  std::vector<double> engine_free;
  std::vector<double> engine_busy;
  // Dependents in CSR form (replaces a vector-of-vectors that cost one
  // heap allocation per op with outgoing edges).
  std::vector<std::uint32_t> dep_offsets;
  std::vector<std::uint32_t> dep_edges;
  std::vector<std::uint32_t> dep_fill;
  // Barrier groups in CSR form, indexed by epoch (replaces two hash maps).
  std::vector<std::uint32_t> barrier_offsets;
  std::vector<std::uint32_t> barrier_members;
  std::vector<std::uint32_t> barrier_started;
  std::vector<std::uint32_t> barrier_fill;
  // In-flight GM transfers: flow handle -> op id (replaces a hash map; the
  // arbiter hands out compact slot indices).
  std::vector<std::uint32_t> flow_to_op;
  // Engines to re-examine, double-buffered across loop iterations.
  std::vector<std::uint32_t> hot_engines;
  std::vector<std::uint32_t> hot_next;
  // Fault decisions.
  std::vector<FaultKind> op_fault;
  std::vector<double> subcore_scale;
};

SchedScratch::SchedScratch() : impl_(std::make_unique<Impl>()) {}
SchedScratch::~SchedScratch() = default;

Report Scheduler::run(const KernelTrace& trace, Timeline* timeline,
                      const SchedulerFaults& faults, SchedScratch* scratch) {
  // Callers without a persistent scratch get a run-local one.
  SchedScratch local_scratch;
  SchedScratch::Impl& sc = scratch != nullptr ? *scratch->impl_
                                              : *local_scratch.impl_;

  Report rep;
  rep.launches = 1;

  const std::uint32_t max_id = trace.max_op_id;
  sc.st.assign(max_id + 1, OpState{});
  std::vector<OpState>& st = sc.st;

  FaultInjector* inj =
      faults.injector != nullptr && faults.injector->armed() ? faults.injector
                                                             : nullptr;
  double watchdog = faults.watchdog_s > 0 ? faults.watchdog_s : cfg_.watchdog_s;
  if (watchdog <= 0) watchdog = kInf;

  // Dense engine indexing: subcore * kNumEngineKinds + kind.
  const std::uint32_t num_subcores =
      static_cast<std::uint32_t>(trace.per_subcore.size());
  const std::uint32_t num_engines = num_subcores * kNumEngineKinds;

  if (sc.fifo.size() < num_engines) sc.fifo.resize(num_engines);
  for (std::uint32_t e = 0; e < num_engines; ++e) sc.fifo[e].clear();
  sc.fifo_head.assign(num_engines, 0);
  sc.engine_free.assign(num_engines, 0.0);
  sc.engine_busy.assign(num_engines, 0.0);
  std::vector<std::vector<std::uint32_t>>& fifo = sc.fifo;
  std::vector<std::uint32_t>& fifo_head = sc.fifo_head;
  std::vector<double>& engine_free = sc.engine_free;
  std::vector<double>& engine_busy = sc.engine_busy;

  // First pass: op states, per-engine FIFOs, dependency/barrier counts and
  // byte accounting.
  sc.dep_offsets.assign(max_id + 2, 0);
  std::uint32_t max_epoch = 0;
  double total_cycles = 0;
  for (std::uint32_t s = 0; s < num_subcores; ++s) {
    for (const TraceOp& op : trace.per_subcore[s]) {
      OpState& o = st[op.id];
      o.op = &op;
      o.engine = s * kNumEngineKinds + static_cast<std::uint32_t>(op.engine);
      fifo[o.engine].push_back(op.id);
      o.pending_deps = op.num_deps;
      for (std::uint8_t d = 0; d < op.num_deps; ++d) {
        ++sc.dep_offsets[op.deps[d] + 1];
      }
      if (op.kind == TraceOp::Kind::Barrier) {
        max_epoch = std::max(max_epoch, op.barrier_epoch);
      }
      if (op.kind == TraceOp::Kind::Transfer) {
        if (op.gm_write) {
          rep.gm_write_bytes += op.bytes;
        } else {
          rep.gm_read_bytes += op.bytes;
        }
      }
      total_cycles += op.cycles;
      ++rep.num_ops;
    }
  }

  // Launch-shape watchdog scaling: grow the deadline with a serial-work
  // estimate of *this* trace so a giant-but-healthy launch is never
  // misclassified as a hang by a deadline tuned for small ones. Real hangs
  // are unaffected — a wedged engine never completes, and the t_next >= inf
  // check below converts it to TimeoutError regardless of the deadline.
  if (watchdog < kInf && cfg_.watchdog_scale > 0) {
    const double total_bytes =
        static_cast<double>(rep.gm_read_bytes + rep.gm_write_bytes);
    const double t_ref =
        total_bytes / (cfg_.hbm_bandwidth * cfg_.hbm_efficiency) +
        cfg_.cycles_to_s(total_cycles);
    watchdog += cfg_.watchdog_scale * t_ref;
  }

  // Dependents and barrier groups in CSR form. Fill order matches the old
  // push_back order (sub-cores ascending, ops in trace order), so the
  // scheduler examines edges in exactly the same sequence as before.
  for (std::uint32_t i = 1; i <= max_id + 1; ++i) {
    sc.dep_offsets[i] += sc.dep_offsets[i - 1];
  }
  sc.dep_edges.resize(sc.dep_offsets[max_id + 1]);
  sc.dep_fill.assign(max_id + 1, 0);
  sc.barrier_offsets.assign(max_epoch + 2, 0);
  sc.barrier_started.assign(max_epoch + 1, 0);
  for (std::uint32_t s = 0; s < num_subcores; ++s) {
    for (const TraceOp& op : trace.per_subcore[s]) {
      for (std::uint8_t d = 0; d < op.num_deps; ++d) {
        const std::uint32_t dep = op.deps[d];
        sc.dep_edges[sc.dep_offsets[dep] + sc.dep_fill[dep]++] = op.id;
      }
      if (op.kind == TraceOp::Kind::Barrier) {
        ++sc.barrier_offsets[op.barrier_epoch + 1];
      }
    }
  }
  for (std::uint32_t e = 1; e <= max_epoch + 1; ++e) {
    sc.barrier_offsets[e] += sc.barrier_offsets[e - 1];
  }
  sc.barrier_members.resize(sc.barrier_offsets[max_epoch + 1]);
  sc.barrier_fill.assign(max_epoch + 1, 0);
  for (std::uint32_t s = 0; s < num_subcores; ++s) {
    for (const TraceOp& op : trace.per_subcore[s]) {
      if (op.kind != TraceOp::Kind::Barrier) continue;
      const std::uint32_t ep = op.barrier_epoch;
      sc.barrier_members[sc.barrier_offsets[ep] + sc.barrier_fill[ep]++] =
          op.id;
    }
  }

  // Fault decisions are made up-front in trace order — (sub-core, per-sub-
  // core transfer ordinal) keys are interleaving-independent, so the same
  // plan seed yields the same decisions on every run.
  sc.subcore_scale.assign(num_subcores, 1.0);
  std::vector<double>& subcore_scale = sc.subcore_scale;
  sc.op_fault.clear();
  std::vector<FaultKind>& op_fault = sc.op_fault;
  if (inj != nullptr) {
    const std::uint64_t launch = inj->begin_launch();
    op_fault.assign(max_id + 1, FaultKind::None);
    for (std::uint32_t s = 0; s < num_subcores; ++s) {
      subcore_scale[s] = inj->clock_scale(launch, s);
      if (subcore_scale[s] != 1.0) ++rep.throttled_subcores;
      std::uint32_t transfer_ordinal = 0;
      for (const TraceOp& op : trace.per_subcore[s]) {
        if (op.kind != TraceOp::Kind::Transfer) continue;
        op_fault[op.id] = inj->transfer_fault(launch, s, transfer_ordinal++);
      }
    }
  }
  std::uint64_t hangs_started = 0;
  int first_hang_subcore = -1;

  HbmArbiter arbiter(cfg_.hbm_bandwidth * cfg_.hbm_efficiency,
                     cfg_.l2_bandwidth);

  // Aborts the run at simulated time `t`, surfacing the partial report
  // inside a typed error so callers can account for the wasted attempt.
  auto abort_run = [&](FaultKind kind, double t, int subcore,
                       const char* what) {
    rep.time_s = t;
    rep.hbm_busy_s = arbiter.hbm_busy_time();
    std::ostringstream os;
    os << what << " (kernel aborted at t=" << t << "s, sub-core " << subcore
       << ")";
    switch (kind) {
      case FaultKind::MteTransient:
        ++rep.mte_faults;
        throw TransferError(os.str(), kind, rep, subcore);
      case FaultKind::EccDouble:
        ++rep.ecc_double;
        throw EccError(os.str(), kind, rep, subcore);
      default:
        rep.hangs += hangs_started;
        throw TimeoutError(os.str(), FaultKind::Hang, rep, subcore);
    }
  };

  using Event = std::pair<double, std::uint32_t>;  // (time, op id)
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  sc.flow_to_op.clear();  // flow handle -> op id; 0 = no in-flight op

  double now = cfg_.launch_overhead_s;
  std::uint64_t remaining_ops = rep.num_ops;

  sc.hot_engines.clear();
  sc.hot_next.clear();
  std::vector<std::uint32_t>& hot_engines = sc.hot_engines;
  std::vector<std::uint32_t>& hot = sc.hot_next;
  for (std::uint32_t e = 0; e < num_engines; ++e) {
    if (!fifo[e].empty()) hot_engines.push_back(e);
  }

  auto on_finished = [&](std::uint32_t id, double t,
                         std::vector<std::uint32_t>& hot_out) {
    OpState& o = st[id];
    if (o.finish >= 0) return;  // already completed
    o.finish = t;
    const std::uint32_t e = o.engine;
    if (!o.engine_released) {
      engine_free[e] = t;
      engine_busy[e] += t - o.start;
      o.engine_released = true;
      hot_out.push_back(e);
    }
    const std::uint32_t dep_begin = sc.dep_offsets[id];
    const std::uint32_t dep_end = sc.dep_offsets[id + 1];
    for (std::uint32_t i = dep_begin; i < dep_end; ++i) {
      OpState& d = st[sc.dep_edges[i]];
      ASCAN_ASSERT(d.pending_deps > 0);
      if (--d.pending_deps == 0) hot_out.push_back(d.engine);
    }
    --remaining_ops;
  };

  auto try_start = [&](std::uint32_t e) {
    while (fifo_head[e] < fifo[e].size()) {
      if (engine_free[e] > now + 1e-18) return;  // engine busy
      const std::uint32_t id = fifo[e][fifo_head[e]];
      OpState& o = st[id];
      if (o.pending_deps > 0) return;  // head not ready yet
      const TraceOp& op = *o.op;
      o.started = true;
      o.start = now;
      ++fifo_head[e];
      // Straggler model: a throttled sub-core issues and computes slower
      // across the board (its clock is scaled down, not one engine).
      const double scale = subcore_scale[op.subcore];
      switch (op.kind) {
        case TraceOp::Kind::Compute:
        case TraceOp::Kind::FlagSet:
        case TraceOp::Kind::FlagWait: {
          const double dur = cfg_.cycles_to_s(op.cycles) / scale;
          engine_free[e] = now + dur;
          events.emplace(now + dur, id);
          break;
        }
        case TraceOp::Kind::Transfer: {
          const FaultKind fk =
              op_fault.empty() ? FaultKind::None : op_fault[id];
          if (fk == FaultKind::Hang) {
            // Wedged engine: the op never completes; the watchdog (or the
            // stall detector below) converts this into TimeoutError.
            engine_free[e] = kInf;
            ++hangs_started;
            if (first_hang_subcore < 0) {
              first_hang_subcore = static_cast<int>(op.subcore);
            }
            break;
          }
          double setup = cfg_.cycles_to_s(op.cycles) / scale;
          if (fk == FaultKind::EccSingle) {
            // Correctable ECC: scrub the line in-line and continue.
            setup += cfg_.cycles_to_s(cfg_.ecc_scrub_cycles);
            ++rep.ecc_single;
          }
          if (fk == FaultKind::MteTransient || fk == FaultKind::EccDouble) {
            // The DMA errors right after issue; the abort fires when this
            // event is popped, so earlier completions still count.
            engine_free[e] = kInf;
            events.emplace(now + setup, id);
            break;
          }
          if (op.bytes == 0) {  // degenerate copy: just the setup cost
            engine_free[e] = now + setup;
            events.emplace(now + setup, id);
            break;
          }
          // All GM traffic streams through the L2; misses and dirty
          // write-backs additionally load the HBM pool.
          double hbm_frac = 1.0;
          double l2_frac = 1.0;
          if (l2_ != nullptr && op.gm_addr != 0) {
            const L2Access a = l2_->access(op.gm_addr, op.bytes, op.gm_write);
            rep.l2_hit_bytes += a.hit_bytes;
            hbm_frac = static_cast<double>(a.miss_bytes + a.writeback_bytes) /
                       static_cast<double>(op.bytes);
            if (op.gm_write) {
              // Write-allocate: the written data lands in the L2; only the
              // evicted dirty lines consume HBM bandwidth.
              hbm_frac = static_cast<double>(a.writeback_bytes) /
                         static_cast<double>(op.bytes);
            }
          }
          const std::uint32_t flow = arbiter.add_flow(
              now + setup, static_cast<double>(op.bytes), cfg_.mte_bandwidth,
              hbm_frac, l2_frac);
          if (sc.flow_to_op.size() <= flow) sc.flow_to_op.resize(flow + 1, 0);
          sc.flow_to_op[flow] = id;
          engine_free[e] = kInf;  // MTE handles one DataCopy at a time
          break;
        }
        case TraceOp::Kind::Barrier: {
          engine_free[e] = kInf;  // blocks until the whole epoch arrives
          const std::uint32_t ep = op.barrier_epoch;
          const std::uint32_t cnt = ++sc.barrier_started[ep];
          const std::uint32_t group_begin = sc.barrier_offsets[ep];
          const std::uint32_t group_end = sc.barrier_offsets[ep + 1];
          if (cnt == group_end - group_begin) {
            const double t = now + cfg_.sync_all_s;
            for (std::uint32_t i = group_begin; i < group_end; ++i) {
              events.emplace(t, sc.barrier_members[i]);
            }
          }
          break;
        }
      }
    }
  };

  while (remaining_ops > 0) {
    for (std::uint32_t e : hot_engines) try_start(e);
    hot_engines.clear();

    const double t_event = events.empty() ? kInf : events.top().first;
    const double t_flow = arbiter.next_completion_time();
    const double t_next = std::min(t_event, t_flow);
    if (t_next > watchdog || (t_next >= kInf && hangs_started > 0)) {
      // Watchdog: the launch's simulated clock would pass its deadline
      // (hung engine, or pathological straggler slowness). Poisoned-barrier
      // semantics already released every functional thread, so surfacing
      // the timeout here can never deadlock siblings.
      const double t_abort = watchdog < kInf ? std::max(now, watchdog) : now;
      abort_run(FaultKind::Hang, t_abort, first_hang_subcore,
                hangs_started > 0 ? "watchdog: kernel hang"
                                  : "watchdog: deadline exceeded");
    }
    ASCAN_ASSERT(t_next < kInf, "simulation deadlock with "
                                    << remaining_ops << " ops unreachable");
    now = std::max(now, t_next);

    hot.clear();
    while (!events.empty() && events.top().first <= now + 1e-18) {
      const std::uint32_t id = events.top().second;
      events.pop();
      if (!op_fault.empty() && (op_fault[id] == FaultKind::MteTransient ||
                                op_fault[id] == FaultKind::EccDouble)) {
        abort_run(op_fault[id], now, static_cast<int>(st[id].op->subcore),
                  op_fault[id] == FaultKind::MteTransient
                      ? "transient MTE transfer failure"
                      : "uncorrectable HBM ECC error");
      }
      on_finished(id, now, hot);
    }
    for (std::uint32_t flow : arbiter.advance_and_pop(now)) {
      ASCAN_ASSERT(flow < sc.flow_to_op.size() && sc.flow_to_op[flow] != 0);
      const std::uint32_t id = sc.flow_to_op[flow];
      sc.flow_to_op[flow] = 0;
      // The MTE engine is free to issue its next DMA as soon as the bytes
      // have streamed; consumers of the data observe it one GM latency
      // later (dependent edges resolve at now + latency).
      OpState& o = st[id];
      if (!o.engine_released) {
        engine_free[o.engine] = now;
        engine_busy[o.engine] += now - o.start;
        o.engine_released = true;
        hot.push_back(o.engine);
      }
      events.emplace(now + cfg_.gm_latency_s, id);
    }
    std::swap(hot_engines, hot);
  }

  rep.time_s = now;
  rep.hbm_busy_s = arbiter.hbm_busy_time();

  if (timeline != nullptr) {
    timeline->is_cube_subcore = trace.is_cube_subcore;
    timeline->total_s = now;
    timeline->events.reserve(rep.num_ops);
    for (std::uint32_t su = 0; su < num_subcores; ++su) {
      for (const TraceOp& op : trace.per_subcore[su]) {
        const OpState& o = st[op.id];
        timeline->events.push_back({op.tag, su, op.engine, op.kind, o.start,
                                    o.finish, op.bytes});
      }
    }
  }

  for (std::uint32_t s = 0; s < num_subcores; ++s) {
    const bool cube =
        s < trace.is_cube_subcore.size() && trace.is_cube_subcore[s];
    for (int k = 0; k < kNumEngineKinds; ++k) {
      const double busy = engine_busy[s * kNumEngineKinds + k];
      switch (static_cast<EngineKind>(k)) {
        case EngineKind::Compute:
          (cube ? rep.cube_busy_s : rep.vec_busy_s) += busy;
          break;
        case EngineKind::Scalar:
          rep.scalar_busy_s += busy;
          break;
        default:
          rep.mte_busy_s += busy;
          break;
      }
    }
  }
  return rep;
}

}  // namespace ascend::sim
