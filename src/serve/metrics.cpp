#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ascan::serve {

// Bucket b holds latencies in (2^(b-1), 2^b] µs; bucket 0 is [0, 1] µs.
// ceil(log2(us)) (not 1 + ceil) so the (1, 2] µs bucket is reachable and
// every bucket_upper_s boundary is actually hit (tests/test_batcher.cpp
// pins each one).
int LatencyHistogram::bucket_of(double seconds) {
  const double us = seconds * 1e6;
  if (us <= 1.0) return 0;
  const int b = static_cast<int>(std::ceil(std::log2(us)));
  return std::min(b, kBuckets - 1);
}

double LatencyHistogram::bucket_upper_s(int b) {
  return std::ldexp(1.0, b) * 1e-6;
}

namespace {

std::string fmt_us(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", seconds * 1e6);
  return buf;
}

}  // namespace

void LatencyHistogram::add(double seconds) {
  seconds = std::max(seconds, 0.0);
  buckets_[static_cast<std::size_t>(bucket_of(seconds))]++;
  count_++;
  sum_s_ += seconds;
  max_s_ = std::max(max_s_, seconds);
}

double LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // target >= 1 so percentile(0.0) reports the first occupied bucket (the
  // minimum sample's bucket) instead of the empty 1 µs floor bucket.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen >= target) return std::min(bucket_upper_s(b), max_s_);
  }
  return max_s_;
}

std::string LatencyHistogram::json() const {
  std::ostringstream os;
  os << "{\"count\":" << count_ << ",\"mean_us\":" << fmt_us(mean_s())
     << ",\"p50_us\":" << fmt_us(percentile(0.50))
     << ",\"p95_us\":" << fmt_us(percentile(0.95))
     << ",\"p99_us\":" << fmt_us(percentile(0.99))
     << ",\"max_us\":" << fmt_us(max_s_) << "}";
  return os.str();
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<std::size_t>(b)] +=
        other.buckets_[static_cast<std::size_t>(b)];
  }
  count_ += other.count_;
  sum_s_ += other.sum_s_;
  max_s_ = std::max(max_s_, other.max_s_);
}

// ---------------------------------------------------------------------------
// Sharded accumulator

Metrics::Shard& Metrics::my_shard() {
  // Round-robin thread -> shard assignment, fixed at a thread's first
  // histogram event. Engine workers therefore each own a shard (up to
  // kShards of them) and never contend; the assignment is process-wide so
  // a thread keeps its shard index across every Metrics instance.
  static std::atomic<unsigned> next_thread{0};
  thread_local const unsigned idx =
      next_thread.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(kShards);
  return shards_[idx];
}

void Metrics::on_completed(OpKind kind, SloTier tier, const Timing& t) {
  Shard& sh = my_shard();
  std::lock_guard<std::mutex> lk(sh.mu);
  sh.completed++;
  sh.by_kind[static_cast<std::size_t>(kind)]++;
  sh.queue_latency.add(t.queue_s);
  sh.execute_latency.add(t.execute_s);
  sh.total_latency.add(t.total_s);
  sh.tier_latency[static_cast<std::size_t>(tier)].add(t.total_s);
}

void Metrics::on_failed(const Timing& t) {
  Shard& sh = my_shard();
  std::lock_guard<std::mutex> lk(sh.mu);
  sh.failed++;
  sh.queue_latency.add(t.queue_s);
  sh.total_latency.add(t.total_s);
}

void Metrics::on_batch(std::size_t occupancy, const Report& rep) {
  Shard& sh = my_shard();
  std::lock_guard<std::mutex> lk(sh.mu);
  sh.batches++;
  sh.batched_requests += occupancy;
  sh.max_batch_observed =
      std::max<std::uint64_t>(sh.max_batch_observed, occupancy);
  sh.sim_time_s += rep.time_s;
  sh.sim_gm_bytes += rep.gm_read_bytes + rep.gm_write_bytes;
  sh.sim_launches += rep.launches;
  sh.sim_steps += rep.steps;
  sh.sim_retries += rep.retries;
  sh.sim_excluded_cores += rep.excluded_cores;
}

void Metrics::on_batch_abandoned(const Report& partial) {
  Shard& sh = my_shard();
  std::lock_guard<std::mutex> lk(sh.mu);
  sh.failed_batches++;
  sh.sim_time_s += partial.time_s;
  sh.sim_gm_bytes += partial.gm_read_bytes + partial.gm_write_bytes;
  sh.sim_launches += partial.launches;
  sh.sim_steps += partial.steps;
  sh.sim_retries += partial.retries;
  sh.sim_excluded_cores += partial.excluded_cores;
}

void Metrics::on_chunk(double latency_s) {
  Shard& sh = my_shard();
  std::lock_guard<std::mutex> lk(sh.mu);
  sh.stream_chunks++;
  sh.chunk_latency.add(latency_s);
}

namespace {

void recompute_derived(MetricsSnapshot& out, double hbm_peak) {
  if (out.batches > 0) {
    out.avg_batch_occupancy = static_cast<double>(out.batched_requests) /
                              static_cast<double>(out.batches);
  }
  if (out.sim_time_s > 0 && hbm_peak > 0) {
    out.sim_bandwidth_utilization =
        static_cast<double>(out.sim_gm_bytes) / out.sim_time_s / hbm_peak;
  }
}

}  // namespace

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot out;
  out.device = device_;
  // Child-before-parent read order. Phase 1: the shard-guarded state —
  // completions, failures and their histograms. Each shard's mutex
  // acquire synchronizes with every writer that updated it, so by the
  // time the loop finishes, every gathered completion's upstream
  // admission/submission bump is visible to this thread.
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.mu);
    out.completed += sh.completed;
    out.failed += sh.failed;
    for (std::size_t k = 0; k < out.by_kind.size(); ++k) {
      out.by_kind[k] += sh.by_kind[k];
    }
    out.batches += sh.batches;
    out.batched_requests += sh.batched_requests;
    out.max_batch_observed =
        std::max(out.max_batch_observed, sh.max_batch_observed);
    out.failed_batches += sh.failed_batches;
    out.stream_chunks += sh.stream_chunks;
    out.queue_latency.merge(sh.queue_latency);
    out.execute_latency.merge(sh.execute_latency);
    out.total_latency.merge(sh.total_latency);
    out.chunk_latency.merge(sh.chunk_latency);
    for (std::size_t k = 0; k < out.tier_latency.size(); ++k) {
      out.tier_latency[k].merge(sh.tier_latency[k]);
    }
    out.sim_time_s += sh.sim_time_s;
    out.sim_gm_bytes += sh.sim_gm_bytes;
    out.sim_launches += sh.sim_launches;
    out.sim_steps += sh.sim_steps;
    out.sim_retries += sh.sim_retries;
    out.sim_excluded_cores += sh.sim_excluded_cores;
  }
  // Phase 2: the pure counters, leaf to root — cancellations and
  // rejections before admissions before submissions, the reverse of the
  // writers' bump order — so every inequality the snapshot exports
  // (admitted + rejected <= submitted, terminal <= admitted) holds even
  // while writers race this read.
  out.cancelled = cancelled_.load();
  out.continuation_admits = continuation_admits_.load();
  out.deadline_misses = deadline_misses_.load();
  out.preemptions = preemptions_.load();
  out.preempted_tiles_resumed = preempted_tiles_resumed_.load();
  out.routed_affinity = routed_affinity_.load();
  out.routed_spill = routed_spill_.load();
  out.steals = steals_.load();
  out.stolen_requests = stolen_requests_.load();
  out.steals_suffered = steals_suffered_.load();
  out.health_transitions = health_transitions_.load();
  out.failovers = failovers_.load();
  out.tiles_resumed = tiles_resumed_.load();
  out.canary_probes = canary_probes_.load();
  out.shed_brownout = shed_brownout_.load();
  out.rejected_capacity = rejected_capacity_.load();
  out.rejected_invalid = rejected_invalid_.load();
  out.rejected_shutdown = rejected_shutdown_.load();
  out.rejected_quota = rejected_quota_.load();
  out.admitted = admitted_.load();
  out.submitted = submitted_.load();
  recompute_derived(out, hbm_peak_);
  return out;
}

MetricsSnapshot MetricsSnapshot::merged(
    const std::vector<MetricsSnapshot>& parts, double hbm_peak_bytes_per_s) {
  MetricsSnapshot out;
  for (const auto& p : parts) {
    out.submitted += p.submitted;
    out.admitted += p.admitted;
    out.rejected_capacity += p.rejected_capacity;
    out.rejected_invalid += p.rejected_invalid;
    out.rejected_shutdown += p.rejected_shutdown;
    out.rejected_quota += p.rejected_quota;
    out.cancelled += p.cancelled;
    out.completed += p.completed;
    out.failed += p.failed;
    for (std::size_t k = 0; k < out.by_kind.size(); ++k) {
      out.by_kind[k] += p.by_kind[k];
    }
    out.batches += p.batches;
    out.batched_requests += p.batched_requests;
    out.max_batch_observed =
        std::max(out.max_batch_observed, p.max_batch_observed);
    out.continuation_admits += p.continuation_admits;
    out.failed_batches += p.failed_batches;
    out.stream_chunks += p.stream_chunks;
    out.chunk_latency.merge(p.chunk_latency);
    out.routed_affinity += p.routed_affinity;
    out.routed_spill += p.routed_spill;
    out.steals += p.steals;
    out.stolen_requests += p.stolen_requests;
    out.steals_suffered += p.steals_suffered;
    out.health_transitions += p.health_transitions;
    out.failovers += p.failovers;
    out.tiles_resumed += p.tiles_resumed;
    out.canary_probes += p.canary_probes;
    out.shed_brownout += p.shed_brownout;
    out.deadline_misses += p.deadline_misses;
    out.preemptions += p.preemptions;
    out.preempted_tiles_resumed += p.preempted_tiles_resumed;
    for (std::size_t k = 0; k < out.tier_latency.size(); ++k) {
      out.tier_latency[k].merge(p.tier_latency[k]);
    }
    out.queue_latency.merge(p.queue_latency);
    out.execute_latency.merge(p.execute_latency);
    out.total_latency.merge(p.total_latency);
    out.sim_time_s += p.sim_time_s;
    out.sim_gm_bytes += p.sim_gm_bytes;
    out.sim_launches += p.sim_launches;
    out.sim_steps += p.sim_steps;
    out.sim_retries += p.sim_retries;
    out.sim_excluded_cores += p.sim_excluded_cores;
  }
  recompute_derived(out, hbm_peak_bytes_per_s);
  return out;
}

std::string MetricsSnapshot::invariant_violations() const {
  std::ostringstream os;
  const auto fail = [&os](const char* what) {
    if (os.tellp() > 0) os << "; ";
    os << what;
  };
  const std::uint64_t rejected = rejected_capacity + rejected_invalid +
                                 rejected_shutdown + rejected_quota;
  if (admitted + rejected > submitted) {
    fail("admitted + rejected > submitted");
  }
  if (completed + failed + cancelled > admitted) {
    fail("terminal (completed + failed + cancelled) > admitted");
  }
  if (execute_latency.count() != completed) {
    fail("execute_latency.count != completed");
  }
  if (total_latency.count() != completed + failed) {
    fail("total_latency.count != completed + failed");
  }
  std::uint64_t kinds = 0;
  for (const auto k : by_kind) kinds += k;
  if (kinds != completed) fail("sum(by_kind) != completed");
  std::uint64_t tiers = 0;
  for (const auto& t : tier_latency) tiers += t.count();
  if (tiers != completed) fail("sum(tier_latency counts) != completed");
  if (chunk_latency.count() != stream_chunks) {
    fail("chunk_latency.count != stream_chunks");
  }
  if (batched_requests < batches) fail("batched_requests < batches");
  return os.str();
}

std::string MetricsSnapshot::json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"device\": " << device << ",\n"
     << "  \"admission\": {"
     << "\"submitted\":" << submitted << ",\"admitted\":" << admitted
     << ",\"rejected_capacity\":" << rejected_capacity
     << ",\"rejected_invalid\":" << rejected_invalid
     << ",\"rejected_shutdown\":" << rejected_shutdown
     << ",\"rejected_quota\":" << rejected_quota
     << ",\"cancelled\":" << cancelled << ",\"completed\":" << completed
     << ",\"failed\":" << failed << "},\n"
     << "  \"completed_by_kind\": {";
  for (std::size_t k = 0; k < by_kind.size(); ++k) {
    os << (k ? "," : "") << '"'
       << op_kind_name(static_cast<OpKind>(k)) << "\":" << by_kind[k];
  }
  os << "},\n"
     << "  \"batching\": {\"batches\":" << batches
     << ",\"batched_requests\":" << batched_requests
     << ",\"max_batch_observed\":" << max_batch_observed
     << ",\"avg_occupancy\":" << avg_batch_occupancy
     << ",\"continuation_admits\":" << continuation_admits
     << ",\"failed_batches\":" << failed_batches << "},\n"
     << "  \"streaming\": {\"chunks\":" << stream_chunks
     << ",\"chunk_latency\":" << chunk_latency.json() << "},\n"
     << "  \"slo\": {\"deadline_misses\":" << deadline_misses
     << ",\"preemptions\":" << preemptions
     << ",\"preempted_tiles_resumed\":" << preempted_tiles_resumed
     << ",\"tier_latency\":{";
  for (std::size_t k = 0; k < tier_latency.size(); ++k) {
    os << (k ? "," : "") << '"' << slo_tier_name(static_cast<SloTier>(k))
       << "\":" << tier_latency[k].json();
  }
  os << "}},\n"
     << "  \"cluster\": {\"routed_affinity\":" << routed_affinity
     << ",\"routed_spill\":" << routed_spill << ",\"steals\":" << steals
     << ",\"stolen_requests\":" << stolen_requests
     << ",\"steals_suffered\":" << steals_suffered
     << ",\"health_transitions\":" << health_transitions
     << ",\"failovers\":" << failovers
     << ",\"tiles_resumed\":" << tiles_resumed
     << ",\"canary_probes\":" << canary_probes
     << ",\"shed_brownout\":" << shed_brownout << "},\n"
     << "  \"latency\": {\"queue\":" << queue_latency.json()
     << ",\"execute\":" << execute_latency.json()
     << ",\"total\":" << total_latency.json() << "},\n";
  // Consistency audit on the export path. Only merged / front-end views
  // (device -1) carry the verdict: a single cluster shard can legitimately
  // complete a request another shard admitted (failover), so the
  // admission inequalities only bind device-spanning snapshots.
  if (device < 0) {
    const std::string viol = invariant_violations();
    os << "  \"consistency\": \""
       << (viol.empty() ? std::string("ok") : viol) << "\",\n";
  }
  os << "  \"simulated\": {\"time_s\":" << sim_time_s
     << ",\"gm_bytes\":" << sim_gm_bytes << ",\"launches\":" << sim_launches
     << ",\"steps\":" << sim_steps << ",\"retries\":" << sim_retries
     << ",\"excluded_cores\":" << sim_excluded_cores
     << ",\"bandwidth_utilization\":" << sim_bandwidth_utilization << "}\n"
     << "}";
  return os.str();
}

}  // namespace ascan::serve
