// serve — multi-device cluster front end.
//
// One submit() surface fronting N simulated 910B4 devices, each a full
// serve::Engine (own Session(s), host executor, fault plan and metrics
// shard). The cluster adds the two scheduling layers a single device
// cannot provide:
//
//  * Locality-aware placement — requests hash by their coalescing GroupKey
//    (FNV-1a, deterministic across runs and platforms) to an affinity
//    device, so same-shape traffic lands where the device's timing cache
//    and batch former already hold that shape. When the affinity target is
//    overloaded (queue deeper than the least-loaded device by more than
//    spill_margin), the request spills to the least-loaded device instead;
//    both outcomes are counted (routed_affinity / routed_spill).
//
//  * Cross-device work stealing — an idle device polls its siblings and
//    takes one whole formed bulk batch from the deepest bulk backlog at or
//    above steal_min_backlog. Interactive requests are never stolen: they
//    stay on the device that admitted them, mid-deadline. Stealing also
//    runs during a drain shutdown, so the cluster drains at the speed of
//    its busiest device rather than serially.
//
// Streaming rides through placement unchanged: a Request's on_chunk
// callback travels inside its Pending to whichever device serves it, so a
// placed (affinity or spilled) request streams from that device exactly as
// on a standalone Engine. The one exception is a *stolen* batch — the
// thief executes it as an indivisible throughput unit with streaming and
// continuation admission disabled (Engine::GroupExec::Stolen). Rationale:
// only bulk-lane work is stealable, where per-tile latency is worthless by
// definition, and a thief grafting its own queue onto (or streaming from)
// a batch it merely helps drain would entangle two devices' admission
// bookkeeping for zero latency win. The future still resolves the full
// payload; only the incremental delivery is skipped.
//
// Fault domains (see serve/health.hpp and DESIGN.md "Fault domains &
// health model"): every device carries a health state machine fed by its
// launch outcomes. A Quarantined device is removed from the placement,
// spill and steal sets; its queued work drains to healthy shards and its
// faulted in-flight batches fail over — each unresolved member carries a
// tile-granular checkpoint (Pending::resume) so the new device continues
// the scan from the last completed tile's carry instead of recomputing.
// Readmission is half-open: after a hold the device turns Probing and
// receives a bounded trickle of canary requests; clean canaries readmit
// it, a faulting one re-quarantines it. When the placeable fraction drops
// below brownout_min_healthy the cluster browns out: bulk work is shed
// with a typed rejection while the interactive lane keeps its reserve.
//
// Cluster-wide invariants (tests/test_cluster.cpp):
//  * Every submitted future resolves exactly once — including across
//    shutdown, rejection, spill and steal paths. Never a dangling future,
//    even with a fault plan armed on some devices.
//  * Results are bit-exact with a single-device Engine serving the same
//    stream (integer-valued workloads; see engine.hpp on fp rounding).
//  * shutdown() is two-phase and device-parallel: every device is
//    signalled before any is joined.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "serve/health.hpp"

namespace ascan::serve {

struct ClusterOptions {
  BatchPolicy policy;
  int num_devices = 4;
  int workers_per_device = 1;
  /// Cluster-wide admission bound over the summed queue depth of every
  /// device, with the same interactive-only reserve semantics as
  /// EngineOptions (the per-device engines are configured with the same
  /// bound, so the cluster-level check is the one that binds).
  std::size_t max_queue = 256;
  std::size_t interactive_reserve = 16;
  /// Device configuration applied to every device...
  MachineConfig machine = MachineConfig::ascend_910b4();
  /// ...unless this per-device override is non-empty (size must equal
  /// num_devices). Heterogeneous clusters — skewed core counts, distinct
  /// executor modes — are how the skew tests provoke imbalance.
  std::vector<MachineConfig> device_machines;
  RetryPolicy retry{};
  /// Fault plan armed on every device when any()...
  FaultPlan fault_plan{};
  /// ...unless this per-device override is non-empty (size must equal
  /// num_devices; entries with !any() leave that device clean). Chaos
  /// tests arm a single bad device this way.
  std::vector<FaultPlan> device_fault_plans;

  bool work_stealing = true;
  /// Minimum bulk backlog a victim must hold before a batch may be stolen
  /// from it (0 -> policy.max_batch: never steal below one full batch).
  std::size_t steal_min_backlog = 0;
  double steal_poll_s = 100e-6;  ///< idle-device steal poll cadence
  /// Affinity placement tolerates the target being this many requests
  /// deeper than the least-loaded device before spilling
  /// (0 -> policy.max_batch: keep locality until a full batch of slack).
  std::size_t spill_margin = 0;

  /// Per-device health state machine (see serve/health.hpp). Quarantined
  /// devices leave the placement, spill and steal sets; their queued work
  /// drains to healthy shards and their faulted in-flight batches fail
  /// over with tile-checkpoint resume.
  HealthPolicy health;
  /// Brownout: when the placeable (Healthy + Degraded) fraction of the
  /// cluster drops below this, bulk submissions are shed with a typed
  /// rejection ("brownout" in the reason) so the surviving devices keep
  /// serving the interactive lane. 0 disables shedding.
  double brownout_min_healthy = 0.5;

  /// Per-tenant admission quota: the most requests one tenant
  /// (Request::tenant; "" is the shared default bucket) may have admitted
  /// within the trailing tenant_quota_window_s window. Submissions past
  /// the quota are rejected with a typed "tenant quota exhausted" reason
  /// (metrics: rejected_quota) before any device sees them, so a noisy
  /// tenant cannot crowd the shared queue. 0 disables metering.
  std::size_t tenant_quota = 0;
  double tenant_quota_window_s = 1.0;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions opt = {});
  ~Cluster();  ///< drains (ShutdownMode::Drain) if still running

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Thread-safe. Validates, admits against the cluster-wide bound,
  /// places (affinity hash with least-loaded spill) and forwards.
  std::future<Response> submit(Request req);

  /// Device-parallel two-phase shutdown: signals every device, then joins
  /// them. Idempotent. After return every future ever handed out is
  /// resolved.
  void shutdown(ShutdownMode mode);

  bool stopped() const { return stopped_.load(); }
  int num_devices() const { return static_cast<int>(shards_.size()); }
  /// Summed queue depth over every device.
  std::size_t queue_depth() const;

  /// Direct access to one device's engine (tests, bench, demo tooling).
  Engine& device(int i) { return *shards_[static_cast<std::size_t>(i)]; }
  const Engine& device(int i) const {
    return *shards_[static_cast<std::size_t>(i)];
  }

  /// Current health state of one device / of every device in order.
  HealthState device_health(int i) const { return monitor_.state(i); }
  std::vector<HealthState> health_states() const { return monitor_.states(); }
  /// Whether the cluster is currently shedding bulk work (placeable
  /// fraction below brownout_min_healthy).
  bool in_brownout() const;

  /// One metrics shard per device, in device order.
  std::vector<MetricsSnapshot> per_device_metrics() const;
  /// Every device shard plus the cluster front end's own counters
  /// (cluster-level rejections, routing decisions) merged into one view.
  MetricsSnapshot metrics() const;
  /// {"merged": {...}, "devices": [{...}, ...]} — per-shard and merged
  /// snapshots in one stable JSON document.
  std::string metrics_json() const;

 private:
  /// Placement decision: the target device, and whether the request was
  /// admitted through a Probing device's half-open canary slot (the
  /// caller stamps Request::canary so the serving launch's outcome is
  /// recognised as a canary verdict).
  struct Placed {
    int device = 0;
    bool canary = false;
  };
  /// Affinity target for `r` given the observed per-device loads, falling
  /// back to the least-loaded device past spill_margin. Bumps the routing
  /// counters.
  Placed place(const Request& r, std::span<const std::size_t> loads);

  /// Submit-path depth snapshots live on the stack up to this many
  /// devices (the constructor bounds the fleet at 64 anyway, matching
  /// the health monitor's lock-free placeable mask).
  static constexpr std::size_t kMaxInlineDevices = 64;
  /// Steal callback installed on device `thief`: one formed bulk batch
  /// from the sibling with the deepest qualifying bulk backlog.
  std::vector<Pending> steal_for(int thief);

  /// Engine outcome_sink target: feeds the health monitor and acts on the
  /// transition (quarantine -> drain the device's queue to siblings).
  void on_outcome(int device, bool faulted, std::uint32_t retries,
                  std::uint32_t canaries);
  /// Engine failover_sink target: re-dispatches a faulted batch's
  /// unresolved members (tile checkpoints riding along) to healthy
  /// siblings; returns the members no sibling could take.
  std::vector<Pending> failover_from(int device, std::vector<Pending> batch);
  /// Quarantine drain: moves the device's queued requests to siblings.
  void drain_quarantined(int device);
  /// Least-loaded placeable device other than `avoid`; -1 when none.
  int pick_target(int avoid) const;
  /// Per-tenant sliding-window admission meter: records the admission and
  /// returns true, or returns false when `tenant` is at quota. Always
  /// true when tenant_quota is 0.
  bool admit_tenant(const std::string& tenant, Clock::time_point now);

  ClusterOptions opt_;
  std::size_t steal_min_backlog_ = 0;
  std::size_t spill_margin_ = 0;
  /// Front-end counters only — events the device shards never see
  /// (cluster-level rejections, routing decisions, health transitions,
  /// failovers) — so merging the shards with this snapshot never double
  /// counts.
  Metrics metrics_;
  HealthMonitor monitor_;
  /// Engines install their steal_source before shards_ is fully built;
  /// the callback no-ops until construction completes.
  std::atomic<bool> ready_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::mutex shutdown_mu_;  ///< serialises shutdown callers
  std::mutex quota_mu_;     ///< guards tenant_admits_ and the sweep count
  /// Admission timestamps per tenant within the trailing quota window.
  /// Idle tenants' entries are reaped by an amortized sweep in
  /// admit_tenant(), so the map stays bounded by the tenants active
  /// within the window rather than every tenant id ever seen.
  std::map<std::string, std::deque<Clock::time_point>> tenant_admits_;
  std::size_t quota_admits_since_sweep_ = 0;
  std::vector<std::unique_ptr<Engine>> shards_;
};

}  // namespace ascan::serve
