#include "serve/health.hpp"

#include <bit>

#include "common/check.hpp"

namespace ascan::serve {

HealthMonitor::HealthMonitor(int num_devices, HealthPolicy policy)
    : policy_(policy) {
  ASCAN_CHECK(num_devices >= 1, "HealthMonitor: need >= 1 device");
  ASCAN_CHECK(policy_.window >= 1, "HealthMonitor: window must be >= 1");
  ASCAN_CHECK(policy_.min_samples >= 1,
              "HealthMonitor: min_samples must be >= 1");
  ASCAN_CHECK(policy_.canary_batches >= 1,
              "HealthMonitor: canary_batches must be >= 1");
  devs_.resize(static_cast<std::size_t>(num_devices));
  for (auto& d : devs_) d.ring.assign(policy_.window, 0.0);
  publish_summary_locked();  // no concurrent readers yet; mu_ not needed
}

void HealthMonitor::publish_summary_locked() {
  std::uint32_t summary = 0;
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < devs_.size(); ++i) {
    switch (devs_[i].state) {
      case HealthState::Healthy:
        if (i < 64) mask |= std::uint64_t{1} << i;
        break;
      case HealthState::Degraded:
        summary |= kAnyNotHealthy;
        if (i < 64) mask |= std::uint64_t{1} << i;
        break;
      case HealthState::Quarantined:
        summary |= kAnyNotHealthy | kAnyQuarantined;
        break;
      case HealthState::Probing:
        summary |= kAnyNotHealthy | kAnyProbing;
        break;
    }
  }
  // Mask first: a reader that sees the new summary must not pair it with
  // the old mask (it would trust a placeable set that predates the
  // transition it was just told about).
  placeable_mask_.store(mask, std::memory_order_release);
  summary_.store(summary, std::memory_order_release);
}

void HealthMonitor::push_outcome(Dev& d, double severity) {
  if (d.filled == d.ring.size()) {
    d.sum -= d.ring[d.head];
  } else {
    ++d.filled;
  }
  d.ring[d.head] = severity;
  d.sum += severity;
  d.head = (d.head + 1) % d.ring.size();
}

std::optional<HealthTransition> HealthMonitor::record(int device, bool faulted,
                                                      std::uint32_t retries,
                                                      std::uint32_t canaries) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!policy_.enabled) return std::nullopt;
  ASCAN_CHECK(device >= 0 && device < static_cast<int>(devs_.size()),
              "HealthMonitor: device index out of range");
  Dev& d = devs_[static_cast<std::size_t>(device)];
  const double severity =
      faulted ? 1.0 : (retries > 0 ? policy_.retry_weight : 0.0);
  push_outcome(d, severity);

  const auto transition = [&](HealthState to) -> HealthTransition {
    const HealthState from = d.state;
    d.state = to;
    publish_summary_locked();
    return HealthTransition{device, from, to};
  };

  switch (d.state) {
    case HealthState::Probing: {
      if (canaries == 0) {
        // Straggler from a launch already in flight before the quarantine
        // (or work re-queued onto this device while it was sick): it feeds
        // the window above, but it is not a canary verdict — it must
        // neither advance nor reset the readmission count.
        return std::nullopt;
      }
      // A coalesced launch may carry several canary-admitted requests;
      // release every slot it held.
      d.canaries_in_flight -=
          std::min<std::size_t>(d.canaries_in_flight, canaries);
      if (faulted) {
        // The canary died: back to quarantine, hold restarts.
        d.quarantined_at = ClockT::now();
        d.canary_ok = 0;
        d.canaries_in_flight = 0;
        return transition(HealthState::Quarantined);
      }
      if (retries > 0) {
        // Survived, but only through retries — not clean enough to vouch
        // for the device. The consecutive-clean count restarts.
        d.canary_ok = 0;
        return std::nullopt;
      }
      // Each canary request that ran clean is one unit of evidence.
      d.canary_ok += canaries;
      if (d.canary_ok >= policy_.canary_batches) {
        // Readmitted with a clean slate — stale quarantine-era outcomes
        // must not immediately re-degrade the device.
        d.ring.assign(policy_.window, 0.0);
        d.head = d.filled = 0;
        d.sum = 0;
        d.canary_ok = 0;
        return transition(HealthState::Healthy);
      }
      return std::nullopt;
    }
    case HealthState::Quarantined:
      // Straggler outcomes from launches already in flight when the device
      // was quarantined; they only feed the window.
      return std::nullopt;
    case HealthState::Healthy:
      if (d.filled >= policy_.min_samples &&
          dev_score(d) >= policy_.degraded_score) {
        return transition(HealthState::Degraded);
      }
      return std::nullopt;
    case HealthState::Degraded:
      if (d.filled >= policy_.min_samples &&
          dev_score(d) >= policy_.quarantine_score) {
        d.quarantined_at = ClockT::now();
        d.canary_ok = 0;
        d.canaries_in_flight = 0;
        return transition(HealthState::Quarantined);
      }
      if (dev_score(d) <= policy_.healthy_score) {
        return transition(HealthState::Healthy);
      }
      return std::nullopt;
  }
  return std::nullopt;
}

void HealthMonitor::tick(std::vector<HealthTransition>* out) {
  // Lock-free fast path: tick() only ever promotes Quarantined devices,
  // and the submit path calls it on every request — don't pay the mutex
  // when nothing is quarantined.
  if ((summary_.load(std::memory_order_acquire) & kAnyQuarantined) == 0) {
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (!policy_.enabled) return;
  const auto now = ClockT::now();
  bool changed = false;
  for (std::size_t i = 0; i < devs_.size(); ++i) {
    Dev& d = devs_[i];
    if (d.state != HealthState::Quarantined) continue;
    const double held =
        std::chrono::duration<double>(now - d.quarantined_at).count();
    if (held < policy_.quarantine_hold_s) continue;
    d.state = HealthState::Probing;
    d.canary_ok = 0;
    d.canaries_in_flight = 0;
    changed = true;
    if (out != nullptr) {
      out->push_back(HealthTransition{static_cast<int>(i),
                                      HealthState::Quarantined,
                                      HealthState::Probing});
    }
  }
  if (changed) publish_summary_locked();
}

HealthState HealthMonitor::state(int device) const {
  std::lock_guard<std::mutex> lk(mu_);
  return devs_[static_cast<std::size_t>(device)].state;
}

std::vector<HealthState> HealthMonitor::states() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<HealthState> out;
  out.reserve(devs_.size());
  for (const auto& d : devs_) out.push_back(d.state);
  return out;
}

double HealthMonitor::score(int device) const {
  std::lock_guard<std::mutex> lk(mu_);
  return dev_score(devs_[static_cast<std::size_t>(device)]);
}

bool HealthMonitor::placeable(int device) const {
  if (devs_.size() <= 64) {
    return (placeable_mask_.load(std::memory_order_acquire) &
            (std::uint64_t{1} << device)) != 0;
  }
  std::lock_guard<std::mutex> lk(mu_);
  const HealthState s = devs_[static_cast<std::size_t>(device)].state;
  return s == HealthState::Healthy || s == HealthState::Degraded;
}

std::size_t HealthMonitor::placeable_count() const {
  if (devs_.size() <= 64) {
    return static_cast<std::size_t>(
        std::popcount(placeable_mask_.load(std::memory_order_acquire)));
  }
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& d : devs_) {
    if (d.state == HealthState::Healthy || d.state == HealthState::Degraded) {
      ++n;
    }
  }
  return n;
}

bool HealthMonitor::try_admit_canary(int device) {
  // Hot-path gate: the submit path probes every device for a canary slot
  // per bulk request, but slots only exist while something is Probing.
  if ((summary_.load(std::memory_order_acquire) & kAnyProbing) == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lk(mu_);
  Dev& d = devs_[static_cast<std::size_t>(device)];
  if (d.state != HealthState::Probing) return false;
  if (d.canaries_in_flight >= policy_.canary_batches) return false;
  ++d.canaries_in_flight;
  return true;
}

bool HealthMonitor::has_canary_slot() const {
  if ((summary_.load(std::memory_order_acquire) & kAnyProbing) == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& d : devs_) {
    if (d.state == HealthState::Probing &&
        d.canaries_in_flight < policy_.canary_batches) {
      return true;
    }
  }
  return false;
}

}  // namespace ascan::serve
