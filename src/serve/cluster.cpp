#include "serve/cluster.hpp"

#include <bit>
#include <chrono>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace ascan::serve {

Cluster::Cluster(ClusterOptions opt)
    : opt_(std::move(opt)),
      metrics_(opt_.machine.hbm_bandwidth),
      monitor_(opt_.num_devices >= 1 ? opt_.num_devices : 1, opt_.health) {
  ASCAN_CHECK(opt_.num_devices >= 1, "serve::Cluster: need >= 1 device");
  ASCAN_CHECK(opt_.num_devices <= 64,
              "serve::Cluster: the lock-free placement mask bounds the "
              "fleet at 64 devices");
  ASCAN_CHECK(opt_.device_machines.empty() ||
                  opt_.device_machines.size() ==
                      static_cast<std::size_t>(opt_.num_devices),
              "serve::Cluster: device_machines must match num_devices");
  ASCAN_CHECK(opt_.device_fault_plans.empty() ||
                  opt_.device_fault_plans.size() ==
                      static_cast<std::size_t>(opt_.num_devices),
              "serve::Cluster: device_fault_plans must match num_devices");
  steal_min_backlog_ = opt_.steal_min_backlog
                           ? opt_.steal_min_backlog
                           : std::max<std::size_t>(opt_.policy.max_batch, 1);
  spill_margin_ =
      opt_.spill_margin ? opt_.spill_margin : opt_.policy.max_batch;

  const bool stealing = opt_.work_stealing && opt_.num_devices > 1;
  shards_.reserve(static_cast<std::size_t>(opt_.num_devices));
  for (int i = 0; i < opt_.num_devices; ++i) {
    EngineOptions eo;
    eo.policy = opt_.policy;
    eo.max_queue = opt_.max_queue;
    eo.interactive_reserve = opt_.interactive_reserve;
    eo.num_workers = opt_.workers_per_device;
    eo.machine = opt_.device_machines.empty()
                     ? opt_.machine
                     : opt_.device_machines[static_cast<std::size_t>(i)];
    eo.retry = opt_.retry;
    eo.fault_plan =
        opt_.device_fault_plans.empty()
            ? opt_.fault_plan
            : opt_.device_fault_plans[static_cast<std::size_t>(i)];
    eo.device_id = i;
    if (stealing) {
      eo.steal_poll_s = opt_.steal_poll_s;
      eo.steal_source = [this, i] { return steal_for(i); };
    }
    if (opt_.health.enabled) {
      eo.outcome_sink = [this, i](bool faulted, std::uint32_t retries,
                                  std::uint32_t canaries) {
        on_outcome(i, faulted, retries, canaries);
      };
      eo.failover_sink = [this, i](std::vector<Pending> batch) {
        return failover_from(i, std::move(batch));
      };
    }
    shards_.push_back(std::make_unique<Engine>(std::move(eo)));
  }
  ready_.store(true, std::memory_order_release);
}

Cluster::~Cluster() { shutdown(ShutdownMode::Drain); }

std::future<Response> Cluster::submit(Request req) {
  // Requests turned away here never reach a device shard, so the front
  // end counts their whole lifecycle (submitted + rejected); forwarded
  // requests are counted by the shard that serves them. Merging shards
  // with the front-end snapshot therefore counts every event once.
  const auto reject = [&](void (Metrics::*counter)(), std::string reason) {
    metrics_.on_submitted();
    (metrics_.*counter)();
    std::promise<Response> promise;
    auto fut = promise.get_future();
    promise.set_value(
        immediate_response(req.kind, Status::Rejected, std::move(reason)));
    return fut;
  };

  if (std::string err = Engine::validate(req); !err.empty()) {
    return reject(&Metrics::on_rejected_invalid, "invalid request: " + err);
  }
  if (stopping_.load() || stopped_.load()) {
    return reject(&Metrics::on_rejected_shutdown, "cluster shutting down");
  }

  // Brownout: with too little healthy capacity, bulk work is shed up
  // front so what remains serves the latency-sensitive lane. Interactive
  // requests still pass through the normal admission bound below. One
  // escape hatch: a best-effort bulk request is let through while a
  // Probing device has a free canary slot — canaries are the only way a
  // device is readmitted, and winning one back is exactly what ends the
  // brownout. (Advisory check; if the slot is gone by placement time the
  // request just places normally.)
  if (req.priority == Priority::Bulk && in_brownout() &&
      !(req.deadline_s <= 0 && monitor_.has_canary_slot())) {
    metrics_.on_shed_brownout();
    std::ostringstream os;
    os << "cluster brownout: " << monitor_.placeable_count() << "/"
       << shards_.size() << " devices healthy (need fraction >= "
       << opt_.brownout_min_healthy << "), bulk lane shed";
    return reject(&Metrics::on_rejected_capacity, os.str());
  }

  // Cluster-wide admission over the summed backlog. The sum is a snapshot
  // (devices keep serving while it is taken), so the bound is enforced to
  // within the concurrency of submit() callers — same contract as a real
  // multi-queue front end. The depth snapshot lives on the stack: this
  // path runs for every request, and a heap allocation per submit is
  // exactly the kind of host overhead the lock-free engine path removed
  // (the constructor bounds the fleet at kMaxInlineDevices).
  std::size_t loads[kMaxInlineDevices];
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    loads[i] = shards_[i]->queue_depth();
    total += loads[i];
  }
  const std::size_t cap = req.priority == Priority::Interactive
                              ? opt_.max_queue
                              : opt_.max_queue - opt_.interactive_reserve;
  if (total >= cap) {
    std::ostringstream os;
    os << "cluster queue full (" << total << " pending across "
       << shards_.size() << " devices, limit " << cap << " for "
       << (req.priority == Priority::Interactive ? "interactive" : "bulk")
       << " lane)";
    return reject(&Metrics::on_rejected_capacity, os.str());
  }

  // Per-tenant admission quota, checked last so a quota admission is only
  // recorded for requests that actually reach a device. The quota==0
  // guard keeps Clock::now() and the quota mutex off the hot path when
  // metering is disabled (the default).
  if (opt_.tenant_quota != 0 && !admit_tenant(req.tenant, Clock::now())) {
    std::ostringstream os;
    os << "tenant quota exhausted: \"" << req.tenant << "\" at "
       << opt_.tenant_quota << " admissions in the last "
       << opt_.tenant_quota_window_s << " s";
    return reject(&Metrics::on_rejected_quota, os.str());
  }

  const Placed placed = place(req, {loads, shards_.size()});
  req.canary = placed.canary;
  return shards_[static_cast<std::size_t>(placed.device)]->submit(
      std::move(req));
}

bool Cluster::admit_tenant(const std::string& tenant, Clock::time_point now) {
  if (opt_.tenant_quota == 0) return true;
  std::lock_guard<std::mutex> lk(quota_mu_);
  const auto horizon =
      now - std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(opt_.tenant_quota_window_s));
  // Amortized reap of idle tenants: a tenant that stops submitting is
  // never revisited by the per-tenant prune below, so without this sweep
  // the map grows by one entry per distinct tenant id ever seen. Sweeping
  // once every size() admissions keeps the map bounded by the tenants
  // active within the window, at amortized O(1) per admission.
  if (++quota_admits_since_sweep_ > tenant_admits_.size()) {
    quota_admits_since_sweep_ = 0;
    for (auto it = tenant_admits_.begin(); it != tenant_admits_.end();) {
      auto& window = it->second;
      while (!window.empty() && window.front() < horizon) window.pop_front();
      if (window.empty()) {
        it = tenant_admits_.erase(it);
      } else {
        ++it;
      }
    }
  }
  auto& admits = tenant_admits_[tenant];
  while (!admits.empty() && admits.front() < horizon) admits.pop_front();
  if (admits.size() >= opt_.tenant_quota) return false;
  admits.push_back(now);
  return true;
}

Cluster::Placed Cluster::place(const Request& r,
                               std::span<const std::size_t> loads) {
  const int n = static_cast<int>(shards_.size());
  // All-placeable unless health says otherwise; bit i = device i (the
  // constructor bounds the fleet at 64 devices so the mask covers it).
  std::uint64_t mask = n == 64 ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << n) - 1;
  // Hot-path gate: one acquire load. In the all-healthy steady state —
  // every capacity benchmark, and any production fleet most of the time —
  // the monitor is not consulted further: no tick(), no canary probes,
  // no locked state snapshot. The summary is recomputed under the
  // monitor's lock on every transition, so a nonzero read here is exactly
  // "some device left Healthy since".
  const std::uint32_t sick =
      opt_.health.enabled ? monitor_.summary() : 0;
  if (sick != 0) {
    // Time-driven promotions first (Quarantined -> Probing after the
    // hold); the submit path is the cluster's clock.
    std::vector<HealthTransition> promoted;
    monitor_.tick(&promoted);
    for (std::size_t k = 0; k < promoted.size(); ++k) {
      metrics_.on_health_transition();
    }
    // Half-open readmission: a Probing device's canary budget admits a
    // bounded trickle of real traffic ahead of normal placement — but
    // only best-effort bulk traffic. A suspect device must not be probed
    // with deadline-bearing or interactive requests: those are exactly
    // the SLOs the tiers protect, and a canary that faults burns its
    // whole retry budget. (No kAnyProbing pre-check here: the tick()
    // above may just have promoted a device, and try_admit_canary has
    // its own lock-free gate.)
    if (r.priority == Priority::Bulk && r.deadline_s <= 0) {
      for (int i = 0; i < n; ++i) {
        if (monitor_.try_admit_canary(i)) {
          metrics_.on_canary_probe();
          metrics_.on_routed_spill();
          return {i, true};
        }
      }
    }
    // One consistent snapshot of the placeable set. Worker-thread
    // on_outcome() transitions race this path, so the set and its count
    // must come from a single monitor read: separate placeable_count() /
    // placeable(i) queries could observe a set that was never
    // simultaneously true — e.g. a nonzero count whose last member is
    // quarantined before the per-device loop runs, leaving no candidate
    // at all. The atomic mask is published whole under the monitor's
    // lock, so one load is exactly such a snapshot.
    mask = monitor_.placeable_mask();
    if (n < 64) mask &= (std::uint64_t{1} << n) - 1;
  }
  const auto placeable_at = [mask](int i) { return ((mask >> i) & 1u) != 0; };
  const std::size_t placeable = static_cast<std::size_t>(std::popcount(mask));

  const int target =
      static_cast<int>(group_key_hash(group_key(r)) %
                       static_cast<std::uint64_t>(n));

  // Health-aware placement: least-loaded among the placeable devices;
  // affinity kept only when its device is placeable and within margin.
  // Skipped when every device is placeable (the common case — identical
  // to the pre-health placement) or none is; under one snapshot
  // 0 < placeable < n guarantees the loop finds a candidate, and if it
  // ever did not, falling through to the health-ignoring path below keeps
  // the invariant that placement never bricks the cluster.
  if (placeable > 0 && placeable < static_cast<std::size_t>(n)) {
    int least = -1;
    for (int i = 0; i < n; ++i) {
      if (!placeable_at(i)) continue;
      if (least < 0 || loads[static_cast<std::size_t>(i)] <
                           loads[static_cast<std::size_t>(least)]) {
        least = i;
      }
    }
    if (least >= 0) {
      if (placeable_at(target) &&
          loads[static_cast<std::size_t>(target)] <=
              loads[static_cast<std::size_t>(least)] + spill_margin_) {
        metrics_.on_routed_affinity();
        return {target, false};
      }
      metrics_.on_routed_spill();
      return {least, false};
    }
  }

  // Every device placeable, or none (health is advisory, never brick the
  // cluster: fall back to ignoring it).
  int least = 0;
  for (int i = 1; i < n; ++i) {
    if (loads[static_cast<std::size_t>(i)] <
        loads[static_cast<std::size_t>(least)]) {
      least = i;
    }
  }
  // Keep GroupKey locality (timing cache, batch coalescing) unless the
  // affinity device has fallen spill_margin requests behind the least
  // loaded one.
  if (loads[static_cast<std::size_t>(target)] >
      loads[static_cast<std::size_t>(least)] + spill_margin_) {
    metrics_.on_routed_spill();
    return {least, false};
  }
  metrics_.on_routed_affinity();
  return {target, false};
}

std::vector<Pending> Cluster::steal_for(int thief) {
  if (!ready_.load(std::memory_order_acquire)) return {};
  // A sick thief must not pull sibling work onto itself, and a sick
  // victim's queue is the quarantine drain's business, not a thief's.
  if (opt_.health.enabled && !monitor_.placeable(thief)) return {};
  // Victim: the sibling with the deepest bulk backlog at or above the
  // steal threshold. Depths are read unlocked relative to each other; the
  // steal itself re-checks under the victim's lock.
  int victim = -1;
  std::size_t deepest = 0;
  for (int i = 0; i < static_cast<int>(shards_.size()); ++i) {
    if (i == thief) continue;
    if (opt_.health.enabled && !monitor_.placeable(i)) continue;
    const std::size_t backlog =
        shards_[static_cast<std::size_t>(i)]->bulk_backlog();
    if (backlog >= steal_min_backlog_ && backlog > deepest) {
      deepest = backlog;
      victim = i;
    }
  }
  if (victim < 0) return {};
  return shards_[static_cast<std::size_t>(victim)]->steal_bulk_batch(
      steal_min_backlog_);
}

void Cluster::on_outcome(int device, bool faulted, std::uint32_t retries,
                         std::uint32_t canaries) {
  if (!ready_.load(std::memory_order_acquire)) return;
  const auto t = monitor_.record(device, faulted, retries, canaries);
  if (!t) return;
  metrics_.on_health_transition();
  if (t->to == HealthState::Quarantined) drain_quarantined(device);
}

int Cluster::pick_target(int avoid) const {
  int best = -1;
  std::size_t best_load = 0;
  for (int i = 0; i < static_cast<int>(shards_.size()); ++i) {
    if (i == avoid || !monitor_.placeable(i)) continue;
    const std::size_t load =
        shards_[static_cast<std::size_t>(i)]->queue_depth();
    if (best < 0 || load < best_load) {
      best = i;
      best_load = load;
    }
  }
  return best;
}

std::vector<Pending> Cluster::failover_from(int device,
                                            std::vector<Pending> batch) {
  if (!ready_.load(std::memory_order_acquire)) return batch;
  // A healthy device's batch fault is an ordinary poisoned-request event;
  // the local isolation fallback handles it. Failover engages once the
  // outcome feed (which runs before this sink) has degraded the device.
  if (monitor_.state(device) == HealthState::Healthy) return batch;
  std::vector<Pending> leftovers;
  for (auto& p : batch) {
    const bool from_checkpoint = p.resume.active && p.resume.off > 0;
    const int target = pick_target(device);
    if (target >= 0 &&
        shards_[static_cast<std::size_t>(target)]->inject(p)) {
      metrics_.on_failover();
      if (from_checkpoint) metrics_.on_tiles_resumed();
    } else {
      leftovers.push_back(std::move(p));
    }
  }
  return leftovers;
}

void Cluster::drain_quarantined(int device) {
  auto drained =
      shards_[static_cast<std::size_t>(device)]->drain_queue();
  for (auto& p : drained) {
    // A preemption-parked batch waiting in the dying device's queue rides
    // the same drain: its tile checkpoints cross to the sibling and the
    // resumed rows stay bit-exact (counted with the mid-launch failovers).
    const bool from_checkpoint = p.resume.active && p.resume.off > 0;
    const int target = pick_target(device);
    if (target >= 0 &&
        shards_[static_cast<std::size_t>(target)]->inject(p)) {
      metrics_.on_failover();
      if (from_checkpoint) metrics_.on_tiles_resumed();
      continue;
    }
    // No placeable sibling can take it. Hand it back to the source (its
    // own queue still executes under Drain semantics, and a cancelling
    // shutdown resolves it as Cancelled); if even that fails — the source
    // is stopping — resolve it here so the future never dangles.
    if (shards_[static_cast<std::size_t>(device)]->inject(p)) continue;
    Timing t;
    t.total_s =
        std::chrono::duration<double>(Clock::now() - p.enqueued).count();
    metrics_.on_failed(t);
    p.promise.set_value(immediate_response(
        p.req.kind, Status::Failed,
        "device quarantined and no healthy sibling available"));
  }
}

bool Cluster::in_brownout() const {
  if (!opt_.health.enabled || opt_.brownout_min_healthy <= 0) return false;
  return static_cast<double>(monitor_.placeable_count()) <
         opt_.brownout_min_healthy * static_cast<double>(shards_.size());
}

void Cluster::shutdown(ShutdownMode mode) {
  std::lock_guard<std::mutex> lk(shutdown_mu_);
  if (stopped_.load()) return;
  stopping_.store(true);
  // Phase 1: signal every device before joining any, so devices drain (and
  // drain-steal from each other) concurrently.
  for (auto& s : shards_) s->begin_shutdown(mode);
  for (auto& s : shards_) s->finish_shutdown();
  stopped_.store(true);
}

std::size_t Cluster::queue_depth() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->queue_depth();
  return total;
}

std::vector<MetricsSnapshot> Cluster::per_device_metrics() const {
  std::vector<MetricsSnapshot> parts;
  parts.reserve(shards_.size());
  for (const auto& s : shards_) parts.push_back(s->metrics());
  return parts;
}

MetricsSnapshot Cluster::metrics() const {
  std::vector<MetricsSnapshot> parts = per_device_metrics();
  parts.push_back(metrics_.snapshot());
  return MetricsSnapshot::merged(parts, opt_.machine.hbm_bandwidth);
}

std::string Cluster::metrics_json() const {
  std::ostringstream os;
  os << "{\n\"merged\": " << metrics().json() << ",\n\"health\": [";
  const auto states = monitor_.states();
  for (std::size_t i = 0; i < states.size(); ++i) {
    os << (i ? "," : "") << '"' << health_state_name(states[i]) << '"';
  }
  os << "],\n\"devices\": [";
  const auto parts = per_device_metrics();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    os << (i ? ",\n" : "\n") << parts[i].json();
  }
  os << "\n]\n}";
  return os.str();
}

}  // namespace ascan::serve
