#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "sim/fault.hpp"

namespace ascan::serve {

namespace {

double secs(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

Clock::duration dur(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

bool valid_tile(std::size_t s) {
  return s == 16 || s == 32 || s == 64 || s == 128;
}

}  // namespace

Engine::Engine(EngineOptions opt)
    : opt_(std::move(opt)),
      metrics_(opt_.machine.hbm_bandwidth, opt_.device_id) {
  ASCAN_CHECK(opt_.num_workers >= 1, "serve::Engine: need >= 1 worker");
  ASCAN_CHECK(opt_.policy.max_batch >= 1,
              "serve::Engine: max_batch must be >= 1");
  ASCAN_CHECK(opt_.max_queue >= 1, "serve::Engine: max_queue must be >= 1");
  ASCAN_CHECK(opt_.interactive_reserve < opt_.max_queue,
              "serve::Engine: interactive_reserve must leave bulk capacity");
  ASCAN_CHECK(!opt_.steal_source || opt_.steal_poll_s > 0,
              "serve::Engine: steal_poll_s must be positive");
  const auto n = static_cast<std::size_t>(opt_.num_workers);
  sessions_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Session>(opt_.machine);
    s->set_retry_policy(opt_.retry);
    if (opt_.fault_plan.any()) s->set_fault_plan(opt_.fault_plan);
    sessions_.push_back(std::move(s));
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

Engine::~Engine() { shutdown(ShutdownMode::Drain); }

std::string Engine::validate(const Request& r) {
  if (r.x.empty()) return "empty input";
  switch (r.kind) {
    case OpKind::Cumsum:
      if (!valid_tile(r.tile)) return "invalid tile size";
      break;
    case OpKind::SegmentedCumsum:
      if (r.flags.size() != r.x.size()) return "flags length mismatch";
      break;
    case OpKind::TopP:
      if (!valid_tile(r.tile)) return "invalid tile size";
      if (!(r.p > 0.0 && r.p <= 1.0)) return "p must be in (0, 1]";
      if (!(r.u >= 0.0 && r.u < 1.0)) return "u must be in [0, 1)";
      break;
    case OpKind::Sort:
      if (!valid_tile(r.tile)) return "invalid tile size";
      break;
  }
  return {};
}

std::future<Response> Engine::submit(Request req) {
  metrics_.on_submitted();
  std::promise<Response> promise;
  std::future<Response> fut = promise.get_future();

  if (std::string err = validate(req); !err.empty()) {
    metrics_.on_rejected_invalid();
    promise.set_value(immediate_response(req.kind, Status::Rejected,
                                         "invalid request: " + err));
    return fut;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_ || stopped_) {
      metrics_.on_rejected_shutdown();
      promise.set_value(immediate_response(req.kind, Status::Rejected,
                                           "engine shutting down"));
      return fut;
    }
    // Bulk admissions stop interactive_reserve slots early, so a bulk
    // overload can never close the latency-sensitive lane.
    const std::size_t cap =
        req.priority == Priority::Interactive
            ? opt_.max_queue
            : opt_.max_queue - opt_.interactive_reserve;
    if (queue_.size() >= cap) {
      metrics_.on_rejected_capacity();
      std::ostringstream os;
      os << "queue full (" << queue_.size() << " pending, limit " << cap
         << " for " << (req.priority == Priority::Interactive
                            ? "interactive"
                            : "bulk")
         << " lane)";
      promise.set_value(
          immediate_response(req.kind, Status::Rejected, os.str()));
      return fut;
    }
    Pending p;
    p.req = std::move(req);
    p.promise = std::move(promise);
    p.enqueued = Clock::now();
    p.seq = next_seq_++;
    queue_.push(std::move(p));
    metrics_.on_admitted();
  }
  work_cv_.notify_all();
  return fut;
}

bool Engine::steal_and_execute(Session& session,
                               std::unique_lock<std::mutex>& lk) {
  // Lock rule: never hold this engine's mu_ while reaching into a sibling
  // device's queue — the sibling's worker may be about to do the converse.
  lk.unlock();
  std::vector<Pending> batch;
  try {
    batch = opt_.steal_source();
  } catch (...) {
    // A racing sibling shutdown is not this worker's problem.
  }
  if (batch.empty()) {
    lk.lock();
    return false;
  }
  metrics_.on_steal(batch.size());
  execute_batch(session, std::move(batch), Clock::now());
  lk.lock();
  return true;
}

void Engine::worker_main(std::size_t idx) {
  try {
    Session& session = *sessions_[idx];

    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      // Wait for local work or a stop. With a steal_source installed the
      // wait is sliced at steal_poll_s so an idle device takes a
      // sibling's bulk backlog instead of sleeping on an empty queue.
      while (!stopping_ && queue_.empty()) {
        if (opt_.steal_source) {
          work_cv_.wait_for(lk, dur(opt_.steal_poll_s),
                            [&] { return stopping_ || !queue_.empty(); });
          if (stopping_ || !queue_.empty()) break;
          steal_and_execute(session, lk);
        } else {
          work_cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
        }
      }
      if (queue_.empty()) {
        // Stopping with nothing left locally (submits are rejected once
        // stopping_ is set, so the queue stays empty). A draining device
        // helps its siblings finish before exiting — cluster drain runs
        // at the speed of the busiest device, not the idlest.
        if (stop_mode_ == ShutdownMode::Drain && opt_.steal_source) {
          while (steal_and_execute(session, lk)) {
          }
        }
        break;
      }
      if (stopping_ && stop_mode_ == ShutdownMode::Cancel) break;

      // Dynamic batching: hold the launch until a full batch is ready or
      // the oldest request's wait deadline expires. Shutdown (drain mode)
      // flushes immediately.
      const auto now = Clock::now();
      const auto deadline =
          queue_.head_enqueued(opt_.policy, now) +
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(opt_.policy.max_wait_s));
      work_cv_.wait_until(lk, deadline, [&] {
        return stopping_ ||
               queue_.full_batch_ready(opt_.policy, Clock::now());
      });
      if (queue_.empty()) {
        if (stopping_) continue;  // re-enter the drain/cancel epilogue
        continue;                 // another worker took the work
      }
      if (stopping_ && stop_mode_ == ShutdownMode::Cancel) break;

      const auto picked = Clock::now();
      std::vector<Pending> batch = queue_.pop_batch(opt_.policy, picked);
      lk.unlock();
      work_cv_.notify_all();  // residual work may be ready for peers
      execute_batch(session, std::move(batch), picked);
      lk.lock();
    }
  } catch (...) {
    // A worker must never terminate the process. Anything queued is
    // resolved as Cancelled by shutdown(); peers keep serving.
  }
}

void Engine::run_group(Session& session, std::vector<Pending>& batch,
                       std::vector<Response>& out) {
  const std::size_t b = batch.size();
  const Request& head = batch.front().req;
  const std::uint64_t launch_id =
      next_launch_id_.fetch_add(1, std::memory_order_relaxed);
  Report rep;
  switch (head.kind) {
    case OpKind::Cumsum: {
      // Variable-length rows: pad with zeros to the longest row. Trailing
      // zeros cannot change any prefix sum, so each row's first len_i
      // outputs are exactly the row's own scan.
      std::size_t lmax = 0;
      for (const auto& p : batch) lmax = std::max(lmax, p.req.x.size());
      std::vector<half> xs(b * lmax, half(0.0f));
      for (std::size_t i = 0; i < b; ++i) {
        std::copy(batch[i].req.x.begin(), batch[i].req.x.end(),
                  xs.begin() + static_cast<std::ptrdiff_t>(i * lmax));
      }
      auto r = session.cumsum_batched(xs, b, lmax, head.tile,
                                      head.ul1_schedule);
      for (std::size_t i = 0; i < b; ++i) {
        const auto row = r.values.begin() +
                         static_cast<std::ptrdiff_t>(i * lmax);
        out[i].values_f16.assign(
            row, row + static_cast<std::ptrdiff_t>(batch[i].req.x.size()));
      }
      rep = r.report;
      break;
    }
    case OpKind::SegmentedCumsum: {
      // Concatenate the flagged streams; each request's first element is a
      // forced segment start so carries never cross request boundaries.
      std::size_t total = 0;
      for (const auto& p : batch) total += p.req.x.size();
      std::vector<half> xs;
      std::vector<std::int8_t> fs;
      xs.reserve(total);
      fs.reserve(total);
      for (const auto& p : batch) {
        const std::size_t off = xs.size();
        xs.insert(xs.end(), p.req.x.begin(), p.req.x.end());
        fs.insert(fs.end(), p.req.flags.begin(), p.req.flags.end());
        fs[off] = 1;
      }
      auto r = session.segmented_cumsum(xs, fs);
      std::size_t off = 0;
      for (std::size_t i = 0; i < b; ++i) {
        const auto first = r.values.begin() + static_cast<std::ptrdiff_t>(off);
        out[i].values_f32.assign(
            first, first + static_cast<std::ptrdiff_t>(batch[i].req.x.size()));
        off += batch[i].req.x.size();
      }
      rep = r.report;
      break;
    }
    case OpKind::TopP: {
      const std::size_t vocab = head.x.size();
      std::vector<half> probs;
      probs.reserve(b * vocab);
      std::vector<double> u;
      u.reserve(b);
      for (const auto& p : batch) {
        probs.insert(probs.end(), p.req.x.begin(), p.req.x.end());
        u.push_back(p.req.u);
      }
      auto r = session.top_p_sample_batch(probs, b, vocab, head.p, u,
                                          head.tile);
      for (std::size_t i = 0; i < b; ++i) out[i].token = r.tokens[i];
      rep = r.report;
      break;
    }
    case OpKind::Sort: {
      ASCAN_ASSERT(b == 1, "sort requests are never coalesced");
      auto r = session.sort(head.x, head.descending, head.sort_algo,
                            head.tile);
      out[0].sorted_values = std::move(r.values);
      out[0].indices = std::move(r.indices);
      rep = r.report;
      break;
    }
  }
  for (std::size_t i = 0; i < b; ++i) {
    out[i].status = Status::Ok;
    out[i].kind = head.kind;
    out[i].report = rep;
    out[i].batch_size = b;
    out[i].device = opt_.device_id;
    out[i].launch_id = launch_id;
  }
}

void Engine::execute_batch(Session& session, std::vector<Pending> batch,
                           Clock::time_point picked) {
  const auto exec_begin = Clock::now();
  std::vector<Response> out(batch.size());
  try {
    run_group(session, batch, out);
  } catch (const std::exception& e) {
    if (batch.size() == 1) {
      Response r =
          immediate_response(batch[0].req.kind, Status::Failed, e.what());
      r.device = opt_.device_id;
      resolve(batch[0], std::move(r), picked, exec_begin);
      return;
    }
    // Fault isolation: the coalesced launch exhausted the engine-level
    // retry policy. Re-run the members individually, each under its
    // request-scoped policy, so one poisoned request cannot take down the
    // batch.
    for (auto& p : batch) execute_single(session, p, picked);
    return;
  }
  metrics_.on_batch(batch.size(), out[0].report);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    resolve(batch[i], std::move(out[i]), picked, exec_begin);
  }
}

void Engine::execute_single(Session& session, Pending& p,
                            Clock::time_point picked) {
  const auto exec_begin = Clock::now();
  std::vector<Response> out(1);
  std::vector<Pending> solo;
  solo.push_back(std::move(p));
  try {
    ScopedRetryPolicy scope(session, solo[0].req.retry.value_or(opt_.retry));
    run_group(session, solo, out);
    metrics_.on_batch(1, out[0].report);
    resolve(solo[0], std::move(out[0]), picked, exec_begin);
  } catch (const std::exception& e) {
    Response r =
        immediate_response(solo[0].req.kind, Status::Failed, e.what());
    r.device = opt_.device_id;
    resolve(solo[0], std::move(r), picked, exec_begin);
  }
}

void Engine::resolve(Pending& p, Response r, Clock::time_point picked,
                     Clock::time_point exec_begin) {
  const auto now = Clock::now();
  r.timing.queue_s = secs(picked - p.enqueued);
  r.timing.batch_s = secs(exec_begin - picked);
  r.timing.execute_s = secs(now - exec_begin);
  r.timing.total_s = secs(now - p.enqueued);
  if (r.status == Status::Ok) {
    metrics_.on_completed(r.kind, r.timing);
  } else {
    metrics_.on_failed(r.timing);
  }
  p.promise.set_value(std::move(r));
}

void Engine::begin_shutdown(ShutdownMode mode) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_ || stopped_) return;  // the first caller's mode wins
    stopping_ = true;
    stop_mode_ = mode;
  }
  work_cv_.notify_all();
}

void Engine::finish_shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;
    ASCAN_CHECK(stopping_,
                "serve::Engine: finish_shutdown before begin_shutdown");
  }
  for (auto& w : workers_) w.join();
  workers_.clear();

  // Cancel-mode leftovers (and anything a dead worker abandoned): resolve
  // every remaining future so none dangles.
  std::vector<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const BatchPolicy flush{.max_batch = 1, .max_wait_s = 0};
    while (!queue_.empty()) {
      auto b = queue_.pop_batch(flush, Clock::now());
      for (auto& p : b) leftovers.push_back(std::move(p));
    }
    stopped_ = true;
  }
  for (auto& p : leftovers) {
    metrics_.on_cancelled();
    p.promise.set_value(
        immediate_response(p.req.kind, Status::Cancelled,
                           "engine shutdown cancelled the request"));
  }
}

void Engine::shutdown(ShutdownMode mode) {
  begin_shutdown(mode);
  finish_shutdown();
}

bool Engine::stopped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stopped_;
}

std::size_t Engine::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

std::size_t Engine::bulk_backlog() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.bulk_size();
}

std::vector<Pending> Engine::steal_bulk_batch(std::size_t min_backlog) {
  std::vector<Pending> batch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return batch;
    // A cancelling shutdown owns its queued requests — they resolve as
    // Cancelled here, not on a thief.
    if (stopping_ && stop_mode_ == ShutdownMode::Cancel) return batch;
    batch = queue_.steal_bulk(opt_.policy, min_backlog);
  }
  if (!batch.empty()) metrics_.on_steal_suffered();
  return batch;
}

Engine::DeviceStats Engine::device_stats() const {
  DeviceStats d;
  bool first = true;
  for (const auto& s : sessions_) {
    const auto& c = s->cumulative_retry_stats();
    d.op_calls += c.calls;
    d.op_failures += c.failures;
    d.retries += c.retries;
    d.excluded_cores += c.excluded_cores;
    d.active_cores = first ? s->active_cores()
                           : std::min(d.active_cores, s->active_cores());
    first = false;
  }
  return d;
}

}  // namespace ascan::serve
