#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "sim/fault.hpp"

namespace ascan::serve {

namespace {

double secs(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

Clock::duration dur(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

bool valid_tile(std::size_t s) {
  return s == 16 || s == 32 || s == 64 || s == 128;
}

/// Consumer half of the sleep-race protocol: a worker registers itself
/// BEFORE (re-)checking for work, so a producer that pushed just after the
/// check is guaranteed to observe the registration (both sides seq_cst)
/// and send the wakeup. Scope-bound so a worker busy executing a batch is
/// not registered and producers skip the notify syscall entirely.
class WaiterGuard {
 public:
  explicit WaiterGuard(std::atomic<int>& w) : w_(w) {
    w_.fetch_add(1, std::memory_order_seq_cst);
  }
  ~WaiterGuard() { w_.fetch_sub(1, std::memory_order_seq_cst); }
  WaiterGuard(const WaiterGuard&) = delete;
  WaiterGuard& operator=(const WaiterGuard&) = delete;

 private:
  std::atomic<int>& w_;
};

}  // namespace

Engine::Engine(EngineOptions opt)
    : opt_(std::move(opt)),
      metrics_(opt_.machine.hbm_bandwidth, opt_.device_id),
      inbox_(2 * opt_.max_queue) {
  ASCAN_CHECK(opt_.num_workers >= 1, "serve::Engine: need >= 1 worker");
  ASCAN_CHECK(opt_.policy.max_batch >= 1,
              "serve::Engine: max_batch must be >= 1");
  ASCAN_CHECK(opt_.max_queue >= 1, "serve::Engine: max_queue must be >= 1");
  ASCAN_CHECK(opt_.interactive_reserve < opt_.max_queue,
              "serve::Engine: interactive_reserve must leave bulk capacity");
  ASCAN_CHECK(!opt_.steal_source || opt_.steal_poll_s > 0,
              "serve::Engine: steal_poll_s must be positive");
  const auto n = static_cast<std::size_t>(opt_.num_workers);
  sessions_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Session>(opt_.machine);
    s->set_retry_policy(opt_.retry);
    if (opt_.fault_plan.any()) s->set_fault_plan(opt_.fault_plan);
    sessions_.push_back(std::move(s));
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

Engine::~Engine() { shutdown(ShutdownMode::Drain); }

std::string Engine::validate(const Request& r) {
  if (r.x.empty()) return "empty input";
  if (std::isnan(r.deadline_s) || r.deadline_s < 0) {
    return "deadline must be >= 0";
  }
  switch (r.kind) {
    case OpKind::Cumsum:
      if (!valid_tile(r.tile)) return "invalid tile size";
      break;
    case OpKind::SegmentedCumsum:
      if (r.flags.size() != r.x.size()) return "flags length mismatch";
      break;
    case OpKind::TopP:
      if (!valid_tile(r.tile)) return "invalid tile size";
      // NaN must never reach a queue: it breaks GroupKey hash/equality
      // consistency (cluster affinity placement keys on p).
      if (std::isnan(r.p)) return "p must not be NaN";
      if (std::isnan(r.u)) return "u must not be NaN";
      if (!(r.p > 0.0 && r.p <= 1.0)) return "p must be in (0, 1]";
      if (!(r.u >= 0.0 && r.u < 1.0)) return "u must be in [0, 1)";
      break;
    case OpKind::Sort:
      if (!valid_tile(r.tile)) return "invalid tile size";
      break;
  }
  return {};
}

std::future<Response> Engine::submit(Request req) {
  metrics_.on_submitted();
  std::promise<Response> promise;
  std::future<Response> fut = promise.get_future();

  if (std::string err = validate(req); !err.empty()) {
    metrics_.on_rejected_invalid();
    promise.set_value(immediate_response(req.kind, Status::Rejected,
                                         "invalid request: " + err));
    return fut;
  }
  // Lock-free admission. The inflight guard is raised BEFORE the stopping
  // check: a submit that passes the check is visible to shutdown, which
  // waits for inflight == 0 before its final queue drain — so a racing
  // submission is either rejected here or fully served, never stranded
  // with an unresolved future.
  submits_inflight_.fetch_add(1, std::memory_order_seq_cst);
  if (stopping_.load(std::memory_order_seq_cst)) {
    submits_inflight_.fetch_sub(1, std::memory_order_release);
    metrics_.on_rejected_shutdown();
    promise.set_value(immediate_response(req.kind, Status::Rejected,
                                         "engine shutting down"));
    return fut;
  }
  // Bulk admissions stop interactive_reserve slots early, so a bulk
  // overload can never close the latency-sensitive lane. The depth ticket
  // (claim, then undo on over-cap) enforces the bound without mu_ and
  // doubles as the inbox ring's no-overflow guarantee.
  const bool interactive = req.priority == Priority::Interactive;
  const std::size_t cap = interactive
                              ? opt_.max_queue
                              : opt_.max_queue - opt_.interactive_reserve;
  const std::size_t prev = depth_.fetch_add(1, std::memory_order_seq_cst);
  if (prev >= cap) {
    depth_.fetch_sub(1, std::memory_order_seq_cst);
    submits_inflight_.fetch_sub(1, std::memory_order_release);
    metrics_.on_rejected_capacity();
    std::ostringstream os;
    os << "queue full (" << prev << " pending, limit " << cap << " for "
       << (interactive ? "interactive" : "bulk") << " lane)";
    promise.set_value(
        immediate_response(req.kind, Status::Rejected, os.str()));
    return fut;
  }
  if (!interactive) bulk_depth_.fetch_add(1, std::memory_order_relaxed);

  Pending p;
  p.req = std::move(req);
  p.promise = std::move(promise);
  p.enqueued = Clock::now();
  if (p.req.deadline_s > 0) p.deadline = p.enqueued + dur(p.req.deadline_s);
  p.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  // Admission is counted before the publish: the ring's release/acquire
  // pair then orders this bump before the worker-side completion bump, so
  // a metrics snapshot can never observe completed > admitted.
  metrics_.on_admitted();
  const bool singleton = !coalescible(p.req.kind);
  const std::size_t bucket = wake_bucket(p.req);
  if (!inbox_.try_push(std::move(p))) {
    // Unreachable while the depth ticket holds (ring is 2x the admission
    // bound), kept as a correctness backstop: fall back to the locked
    // path rather than spin or drop.
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push(std::move(p));
  }
  submits_inflight_.fetch_sub(1, std::memory_order_release);
  // Formation waiters are only nudged when this arrival plausibly
  // completes a batch: singletons pop alone, and a coalescible request
  // whose key bucket just reached a multiple of max_batch may have filled
  // one. Everything else leaves a deadline-bounded sleeper asleep.
  const std::uint32_t kp =
      key_pending_[bucket].fetch_add(1, std::memory_order_relaxed) + 1;
  const std::size_t mb = std::max<std::size_t>(opt_.policy.max_batch, 1);
  wake_workers(singleton || mb <= 1 || kp % mb == 0);
  return fut;
}

void Engine::drain_inbox_locked() {
  Pending p;
  while (inbox_.try_pop(p)) queue_.push(std::move(p));
}

void Engine::wake_workers(bool batch_ready) {
  // Producer side of the Dekker-style store/load pairing: publish (the
  // ring push), fence, then read the waiter counts. Either this read sees
  // the consumer's registration (notify below) or the consumer's
  // post-registration drain sees the push — both sides missing is an SB
  // litmus outcome seq_cst forbids. Only the idle wait is unbounded, so
  // only it gets the unconditional notify; formation waiters sleep on a
  // deadline and are nudged solely when a batch plausibly completed.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const bool idle = cv_waiters_.load(std::memory_order_seq_cst) != 0;
  const bool form =
      batch_ready && form_waiters_.load(std::memory_order_seq_cst) != 0;
  if (!idle && !form) return;
  // The empty critical section pins a racing waiter to one side of its
  // wait: it either has not re-checked yet (it will see the work) or it
  // is inside wait() and the notify lands after its mutex release.
  { std::lock_guard<std::mutex> lk(mu_); }
  if (idle) work_cv_.notify_all();
  if (form) form_cv_.notify_all();
}

void Engine::wake_all_waiters() {
  work_cv_.notify_all();
  form_cv_.notify_all();
}

void Engine::note_removed(const Pending& p) {
  depth_.fetch_sub(1, std::memory_order_seq_cst);
  if (p.req.priority != Priority::Interactive) {
    bulk_depth_.fetch_sub(1, std::memory_order_relaxed);
  }
  key_pending_[wake_bucket(p.req)].fetch_sub(1, std::memory_order_relaxed);
}

bool Engine::steal_and_execute(Session& session,
                               std::unique_lock<std::mutex>& lk) {
  // Lock rule: never hold this engine's mu_ while reaching into a sibling
  // device's queue — the sibling's worker may be about to do the converse.
  lk.unlock();
  std::vector<Pending> batch;
  try {
    batch = opt_.steal_source();
  } catch (...) {
    // A racing sibling shutdown is not this worker's problem.
  }
  if (batch.empty()) {
    lk.lock();
    return false;
  }
  metrics_.on_steal(batch.size());
  execute_batch(session, std::move(batch), Clock::now(), GroupExec::Stolen);
  lk.lock();
  return true;
}

void Engine::worker_main(std::size_t idx) {
  try {
    Session& session = *sessions_[idx];

    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      // Wait for local work or a stop. Register in cv_waiters_ BEFORE
      // draining the inbox (consumer half of the wake protocol), so a
      // producer pushing right after the drain sees the registration and
      // notifies. With a steal_source installed the wait is sliced at
      // steal_poll_s so an idle device takes a sibling's bulk backlog
      // instead of sleeping on an empty queue.
      {
        WaiterGuard wg(cv_waiters_);
        drain_inbox_locked();
        while (!stopping_.load() && queue_.empty()) {
          if (opt_.steal_source) {
            work_cv_.wait_for(lk, dur(opt_.steal_poll_s), [&] {
              drain_inbox_locked();
              return stopping_.load() || !queue_.empty();
            });
            if (stopping_.load() || !queue_.empty()) break;
            steal_and_execute(session, lk);
            drain_inbox_locked();
          } else {
            work_cv_.wait(lk, [&] {
              drain_inbox_locked();
              return stopping_.load() || !queue_.empty();
            });
          }
        }
      }
      if (queue_.empty()) {
        // Stopping with nothing left locally. Drain mode first waits out
        // any submit that passed the stopping check but has not published
        // yet (submits_inflight_), then drains the inbox once more — the
        // "drain serves everything admitted" guarantee covers that race.
        // A draining device also helps its siblings finish before
        // exiting — cluster drain runs at the speed of the busiest
        // device, not the idlest.
        if (stop_mode_ == ShutdownMode::Drain) {
          while (submits_inflight_.load(std::memory_order_seq_cst) != 0) {
            lk.unlock();
            std::this_thread::yield();
            lk.lock();
          }
          drain_inbox_locked();
          if (!queue_.empty()) continue;
          if (opt_.steal_source) {
            while (steal_and_execute(session, lk)) {
            }
          }
        }
        break;
      }
      if (stopping_.load() && stop_mode_ == ShutdownMode::Cancel) break;

      // Dynamic batching: hold the launch until a full batch is ready or
      // the oldest request's wait deadline expires. Shutdown (drain mode)
      // flushes immediately. A queued SLO deadline earlier than the
      // formation deadline caps the hold — batching slack must never be
      // the reason a deadline is missed (an already-late deadline makes
      // the wait return immediately and the pop go out partial).
      const auto now = Clock::now();
      auto deadline =
          queue_.head_enqueued(opt_.policy, now) +
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(opt_.policy.max_wait_s));
      deadline = std::min(deadline, queue_.earliest_deadline());
      {
        // Formation wait: deadline-bounded, so it lives on form_cv_ and
        // is only nudged by arrivals that plausibly complete a batch
        // (submit's key-bucket heuristic) or by control edges
        // (shutdown, steal hand-off, residual work). Per-arrival
        // notifies here were a measured ~20% of host wall time on
        // underfed devices — a futex round trip per request to evaluate
        // a predicate that almost always said "keep sleeping".
        WaiterGuard wg(form_waiters_);
        form_cv_.wait_until(lk, deadline, [&] {
          drain_inbox_locked();
          return stopping_.load() ||
                 queue_.full_batch_ready(opt_.policy, Clock::now());
        });
      }
      drain_inbox_locked();
      if (queue_.empty()) {
        if (stopping_.load()) continue;  // re-enter the drain/cancel epilogue
        continue;                        // another worker took the work
      }
      if (stopping_.load() && stop_mode_ == ShutdownMode::Cancel) break;

      const auto picked = Clock::now();
      std::vector<Pending> batch = queue_.pop_batch(opt_.policy, picked);
      for (const auto& p : batch) note_removed(p);
      const bool residual = !queue_.empty();
      lk.unlock();
      if (residual) wake_all_waiters();  // work may be ready for peers
      execute_batch(session, std::move(batch), picked);
      lk.lock();
    }
  } catch (...) {
    // A worker must never terminate the process. Anything queued is
    // resolved as Cancelled by shutdown(); peers keep serving.
  }
}

std::size_t Engine::admit_continuations(std::vector<StreamSlot>& slots,
                                        const GroupKey& key,
                                        std::size_t active) {
  if (active >= opt_.policy.max_batch) return 0;
  std::vector<Pending> extra;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // A cancelling shutdown owns the queue's requests (they resolve as
    // Cancelled); drain mode keeps feeding the launch — continuation
    // admission *is* how an in-flight launch helps drain.
    if (stopping_.load() && stop_mode_ == ShutdownMode::Cancel) return 0;
    drain_inbox_locked();
    extra = queue_.pop_matching(key, opt_.policy.max_batch - active,
                                opt_.policy, Clock::now());
    for (const auto& p : extra) note_removed(p);
  }
  if (extra.empty()) return 0;
  metrics_.on_continuation_admit(extra.size());
  const auto now = Clock::now();
  for (auto& p : extra) {
    StreamSlot s;
    s.p = std::move(p);
    s.picked = now;
    s.exec_begin = now;
    slots.push_back(std::move(s));
  }
  return extra.size();
}

void Engine::deliver_chunk(StreamSlot& slot, StreamChunk chunk,
                           std::uint64_t launch_id) {
  chunk.kind = slot.p.req.kind;
  chunk.device = opt_.device_id;
  chunk.launch_id = launch_id;
  const double latency = secs(Clock::now() - slot.p.enqueued);
  if (slot.resp.chunks_streamed == 0) slot.resp.timing.first_chunk_s = latency;
  slot.resp.chunks_streamed++;
  metrics_.on_chunk(latency);
  // Called with no engine lock held, so the callback may submit() — that
  // is the continuous-admission pattern. A throwing client callback must
  // not poison the launch for its batch neighbours.
  try {
    slot.p.req.on_chunk(chunk);
  } catch (...) {
  }
}

void Engine::finalize_slot(StreamSlot& slot, const Report& report_so_far,
                           std::size_t batch_size, std::uint64_t launch_id) {
  slot.done = true;
  slot.resp.status = Status::Ok;
  slot.resp.kind = slot.p.req.kind;
  slot.resp.report = report_so_far;
  slot.resp.batch_size = batch_size;
  slot.resp.device = opt_.device_id;
  slot.resp.launch_id = launch_id;
  // Latency metrics are stamped now (the request IS complete); the future
  // is fulfilled by the batch pass in execute_batch so waking its waiter
  // doesn't steal the core from the launch's remaining steps.
  stamp_response(slot.p, slot.resp, slot.picked, slot.exec_begin);
}

void Engine::fulfill_finalized(std::vector<StreamSlot>& slots) {
  for (auto& s : slots) {
    if (s.done && !s.fulfilled) {
      s.fulfilled = true;
      s.p.promise.set_value(std::move(s.resp));
    }
  }
}

void Engine::run_group_stepwise(Session& session,
                                std::vector<StreamSlot>& slots,
                                GroupExec mode) {
  const Request& head = slots.front().p.req;
  const GroupKey key = group_key(head);
  const std::uint64_t launch_id =
      next_launch_id_.fetch_add(1, std::memory_order_relaxed);
  const bool allow_admit = mode == GroupExec::Local && opt_.policy.continuous;
  // Tile-boundary preemption is confined to the resumable scans: their
  // host-side carry makes a park/resume bit-exact (the same property the
  // failover checkpoints lean on). Sort is monolithic and TopP rows are
  // atomic, so neither has a boundary worth parking at. Only Local
  // launches park — a thief must return a stolen batch complete.
  const bool preemptible =
      mode == GroupExec::Local && opt_.policy.preemption &&
      (head.kind == OpKind::Cumsum || head.kind == OpKind::SegmentedCumsum);
  // Stolen batches never stream: the thief runs them as one indivisible
  // throughput unit (see GroupExec).
  const auto streams = [&](const StreamSlot& s) {
    return mode != GroupExec::Stolen && static_cast<bool>(s.p.req.on_chunk);
  };
  // Canary-admitted members of the launch (counted at outcome time, since
  // continuation admission can add slots mid-launch): on a Probing device
  // only canary-tagged outcomes count toward readmission — a straggler
  // launch from before the quarantine must not vouch for the device.
  const auto canary_count = [&slots] {
    std::uint32_t n = 0;
    for (const auto& s : slots) n += s.p.req.canary ? 1u : 0u;
    return n;
  };
  // Copy of the aggregate report after the latest completed step, for the
  // partial-accounting path when a later step faults.
  Report partial;
  // Final aggregate report of a completed launch, fed (with the fault
  // outcome) to the cluster health monitor after the switch.
  Report fin;
  try {
    switch (head.kind) {
      case OpKind::Cumsum: {
        // One step = one l-tile column (l = s*s elements) of every active
        // row, zero-padded to the step's longest remainder — trailing
        // zeros cannot change any prefix, so each row's first take_i
        // outputs are exactly the row's own scan continued by its carry.
        auto ls = session.cumsum_batched_begin(head.tile, head.ul1_schedule);
        const std::size_t l = head.tile * head.tile;
        // Step scratch lives across iterations; assign/resize reuse its
        // capacity instead of reallocating every step.
        std::vector<std::size_t> act;
        std::vector<half> xs;
        std::vector<half> carries;
        for (;;) {
          const auto step_begin = Clock::now();
          act.clear();
          std::size_t step_len = 0;
          for (std::size_t i = 0; i < slots.size(); ++i) {
            if (slots[i].done) continue;
            act.push_back(i);
            step_len = std::max(
                step_len, std::min(l, slots[i].p.req.x.size() - slots[i].off));
          }
          if (act.empty()) break;
          xs.assign(act.size() * step_len, half(0.0f));
          carries.resize(act.size());
          for (std::size_t j = 0; j < act.size(); ++j) {
            const StreamSlot& s = slots[act[j]];
            const std::size_t take =
                std::min(step_len, s.p.req.x.size() - s.off);
            std::copy(
                s.p.req.x.begin() + static_cast<std::ptrdiff_t>(s.off),
                s.p.req.x.begin() + static_cast<std::ptrdiff_t>(s.off + take),
                xs.begin() + static_cast<std::ptrdiff_t>(j * step_len));
            carries[j] = s.carry;
          }
          auto r = session.cumsum_batched_step(ls, xs, act.size(), step_len,
                                               carries);
          partial = ls.report;
          for (std::size_t j = 0; j < act.size(); ++j) {
            StreamSlot& s = slots[act[j]];
            const std::size_t take =
                std::min(step_len, s.p.req.x.size() - s.off);
            const auto first =
                r.values.begin() + static_cast<std::ptrdiff_t>(j * step_len);
            const std::size_t chunk_off = s.off;
            s.resp.values_f16.insert(
                s.resp.values_f16.end(), first,
                first + static_cast<std::ptrdiff_t>(take));
            s.carry = s.resp.values_f16.back();
            s.off += take;
            const bool finished = s.off == s.p.req.x.size();
            if (streams(s)) {
              StreamChunk c;
              c.offset = chunk_off;
              c.values_f16.assign(
                  first, first + static_cast<std::ptrdiff_t>(take));
              c.last = finished;
              deliver_chunk(s, std::move(c), launch_id);
            }
            if (finished) {
              finalize_slot(s, ls.report, slots.size(), launch_id);
            }
          }
          // One wakeup pass for every row the step finished, before
          // admission so the freed clients' follow-ups can seat here.
          fulfill_finalized(slots);
          if (allow_admit) admit_continuations(slots, key, act.size());
          if (preemptible &&
              should_preempt(key, slots, secs(Clock::now() - step_begin))) {
            park_unfinished(slots);
            break;
          }
        }
        fin = session.cumsum_batched_finish(ls);
        metrics_.on_batch(slots.size(), fin);
        break;
      }
      case OpKind::SegmentedCumsum: {
        // Rows are independent flagged streams of different lengths; each
        // step takes every active row's next chunk (up to kStep elements),
        // concatenated — the Session forces a segment start per chunk and
        // threads each row's fp32 carry across steps.
        constexpr std::size_t kStep = 4096;
        auto ls = session.segmented_cumsum_begin();
        std::vector<std::size_t> act;
        std::vector<half> xs;
        std::vector<std::int8_t> fs;
        std::vector<std::size_t> row_len;
        std::vector<float> carries;
        for (;;) {
          const auto step_begin = Clock::now();
          act.clear();
          for (std::size_t i = 0; i < slots.size(); ++i) {
            if (!slots[i].done) act.push_back(i);
          }
          if (act.empty()) break;
          xs.clear();
          fs.clear();
          row_len.resize(act.size());
          carries.resize(act.size());
          for (std::size_t j = 0; j < act.size(); ++j) {
            const StreamSlot& s = slots[act[j]];
            const std::size_t take =
                std::min(kStep, s.p.req.x.size() - s.off);
            row_len[j] = take;
            carries[j] = s.fcarry;
            xs.insert(xs.end(),
                      s.p.req.x.begin() + static_cast<std::ptrdiff_t>(s.off),
                      s.p.req.x.begin() +
                          static_cast<std::ptrdiff_t>(s.off + take));
            fs.insert(fs.end(),
                      s.p.req.flags.begin() +
                          static_cast<std::ptrdiff_t>(s.off),
                      s.p.req.flags.begin() +
                          static_cast<std::ptrdiff_t>(s.off + take));
          }
          auto r = session.segmented_cumsum_step(ls, xs, fs, row_len, carries);
          partial = ls.report;
          std::size_t roff = 0;
          for (std::size_t j = 0; j < act.size(); ++j) {
            StreamSlot& s = slots[act[j]];
            const std::size_t take = row_len[j];
            const auto first =
                r.values.begin() + static_cast<std::ptrdiff_t>(roff);
            const std::size_t chunk_off = s.off;
            s.resp.values_f32.insert(
                s.resp.values_f32.end(), first,
                first + static_cast<std::ptrdiff_t>(take));
            s.fcarry = s.resp.values_f32.back();
            s.off += take;
            roff += take;
            const bool finished = s.off == s.p.req.x.size();
            if (streams(s)) {
              StreamChunk c;
              c.offset = chunk_off;
              c.values_f32.assign(
                  first, first + static_cast<std::ptrdiff_t>(take));
              c.last = finished;
              deliver_chunk(s, std::move(c), launch_id);
            }
            if (finished) {
              finalize_slot(s, ls.report, slots.size(), launch_id);
            }
          }
          fulfill_finalized(slots);
          if (allow_admit) admit_continuations(slots, key, act.size());
          if (preemptible &&
              should_preempt(key, slots, secs(Clock::now() - step_begin))) {
            park_unfinished(slots);
            break;
          }
        }
        fin = session.segmented_cumsum_finish(ls);
        metrics_.on_batch(slots.size(), fin);
        break;
      }
      case OpKind::TopP: {
        // A row's sample is already a multi-kernel pipeline, so one step =
        // one row; the single chunk carries the token.
        auto ls = session.top_p_begin(head.p, head.tile);
        for (std::size_t i = 0; i < slots.size(); ++i) {
          StreamSlot& s = slots[i];
          auto sr = session.top_p_step(ls, s.p.req.x, s.p.req.u);
          partial = ls.report;
          s.resp.token = sr.index;
          if (streams(s)) {
            StreamChunk c;
            c.token = sr.index;
            c.last = true;
            deliver_chunk(s, std::move(c), launch_id);
          }
          finalize_slot(s, ls.report, slots.size(), launch_id);
          fulfill_finalized(slots);
          if (allow_admit) {
            admit_continuations(slots, key, slots.size() - (i + 1));
          }
        }
        fin = session.top_p_finish(ls);
        metrics_.on_batch(slots.size(), fin);
        break;
      }
      case OpKind::Sort: {
        // No batched sort kernel (ROADMAP open item) and no meaningful
        // resumable slice — runs monolithic, never streams or admits.
        ASCAN_ASSERT(slots.size() == 1, "sort requests are never coalesced");
        StreamSlot& s = slots.front();
        auto r = session.sort(s.p.req.x, s.p.req.descending,
                              s.p.req.sort_algo, s.p.req.tile);
        s.resp.sorted_values = std::move(r.values);
        s.resp.indices = std::move(r.indices);
        fin = r.report;
        metrics_.on_batch(1, fin);
        finalize_slot(s, fin, 1, launch_id);
        break;
      }
    }
  } catch (const ascend::sim::FaultError& e) {
    // The traffic a fault burned must not vanish from the bandwidth
    // figures: completed steps plus the failing attempt are recorded
    // against failed_batches before the fallback path takes over.
    Report burned = partial;
    burned += e.attempt_report();
    metrics_.on_batch_abandoned(burned);
    // Health outcome before rethrow: the cluster's failover_sink (run by
    // execute_batch's catch) must see the post-fault device state.
    if (opt_.outcome_sink) {
      opt_.outcome_sink(true, burned.retries, canary_count());
    }
    throw;
  } catch (...) {
    metrics_.on_batch_abandoned(partial);
    if (opt_.outcome_sink) {
      opt_.outcome_sink(true, partial.retries, canary_count());
    }
    throw;
  }
  if (opt_.outcome_sink) {
    opt_.outcome_sink(false, fin.retries, canary_count());
  }
}

void Engine::execute_batch(Session& session, std::vector<Pending> batch,
                           Clock::time_point picked, GroupExec mode) {
  const auto exec_begin = Clock::now();
  std::vector<StreamSlot> slots;
  slots.reserve(batch.size());
  for (auto& p : batch) {
    StreamSlot s;
    s.p = std::move(p);
    s.picked = picked;
    s.exec_begin = exec_begin;
    if (s.p.resume.active) {
      // Failover resume: seed the slot from the tile checkpoint the
      // faulted device stashed — the scan continues from the last
      // completed tile's carry instead of recomputing the prefix, and the
      // original batch timestamps keep the latency decomposition spanning
      // the whole failover.
      ResumeState& rs = s.p.resume;
      s.off = rs.off;
      s.carry = rs.carry;
      s.fcarry = rs.fcarry;
      s.resp.values_f16 = std::move(rs.prefix_f16);
      s.resp.values_f32 = std::move(rs.prefix_f32);
      s.resp.chunks_streamed = rs.chunks_streamed;
      s.resp.timing.first_chunk_s = rs.first_chunk_s;
      s.resp.preemptions = rs.preemptions;
      // resumed_from is *failover* provenance. A preemption park resumed
      // on its own device is the normal course of an SLO-tiered launch,
      // not a failover — only a checkpoint that crossed devices (fault
      // stash, or a parked batch drained off a dying device) records it.
      // Either way an earlier cross-device failover stays on the record:
      // a later same-device park must not launder the provenance away.
      s.resp.resumed_from =
          rs.preempted && rs.from_device == opt_.device_id
              ? rs.resumed_from
              : rs.from_device;
      if (rs.preempted && rs.off > 0) metrics_.on_preempted_tile_resumed();
      s.picked = rs.picked;
      s.exec_begin = rs.exec_begin;
      rs.active = false;
      rs.preempted = false;
    }
    // Reserve the full payload up front: steps append tile-sized slices,
    // and growth reallocations mid-launch are pure overhead.
    if (s.p.req.kind == OpKind::Cumsum) {
      s.resp.values_f16.reserve(s.p.req.x.size());
    } else if (s.p.req.kind == OpKind::SegmentedCumsum) {
      s.resp.values_f32.reserve(s.p.req.x.size());
    }
    slots.push_back(std::move(s));
  }
  batch.clear();
  const bool started_solo = slots.size() == 1;
  try {
    run_group_stepwise(session, slots, mode);
    // Preemption parks leave the launch cleanly (no exception) with
    // their slots unresolved and checkpointed; hand them back to the
    // queue so the interactive work they yielded to runs next.
    requeue_parked(slots);
  } catch (const std::exception& e) {
    // Already-finalized slots stay final (their streamed prefixes and
    // stamped responses are fulfilled below); only unresolved slots take a
    // fallback. With a cluster failover_sink installed, each unresolved
    // member is first offered — carrying its tile checkpoint — for
    // re-dispatch on a healthy sibling; whatever the sink hands back falls
    // through to the local path below.
    if (opt_.failover_sink) {
      std::vector<Pending> offer;
      for (auto& s : slots) {
        if (s.done) continue;
        stash_resume(s);
        offer.push_back(std::move(s.p));
      }
      std::vector<Pending> local = opt_.failover_sink(std::move(offer));
      for (auto& p : local) {
        if (mode == GroupExec::Isolated || started_solo) {
          Response r =
              immediate_response(p.req.kind, Status::Failed, e.what());
          r.device = opt_.device_id;
          resolve(p, std::move(r), p.resume.picked, p.resume.exec_begin);
        } else {
          // The isolation re-run consumes the stashed checkpoint too —
          // a local resume from the last completed tile, under the
          // request-scoped retry policy.
          execute_single(session, p, p.resume.picked);
        }
      }
    } else {
      for (auto& s : slots) {
        if (s.done) continue;
        if (mode == GroupExec::Isolated || started_solo) {
          Response r =
              immediate_response(s.p.req.kind, Status::Failed, e.what());
          r.device = opt_.device_id;
          resolve(s.p, std::move(r), s.picked, s.exec_begin);
        } else {
          // Fault isolation: the coalesced launch exhausted the
          // engine-level retry policy. Re-run the members individually,
          // each under its request-scoped policy, so one poisoned request
          // cannot take down the batch. A partially-streamed request
          // restarts from offset 0.
          execute_single(session, s.p, s.picked);
        }
      }
    }
  }
  // Batch-fulfilled futures: every slot that completed in this launch gets
  // its promise set here, in one pass, outside any lock — the waiters all
  // wake after the launch's work is done instead of preempting it.
  fulfill_finalized(slots);
}

bool Engine::should_preempt(const GroupKey& key,
                            const std::vector<StreamSlot>& slots,
                            double step_s) {
  // Only an all-bulk remainder may park: an interactive row riding the
  // launch (continuation admission) is already being served at its own
  // lane's latency — parking it to serve different interactive work
  // would just shuffle the miss around.
  bool any_unfinished = false;
  std::size_t active = 0;
  auto oldest = Clock::time_point::max();
  for (const auto& s : slots) {
    if (s.done) continue;
    if (s.p.req.priority == Priority::Interactive) return false;
    any_unfinished = true;
    active++;
    oldest = std::min(oldest, s.p.enqueued);
  }
  if (!any_unfinished) return false;
  const auto now = Clock::now();
  // Aging composes with preemption exactly as it composes with lane
  // priority: a bulk launch whose oldest row has waited out the
  // starvation guard has earned the device and cannot be parked again.
  if (secs(now - oldest) >
      opt_.policy.aging_factor * opt_.policy.max_wait_s) {
    return false;
  }
  // Interactive requests matching this launch's key can still be seated
  // by continuation admission while rows are free — only then are they
  // no reason to park.
  const bool key_joinable =
      opt_.policy.continuous && active < opt_.policy.max_batch;
  const double horizon =
      opt_.policy.preempt_slack_s > 0 ? opt_.policy.preempt_slack_s : step_s;
  std::lock_guard<std::mutex> lk(mu_);
  // A cancelling shutdown owns the queue; nothing there will run anyway.
  if (stopping_.load() && stop_mode_ == ShutdownMode::Cancel) return false;
  // The interactive request worth yielding to may still be in the inbox.
  drain_inbox_locked();
  const auto dl =
      queue_.earliest_interactive_deadline(key_joinable ? &key : nullptr);
  if (dl == Clock::time_point::max()) return false;
  return dl <= now + dur(horizon);
}

void Engine::park_unfinished(std::vector<StreamSlot>& slots) {
  metrics_.on_preemption();
  for (auto& s : slots) {
    if (s.done) continue;
    s.resp.preemptions++;
    stash_resume(s);
    s.p.resume.preempted = true;
  }
}

void Engine::requeue_parked(std::vector<StreamSlot>& slots) {
  std::vector<Pending> parked;
  for (auto& s : slots) {
    if (!s.done && s.p.resume.active) parked.push_back(std::move(s.p));
  }
  if (parked.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Original seq and enqueue time ride along, so the parked rows
    // re-enter at their old FIFO position among their deadline peers and
    // the aging clock keeps running from the original admission. Even
    // mid-shutdown the push is safe: Drain serves the queue to empty and
    // Cancel's finish_shutdown resolves whatever remains — no future
    // dangles either way. The depth ticket is re-claimed without a cap
    // check: the rows were admitted once and never left the engine.
    for (auto& p : parked) {
      depth_.fetch_add(1, std::memory_order_seq_cst);
      if (p.req.priority != Priority::Interactive) {
        bulk_depth_.fetch_add(1, std::memory_order_relaxed);
      }
      key_pending_[wake_bucket(p.req)].fetch_add(1, std::memory_order_relaxed);
      queue_.push(std::move(p));
    }
  }
  wake_all_waiters();
}

void Engine::stash_resume(StreamSlot& s) {
  ResumeState& rs = s.p.resume;
  rs.active = true;
  rs.from_device = opt_.device_id;
  rs.preempted = false;
  rs.preemptions = s.resp.preemptions;
  rs.resumed_from = s.resp.resumed_from;
  rs.off = s.off;
  rs.carry = s.carry;
  rs.fcarry = s.fcarry;
  rs.prefix_f16 = std::move(s.resp.values_f16);
  rs.prefix_f32 = std::move(s.resp.values_f32);
  rs.chunks_streamed = s.resp.chunks_streamed;
  rs.first_chunk_s = s.resp.timing.first_chunk_s;
  rs.picked = s.picked;
  rs.exec_begin = s.exec_begin;
}

void Engine::execute_single(Session& session, Pending& p,
                            Clock::time_point picked) {
  ScopedRetryPolicy scope(session, p.req.retry.value_or(opt_.retry));
  std::vector<Pending> solo;
  solo.push_back(std::move(p));
  execute_batch(session, std::move(solo), picked, GroupExec::Isolated);
}

void Engine::stamp_response(Pending& p, Response& r, Clock::time_point picked,
                            Clock::time_point exec_begin) {
  const auto now = Clock::now();
  r.timing.queue_s = secs(picked - p.enqueued);
  r.timing.batch_s = secs(exec_begin - picked);
  r.timing.execute_s = secs(now - exec_begin);
  r.timing.total_s = secs(now - p.enqueued);
  if (p.deadline != Clock::time_point::max() && now > p.deadline) {
    r.deadline_missed = true;
    metrics_.on_deadline_miss();
  }
  if (r.status == Status::Ok) {
    metrics_.on_completed(r.kind, p.req.tier, r.timing);
  } else {
    metrics_.on_failed(r.timing);
  }
}

void Engine::resolve(Pending& p, Response r, Clock::time_point picked,
                     Clock::time_point exec_begin) {
  stamp_response(p, r, picked, exec_begin);
  p.promise.set_value(std::move(r));
}

void Engine::begin_shutdown(ShutdownMode mode) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_.load() || stopped_) return;  // the first caller's mode wins
    stop_mode_ = mode;  // before stopping_: workers read mode under mu_
    stopping_.store(true, std::memory_order_seq_cst);
  }
  wake_all_waiters();
}

void Engine::finish_shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;
    ASCAN_CHECK(stopping_.load(),
                "serve::Engine: finish_shutdown before begin_shutdown");
  }
  for (auto& w : workers_) w.join();
  workers_.clear();

  // A submit that passed the stopping check before the flag landed may
  // still be publishing; wait it out so the final drain below is really
  // final (its inbox push is then visible, its future resolved here).
  while (submits_inflight_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }

  // Cancel-mode leftovers (and anything a dead worker abandoned): resolve
  // every remaining future so none dangles.
  std::vector<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    drain_inbox_locked();
    const BatchPolicy flush{.max_batch = 1, .max_wait_s = 0};
    while (!queue_.empty()) {
      auto b = queue_.pop_batch(flush, Clock::now());
      for (auto& p : b) {
        note_removed(p);
        leftovers.push_back(std::move(p));
      }
    }
    stopped_ = true;
  }
  for (auto& p : leftovers) {
    metrics_.on_cancelled();
    p.promise.set_value(
        immediate_response(p.req.kind, Status::Cancelled,
                           "engine shutdown cancelled the request"));
  }
}

void Engine::shutdown(ShutdownMode mode) {
  begin_shutdown(mode);
  finish_shutdown();
}

bool Engine::stopped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stopped_;
}

std::size_t Engine::queue_depth() const {
  // Mu_-free: the admission ticket counts inbox + batcher occupancy. The
  // cluster's placement loop reads every shard's depth per submit, so
  // this must never contend with the shards' own hot paths.
  return depth_.load(std::memory_order_seq_cst);
}

std::size_t Engine::bulk_backlog() const {
  return bulk_depth_.load(std::memory_order_seq_cst);
}

std::vector<Pending> Engine::steal_bulk_batch(std::size_t min_backlog) {
  std::vector<Pending> batch;
  // Cheap pre-check without mu_: a thief probing an empty sibling must
  // not serialize against that sibling's own workers.
  if (bulk_depth_.load(std::memory_order_seq_cst) < min_backlog) return batch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return batch;
    // A cancelling shutdown owns its queued requests — they resolve as
    // Cancelled here, not on a thief.
    if (stopping_.load() && stop_mode_ == ShutdownMode::Cancel) return batch;
    drain_inbox_locked();  // the stealable backlog may still be in-flight
    batch = queue_.steal_bulk(opt_.policy, min_backlog);
    for (const auto& p : batch) note_removed(p);
  }
  if (!batch.empty()) metrics_.on_steal_suffered();
  return batch;
}

bool Engine::inject(Pending& p) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_.load() || stopped_) return false;
    // Keep the original enqueue time (total latency spans the failover)
    // but re-sequence into this queue's FIFO order. No admission counting
    // (the request was admitted once, at its original shard) — but the
    // local depth ticket is claimed so queue_depth() stays truthful for
    // placement and the capacity check backs off accordingly.
    p.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    depth_.fetch_add(1, std::memory_order_seq_cst);
    if (p.req.priority != Priority::Interactive) {
      bulk_depth_.fetch_add(1, std::memory_order_relaxed);
    }
    key_pending_[wake_bucket(p.req)].fetch_add(1, std::memory_order_relaxed);
    queue_.push(std::move(p));
  }
  wake_all_waiters();
  return true;
}

std::vector<Pending> Engine::drain_queue() {
  std::vector<Pending> out;
  std::lock_guard<std::mutex> lk(mu_);
  // Shutdown owns the queue's requests (Drain executes them, Cancel
  // resolves them Cancelled in finish_shutdown); draining here would
  // race that accounting.
  if (stopping_.load() || stopped_) return out;
  drain_inbox_locked();
  const BatchPolicy flush{.max_batch = 1, .max_wait_s = 0};
  while (!queue_.empty()) {
    auto b = queue_.pop_batch(flush, Clock::now());
    for (auto& p : b) {
      note_removed(p);
      out.push_back(std::move(p));
    }
  }
  return out;
}

Engine::DeviceStats Engine::device_stats() const {
  DeviceStats d;
  bool first = true;
  for (const auto& s : sessions_) {
    const auto& c = s->cumulative_retry_stats();
    d.op_calls += c.calls;
    d.op_failures += c.failures;
    d.retries += c.retries;
    d.excluded_cores += c.excluded_cores;
    d.active_cores = first ? s->active_cores()
                           : std::min(d.active_cores, s->active_cores());
    first = false;
  }
  return d;
}

}  // namespace ascan::serve
