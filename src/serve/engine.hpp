// serve — the asynchronous request-serving engine.
//
// Layered on the persistent host execution engine of src/sim (PR 2): each
// worker thread owns an ascan::Session (and thus a pooled simulated
// device) and turns queued client requests into dynamically formed batched
// launches. The client surface is three calls:
//
//   serve::Engine engine({.policy = {.max_batch = 16,
//                                    .max_wait_s = 500e-6}});
//   auto fut = engine.submit(serve::Request::cumsum(x));
//   serve::Response r = fut.get();      // r.values_f16, r.report, r.timing
//   engine.shutdown(serve::ShutdownMode::Drain);
//
// Coalesced launches run *stepwise* (tile-granular slices via the Session
// begin/step/finish API) rather than as one opaque call, which buys two
// serving behaviours on the same step boundary:
//  * Continuous batching: between steps the worker re-checks the queue and
//    admits compatible newly-arrived requests (same GroupKey) into the
//    in-flight launch's free rows — iteration-level scheduling, toggled by
//    BatchPolicy::continuous (metrics: continuation_admits).
//  * Streaming: a Request with an on_chunk callback receives each of its
//    completed prefix slices as it lands; the future still resolves the
//    full Response afterwards (metrics: stream_chunks, chunk_latency).
//
// Guarantees:
//  * Every future resolves exactly once — success, typed-fault failure,
//    admission rejection or shutdown cancellation. Never a dangling future.
//  * Admission control: a bounded queue with an interactive-only reserve;
//    over-capacity submissions resolve immediately as Rejected with a
//    reason, they are never silently dropped.
//  * Fault isolation: if a batched launch fails its Session-level retry
//    policy, the engine re-executes the members individually, each under
//    its request-scoped RetryPolicy — one poisoned request cannot fail its
//    batch neighbours.
//  * Results are bit-exact with the equivalent direct Session calls
//    (tests/test_serve.cpp pins this for integer-valued workloads, where
//    every float operation is exact; for general data, batching/stepping
//    may reassociate carries by at most 1 ulp). Streamed chunks are
//    bit-exact prefixes of the final Response (never revised), and a
//    request admitted mid-launch produces results identical to a
//    standalone submit — per-row kernel math depends only on the row's
//    own data and carry, never on batch composition or padding.
//
// One Engine is one simulated device's serving front. serve::Cluster
// (cluster.hpp) composes N Engines behind one submit() with
// locality-aware placement and cross-device work stealing; the hooks it
// uses (device_id tagging, steal_source, the split begin/finish shutdown)
// are part of this header.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/metrics.hpp"
#include "serve/mpsc_queue.hpp"
#include "serve/request.hpp"

namespace ascan::serve {

/// How shutdown disposes of requests still queued.
enum class ShutdownMode {
  Drain,   ///< execute everything admitted, then stop
  Cancel,  ///< stop after in-flight batches; queued requests -> Cancelled
};

struct EngineOptions {
  BatchPolicy policy;
  /// Admission bound: bulk requests are rejected when the queue holds
  /// max_queue - interactive_reserve requests; interactive ones when it
  /// holds max_queue. The reserve keeps a latency-sensitive lane open
  /// under bulk overload.
  std::size_t max_queue = 256;
  std::size_t interactive_reserve = 16;
  int num_workers = 1;  ///< Sessions (simulated devices) serving the queue
  /// Device configuration of every worker Session. Defaults to the 910B4
  /// with ExecutorMode::Auto, so ASCAN_EXECUTOR selects the host executor.
  MachineConfig machine = MachineConfig::ascend_910b4();
  RetryPolicy retry{};     ///< engine-default resilience policy
  FaultPlan fault_plan{};  ///< armed on every worker Session when any()

  /// Cluster shard id stamped on every Response served here (0 for a
  /// standalone engine; the Cluster assigns 0..N-1).
  int device_id = 0;
  /// Cluster hook: when set, an idle worker polls this between short cv
  /// waits to take a whole formed bulk batch from a sibling device instead
  /// of sleeping until local work arrives. Must return an empty vector
  /// when nothing is stealable; must never block on this engine's locks.
  std::function<std::vector<Pending>()> steal_source;
  double steal_poll_s = 100e-6;  ///< idle poll cadence when stealing is on

  /// Cluster hook: per-launch outcome feed for the device health monitor.
  /// Called from the worker thread after every serving launch, with no
  /// engine lock held — `faulted` when the launch exhausted its retry
  /// policy (typed fault escaped), `retries` the recovered-relaunch count
  /// of a successful launch, `canaries` the number of canary-admitted
  /// requests (Request::canary) the launch carried. Must not block on
  /// this engine's locks.
  std::function<void(bool faulted, std::uint32_t retries,
                     std::uint32_t canaries)>
      outcome_sink;
  /// Cluster hook: every unresolved member of a faulted batch is offered
  /// here — each carries its tile checkpoint in Pending::resume — so the
  /// cluster can re-dispatch it to a healthy sibling. Returns the pendings
  /// it could NOT re-dispatch; those fall back to this engine's local
  /// isolation path. Called with no engine lock held. When unset, every
  /// member falls back locally (standalone-engine behaviour).
  std::function<std::vector<Pending>(std::vector<Pending>)> failover_sink;
};

class Engine {
 public:
  explicit Engine(EngineOptions opt = {});
  ~Engine();  ///< drains (ShutdownMode::Drain) if still running

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Argument validation shared with the Cluster front end: empty string
  /// when `r` is servable, else the rejection reason.
  static std::string validate(const Request& r);

  /// Thread-safe. Validates, admits (or rejects) and returns the future.
  std::future<Response> submit(Request req);

  /// Stops the workers. Idempotent; concurrent callers all block until
  /// the engine is fully stopped. After return, every future ever handed
  /// out is resolved and further submits resolve as Rejected.
  void shutdown(ShutdownMode mode);

  /// Two-phase shutdown for multi-device owners: begin_shutdown() signals
  /// the stop (non-blocking, so a cluster stops every device in parallel);
  /// finish_shutdown() joins the workers and resolves leftovers.
  /// shutdown() == begin + finish.
  void begin_shutdown(ShutdownMode mode);
  void finish_shutdown();

  bool stopped() const;
  std::size_t queue_depth() const;
  /// Bulk-lane backlog (the stealable part of the queue).
  std::size_t bulk_backlog() const;

  /// Work-stealing entry point, called by a sibling device's idle worker
  /// (through the cluster): pops one whole formed bulk batch when the bulk
  /// backlog holds at least `min_backlog` requests. Interactive requests
  /// are never handed out. Empty while a cancelling shutdown is in
  /// progress (those requests resolve as Cancelled here).
  std::vector<Pending> steal_bulk_batch(std::size_t min_backlog);

  /// Cluster failover entry point: enqueues an already-admitted Pending
  /// (re-dispatched from a sick sibling, possibly carrying a resume
  /// checkpoint) without counting a new admission — the request was
  /// admitted once, at its original shard. Returns false (leaving `p`
  /// intact) when this engine is stopping or stopped.
  bool inject(Pending& p);
  /// Cluster quarantine drain: removes and returns every queued request so
  /// the cluster can re-dispatch them to healthy shards. Empty while a
  /// shutdown is in progress (shutdown owns the queue's requests then).
  std::vector<Pending> drain_queue();

  /// Post-shutdown per-device degradation view, aggregated over the
  /// engine's Sessions. Reading it while workers are live is racy.
  struct DeviceStats {
    int active_cores = 0;  ///< min over sessions (cores stay offline)
    std::uint64_t op_calls = 0;
    std::uint64_t op_failures = 0;
    std::uint64_t retries = 0;
    std::uint64_t excluded_cores = 0;
  };
  DeviceStats device_stats() const;

  MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  std::string metrics_json() const { return metrics_.snapshot().json(); }
  const EngineOptions& options() const { return opt_; }

 private:
  /// How a batch reached this engine; controls continuation admission and
  /// streaming at the step boundaries of the launch.
  ///  * Local: popped from this engine's own queue — streams, and admits
  ///    compatible newly-arrived requests between steps (when
  ///    BatchPolicy::continuous).
  ///  * Stolen: taken from a sibling device's queue — executes as one
  ///    indivisible unit: no streaming (the requests' owners admitted them
  ///    elsewhere; their stream bookkeeping lives outside this engine) and
  ///    no admission (the thief must not graft its own queue onto a batch
  ///    it is merely helping drain).
  ///  * Isolated: single-request fault-isolation fallback — streams (from
  ///    offset 0 again if a partial stream preceded the failure), never
  ///    admits.
  enum class GroupExec { Local, Stolen, Isolated };

  /// One request riding an in-flight stepwise launch.
  struct StreamSlot {
    Pending p;
    Clock::time_point picked{};      ///< batch pick / continuation admission
    Clock::time_point exec_begin{};  ///< when this slot joined the launch
    Response resp;                   ///< payload accumulated step by step
    std::size_t off = 0;             ///< elements produced so far
    half carry = half(0.0f);         ///< Cumsum running prefix (carry-in)
    float fcarry = 0.0f;             ///< SegmentedCumsum running prefix
    bool done = false;       ///< finalized: response stamped
    bool fulfilled = false;  ///< promise set (by a batch fulfilment pass)
  };

  void worker_main(std::size_t idx);
  /// Unlocks `lk`, asks the steal_source for a batch and executes it on
  /// `session`; relocks. Returns whether a batch was stolen.
  bool steal_and_execute(Session& session, std::unique_lock<std::mutex>& lk);
  void execute_batch(Session& session, std::vector<Pending> batch,
                     Clock::time_point picked,
                     GroupExec mode = GroupExec::Local);
  /// Runs one request alone under its request-scoped RetryPolicy.
  void execute_single(Session& session, Pending& p, Clock::time_point picked);
  /// Drives the coalesced launch tile-by-tile via the Session stepwise API:
  /// scatters every completed slice into its slot (streaming it when the
  /// request asked), resolves slots the moment their last slice lands, and
  /// between steps admits compatible queued requests into free rows (mode
  /// Local + policy.continuous). On a typed fault it records the partial
  /// Report (failed_batches / sim_* counters) and rethrows with every
  /// unresolved slot's Pending intact for the caller's fallback.
  void run_group_stepwise(Session& session, std::vector<StreamSlot>& slots,
                          GroupExec mode);
  /// Continuation admission: pops queued requests matching `key` into
  /// `slots` (up to max_batch total active rows). Returns how many joined.
  std::size_t admit_continuations(std::vector<StreamSlot>& slots,
                                  const GroupKey& key, std::size_t active);
  /// Delivers one streamed chunk to the slot's callback (no lock held) and
  /// records first-chunk timing + chunk metrics.
  void deliver_chunk(StreamSlot& slot, StreamChunk chunk,
                     std::uint64_t launch_id);
  /// Marks the slot Ok and stamps launch bookkeeping + latency metrics at
  /// true completion time. The future is NOT fulfilled here — the batch's
  /// futures are all set in one pass by fulfill_finalized() after the
  /// launch leaves the step loop, so client wakeups never interleave with
  /// (and context-switch against) the remaining steps.
  void finalize_slot(StreamSlot& slot, const Report& report_so_far,
                     std::size_t batch_size, std::uint64_t launch_id);
  /// Batch fulfilment: sets every finalized-but-unfulfilled slot's promise
  /// in one pass, outside any engine lock. Called once per step (after the
  /// scatter loop, before continuation admission, so freed clients can
  /// resubmit into the same launch) and once at the end of execute_batch
  /// as the catch-all for exception paths.
  void fulfill_finalized(std::vector<StreamSlot>& slots);
  /// Stashes the slot's tile checkpoint into its Pending (Pending::resume)
  /// so a failover target can continue the row from the last completed
  /// tile.
  void stash_resume(StreamSlot& slot);

  /// Tile-boundary preemption predicate, evaluated at each step boundary
  /// of a Local Cumsum/SegmentedCumsum launch: true when every unfinished
  /// slot is bulk-lane, none has aged past the starvation guard (aging
  /// outranks preemption), and a queued interactive request's deadline
  /// falls within the preemption horizon (policy.preempt_slack_s, or the
  /// previous step's wall duration when 0). Requests matching `key` are
  /// ignored while continuation admission could still seat them.
  bool should_preempt(const GroupKey& key,
                      const std::vector<StreamSlot>& slots, double step_s);
  /// Parks every unfinished slot as a preemption checkpoint
  /// (Pending::resume with preempted provenance) and counts the park.
  void park_unfinished(std::vector<StreamSlot>& slots);
  /// Re-queues preemption-parked pendings (original seq and enqueue time
  /// kept, no admission counting) so the next pop serves the interactive
  /// work first and the parked batch resumes bit-exact afterwards.
  void requeue_parked(std::vector<StreamSlot>& slots);

  /// Stamps timing decomposition, deadline verdict and completion metrics
  /// into `r` (at call time — callers invoke it the moment the outcome is
  /// known, even when the future is fulfilled later in a batch pass).
  void stamp_response(Pending& p, Response& r, Clock::time_point picked,
                      Clock::time_point exec_begin);
  /// stamp_response + immediate future fulfilment (failure/cancel paths).
  void resolve(Pending& p, Response r, Clock::time_point picked,
               Clock::time_point exec_begin);

  /// Moves everything the submitters pushed into the batcher. Callers hold
  /// mu_ — the batcher's lane structures are still mutex-guarded; only the
  /// submit() -> inbox_ handoff is lock-free.
  void drain_inbox_locked();
  /// Producer half of the sleep-race protocol: seq_cst fence, then notify
  /// only when a worker is registered in cv_waiters_ (paired with the
  /// consumer's register-then-drain order — see DESIGN.md "Host hot
  /// path"). `batch_ready` additionally nudges formation waiters —
  /// workers sleeping out a partial batch's max_wait window on form_cv_.
  /// Those waits are deadline-bounded, so skipping the nudge for
  /// arrivals that cannot complete a batch costs at most the formation
  /// window the policy already tolerates, and it is what keeps a
  /// lightly-loaded device's worker from a futex round trip per request.
  void wake_workers(bool batch_ready);
  /// Wakes every waiter on both condition variables (shutdown, steal
  /// hand-offs, residual-work announcements — the rare control edges).
  void wake_all_waiters();
  /// Accounting when a request leaves the queue for execution (pop, steal,
  /// drain, flush): undoes the depth_/bulk_depth_ admission ticket and the
  /// formation-wake bucket count.
  void note_removed(const Pending& p);
  /// key_pending_ bucket of a request's GroupKey (formation-wake
  /// heuristic).
  static std::size_t wake_bucket(const Request& r) {
    return group_key_hash(group_key(r)) % kWakeBuckets;
  }

  EngineOptions opt_;
  Metrics metrics_;

  std::mutex shutdown_mu_;  ///< serialises shutdown callers (join outside mu_)
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  /// Lock-free MPSC submission inbox: submit() publishes here (one
  /// fetch_add + release store, no mu_) and whichever worker holds mu_
  /// drains it into the batcher. Sized 2x the admission bound so the
  /// depth_ ticket guarantees a push can never find it full.
  MpscRing<Pending> inbox_;
  Batcher queue_;  ///< lane/EDF structures; guarded by mu_
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;                          // guarded by mu_
  ShutdownMode stop_mode_ = ShutdownMode::Drain;  // guarded by mu_
  /// Admission ticket: queued requests (inbox_ + batcher), bumped before
  /// the inbox push so capacity is enforced without mu_. bulk_depth_ is
  /// the bulk-lane share, for mu_-free bulk_backlog() steal probes.
  std::atomic<std::size_t> depth_{0};
  std::atomic<std::size_t> bulk_depth_{0};
  /// Submits past the stopping_ check whose inbox push has not landed
  /// yet. Shutdown waits for zero before the final drain, so a racing
  /// submit is either rejected or fully served — never stranded.
  std::atomic<std::uint64_t> submits_inflight_{0};
  /// Workers registered in the *idle* cv wait (queue empty; possibly
  /// indefinite). Producers skip the notify entirely when this is zero —
  /// the common saturated case — and pair a seq_cst fence with the
  /// waiter's registration to make the skip race-free. Idle waits are the
  /// only unbounded ones, so they keep the per-arrival notify.
  std::atomic<int> cv_waiters_{0};
  /// Workers registered in the *formation* wait (partial batch, sleeping
  /// until the max_wait window or an SLO deadline expires) on form_cv_.
  /// Only nudged when an arrival could complete a batch: these waits are
  /// time-bounded, so a skipped notify delays a pop by at most the
  /// formation window — never loses it.
  std::condition_variable form_cv_;
  std::atomic<int> form_waiters_{0};
  /// Pending-count per group_key_hash bucket, maintained lock-free by
  /// submit()/note_removed(). When an arrival brings its bucket to a
  /// multiple of max_batch, a full batch is plausibly ready and the
  /// formation waiters get their nudge. Collisions only over-count,
  /// which closes a batch window early — a scheduling nudge, never a
  /// correctness issue (the popping worker re-checks under mu_).
  static constexpr std::size_t kWakeBuckets = 64;
  std::array<std::atomic<std::uint32_t>, kWakeBuckets> key_pending_{};
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> next_launch_id_{1};  // 0 = never launched
  /// One Session (one simulated device context) per worker, owned by the
  /// engine so per-device state — excluded cores, cumulative retry stats —
  /// outlives the worker threads and is inspectable after shutdown.
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::thread> workers_;
};

}  // namespace ascan::serve
