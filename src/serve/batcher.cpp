#include "serve/batcher.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace ascan::serve {

GroupKey group_key(const Request& r) {
  GroupKey k;
  k.kind = r.kind;
  switch (r.kind) {
    case OpKind::Cumsum:
      k.tile = r.tile;
      k.ul1 = r.ul1_schedule;
      break;
    case OpKind::SegmentedCumsum:
      break;  // all segmented scans share one stream
    case OpKind::TopP:
      k.vocab = r.x.size();
      k.p = r.p == 0.0 ? 0.0 : r.p;  // fold -0.0 (== but different bits)
      k.tile = r.tile;
      break;
    case OpKind::Sort:
      break;  // singleton groups; key is irrelevant
  }
  return k;
}

std::uint64_t group_key_hash(const GroupKey& k) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix(static_cast<std::uint64_t>(k.kind));
  mix(static_cast<std::uint64_t>(k.tile));
  mix(k.ul1 ? 1 : 0);
  mix(static_cast<std::uint64_t>(k.vocab));
  // Canonicalize p before mixing so hash stays consistent with operator==:
  // 0.0 and -0.0 compare equal but have different bit patterns, and raw
  // bit_cast would scatter them to different cluster shards. NaN never
  // reaches a queue (Engine::validate rejects it) but is collapsed to one
  // pattern defensively — NaN payload bits must not drive placement.
  double p = k.p == 0.0 ? 0.0 : k.p;
  if (p != p) p = std::numeric_limits<double>::quiet_NaN();
  mix(std::bit_cast<std::uint64_t>(p));
  return h;
}

void Batcher::push(Pending p) {
  // EDF insert: each lane stays sorted by (deadline, seq). With no
  // deadlines in play every key is (max(), seq) and this degenerates to
  // plain FIFO — the pre-SLO behaviour, bit for bit. A re-queued request
  // (preemption park, failover inject) keeps its original seq, so it
  // re-enters at its original FIFO position among its deadline peers.
  auto& lane = p.req.priority == Priority::Interactive ? hi_ : lo_;
  note_inserted(&lane, p);
  const auto pos = std::upper_bound(
      lane.begin(), lane.end(), p, [](const Pending& a, const Pending& b) {
        if (a.deadline != b.deadline) return a.deadline < b.deadline;
        return a.seq < b.seq;
      });
  lane.insert(pos, std::move(p));
}

void Batcher::note_inserted(const std::deque<Pending>* lane,
                            const Pending& p) {
  (lane == &lo_ ? lo_enq_ : hi_enq_).insert(p.enqueued);
  ++key_counts_[group_key_hash(group_key(p.req))];
}

void Batcher::note_erased(const std::deque<Pending>* lane, const Pending& p) {
  auto& enq = lane == &lo_ ? lo_enq_ : hi_enq_;
  const auto it = enq.find(p.enqueued);
  if (it != enq.end()) enq.erase(it);
  const auto kc = key_counts_.find(group_key_hash(group_key(p.req)));
  if (kc != key_counts_.end() && --kc->second == 0) key_counts_.erase(kc);
}

Clock::time_point Batcher::oldest_enqueued() const {
  auto oldest = Clock::time_point::max();
  if (!lo_enq_.empty()) oldest = std::min(oldest, *lo_enq_.begin());
  if (!hi_enq_.empty()) oldest = std::min(oldest, *hi_enq_.begin());
  return oldest;
}

double Batcher::oldest_bulk_wait_s(Clock::time_point now) const {
  // The lane is EDF-ordered, not arrival-ordered, so the front is not
  // necessarily the oldest request; lo_enq_ tracks the minimum enqueue
  // time so the starvation guard stays O(1) — head() evaluates it on
  // every pop-predicate wake.
  if (lo_enq_.empty()) return 0;
  return std::chrono::duration<double>(now - *lo_enq_.begin()).count();
}

const Pending* Batcher::head(const BatchPolicy& policy,
                             Clock::time_point now) const {
  // Aging decides the *lane*, EDF (the lane order) decides the request:
  // bulk work that has aged past the starvation guard outranks the
  // interactive lane; otherwise interactive first. Within the winning
  // lane the front is the earliest deadline (FIFO among equals).
  if (!lo_.empty()) {
    if (oldest_bulk_wait_s(now) > policy.aging_factor * policy.max_wait_s ||
        hi_.empty()) {
      return &lo_.front();
    }
  }
  return hi_.empty() ? nullptr : &hi_.front();
}

Clock::time_point Batcher::head_enqueued(const BatchPolicy& policy,
                                         Clock::time_point now) const {
  const Pending* h = head(policy, now);
  return h ? h->enqueued : now;
}

bool Batcher::full_batch_ready(const BatchPolicy& policy,
                               Clock::time_point now) const {
  const Pending* h = head(policy, now);
  if (h == nullptr) return false;
  if (!coalescible(h->req.kind)) return true;  // singleton: nothing to wait for
  if (policy.max_batch <= 1) return true;
  // O(1) via the per-key count — this runs on every pop-predicate wake.
  const auto it = key_counts_.find(group_key_hash(group_key(h->req)));
  return it != key_counts_.end() && it->second >= policy.max_batch;
}

std::vector<Pending> Batcher::pop_batch(const BatchPolicy& policy,
                                        Clock::time_point now) {
  std::vector<Pending> out;
  const Pending* h = head(policy, now);
  if (h == nullptr) return out;
  const GroupKey key = group_key(h->req);
  const bool batchable = coalescible(h->req.kind);
  const std::size_t want = batchable ? std::max<std::size_t>(policy.max_batch, 1)
                                     : 1;
  // Take matching requests from the head's lane first (preserves the
  // priority decision head() made), then top up from the other lane.
  std::deque<Pending>* first =
      (!lo_.empty() && h == &lo_.front()) ? &lo_ : &hi_;
  std::deque<Pending>* second = first == &lo_ ? &hi_ : &lo_;
  for (auto* lane : {first, second}) {
    for (auto it = lane->begin(); it != lane->end() && out.size() < want;) {
      if (group_key(it->req) == key) {
        note_erased(lane, *it);
        out.push_back(std::move(*it));
        it = lane->erase(it);
      } else {
        ++it;
      }
    }
  }
  return out;
}

std::vector<Pending> Batcher::pop_matching(const GroupKey& key,
                                           std::size_t max_n,
                                           const BatchPolicy& policy,
                                           Clock::time_point now) {
  std::vector<Pending> out;
  if (max_n == 0) return out;
  // Starvation guard: if any non-matching request has aged past the bulk
  // aging threshold, stop feeding the in-flight launch and let the worker
  // finish it so the aged work gets a batch of its own. Fast path first:
  // when even the globally-oldest queued request is inside the limit, no
  // non-matching one can be past it — O(1), and the common case at every
  // step boundary of a healthy launch. Only an aged queue pays the scan.
  const double limit = policy.aging_factor * policy.max_wait_s;
  const auto oldest = oldest_enqueued();
  if (oldest != Clock::time_point::max() &&
      std::chrono::duration<double>(now - oldest).count() > limit) {
    for (const auto* lane : {&hi_, &lo_}) {
      for (const auto& p : *lane) {
        if (group_key(p.req) == key) continue;
        const double waited =
            std::chrono::duration<double>(now - p.enqueued).count();
        if (waited > limit) return out;
      }
    }
  }
  for (auto* lane : {&hi_, &lo_}) {
    for (auto it = lane->begin(); it != lane->end() && out.size() < max_n;) {
      if (coalescible(it->req.kind) && group_key(it->req) == key) {
        note_erased(lane, *it);
        out.push_back(std::move(*it));
        it = lane->erase(it);
      } else {
        ++it;
      }
    }
  }
  return out;
}

Clock::time_point Batcher::earliest_deadline() const {
  // Lanes are EDF-sorted, so each front carries its lane's minimum.
  auto dl = Clock::time_point::max();
  if (!hi_.empty()) dl = std::min(dl, hi_.front().deadline);
  if (!lo_.empty()) dl = std::min(dl, lo_.front().deadline);
  return dl;
}

Clock::time_point Batcher::earliest_interactive_deadline(
    const GroupKey* exclude_key) const {
  for (const auto& p : hi_) {
    if (p.deadline == Clock::time_point::max()) break;  // EDF: rest are later
    if (exclude_key != nullptr && group_key(p.req) == *exclude_key) continue;
    return p.deadline;
  }
  return Clock::time_point::max();
}

std::vector<Pending> Batcher::steal_bulk(const BatchPolicy& policy,
                                         std::size_t min_backlog) {
  std::vector<Pending> out;
  if (lo_.empty() || lo_.size() < std::max<std::size_t>(min_backlog, 1)) {
    return out;
  }
  const GroupKey key = group_key(lo_.front().req);
  const std::size_t want = coalescible(lo_.front().req.kind)
                               ? std::max<std::size_t>(policy.max_batch, 1)
                               : 1;
  for (auto it = lo_.begin(); it != lo_.end() && out.size() < want;) {
    if (group_key(it->req) == key) {
      note_erased(&lo_, *it);
      out.push_back(std::move(*it));
      it = lo_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

}  // namespace ascan::serve
