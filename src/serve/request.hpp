// serve — request/response vocabulary of the asynchronous serving engine.
//
// A Request is one client-sized unit of work (one scan, one sort, one
// sampling draw); the engine coalesces compatible queued requests into the
// library's batched launches (cumsum_batched / segmented_cumsum /
// top_p_sample_batch) and scatters the results back per request. Clients
// never see the batching: submit() returns a std::future<Response> that
// resolves exactly once, whatever happens (success, typed fault, admission
// rejection, shutdown cancellation).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/ascan.hpp"

namespace ascan::serve {

/// Operator families the serving engine accepts.
enum class OpKind : std::uint8_t {
  Cumsum,           ///< row scan, served via cumsum_batched (fp16 out)
  SegmentedCumsum,  ///< segmented scan, served via segmented_cumsum (fp32 out)
  Sort,             ///< fp16 radix/baseline sort (per-request launch)
  TopP,             ///< nucleus sampling, served via top_p_sample_batch
};

constexpr const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::Cumsum: return "cumsum";
    case OpKind::SegmentedCumsum: return "segmented_cumsum";
    case OpKind::Sort: return "sort";
    case OpKind::TopP: return "top_p";
  }
  return "?";
}

/// Admission lanes. Interactive requests are picked before bulk ones (the
/// latency-sensitive lane of an LLM serving stack); bulk requests are
/// protected from total starvation by an aging factor (see Batcher).
enum class Priority : std::uint8_t { Interactive, Bulk };

/// SLO tiers: a latency-accounting label orthogonal to the Priority lane.
/// The tier selects which per-tier latency histogram a completion lands in
/// (serve::Metrics) and documents the intent of the request's deadline;
/// the *lane* is still chosen by Priority and the *urgency* by the
/// deadline (EDF within each lane — see Batcher). Conventionally Gold and
/// Silver ride the interactive lane and Bronze the bulk lane, but the
/// fields are independent so a tenant can run e.g. deadline-bearing bulk.
enum class SloTier : std::uint8_t { Gold, Silver, Bronze };

inline constexpr std::size_t kSloTierCount = 3;

constexpr const char* slo_tier_name(SloTier t) {
  switch (t) {
    case SloTier::Gold: return "gold";
    case SloTier::Silver: return "silver";
    case SloTier::Bronze: return "bronze";
  }
  return "?";
}

/// Terminal state of a served request.
enum class Status : std::uint8_t {
  Ok,        ///< executed; payload fields are valid
  Rejected,  ///< never admitted (queue full, invalid arguments, shutdown)
  Cancelled, ///< admitted but dropped by a cancelling shutdown
  Failed,    ///< admitted and executed, but the launch failed (typed fault)
};

constexpr const char* status_name(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::Rejected: return "rejected";
    case Status::Cancelled: return "cancelled";
    case Status::Failed: return "failed";
  }
  return "?";
}

/// One streamed partial result: the next completed slice of a request
/// being served by a stepwise (tile-granular) launch. Chunks arrive in
/// order with contiguous offsets; concatenating every chunk's payload
/// reproduces the final Response payload bit-exactly (each chunk is a
/// prefix segment — it is never revised by later chunks). For TopP the
/// single chunk carries the token instead of a payload slice.
struct StreamChunk {
  OpKind kind = OpKind::Cumsum;
  std::size_t offset = 0;  ///< element offset of this slice in the result
  std::vector<half> values_f16;   ///< Cumsum slice
  std::vector<float> values_f32;  ///< SegmentedCumsum slice
  std::int32_t token = -1;        ///< TopP (single terminal chunk)
  bool last = false;  ///< final chunk; the future resolves right after
  int device = -1;             ///< simulated device running the launch
  std::uint64_t launch_id = 0; ///< serving launch this slice came from
};

/// Per-chunk delivery callback. Invoked from the serving worker thread with
/// no engine lock held, so the callback may call Engine::submit() (that is
/// the continuous-admission pattern: react to a partial result by queueing
/// more work). It must not block for long — it stalls the whole launch.
/// If the launch fails mid-stream and is retried on the isolation path,
/// streaming restarts from offset 0 (chunks carry offsets precisely so a
/// client can handle the restart by truncating).
using StreamCallback = std::function<void(const StreamChunk&)>;

/// One client request. Use the factory functions; field meaning depends on
/// the op kind. `retry` overrides the engine-wide RetryPolicy for this
/// request when it executes on the fault-isolation (single-request) path.
struct Request {
  OpKind kind = OpKind::Cumsum;
  Priority priority = Priority::Interactive;

  std::vector<half> x;              ///< values / keys / probabilities
  std::vector<std::int8_t> flags;   ///< SegmentedCumsum: segment starts
  double p = 0.9;                   ///< TopP: nucleus mass
  double u = 0.0;                   ///< TopP: uniform variate in [0,1)
  bool descending = false;          ///< Sort
  SortAlgo sort_algo = SortAlgo::Radix;
  std::size_t tile = 128;           ///< matrix tile edge s
  bool ul1_schedule = false;        ///< Cumsum: ScanUL1 row schedule

  std::optional<RetryPolicy> retry;  ///< request-scoped resilience policy

  /// SLO tier label; selects the per-tier latency histogram.
  SloTier tier = SloTier::Silver;
  /// Relative deadline in seconds from submit(); 0 = best-effort (no
  /// deadline). Drives EDF ordering within the request's lane, the
  /// engine's tile-boundary preemption of bulk launches, and the
  /// deadline_misses counter. A missed deadline never cancels the request
  /// — it completes and is counted (Response::deadline_missed).
  double deadline_s = 0;
  /// Tenant identity for the cluster's per-tenant admission quotas; the
  /// empty string is the shared default bucket.
  std::string tenant;
  /// Internal: stamped by the cluster when the request was admitted
  /// through a Probing device's half-open canary slot, so the launch that
  /// serves it can be tagged as a canary verdict for the health monitor
  /// (stragglers must not readmit a device). Clients leave it false.
  bool canary = false;

  /// Optional streaming sink. When set and the request is served by a
  /// stepwise launch, each completed slice is delivered as it finishes;
  /// the future still resolves the full Response afterwards. Ignored
  /// (full-result-only) on stolen batches — see serve::Cluster.
  StreamCallback on_chunk;

  static Request cumsum(std::vector<half> x, std::size_t tile = 128,
                        bool ul1 = false,
                        Priority prio = Priority::Interactive) {
    Request r;
    r.kind = OpKind::Cumsum;
    r.x = std::move(x);
    r.tile = tile;
    r.ul1_schedule = ul1;
    r.priority = prio;
    return r;
  }
  static Request segmented_cumsum(std::vector<half> x,
                                  std::vector<std::int8_t> flags,
                                  Priority prio = Priority::Bulk) {
    Request r;
    r.kind = OpKind::SegmentedCumsum;
    r.x = std::move(x);
    r.flags = std::move(flags);
    r.priority = prio;
    return r;
  }
  static Request sort(std::vector<half> keys, bool descending = false,
                      SortAlgo algo = SortAlgo::Radix,
                      Priority prio = Priority::Bulk) {
    Request r;
    r.kind = OpKind::Sort;
    r.x = std::move(keys);
    r.descending = descending;
    r.sort_algo = algo;
    r.priority = prio;
    return r;
  }
  static Request top_p(std::vector<half> probs, double p, double u,
                       std::size_t tile = 128,
                       Priority prio = Priority::Interactive) {
    Request r;
    r.kind = OpKind::TopP;
    r.x = std::move(probs);
    r.p = p;
    r.u = u;
    r.tile = tile;
    r.priority = prio;
    return r;
  }

  /// Fluent SLO stamp for factory chaining:
  ///   engine.submit(Request::cumsum(x).with_slo(SloTier::Gold, 2e-3));
  Request& with_slo(SloTier t, double deadline = 0) {
    tier = t;
    deadline_s = deadline;
    return *this;
  }
  /// Fluent tenant stamp (cluster per-tenant admission quotas).
  Request& with_tenant(std::string id) {
    tenant = std::move(id);
    return *this;
  }
};

/// Host wall-clock latency decomposition of one request (seconds).
struct Timing {
  double queue_s = 0;    ///< enqueue -> picked by a batch former
  double batch_s = 0;    ///< picked -> batched launch issued (gather/pad)
  double execute_s = 0;  ///< launch issued -> results available
  double total_s = 0;    ///< enqueue -> future fulfilled
  /// enqueue -> first streamed chunk delivered; 0 when nothing streamed.
  double first_chunk_s = 0;
};

/// What the future resolves to. Exactly one of the payload groups is
/// populated on Ok, selected by `kind`; `report` is the simulated Report of
/// the launch that served the request (shared by all `batch_size` members
/// of the same batched launch).
struct Response {
  Status status = Status::Ok;
  std::string reason;  ///< human-readable cause for non-Ok statuses
  OpKind kind = OpKind::Cumsum;

  std::vector<half> values_f16;        ///< Cumsum
  std::vector<float> values_f32;       ///< SegmentedCumsum
  std::vector<half> sorted_values;     ///< Sort
  std::vector<std::int32_t> indices;   ///< Sort
  std::int32_t token = -1;             ///< TopP

  Report report;              ///< simulated profile of the serving launch
  std::size_t batch_size = 0; ///< requests coalesced into that launch
  /// Which simulated device executed the request: the serving Engine's
  /// device_id (a cluster shard index, 0 for a standalone engine). -1 for
  /// requests that never reached a device (rejections).
  int device = -1;
  /// Engine-local execution ordinal of the serving launch. Members of the
  /// same coalesced batch share it; consecutive launches on one device get
  /// increasing ids. 0 for requests that never launched.
  std::uint64_t launch_id = 0;
  /// Chunks delivered to this request's on_chunk callback (0 when the
  /// request didn't stream: no callback, Sort, or a stolen batch).
  std::size_t chunks_streamed = 0;
  /// Device failover provenance: when >= 0, the request's launch faulted
  /// on this device and the request was resumed elsewhere from its tile
  /// checkpoint (compare with `device`, the shard that finished it).
  int resumed_from = -1;
  /// Times this request's bulk launch was preempted at a tile boundary
  /// (parked as a checkpoint so a deadline-pressed interactive batch could
  /// run) before completing. 0 for an unpreempted run.
  std::uint32_t preemptions = 0;
  /// The request carried a deadline and resolved after it expired. The
  /// result is still valid — deadlines are accounting, not cancellation.
  bool deadline_missed = false;
  Timing timing;

  bool ok() const { return status == Status::Ok; }
};

/// A terminal response carrying no payload (rejections, cancellations,
/// typed failures). Shared by the Engine and the Cluster front end.
inline Response immediate_response(OpKind kind, Status status,
                                   std::string reason) {
  Response r;
  r.kind = kind;
  r.status = status;
  r.reason = std::move(reason);
  return r;
}

}  // namespace ascan::serve
