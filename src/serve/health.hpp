// serve — per-device health state machine of the cluster fault domain.
//
// A multi-device cluster must stop treating every device as permanently
// healthy: a device with a persistent fault (dead HBM stack, wedged DMA
// ring) keeps burning each routed request's bounded retry budget until
// callers see failures. The HealthMonitor turns per-launch outcomes —
// typed fault failures and retry-recovered successes, the signals
// Session RetryStats and FaultError already carry — into a per-device
// state machine:
//
//     Healthy ──score>=degraded──▶ Degraded ──score>=quarantine──▶ Quarantined
//        ▲                           │  ▲                              │
//        │◀──score<=healthy──────────┘  │                       hold elapses
//        │                              │ canary faults                │
//        │◀──canary_batches clean───── Probing ◀───────────────────────┘
//
//  * Healthy — full traffic: placement, spill and steal-victim eligible.
//  * Degraded — still placeable, but the owning Cluster re-dispatches this
//    device's faulted in-flight batches to healthy siblings (failover with
//    tile-checkpoint resume) instead of retrying them locally.
//  * Quarantined — removed from placement, spill and steal sets; its
//    queued work is drained to healthy shards. After quarantine_hold_s it
//    becomes Probing.
//  * Probing — half-open: up to canary_batches canary requests are let
//    through; canary_batches consecutive clean *canary* outcomes readmit
//    the device (Healthy, window reset), a faulting canary re-quarantines
//    it. Outcomes not tagged as canaries — stragglers from launches that
//    were in flight before the quarantine — only feed the scoring window,
//    and a canary that succeeded only via retries is not counted clean.
//
// Scoring is a sliding window of the last `window` launch outcomes per
// device: a typed fault scores 1.0, a success that needed retries scores
// retry_weight, a clean success 0. The mean over the window is compared
// against the thresholds once min_samples outcomes have arrived.
//
// The monitor is a passive, internally synchronized scoreboard: it decides
// *states*, the Cluster acts on the returned transitions (drain, failover,
// brownout). It never calls back into engines, so it can be consulted from
// any engine worker thread without lock-order concerns.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace ascan::serve {

enum class HealthState : std::uint8_t {
  Healthy,
  Degraded,
  Quarantined,
  Probing,
};

constexpr const char* health_state_name(HealthState s) {
  switch (s) {
    case HealthState::Healthy: return "healthy";
    case HealthState::Degraded: return "degraded";
    case HealthState::Quarantined: return "quarantined";
    case HealthState::Probing: return "probing";
  }
  return "?";
}

/// Tuning knobs of the per-device health state machine.
struct HealthPolicy {
  bool enabled = true;
  std::size_t window = 16;      ///< sliding window of launch outcomes
  std::size_t min_samples = 4;  ///< no verdict before this many outcomes
  double degraded_score = 0.25;    ///< Healthy -> Degraded at/above
  double quarantine_score = 0.5;   ///< Degraded -> Quarantined at/above
  double healthy_score = 0.125;    ///< Degraded -> Healthy at/below
  double retry_weight = 0.4;  ///< severity of a success that needed retries
  /// Wall-clock hold in Quarantined before the device turns Probing.
  double quarantine_hold_s = 1e-3;
  /// Canary budget of a Probing device: at most this many canaries in
  /// flight at once, and this many consecutive clean outcomes readmit.
  std::size_t canary_batches = 2;
};

/// One state-machine transition, as returned to the acting Cluster.
struct HealthTransition {
  int device = -1;
  HealthState from = HealthState::Healthy;
  HealthState to = HealthState::Healthy;
};

class HealthMonitor {
 public:
  using ClockT = std::chrono::steady_clock;

  HealthMonitor(int num_devices, HealthPolicy policy);

  /// Feeds one launch outcome for `device`. `faulted` means the launch
  /// exhausted its retry policy (typed FaultError escaped); `retries` is
  /// the recovered-relaunch count of a successful launch; `canaries` is
  /// how many canary-admitted requests the launch carried (0 for regular
  /// traffic). The tag is what distinguishes a real canary verdict from a
  /// straggler outcome of a launch that was already in flight when the
  /// device was quarantined — on a Probing device only canary-tagged
  /// outcomes advance (or reset) the readmission count, and a canary that
  /// needed retries to succeed is released but not counted clean. Returns
  /// the transition when the state changed.
  std::optional<HealthTransition> record(int device, bool faulted,
                                         std::uint32_t retries,
                                         std::uint32_t canaries = 0);

  /// Time-driven promotions (Quarantined -> Probing after the hold).
  /// Appends any transitions to `out` (may be null).
  void tick(std::vector<HealthTransition>* out = nullptr);

  HealthState state(int device) const;
  std::vector<HealthState> states() const;
  /// Current sliding-window fault score of `device` (0 when unsampled).
  double score(int device) const;

  /// Whether `device` may receive regular traffic (placement, spill,
  /// steal): Healthy or Degraded.
  bool placeable(int device) const;
  std::size_t placeable_count() const;

  // Lock-free summary for the submit hot path. The cluster consults the
  // monitor on EVERY submit; in the all-healthy steady state that must
  // not mean a mutex acquisition (let alone two plus a vector allocation,
  // which is what tick() + states() cost). Both words are recomputed
  // under mu_ after every state change and published with release
  // stores, so an acquire load observes a snapshot that was
  // simultaneously true at some instant — the same consistency the
  // locked states() gave the placement path.

  /// Summary bits over all devices (kAnyNotHealthy / kAnyQuarantined /
  /// kAnyProbing). 0 means every device is Healthy: placement can skip
  /// tick(), the canary scan, and the per-device state snapshot entirely.
  static constexpr std::uint32_t kAnyNotHealthy = 1u;
  static constexpr std::uint32_t kAnyQuarantined = 2u;
  static constexpr std::uint32_t kAnyProbing = 4u;
  std::uint32_t summary() const {
    return summary_.load(std::memory_order_acquire);
  }

  /// Bit i set -> device i is placeable (Healthy or Degraded). One atomic
  /// read replaces the locked states() vector on the placement path.
  /// Only meaningful for monitors with <= 64 devices; larger clusters
  /// must fall back to states() (the placement path checks).
  std::uint64_t placeable_mask() const {
    return placeable_mask_.load(std::memory_order_acquire);
  }

  /// Half-open admission: true reserves one canary slot on a Probing
  /// device (released when its outcome is recorded).
  bool try_admit_canary(int device);

  /// Whether any Probing device currently has a free canary slot — the
  /// brownout path consults this so a shed-candidate bulk request can be
  /// offered to a canary instead of being turned away (readmitting a
  /// device is exactly what ends the brownout). Advisory: the slot is only
  /// reserved by a later try_admit_canary().
  bool has_canary_slot() const;

  const HealthPolicy& policy() const { return policy_; }

 private:
  struct Dev {
    HealthState state = HealthState::Healthy;
    std::vector<double> ring;  ///< last `window` outcome severities
    std::size_t head = 0;
    std::size_t filled = 0;
    double sum = 0;
    ClockT::time_point quarantined_at{};
    std::size_t canaries_in_flight = 0;
    std::size_t canary_ok = 0;
  };

  double dev_score(const Dev& d) const {
    return d.filled ? d.sum / static_cast<double>(d.filled) : 0.0;
  }
  void push_outcome(Dev& d, double severity);
  /// Recomputes summary_ / placeable_mask_ from devs_. Call with mu_
  /// held after any state change.
  void publish_summary_locked();

  mutable std::mutex mu_;
  HealthPolicy policy_;
  std::vector<Dev> devs_;
  std::atomic<std::uint32_t> summary_{0};
  std::atomic<std::uint64_t> placeable_mask_{0};
};

}  // namespace ascan::serve
