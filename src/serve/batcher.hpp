// serve — dynamic batch former.
//
// Two priority lanes of admitted requests; pop_batch() extracts the next
// coalescible group: up to `max_batch` requests sharing a GroupKey, taken
// interactive-lane first (with an aging escape so bulk work is never
// starved outright). Grouping rules:
//
//   Cumsum          (tile, schedule) — row lengths may differ; the engine
//                   zero-pads rows to the longest and serves the group with
//                   one cumsum_batched launch (trailing zeros cannot change
//                   any prefix, so per-row results are unaffected).
//   SegmentedCumsum one group — requests concatenate into a single flagged
//                   stream (each request's first element is a forced
//                   segment start) and serve as one segmented_cumsum.
//   TopP            (vocab, p, tile) — rows concatenate into one
//                   top_p_sample_batch launch, one variate per row.
//   Sort            never coalesced (no batched sort kernel yet; see
//                   ROADMAP open items) — always a singleton group.
//
// The Batcher is not internally synchronised: the Engine calls every
// method under its queue mutex.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <future>
#include <set>
#include <unordered_map>
#include <vector>

#include "serve/request.hpp"

namespace ascan::serve {

using Clock = std::chrono::steady_clock;

/// Tile-granular checkpoint of a request whose batched stepwise launch
/// faulted mid-flight: everything needed to resume the row from its last
/// completed tile on another device instead of recomputing from zero. The
/// failing engine stashes it (Engine::execute_batch fault path), the
/// cluster re-dispatches the Pending, and whichever engine runs it next
/// seeds its StreamSlot from the checkpoint — the host-side carry makes
/// the resumed scan bit-exact with an unfaulted run for integer-valued
/// data (the same 1-ulp caveat as stepping itself otherwise).
struct ResumeState {
  bool active = false;
  int from_device = -1;  ///< device the checkpoint came from
  /// Checkpoint provenance: parked by tile-boundary preemption (an
  /// interactive deadline pre-empted the bulk launch) rather than stashed
  /// by a fault. Distinguishes the preempted_tiles_resumed counter from
  /// the failover tiles_resumed one.
  bool preempted = false;
  /// Parks this request has accumulated so far (threaded back into
  /// Response::preemptions when the resumed run completes).
  std::uint32_t preemptions = 0;
  /// Failover provenance already earned before this stash (the response's
  /// resumed_from at park/fault time). A later same-device park/resume
  /// must not erase an earlier cross-device failover from the response.
  int resumed_from = -1;
  std::size_t off = 0;   ///< elements already produced
  half carry{0.0f};      ///< Cumsum running prefix at `off`
  float fcarry = 0;      ///< SegmentedCumsum running prefix at `off`
  std::vector<half> prefix_f16;   ///< payload produced before the fault
  std::vector<float> prefix_f32;  ///< (moved back into the resumed slot)
  std::size_t chunks_streamed = 0;
  double first_chunk_s = 0;
  /// Original batch timestamps, so the resumed response's latency
  /// decomposition spans the failover instead of restarting the clock.
  Clock::time_point picked{};
  Clock::time_point exec_begin{};
};

/// An admitted request waiting in (or popped from) the queue.
struct Pending {
  Request req;
  std::promise<Response> promise;
  Clock::time_point enqueued{};
  /// Absolute deadline (enqueued + Request::deadline_s); time_point::max()
  /// for best-effort requests. EDF sort key within a lane.
  Clock::time_point deadline = Clock::time_point::max();
  std::uint64_t seq = 0;  ///< admission order (FIFO tie-break)
  ResumeState resume;     ///< failover/preemption checkpoint
};

/// Coalescing key: requests batch together iff their keys compare equal.
struct GroupKey {
  OpKind kind = OpKind::Cumsum;
  std::size_t tile = 0;
  bool ul1 = false;
  std::size_t vocab = 0;  ///< TopP row length (rows must agree)
  double p = 0;           ///< TopP nucleus mass (scalar per launch)

  bool operator==(const GroupKey&) const = default;
};

GroupKey group_key(const Request& r);

/// Deterministic (cross-run, cross-platform) FNV-1a hash of a GroupKey.
/// The cluster's affinity placement keys on it, so it must not depend on
/// std::hash seeding or pointer values.
std::uint64_t group_key_hash(const GroupKey& k);

/// Whether requests of this kind may share a launch at all.
constexpr bool coalescible(OpKind k) { return k != OpKind::Sort; }

/// Tuning knobs of the batch former.
struct BatchPolicy {
  std::size_t max_batch = 16;  ///< requests per serving launch
  double max_wait_s = 500e-6;  ///< deadline from the oldest queued request
  /// A bulk request older than aging_factor * max_wait_s is served ahead
  /// of newer interactive work (starvation guard).
  double aging_factor = 8.0;
  /// Continuous batching: between the steps of an in-flight stepwise
  /// launch, the worker admits compatible newly-arrived requests into the
  /// launch's free rows (iteration-level scheduling). Off = requests only
  /// join at batch-formation boundaries.
  bool continuous = true;
  /// Tile-boundary preemption: at each step boundary of an all-bulk scan
  /// launch (Cumsum / SegmentedCumsum), if a queued interactive request's
  /// deadline falls inside the preemption horizon the launch parks — every
  /// unfinished row becomes a host-side tile checkpoint (Pending::resume)
  /// re-queued for a bit-exact resume — so the interactive batch runs
  /// next instead of waiting out the bulk tail. A launch whose oldest
  /// unfinished row has itself aged past the starvation guard is never
  /// preempted (aging outranks preemption, exactly as it outranks lane
  /// priority in head()).
  bool preemption = true;
  /// Preemption horizon in seconds: park when an interactive deadline is
  /// closer than this to now. 0 = adaptive — use the wall duration of the
  /// launch's previous step (one more step would risk the deadline).
  double preempt_slack_s = 0;
};

class Batcher {
 public:
  /// Inserts in EDF position within the request's lane: ordered by
  /// (deadline, seq). Best-effort requests (deadline = max()) therefore
  /// stay FIFO among themselves and behind every deadline-bearing
  /// request; equal deadlines tie-break FIFO by admission seq — stable
  /// and deterministic across runs.
  void push(Pending p);

  bool empty() const { return hi_.empty() && lo_.empty(); }
  std::size_t size() const { return hi_.size() + lo_.size(); }
  std::size_t bulk_size() const { return lo_.size(); }

  /// Enqueue time of the request the next pop would lead with.
  Clock::time_point head_enqueued(const BatchPolicy& policy,
                                  Clock::time_point now) const;

  /// True when the next pop can already fill a whole batch (no reason for
  /// the worker to keep waiting for the deadline).
  bool full_batch_ready(const BatchPolicy& policy,
                        Clock::time_point now) const;

  /// Removes and returns the next batch: the head request (priority +
  /// aging order) plus every queued request with the same GroupKey, in
  /// lane order (EDF; FIFO among equal deadlines), up to max_batch.
  /// Never empty when size() > 0.
  std::vector<Pending> pop_batch(const BatchPolicy& policy,
                                 Clock::time_point now);

  /// Continuous-batching admission: removes and returns up to `max_n`
  /// queued requests whose GroupKey equals `key`, in lane order
  /// (interactive lane first, EDF within it), for joining an in-flight
  /// stepwise launch mid-stream. Returns
  /// empty when any *non-matching* queued request has aged past the
  /// starvation guard (aging_factor * max_wait_s): continuation admission
  /// must not keep extending a launch while incompatible work starves
  /// behind it.
  std::vector<Pending> pop_matching(const GroupKey& key, std::size_t max_n,
                                    const BatchPolicy& policy,
                                    Clock::time_point now);

  /// Removes and returns one whole formed batch for a work-stealing peer:
  /// the oldest bulk-lane request's group, FIFO, up to max_batch — taken
  /// from the bulk lane only. Interactive requests are never stolen (they
  /// stay on their admitted device, mid-deadline). Returns empty unless the
  /// bulk backlog holds at least `min_backlog` requests.
  std::vector<Pending> steal_bulk(const BatchPolicy& policy,
                                  std::size_t min_backlog);

  /// Earliest absolute deadline over both lanes; time_point::max() when
  /// no queued request carries one. O(1): lanes are EDF-sorted.
  Clock::time_point earliest_deadline() const;

  /// Earliest deadline among queued *interactive* requests — the signal
  /// the engine's tile-boundary preemption check watches. When
  /// `exclude_key` is non-null, requests whose GroupKey equals it are
  /// skipped: they can join the in-flight launch through continuation
  /// admission instead of preempting it.
  Clock::time_point earliest_interactive_deadline(
      const GroupKey* exclude_key) const;

 private:
  const Pending* head(const BatchPolicy& policy, Clock::time_point now) const;
  /// Longest wait among queued bulk requests (the aging-guard signal; the
  /// EDF lane order means the front is not necessarily the oldest, so the
  /// minimum enqueue time is tracked in lo_enq_ — O(1) here, O(log n) on
  /// each bulk-lane insert/erase. head() evaluates this on every pop
  /// predicate wake, so it must not rescan the lane).
  double oldest_bulk_wait_s(Clock::time_point now) const;
  /// Bookkeeping when a request enters a lane (enqueue-time multisets and
  /// per-key counts).
  void note_inserted(const std::deque<Pending>* lane, const Pending& p);
  /// Bookkeeping when a request leaves a lane (pop, match, steal).
  void note_erased(const std::deque<Pending>* lane, const Pending& p);
  /// Oldest enqueue time across both lanes; time_point::max() when empty.
  Clock::time_point oldest_enqueued() const;

  std::deque<Pending> hi_;  ///< Priority::Interactive
  std::deque<Pending> lo_;  ///< Priority::Bulk
  /// Multiset of lo_'s enqueue times; *begin() is the oldest bulk wait.
  std::multiset<Clock::time_point> lo_enq_;
  /// Same for hi_ — gives pop_matching's starvation guard an O(1) negative
  /// fast path (nothing anywhere has aged => nothing non-matching has).
  std::multiset<Clock::time_point> hi_enq_;
  /// Queued-request count per group_key_hash, so full_batch_ready is O(1)
  /// instead of rescanning both lanes on every pop-predicate wake. A hash
  /// collision can only over-count, closing a batch window early — a
  /// benign scheduling nudge, never a correctness issue (pop_batch still
  /// matches on the full key).
  std::unordered_map<std::uint64_t, std::size_t> key_counts_;
};

}  // namespace ascan::serve
