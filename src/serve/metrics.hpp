// serve — observability surface of the serving engine.
//
// Every request contributes its wall-clock latency decomposition to a set
// of log-bucketed histograms (p50/p95/p99 without storing samples), every
// batched launch contributes occupancy and its simulated Report, and the
// admission counters record why work was turned away. A snapshot exports
// as JSON (schema documented in DESIGN.md "Serving layer") so load
// generators and dashboards consume one stable format.
//
// Hot-path design (DESIGN.md "Host hot path"): the accumulator is sharded
// so no request completion ever touches a global mutex. Pure counters are
// seq_cst atomics; histogram-coupled events (completions, failures,
// batches, chunks) land in one of kShards per-thread shards, each behind
// its own — effectively uncontended — mutex. snapshot() merges the shards
// and reads the atomics in child-before-parent order (completions before
// admissions before submissions), which makes the exported view
// internally consistent: a request counted as completed in a snapshot is
// provably also counted as admitted and submitted in the same snapshot
// (the admission bump happens-before the completion bump through the
// submission queue's release/acquire chain, and the reader observes the
// completion first). MetricsSnapshot::invariant_violations() checks the
// resulting inequalities and exact histogram/counter pairings; the JSON
// export surfaces it for merged views.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace ascan::serve {

/// Fixed log2-bucketed latency histogram (1 µs granularity floor). Buckets
/// cover [1 µs, ~2^46 µs]; percentile() returns the upper bound of the
/// bucket containing the requested quantile — deterministic, allocation
/// free, and accurate to a factor of two, which is enough for SLO tiers.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 47;

  /// Bucket index of a latency: bucket 0 is [0, 1] µs, bucket b >= 1 is
  /// (2^(b-1), 2^b] µs, the last bucket absorbs everything larger.
  /// Exposed so the boundary regression tests can pin the math.
  static int bucket_of(double seconds);
  /// Upper latency bound (seconds) of bucket b: 2^b µs.
  static double bucket_upper_s(int b);

  void add(double seconds);

  /// Accumulates another histogram (cluster shard -> merged view).
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  double sum_s() const { return sum_s_; }
  double max_s() const { return max_s_; }
  double mean_s() const { return count_ ? sum_s_ / count_ : 0.0; }
  /// Latency (seconds) at quantile q in [0,1]; 0 when empty.
  double percentile(double q) const;

  std::string json() const;  ///< {"count":..,"mean_us":..,"p50_us":..,...}

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_s_ = 0;
  double max_s_ = 0;
};

/// Point-in-time copy of every serving counter (see Metrics::snapshot).
struct MetricsSnapshot {
  /// Simulated device (cluster shard) these counters belong to; -1 for a
  /// merged cluster view or the cluster front end's own counters.
  int device = -1;

  // --- Admission -------------------------------------------------------------
  std::uint64_t submitted = 0;   ///< submit() calls
  std::uint64_t admitted = 0;    ///< entered the queue
  std::uint64_t rejected_capacity = 0;  ///< queue-full rejections
  std::uint64_t rejected_invalid = 0;   ///< argument-validation rejections
  std::uint64_t rejected_shutdown = 0;  ///< submitted after shutdown began
  /// Cluster per-tenant admission-quota rejections (typed reason; counted
  /// by the cluster front end only).
  std::uint64_t rejected_quota = 0;
  std::uint64_t cancelled = 0;   ///< admitted, dropped by cancel-shutdown
  std::uint64_t completed = 0;   ///< resolved Ok
  std::uint64_t failed = 0;      ///< resolved Failed (typed fault)

  std::array<std::uint64_t, 4> by_kind{};  ///< completed, indexed by OpKind

  // --- Batching --------------------------------------------------------------
  std::uint64_t batches = 0;           ///< serving launches issued
  std::uint64_t batched_requests = 0;  ///< requests those launches carried
  std::uint64_t max_batch_observed = 0;
  double avg_batch_occupancy = 0;      ///< batched_requests / batches
  /// Requests admitted into an already in-flight stepwise launch between
  /// steps (continuous batching) rather than at a formation boundary.
  std::uint64_t continuation_admits = 0;
  /// Serving launches abandoned by a typed fault (the members fell back to
  /// per-request isolation, or resolved Failed on the isolation path). The
  /// abandoned launch's partial Report — completed steps plus the failing
  /// attempt — is folded into the sim_* counters so fault traffic is not
  /// undercounted.
  std::uint64_t failed_batches = 0;

  // --- Streaming -------------------------------------------------------------
  std::uint64_t stream_chunks = 0;  ///< partial-result chunks delivered
  /// Latency from request enqueue to each chunk's delivery. The p0/min of
  /// this histogram is the time-to-first-chunk picture at the engine level.
  LatencyHistogram chunk_latency;

  // --- Cluster: placement and work stealing ----------------------------------
  std::uint64_t routed_affinity = 0;  ///< placed on the GroupKey-hash target
  std::uint64_t routed_spill = 0;     ///< least-loaded fallback placements
  std::uint64_t steals = 0;           ///< formed batches stolen from peers
  std::uint64_t stolen_requests = 0;  ///< requests those stolen batches held
  std::uint64_t steals_suffered = 0;  ///< formed batches peers took from here

  // --- Cluster: device health and failover (see serve/health.hpp) ------------
  std::uint64_t health_transitions = 0;  ///< state-machine edges taken
  /// Requests re-dispatched from a sick device to a healthy sibling —
  /// both a quarantine's queue drain and mid-launch batch failover.
  std::uint64_t failovers = 0;
  /// Failovers that resumed from a nonzero tile checkpoint: the host-side
  /// carry of the last completed tile seeded the launch on the new device.
  std::uint64_t tiles_resumed = 0;
  std::uint64_t canary_probes = 0;  ///< canaries admitted to Probing devices
  /// Bulk requests shed by brownout admission (healthy capacity below the
  /// configured fraction). Each is also counted in rejected_capacity.
  std::uint64_t shed_brownout = 0;

  // --- SLO: deadlines and tile-boundary preemption ---------------------------
  /// Requests that carried a deadline and resolved after it expired.
  std::uint64_t deadline_misses = 0;
  /// Bulk stepwise launches parked at a tile boundary because a queued
  /// interactive deadline would otherwise have been missed (each park
  /// checkpoints every unfinished row — see Engine / DESIGN.md "SLO tiers
  /// & preemption").
  std::uint64_t preemptions = 0;
  /// Preemption-parked rows resumed from a nonzero tile checkpoint (the
  /// preemption analogue of the failover counter tiles_resumed).
  std::uint64_t preempted_tiles_resumed = 0;
  /// Total request latency split by SloTier (gold/silver/bronze), so an
  /// SLO dashboard reads each tier's p99 directly.
  std::array<LatencyHistogram, kSloTierCount> tier_latency;

  // --- Latency ---------------------------------------------------------------
  LatencyHistogram queue_latency;
  LatencyHistogram execute_latency;
  LatencyHistogram total_latency;

  // --- Simulated device-side counters ---------------------------------------
  double sim_time_s = 0;            ///< simulated execution time served
  std::uint64_t sim_gm_bytes = 0;   ///< GM read+write bytes moved
  int sim_launches = 0;             ///< simulated kernel launches
  int sim_steps = 0;                ///< stepwise-launch resumable slices
  std::uint32_t sim_retries = 0;    ///< fault-recovery relaunches
  std::uint32_t sim_excluded_cores = 0;
  /// Achieved fraction of peak HBM bandwidth over the served launches:
  /// sim_gm_bytes / sim_time_s / hbm_peak. The batched-serving analogue of
  /// the paper's bandwidth-utilisation figures.
  double sim_bandwidth_utilization = 0;

  /// Internal-consistency audit of this snapshot: empty string when every
  /// invariant holds, else a semicolon-separated list of violations.
  /// Checked inequalities (sound for a live-racing snapshot because of the
  /// reader's child-before-parent ordering — see Metrics):
  ///   admitted + rejected_* <= submitted
  ///   completed + failed + cancelled <= admitted
  /// and exact pairings updated atomically under one shard lock:
  ///   execute_latency.count == completed
  ///   total_latency.count == completed + failed
  ///   sum(by_kind) == completed, sum(tier_latency counts) == completed
  ///   chunk_latency.count == stream_chunks
  /// Meaningful for a standalone engine and for a cluster *merged* view.
  /// A single cluster shard can legitimately violate the admission
  /// inequalities: a failed-over request is admitted on one device and
  /// completed on another (admission is never double counted).
  std::string invariant_violations() const;

  std::string json() const;  ///< full snapshot as a JSON object

  /// Sums every raw counter and histogram of `parts` into one view and
  /// recomputes the derived fields against `hbm_peak_bytes_per_s` (the
  /// per-device peak — the merged utilisation therefore reads as the
  /// average utilisation of an *active* device, not of the aggregate
  /// cluster bandwidth). Used for the cluster's merged metrics.
  static MetricsSnapshot merged(const std::vector<MetricsSnapshot>& parts,
                                double hbm_peak_bytes_per_s);
};

/// Thread-safe sharded accumulator owned by the Engine. The on_* surface
/// is unchanged from the single-mutex version; only the storage is split.
///
/// Ordering rules the writers follow (and snapshot() relies on):
///  * on_submitted is bumped before on_admitted / on_rejected_* for the
///    same request (program order in submit()).
///  * on_admitted is bumped before the request is published to the
///    submission queue, so it happens-before the worker's completion/
///    cancellation bump for that request.
/// All counter RMWs are seq_cst (on x86 the same lock-prefixed instruction
/// as relaxed), so the reader's reverse-order loads close the torn-pair
/// window without any global lock.
class Metrics {
 public:
  explicit Metrics(double hbm_peak_bytes_per_s, int device = -1)
      : device_(device), hbm_peak_(hbm_peak_bytes_per_s) {}

  void on_submitted() { submitted_.fetch_add(1); }
  void on_admitted() { admitted_.fetch_add(1); }
  void on_rejected_capacity() { rejected_capacity_.fetch_add(1); }
  void on_rejected_invalid() { rejected_invalid_.fetch_add(1); }
  void on_rejected_shutdown() { rejected_shutdown_.fetch_add(1); }
  void on_cancelled() { cancelled_.fetch_add(1); }

  void on_routed_affinity() { routed_affinity_.fetch_add(1); }
  void on_routed_spill() { routed_spill_.fetch_add(1); }
  void on_steal_suffered() { steals_suffered_.fetch_add(1); }
  void on_steal(std::size_t stolen_request_count) {
    steals_.fetch_add(1);
    stolen_requests_.fetch_add(stolen_request_count);
  }

  void on_rejected_quota() { rejected_quota_.fetch_add(1); }
  void on_deadline_miss() { deadline_misses_.fetch_add(1); }
  void on_preemption() { preemptions_.fetch_add(1); }
  void on_preempted_tile_resumed() { preempted_tiles_resumed_.fetch_add(1); }

  void on_health_transition() { health_transitions_.fetch_add(1); }
  void on_failover() { failovers_.fetch_add(1); }
  void on_tiles_resumed() { tiles_resumed_.fetch_add(1); }
  void on_canary_probe() { canary_probes_.fetch_add(1); }
  void on_shed_brownout() { shed_brownout_.fetch_add(1); }
  void on_continuation_admit(std::size_t n) {
    continuation_admits_.fetch_add(n);
  }

  void on_completed(OpKind kind, SloTier tier, const Timing& t);
  void on_failed(const Timing& t);
  void on_batch(std::size_t occupancy, const Report& rep);
  /// A batched launch attempt failed and is falling back to isolation:
  /// count it and fold its partial Report into the sim_* counters so the
  /// traffic a fault burned is not silently dropped.
  void on_batch_abandoned(const Report& partial);
  /// One streamed chunk delivered, `latency_s` after its request enqueued.
  void on_chunk(double latency_s);

  MetricsSnapshot snapshot() const;

 private:
  /// Shard count: enough that a handful of worker threads (engines run
  /// 1-4 workers; the cluster adds submitter threads only for the cheap
  /// atomic counters) effectively never share a shard mutex.
  static constexpr std::size_t kShards = 8;

  /// Histogram-coupled state. Every event updates its whole pair set
  /// (counter + histograms) under the one shard mutex, so any snapshot
  /// observes exact pairings per shard — and, summed, overall.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::array<std::uint64_t, 4> by_kind{};
    std::uint64_t batches = 0;
    std::uint64_t batched_requests = 0;
    std::uint64_t max_batch_observed = 0;
    std::uint64_t failed_batches = 0;
    std::uint64_t stream_chunks = 0;
    LatencyHistogram queue_latency;
    LatencyHistogram execute_latency;
    LatencyHistogram total_latency;
    LatencyHistogram chunk_latency;
    std::array<LatencyHistogram, kSloTierCount> tier_latency;
    double sim_time_s = 0;
    std::uint64_t sim_gm_bytes = 0;
    int sim_launches = 0;
    int sim_steps = 0;
    std::uint32_t sim_retries = 0;
    std::uint32_t sim_excluded_cores = 0;
  };
  Shard& my_shard();

  int device_;
  double hbm_peak_;
  std::array<Shard, kShards> shards_;

  using Counter = std::atomic<std::uint64_t>;
  Counter submitted_{0};
  Counter admitted_{0};
  Counter rejected_capacity_{0};
  Counter rejected_invalid_{0};
  Counter rejected_shutdown_{0};
  Counter rejected_quota_{0};
  Counter cancelled_{0};
  Counter continuation_admits_{0};
  Counter routed_affinity_{0};
  Counter routed_spill_{0};
  Counter steals_{0};
  Counter stolen_requests_{0};
  Counter steals_suffered_{0};
  Counter health_transitions_{0};
  Counter failovers_{0};
  Counter tiles_resumed_{0};
  Counter canary_probes_{0};
  Counter shed_brownout_{0};
  Counter deadline_misses_{0};
  Counter preemptions_{0};
  Counter preempted_tiles_resumed_{0};
};

}  // namespace ascan::serve
