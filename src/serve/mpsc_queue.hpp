// serve — bounded lock-free submission ring (the engine's MPSC inbox).
//
// Dmitry Vyukov's bounded MPMC queue, used here as a multi-producer /
// single-consumer-at-a-time inbox between Engine::submit() and the worker
// threads: producers claim cells with one fetch_add on enqueue_pos_ and
// never touch the engine mutex; the draining worker (whichever one holds
// mu_) pops in FIFO-per-producer order. Each cell carries a sequence
// number that encodes its state (empty at lap k / full at lap k), so a
// push is one CAS-free fetch_add plus a release store and a pop is one
// fetch_add plus an acquire load — no per-element allocation, ever.
//
// Why bounded: the engine's admission ticket (Engine::depth_) caps live
// submissions at max_queue before any push, so a ring of 2*max_queue can
// never fill — the bound is a correctness backstop, not a flow-control
// mechanism (Engine::submit still keeps a locked fallback for the
// impossible-overflow case rather than spinning).
//
// Memory ordering contract (see DESIGN.md "Host hot path"):
//  * try_push publishes the element with a release store to the cell's
//    sequence; try_pop acquires it — everything the producer wrote before
//    the push (the Pending, its metrics bumps) is visible to the consumer.
//  * The queue itself is NOT the wakeup channel. Producers pair a seq_cst
//    fence + waiter-count check with the consumer's waiter registration
//    (Engine::wake_workers / WaiterGuard) to close the sleep race.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/check.hpp"

namespace ascan::serve {

template <typename T>
class MpscRing {
 public:
  /// Capacity is rounded up to a power of two >= max(min_capacity, 2).
  explicit MpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Multi-producer push. Returns false when the ring is full; `v` is left
  /// untouched in that case so the caller can fall back to a locked path.
  bool try_push(T&& v) {
    Cell* cell;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full: the cell is still occupied from last lap
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->val = std::move(v);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Consumer pop (safe for concurrent consumers too — the engine calls it
  /// under mu_, so in practice one drainer at a time). Returns false when
  /// the ring is empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty (or the producer of this cell mid-publish)
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->val);
    cell->val = T{};  // release payload memory now, not at the next lap
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (producers/consumers may be mid-flight).
  std::size_t size_approx() const {
    const std::size_t enq = enqueue_pos_.load(std::memory_order_relaxed);
    const std::size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
    return enq >= deq ? enq - deq : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T val{};
  };

  // Hot indices on separate cache lines so producers hammering
  // enqueue_pos_ do not invalidate the consumer's dequeue_pos_ line.
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
};

}  // namespace ascan::serve
