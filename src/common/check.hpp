// Error-checking macros used across the library.
//
// ASCAN_CHECK is for user-facing argument validation (throws
// ascan::Error), ASCAN_ASSERT for internal invariants (also throws, so
// tests can observe violations instead of aborting the process).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ascend {

/// Exception type thrown on API misuse or internal invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

// Tiny stream that lets the macros accept `<<`-style messages lazily.
class MessageStream {
 public:
  template <typename T>
  MessageStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace ascend

#define ASCAN_CHECK(cond, ...)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::ascend::detail::MessageStream ascan_ms_;                            \
      (void)(ascan_ms_ __VA_OPT__(<<) __VA_ARGS__);                         \
      ::ascend::detail::throw_check_failure("ASCAN_CHECK", #cond, __FILE__, \
                                            __LINE__, ascan_ms_.str());     \
    }                                                                       \
  } while (0)

#define ASCAN_ASSERT(cond, ...)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::ascend::detail::MessageStream ascan_ms_;                             \
      (void)(ascan_ms_ __VA_OPT__(<<) __VA_ARGS__);                          \
      ::ascend::detail::throw_check_failure("ASCAN_ASSERT", #cond, __FILE__, \
                                            __LINE__, ascan_ms_.str());      \
    }                                                                        \
  } while (0)
