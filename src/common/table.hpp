// Plain-text table printer used by the benchmark harness to emit the rows
// and series of each paper figure in a stable, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ascend {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  using Cell = std::variant<std::string, double, std::int64_t>;

  Table& add_row(std::vector<Cell> cells);

  /// Render with column alignment; doubles are formatted with
  /// `precision` significant digits.
  void print(std::ostream& os, int precision = 4) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

/// Pretty SI formatting helpers for bench output.
std::string format_si(double value, const char* unit);
std::string format_bytes(std::uint64_t bytes);
std::string format_time_s(double seconds);

}  // namespace ascend
