// Runtime data-type descriptors mirroring the types the Ascend 910B cube and
// vector units operate on (float16 with float32 accumulation, int8 with
// int32 accumulation, plus the auxiliary integer types used by the
// scan-based operators).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/half.hpp"

namespace ascend {

enum class DType : std::uint8_t {
  f16,
  f32,
  i8,
  u8,
  i16,
  u16,
  i32,
  u32,
};

constexpr std::size_t dtype_size(DType t) noexcept {
  switch (t) {
    case DType::i8:
    case DType::u8:
      return 1;
    case DType::f16:
    case DType::i16:
    case DType::u16:
      return 2;
    case DType::f32:
    case DType::i32:
    case DType::u32:
      return 4;
  }
  return 0;
}

constexpr std::string_view dtype_name(DType t) noexcept {
  switch (t) {
    case DType::f16: return "f16";
    case DType::f32: return "f32";
    case DType::i8: return "i8";
    case DType::u8: return "u8";
    case DType::i16: return "i16";
    case DType::u16: return "u16";
    case DType::i32: return "i32";
    case DType::u32: return "u32";
  }
  return "?";
}

template <typename T>
struct dtype_of;  // undefined on purpose

template <> struct dtype_of<half> { static constexpr DType value = DType::f16; };
template <> struct dtype_of<float> { static constexpr DType value = DType::f32; };
template <> struct dtype_of<std::int8_t> { static constexpr DType value = DType::i8; };
template <> struct dtype_of<std::uint8_t> { static constexpr DType value = DType::u8; };
template <> struct dtype_of<std::int16_t> { static constexpr DType value = DType::i16; };
template <> struct dtype_of<std::uint16_t> { static constexpr DType value = DType::u16; };
template <> struct dtype_of<std::int32_t> { static constexpr DType value = DType::i32; };
template <> struct dtype_of<std::uint32_t> { static constexpr DType value = DType::u32; };

template <typename T>
inline constexpr DType dtype_of_v = dtype_of<T>::value;

/// Accumulator type the cube unit uses for a given input element type:
/// float16 multiplies accumulate into float32, int8 into int32.
template <typename T> struct cube_accum;
template <> struct cube_accum<half> { using type = float; };
template <> struct cube_accum<float> { using type = float; };
template <> struct cube_accum<std::int8_t> { using type = std::int32_t; };
template <> struct cube_accum<std::uint8_t> { using type = std::int32_t; };
template <> struct cube_accum<std::int16_t> { using type = std::int32_t; };
template <> struct cube_accum<std::uint16_t> { using type = std::int32_t; };
template <> struct cube_accum<std::int32_t> { using type = std::int32_t; };

template <typename T>
using cube_accum_t = typename cube_accum<T>::type;

}  // namespace ascend
