#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

namespace ascend {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v > limit);
  return v % n;
}

std::vector<half> Rng::uniform_f16(std::size_t n, double lo, double hi) {
  std::vector<half> out(n);
  for (auto& v : out) v = half(static_cast<float>(uniform(lo, hi)));
  return out;
}

std::vector<float> Rng::uniform_f32(std::size_t n, double lo, double hi) {
  std::vector<float> out(n);
  for (auto& v : out) v = static_cast<float>(uniform(lo, hi));
  return out;
}

std::vector<std::int8_t> Rng::mask_i8(std::size_t n, double p_true) {
  std::vector<std::int8_t> out(n);
  for (auto& v : out) v = bernoulli(p_true) ? 1 : 0;
  return out;
}

std::vector<half> Rng::token_probs_f16(std::size_t n, double zipf_s) {
  std::vector<double> w(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), zipf_s);
    total += w[i];
  }
  // Shuffle so the heavy tokens land at random positions.
  for (std::size_t i = n; i > 1; --i) {
    std::swap(w[i - 1], w[next_below(i)]);
  }
  std::vector<half> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = half(static_cast<float>(w[i] / total));
  }
  return out;
}

}  // namespace ascend
