#include "common/half.hpp"

namespace ascend::detail {

namespace {
std::uint32_t float_bits(float f) noexcept {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}
float bits_float(std::uint32_t u) noexcept {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}
}  // namespace

std::uint16_t float_to_half_bits(float f) noexcept {
  const std::uint32_t u = float_bits(f);
  const std::uint32_t sign = (u >> 16) & 0x8000u;
  const std::uint32_t abs = u & 0x7fffffffu;

  if (abs >= 0x7f800000u) {  // Inf or NaN
    if (abs > 0x7f800000u) {
      // NaN: keep top mantissa bits, force quiet bit so payload is non-zero.
      std::uint32_t mant = (abs & 0x007fffffu) >> 13;
      return static_cast<std::uint16_t>(sign | 0x7c00u | mant | 0x0200u);
    }
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs >= 0x477ff000u) {
    // Overflows half range after rounding (>= 65520 rounds to inf).
    if (abs >= 0x477ff000u && abs < 0x47800000u) {
      // Values in [65520, 65536) round to +/-inf except those that round
      // down to 65504; the exact cutoff is 65519.99...; handled below by
      // generic rounding for abs < 0x477ff000. Here abs >= 0x477ff000
      // (65520.0f) -> inf.
      return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  int exp = static_cast<int>((abs >> 23)) - 127;  // unbiased exponent
  std::uint32_t mant = abs & 0x007fffffu;

  if (exp < -24) {
    // Too small: rounds to signed zero (values >= 2^-25 with mantissa may
    // round up to the smallest subnormal; check the boundary).
    if (exp == -25 && mant != 0) {
      return static_cast<std::uint16_t>(sign | 1u);  // round up to 2^-24
    }
    return static_cast<std::uint16_t>(sign);
  }
  if (exp < -14) {
    // Subnormal half. Implicit leading 1 becomes explicit.
    mant |= 0x00800000u;
    const int shift = -exp - 14 + 13;  // bits to drop (14..24)
    const std::uint32_t dropped = mant & ((1u << shift) - 1u);
    std::uint32_t result = mant >> shift;
    const std::uint32_t halfway = 1u << (shift - 1);
    if (dropped > halfway || (dropped == halfway && (result & 1u))) ++result;
    return static_cast<std::uint16_t>(sign | result);
  }

  // Normal half. Round mantissa from 23 to 10 bits (RNE).
  std::uint32_t result =
      static_cast<std::uint32_t>(exp + 15) << 10 | (mant >> 13);
  const std::uint32_t dropped = mant & 0x1fffu;
  if (dropped > 0x1000u || (dropped == 0x1000u && (result & 1u))) ++result;
  // Mantissa carry may overflow into the exponent; that is correct
  // behaviour (e.g. rounding 2047.5 ulps up to the next binade), and may
  // produce inf for the largest values.
  return static_cast<std::uint16_t>(sign | result);
}

float half_bits_to_float(std::uint16_t h) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x03ffu;

  if (exp == 0) {
    if (mant == 0) return bits_float(sign);  // signed zero
    // Subnormal: normalise.
    int e = -1;
    do {
      ++e;
      mant <<= 1;
    } while ((mant & 0x0400u) == 0);
    mant &= 0x03ffu;
    const std::uint32_t fexp = static_cast<std::uint32_t>(127 - 15 - e);
    return bits_float(sign | (fexp << 23) | (mant << 13));
  }
  if (exp == 0x1fu) {  // inf / NaN
    return bits_float(sign | 0x7f800000u | (mant << 13));
  }
  return bits_float(sign | ((exp - 15 + 127) << 23) | (mant << 13));
}

}  // namespace ascend::detail
