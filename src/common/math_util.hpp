// Small integer helpers shared by the simulator and the kernels.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/check.hpp"

namespace ascend {

template <typename T>
constexpr T ceil_div(T a, T b) noexcept {
  return (a + b - 1) / b;
}

template <typename T>
constexpr T align_up(T a, T alignment) noexcept {
  return ceil_div(a, alignment) * alignment;
}

constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  if (x <= 1) return 1;
  --x;
  x |= x >> 1;
  x |= x >> 2;
  x |= x >> 4;
  x |= x >> 8;
  x |= x >> 16;
  x |= x >> 32;
  return x + 1;
}

constexpr int log2_floor(std::uint64_t x) noexcept {
  int r = -1;
  while (x != 0) {
    x >>= 1;
    ++r;
  }
  return r;
}

}  // namespace ascend
