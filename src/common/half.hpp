// IEEE 754 binary16 ("half", Ascend float16) implemented from scratch.
//
// The Ascend cube unit consumes float16 operands and accumulates into
// float32; the vector unit operates on float16 directly. This type gives the
// simulator bit-exact float16 storage semantics: every arithmetic operation
// promotes to float, computes, and rounds back to the nearest representable
// binary16 value (round-to-nearest-even), including subnormals, infinities
// and NaN propagation.
//
// Conversion is the hottest single operation in the whole simulator (every
// emulated vector/cube lane crosses half<->float at least twice), so both
// directions are inline here and use the F16C hardware instructions when
// the translation unit is compiled with them available (-mf16c, wired up by
// the top-level CMake when the compiler supports it). The portable
// bit-twiddling implementations are kept — as the fallback, and under the
// *_portable names so tests can pin hardware/software bit-equivalence
// (tests/test_half.cpp runs the exhaustive h->f sweep and a stratified
// f->h sweep).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>

#if defined(__F16C__)
#include <immintrin.h>
#define ASCEND_HALF_HW 1
#endif

namespace ascend {

namespace detail {

inline std::uint32_t float_bits(float f) noexcept {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}
inline float bits_float(std::uint32_t u) noexcept {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

/// Software binary32 -> binary16 with round-to-nearest-even, bit-exact
/// against the F16C hardware conversion (pinned by tests).
inline std::uint16_t float_to_half_bits_portable(float f) noexcept {
  const std::uint32_t u = float_bits(f);
  const std::uint32_t sign = (u >> 16) & 0x8000u;
  const std::uint32_t abs = u & 0x7fffffffu;

  if (abs >= 0x7f800000u) {  // Inf or NaN
    if (abs > 0x7f800000u) {
      // NaN: keep top mantissa bits, force quiet bit so payload is non-zero.
      std::uint32_t mant = (abs & 0x007fffffu) >> 13;
      return static_cast<std::uint16_t>(sign | 0x7c00u | mant | 0x0200u);
    }
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs >= 0x477ff000u) {
    // Overflows half range after rounding (>= 65520 rounds to inf).
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  int exp = static_cast<int>((abs >> 23)) - 127;  // unbiased exponent
  std::uint32_t mant = abs & 0x007fffffu;

  if (exp < -24) {
    // Too small: rounds to signed zero (values >= 2^-25 with mantissa may
    // round up to the smallest subnormal; check the boundary).
    if (exp == -25 && mant != 0) {
      return static_cast<std::uint16_t>(sign | 1u);  // round up to 2^-24
    }
    return static_cast<std::uint16_t>(sign);
  }
  if (exp < -14) {
    // Subnormal half. Implicit leading 1 becomes explicit.
    mant |= 0x00800000u;
    const int shift = -exp - 14 + 13;  // bits to drop (14..24)
    const std::uint32_t dropped = mant & ((1u << shift) - 1u);
    std::uint32_t result = mant >> shift;
    const std::uint32_t halfway = 1u << (shift - 1);
    if (dropped > halfway || (dropped == halfway && (result & 1u))) ++result;
    return static_cast<std::uint16_t>(sign | result);
  }

  // Normal half. Round mantissa from 23 to 10 bits (RNE).
  std::uint32_t result =
      static_cast<std::uint32_t>(exp + 15) << 10 | (mant >> 13);
  const std::uint32_t dropped = mant & 0x1fffu;
  if (dropped > 0x1000u || (dropped == 0x1000u && (result & 1u))) ++result;
  // Mantissa carry may overflow into the exponent; that is correct
  // behaviour (e.g. rounding 2047.5 ulps up to the next binade), and may
  // produce inf for the largest values.
  return static_cast<std::uint16_t>(sign | result);
}

/// Software binary16 -> binary32 (exact; every half is representable).
inline float half_bits_to_float_portable(std::uint16_t h) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x03ffu;

  if (exp == 0) {
    if (mant == 0) return bits_float(sign);  // signed zero
    // Subnormal: normalise.
    int e = -1;
    do {
      ++e;
      mant <<= 1;
    } while ((mant & 0x0400u) == 0);
    mant &= 0x03ffu;
    const std::uint32_t fexp = static_cast<std::uint32_t>(127 - 15 - e);
    return bits_float(sign | (fexp << 23) | (mant << 13));
  }
  if (exp == 0x1fu) {  // inf / NaN
    // NaN payloads are widened into the top mantissa bits with the quiet
    // bit forced, matching VCVTPH2PS (IEEE convertFormat quietens
    // signaling NaNs; already-quiet payloads carry the bit anyway).
    const std::uint32_t quiet = mant != 0 ? 0x00400000u : 0u;
    return bits_float(sign | 0x7f800000u | quiet | (mant << 13));
  }
  return bits_float(sign | ((exp - 15 + 127) << 23) | (mant << 13));
}

inline std::uint16_t float_to_half_bits(float f) noexcept {
#if defined(ASCEND_HALF_HW)
  // VCVTPS2PH with RNE: identical rounding, subnormal and NaN-quieting
  // behaviour to the portable path (MXCSR DAZ/FTZ are never enabled in
  // this process).
  return static_cast<std::uint16_t>(_mm_extract_epi16(
      _mm_cvtps_ph(_mm_set_ss(f), _MM_FROUND_TO_NEAREST_INT |
                                      _MM_FROUND_NO_EXC),
      0));
#else
  return float_to_half_bits_portable(f);
#endif
}

inline float half_bits_to_float(std::uint16_t h) noexcept {
#if defined(ASCEND_HALF_HW)
  return _mm_cvtss_f32(
      _mm_cvtph_ps(_mm_cvtsi32_si128(static_cast<int>(h))));
#else
  return half_bits_to_float_portable(h);
#endif
}

}  // namespace detail

class half {
 public:
  half() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors built-in float
  // conversions so kernels can mix half and float naturally.
  half(float f) noexcept : bits_(detail::float_to_half_bits(f)) {}
  explicit half(double d) noexcept : half(static_cast<float>(d)) {}
  explicit half(int i) noexcept : half(static_cast<float>(i)) {}

  // NOLINTNEXTLINE(google-explicit-constructor)
  operator float() const noexcept { return detail::half_bits_to_float(bits_); }

  static half from_bits(std::uint16_t b) noexcept {
    half h;
    h.bits_ = b;
    return h;
  }
  std::uint16_t bits() const noexcept { return bits_; }

  half& operator+=(half o) noexcept { return *this = half(float(*this) + float(o)); }
  half& operator-=(half o) noexcept { return *this = half(float(*this) - float(o)); }
  half& operator*=(half o) noexcept { return *this = half(float(*this) * float(o)); }
  half& operator/=(half o) noexcept { return *this = half(float(*this) / float(o)); }

  friend half operator+(half a, half b) noexcept { return half(float(a) + float(b)); }
  friend half operator-(half a, half b) noexcept { return half(float(a) - float(b)); }
  friend half operator*(half a, half b) noexcept { return half(float(a) * float(b)); }
  friend half operator/(half a, half b) noexcept { return half(float(a) / float(b)); }
  friend half operator-(half a) noexcept { return half(-float(a)); }

  friend bool operator==(half a, half b) noexcept { return float(a) == float(b); }
  friend bool operator!=(half a, half b) noexcept { return float(a) != float(b); }
  friend bool operator<(half a, half b) noexcept { return float(a) < float(b); }
  friend bool operator<=(half a, half b) noexcept { return float(a) <= float(b); }
  friend bool operator>(half a, half b) noexcept { return float(a) > float(b); }
  friend bool operator>=(half a, half b) noexcept { return float(a) >= float(b); }

  bool isnan() const noexcept {
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0;
  }
  bool isinf() const noexcept { return (bits_ & 0x7fffu) == 0x7c00u; }

  static half max() noexcept { return from_bits(0x7bffu); }       // 65504
  static half lowest() noexcept { return from_bits(0xfbffu); }    // -65504
  static half infinity() noexcept { return from_bits(0x7c00u); }
  static half quiet_nan() noexcept { return from_bits(0x7e00u); }
  static half epsilon() noexcept { return from_bits(0x1400u); }   // 2^-10

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(half) == 2, "half must be 2 bytes");

// ---------------------------------------------------------------------------
// Bulk conversions. The simulator's emulated vector/cube loops cross
// half<->float for whole tiles at a time; converting 8 lanes per instruction
// (VCVTPH2PS / VCVTPS2PH) instead of one keeps the emulation off the
// conversion bottleneck. Bit-identical to converting element by element.

/// dst[i] = float(src[i]) for i in [0, n).
inline void half_to_float_n(const half* src, float* dst,
                            std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(ASCEND_HALF_HW) && defined(__AVX2__)
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
#endif
  for (; i < n; ++i) dst[i] = static_cast<float>(src[i]);
}

/// dst[i] = half(src[i]) for i in [0, n), rounding to nearest even.
inline void float_to_half_n(const float* src, half* dst,
                            std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(ASCEND_HALF_HW) && defined(__AVX2__)
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm256_cvtps_ph(
        _mm256_loadu_ps(src + i),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
#endif
  for (; i < n; ++i) dst[i] = half(src[i]);
}

}  // namespace ascend
