// IEEE 754 binary16 ("half", Ascend float16) implemented from scratch.
//
// The Ascend cube unit consumes float16 operands and accumulates into
// float32; the vector unit operates on float16 directly. This type gives the
// simulator bit-exact float16 storage semantics: every arithmetic operation
// promotes to float, computes, and rounds back to the nearest representable
// binary16 value (round-to-nearest-even), including subnormals, infinities
// and NaN propagation.
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>

namespace ascend {

namespace detail {
std::uint16_t float_to_half_bits(float f) noexcept;
float half_bits_to_float(std::uint16_t h) noexcept;
}  // namespace detail

class half {
 public:
  half() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors built-in float
  // conversions so kernels can mix half and float naturally.
  half(float f) noexcept : bits_(detail::float_to_half_bits(f)) {}
  explicit half(double d) noexcept : half(static_cast<float>(d)) {}
  explicit half(int i) noexcept : half(static_cast<float>(i)) {}

  // NOLINTNEXTLINE(google-explicit-constructor)
  operator float() const noexcept { return detail::half_bits_to_float(bits_); }

  static half from_bits(std::uint16_t b) noexcept {
    half h;
    h.bits_ = b;
    return h;
  }
  std::uint16_t bits() const noexcept { return bits_; }

  half& operator+=(half o) noexcept { return *this = half(float(*this) + float(o)); }
  half& operator-=(half o) noexcept { return *this = half(float(*this) - float(o)); }
  half& operator*=(half o) noexcept { return *this = half(float(*this) * float(o)); }
  half& operator/=(half o) noexcept { return *this = half(float(*this) / float(o)); }

  friend half operator+(half a, half b) noexcept { return half(float(a) + float(b)); }
  friend half operator-(half a, half b) noexcept { return half(float(a) - float(b)); }
  friend half operator*(half a, half b) noexcept { return half(float(a) * float(b)); }
  friend half operator/(half a, half b) noexcept { return half(float(a) / float(b)); }
  friend half operator-(half a) noexcept { return half(-float(a)); }

  friend bool operator==(half a, half b) noexcept { return float(a) == float(b); }
  friend bool operator!=(half a, half b) noexcept { return float(a) != float(b); }
  friend bool operator<(half a, half b) noexcept { return float(a) < float(b); }
  friend bool operator<=(half a, half b) noexcept { return float(a) <= float(b); }
  friend bool operator>(half a, half b) noexcept { return float(a) > float(b); }
  friend bool operator>=(half a, half b) noexcept { return float(a) >= float(b); }

  bool isnan() const noexcept {
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0;
  }
  bool isinf() const noexcept { return (bits_ & 0x7fffu) == 0x7c00u; }

  static half max() noexcept { return from_bits(0x7bffu); }       // 65504
  static half lowest() noexcept { return from_bits(0xfbffu); }    // -65504
  static half infinity() noexcept { return from_bits(0x7c00u); }
  static half quiet_nan() noexcept { return from_bits(0x7e00u); }
  static half epsilon() noexcept { return from_bits(0x1400u); }   // 2^-10

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(half) == 2, "half must be 2 bytes");

}  // namespace ascend
