#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace ascend {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ASCAN_CHECK(!headers_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<Cell> cells) {
  ASCAN_CHECK(cells.size() == headers_.size(),
              "row has " << cells.size() << " cells, expected "
                         << headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

namespace {
std::string cell_to_string(const Table::Cell& c, int precision) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  const double d = std::get<double>(c);
  std::ostringstream os;
  os << std::setprecision(precision) << d;
  return os.str();
}
}  // namespace

void Table::print(std::ostream& os, int precision) const {
  std::vector<std::size_t> width(headers_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(cell_to_string(row[c], precision));
      width[c] = std::max(width[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto print_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  print_line(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& r : rendered) print_line(r);
}

std::string format_si(double value, const char* unit) {
  static constexpr const char* prefixes[] = {"", "K", "M", "G", "T"};
  int p = 0;
  double v = value;
  while (std::fabs(v) >= 1000.0 && p < 4) {
    v /= 1000.0;
    ++p;
  }
  std::ostringstream os;
  os << std::setprecision(4) << v << ' ' << prefixes[p] << unit;
  return os.str();
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* prefixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int p = 0;
  double v = static_cast<double>(bytes);
  while (v >= 1024.0 && p < 4) {
    v /= 1024.0;
    ++p;
  }
  std::ostringstream os;
  os << std::setprecision(4) << v << ' ' << prefixes[p];
  return os.str();
}

std::string format_time_s(double seconds) {
  std::ostringstream os;
  os << std::setprecision(4);
  if (seconds < 1e-6) {
    os << seconds * 1e9 << " ns";
  } else if (seconds < 1e-3) {
    os << seconds * 1e6 << " us";
  } else if (seconds < 1.0) {
    os << seconds * 1e3 << " ms";
  } else {
    os << seconds << " s";
  }
  return os.str();
}

}  // namespace ascend
