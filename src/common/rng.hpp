// Deterministic pseudo-random number generation for workload synthesis.
//
// xoshiro256** — small, fast, and reproducible across platforms, so the
// benchmark workloads (uniform fp16 keys, Bernoulli masks, softmax-like
// probability vectors) are identical on every run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/half.hpp"

namespace ascend {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double next_double() noexcept;
  float next_float() noexcept { return static_cast<float>(next_double()); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept { return next_double() < p; }

  // --- Workload generators -------------------------------------------------

  /// Uniform fp16 values in [lo, hi).
  std::vector<half> uniform_f16(std::size_t n, double lo, double hi);

  /// Uniform float values in [lo, hi).
  std::vector<float> uniform_f32(std::size_t n, double lo, double hi);

  /// 0/1 mask stored as int8 (the on-device mask format of the paper).
  std::vector<std::int8_t> mask_i8(std::size_t n, double p_true);

  /// A normalised probability vector shaped like an LLM next-token
  /// distribution: a few heavy tokens plus a long light tail (Zipfian),
  /// shuffled so sortedness is not accidental.
  std::vector<half> token_probs_f16(std::size_t n, double zipf_s = 1.1);

 private:
  std::uint64_t s_[4];
};

}  // namespace ascend
