// Per-sub-core kernel execution context plus the shared launch state
// (barriers, cross-core flags) used by the functional pass.
//
// A kernel launch runs the kernel body once per logical sub-core, each on
// its own host thread. In MIX mode a block is one AI core: sub-core 0 is the
// AIC (cube) core and sub-cores 1..vec_per_core are the AIV (vector) cores.
// In vector-only mode each block is a single AIV core.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ascendc/tensor.hpp"
#include "sim/config.hpp"
#include "sim/trace.hpp"

namespace ascend::acc {

class KernelContext;

/// Barrier with poison propagation: if any participant fails, every waiter
/// (current and future) throws instead of deadlocking.
class SimpleBarrier {
 public:
  explicit SimpleBarrier(int count) : threshold_(count) {}

  void arrive_and_wait();
  void poison();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int threshold_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  bool poisoned_ = false;
};

/// A shared array of cross-core synchronisation flags. set(i) publishes the
/// id of the trace op that performed the set; wait(i) blocks the functional
/// thread until then and records a dependency edge on that op.
class CrossFlags {
 public:
  explicit CrossFlags(std::size_t n) : setter_(n) {
    for (auto& s : setter_) s.store(0, std::memory_order_relaxed);
  }

  void set(KernelContext& ctx, std::size_t i);
  void wait(KernelContext& ctx, std::size_t i);

  std::size_t size() const { return setter_.size(); }
  void poison();

 private:
  std::vector<std::atomic<std::uint32_t>> setter_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool poisoned_ = false;
};

/// State shared by all sub-cores of one launch.
class LaunchShared {
 public:
  LaunchShared(int num_subcores)
      : num_subcores_(num_subcores), barrier_(num_subcores), op_ids_(1) {}

  SimpleBarrier& barrier() { return barrier_; }
  std::atomic<std::uint32_t>& op_ids() { return op_ids_; }

  /// Named flag arrays, created on first use (all sub-cores must agree on
  /// the size).
  CrossFlags& flags(const std::string& name, std::size_t n);

  void poison();
  int num_subcores() const { return num_subcores_; }

 private:
  int num_subcores_;
  SimpleBarrier barrier_;
  std::atomic<std::uint32_t> op_ids_;
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<CrossFlags>> flags_;
};

enum class SubcoreKind : std::uint8_t { Cube, Vector };

class KernelContext {
 public:
  KernelContext(const sim::MachineConfig& cfg, LaunchShared* shared,
                int block_idx, int block_dim, SubcoreKind kind, int sub_idx,
                std::uint32_t global_subcore);

  /// Re-initialises a pooled context for a new launch: rebinds the shared
  /// launch state and identity, rewinds the arenas (allocations are kept,
  /// not zeroed — kernels write before they read) and clears the trace
  /// builder while keeping its op-vector capacity. The context's sub-core
  /// kind is fixed at construction (the arenas are shaped by it).
  void reset(LaunchShared* shared, int block_idx, int block_dim, int sub_idx,
             std::uint32_t global_subcore);

  // --- Identity (mirrors AscendC's GetBlockIdx / GetSubBlockIdx) -----------
  int GetBlockIdx() const { return block_idx_; }
  int GetBlockDim() const { return block_dim_; }
  /// 0 for the cube core; 0..vec_per_core-1 for vector cores of the block.
  int GetSubBlockIdx() const { return sub_idx_; }
  bool is_cube() const { return kind_ == SubcoreKind::Cube; }
  bool is_vector() const { return kind_ == SubcoreKind::Vector; }

  const sim::MachineConfig& cfg() const { return cfg_; }
  sim::TraceBuilder& trace() { return trace_; }
  LaunchShared& shared() { return *shared_; }

  /// Global synchronisation of all sub-cores of the launch (AscendC
  /// SyncAll). Functionally a barrier; in simulated time every sub-core's
  /// barrier op completes simultaneously.
  void SyncAll();

  // --- Scratchpad arenas -----------------------------------------------------
  /// Bump-allocates `bytes` in the physical buffer backing `pos`,
  /// enforcing the hardware capacities. 32-byte aligned like the UB.
  std::byte* arena_alloc(TPosition pos, std::size_t bytes);

  // --- Trace helpers (used by the intrinsics layer) ---------------------------
  /// Records a fixed-duration op. Hazard edges: deps on last_write of every
  /// read state and last_write/last_read of every written state; updates
  /// the states afterwards. Null states are skipped.
  std::uint32_t record_compute(sim::EngineKind engine, double cycles,
                               const char* tag,
                               std::initializer_list<BufferState*> reads,
                               std::initializer_list<BufferState*> writes);

  /// Records a GM transfer op (arbitrated by the HBM model).
  std::uint32_t record_transfer(sim::EngineKind engine, std::uint64_t bytes,
                                std::uint64_t gm_addr, bool gm_write,
                                const char* tag, BufferState* local_read,
                                BufferState* local_write);

  /// Marks the most recent op as serialising: everything issued afterwards
  /// on this sub-core depends on it (scalar read-backs, flag waits).
  void serialise_after(std::uint32_t op_id) {
    trace_.set_serial_anchor(op_id);
  }

 private:
  const sim::MachineConfig& cfg_;
  LaunchShared* shared_;
  int block_idx_;
  int block_dim_;
  SubcoreKind kind_;
  int sub_idx_;
  sim::TraceBuilder trace_;
  std::uint32_t sync_count_ = 0;

  struct Arena {
    std::vector<std::byte> mem;
    std::size_t used = 0;
  };
  Arena ub_, l1_, l0a_, l0b_, l0c_;
  Arena& arena_for(TPosition pos);
};

}  // namespace ascend::acc
