// GlobalTensor / LocalTensor — the AscendC tensor abstractions (§3.2).
//
// GlobalTensor views a buffer in global memory; LocalTensor views a buffer in
// one of the core-local scratchpads (UB, L1, L0A/L0B/L0C). LocalTensors carry
// a pointer to the BufferState of the physical slot backing them, which the
// intrinsic layer uses to derive read-after-write / write-after-read hazard
// edges for the timing trace — this is what makes queue-based double
// buffering show up as genuine pipeline overlap in simulated time.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/check.hpp"
#include "ascendc/device.hpp"

namespace ascend::acc {

/// Logical buffer positions of the AscendC programming model, mapped to
/// physical scratchpads by the pipe allocator.
enum class TPosition : std::uint8_t {
  GM,       ///< global memory
  VECIN,    ///< UB, MTE2 destination
  VECCALC,  ///< UB, vector scratch
  VECOUT,   ///< UB, MTE3 source
  A1,       ///< L1, left-matrix staging
  B1,       ///< L1, right-matrix staging
  A2,       ///< L0A, left matrix
  B2,       ///< L0B, right matrix
  CO1,      ///< L0C, cube accumulator
};

constexpr const char* tposition_name(TPosition p) {
  switch (p) {
    case TPosition::GM: return "GM";
    case TPosition::VECIN: return "VECIN";
    case TPosition::VECCALC: return "VECCALC";
    case TPosition::VECOUT: return "VECOUT";
    case TPosition::A1: return "A1";
    case TPosition::B1: return "B1";
    case TPosition::A2: return "A2";
    case TPosition::B2: return "B2";
    case TPosition::CO1: return "CO1";
  }
  return "?";
}

/// Hazard-tracking state of one physical buffer slot.
struct BufferState {
  std::uint32_t last_write_op = 0;
  std::uint32_t last_read_op = 0;
};

template <typename T>
class GlobalTensor {
 public:
  GlobalTensor() = default;
  /// `vaddr` is the deterministic virtual GM address of `data` (see
  /// gm_space.hpp); it defaults to the host address only for ad-hoc views
  /// not backed by a GlobalBuffer.
  GlobalTensor(T* data, std::size_t n, std::uint64_t vaddr = 0)
      : data_(data), size_(n),
        vaddr_(vaddr != 0 ? vaddr : reinterpret_cast<std::uint64_t>(data)) {}

  void SetGlobalBuffer(T* data, std::size_t n) {
    data_ = data;
    size_ = n;
    vaddr_ = reinterpret_cast<std::uint64_t>(data);
  }

  T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

  /// Sub-view starting at `offset` with `n` elements.
  GlobalTensor sub(std::size_t offset, std::size_t n) const {
    ASCAN_ASSERT(offset + n <= size_, "GlobalTensor slice out of range: off="
                                          << offset << " n=" << n
                                          << " size=" << size_);
    return GlobalTensor(data_ + offset, n, vaddr_ + offset * sizeof(T));
  }
  GlobalTensor operator[](std::size_t offset) const {
    return sub(offset, size_ - offset);
  }

  /// Address used by the L2 model: the buffer's virtual GM address, never
  /// the host heap address (which varies with ASLR/allocator state and
  /// would make simulated times nondeterministic).
  std::uint64_t gm_addr() const { return vaddr_; }

  template <typename U>
  GlobalTensor<U> reinterpret() const {
    return GlobalTensor<U>(reinterpret_cast<U*>(data_),
                           size_ * sizeof(T) / sizeof(U), vaddr_);
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::uint64_t vaddr_ = 0;
};

template <typename T>
GlobalTensor<T> GlobalBuffer<T>::tensor() {
  return GlobalTensor<T>(data_.data(), data_.size(), vaddr_);
}

template <typename T>
class LocalTensor {
 public:
  LocalTensor() = default;
  LocalTensor(T* data, std::size_t n, TPosition pos, BufferState* state)
      : data_(data), size_(n), pos_(pos), state_(state) {}

  T* data() const { return data_; }
  std::size_t size() const { return size_; }
  TPosition position() const { return pos_; }
  BufferState* state() const { return state_; }
  bool valid() const { return data_ != nullptr; }

  T& operator[](std::size_t i) const {
    ASCAN_ASSERT(i < size_);
    return data_[i];
  }

  /// Sub-view; shares the hazard state of the parent slot.
  LocalTensor sub(std::size_t offset, std::size_t n) const {
    ASCAN_ASSERT(offset + n <= size_, "LocalTensor slice out of range");
    return LocalTensor(data_ + offset, n, pos_, state_);
  }

  template <typename U>
  LocalTensor<U> reinterpret() const {
    return LocalTensor<U>(reinterpret_cast<U*>(data_),
                          size_ * sizeof(T) / sizeof(U), pos_, state_);
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  TPosition pos_ = TPosition::VECCALC;
  BufferState* state_ = nullptr;
};

}  // namespace ascend::acc
