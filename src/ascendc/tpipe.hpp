// TPipe / TQue / TBuf — the AscendC memory-management abstractions (§3.2).
//
// A TQue manages `num` equal-size slots in the scratchpad backing its
// TPosition. The AllocTensor / EnQue / DeQue / FreeTensor protocol makes
// every producer-consumer dependency explicit; in this simulator the
// dependencies materialise as hazard edges on the slots' BufferStates, so a
// queue of depth 2 really does overlap the MTE and compute engines in
// simulated time (double buffering is "changing the queue capacity from one
// to two", exactly as the paper describes).
#pragma once

#include <deque>
#include <vector>

#include "ascendc/context.hpp"
#include "ascendc/tensor.hpp"

namespace ascend::acc {

class TQue {
 public:
  TQue(KernelContext& ctx, TPosition pos) : ctx_(&ctx), pos_(pos) {}

  TQue(const TQue&) = delete;
  TQue& operator=(const TQue&) = delete;

  /// Allocates a free slot (the whole slot) as a typed tensor.
  template <typename T>
  LocalTensor<T> AllocTensor() {
    ASCAN_CHECK(!free_.empty(),
                "TQue(" << tposition_name(pos_)
                        << ") has no free slot: AllocTensor without a "
                           "matching FreeTensor, or depth too small");
    const std::size_t slot = free_.front();
    free_.pop_front();
    Slot& s = slots_[slot];
    return LocalTensor<T>(reinterpret_cast<T*>(s.data),
                          slot_bytes_ / sizeof(T), pos_, &s.state);
  }

  /// Publishes a produced tensor to the consumer side.
  template <typename T>
  void EnQue(const LocalTensor<T>& t) {
    queued_.push_back(slot_of(t.state()));
  }

  /// Retrieves the oldest published tensor.
  template <typename T>
  LocalTensor<T> DeQue() {
    ASCAN_CHECK(!queued_.empty(), "DeQue on empty TQue("
                                      << tposition_name(pos_) << ")");
    const std::size_t slot = queued_.front();
    queued_.pop_front();
    Slot& s = slots_[slot];
    return LocalTensor<T>(reinterpret_cast<T*>(s.data),
                          slot_bytes_ / sizeof(T), pos_, &s.state);
  }

  /// Returns the slot to the allocator (hazard state is kept, so the next
  /// producer of this slot still orders after our last read).
  template <typename T>
  void FreeTensor(const LocalTensor<T>& t) {
    free_.push_back(slot_of(t.state()));
  }

  TPosition position() const { return pos_; }
  int depth() const { return static_cast<int>(slots_.size()); }

 private:
  friend class TPipe;

  struct Slot {
    std::byte* data = nullptr;
    BufferState state;
  };

  std::size_t slot_of(const BufferState* st) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (&slots_[i].state == st) return i;
    }
    throw Error("tensor does not belong to this TQue");
  }

  KernelContext* ctx_;
  TPosition pos_;
  std::size_t slot_bytes_ = 0;
  std::vector<Slot> slots_;
  std::deque<std::size_t> free_;
  std::deque<std::size_t> queued_;
};

/// Persistent scratch buffer without queue semantics (AscendC TBuf).
class TBuf {
 public:
  TBuf(KernelContext& ctx, TPosition pos) : ctx_(&ctx), pos_(pos) {}

  TBuf(const TBuf&) = delete;
  TBuf& operator=(const TBuf&) = delete;

  template <typename T>
  LocalTensor<T> Get() {
    ASCAN_CHECK(data_ != nullptr, "TBuf used before TPipe::InitBuffer");
    return LocalTensor<T>(reinterpret_cast<T*>(data_), bytes_ / sizeof(T),
                          pos_, &state_);
  }
  template <typename T>
  LocalTensor<T> GetWithOffset(std::size_t offset_elems, std::size_t n) {
    return Get<T>().sub(offset_elems, n);
  }

  TPosition position() const { return pos_; }

 private:
  friend class TPipe;
  KernelContext* ctx_;
  TPosition pos_;
  std::byte* data_ = nullptr;
  std::size_t bytes_ = 0;
  BufferState state_;
};

/// Scratchpad allocator for one sub-core.
class TPipe {
 public:
  explicit TPipe(KernelContext& ctx) : ctx_(&ctx) {}

  void InitBuffer(TQue& que, int num, std::size_t bytes_per_slot) {
    ASCAN_CHECK(num >= 1 && bytes_per_slot > 0);
    ASCAN_CHECK(que.slots_.empty(), "TQue already initialised");
    que.slot_bytes_ = bytes_per_slot;
    que.slots_.resize(static_cast<std::size_t>(num));
    for (int i = 0; i < num; ++i) {
      que.slots_[static_cast<std::size_t>(i)].data =
          ctx_->arena_alloc(que.pos_, bytes_per_slot);
      que.free_.push_back(static_cast<std::size_t>(i));
    }
  }

  void InitBuffer(TBuf& buf, std::size_t bytes) {
    ASCAN_CHECK(buf.data_ == nullptr, "TBuf already initialised");
    buf.data_ = ctx_->arena_alloc(buf.pos_, bytes);
    buf.bytes_ = bytes;
  }

 private:
  KernelContext* ctx_;
};

}  // namespace ascend::acc
