#include "ascendc/context.hpp"

namespace ascend::acc {

// ---------------------------------------------------------------------------
// SimpleBarrier

void SimpleBarrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lk(mu_);
  if (poisoned_) throw Error("barrier poisoned: a sibling sub-core failed");
  const std::uint64_t gen = generation_;
  if (++waiting_ == threshold_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lk, [&] { return generation_ != gen || poisoned_; });
  if (poisoned_) throw Error("barrier poisoned: a sibling sub-core failed");
}

void SimpleBarrier::poison() {
  std::lock_guard<std::mutex> lk(mu_);
  poisoned_ = true;
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// CrossFlags

void CrossFlags::set(KernelContext& ctx, std::size_t i) {
  ASCAN_ASSERT(i < setter_.size(), "flag index out of range");
  // The set rides on the producer's MTE3 queue so it orders after the GM
  // write it publishes (hardware: flag written through GM/L2); the waiter
  // observes it one GM latency later.
  sim::TraceOp op;
  op.engine = sim::EngineKind::Mte3;
  op.kind = sim::TraceOp::Kind::FlagSet;
  op.cycles = ctx.cfg().flag_cost_cycles +
              ctx.cfg().gm_latency_s * ctx.cfg().clock_hz;
  op.tag = "flag.set";
  const std::uint32_t id = ctx.trace().push(op);
  {
    std::lock_guard<std::mutex> lk(mu_);
    setter_[i].store(id, std::memory_order_release);
  }
  cv_.notify_all();
}

void CrossFlags::wait(KernelContext& ctx, std::size_t i) {
  ASCAN_ASSERT(i < setter_.size(), "flag index out of range");
  std::uint32_t setter_id = setter_[i].load(std::memory_order_acquire);
  if (setter_id == 0) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
      setter_id = setter_[i].load(std::memory_order_acquire);
      return setter_id != 0 || poisoned_;
    });
    if (poisoned_ && setter_id == 0) {
      throw Error("flag wait poisoned: a sibling sub-core failed");
    }
  }
  sim::TraceOp op;
  op.engine = sim::EngineKind::Scalar;
  op.kind = sim::TraceOp::Kind::FlagWait;
  op.cycles = ctx.cfg().flag_cost_cycles;
  op.tag = "flag.wait";
  op.add_dep(setter_id);
  const std::uint32_t id = ctx.trace().push(op);
  // Everything after the wait is ordered behind it.
  ctx.serialise_after(id);
}

void CrossFlags::poison() {
  std::lock_guard<std::mutex> lk(mu_);
  poisoned_ = true;
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// LaunchShared

CrossFlags& LaunchShared::flags(const std::string& name, std::size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    it = flags_.emplace(name, std::make_unique<CrossFlags>(n)).first;
  }
  ASCAN_ASSERT(it->second->size() == n,
               "flag array '" << name << "' size mismatch");
  return *it->second;
}

void LaunchShared::poison() {
  barrier_.poison();
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, f] : flags_) f->poison();
}

// ---------------------------------------------------------------------------
// KernelContext

KernelContext::KernelContext(const sim::MachineConfig& cfg,
                             LaunchShared* shared, int block_idx,
                             int block_dim, SubcoreKind kind, int sub_idx,
                             std::uint32_t global_subcore)
    : cfg_(cfg),
      shared_(shared),
      block_idx_(block_idx),
      block_dim_(block_dim),
      kind_(kind),
      sub_idx_(sub_idx),
      trace_(global_subcore, &shared->op_ids()) {
  if (kind_ == SubcoreKind::Cube) {
    l1_.mem.resize(cfg.l1_bytes);
    l0a_.mem.resize(cfg.l0a_bytes);
    l0b_.mem.resize(cfg.l0b_bytes);
    l0c_.mem.resize(cfg.l0c_bytes);
  } else {
    ub_.mem.resize(cfg.ub_bytes);
  }
}

void KernelContext::reset(LaunchShared* shared, int block_idx, int block_dim,
                          int sub_idx, std::uint32_t global_subcore) {
  shared_ = shared;
  block_idx_ = block_idx;
  block_dim_ = block_dim;
  sub_idx_ = sub_idx;
  trace_.reset(global_subcore, &shared->op_ids());
  sync_count_ = 0;
  ub_.used = l1_.used = l0a_.used = l0b_.used = l0c_.used = 0;
}

void KernelContext::SyncAll() {
  sim::TraceOp op;
  op.engine = sim::EngineKind::Scalar;
  op.kind = sim::TraceOp::Kind::Barrier;
  op.barrier_epoch = ++sync_count_;
  op.tag = "sync_all";
  const std::uint32_t id = trace_.push(op);
  serialise_after(id);
  shared_->barrier().arrive_and_wait();
}

KernelContext::Arena& KernelContext::arena_for(TPosition pos) {
  switch (pos) {
    case TPosition::VECIN:
    case TPosition::VECCALC:
    case TPosition::VECOUT:
      ASCAN_CHECK(is_vector(), "UB positions only exist on vector cores");
      return ub_;
    case TPosition::A1:
    case TPosition::B1:
      ASCAN_CHECK(is_cube(), "L1 positions only exist on cube cores");
      return l1_;
    case TPosition::A2:
      ASCAN_CHECK(is_cube(), "L0A only exists on cube cores");
      return l0a_;
    case TPosition::B2:
      ASCAN_CHECK(is_cube(), "L0B only exists on cube cores");
      return l0b_;
    case TPosition::CO1:
      ASCAN_CHECK(is_cube(), "L0C only exists on cube cores");
      return l0c_;
    case TPosition::GM:
      break;
  }
  throw Error("cannot allocate a local buffer in GM");
}

std::byte* KernelContext::arena_alloc(TPosition pos, std::size_t bytes) {
  Arena& a = arena_for(pos);
  constexpr std::size_t kAlign = 32;
  const std::size_t offset = (a.used + kAlign - 1) / kAlign * kAlign;
  ASCAN_CHECK(offset + bytes <= a.mem.size(),
              "scratchpad " << tposition_name(pos) << " overflow: need "
                            << bytes << " B at offset " << offset
                            << ", capacity " << a.mem.size() << " B");
  a.used = offset + bytes;
  return a.mem.data() + offset;
}

std::uint32_t KernelContext::record_compute(
    sim::EngineKind engine, double cycles, const char* tag,
    std::initializer_list<BufferState*> reads,
    std::initializer_list<BufferState*> writes) {
  sim::TraceOp op;
  op.engine = engine;
  op.kind = sim::TraceOp::Kind::Compute;
  op.cycles = cycles;
  op.tag = tag;
  for (BufferState* s : reads) {
    if (s != nullptr) op.add_dep(s->last_write_op);
  }
  for (BufferState* s : writes) {
    if (s != nullptr) {
      op.add_dep(s->last_write_op);
      op.add_dep(s->last_read_op);
    }
  }
  const std::uint32_t id = trace_.push(op);
  for (BufferState* s : reads) {
    if (s != nullptr) s->last_read_op = id;
  }
  for (BufferState* s : writes) {
    if (s != nullptr) s->last_write_op = id;
  }
  return id;
}

std::uint32_t KernelContext::record_transfer(sim::EngineKind engine,
                                             std::uint64_t bytes,
                                             std::uint64_t gm_addr,
                                             bool gm_write, const char* tag,
                                             BufferState* local_read,
                                             BufferState* local_write) {
  sim::TraceOp op;
  op.engine = engine;
  op.kind = sim::TraceOp::Kind::Transfer;
  op.cycles = cfg_.mte_issue_cycles;  // setup cost before streaming
  op.bytes = bytes;
  op.gm_addr = gm_addr;
  op.gm_write = gm_write;
  op.tag = tag;
  if (local_read != nullptr) op.add_dep(local_read->last_write_op);
  if (local_write != nullptr) {
    op.add_dep(local_write->last_write_op);
    op.add_dep(local_write->last_read_op);
  }
  const std::uint32_t id = trace_.push(op);
  if (local_read != nullptr) local_read->last_read_op = id;
  if (local_write != nullptr) local_write->last_write_op = id;
  return id;
}

}  // namespace ascend::acc
