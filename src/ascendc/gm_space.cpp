#include "ascendc/gm_space.hpp"

#include <map>
#include <mutex>
#include <vector>

namespace ascend::acc::gm_space {

namespace {

// Block granularity. Must cover every L2 line size so distinct buffers
// never share a line; page-sized also mirrors how real GM carves tensors.
constexpr std::uint64_t kAlign = 4096;
constexpr std::uint64_t kBase = 1ull << 20;  // keep 0 free as the sentinel

std::uint64_t round_up(std::size_t bytes) {
  const std::uint64_t b = bytes == 0 ? 1 : static_cast<std::uint64_t>(bytes);
  return (b + kAlign - 1) / kAlign * kAlign;
}

struct Space {
  std::mutex mu;
  std::uint64_t bump = kBase;
  std::map<std::uint64_t, std::vector<std::uint64_t>> free_lists;
};

Space& space() {
  static Space s;  // never destroyed before the last GlobalBuffer
  return s;
}

}  // namespace

std::uint64_t acquire(std::size_t bytes) {
  const std::uint64_t sz = round_up(bytes);
  Space& s = space();
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.free_lists.find(sz);
  if (it != s.free_lists.end() && !it->second.empty()) {
    const std::uint64_t v = it->second.back();
    it->second.pop_back();
    return v;
  }
  const std::uint64_t v = s.bump;
  s.bump += sz;
  return v;
}

void release(std::uint64_t vaddr, std::size_t bytes) noexcept {
  if (vaddr == 0) return;
  Space& s = space();
  std::lock_guard<std::mutex> lk(s.mu);
  try {
    s.free_lists[round_up(bytes)].push_back(vaddr);
  } catch (...) {
    // Out of memory while freeing: drop the block (timing-model leak only).
  }
}

}  // namespace ascend::acc::gm_space
