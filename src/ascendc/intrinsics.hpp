// AscendC-style intrinsics: data movement (DataCopy/LoadData/Fixpipe), the
// cube engine (Mmad), and the vector engine instruction set used by the
// paper's kernels (Adds, ReduceSum, GatherMask, ShiftRight, Not/Xor,
// Compare, Select, Cast, CumSum, Sort32/MergeSorted, ...).
//
// Every intrinsic executes its functional semantics eagerly on the host
// copies of GM/UB/L0 and records one timed op on the issuing sub-core's
// trace. Cost formulas live in this header next to each instruction so the
// model is auditable in one place; the constants come from
// sim::MachineConfig (see the calibration note there).
#pragma once

#include <algorithm>
#include <cstring>
#include <limits>
#include <type_traits>
#include <vector>

#include "ascendc/context.hpp"
#include "ascendc/tensor.hpp"
#include "common/dtype.hpp"
#include "common/math_util.hpp"

namespace ascend::acc {

// ---------------------------------------------------------------------------
// Cost helpers

namespace detail {

inline double vec_cycles(const sim::MachineConfig& cfg, std::size_t bytes) {
  return cfg.vec_issue_cycles +
         static_cast<double>(bytes) / cfg.vec_bytes_per_cycle;
}
inline double gather_cycles(const sim::MachineConfig& cfg, std::size_t bytes) {
  return cfg.vec_issue_cycles +
         static_cast<double>(bytes) / cfg.gather_bytes_per_cycle;
}
inline double local_copy_cycles(const sim::MachineConfig& cfg,
                                std::size_t bytes) {
  return cfg.mte_issue_cycles +
         static_cast<double>(bytes) / cfg.local_copy_bytes_per_cycle;
}

/// Arithmetic performed "as the vector unit does": float16 lanes compute in
/// a widened form and round once per op.
template <typename T>
struct lane {
  using wide = T;
  static T narrow(wide w) { return w; }
};
template <>
struct lane<half> {
  using wide = float;
  static half narrow(float w) { return half(w); }
};

/// Structure of a float16 Mmad B operand. The paper's scan kernels only
/// ever multiply data against the constant matrices U_s (upper-triangular
/// ones: A@U is a row-wise inclusive prefix sum) and 1_s (all ones: A@1 is
/// a row-sum broadcast), so the emulation recognises those two shapes and
/// replaces the O(M*K*N) MAC loop with the O(M*N) recurrence that performs
/// the *same* float additions in the same order — results stay bit-exact.
enum class MmadBKind { Generic, UpperOnes, AllOnes };

inline MmadBKind classify_mmad_b(const half* bd, std::size_t K,
                                 std::size_t N) {
  if (K != N) return MmadBKind::Generic;
  thread_local std::vector<std::uint16_t> ones_row;
  if (ones_row.size() < N) ones_row.assign(N, 0x3c00u);  // half(1.0)
  thread_local std::vector<std::uint16_t> zero_row;
  if (zero_row.size() < N) zero_row.assign(N, 0u);
  const auto* bits = reinterpret_cast<const std::uint16_t*>(bd);
  // Probe one interior element to pick the candidate shape cheaply, then
  // verify row by row with memcmp (vectorised by libc); any mismatch bails
  // to the generic path immediately.
  const bool maybe_upper = N > 1 && bits[N] == 0u;  // B[1][0]
  if (maybe_upper) {
    for (std::size_t k = 0; k < K; ++k) {
      const std::uint16_t* row = bits + k * N;
      if (std::memcmp(row, zero_row.data(), k * sizeof(std::uint16_t)) != 0 ||
          std::memcmp(row + k, ones_row.data(),
                      (N - k) * sizeof(std::uint16_t)) != 0) {
        return MmadBKind::Generic;
      }
    }
    return MmadBKind::UpperOnes;
  }
  for (std::size_t k = 0; k < K; ++k) {
    if (std::memcmp(bits + k * N, ones_row.data(),
                    N * sizeof(std::uint16_t)) != 0) {
      return MmadBKind::Generic;
    }
  }
  return MmadBKind::AllOnes;
}

/// c[j] += a * b[j], 8 float lanes at a time. Deliberately multiply-then-add
/// (no FMA): each lane rounds twice, matching the scalar expression
/// `c[j] += a * b[j]` bit for bit.
inline void axpy_row(float* c, float a, const float* b, std::size_t n) {
  std::size_t j = 0;
#if defined(ASCEND_HALF_HW) && defined(__AVX2__)
  const __m256 av = _mm256_set1_ps(a);
  for (; j + 8 <= n; j += 8) {
    const __m256 prod = _mm256_mul_ps(av, _mm256_loadu_ps(b + j));
    _mm256_storeu_ps(c + j, _mm256_add_ps(_mm256_loadu_ps(c + j), prod));
  }
#endif
  for (; j < n; ++j) {
    const float prod = a * b[j];
    c[j] = c[j] + prod;
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// DataCopy: GM <-> local scratchpads (MTE2 / MTE3), local <-> local (MTE1)

/// GM -> local (MTE2).
template <typename T>
void DataCopy(KernelContext& ctx, const LocalTensor<T>& dst,
              const GlobalTensor<T>& src, std::size_t n) {
  ASCAN_CHECK(n <= dst.size() && n <= src.size(),
              "DataCopy overflow: n=" << n << " dst=" << dst.size()
                                      << " src=" << src.size());
  std::memcpy(dst.data(), src.data(), n * sizeof(T));
  ctx.record_transfer(sim::EngineKind::Mte2, n * sizeof(T), src.gm_addr(),
                      /*gm_write=*/false, "datacopy.in", nullptr, dst.state());
}

/// Local -> GM (MTE3).
template <typename T>
void DataCopy(KernelContext& ctx, const GlobalTensor<T>& dst,
              const LocalTensor<T>& src, std::size_t n) {
  ASCAN_CHECK(n <= dst.size() && n <= src.size(),
              "DataCopy overflow: n=" << n << " dst=" << dst.size()
                                      << " src=" << src.size());
  std::memcpy(dst.data(), src.data(), n * sizeof(T));
  ctx.record_transfer(sim::EngineKind::Mte3, n * sizeof(T), dst.gm_addr(),
                      /*gm_write=*/true, "datacopy.out", src.state(), nullptr);
}

/// Local -> local (MTE1: L1 <-> L0, or UB staging moves).
template <typename T>
void DataCopyLocal(KernelContext& ctx, const LocalTensor<T>& dst,
                   const LocalTensor<T>& src, std::size_t n) {
  ASCAN_CHECK(n <= dst.size() && n <= src.size(), "DataCopyLocal overflow");
  std::memcpy(dst.data(), src.data(), n * sizeof(T));
  ctx.record_compute(sim::EngineKind::Mte1,
                     detail::local_copy_cycles(ctx.cfg(), n * sizeof(T)),
                     "datacopy.local", {src.state()}, {dst.state()});
}

/// Strided 2-D copy parameters (element units).
struct DataCopy2DParams {
  std::size_t block_count = 1;  ///< number of contiguous rows
  std::size_t block_len = 0;    ///< elements per row
  std::size_t src_stride = 0;   ///< elements between consecutive src rows
  std::size_t dst_stride = 0;   ///< elements between consecutive dst rows
};

template <typename T>
void DataCopy2D(KernelContext& ctx, const LocalTensor<T>& dst,
                const GlobalTensor<T>& src, const DataCopy2DParams& p) {
  const std::size_t src_stride = p.src_stride == 0 ? p.block_len : p.src_stride;
  const std::size_t dst_stride = p.dst_stride == 0 ? p.block_len : p.dst_stride;
  ASCAN_CHECK((p.block_count - 1) * dst_stride + p.block_len <= dst.size(),
              "DataCopy2D dst overflow");
  ASCAN_CHECK((p.block_count - 1) * src_stride + p.block_len <= src.size(),
              "DataCopy2D src overflow");
  for (std::size_t r = 0; r < p.block_count; ++r) {
    std::memcpy(dst.data() + r * dst_stride, src.data() + r * src_stride,
                p.block_len * sizeof(T));
  }
  ctx.record_transfer(sim::EngineKind::Mte2,
                      p.block_count * p.block_len * sizeof(T), src.gm_addr(),
                      false, "datacopy2d.in", nullptr, dst.state());
}

template <typename T>
void DataCopy2D(KernelContext& ctx, const GlobalTensor<T>& dst,
                const LocalTensor<T>& src, const DataCopy2DParams& p) {
  const std::size_t src_stride = p.src_stride == 0 ? p.block_len : p.src_stride;
  const std::size_t dst_stride = p.dst_stride == 0 ? p.block_len : p.dst_stride;
  ASCAN_CHECK((p.block_count - 1) * src_stride + p.block_len <= src.size(),
              "DataCopy2D src overflow");
  ASCAN_CHECK((p.block_count - 1) * dst_stride + p.block_len <= dst.size(),
              "DataCopy2D dst overflow");
  for (std::size_t r = 0; r < p.block_count; ++r) {
    std::memcpy(dst.data() + r * dst_stride, src.data() + r * src_stride,
                p.block_len * sizeof(T));
  }
  ctx.record_transfer(sim::EngineKind::Mte3,
                      p.block_count * p.block_len * sizeof(T), dst.gm_addr(),
                      true, "datacopy2d.out", src.state(), nullptr);
}

// ---------------------------------------------------------------------------
// Cube-core instructions

/// L1 -> L0A/L0B (MTE1). The fractal layout conversion of real hardware is
/// abstracted: matrices are row-major host arrays.
template <typename T>
void LoadData(KernelContext& ctx, const LocalTensor<T>& dst_l0,
              const LocalTensor<T>& src_l1, std::size_t n) {
  ASCAN_CHECK(ctx.is_cube(), "LoadData runs on the cube core");
  ASCAN_CHECK(dst_l0.position() == TPosition::A2 ||
                  dst_l0.position() == TPosition::B2,
              "LoadData destination must be L0A or L0B");
  DataCopyLocal(ctx, dst_l0, src_l1, n);
}

/// Cube matrix multiply-accumulate: C[M,N] (+)= A[M,K] @ B[K,N].
/// float16 inputs accumulate into float32, int8 into int32 (§3.1).
template <typename In, typename Acc>
void Mmad(KernelContext& ctx, const LocalTensor<Acc>& c,
          const LocalTensor<In>& a, const LocalTensor<In>& b, std::size_t M,
          std::size_t K, std::size_t N, bool accumulate) {
  static_assert(std::is_same_v<Acc, cube_accum_t<In>>,
                "Mmad accumulator type must match the cube unit's");
  ASCAN_CHECK(ctx.is_cube(), "Mmad runs on the cube core");
  ASCAN_CHECK(a.position() == TPosition::A2, "Mmad A operand must be in L0A");
  ASCAN_CHECK(b.position() == TPosition::B2, "Mmad B operand must be in L0B");
  ASCAN_CHECK(c.position() == TPosition::CO1, "Mmad C operand must be in L0C");
  ASCAN_CHECK(M * K <= a.size() && K * N <= b.size() && M * N <= c.size(),
              "Mmad shape exceeds operand tiles");

  Acc* cd = c.data();
  const In* ad = a.data();
  const In* bd = b.data();
  if (!accumulate) std::fill(cd, cd + M * N, Acc{});
  if constexpr (std::is_same_v<In, half>) {
    // Widen the A tile to float once (8 lanes per F16C instruction) instead
    // of converting elements inside the MAC loop; arithmetic then runs as
    // pure float mul+add, exactly the per-lane operations of the scalar
    // path (no FMA contraction anywhere), so results stay bit-identical.
    thread_local std::vector<float> a_wide, b_wide;
    a_wide.resize(M * K);
    half_to_float_n(ad, a_wide.data(), M * K);
    const detail::MmadBKind bkind =
        accumulate ? detail::MmadBKind::Generic : detail::classify_mmad_b(bd, K, N);
    if (bkind == detail::MmadBKind::UpperOnes) {
      // C[i][j] = sum_{k<=j} A[i][k]: the generic loop adds A[i][k]*1 to
      // crow[j] in increasing k, so a left-to-right running sum performs
      // the identical addition sequence. (The generic loop's `av == 0` skip
      // is a no-op here: run += ±0.0f never changes a partial sum that can
      // only be +0.0 when zero, so no branch is needed.) Four rows advance
      // per iteration — their sum chains are independent, which hides the
      // float-add latency the single serial chain would expose.
      std::size_t i = 0;
      for (; i + 4 <= M; i += 4) {
        const float* r0 = a_wide.data() + i * K;
        const float* r1 = r0 + K;
        const float* r2 = r1 + K;
        const float* r3 = r2 + K;
        float* c0 = cd + i * N;
        float* c1 = c0 + N;
        float* c2 = c1 + N;
        float* c3 = c2 + N;
        float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
        for (std::size_t j = 0; j < N; ++j) {
          s0 += r0[j]; c0[j] = s0;
          s1 += r1[j]; c1[j] = s1;
          s2 += r2[j]; c2[j] = s2;
          s3 += r3[j]; c3[j] = s3;
        }
      }
      for (; i < M; ++i) {
        const float* arow = a_wide.data() + i * K;
        float* crow = cd + i * N;
        float run = 0.0f;
        for (std::size_t j = 0; j < N; ++j) {
          run += arow[j];
          crow[j] = run;
        }
      }
    } else if (bkind == detail::MmadBKind::AllOnes) {
      // C[i][j] = sum_k A[i][k] for every j, accumulated in increasing k.
      for (std::size_t i = 0; i < M; ++i) {
        const float* arow = a_wide.data() + i * K;
        float run = 0.0f;
        for (std::size_t k = 0; k < K; ++k) run += arow[k];
        std::fill(cd + i * N, cd + i * N + N, run);
      }
    } else {
      b_wide.resize(K * N);
      half_to_float_n(bd, b_wide.data(), K * N);
      for (std::size_t i = 0; i < M; ++i) {
        float* crow = cd + i * N;
        for (std::size_t k = 0; k < K; ++k) {
          const float av = a_wide[i * K + k];
          if (av == 0.0f) continue;  // fast path for sparse constant operands
          detail::axpy_row(crow, av, b_wide.data() + k * N, N);
        }
      }
    }
  } else {
    for (std::size_t i = 0; i < M; ++i) {
      for (std::size_t k = 0; k < K; ++k) {
        const Acc av = static_cast<Acc>(static_cast<float>(ad[i * K + k]));
        if (av == Acc{}) continue;  // fast path for sparse constant operands
        const In* brow = bd + k * N;
        Acc* crow = cd + i * N;
        for (std::size_t j = 0; j < N; ++j) {
          crow[j] += av * static_cast<Acc>(static_cast<float>(brow[j]));
        }
      }
    }
  }

  const double macs_per_cycle = std::is_same_v<Acc, std::int32_t>
                                    ? ctx.cfg().cube_macs_per_cycle_i8
                                    : ctx.cfg().cube_macs_per_cycle_f16;
  const std::size_t k_align = std::is_same_v<Acc, std::int32_t> ? 32 : 16;
  const double macs =
      static_cast<double>(align_up<std::size_t>(M, 16)) *
      static_cast<double>(align_up<std::size_t>(K, k_align)) *
      static_cast<double>(align_up<std::size_t>(N, 16));
  ctx.record_compute(sim::EngineKind::Compute,
                     ctx.cfg().cube_issue_cycles + macs / macs_per_cycle,
                     "mmad", {a.state(), b.state()}, {c.state()});
}

/// Fixpipe: drains L0C to GM, optionally quantising the accumulator to the
/// output element type (fp32 -> fp16 cast on the way out).
template <typename Out, typename Acc>
void Fixpipe(KernelContext& ctx, const GlobalTensor<Out>& dst,
             const LocalTensor<Acc>& src, std::size_t n) {
  ASCAN_CHECK(ctx.is_cube(), "Fixpipe runs on the cube core");
  ASCAN_CHECK(src.position() == TPosition::CO1, "Fixpipe source must be L0C");
  ASCAN_CHECK(n <= dst.size() && n <= src.size(), "Fixpipe overflow");
  if constexpr (std::is_same_v<Out, half> && std::is_same_v<Acc, float>) {
    float_to_half_n(src.data(), dst.data(), n);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      dst.data()[i] = static_cast<Out>(src.data()[i]);
    }
  }
  ctx.record_transfer(sim::EngineKind::Mte3, n * sizeof(Out), dst.gm_addr(),
                      true, "fixpipe", src.state(), nullptr);
}

/// Fixpipe variant draining L0C into L1 (used by ScanUL1 to feed C1 back as
/// a matmul operand), quantising fp32 accumulators to fp16 on the way.
template <typename Out, typename Acc>
void FixpipeLocal(KernelContext& ctx, const LocalTensor<Out>& dst_l1,
                  const LocalTensor<Acc>& src, std::size_t n) {
  ASCAN_CHECK(ctx.is_cube(), "FixpipeLocal runs on the cube core");
  ASCAN_CHECK(src.position() == TPosition::CO1, "Fixpipe source must be L0C");
  ASCAN_CHECK(dst_l1.position() == TPosition::A1 ||
                  dst_l1.position() == TPosition::B1,
              "FixpipeLocal destination must be in L1");
  ASCAN_CHECK(n <= dst_l1.size() && n <= src.size(), "FixpipeLocal overflow");
  if constexpr (std::is_same_v<Out, half> && std::is_same_v<Acc, float>) {
    float_to_half_n(src.data(), dst_l1.data(), n);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      if constexpr (std::is_same_v<Out, half>) {
        dst_l1.data()[i] = half(static_cast<float>(src.data()[i]));
      } else {
        dst_l1.data()[i] = static_cast<Out>(src.data()[i]);
      }
    }
  }
  ctx.record_compute(sim::EngineKind::Mte3,
                     detail::local_copy_cycles(ctx.cfg(), n * sizeof(Out)),
                     "fixpipe.l1", {src.state()}, {dst_l1.state()});
}

/// Initialises a cube-side local buffer with a constant (AscendC
/// InitConstValue) — used to zero padding in the last partial tile.
template <typename T>
void InitConstValue(KernelContext& ctx, const LocalTensor<T>& dst, T value,
                    std::size_t n) {
  ASCAN_CHECK(n <= dst.size(), "InitConstValue overflow");
  unsigned char pattern[sizeof(T)];
  std::memcpy(pattern, &value, sizeof(T));
  bool uniform = true;
  for (std::size_t b = 1; b < sizeof(T); ++b) {
    uniform = uniform && pattern[b] == pattern[0];
  }
  if (uniform) {
    // Covers the dominant case — zeroing padding in the last partial tile
    // (half(0) is all-zero bytes) — without a per-element store loop.
    std::memset(static_cast<void*>(dst.data()), pattern[0], n * sizeof(T));
  } else {
    std::fill(dst.data(), dst.data() + n, value);
  }
  ctx.record_compute(sim::EngineKind::Mte1,
                     detail::local_copy_cycles(ctx.cfg(), n * sizeof(T)),
                     "init_const", {}, {dst.state()});
}

// ---------------------------------------------------------------------------
// Scalar-unit access

/// Reads one element into a scalar register. This stalls the sub-core's
/// in-order dispatch (everything issued afterwards waits), which is exactly
/// the serial partial-sum dependency of Algorithms 1-3.
template <typename T>
T GetValue(KernelContext& ctx, const LocalTensor<T>& t, std::size_t i) {
  ASCAN_CHECK(i < t.size(), "GetValue out of range");
  const std::uint32_t id =
      ctx.record_compute(sim::EngineKind::Scalar, ctx.cfg().scalar_read_cycles,
                         "get_value", {t.state()}, {});
  ctx.serialise_after(id);
  return t.data()[i];
}

template <typename T>
void SetValue(KernelContext& ctx, const LocalTensor<T>& t, std::size_t i,
              T value) {
  ASCAN_CHECK(i < t.size(), "SetValue out of range");
  t.data()[i] = value;
  ctx.record_compute(sim::EngineKind::Scalar, ctx.cfg().scalar_op_cycles,
                     "set_value", {}, {t.state()});
}

// ---------------------------------------------------------------------------
// Vector-unit instructions

namespace detail {

template <typename T, typename F>
void vec_unary(KernelContext& ctx, const LocalTensor<T>& dst,
               const LocalTensor<T>& src, std::size_t n, const char* tag,
               F&& f) {
  ASCAN_CHECK(ctx.is_vector(), tag << " runs on a vector core");
  ASCAN_CHECK(n <= dst.size() && n <= src.size(), tag << " overflow");
  for (std::size_t i = 0; i < n; ++i) dst.data()[i] = f(src.data()[i]);
  ctx.record_compute(sim::EngineKind::Compute,
                     vec_cycles(ctx.cfg(), n * sizeof(T)), tag, {src.state()},
                     {dst.state()});
}

template <typename T, typename TOut, typename F>
void vec_binary(KernelContext& ctx, const LocalTensor<TOut>& dst,
                const LocalTensor<T>& a, const LocalTensor<T>& b,
                std::size_t n, const char* tag, F&& f) {
  ASCAN_CHECK(ctx.is_vector(), tag << " runs on a vector core");
  ASCAN_CHECK(n <= dst.size() && n <= a.size() && n <= b.size(),
              tag << " overflow");
  for (std::size_t i = 0; i < n; ++i) dst.data()[i] = f(a.data()[i], b.data()[i]);
  ctx.record_compute(sim::EngineKind::Compute,
                     vec_cycles(ctx.cfg(), n * sizeof(T)), tag,
                     {a.state(), b.state()}, {dst.state()});
}

}  // namespace detail

/// Fills a tensor with a scalar.
template <typename T>
void Duplicate(KernelContext& ctx, const LocalTensor<T>& dst, T value,
               std::size_t n) {
  ASCAN_CHECK(ctx.is_vector(), "Duplicate runs on a vector core");
  ASCAN_CHECK(n <= dst.size(), "Duplicate overflow");
  std::fill(dst.data(), dst.data() + n, value);
  ctx.record_compute(sim::EngineKind::Compute,
                     detail::vec_cycles(ctx.cfg(), n * sizeof(T)), "duplicate",
                     {}, {dst.state()});
}

/// dst = src + scalar (the paper's partial-sum broadcast add).
template <typename T>
void Adds(KernelContext& ctx, const LocalTensor<T>& dst,
          const LocalTensor<T>& src, T scalar, std::size_t n) {
  using W = typename detail::lane<T>::wide;
  const W s = static_cast<W>(scalar);
  detail::vec_unary(ctx, dst, src, n, "adds", [s](T v) {
    return detail::lane<T>::narrow(static_cast<W>(v) + s);
  });
}

/// float16 Adds is the inner loop of every scan's propagation phase; run it
/// 8 lanes per instruction (widen, add, narrow-RNE — the same per-lane
/// operations as the generic path, so results are bit-identical).
inline void Adds(KernelContext& ctx, const LocalTensor<half>& dst,
                 const LocalTensor<half>& src, half scalar, std::size_t n) {
  ASCAN_CHECK(ctx.is_vector(), "adds runs on a vector core");
  ASCAN_CHECK(n <= dst.size() && n <= src.size(), "adds overflow");
  const float s = static_cast<float>(scalar);
  std::size_t i = 0;
#if defined(ASCEND_HALF_HW) && defined(__AVX2__)
  const __m256 sv = _mm256_set1_ps(s);
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src.data() + i));
    const __m256 f = _mm256_add_ps(_mm256_cvtph_ps(h), sv);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst.data() + i),
                     _mm256_cvtps_ph(f, _MM_FROUND_TO_NEAREST_INT |
                                            _MM_FROUND_NO_EXC));
  }
#endif
  for (; i < n; ++i) {
    dst.data()[i] = half(static_cast<float>(src.data()[i]) + s);
  }
  ctx.record_compute(sim::EngineKind::Compute,
                     detail::vec_cycles(ctx.cfg(), n * sizeof(half)), "adds",
                     {src.state()}, {dst.state()});
}

template <typename T>
void Muls(KernelContext& ctx, const LocalTensor<T>& dst,
          const LocalTensor<T>& src, T scalar, std::size_t n) {
  using W = typename detail::lane<T>::wide;
  const W s = static_cast<W>(scalar);
  detail::vec_unary(ctx, dst, src, n, "muls", [s](T v) {
    return detail::lane<T>::narrow(static_cast<W>(v) * s);
  });
}

template <typename T>
void Add(KernelContext& ctx, const LocalTensor<T>& dst, const LocalTensor<T>& a,
         const LocalTensor<T>& b, std::size_t n) {
  using W = typename detail::lane<T>::wide;
  detail::vec_binary(ctx, dst, a, b, n, "add", [](T x, T y) {
    return detail::lane<T>::narrow(static_cast<W>(x) + static_cast<W>(y));
  });
}

template <typename T>
void Sub(KernelContext& ctx, const LocalTensor<T>& dst, const LocalTensor<T>& a,
         const LocalTensor<T>& b, std::size_t n) {
  using W = typename detail::lane<T>::wide;
  detail::vec_binary(ctx, dst, a, b, n, "sub", [](T x, T y) {
    return detail::lane<T>::narrow(static_cast<W>(x) - static_cast<W>(y));
  });
}

template <typename T>
void Mul(KernelContext& ctx, const LocalTensor<T>& dst, const LocalTensor<T>& a,
         const LocalTensor<T>& b, std::size_t n) {
  using W = typename detail::lane<T>::wide;
  detail::vec_binary(ctx, dst, a, b, n, "mul", [](T x, T y) {
    return detail::lane<T>::narrow(static_cast<W>(x) * static_cast<W>(y));
  });
}

template <typename T>
void Max(KernelContext& ctx, const LocalTensor<T>& dst, const LocalTensor<T>& a,
         const LocalTensor<T>& b, std::size_t n) {
  detail::vec_binary(ctx, dst, a, b, n, "max",
                     [](T x, T y) { return x < y ? y : x; });
}

template <typename T>
void Min(KernelContext& ctx, const LocalTensor<T>& dst, const LocalTensor<T>& a,
         const LocalTensor<T>& b, std::size_t n) {
  detail::vec_binary(ctx, dst, a, b, n, "min",
                     [](T x, T y) { return y < x ? y : x; });
}

// --- Integer / bitwise ------------------------------------------------------

template <typename T>
void ShiftRights(KernelContext& ctx, const LocalTensor<T>& dst,
                 const LocalTensor<T>& src, int shift, std::size_t n) {
  static_assert(std::is_integral_v<T>, "ShiftRights needs an integer type");
  detail::vec_unary(ctx, dst, src, n, "shr",
                    [shift](T v) { return static_cast<T>(v >> shift); });
}

template <typename T>
void ShiftLefts(KernelContext& ctx, const LocalTensor<T>& dst,
                const LocalTensor<T>& src, int shift, std::size_t n) {
  static_assert(std::is_integral_v<T>, "ShiftLefts needs an integer type");
  detail::vec_unary(ctx, dst, src, n, "shl",
                    [shift](T v) { return static_cast<T>(v << shift); });
}

template <typename T>
void Ands(KernelContext& ctx, const LocalTensor<T>& dst,
          const LocalTensor<T>& src, T mask, std::size_t n) {
  static_assert(std::is_integral_v<T>, "Ands needs an integer type");
  detail::vec_unary(ctx, dst, src, n, "ands",
                    [mask](T v) { return static_cast<T>(v & mask); });
}

template <typename T>
void Ors(KernelContext& ctx, const LocalTensor<T>& dst,
         const LocalTensor<T>& src, T mask, std::size_t n) {
  static_assert(std::is_integral_v<T>, "Ors needs an integer type");
  detail::vec_unary(ctx, dst, src, n, "ors",
                    [mask](T v) { return static_cast<T>(v | mask); });
}

template <typename T>
void Xors(KernelContext& ctx, const LocalTensor<T>& dst,
          const LocalTensor<T>& src, T mask, std::size_t n) {
  static_assert(std::is_integral_v<T>, "Xors needs an integer type");
  detail::vec_unary(ctx, dst, src, n, "xors",
                    [mask](T v) { return static_cast<T>(v ^ mask); });
}

/// Bitwise NOT (the paper's Not instruction for building split masks).
template <typename T>
void Not(KernelContext& ctx, const LocalTensor<T>& dst,
         const LocalTensor<T>& src, std::size_t n) {
  static_assert(std::is_integral_v<T>, "Not needs an integer type");
  detail::vec_unary(ctx, dst, src, n, "not",
                    [](T v) { return static_cast<T>(~v); });
}

// --- Cast --------------------------------------------------------------------

/// Element-type conversion; fp32->fp16 rounds to nearest even, integer
/// narrowing saturates (hardware semantics of the vector Cast).
template <typename Dst, typename Src>
void Cast(KernelContext& ctx, const LocalTensor<Dst>& dst,
          const LocalTensor<Src>& src, std::size_t n) {
  ASCAN_CHECK(ctx.is_vector(), "Cast runs on a vector core");
  ASCAN_CHECK(n <= dst.size() && n <= src.size(), "Cast overflow");
  for (std::size_t i = 0; i < n; ++i) {
    if constexpr (std::is_integral_v<Dst> && std::is_integral_v<Src> &&
                  sizeof(Dst) < sizeof(Src)) {
      const Src v = src.data()[i];
      const Src lo = static_cast<Src>(std::numeric_limits<Dst>::min());
      const Src hi = static_cast<Src>(std::numeric_limits<Dst>::max());
      dst.data()[i] = static_cast<Dst>(std::clamp(v, lo, hi));
    } else if constexpr (std::is_same_v<Dst, half>) {
      dst.data()[i] = half(static_cast<float>(src.data()[i]));
    } else if constexpr (std::is_same_v<Src, half>) {
      dst.data()[i] = static_cast<Dst>(static_cast<float>(src.data()[i]));
    } else {
      dst.data()[i] = static_cast<Dst>(src.data()[i]);
    }
  }
  const std::size_t bytes = n * std::max(sizeof(Dst), sizeof(Src));
  ctx.record_compute(sim::EngineKind::Compute,
                     detail::vec_cycles(ctx.cfg(), bytes), "cast",
                     {src.state()}, {dst.state()});
}

// --- Reductions ---------------------------------------------------------------

/// dst[0] = sum(src[0..n)). float16 reduces through float32 lanes and
/// rounds once on write-out (vector-unit behaviour).
template <typename T>
void ReduceSum(KernelContext& ctx, const LocalTensor<T>& dst,
               const LocalTensor<T>& src, std::size_t n) {
  ASCAN_CHECK(ctx.is_vector(), "ReduceSum runs on a vector core");
  ASCAN_CHECK(dst.size() >= 1 && n <= src.size(), "ReduceSum overflow");
  using W = typename detail::lane<T>::wide;
  W acc{};
  for (std::size_t i = 0; i < n; ++i) acc += static_cast<W>(src.data()[i]);
  dst.data()[0] = detail::lane<T>::narrow(acc);
  ctx.record_compute(
      sim::EngineKind::Compute,
      detail::vec_cycles(ctx.cfg(), n * sizeof(T)) + ctx.cfg().vec_issue_cycles,
      "reduce_sum", {src.state()}, {dst.state()});
}

template <typename T>
void ReduceMax(KernelContext& ctx, const LocalTensor<T>& dst,
               const LocalTensor<T>& src, std::size_t n) {
  ASCAN_CHECK(ctx.is_vector(), "ReduceMax runs on a vector core");
  ASCAN_CHECK(dst.size() >= 1 && n >= 1 && n <= src.size(),
              "ReduceMax overflow");
  T best = src.data()[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (best < src.data()[i]) best = src.data()[i];
  }
  dst.data()[0] = best;
  ctx.record_compute(
      sim::EngineKind::Compute,
      detail::vec_cycles(ctx.cfg(), n * sizeof(T)) + ctx.cfg().vec_issue_cycles,
      "reduce_max", {src.state()}, {dst.state()});
}

// --- Compare / select -----------------------------------------------------------

enum class CmpMode { LT, LE, GT, GE, EQ, NE };

namespace detail {
template <typename T>
bool cmp(CmpMode m, T a, T b) {
  switch (m) {
    case CmpMode::LT: return a < b;
    case CmpMode::LE: return a <= b;
    case CmpMode::GT: return a > b;
    case CmpMode::GE: return a >= b;
    case CmpMode::EQ: return a == b;
    case CmpMode::NE: return a != b;
  }
  return false;
}
}  // namespace detail

/// dst[i] = (src[i] <op> scalar) ? 1 : 0, as an int8 mask (the on-device
/// mask format used by split/compress).
template <typename T>
void CompareScalar(KernelContext& ctx, const LocalTensor<std::int8_t>& dst,
                   const LocalTensor<T>& src, T scalar, CmpMode mode,
                   std::size_t n) {
  ASCAN_CHECK(ctx.is_vector(), "CompareScalar runs on a vector core");
  ASCAN_CHECK(n <= dst.size() && n <= src.size(), "CompareScalar overflow");
  for (std::size_t i = 0; i < n; ++i) {
    dst.data()[i] = detail::cmp(mode, src.data()[i], scalar) ? 1 : 0;
  }
  ctx.record_compute(sim::EngineKind::Compute,
                     detail::vec_cycles(ctx.cfg(), n * sizeof(T)), "cmps",
                     {src.state()}, {dst.state()});
}

template <typename T>
void Select(KernelContext& ctx, const LocalTensor<T>& dst,
            const LocalTensor<std::int8_t>& mask, const LocalTensor<T>& a,
            const LocalTensor<T>& b, std::size_t n) {
  ASCAN_CHECK(ctx.is_vector(), "Select runs on a vector core");
  ASCAN_CHECK(n <= dst.size() && n <= mask.size() && n <= a.size() &&
                  n <= b.size(),
              "Select overflow");
  for (std::size_t i = 0; i < n; ++i) {
    dst.data()[i] = mask.data()[i] != 0 ? a.data()[i] : b.data()[i];
  }
  ctx.record_compute(sim::EngineKind::Compute,
                     detail::vec_cycles(ctx.cfg(), n * sizeof(T)) +
                         detail::vec_cycles(ctx.cfg(), n),
                     "select", {mask.state(), a.state(), b.state()},
                     {dst.state()});
}

// --- Gather family ---------------------------------------------------------------

/// Compacts src elements whose mask byte is non-zero into dst (stable).
/// Returns the gathered count; reading the count goes through a scalar
/// register, so it serialises the sub-core like hardware GatherMask's
/// rsvdCnt read does.
template <typename T>
std::size_t GatherMask(KernelContext& ctx, const LocalTensor<T>& dst,
                       const LocalTensor<T>& src,
                       const LocalTensor<std::int8_t>& mask, std::size_t n) {
  ASCAN_CHECK(ctx.is_vector(), "GatherMask runs on a vector core");
  ASCAN_CHECK(n <= src.size() && n <= mask.size(), "GatherMask overflow");
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask.data()[i] != 0) {
      ASCAN_CHECK(cnt < dst.size(), "GatherMask dst overflow");
      dst.data()[cnt++] = src.data()[i];
    }
  }
  ctx.record_compute(sim::EngineKind::Compute,
                     detail::gather_cycles(ctx.cfg(), n * sizeof(T)),
                     "gather_mask", {src.state(), mask.state()},
                     {dst.state()});
  const std::uint32_t id =
      ctx.record_compute(sim::EngineKind::Scalar, ctx.cfg().scalar_read_cycles,
                         "gather_mask.cnt", {dst.state()}, {});
  ctx.serialise_after(id);
  return cnt;
}

/// UB-local gather: dst[i] = src[indices[i]].
template <typename T>
void Gather(KernelContext& ctx, const LocalTensor<T>& dst,
            const LocalTensor<T>& src, const LocalTensor<std::int32_t>& indices,
            std::size_t n) {
  ASCAN_CHECK(ctx.is_vector(), "Gather runs on a vector core");
  ASCAN_CHECK(n <= dst.size() && n <= indices.size(), "Gather overflow");
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(indices.data()[i]);
    ASCAN_CHECK(idx < src.size(), "Gather index out of range");
    dst.data()[i] = src.data()[idx];
  }
  ctx.record_compute(sim::EngineKind::Compute,
                     detail::gather_cycles(ctx.cfg(), n * sizeof(T)), "gather",
                     {src.state(), indices.state()}, {dst.state()});
}

/// dst[i] = start + i (AscendC CreateVecIndex).
template <typename T>
void CreateVecIndex(KernelContext& ctx, const LocalTensor<T>& dst, T start,
                    std::size_t n) {
  ASCAN_CHECK(ctx.is_vector(), "CreateVecIndex runs on a vector core");
  ASCAN_CHECK(n <= dst.size(), "CreateVecIndex overflow");
  for (std::size_t i = 0; i < n; ++i) {
    dst.data()[i] = static_cast<T>(start + static_cast<T>(i));
  }
  ctx.record_compute(sim::EngineKind::Compute,
                     detail::vec_cycles(ctx.cfg(), n * sizeof(T)), "vec_index",
                     {}, {dst.state()});
}

// --- Macro instructions ------------------------------------------------------------

/// The closed-source AscendC CumSum API (the vector-only baseline of
/// Fig. 3). Functional: serial prefix sum with float32 lane accumulation.
/// Cost: calibrated per-element throughput (cumsum_cycles_per_elem); see
/// MachineConfig for the calibration note.
template <typename T>
void CumSum(KernelContext& ctx, const LocalTensor<T>& dst,
            const LocalTensor<T>& src, std::size_t n) {
  ASCAN_CHECK(ctx.is_vector(), "CumSum runs on a vector core");
  ASCAN_CHECK(n <= dst.size() && n <= src.size(), "CumSum overflow");
  using W = typename detail::lane<T>::wide;
  W acc{};
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<W>(src.data()[i]);
    dst.data()[i] = detail::lane<T>::narrow(acc);
  }
  ctx.record_compute(
      sim::EngineKind::Compute,
      ctx.cfg().vec_issue_cycles +
          static_cast<double>(n) * ctx.cfg().cumsum_cycles_per_elem,
      "cumsum_api", {src.state()}, {dst.state()});
}

/// Scalar-unit compaction loop — models the unoptimised AICPU
/// torch.masked_select baseline, which "does not use the vector or cube
/// units" (paper §6.2). Cost: scalar_loop_cycles_per_elem per element.
template <typename T>
std::size_t ScalarCompact(KernelContext& ctx, const LocalTensor<T>& dst,
                          const LocalTensor<T>& src,
                          const LocalTensor<std::int8_t>& mask,
                          std::size_t n) {
  ASCAN_CHECK(n <= src.size() && n <= mask.size(), "ScalarCompact overflow");
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask.data()[i] != 0) {
      ASCAN_CHECK(cnt < dst.size(), "ScalarCompact dst overflow");
      dst.data()[cnt++] = src.data()[i];
    }
  }
  const std::uint32_t id = ctx.record_compute(
      sim::EngineKind::Scalar,
      static_cast<double>(n) * ctx.cfg().scalar_loop_cycles_per_elem,
      "scalar_compact", {src.state(), mask.state()}, {dst.state()});
  ctx.serialise_after(id);
  return cnt;
}

/// Sorts each 32-element chunk of (key, index) pairs ascending by key
/// (AscendC Sort32 analogue; stable within the chunk).
template <typename K>
void Sort32(KernelContext& ctx, const LocalTensor<K>& keys,
            const LocalTensor<std::int32_t>& idx, std::size_t n);

/// Merges two sorted (key, index) runs into dst (stable, a before b on
/// ties) — the MrgSort step of the baseline sort.
template <typename K>
void MergeSorted(KernelContext& ctx, const LocalTensor<K>& dst_keys,
                 const LocalTensor<std::int32_t>& dst_idx,
                 const LocalTensor<K>& a_keys,
                 const LocalTensor<std::int32_t>& a_idx, std::size_t na,
                 const LocalTensor<K>& b_keys,
                 const LocalTensor<std::int32_t>& b_idx, std::size_t nb);

// --- Implementation of the sort macros -----------------------------------------

template <typename K>
void Sort32(KernelContext& ctx, const LocalTensor<K>& keys,
            const LocalTensor<std::int32_t>& idx, std::size_t n) {
  ASCAN_CHECK(ctx.is_vector(), "Sort32 runs on a vector core");
  ASCAN_CHECK(n <= keys.size() && n <= idx.size(), "Sort32 overflow");
  for (std::size_t base = 0; base < n; base += 32) {
    const std::size_t len = std::min<std::size_t>(32, n - base);
    // Stable insertion sort of the chunk (functional model).
    for (std::size_t i = 1; i < len; ++i) {
      K k = keys.data()[base + i];
      std::int32_t v = idx.data()[base + i];
      std::size_t j = i;
      while (j > 0 && k < keys.data()[base + j - 1]) {
        keys.data()[base + j] = keys.data()[base + j - 1];
        idx.data()[base + j] = idx.data()[base + j - 1];
        --j;
      }
      keys.data()[base + j] = k;
      idx.data()[base + j] = v;
    }
  }
  ctx.record_compute(sim::EngineKind::Compute,
                     ctx.cfg().vec_issue_cycles +
                         static_cast<double>(n) * 1.0 /* cycles per elem */,
                     "sort32", {keys.state(), idx.state()},
                     {keys.state(), idx.state()});
}

template <typename K>
void MergeSorted(KernelContext& ctx, const LocalTensor<K>& dst_keys,
                 const LocalTensor<std::int32_t>& dst_idx,
                 const LocalTensor<K>& a_keys,
                 const LocalTensor<std::int32_t>& a_idx, std::size_t na,
                 const LocalTensor<K>& b_keys,
                 const LocalTensor<std::int32_t>& b_idx, std::size_t nb) {
  ASCAN_CHECK(ctx.is_vector(), "MergeSorted runs on a vector core");
  ASCAN_CHECK(na + nb <= dst_keys.size() && na + nb <= dst_idx.size(),
              "MergeSorted overflow");
  std::size_t i = 0, j = 0, o = 0;
  while (i < na && j < nb) {
    if (b_keys.data()[j] < a_keys.data()[i]) {
      dst_keys.data()[o] = b_keys.data()[j];
      dst_idx.data()[o++] = b_idx.data()[j++];
    } else {
      dst_keys.data()[o] = a_keys.data()[i];
      dst_idx.data()[o++] = a_idx.data()[i++];
    }
  }
  while (i < na) {
    dst_keys.data()[o] = a_keys.data()[i];
    dst_idx.data()[o++] = a_idx.data()[i++];
  }
  while (j < nb) {
    dst_keys.data()[o] = b_keys.data()[j];
    dst_idx.data()[o++] = b_idx.data()[j++];
  }
  ctx.record_compute(
      sim::EngineKind::Compute,
      ctx.cfg().vec_issue_cycles +
          static_cast<double>(na + nb) * ctx.cfg().vec_merge_cycles_per_elem,
      "mrg_sort", {a_keys.state(), a_idx.state(), b_keys.state(), b_idx.state()},
      {dst_keys.state(), dst_idx.state()});
}

}  // namespace ascend::acc
