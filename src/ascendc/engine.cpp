#include "ascendc/engine.hpp"

#include <cstring>
#include <thread>
#include <utility>

#include "ascendc/device.hpp"

namespace ascend::acc {

LaunchEngine::LaunchEngine(const sim::MachineConfig& cfg)
    : cfg_(cfg),
      mode_(sim::resolve_executor_mode(cfg.executor)),
      cache_enabled_(sim::resolve_timing_cache(cfg.timing_cache)) {}

LaunchEngine::~LaunchEngine() = default;

// ---------------------------------------------------------------------------
// Context pooling

LaunchEngine::ContextLease::~ContextLease() {
  if (eng_ != nullptr) eng_->release(ctxs_);
}

KernelContext* LaunchEngine::acquire(
    const SubcorePlan& p, LaunchShared* shared, int block_dim,
    std::uint32_t global_subcore,
    std::vector<std::unique_ptr<KernelContext>>& out) {
  auto& pool = p.kind == SubcoreKind::Cube ? cube_pool_ : vec_pool_;
  std::unique_ptr<KernelContext> ctx;
  if (!pool.empty()) {
    ctx = std::move(pool.back());
    pool.pop_back();
    ctx->reset(shared, p.block_idx, block_dim, p.sub_idx, global_subcore);
  } else {
    ctx = std::make_unique<KernelContext>(cfg_, shared, p.block_idx, block_dim,
                                          p.kind, p.sub_idx, global_subcore);
  }
  out.push_back(std::move(ctx));
  return out.back().get();
}

LaunchEngine::ContextLease LaunchEngine::lease_contexts(
    const std::vector<SubcorePlan>& plan, LaunchShared* shared,
    int block_dim) {
  ContextLease lease;
  lease.eng_ = this;
  lease.ctxs_.reserve(plan.size());
  for (std::size_t s = 0; s < plan.size(); ++s) {
    acquire(plan[s], shared, block_dim, static_cast<std::uint32_t>(s),
            lease.ctxs_);
  }
  return lease;
}

void LaunchEngine::release(
    std::vector<std::unique_ptr<KernelContext>>& ctxs) noexcept {
  for (auto& ctx : ctxs) {
    if (ctx == nullptr) continue;
    (ctx->is_cube() ? cube_pool_ : vec_pool_).push_back(std::move(ctx));
  }
  ctxs.clear();
}

// ---------------------------------------------------------------------------
// Sub-core dispatch

void LaunchEngine::run_subcores(int n, const std::function<void(int)>& body) {
  if (mode_ == sim::ExecutorMode::Pool) {
    pool_.run(n, body);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) threads.emplace_back([&body, s] { body(s); });
  for (std::thread& t : threads) t.join();
}

// ---------------------------------------------------------------------------
// Timing

namespace {
std::uint64_t double_bits(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}
}  // namespace

sim::Report LaunchEngine::replay(const TimingRequest& req) {
  // Counted even when the replay aborts on a fault: a partial replay still
  // mutates the L2, so the generation must move.
  ++replays_;
  sim::Scheduler sched(cfg_, req.l2);
  return sched.run(trace_, req.timeline, {req.injector, req.watchdog_s},
                   &scratch_);
}

sim::Report LaunchEngine::timed(const TimingRequest& req) {
  const bool armed = req.injector != nullptr && req.injector->armed();
  const bool eligible =
      cache_enabled_ && !armed && req.timeline == nullptr;
  if (!eligible) {
    if (cache_enabled_) cache_.note_bypass();
    return replay(req);
  }
  sim::LaunchKey key;
  key.name = req.name;
  key.mode = req.mode;
  key.block_dim = req.block_dim;
  key.fingerprint = sim::trace_fingerprint(trace_, id_scratch_);
  // The effective deadline is part of the key: a cached success under a lax
  // watchdog must not satisfy a launch with a tighter one.
  const double wd = req.watchdog_s > 0 ? req.watchdog_s : cfg_.watchdog_s;
  key.watchdog_bits = double_bits(wd);

  const std::uint64_t gen_before = generation(req.l2);
  if (const sim::Report* hit = cache_.lookup(key, gen_before)) return *hit;
  const sim::Report rep = replay(req);
  cache_.record(key, rep, gen_before, generation(req.l2));
  return rep;
}

sim::Report LaunchEngine::time_lease(ContextLease& lease, LaunchShared& shared,
                                     const TimingRequest& req) {
  const std::size_t n = lease.size();
  trace_.per_subcore.resize(n);
  trace_.is_cube_subcore.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    trace_.per_subcore[s] = std::move(lease[s].trace().mutable_ops());
    trace_.is_cube_subcore[s] = lease[s].is_cube();
  }
  trace_.max_op_id = shared.op_ids().load(std::memory_order_relaxed) - 1;

  // Canonical op ids. The shared atomic hands ids out in host-thread
  // arrival order, which genuinely races when the pooled workers all wake
  // at once (spawn mode masks it: staggered thread creation makes arrival
  // order repeatable in practice). The scheduler breaks simultaneous-event
  // ties by id, so raw ids would leak host timing into simulated time.
  // Renumbering densely by (sub-core, position) — both interleaving-
  // independent — restores bit-reproducible replays. Two passes: deps may
  // reference ops of other sub-cores (cross-core flag edges).
  id_map_.assign(static_cast<std::size_t>(trace_.max_op_id) + 1, 0);
  std::uint32_t next_id = 1;
  for (const auto& ops : trace_.per_subcore) {
    for (const sim::TraceOp& op : ops) id_map_[op.id] = next_id++;
  }
  for (auto& ops : trace_.per_subcore) {
    for (sim::TraceOp& op : ops) {
      op.id = id_map_[op.id];
      for (std::uint8_t d = 0; d < op.num_deps; ++d) {
        op.deps[d] = id_map_[op.deps[d]];
      }
    }
  }
  trace_.max_op_id = next_id - 1;

  // Hand the op vectors (and their capacity) back to the builders whether
  // the timing pass succeeds or aborts on an injected fault.
  auto recycle = [&] {
    for (std::size_t s = 0; s < n; ++s) {
      lease[s].trace().mutable_ops() = std::move(trace_.per_subcore[s]);
    }
  };
  try {
    const sim::Report rep = timed(req);
    recycle();
    return rep;
  } catch (...) {
    recycle();
    throw;
  }
}

// ---------------------------------------------------------------------------
// Device <-> engine wiring (out of line: LaunchEngine is forward-declared in
// device.hpp so every translation unit including the device doesn't pull in
// the engine, and unique_ptr needs the complete type here).

Device::Device(sim::MachineConfig cfg)
    : cfg_(cfg), l2_(cfg.l2_bytes, cfg.l2_line_bytes) {}
Device::~Device() = default;
Device::Device(Device&&) noexcept = default;
Device& Device::operator=(Device&&) noexcept = default;

LaunchEngine& Device::engine() {
  if (engine_ == nullptr) engine_ = std::make_unique<LaunchEngine>(cfg_);
  return *engine_;
}

}  // namespace ascend::acc
