// Deterministic virtual GM address space.
//
// The L2 model indexes cache sets by GM address. Host heap addresses are
// useless for that: they depend on ASLR and on allocator state perturbed by
// thread timing (the persistent sub-core pool makes this visible), which
// would make simulated times differ run to run. Every GlobalBuffer instead
// acquires a *virtual* GM address from this process-wide allocator — a bump
// pointer with size-bucketed LIFO free lists, so the address stream depends
// only on the (deterministic, main-thread) sequence of buffer lifetimes,
// never on where the host heap happened to place the payload.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ascend::acc::gm_space {

/// Returns a virtual GM address for a buffer of `bytes` bytes (never 0 —
/// the trace uses gm_addr 0 as the "no GM access" sentinel). Freed blocks
/// of the same rounded size are reused LIFO, mirroring malloc enough that
/// repeated alloc/free cycles see stable addresses.
std::uint64_t acquire(std::size_t bytes);

/// Returns `vaddr` (from acquire with the same `bytes`) to the free list.
void release(std::uint64_t vaddr, std::size_t bytes) noexcept;

}  // namespace ascend::acc::gm_space
