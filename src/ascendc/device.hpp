// Simulated Ascend device: owns the machine configuration, the shared L2
// model, global-memory buffers, and accumulates per-operator reports.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/dtype.hpp"
#include "sim/config.hpp"
#include "sim/fault.hpp"
#include "sim/l2_cache.hpp"
#include "sim/report.hpp"

namespace ascend::acc {

template <typename T>
class GlobalTensor;

/// Owning global-memory (HBM) allocation. The host can read/write it freely
/// between kernel launches (that is the host<->device boundary); kernels
/// access it through GlobalTensor views.
template <typename T>
class GlobalBuffer {
 public:
  GlobalBuffer() = default;
  explicit GlobalBuffer(std::size_t n) : data_(n) {}
  GlobalBuffer(std::size_t n, T fill) : data_(n, fill) {}
  explicit GlobalBuffer(std::vector<T> host) : data_(std::move(host)) {}

  std::size_t size() const { return data_.size(); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  GlobalTensor<T> tensor();

  std::vector<T>& host() { return data_; }
  const std::vector<T>& host() const { return data_; }

 private:
  std::vector<T> data_;
};

class Device {
 public:
  explicit Device(sim::MachineConfig cfg = sim::MachineConfig::ascend_910b4())
      : cfg_(cfg), l2_(cfg.l2_bytes, cfg.l2_line_bytes) {}

  const sim::MachineConfig& config() const { return cfg_; }
  sim::L2Cache& l2() { return l2_; }

  /// Installs a fault plan: every subsequent launch on this device consults
  /// the injector. The injector is shared so a resilient caller (e.g.
  /// ascan::Session) can move it onto a degraded replacement device without
  /// resetting the launch ordinal the fault sequence is keyed on.
  void set_fault_plan(const sim::FaultPlan& plan) {
    injector_ = plan.any() ? std::make_shared<sim::FaultInjector>(plan)
                           : nullptr;
  }
  void set_fault_injector(std::shared_ptr<sim::FaultInjector> inj) {
    injector_ = std::move(inj);
  }
  const std::shared_ptr<sim::FaultInjector>& fault_injector() const {
    return injector_;
  }

  template <typename T>
  GlobalBuffer<T> alloc(std::size_t n) {
    return GlobalBuffer<T>(n);
  }
  template <typename T>
  GlobalBuffer<T> alloc(std::size_t n, T fill) {
    return GlobalBuffer<T>(n, fill);
  }
  template <typename T>
  GlobalBuffer<T> upload(std::vector<T> host) {
    return GlobalBuffer<T>(std::move(host));
  }

  /// Cost of a host-side synchronisation + read-back of device results
  /// between launches (used by host-driven algorithms such as the
  /// quickselect top-k). Returns a report fragment to aggregate.
  sim::Report host_sync_report() const {
    sim::Report r;
    r.time_s = host_sync_s_;
    return r;
  }

 private:
  sim::MachineConfig cfg_;
  sim::L2Cache l2_;
  std::shared_ptr<sim::FaultInjector> injector_;
  double host_sync_s_ = 8e-6;
};

}  // namespace ascend::acc
