// Simulated Ascend device: owns the machine configuration, the shared L2
// model, global-memory buffers, and accumulates per-operator reports.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ascendc/gm_space.hpp"
#include "common/check.hpp"
#include "common/dtype.hpp"
#include "sim/config.hpp"
#include "sim/fault.hpp"
#include "sim/l2_cache.hpp"
#include "sim/report.hpp"

namespace ascend::acc {

template <typename T>
class GlobalTensor;

class LaunchEngine;

/// Owning global-memory (HBM) allocation. The host can read/write it freely
/// between kernel launches (that is the host<->device boundary); kernels
/// access it through GlobalTensor views.
///
/// Each buffer carries a deterministic *virtual* GM address (see
/// gm_space.hpp) which the L2 model keys on — never the host heap address,
/// which varies with ASLR and allocator state.
template <typename T>
class GlobalBuffer {
 public:
  GlobalBuffer() = default;
  explicit GlobalBuffer(std::size_t n) : data_(n) { acquire_vaddr(); }
  GlobalBuffer(std::size_t n, T fill) : data_(n, fill) { acquire_vaddr(); }
  explicit GlobalBuffer(std::vector<T> host) : data_(std::move(host)) {
    acquire_vaddr();
  }

  ~GlobalBuffer() { release_vaddr(); }
  GlobalBuffer(const GlobalBuffer& o) : data_(o.data_) { acquire_vaddr(); }
  GlobalBuffer& operator=(const GlobalBuffer& o) {
    if (this != &o) {
      release_vaddr();
      data_ = o.data_;
      acquire_vaddr();
    }
    return *this;
  }
  GlobalBuffer(GlobalBuffer&& o) noexcept
      : data_(std::move(o.data_)), vaddr_(o.vaddr_), vbytes_(o.vbytes_) {
    o.vaddr_ = 0;
    o.vbytes_ = 0;
  }
  GlobalBuffer& operator=(GlobalBuffer&& o) noexcept {
    if (this != &o) {
      release_vaddr();
      data_ = std::move(o.data_);
      vaddr_ = o.vaddr_;
      vbytes_ = o.vbytes_;
      o.vaddr_ = 0;
      o.vbytes_ = 0;
    }
    return *this;
  }

  std::size_t size() const { return data_.size(); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  GlobalTensor<T> tensor();

  std::vector<T>& host() { return data_; }
  const std::vector<T>& host() const { return data_; }

 private:
  void acquire_vaddr() {
    if (!data_.empty()) {
      vbytes_ = data_.size() * sizeof(T);
      vaddr_ = gm_space::acquire(vbytes_);
    }
  }
  void release_vaddr() noexcept {
    if (vaddr_ != 0) {
      gm_space::release(vaddr_, vbytes_);
      vaddr_ = 0;
      vbytes_ = 0;
    }
  }

  std::vector<T> data_;
  std::uint64_t vaddr_ = 0;   ///< virtual GM address (L2 model key)
  std::size_t vbytes_ = 0;    ///< bytes vaddr_ was acquired for
};

class Device {
 public:
  // Special members live in engine.cpp: the engine_ unique_ptr needs the
  // complete LaunchEngine type to destroy.
  explicit Device(sim::MachineConfig cfg = sim::MachineConfig::ascend_910b4());
  ~Device();
  Device(Device&&) noexcept;
  Device& operator=(Device&&) noexcept;

  const sim::MachineConfig& config() const { return cfg_; }
  sim::L2Cache& l2() { return l2_; }

  /// Host execution engine of this device: persistent sub-core workers,
  /// pooled kernel contexts, scheduler scratch and the timing cache.
  /// Created lazily on the first launch (defined in engine.cpp).
  LaunchEngine& engine();

  /// Installs a fault plan: every subsequent launch on this device consults
  /// the injector. The injector is shared so a resilient caller (e.g.
  /// ascan::Session) can move it onto a degraded replacement device without
  /// resetting the launch ordinal the fault sequence is keyed on.
  void set_fault_plan(const sim::FaultPlan& plan) {
    injector_ = plan.any() ? std::make_shared<sim::FaultInjector>(plan)
                           : nullptr;
  }
  void set_fault_injector(std::shared_ptr<sim::FaultInjector> inj) {
    injector_ = std::move(inj);
  }
  const std::shared_ptr<sim::FaultInjector>& fault_injector() const {
    return injector_;
  }

  template <typename T>
  GlobalBuffer<T> alloc(std::size_t n) {
    return GlobalBuffer<T>(n);
  }
  template <typename T>
  GlobalBuffer<T> alloc(std::size_t n, T fill) {
    return GlobalBuffer<T>(n, fill);
  }
  template <typename T>
  GlobalBuffer<T> upload(std::vector<T> host) {
    return GlobalBuffer<T>(std::move(host));
  }

  /// Cost of a host-side synchronisation + read-back of device results
  /// between launches (used by host-driven algorithms such as the
  /// quickselect top-k). Returns a report fragment to aggregate.
  sim::Report host_sync_report() const {
    sim::Report r;
    r.time_s = host_sync_s_;
    return r;
  }

 private:
  sim::MachineConfig cfg_;
  sim::L2Cache l2_;
  std::shared_ptr<sim::FaultInjector> injector_;
  std::unique_ptr<LaunchEngine> engine_;  ///< lazy; travels on move
  double host_sync_s_ = 8e-6;
};

}  // namespace ascend::acc
