// Umbrella header for the AscendC-style programming layer.
#pragma once

#include "ascendc/context.hpp"
#include "ascendc/device.hpp"
#include "ascendc/intrinsics.hpp"
#include "ascendc/runtime.hpp"
#include "ascendc/tensor.hpp"
#include "ascendc/tpipe.hpp"
