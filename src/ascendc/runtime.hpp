// Kernel launcher: runs a kernel body once per logical sub-core (each on a
// host thread), merges the recorded traces, and feeds them to the
// discrete-event scheduler to obtain the simulated execution report.
//
// Launch modes mirror how AscendC kernels occupy the 910B:
//  * Mix:        block = one AI core (1 AIC + vec_per_core AIVs). The body
//                runs on every sub-core; branch on ctx.is_cube() /
//                ctx.GetSubBlockIdx() like an AscendC MIX kernel.
//  * VectorOnly: block = one AIV core (up to 2x the AI-core count).
//  * CubeOnly:   block = one AIC core.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "ascendc/context.hpp"
#include "ascendc/device.hpp"
#include "ascendc/engine.hpp"
#include "sim/report.hpp"
#include "sim/scheduler.hpp"

namespace ascend::acc {

enum class LaunchMode { Mix, VectorOnly, CubeOnly };

/// Type-erased span of a GM output buffer registered with a launch so a
/// faulted attempt can be rolled back (see LaunchSpec::outputs).
struct GmGuard {
  std::byte* data = nullptr;
  std::size_t bytes = 0;
};

template <typename T>
GmGuard guard_output(GlobalTensor<T> t) {
  return {reinterpret_cast<std::byte*>(t.data()), t.size() * sizeof(T)};
}

struct LaunchSpec {
  int block_dim = 1;
  LaunchMode mode = LaunchMode::Mix;
  const char* name = "kernel";
  /// When set, the scheduler records every op's interval for inspection /
  /// chrome-trace export (see sim/trace_export.hpp).
  sim::Timeline* timeline = nullptr;
  /// Simulated-time watchdog deadline for this launch (0 = device default,
  /// which is disabled unless cfg.watchdog_s is set). A hang or
  /// pathological straggler aborts with sim::TimeoutError at the deadline.
  double watchdog_s = 0;
  /// GM output buffers of the kernel. When the device has an armed fault
  /// injector they are snapshotted before the launch and restored if the
  /// launch aborts on a fault, making launches idempotent-relaunchable: a
  /// failed attempt never leaves partial writes visible.
  std::vector<GmGuard> outputs = {};
};

namespace detail {

inline std::vector<SubcorePlan> plan_subcores(const sim::MachineConfig& cfg,
                                              const LaunchSpec& spec) {
  std::vector<SubcorePlan> plan;
  switch (spec.mode) {
    case LaunchMode::Mix:
      ASCAN_CHECK(spec.block_dim >= 1 && spec.block_dim <= cfg.num_ai_cores,
                  "MIX launch of " << spec.block_dim << " blocks exceeds "
                                   << cfg.num_ai_cores << " AI cores");
      for (int b = 0; b < spec.block_dim; ++b) {
        plan.push_back({b, SubcoreKind::Cube, 0});
        for (int v = 0; v < cfg.vec_per_core; ++v) {
          plan.push_back({b, SubcoreKind::Vector, v});
        }
      }
      break;
    case LaunchMode::VectorOnly:
      ASCAN_CHECK(spec.block_dim >= 1 && spec.block_dim <= cfg.num_vec_cores(),
                  "vector launch of " << spec.block_dim << " blocks exceeds "
                                      << cfg.num_vec_cores() << " AIV cores");
      for (int b = 0; b < spec.block_dim; ++b) {
        plan.push_back({b, SubcoreKind::Vector, 0});
      }
      break;
    case LaunchMode::CubeOnly:
      ASCAN_CHECK(spec.block_dim >= 1 && spec.block_dim <= cfg.num_ai_cores,
                  "cube launch of " << spec.block_dim << " blocks exceeds "
                                    << cfg.num_ai_cores << " AIC cores");
      for (int b = 0; b < spec.block_dim; ++b) {
        plan.push_back({b, SubcoreKind::Cube, 0});
      }
      break;
  }
  return plan;
}

}  // namespace detail

/// Launches `body(ctx)` per sub-core and returns the simulated report.
/// Functional effects on GM buffers happen eagerly; the report's time is
/// what the 910B would take.
///
/// Host execution runs on the device's LaunchEngine: sub-core bodies execute
/// on the persistent worker pool (or spawned threads under
/// ExecutorMode::Spawn / ASCAN_EXECUTOR=spawn), kernel contexts and trace
/// arenas are pooled in both modes, and constant-shape repeated launches may
/// skip the discrete-event replay via the opt-in timing cache. All of it is
/// bit-exact: Reports, traces and GM effects are identical across modes.
template <typename F>
sim::Report launch(Device& dev, const LaunchSpec& spec, F&& body) {
  LaunchEngine& eng = dev.engine();
  const sim::MachineConfig& cfg = eng.config();
  const auto plan = detail::plan_subcores(cfg, spec);
  const int n = static_cast<int>(plan.size());

  // Fault-aware launches snapshot their registered outputs up front: the
  // functional pass writes GM eagerly, so rolling back on an abort is what
  // keeps a failed attempt invisible (and the relaunch idempotent).
  sim::FaultInjector* injector = dev.fault_injector().get();
  const bool fault_armed = injector != nullptr && injector->armed();
  std::vector<std::vector<std::byte>> output_snapshots;
  if (fault_armed) {
    output_snapshots.reserve(spec.outputs.size());
    for (const GmGuard& g : spec.outputs) {
      output_snapshots.emplace_back(g.data, g.data + g.bytes);
    }
  }

  LaunchShared shared(n);
  LaunchEngine::ContextLease ctxs =
      eng.lease_contexts(plan, &shared, spec.block_dim);

  std::exception_ptr first_error;
  std::mutex error_mu;
  eng.run_subcores(n, [&](int s) {
    try {
      body(ctxs[static_cast<std::size_t>(s)]);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      shared.poison();
    }
  });
  if (first_error) std::rethrow_exception(first_error);

  LaunchEngine::TimingRequest req;
  req.name = spec.name;
  req.mode = static_cast<int>(spec.mode);
  req.block_dim = spec.block_dim;
  req.timeline = spec.timeline;
  req.watchdog_s = spec.watchdog_s;
  req.injector = fault_armed ? injector : nullptr;
  req.l2 = &dev.l2();
  try {
    return eng.time_lease(ctxs, shared, req);
  } catch (sim::FaultError& e) {
    for (std::size_t g = 0; g < output_snapshots.size(); ++g) {
      std::copy(output_snapshots[g].begin(), output_snapshots[g].end(),
                spec.outputs[g].data);
    }
    if (e.subcore() >= 0 && e.subcore() < n) {
      e.set_block(plan[static_cast<std::size_t>(e.subcore())].block_idx);
    }
    throw;
  }
}

}  // namespace ascend::acc
