// Host execution engine owned by acc::Device: persistent sub-core worker
// pool, pooled KernelContexts / trace-op arenas, reusable scheduler scratch
// and the opt-in launch-shape timing cache.
//
// The engine holds its own MachineConfig copy so pooled KernelContexts
// (which keep a reference to it) stay valid even when the owning Device is
// moved — Session::exclude_core move-assigns a replacement Device, and the
// engine travels with it by unique_ptr.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ascendc/context.hpp"
#include "sim/executor.hpp"
#include "sim/fault.hpp"
#include "sim/l2_cache.hpp"
#include "sim/report.hpp"
#include "sim/scheduler.hpp"
#include "sim/timeline.hpp"

namespace ascend::acc {

/// Where one sub-core of a launch runs (produced by the planner in
/// runtime.hpp, consumed by the context pool below).
struct SubcorePlan {
  int block_idx;
  SubcoreKind kind;
  int sub_idx;
};

class LaunchEngine {
 public:
  explicit LaunchEngine(const sim::MachineConfig& cfg);
  ~LaunchEngine();
  LaunchEngine(const LaunchEngine&) = delete;
  LaunchEngine& operator=(const LaunchEngine&) = delete;

  const sim::MachineConfig& config() const { return cfg_; }
  sim::ExecutorMode mode() const { return mode_; }
  bool timing_cache_enabled() const { return cache_enabled_; }
  /// Workers currently alive in the pool (0 until the first pooled launch).
  int pool_workers() const { return pool_.workers(); }
  const sim::TimingCache::Stats& cache_stats() const { return cache_.stats(); }
  /// Discrete-event replays executed (cache hits don't count).
  std::uint64_t replays() const { return replays_; }

  /// RAII lease over pooled per-sub-core contexts: contexts are taken from
  /// the engine's free lists (or built on first use), reset for the new
  /// launch, and handed back — arenas and trace capacity intact — when the
  /// lease is destroyed.
  class ContextLease {
   public:
    ContextLease() = default;
    ContextLease(ContextLease&& o) noexcept
        : eng_(o.eng_), ctxs_(std::move(o.ctxs_)) {
      o.eng_ = nullptr;
    }
    ContextLease& operator=(ContextLease&&) = delete;
    ContextLease(const ContextLease&) = delete;
    ContextLease& operator=(const ContextLease&) = delete;
    ~ContextLease();

    KernelContext& operator[](std::size_t i) { return *ctxs_[i]; }
    std::size_t size() const { return ctxs_.size(); }

   private:
    friend class LaunchEngine;
    LaunchEngine* eng_ = nullptr;
    std::vector<std::unique_ptr<KernelContext>> ctxs_;
  };

  ContextLease lease_contexts(const std::vector<SubcorePlan>& plan,
                              LaunchShared* shared, int block_dim);

  /// Runs body(0) .. body(n-1) concurrently and waits for all of them:
  /// thread-per-launch in Spawn mode, persistent workers in Pool mode.
  /// `body` must not throw (the launch wrapper catches per-sub-core).
  void run_subcores(int n, const std::function<void(int)>& body);

  struct TimingRequest {
    const char* name = "kernel";
    int mode = 0;  ///< LaunchMode as int (part of the cache key)
    int block_dim = 0;
    sim::Timeline* timeline = nullptr;
    double watchdog_s = 0;
    /// Armed injector of the device, or nullptr for fault-free timing.
    sim::FaultInjector* injector = nullptr;
    sim::L2Cache* l2 = nullptr;
  };

  /// Gathers the lease's recorded traces, produces the launch Report — from
  /// the timing cache when provably bit-exact, otherwise by discrete-event
  /// replay — and returns the trace-op arenas to the lease's builders for
  /// reuse. On a FaultError the arenas are recycled before it propagates.
  sim::Report time_lease(ContextLease& lease, LaunchShared& shared,
                         const TimingRequest& req);

 private:
  KernelContext* acquire(const SubcorePlan& p, LaunchShared* shared,
                         int block_dim, std::uint32_t global_subcore,
                         std::vector<std::unique_ptr<KernelContext>>& out);
  void release(std::vector<std::unique_ptr<KernelContext>>& ctxs) noexcept;
  sim::Report timed(const TimingRequest& req);
  sim::Report replay(const TimingRequest& req);
  /// Cache generation: replay count + L2 reset count. Unchanged generation
  /// proves nothing perturbed the L2 since an entry was recorded.
  std::uint64_t generation(const sim::L2Cache* l2) const {
    return replays_ + (l2 != nullptr ? l2->generation() : 0);
  }

  sim::MachineConfig cfg_;
  sim::ExecutorMode mode_;
  bool cache_enabled_;
  sim::SubcorePool pool_;
  sim::SchedScratch scratch_;
  sim::TimingCache cache_;
  std::uint64_t replays_ = 0;
  std::vector<std::unique_ptr<KernelContext>> cube_pool_;
  std::vector<std::unique_ptr<KernelContext>> vec_pool_;
  sim::KernelTrace trace_;                 ///< reused across launches
  std::vector<std::uint64_t> id_scratch_;  ///< fingerprint scratch
  std::vector<std::uint32_t> id_map_;      ///< canonical-id renumber scratch
};

}  // namespace ascend::acc
