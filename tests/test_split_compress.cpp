// Functional tests of SplitInd, Compress, and the masked_select baseline.
#include <gtest/gtest.h>

#include "kernels/reference.hpp"
#include "kernels/split.hpp"
#include "test_helpers.hpp"

namespace ascend::kernels {
namespace {

using acc::Device;

class SplitInd : public ::testing::TestWithParam<
                     std::tuple<std::size_t, double, std::size_t>> {};

TEST_P(SplitInd, StableSplitWithIndices) {
  const auto [n, density, s] = GetParam();
  Device dev;
  Rng rng(n * 7 + s);
  auto keys_host = rng.uniform_f16(n, -4.0, 4.0);
  auto mask_host = rng.mask_i8(n, density);
  auto keys = dev.upload(keys_host);
  auto mask = dev.upload(mask_host);
  auto keys_out = dev.alloc<half>(n, half(0.0f));
  auto idx_out = dev.alloc<std::int32_t>(n, -1);

  const auto r =
      split_ind<half>(dev, keys.tensor(), {}, mask.tensor(),
                      keys_out.tensor(), idx_out.tensor(), n, {.s = s});

  const auto want = ref::split(std::span<const half>(keys_host),
                               std::span<const std::int8_t>(mask_host));
  ASSERT_EQ(r.num_true, want.num_true);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(keys_out[i].bits(), want.values[i].bits()) << "value @" << i;
    ASSERT_EQ(idx_out[i], want.indices[i]) << "index @" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SplitInd,
    ::testing::Combine(::testing::Values<std::size_t>(1, 100, 8192, 100001),
                       ::testing::Values(0.0, 0.1, 0.5, 1.0),
                       ::testing::Values<std::size_t>(32, 128)),
    [](const auto& ti) {
      return "n" + std::to_string(std::get<0>(ti.param)) + "_p" +
             std::to_string(static_cast<int>(std::get<1>(ti.param) * 10)) +
             "_s" + std::to_string(std::get<2>(ti.param));
    });

TEST(SplitIndPayload, CarriesCallerIndices) {
  const std::size_t n = 5000;
  Device dev;
  Rng rng(2);
  auto keys_host = rng.uniform_f16(n, 0.0, 1.0);
  auto mask_host = rng.mask_i8(n, 0.4);
  std::vector<std::int32_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<std::int32_t>(1000000 + i * 3);
  }
  auto keys = dev.upload(keys_host);
  auto mask = dev.upload(mask_host);
  auto idx_in = dev.upload(payload);
  auto keys_out = dev.alloc<half>(n);
  auto idx_out = dev.alloc<std::int32_t>(n);
  split_ind<half>(dev, keys.tensor(), idx_in.tensor(), mask.tensor(),
                  keys_out.tensor(), idx_out.tensor(), n, {});
  const auto want = ref::split(std::span<const half>(keys_host),
                               std::span<const std::int8_t>(mask_host));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(idx_out[i],
              payload[static_cast<std::size_t>(want.indices[i])])
        << i;
  }
}

TEST(SplitIndU16, EncodedKeysPath) {
  const std::size_t n = 30000;
  Device dev;
  Rng rng(4);
  std::vector<std::uint16_t> keys_host(n);
  for (auto& v : keys_host) {
    v = static_cast<std::uint16_t>(rng.next_below(65536));
  }
  auto mask_host = rng.mask_i8(n, 0.5);
  auto keys = dev.upload(keys_host);
  auto mask = dev.upload(mask_host);
  auto keys_out = dev.alloc<std::uint16_t>(n);
  auto idx_out = dev.alloc<std::int32_t>(n);
  const auto r = split_ind<std::uint16_t>(dev, keys.tensor(), {},
                                          mask.tensor(), keys_out.tensor(),
                                          idx_out.tensor(), n, {});
  // Verify against a hand-rolled stable split.
  std::size_t pos = 0;
  for (int want_flag = 1; want_flag >= 0; --want_flag) {
    for (std::size_t i = 0; i < n; ++i) {
      if (mask_host[i] == want_flag) {
        ASSERT_EQ(keys_out[pos], keys_host[i]) << pos;
        ASSERT_EQ(idx_out[pos], static_cast<std::int32_t>(i)) << pos;
        ++pos;
      }
    }
    if (want_flag == 1) ASSERT_EQ(pos, r.num_true);
  }
}

class Compress
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(Compress, MatchesMaskedSelectReference) {
  const auto [n, density] = GetParam();
  Device dev;
  Rng rng(n + 17);
  auto x_host = rng.uniform_f16(n, -1.0, 1.0);
  auto mask_host = rng.mask_i8(n, density);
  auto x = dev.upload(x_host);
  auto mask = dev.upload(mask_host);
  auto out = dev.alloc<half>(n, half(7.0f));
  const auto r = compress(dev, x.tensor(), mask.tensor(), out.tensor(), n, {});
  const auto want = ref::compress(std::span<const half>(x_host),
                                  std::span<const std::int8_t>(mask_host));
  ASSERT_EQ(r.num_true, want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(out[i].bits(), want[i].bits()) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Compress,
    ::testing::Combine(::testing::Values<std::size_t>(1, 1000, 65536, 200000),
                       ::testing::Values(0.0, 0.25, 0.5, 0.9, 1.0)),
    [](const auto& ti) {
      return "n" + std::to_string(std::get<0>(ti.param)) + "_p" +
             std::to_string(static_cast<int>(std::get<1>(ti.param) * 100));
    });

TEST(MaskedSelectBaseline, SameResultMuchSlower) {
  const std::size_t n = 200000;
  Device dev;
  Rng rng(23);
  auto x_host = rng.uniform_f16(n, -1.0, 1.0);
  auto mask_host = rng.mask_i8(n, 0.5);
  auto x = dev.upload(x_host);
  auto mask = dev.upload(mask_host);
  auto out_fast = dev.alloc<half>(n);
  auto out_slow = dev.alloc<half>(n);
  const auto fast =
      compress(dev, x.tensor(), mask.tensor(), out_fast.tensor(), n, {});
  const auto slow = masked_select_baseline(dev, x.tensor(), mask.tensor(),
                                           out_slow.tensor(), n);
  ASSERT_EQ(fast.num_true, slow.num_true);
  for (std::size_t i = 0; i < fast.num_true; ++i) {
    ASSERT_EQ(out_fast[i].bits(), out_slow[i].bits()) << i;
  }
  // Fig. 10: the baseline "is not optimized on Ascend" — orders slower.
  EXPECT_GT(slow.report.time_s, 10.0 * fast.report.time_s);
}

TEST(CompressEdge, OutputBufferSizedToKeptCount) {
  const std::size_t n = 1000;
  Device dev;
  std::vector<std::int8_t> mask_host(n, 0);
  mask_host[10] = mask_host[500] = 1;
  auto x = dev.upload(std::vector<half>(n, half(2.0f)));
  auto mask = dev.upload(mask_host);
  auto out = dev.alloc<half>(2);
  const auto r = compress(dev, x.tensor(), mask.tensor(), out.tensor(), n, {});
  EXPECT_EQ(r.num_true, 2u);
  auto small = dev.alloc<half>(1);
  EXPECT_THROW(compress(dev, x.tensor(), mask.tensor(), small.tensor(), n, {}),
               Error);
}

}  // namespace
}  // namespace ascend::kernels
