// Tests for the AscendC runtime layer: launches, contexts, queues, pipes,
// SyncAll, cross-core flags, and error propagation.
#include <atomic>

#include <gtest/gtest.h>

#include "ascendc/ascendc.hpp"

namespace ascend::acc {
namespace {

sim::MachineConfig small_cfg() {
  auto cfg = sim::MachineConfig::ascend_910b4();
  cfg.num_ai_cores = 4;
  return cfg;
}

TEST(Runtime, MixLaunchRunsAllSubcores) {
  Device dev(small_cfg());
  std::atomic<int> cube_runs{0}, vec_runs{0};
  launch(dev, {.block_dim = 4, .mode = LaunchMode::Mix}, [&](KernelContext& c) {
    if (c.is_cube()) {
      ++cube_runs;
    } else {
      ++vec_runs;
    }
  });
  EXPECT_EQ(cube_runs.load(), 4);
  EXPECT_EQ(vec_runs.load(), 8);
}

TEST(Runtime, VectorOnlyLaunchIdentities) {
  Device dev(small_cfg());
  std::atomic<int> seen_mask{0};
  launch(dev, {.block_dim = 8, .mode = LaunchMode::VectorOnly},
         [&](KernelContext& c) {
           EXPECT_TRUE(c.is_vector());
           EXPECT_EQ(c.GetBlockDim(), 8);
           seen_mask.fetch_or(1 << c.GetBlockIdx());
         });
  EXPECT_EQ(seen_mask.load(), 0xff);
}

TEST(Runtime, BlockDimLimitEnforced) {
  Device dev(small_cfg());
  EXPECT_THROW(
      launch(dev, {.block_dim = 5, .mode = LaunchMode::Mix},
             [](KernelContext&) {}),
      Error);
  EXPECT_THROW(
      launch(dev, {.block_dim = 9, .mode = LaunchMode::VectorOnly},
             [](KernelContext&) {}),
      Error);
}

TEST(Runtime, LaunchReturnsLaunchOverheadAtMinimum) {
  Device dev(small_cfg());
  auto r = launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
                  [](KernelContext&) {});
  EXPECT_GE(r.time_s, dev.config().launch_overhead_s);
  EXPECT_EQ(r.launches, 1);
}

TEST(Runtime, ExceptionInOneSubcorePropagates) {
  Device dev(small_cfg());
  EXPECT_THROW(
      launch(dev, {.block_dim = 2, .mode = LaunchMode::Mix},
             [](KernelContext& c) {
               if (c.is_cube() && c.GetBlockIdx() == 1) {
                 throw Error("injected failure");
               }
               c.SyncAll();  // others must not deadlock
             }),
      Error);
}

TEST(Runtime, SyncAllOrdersCrossBlockGmTraffic) {
  Device dev(small_cfg());
  auto buf = dev.alloc<int>(4, 0);
  auto gt = buf.tensor();
  // Every vector block writes its slot, syncs, then block 0 checks the sum.
  std::atomic<int> checked{0};
  launch(dev, {.block_dim = 4, .mode = LaunchMode::VectorOnly},
         [&](KernelContext& c) {
           gt.data()[c.GetBlockIdx()] = c.GetBlockIdx() + 1;
           c.SyncAll();
           if (c.GetBlockIdx() == 0) {
             int sum = 0;
             for (int i = 0; i < 4; ++i) sum += gt.data()[i];
             EXPECT_EQ(sum, 10);
             ++checked;
           }
         });
  EXPECT_EQ(checked.load(), 1);
}

TEST(Runtime, CrossFlagsProducerConsumer) {
  Device dev(small_cfg());
  auto buf = dev.alloc<int>(1, 0);
  auto gt = buf.tensor();
  launch(dev, {.block_dim = 1, .mode = LaunchMode::Mix},
         [&](KernelContext& c) {
           auto& flags = c.shared().flags("ready", 1);
           if (c.is_cube()) {
             gt.data()[0] = 42;
             flags.set(c, 0);
           } else if (c.GetSubBlockIdx() == 0) {
             flags.wait(c, 0);
             EXPECT_EQ(gt.data()[0], 42);
           }
         });
}

TEST(Runtime, FlagWaitCreatesTimingDependency) {
  Device dev(small_cfg());
  // Cube burns 100k cycles then sets; vector waits. Total simulated time
  // must cover the cube work even though the vector core does nothing.
  auto r = launch(
      dev, {.block_dim = 1, .mode = LaunchMode::Mix}, [&](KernelContext& c) {
        auto& flags = c.shared().flags("f", 1);
        if (c.is_cube()) {
          c.record_compute(sim::EngineKind::Compute, 100000.0, "burn", {}, {});
          // flag.set rides MTE3; give it an explicit dep through trace
          // ordering (serial anchor covers it in kernels; here the burn op
          // and set op are on different engines, so order via flags API).
          flags.set(c, 0);
        } else if (c.GetSubBlockIdx() == 0) {
          flags.wait(c, 0);
          c.record_compute(sim::EngineKind::Compute, 1000.0, "tail", {}, {});
        }
      });
  // Note: flag.set is on MTE3 and does not depend on the burn op here, so
  // this only checks the wait->tail ordering exists and time is sane.
  EXPECT_GE(r.time_s, dev.config().launch_overhead_s);
}

TEST(Pipe, QueueAllocEnqueDequeRoundtrip) {
  Device dev(small_cfg());
  launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
         [](KernelContext& c) {
           TPipe pipe(c);
           TQue q(c, TPosition::VECIN);
           pipe.InitBuffer(q, 2, 1024);
           auto t = q.AllocTensor<float>();
           EXPECT_EQ(t.size(), 256u);  // 1024 B / 4
           t[0] = 1.5f;
           q.EnQue(t);
           auto u = q.DeQue<float>();
           EXPECT_EQ(u[0], 1.5f);
           q.FreeTensor(u);
         });
}

TEST(Pipe, AllocWithoutFreeExhaustsQueue) {
  Device dev(small_cfg());
  EXPECT_THROW(
      launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
             [](KernelContext& c) {
               TPipe pipe(c);
               TQue q(c, TPosition::VECIN);
               pipe.InitBuffer(q, 1, 64);
               (void)q.AllocTensor<float>();
               (void)q.AllocTensor<float>();  // no free slot -> error
             }),
      Error);
}

TEST(Pipe, ScratchpadCapacityEnforced) {
  Device dev(small_cfg());
  EXPECT_THROW(
      launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
             [&](KernelContext& c) {
               TPipe pipe(c);
               TQue q(c, TPosition::VECIN);
               pipe.InitBuffer(q, 2, dev.config().ub_bytes);  // 2x UB
             }),
      Error);
}

TEST(Pipe, CubePositionsRejectedOnVectorCore) {
  Device dev(small_cfg());
  EXPECT_THROW(
      launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
             [](KernelContext& c) {
               TPipe pipe(c);
               TQue q(c, TPosition::A2);
               pipe.InitBuffer(q, 1, 64);
             }),
      Error);
}

TEST(Pipe, TBufGetAndOffset) {
  Device dev(small_cfg());
  launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
         [](KernelContext& c) {
           TPipe pipe(c);
           TBuf buf(c, TPosition::VECCALC);
           pipe.InitBuffer(buf, 512);
           auto t = buf.Get<std::int32_t>();
           EXPECT_EQ(t.size(), 128u);
           auto s = buf.GetWithOffset<std::int32_t>(64, 64);
           s[0] = 7;
           EXPECT_EQ(t[64], 7);
         });
}

TEST(Runtime, DeterministicSimulatedTime) {
  auto run_once = [] {
    Device dev(small_cfg());
    auto in = dev.alloc<float>(4096, 1.0f);
    auto out = dev.alloc<float>(4096, 0.0f);
    auto in_t = in.tensor();
    auto out_t = out.tensor();
    return launch(dev, {.block_dim = 4, .mode = LaunchMode::VectorOnly},
                  [&](KernelContext& c) {
                    TPipe pipe(c);
                    TQue q(c, TPosition::VECIN);
                    pipe.InitBuffer(q, 2, 1024 * sizeof(float));
                    const std::size_t chunk = 1024;
                    const std::size_t off =
                        chunk * static_cast<std::size_t>(c.GetBlockIdx());
                    auto t = q.AllocTensor<float>();
                    DataCopy(c, t, in_t.sub(off, chunk), chunk);
                    q.EnQue(t);
                    auto u = q.DeQue<float>();
                    Adds(c, u, u, 1.0f, chunk);
                    DataCopy(c, out_t.sub(off, chunk), u, chunk);
                    q.FreeTensor(u);
                  })
        .time_s;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ascend::acc
