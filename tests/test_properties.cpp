// Property-based tests: algebraic invariants every kernel must satisfy,
// checked over randomized inputs and shapes.
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "kernels/batched_scan.hpp"
#include "kernels/mcscan.hpp"
#include "kernels/radix_sort.hpp"
#include "kernels/reference.hpp"
#include "kernels/sampling.hpp"
#include "kernels/scan_u.hpp"
#include "kernels/sort_baseline.hpp"
#include "kernels/split.hpp"
#include "test_helpers.hpp"

namespace ascend::kernels {
namespace {

using acc::Device;

class ScanProperties : public ::testing::TestWithParam<std::uint64_t> {};

// scan(a)[i] + scan(b)[i] == scan(a+b)[i] for exact integer data
// (linearity of the prefix-sum operator).
TEST_P(ScanProperties, Linearity) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t n = 1000 + rng.next_below(60000);
  std::vector<half> a(n), b(n), ab(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int va = rng.bernoulli(0.02) ? 1 : 0;
    const int vb = rng.bernoulli(0.02) ? 2 : 0;
    a[i] = half(float(va));
    b[i] = half(float(vb));
    ab[i] = half(float(va + vb));
  }
  Device dev;
  auto ga = dev.upload(a);
  auto gb = dev.upload(b);
  auto gab = dev.upload(ab);
  auto ya = dev.alloc<float>(n);
  auto yb = dev.alloc<float>(n);
  auto yab = dev.alloc<float>(n);
  mcscan<half, float>(dev, ga.tensor(), ya.tensor(), n, {});
  mcscan<half, float>(dev, gb.tensor(), yb.tensor(), n, {});
  mcscan<half, float>(dev, gab.tensor(), yab.tensor(), n, {});
  for (std::size_t i = 0; i < n; i += 97) {
    ASSERT_EQ(ya[i] + yb[i], yab[i]) << "seed=" << seed << " i=" << i;
  }
}

// The last inclusive-scan entry equals the total reduction.
TEST_P(ScanProperties, LastElementIsTotal) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0xabc);
  const std::size_t n = 500 + rng.next_below(40000);
  std::vector<half> x(n);
  std::int64_t total = 0;
  for (auto& v : x) {
    const int val = static_cast<int>(rng.next_below(3));
    v = half(float(val));
    total += val;
  }
  Device dev;
  auto g = dev.upload(x);
  auto y = dev.alloc<float>(n);
  mcscan<half, float>(dev, g.tensor(), y.tensor(), n, {});
  ASSERT_EQ(static_cast<std::int64_t>(y[n - 1]), total) << "seed=" << seed;
}

// exclusive[i] == inclusive[i-1], exclusive[0] == 0.
TEST_P(ScanProperties, ExclusiveIsShiftedInclusive) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0x515);
  const std::size_t n = 100 + rng.next_below(30000);
  auto mask = rng.mask_i8(n, 0.35);
  Device dev;
  auto g = dev.upload(mask);
  auto yin = dev.alloc<std::int32_t>(n);
  auto yex = dev.alloc<std::int32_t>(n);
  mcscan<std::int8_t, std::int32_t>(dev, g.tensor(), yin.tensor(), n, {});
  mcscan<std::int8_t, std::int32_t>(dev, g.tensor(), yex.tensor(), n,
                                    {.exclusive = true});
  ASSERT_EQ(yex[0], 0);
  for (std::size_t i = 1; i < n; i += 11) {
    ASSERT_EQ(yex[i], yin[i - 1]) << "seed=" << seed << " i=" << i;
  }
}

// A batched scan equals independent row scans.
TEST_P(ScanProperties, BatchedEqualsPerRow) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0xbb);
  const std::size_t batch = 1 + rng.next_below(12);
  const std::size_t len = 200 + rng.next_below(20000);
  std::vector<half> x(batch * len);
  for (auto& v : x) v = half(rng.bernoulli(0.05) ? 1.0f : 0.0f);
  Device dev;
  auto g = dev.upload(x);
  auto y = dev.alloc<half>(batch * len);
  batched_scan_u(dev, g.tensor(), y.tensor(), batch, len, {});
  // Row-by-row single-core ScanU must agree.
  for (std::size_t r = 0; r < batch; ++r) {
    auto row_y = dev.alloc<half>(len);
    scan_u(dev, g.tensor().sub(r * len, len), row_y.tensor(), len, 128);
    for (std::size_t j = 0; j < len; j += 31) {
      ASSERT_EQ(float(y[r * len + j]), float(row_y[j]))
          << "seed=" << seed << " row=" << r << " col=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanProperties,
                         ::testing::Values(1, 2, 3, 4, 5),
                         [](const auto& ti) {
                           return "seed" + std::to_string(ti.param);
                         });

class SortProperties : public ::testing::TestWithParam<std::uint64_t> {};

// Sorted output is a permutation of the input (via indices) and ordered;
// indices of equal keys ascend (stability).
TEST_P(SortProperties, PermutationOrderStability) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t n = 100 + rng.next_below(50000);
  std::vector<half> keys(n);
  for (auto& v : keys) {
    v = half(static_cast<float>(rng.next_below(64)) - 32.0f);
  }
  Device dev;
  auto g = dev.upload(keys);
  auto ok = dev.alloc<half>(n);
  auto oi = dev.alloc<std::int32_t>(n);
  radix_sort_f16(dev, g.tensor(), ok.tensor(), oi.tensor(), n, {});

  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(oi[i]);
    ASSERT_LT(idx, n);
    ASSERT_FALSE(seen[idx]) << "index used twice: " << idx;
    seen[idx] = true;
    // Values carried correctly.
    ASSERT_EQ(ok[i].bits(), keys[idx].bits());
    if (i > 0) {
      ASSERT_LE(float(ok[i - 1]), float(ok[i])) << "order @" << i;
      if (ok[i - 1].bits() == ok[i].bits()) {
        ASSERT_LT(oi[i - 1], oi[i]) << "stability @" << i;
      }
    }
  }
}

// Radix sort and baseline sort agree bit-for-bit (differential testing).
TEST_P(SortProperties, RadixAgreesWithBaseline) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0x5047);
  const std::size_t n = 1000 + rng.next_below(60000);
  auto keys = rng.uniform_f16(n, -1000.0, 1000.0);
  Device dev;
  auto g = dev.upload(keys);
  auto k1 = dev.alloc<half>(n);
  auto i1 = dev.alloc<std::int32_t>(n);
  auto k2 = dev.alloc<half>(n);
  auto i2 = dev.alloc<std::int32_t>(n);
  radix_sort_f16(dev, g.tensor(), k1.tensor(), i1.tensor(), n, {});
  sort_baseline_f16(dev, g.tensor(), k2.tensor(), i2.tensor(), n, false);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(k1[i].bits(), k2[i].bits()) << i;
    ASSERT_EQ(i1[i], i2[i]) << i;
  }
}

// Sorting an already-sorted array is the identity permutation composed
// with stability (idempotence).
TEST_P(SortProperties, Idempotent) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0x1de);
  const std::size_t n = 1000 + rng.next_below(20000);
  auto keys = rng.uniform_f16(n, 0.0, 1.0);
  std::sort(keys.begin(), keys.end(),
            [](half a, half b) { return float(a) < float(b); });
  Device dev;
  auto g = dev.upload(keys);
  auto ok = dev.alloc<half>(n);
  auto oi = dev.alloc<std::int32_t>(n);
  radix_sort_f16(dev, g.tensor(), ok.tensor(), oi.tensor(), n, {});
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(ok[i].bits(), keys[i].bits());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortProperties,
                         ::testing::Values(10, 11, 12, 13),
                         [](const auto& ti) {
                           return "seed" + std::to_string(ti.param);
                         });

class SplitProperties : public ::testing::TestWithParam<std::uint64_t> {};

// Split output is a partition: trues (in order) then falses (in order),
// and indices invert the permutation.
TEST_P(SplitProperties, PartitionAndInverse) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t n = 500 + rng.next_below(80000);
  auto x = rng.uniform_f16(n, -2.0, 2.0);
  auto mask = rng.mask_i8(n, rng.next_double());
  Device dev;
  auto gx = dev.upload(x);
  auto gm = dev.upload(mask);
  auto ov = dev.alloc<half>(n);
  auto oi = dev.alloc<std::int32_t>(n);
  const auto r = split_ind<half>(dev, gx.tensor(), {}, gm.tensor(),
                                 ov.tensor(), oi.tensor(), n, {});
  // Count check.
  const auto expect_true = static_cast<std::size_t>(
      std::count_if(mask.begin(), mask.end(), [](auto m) { return m != 0; }));
  ASSERT_EQ(r.num_true, expect_true);
  // Partition + order: indices in each half strictly increase.
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(oi[i]);
    ASSERT_EQ(mask[idx] != 0, i < r.num_true) << i;
    ASSERT_EQ(ov[i].bits(), x[idx].bits()) << i;
    if (i > 0 && i != r.num_true) {
      ASSERT_LT(oi[i - 1], oi[i]) << "stable order @" << i;
    }
  }
}

// compress(x, mask) == first-half of split values.
TEST_P(SplitProperties, CompressIsSplitPrefix) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0xc0);
  const std::size_t n = 500 + rng.next_below(40000);
  auto x = rng.uniform_f16(n, 0.0, 1.0);
  auto mask = rng.mask_i8(n, 0.5);
  Device dev;
  auto gx = dev.upload(x);
  auto gm = dev.upload(mask);
  auto sv = dev.alloc<half>(n);
  auto si = dev.alloc<std::int32_t>(n);
  auto cv = dev.alloc<half>(n);
  const auto s = split_ind<half>(dev, gx.tensor(), {}, gm.tensor(),
                                 sv.tensor(), si.tensor(), n, {});
  const auto c = compress(dev, gx.tensor(), gm.tensor(), cv.tensor(), n, {});
  ASSERT_EQ(s.num_true, c.num_true);
  for (std::size_t i = 0; i < c.num_true; ++i) {
    ASSERT_EQ(cv[i].bits(), sv[i].bits()) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitProperties,
                         ::testing::Values(20, 21, 22, 23, 24),
                         [](const auto& ti) {
                           return "seed" + std::to_string(ti.param);
                         });

// Simulated time is deterministic across repeated identical launches.
TEST(Determinism, RepeatedLaunchSameSimulatedTime) {
  const std::size_t n = 200000;
  auto run = [&] {
    Device dev;
    auto x = dev.alloc<half>(n, half(0.5f));
    auto y = dev.alloc<float>(n);
    return mcscan<half, float>(dev, x.tensor(), y.tensor(), n, {}).time_s;
  };
  const double t0 = run();
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(run(), t0);
}

// Simulated time is monotone in input size (same kernel, same machine).
TEST(Monotonicity, TimeGrowsWithInput) {
  Device dev;
  double prev = 0.0;
  for (std::size_t n : {1u << 14, 1u << 16, 1u << 18, 1u << 20}) {
    auto x = dev.alloc<half>(n, half(0.0f));
    auto y = dev.alloc<float>(n);
    const double t =
        mcscan<half, float>(dev, x.tensor(), y.tensor(), n, {}).time_s;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

// Weighted sampling: over a uniform sweep of u, empirical frequencies
// track the weights (coarse chi-square-style bound).
TEST(SamplingDistribution, FrequenciesTrackWeights) {
  Device dev;
  std::vector<half> w = {half(1.0f), half(3.0f), half(6.0f)};
  auto g = dev.upload(w);
  int counts[3] = {0, 0, 0};
  const int draws = 200;
  for (int i = 0; i < draws; ++i) {
    const double u = (i + 0.5) / draws;
    const auto r = weighted_sample(dev, g.tensor(), w.size(), u);
    ASSERT_GE(r.index, 0);
    ASSERT_LT(r.index, 3);
    ++counts[r.index];
  }
  EXPECT_NEAR(counts[0], draws * 0.1, 3);
  EXPECT_NEAR(counts[1], draws * 0.3, 3);
  EXPECT_NEAR(counts[2], draws * 0.6, 3);
}

}  // namespace
}  // namespace ascend::kernels
