// Unit tests for the pure serving-layer pieces: the Batcher's lane /
// aging / stealing / continuation-admission logic, the GroupKey hash
// canonicalization, and the LatencyHistogram bucket math. No simulated
// device is involved — these pin the host-side scheduling decisions.
#include <chrono>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "serve/batcher.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"

namespace ascend {
namespace {

using namespace ascan::serve;
using ascend::half;

Pending make_pending(Request req, Clock::time_point enq, std::uint64_t seq) {
  Pending p;
  p.req = std::move(req);
  p.enqueued = enq;
  p.seq = seq;
  return p;
}

std::vector<half> row(std::size_t n) { return std::vector<half>(n, half(1.0f)); }

Clock::duration aging_limit(const BatchPolicy& policy) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(policy.aging_factor * policy.max_wait_s));
}

// ---------------------------------------------------------------------------
// Aging starvation guard.

TEST(BatcherAging, BulkExactlyAtThresholdStillYieldsToInteractive) {
  // head() uses waited > aging_factor * max_wait_s (strictly greater): a
  // bulk request aged *exactly* to the boundary has not yet escaped.
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_pending(Request::cumsum(row(64), 16, false, Priority::Bulk),
                      now - aging_limit(policy), 0));
  q.push(make_pending(Request::cumsum(row(64), 128), now, 1));
  auto batch = q.pop_batch(policy, now);
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(batch.front().req.priority, Priority::Interactive);
  EXPECT_EQ(batch.front().seq, 1u);
}

TEST(BatcherAging, BulkJustPastThresholdOutranksInteractive) {
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_pending(Request::cumsum(row(64), 16, false, Priority::Bulk),
                      now - aging_limit(policy) - std::chrono::milliseconds(1),
                      0));
  q.push(make_pending(Request::cumsum(row(64), 128), now, 1));
  auto batch = q.pop_batch(policy, now);
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(batch.front().req.priority, Priority::Bulk);
  EXPECT_EQ(batch.front().seq, 0u);
}

// ---------------------------------------------------------------------------
// pop_batch cross-lane order.

TEST(BatcherPop, HeadLaneFirstThenOtherLaneFifo) {
  // Same GroupKey everywhere: the pop must take the head's lane FIFO
  // first, then top up from the other lane FIFO.
  BatchPolicy policy;
  policy.max_batch = 3;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      now, 0));
  q.push(make_pending(Request::cumsum(row(32), 16), now, 1));
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      now, 2));
  q.push(make_pending(Request::cumsum(row(32), 16), now, 3));
  auto batch = q.pop_batch(policy, now);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].seq, 1u);  // interactive lane FIFO...
  EXPECT_EQ(batch[1].seq, 3u);
  EXPECT_EQ(batch[2].seq, 0u);  // ...then bulk lane FIFO
  EXPECT_EQ(q.size(), 1u);
}

TEST(BatcherPop, DifferentKeysNeverCoalesce) {
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_pending(Request::cumsum(row(32), 16), now, 0));
  q.push(make_pending(Request::cumsum(row(32), 128), now, 1));
  auto batch = q.pop_batch(policy, now);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].seq, 0u);
  EXPECT_EQ(q.size(), 1u);
}

// ---------------------------------------------------------------------------
// steal_bulk min-backlog edge.

TEST(BatcherSteal, MinBacklogBoundary) {
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  const auto bulk = [&](std::uint64_t seq) {
    return make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                        now, seq);
  };
  q.push(bulk(0));
  q.push(bulk(1));
  EXPECT_TRUE(q.steal_bulk(policy, 3).empty());  // 2 < min_backlog
  EXPECT_EQ(q.bulk_size(), 2u);
  q.push(bulk(2));
  auto stolen = q.steal_bulk(policy, 3);  // backlog == min_backlog pops
  EXPECT_EQ(stolen.size(), 3u);
  EXPECT_TRUE(q.empty());
}

TEST(BatcherSteal, InteractiveNeverStolenAndZeroMeansOne) {
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_pending(Request::cumsum(row(32), 16), now, 0));
  EXPECT_TRUE(q.steal_bulk(policy, 0).empty());  // interactive lane is safe
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      now, 1));
  auto stolen = q.steal_bulk(policy, 0);  // min_backlog 0 clamps to 1
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(stolen[0].seq, 1u);
  EXPECT_EQ(q.size(), 1u);
}

// ---------------------------------------------------------------------------
// pop_matching (continuation admission).

TEST(BatcherPopMatching, TakesOnlyMatchingAcrossLanesFifo) {
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      now, 0));
  q.push(make_pending(Request::cumsum(row(32), 128), now, 1));
  q.push(make_pending(Request::cumsum(row(48), 16), now, 2));
  const GroupKey key = group_key(Request::cumsum(row(8), 16));
  auto got = q.pop_matching(key, 8, policy, now);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].seq, 2u);  // interactive lane first
  EXPECT_EQ(got[1].seq, 0u);
  EXPECT_EQ(q.size(), 1u);  // the tile-128 request stays queued
}

TEST(BatcherPopMatching, RespectsMaxAndAgedNonMatchingWork) {
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_pending(Request::cumsum(row(32), 16), now, 0));
  q.push(make_pending(Request::cumsum(row(32), 16), now, 1));
  const GroupKey key = group_key(Request::cumsum(row(8), 16));
  EXPECT_EQ(q.pop_matching(key, 1, policy, now).size(), 1u);
  // An aged *non-matching* request freezes continuation admission: the
  // launch must wind down so the starved work gets a batch of its own.
  q.push(make_pending(
      Request::cumsum(row(32), 128, false, Priority::Bulk),
      now - aging_limit(policy) - std::chrono::milliseconds(1), 2));
  EXPECT_TRUE(q.pop_matching(key, 8, policy, now).empty());
  EXPECT_EQ(q.size(), 2u);
}

// ---------------------------------------------------------------------------
// GroupKey hash canonicalization (cluster affinity placement).

TEST(GroupKeyHash, SignedZeroHashesEqual) {
  GroupKey a;
  a.kind = OpKind::TopP;
  a.vocab = 1024;
  a.tile = 128;
  a.p = 0.0;
  GroupKey b = a;
  b.p = -0.0;
  ASSERT_TRUE(a == b);  // operator== already treats +-0.0 as equal...
  EXPECT_EQ(group_key_hash(a), group_key_hash(b));  // ...so the hash must too
}

TEST(GroupKeyHash, NanPayloadsCollapse) {
  // NaN never reaches a queue (Engine::validate rejects it), but hash
  // consistency must not depend on NaN payload bits.
  GroupKey a;
  a.kind = OpKind::TopP;
  a.p = std::nan("1");
  GroupKey b = a;
  b.p = std::nan("2");
  EXPECT_EQ(group_key_hash(a), group_key_hash(b));
}

TEST(GroupKeyHash, RequestWithNegativeZeroPCanonicalizes) {
  auto r1 = Request::top_p(row(64), 0.0, 0.5);
  auto r2 = Request::top_p(row(64), -0.0, 0.5);
  EXPECT_EQ(group_key_hash(group_key(r1)), group_key_hash(group_key(r2)));
}

TEST(EngineValidate, RejectsNanTopPParameters) {
  EXPECT_FALSE(
      Engine::validate(Request::top_p(row(64), std::nan("1"), 0.5)).empty());
  EXPECT_FALSE(
      Engine::validate(Request::top_p(row(64), 0.9, std::nan("1"))).empty());
  EXPECT_TRUE(Engine::validate(Request::top_p(row(64), 0.9, 0.5)).empty());
}

// ---------------------------------------------------------------------------
// LatencyHistogram bucket math regression (the bucket-1 hole).

TEST(LatencyHistogramBuckets, EveryUpperBoundLandsInItsOwnBucket) {
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_upper_s(b)),
              b)
        << "bucket " << b;
  }
}

TEST(LatencyHistogramBuckets, JustAboveUpperBoundGoesToNextBucket) {
  for (int b = 0; b < LatencyHistogram::kBuckets - 1; ++b) {
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_upper_s(b) *
                                          1.5),
              b + 1)
        << "bucket " << b;
  }
}

TEST(LatencyHistogramBuckets, BucketOneIsReachable) {
  // The old math mapped every sample > 1 us to bucket >= 2, so fast
  // requests reported one bucket too high. 1.5 us belongs in (1, 2] us.
  EXPECT_EQ(LatencyHistogram::bucket_of(1.5e-6), 1);
  LatencyHistogram h;
  h.add(1.5e-6);
  h.add(1.0);  // outlier keeps max_s from clamping the percentile value
  EXPECT_DOUBLE_EQ(h.percentile(0.5), LatencyHistogram::bucket_upper_s(1));
}

TEST(LatencyHistogramBuckets, ExtremesClampAndZeroIsBucketZero) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0.0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(1e-9), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(
                LatencyHistogram::bucket_upper_s(LatencyHistogram::kBuckets -
                                                 1) *
                100.0),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogramBuckets, PercentileZeroReportsMinimumSampleBucket) {
  LatencyHistogram h;
  h.add(100e-6);  // bucket 7, upper 128 us
  // The old target = ceil(0 * count) = 0 returned bucket 0's 1 us floor
  // even though no sample lives there.
  EXPECT_GT(h.percentile(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 100e-6);  // clamped by max_s
  LatencyHistogram empty;
  EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
}

}  // namespace
}  // namespace ascend
