// Unit tests for the pure serving-layer pieces: the Batcher's lane /
// aging / stealing / continuation-admission logic, the GroupKey hash
// canonicalization, and the LatencyHistogram bucket math. No simulated
// device is involved — these pin the host-side scheduling decisions.
#include <chrono>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "serve/batcher.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"

namespace ascend {
namespace {

using namespace ascan::serve;
using ascend::half;

Pending make_pending(Request req, Clock::time_point enq, std::uint64_t seq) {
  Pending p;
  p.req = std::move(req);
  p.enqueued = enq;
  p.seq = seq;
  return p;
}

std::vector<half> row(std::size_t n) { return std::vector<half>(n, half(1.0f)); }

Clock::duration aging_limit(const BatchPolicy& policy) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(policy.aging_factor * policy.max_wait_s));
}

// ---------------------------------------------------------------------------
// Aging starvation guard.

TEST(BatcherAging, BulkExactlyAtThresholdStillYieldsToInteractive) {
  // head() uses waited > aging_factor * max_wait_s (strictly greater): a
  // bulk request aged *exactly* to the boundary has not yet escaped.
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_pending(Request::cumsum(row(64), 16, false, Priority::Bulk),
                      now - aging_limit(policy), 0));
  q.push(make_pending(Request::cumsum(row(64), 128), now, 1));
  auto batch = q.pop_batch(policy, now);
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(batch.front().req.priority, Priority::Interactive);
  EXPECT_EQ(batch.front().seq, 1u);
}

TEST(BatcherAging, BulkJustPastThresholdOutranksInteractive) {
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_pending(Request::cumsum(row(64), 16, false, Priority::Bulk),
                      now - aging_limit(policy) - std::chrono::milliseconds(1),
                      0));
  q.push(make_pending(Request::cumsum(row(64), 128), now, 1));
  auto batch = q.pop_batch(policy, now);
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(batch.front().req.priority, Priority::Bulk);
  EXPECT_EQ(batch.front().seq, 0u);
}

// ---------------------------------------------------------------------------
// pop_batch cross-lane order.

TEST(BatcherPop, HeadLaneFirstThenOtherLaneFifo) {
  // Same GroupKey everywhere: the pop must take the head's lane FIFO
  // first, then top up from the other lane FIFO.
  BatchPolicy policy;
  policy.max_batch = 3;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      now, 0));
  q.push(make_pending(Request::cumsum(row(32), 16), now, 1));
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      now, 2));
  q.push(make_pending(Request::cumsum(row(32), 16), now, 3));
  auto batch = q.pop_batch(policy, now);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].seq, 1u);  // interactive lane FIFO...
  EXPECT_EQ(batch[1].seq, 3u);
  EXPECT_EQ(batch[2].seq, 0u);  // ...then bulk lane FIFO
  EXPECT_EQ(q.size(), 1u);
}

TEST(BatcherPop, DifferentKeysNeverCoalesce) {
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_pending(Request::cumsum(row(32), 16), now, 0));
  q.push(make_pending(Request::cumsum(row(32), 128), now, 1));
  auto batch = q.pop_batch(policy, now);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].seq, 0u);
  EXPECT_EQ(q.size(), 1u);
}

// ---------------------------------------------------------------------------
// steal_bulk min-backlog edge.

TEST(BatcherSteal, MinBacklogBoundary) {
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  const auto bulk = [&](std::uint64_t seq) {
    return make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                        now, seq);
  };
  q.push(bulk(0));
  q.push(bulk(1));
  EXPECT_TRUE(q.steal_bulk(policy, 3).empty());  // 2 < min_backlog
  EXPECT_EQ(q.bulk_size(), 2u);
  q.push(bulk(2));
  auto stolen = q.steal_bulk(policy, 3);  // backlog == min_backlog pops
  EXPECT_EQ(stolen.size(), 3u);
  EXPECT_TRUE(q.empty());
}

TEST(BatcherSteal, InteractiveNeverStolenAndZeroMeansOne) {
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_pending(Request::cumsum(row(32), 16), now, 0));
  EXPECT_TRUE(q.steal_bulk(policy, 0).empty());  // interactive lane is safe
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      now, 1));
  auto stolen = q.steal_bulk(policy, 0);  // min_backlog 0 clamps to 1
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(stolen[0].seq, 1u);
  EXPECT_EQ(q.size(), 1u);
}

// ---------------------------------------------------------------------------
// pop_matching (continuation admission).

TEST(BatcherPopMatching, TakesOnlyMatchingAcrossLanesFifo) {
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      now, 0));
  q.push(make_pending(Request::cumsum(row(32), 128), now, 1));
  q.push(make_pending(Request::cumsum(row(48), 16), now, 2));
  const GroupKey key = group_key(Request::cumsum(row(8), 16));
  auto got = q.pop_matching(key, 8, policy, now);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].seq, 2u);  // interactive lane first
  EXPECT_EQ(got[1].seq, 0u);
  EXPECT_EQ(q.size(), 1u);  // the tile-128 request stays queued
}

TEST(BatcherPopMatching, RespectsMaxAndAgedNonMatchingWork) {
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_pending(Request::cumsum(row(32), 16), now, 0));
  q.push(make_pending(Request::cumsum(row(32), 16), now, 1));
  const GroupKey key = group_key(Request::cumsum(row(8), 16));
  EXPECT_EQ(q.pop_matching(key, 1, policy, now).size(), 1u);
  // An aged *non-matching* request freezes continuation admission: the
  // launch must wind down so the starved work gets a batch of its own.
  q.push(make_pending(
      Request::cumsum(row(32), 128, false, Priority::Bulk),
      now - aging_limit(policy) - std::chrono::milliseconds(1), 2));
  EXPECT_TRUE(q.pop_matching(key, 8, policy, now).empty());
  EXPECT_EQ(q.size(), 2u);
}

// ---------------------------------------------------------------------------
// EDF ordering within a lane and its composition with the aging guard
// (PR 9 SLO tiers). The sort key is (deadline, seq): earliest deadline
// first, equal deadlines FIFO by admission order, best-effort requests
// (deadline = max()) behind every deadline-bearing one.

Pending make_deadline_pending(Request req, Clock::time_point enq,
                              std::uint64_t seq, Clock::time_point deadline) {
  Pending p = make_pending(std::move(req), enq, seq);
  p.deadline = deadline;
  return p;
}

TEST(BatcherEdf, TighterDeadlineOvertakesEarlierArrival) {
  BatchPolicy policy;
  policy.max_batch = 1;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_deadline_pending(Request::cumsum(row(32), 16), now, 0,
                               now + std::chrono::milliseconds(10)));
  q.push(make_deadline_pending(Request::cumsum(row(32), 16), now, 1,
                               now + std::chrono::milliseconds(2)));
  q.push(make_pending(Request::cumsum(row(32), 16), now, 2));  // best-effort
  EXPECT_EQ(q.pop_batch(policy, now).front().seq, 1u);  // tightest deadline
  EXPECT_EQ(q.pop_batch(policy, now).front().seq, 0u);
  EXPECT_EQ(q.pop_batch(policy, now).front().seq, 2u);  // best-effort last
}

TEST(BatcherEdf, EqualDeadlinesTieBreakFifoByArrivalStably) {
  // Equal deadlines must pop FIFO by seq, whatever order they were pushed
  // in, and the order must be identical across repeated runs.
  const BatchPolicy policy;
  const auto now = Clock::now();
  const auto dl = now + std::chrono::milliseconds(5);
  std::vector<std::uint64_t> first_run;
  for (int run = 0; run < 3; ++run) {
    Batcher q;
    // Push out of seq order: 2, 0, 1.
    q.push(make_deadline_pending(Request::cumsum(row(32), 16), now, 2, dl));
    q.push(make_deadline_pending(Request::cumsum(row(32), 16), now, 0, dl));
    q.push(make_deadline_pending(Request::cumsum(row(32), 16), now, 1, dl));
    const auto batch = q.pop_batch(policy, now);
    ASSERT_EQ(batch.size(), 3u);
    std::vector<std::uint64_t> order;
    for (const auto& p : batch) order.push_back(p.seq);
    if (run == 0) {
      first_run = order;
      EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2}));
    } else {
      EXPECT_EQ(order, first_run) << "EDF tie-break unstable across runs";
    }
  }
}

TEST(BatcherEdf, AgingGuardStillDecidesTheLaneUnderEdf) {
  // Aging picks the lane, EDF picks the request: an aged best-effort bulk
  // request outranks a fresh interactive one with a tight deadline, even
  // though the bulk lane's EDF front is a deadline-bearing newcomer.
  BatchPolicy policy;
  policy.max_batch = 1;
  Batcher q;
  const auto now = Clock::now();
  const auto aged =
      now - aging_limit(policy) - std::chrono::milliseconds(1);
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      aged, 0));
  q.push(make_deadline_pending(
      Request::cumsum(row(32), 16, false, Priority::Bulk), now, 1,
      now + std::chrono::microseconds(50)));
  q.push(make_deadline_pending(Request::cumsum(row(32), 128), now, 2,
                               now + std::chrono::microseconds(50)));
  // The aged request (seq 0) won the lane decision; within the bulk lane
  // EDF leads with the deadline-bearing seq 1.
  auto b = q.pop_batch(policy, now);
  EXPECT_EQ(b.front().req.priority, Priority::Bulk);
  EXPECT_EQ(b.front().seq, 1u);
  // Without the aged request the interactive lane leads again.
  b = q.pop_batch(policy, now);  // pops the aged bulk (seq 0)
  EXPECT_EQ(b.front().seq, 0u);
  b = q.pop_batch(policy, now);
  EXPECT_EQ(b.front().seq, 2u);
}

TEST(BatcherEdf, AgingScanFindsOldRequestBehindEdfFront) {
  // The aging guard must scan the whole bulk lane: an EDF-sorted lane can
  // hold an aged best-effort request *behind* a fresh deadline-bearing
  // front, and the guard must still fire for it.
  BatchPolicy policy;
  policy.max_batch = 1;
  Batcher q;
  const auto now = Clock::now();
  q.push(make_deadline_pending(
      Request::cumsum(row(32), 16, false, Priority::Bulk), now, 0,
      now + std::chrono::milliseconds(1)));  // EDF front, fresh
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      now - aging_limit(policy) - std::chrono::milliseconds(1),
                      1));  // aged, sorted behind the deadline
  q.push(make_deadline_pending(Request::cumsum(row(32), 128), now, 2,
                               now + std::chrono::microseconds(10)));
  auto b = q.pop_batch(policy, now);
  EXPECT_EQ(b.front().req.priority, Priority::Bulk)
      << "aged bulk behind the EDF front must still win the lane";
}

// The aging signal is maintained incrementally (the EDF lane order hides
// the oldest request mid-lane, and head() evaluates the guard on every
// pop-predicate wake, so it must not rescan the lane). Every bulk-lane
// removal path must retire the popped request's enqueue time: a stale
// minimum would keep the guard firing — bulk outranking interactive —
// after the aged work already left the queue.

TEST(BatcherAging, PopBatchRetiresAgedEnqueueTime) {
  BatchPolicy policy;
  policy.max_batch = 1;
  Batcher q;
  const auto now = Clock::now();
  const auto aged = now - aging_limit(policy) - std::chrono::milliseconds(1);
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      aged, 0));
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      now, 1));
  q.push(make_pending(Request::cumsum(row(32), 128), now, 2));
  auto b = q.pop_batch(policy, now);  // guard fires: the aged bulk wins
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.front().seq, 0u);
  b = q.pop_batch(policy, now);  // aged time retired: interactive leads
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.front().req.priority, Priority::Interactive)
      << "stale aging minimum after pop_batch";
  b = q.pop_batch(policy, now);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.front().seq, 1u);
}

TEST(BatcherAging, PopMatchingRetiresAgedEnqueueTime) {
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  const auto aged = now - aging_limit(policy) - std::chrono::milliseconds(1);
  const GroupKey key = group_key(Request::cumsum(row(8), 16));
  // The aged request *matches* the in-flight key, so the guard (which
  // watches non-matching work only) does not freeze admission and
  // pop_matching takes it from the bulk lane.
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      aged, 0));
  q.push(make_pending(Request::cumsum(row(32), 128), now, 1));
  auto got = q.pop_matching(key, 8, policy, now);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].seq, 0u);
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      now, 2));
  auto b = q.pop_batch(policy, now);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.front().req.priority, Priority::Interactive)
      << "stale aging minimum after pop_matching";
}

TEST(BatcherAging, StealBulkRetiresAgedEnqueueTime) {
  BatchPolicy policy;
  policy.max_batch = 1;
  Batcher q;
  const auto now = Clock::now();
  const auto aged = now - aging_limit(policy) - std::chrono::milliseconds(1);
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      aged, 0));
  auto stolen = q.steal_bulk(policy, 1);
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(stolen.front().seq, 0u);
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      now, 1));
  q.push(make_pending(Request::cumsum(row(32), 128), now, 2));
  auto b = q.pop_batch(policy, now);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.front().req.priority, Priority::Interactive)
      << "stale aging minimum after steal_bulk";
}

TEST(BatcherEdf, PopMatchingGuardComposesWithDeadlines) {
  // pop_matching's starvation guard keys on *age*, not deadline: a
  // deadline-bearing non-matching request that has not aged does not
  // freeze continuation admission, an aged one does — deterministically,
  // whatever the deadlines say.
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  const GroupKey key = group_key(Request::cumsum(row(8), 16));
  q.push(make_deadline_pending(Request::cumsum(row(32), 16), now, 0,
                               now + std::chrono::milliseconds(3)));
  q.push(make_deadline_pending(Request::cumsum(row(32), 128), now, 1,
                               now - std::chrono::milliseconds(1)));
  // The non-matching tile-128 request's deadline is already past, but it
  // has not aged: admission continues (preemption, not the continuation
  // guard, is the mechanism that rescues it).
  auto got = q.pop_matching(key, 8, policy, now);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].seq, 0u);
  // Backdate it past the aging limit: the guard freezes admission.
  q.push(make_deadline_pending(Request::cumsum(row(32), 16), now, 2,
                               now + std::chrono::milliseconds(3)));
  q.push(make_pending(
      Request::cumsum(row(32), 128, false, Priority::Bulk),
      now - aging_limit(policy) - std::chrono::milliseconds(1), 3));
  EXPECT_TRUE(q.pop_matching(key, 8, policy, now).empty());
}

TEST(BatcherEdf, EarliestDeadlineProbesReportLaneMinima) {
  BatchPolicy policy;
  Batcher q;
  const auto now = Clock::now();
  EXPECT_EQ(q.earliest_deadline(), Clock::time_point::max());
  EXPECT_EQ(q.earliest_interactive_deadline(nullptr),
            Clock::time_point::max());
  q.push(make_pending(Request::cumsum(row(32), 16, false, Priority::Bulk),
                      now, 0));  // best-effort bulk
  q.push(make_deadline_pending(
      Request::cumsum(row(32), 16, false, Priority::Bulk), now, 1,
      now + std::chrono::milliseconds(1)));
  EXPECT_EQ(q.earliest_deadline(), now + std::chrono::milliseconds(1));
  // Bulk deadlines never show up in the preemption probe.
  EXPECT_EQ(q.earliest_interactive_deadline(nullptr),
            Clock::time_point::max());
  q.push(make_deadline_pending(Request::cumsum(row(32), 16), now, 2,
                               now + std::chrono::milliseconds(2)));
  EXPECT_EQ(q.earliest_interactive_deadline(nullptr),
            now + std::chrono::milliseconds(2));
  // Excluding the in-flight launch's key hides requests that could join
  // it via continuation admission instead of preempting it.
  const GroupKey key = group_key(Request::cumsum(row(8), 16));
  EXPECT_EQ(q.earliest_interactive_deadline(&key),
            Clock::time_point::max());
  const GroupKey other = group_key(Request::cumsum(row(8), 128));
  EXPECT_EQ(q.earliest_interactive_deadline(&other),
            now + std::chrono::milliseconds(2));
}

// ---------------------------------------------------------------------------
// GroupKey hash canonicalization (cluster affinity placement).

TEST(GroupKeyHash, SignedZeroHashesEqual) {
  GroupKey a;
  a.kind = OpKind::TopP;
  a.vocab = 1024;
  a.tile = 128;
  a.p = 0.0;
  GroupKey b = a;
  b.p = -0.0;
  ASSERT_TRUE(a == b);  // operator== already treats +-0.0 as equal...
  EXPECT_EQ(group_key_hash(a), group_key_hash(b));  // ...so the hash must too
}

TEST(GroupKeyHash, NanPayloadsCollapse) {
  // NaN never reaches a queue (Engine::validate rejects it), but hash
  // consistency must not depend on NaN payload bits.
  GroupKey a;
  a.kind = OpKind::TopP;
  a.p = std::nan("1");
  GroupKey b = a;
  b.p = std::nan("2");
  EXPECT_EQ(group_key_hash(a), group_key_hash(b));
}

TEST(GroupKeyHash, RequestWithNegativeZeroPCanonicalizes) {
  auto r1 = Request::top_p(row(64), 0.0, 0.5);
  auto r2 = Request::top_p(row(64), -0.0, 0.5);
  EXPECT_EQ(group_key_hash(group_key(r1)), group_key_hash(group_key(r2)));
}

TEST(EngineValidate, RejectsNanTopPParameters) {
  EXPECT_FALSE(
      Engine::validate(Request::top_p(row(64), std::nan("1"), 0.5)).empty());
  EXPECT_FALSE(
      Engine::validate(Request::top_p(row(64), 0.9, std::nan("1"))).empty());
  EXPECT_TRUE(Engine::validate(Request::top_p(row(64), 0.9, 0.5)).empty());
}

// ---------------------------------------------------------------------------
// LatencyHistogram bucket math regression (the bucket-1 hole).

TEST(LatencyHistogramBuckets, EveryUpperBoundLandsInItsOwnBucket) {
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_upper_s(b)),
              b)
        << "bucket " << b;
  }
}

TEST(LatencyHistogramBuckets, JustAboveUpperBoundGoesToNextBucket) {
  for (int b = 0; b < LatencyHistogram::kBuckets - 1; ++b) {
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_upper_s(b) *
                                          1.5),
              b + 1)
        << "bucket " << b;
  }
}

TEST(LatencyHistogramBuckets, BucketOneIsReachable) {
  // The old math mapped every sample > 1 us to bucket >= 2, so fast
  // requests reported one bucket too high. 1.5 us belongs in (1, 2] us.
  EXPECT_EQ(LatencyHistogram::bucket_of(1.5e-6), 1);
  LatencyHistogram h;
  h.add(1.5e-6);
  h.add(1.0);  // outlier keeps max_s from clamping the percentile value
  EXPECT_DOUBLE_EQ(h.percentile(0.5), LatencyHistogram::bucket_upper_s(1));
}

TEST(LatencyHistogramBuckets, ExtremesClampAndZeroIsBucketZero) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0.0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(1e-9), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(
                LatencyHistogram::bucket_upper_s(LatencyHistogram::kBuckets -
                                                 1) *
                100.0),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogramBuckets, PercentileZeroReportsMinimumSampleBucket) {
  LatencyHistogram h;
  h.add(100e-6);  // bucket 7, upper 128 us
  // The old target = ceil(0 * count) = 0 returned bucket 0's 1 us floor
  // even though no sample lives there.
  EXPECT_GT(h.percentile(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 100e-6);  // clamped by max_s
  LatencyHistogram empty;
  EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
}

}  // namespace
}  // namespace ascend
