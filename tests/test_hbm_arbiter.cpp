// Tests for the fluid-flow HBM/L2 bandwidth arbiter.
#include "sim/hbm_arbiter.hpp"

#include <gtest/gtest.h>

namespace ascend::sim {
namespace {

constexpr double kHbm = 600e9;  // 800 GB/s at 75% streaming efficiency
constexpr double kL2 = 800e9;
constexpr double kMte = 128e9;

// Convenience: a fully-missing flow (HBM + L2 demand).
std::uint32_t add_miss(HbmArbiter& a, double t, double bytes) {
  return a.add_flow(t, bytes, kMte, /*hbm=*/1.0, /*l2=*/1.0);
}
// A fully L2-resident flow.
std::uint32_t add_hit(HbmArbiter& a, double t, double bytes) {
  return a.add_flow(t, bytes, kMte, /*hbm=*/0.0, /*l2=*/1.0);
}

TEST(HbmArbiter, SingleFlowRunsAtCap) {
  HbmArbiter a(kHbm, kL2);
  add_miss(a, 0.0, 128e3);
  EXPECT_NEAR(a.next_completion_time(), 128e3 / kMte, 1e-12);
  auto done = a.advance_and_pop(a.next_completion_time());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(a.idle());
}

TEST(HbmArbiter, ManyMissingFlowsShareHbm) {
  HbmArbiter a(kHbm, kL2);
  // 10 missing flows capped at 128 GB/s: demand 1.28 TB/s against the
  // 600 GB/s HBM pool -> 60 GB/s each.
  for (int i = 0; i < 10; ++i) add_miss(a, 0.0, 60e3);
  EXPECT_NEAR(a.next_completion_time(), 60e3 / 60e9, 1e-9);
}

TEST(HbmArbiter, FewFlowsNotThrottled) {
  HbmArbiter a(kHbm, kL2);
  for (int i = 0; i < 4; ++i) add_miss(a, 0.0, 128e3);
  EXPECT_NEAR(a.next_completion_time(), 128e3 / kMte, 1e-9);
}

TEST(HbmArbiter, L2ResidentFlowsUseL2Pool) {
  HbmArbiter a(kHbm, kL2);
  // 10 L2-hit flows: demand 1.28 TB/s against the 800 GB/s L2 pool
  // -> 80 GB/s each; the HBM pool is untouched.
  for (int i = 0; i < 10; ++i) add_hit(a, 0.0, 80e3);
  EXPECT_NEAR(a.next_completion_time(), 80e3 / 80e9, 1e-9);
  a.advance_and_pop(a.next_completion_time());
  EXPECT_DOUBLE_EQ(a.hbm_busy_time(), 0.0);
}

TEST(HbmArbiter, WritebackHeavyFlowLoadsHbmHarder) {
  HbmArbiter a(kHbm, kL2);
  // One flow whose every byte also evicts a dirty byte (hbm_frac 2.0,
  // e.g. a streaming read through a dirty cache): the HBM pool allows
  // rate = 600/2 = 300 GB/s, above the MTE cap, so the cap still rules.
  a.add_flow(0.0, 128e3, kMte, /*hbm=*/2.0, /*l2=*/1.0);
  EXPECT_NEAR(a.next_completion_time(), 128e3 / kMte, 1e-9);
  // Six such flows: HBM demand 6*2*128 = 1.536 TB/s -> scale to 50 GB/s.
  HbmArbiter b(kHbm, kL2);
  for (int i = 0; i < 6; ++i) b.add_flow(0.0, 50e3, kMte, 2.0, 1.0);
  EXPECT_NEAR(b.next_completion_time(), 50e3 / 50e9, 1e-9);
}

TEST(HbmArbiter, MixedFlowsThrottleIndependently) {
  HbmArbiter a(kHbm, kL2);
  // 8 missing flows (HBM-bound) + 4 hit flows. HBM: 8*128 = 1024 > 600 ->
  // missing flows at 75 GB/s. L2: 8*75 + 4*128 = 1112 > 800 -> everything
  // scales again; the hit flows end slower than cap but faster than the
  // missing ones.
  for (int i = 0; i < 8; ++i) add_miss(a, 0.0, 1e9);
  const auto h = add_hit(a, 0.0, 100e3);
  (void)h;
  const double t = a.next_completion_time();
  EXPECT_GT(t, 100e3 / kMte);       // slower than unconstrained
  EXPECT_LT(t, 100e3 / 50e9);       // but not starved
}

TEST(HbmArbiter, LateJoinerSlowsExistingFlow) {
  HbmArbiter a(kHbm, kL2);
  add_miss(a, 0.0, 128e3);  // alone at 128 GB/s
  for (int i = 0; i < 9; ++i) add_miss(a, 0.5e-6, 1e9);
  // After 0.5 us it has moved 64e3 bytes; then 10 flows share 600 GB/s.
  EXPECT_NEAR(a.next_completion_time(), 0.5e-6 + 64e3 / 60e9, 1e-9);
}

TEST(HbmArbiter, CompletionFreesBandwidth) {
  HbmArbiter a(kHbm, kL2);
  add_miss(a, 0.0, 80e3);
  add_miss(a, 0.0, 800e3);
  double t1 = a.next_completion_time();
  EXPECT_NEAR(t1, 80e3 / kMte, 1e-9);
  EXPECT_EQ(a.advance_and_pop(t1).size(), 1u);
  EXPECT_NEAR(a.next_completion_time(), 800e3 / kMte, 1e-9);
}

TEST(HbmArbiter, HbmBusyTimeAccumulates) {
  HbmArbiter a(kHbm, kL2);
  add_miss(a, 0.0, 128e3);
  const double t = a.next_completion_time();
  a.advance_and_pop(t);
  EXPECT_NEAR(a.hbm_busy_time(), t, 1e-12);
}

TEST(HbmArbiter, SlotReuseAfterCompletion) {
  HbmArbiter a(kHbm, kL2);
  const auto h1 = add_miss(a, 0.0, 1e3);
  const double t = a.next_completion_time();
  auto done = a.advance_and_pop(t);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], h1);
  EXPECT_EQ(add_miss(a, t, 1e3), h1);  // slot recycled
}

}  // namespace
}  // namespace ascend::sim
