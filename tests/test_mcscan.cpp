// Functional and timing tests of MCScan (Algorithm 3).
#include <tuple>

#include <gtest/gtest.h>

#include "kernels/copy_kernel.hpp"
#include "kernels/mcscan.hpp"
#include "kernels/reference.hpp"
#include "kernels/scan_u.hpp"
#include "test_helpers.hpp"

namespace ascend::kernels {
namespace {

using acc::Device;

class McScanF16 : public ::testing::TestWithParam<
                      std::tuple<std::size_t, std::size_t, int>> {};

TEST_P(McScanF16, InclusiveMatchesReference) {
  const auto [n, s, blocks] = GetParam();
  Device dev;
  auto x = dev.upload(testing::exact_scan_workload(n, n * 31 + s));
  auto y = dev.alloc<float>(n, -1.0f);
  mcscan<half, float>(dev, x.tensor(), y.tensor(), n,
                      {.s = s, .blocks = blocks});
  const auto want =
      ref::inclusive_scan<half, float>(std::span<const half>(x.host()));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(y[i], want[i]) << "n=" << n << " s=" << s
                             << " blocks=" << blocks << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, McScanF16,
    ::testing::Combine(
        ::testing::Values<std::size_t>(1, 100, 8192, 16384, 100000, 1 << 20),
        ::testing::Values<std::size_t>(32, 128),
        ::testing::Values(1, 3, 20)),
    [](const auto& ti) {
      return "n" + std::to_string(std::get<0>(ti.param)) + "_s" +
             std::to_string(std::get<1>(ti.param)) + "_b" +
             std::to_string(std::get<2>(ti.param));
    });

TEST(McScanExclusive, ShiftsByOneElement) {
  const std::size_t n = 40000;
  Device dev;
  auto x = dev.upload(testing::exact_scan_workload(n, 7));
  auto y = dev.alloc<float>(n, -1.0f);
  mcscan<half, float>(dev, x.tensor(), y.tensor(), n, {.exclusive = true});
  const auto want =
      ref::exclusive_scan<half, float>(std::span<const half>(x.host()));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(y[i], want[i]) << i;
  }
  EXPECT_EQ(y[0], 0.0f);
}

TEST(McScanInt8, MaskScanExactInt32) {
  const std::size_t n = 300000;
  Device dev;
  Rng rng(5);
  auto mask_host = rng.mask_i8(n, 0.5);
  auto x = dev.upload(mask_host);
  auto y = dev.alloc<std::int32_t>(n, -1);
  mcscan<std::int8_t, std::int32_t>(dev, x.tensor(), y.tensor(), n, {});
  const auto want = ref::inclusive_scan<std::int8_t, std::int32_t>(
      std::span<const std::int8_t>(mask_host));
  for (std::size_t i = 0; i < n; i += 13) {
    ASSERT_EQ(y[i], want[i]) << i;
  }
  ASSERT_EQ(y[n - 1], want[n - 1]);
}

TEST(McScanInt8, ExclusiveMaskScanForSplitOffsets) {
  const std::size_t n = 70000;
  Device dev;
  Rng rng(11);
  auto mask_host = rng.mask_i8(n, 0.3);
  auto x = dev.upload(mask_host);
  auto y = dev.alloc<std::int32_t>(n, -1);
  mcscan<std::int8_t, std::int32_t>(dev, x.tensor(), y.tensor(), n,
                                    {.exclusive = true});
  const auto want = ref::exclusive_scan<std::int8_t, std::int32_t>(
      std::span<const std::int8_t>(mask_host));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(y[i], want[i]) << i;
  }
}

TEST(McScanInt8, NegativeValues) {
  const std::size_t n = 50000;
  Device dev;
  Rng rng(3);
  std::vector<std::int8_t> host(n);
  for (auto& v : host) {
    v = static_cast<std::int8_t>(static_cast<std::int64_t>(rng.next_below(201)) - 100);
  }
  auto x = dev.upload(host);
  auto y = dev.alloc<std::int32_t>(n, 0);
  mcscan<std::int8_t, std::int32_t>(dev, x.tensor(), y.tensor(), n, {});
  const auto want = ref::inclusive_scan<std::int8_t, std::int32_t>(
      std::span<const std::int8_t>(host));
  for (std::size_t i = 0; i < n; i += 7) ASSERT_EQ(y[i], want[i]) << i;
  ASSERT_EQ(y[n - 1], want[n - 1]);
}

TEST(McScanNoise, WithinFp32AccumulationTolerance) {
  const std::size_t n = 1 << 19;
  Device dev;
  auto host = testing::noise_workload(n);
  auto x = dev.upload(host);
  auto y = dev.alloc<float>(n, 0.0f);
  mcscan<half, float>(dev, x.tensor(), y.tensor(), n, {});
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += double(float(host[i]));
    if (i % 1021 == 0 || i == n - 1) {
      // fp32 accumulation drift only.
      EXPECT_NEAR(y[i], acc, 0.25) << i;
    }
  }
}

TEST(McScanTiming, ScalesOverSingleCube) {
  const std::size_t n = 1 << 22;
  Device dev;
  auto x = dev.alloc<half>(n, half(0.0f));
  auto y16 = dev.alloc<half>(n, half(0.0f));
  auto y32 = dev.alloc<float>(n, 0.0f);
  const double t_u = scan_u(dev, x.tensor(), y16.tensor(), n, 128).time_s;
  const double t_mc =
      mcscan<half, float>(dev, x.tensor(), y32.tensor(), n, {}).time_s;
  // Paper §6.1: MCScan saturates at 15.2x over ScanU on 20 AI cores.
  EXPECT_GT(t_u / t_mc, 8.0);
  EXPECT_LT(t_u / t_mc, 25.0);
}

TEST(McScanTiming, BandwidthBelowCopyCeiling) {
  const std::size_t n = 1 << 22;
  Device dev;
  auto x = dev.alloc<half>(n, half(0.0f));
  auto y = dev.alloc<float>(n, 0.0f);
  auto xc = dev.alloc<half>(n, half(0.0f));
  const auto rep = mcscan<half, float>(dev, x.tensor(), y.tensor(), n, {});
  const auto copy = copy_kernel<half>(dev, x.tensor(), xc.tensor(), n);
  const double scan_bw = rep.bandwidth(n * (sizeof(half) + sizeof(float)));
  const double copy_bw = copy.bandwidth(n * 2 * sizeof(half));
  EXPECT_LT(scan_bw, copy_bw);
  // "Up to 37.5% of theoretical memory bandwidth" (800 GB/s).
  EXPECT_GT(scan_bw, 0.20 * 800e9);
  EXPECT_LT(scan_bw, 0.45 * 800e9);
}

TEST(McScanTiming, Int8HigherElementThroughputThanF16) {
  const std::size_t n = 1 << 22;
  Device dev;
  auto xf = dev.alloc<half>(n, half(0.0f));
  auto yf = dev.alloc<float>(n, 0.0f);
  auto xi = dev.alloc<std::int8_t>(n, std::int8_t{0});
  auto yi = dev.alloc<std::int32_t>(n, 0);
  const auto rf = mcscan<half, float>(dev, xf.tensor(), yf.tensor(), n, {});
  const auto ri =
      mcscan<std::int8_t, std::int32_t>(dev, xi.tensor(), yi.tensor(), n, {});
  // Fig. 9: ~10% more elements/s for int8.
  EXPECT_GT(ri.elements_per_s(n), 1.02 * rf.elements_per_s(n));
  EXPECT_LT(ri.elements_per_s(n), 1.5 * rf.elements_per_s(n));
}

TEST(McScanEdge, RejectsBadArguments) {
  Device dev;
  auto x = dev.alloc<half>(16, half(0.0f));
  auto y = dev.alloc<float>(16, 0.0f);
  EXPECT_THROW((mcscan<half, float>(dev, x.tensor(), y.tensor(), 16,
                                    {.s = 77})),
               Error);
  EXPECT_THROW((mcscan<half, float>(dev, x.tensor(), y.tensor(), 32, {})),
               Error);
}

}  // namespace
}  // namespace ascend::kernels
