// Cluster serving tests: multi-device placement and work stealing must be
// observationally invisible — bit-exact results versus a single-device
// Engine on the same stream, across both host executors — while the
// cluster-only machinery (affinity routing, spill, bulk-batch stealing,
// device-parallel shutdown, per-device metrics shards) is exercised and
// asserted directly.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ascan.hpp"
#include "serve/batcher.hpp"
#include "serve/cluster.hpp"
#include "sim/executor.hpp"
#include "test_helpers.hpp"

namespace ascend {
namespace {

using ascan::Session;
using namespace ascan::serve;
using testing::exact_scan_workload;

sim::MachineConfig cfg_with(sim::ExecutorMode mode) {
  auto cfg = sim::MachineConfig::ascend_910b4();
  cfg.executor = mode;
  return cfg;
}

std::vector<std::int8_t> seg_flags(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  auto f = rng.mask_i8(n, 0.05);
  f[0] = 1;
  return f;
}

/// One reference case: a request plus its expected response computed with
/// direct Session calls (no serving layer).
struct Expected {
  Request req;
  Response direct;
};

Expected make_case(std::size_t i, Session& ref) {
  Rng rng(5000 + i);
  Expected e;
  switch (i % 4) {
    case 0: {
      const std::size_t n = 64 + 32 * (i % 5);
      auto x = exact_scan_workload(n, 10 + i);
      auto r = ref.cumsum_batched(x, 1, n);
      e.direct.values_f16 = std::move(r.values);
      e.req = Request::cumsum(std::move(x), 128, false,
                              i % 3 ? Priority::Bulk : Priority::Interactive);
      break;
    }
    case 1: {
      const std::size_t n = 96 + 16 * (i % 3);
      auto x = exact_scan_workload(n, 20 + i);
      auto f = seg_flags(n, 30 + i);
      auto r = ref.segmented_cumsum(x, f);
      e.direct.values_f32 = std::move(r.values);
      e.req = Request::segmented_cumsum(std::move(x), std::move(f));
      break;
    }
    case 2: {
      auto x = rng.uniform_f16(128 + (i % 4) * 64, -100.0, 100.0);
      auto r = ref.sort(x, i % 8 == 2);
      e.direct.sorted_values = std::move(r.values);
      e.direct.indices = std::move(r.indices);
      e.req = Request::sort(std::move(x), i % 8 == 2);
      break;
    }
    default: {
      auto probs = rng.token_probs_f16(256);
      const double u = rng.next_double();
      e.direct.token = ref.top_p_sample(probs, 0.9, u).index;
      e.req = Request::top_p(std::move(probs), 0.9, u);
      break;
    }
  }
  return e;
}

void expect_matches(const Response& got, const Expected& e, std::size_t i) {
  ASSERT_EQ(got.status, Status::Ok) << "case " << i << ": " << got.reason;
  ASSERT_EQ(got.values_f16.size(), e.direct.values_f16.size()) << "case " << i;
  for (std::size_t j = 0; j < got.values_f16.size(); ++j) {
    ASSERT_EQ(static_cast<float>(got.values_f16[j]),
              static_cast<float>(e.direct.values_f16[j]))
        << "case " << i << " index " << j;
  }
  ASSERT_EQ(got.values_f32, e.direct.values_f32) << "case " << i;
  ASSERT_EQ(got.sorted_values.size(), e.direct.sorted_values.size());
  for (std::size_t j = 0; j < got.sorted_values.size(); ++j) {
    ASSERT_EQ(static_cast<float>(got.sorted_values[j]),
              static_cast<float>(e.direct.sorted_values[j]))
        << "case " << i << " index " << j;
  }
  ASSERT_EQ(got.indices, e.direct.indices) << "case " << i;
  ASSERT_EQ(got.token, e.direct.token) << "case " << i;
}

// ---------------------------------------------------------------------------
// Tentpole: the serving device must not matter. Whatever device the
// placement hash, a spill or a steal lands a request on, the result is
// bit-exact with a single-device engine / direct Session execution.

void run_cluster_bit_exact(sim::ExecutorMode mode) {
  Session ref(cfg_with(mode));
  constexpr std::size_t kCases = 24;
  std::vector<Expected> cases;
  cases.reserve(kCases);
  for (std::size_t i = 0; i < kCases; ++i) cases.push_back(make_case(i, ref));

  Cluster cluster({.policy = {.max_batch = 8, .max_wait_s = 300e-6},
                   .num_devices = 4,
                   .machine = cfg_with(mode),
                   .steal_min_backlog = 2});
  std::vector<std::future<Response>> futs;
  futs.reserve(kCases);
  for (const auto& c : cases) futs.push_back(cluster.submit(c.req));
  for (std::size_t i = 0; i < kCases; ++i) {
    const Response r = futs[i].get();
    expect_matches(r, cases[i], i);
    EXPECT_GE(r.device, 0);
    EXPECT_LT(r.device, 4);
    EXPECT_GE(r.launch_id, 1u);
  }
  cluster.shutdown(ShutdownMode::Drain);
  const auto m = cluster.metrics();
  EXPECT_EQ(m.completed, kCases);
  EXPECT_EQ(m.failed + m.cancelled + m.rejected_capacity, 0u);
  EXPECT_EQ(m.routed_affinity + m.routed_spill, kCases);
}

TEST(ServeCluster, BitExactVersusDirectSessionSpawn) {
  run_cluster_bit_exact(sim::ExecutorMode::Spawn);
}

TEST(ServeCluster, BitExactVersusDirectSessionPool) {
  run_cluster_bit_exact(sim::ExecutorMode::Pool);
}

TEST(ServeCluster, DeterministicAcrossRunsForTheSameStream) {
  // Same seeded stream through two independent clusters: whatever batch
  // compositions and steal interleavings each run produces, the values
  // must be identical (placement is a pure hash; kernels are deterministic
  // and batching-invariant).
  Session ref;
  constexpr std::size_t kCases = 16;
  std::vector<Expected> cases;
  for (std::size_t i = 0; i < kCases; ++i) cases.push_back(make_case(i, ref));

  auto run = [&] {
    Cluster cluster({.policy = {.max_batch = 8, .max_wait_s = 200e-6},
                     .num_devices = 3,
                     .steal_min_backlog = 2});
    std::vector<std::future<Response>> futs;
    for (const auto& c : cases) futs.push_back(cluster.submit(c.req));
    std::vector<Response> rs;
    rs.reserve(kCases);
    for (auto& f : futs) rs.push_back(f.get());
    return rs;
  };
  const auto a = run();
  const auto b = run();
  for (std::size_t i = 0; i < kCases; ++i) {
    ASSERT_EQ(a[i].status, Status::Ok) << a[i].reason;
    ASSERT_EQ(b[i].status, Status::Ok) << b[i].reason;
    EXPECT_EQ(a[i].values_f16.size(), b[i].values_f16.size());
    for (std::size_t j = 0; j < a[i].values_f16.size(); ++j) {
      ASSERT_EQ(static_cast<float>(a[i].values_f16[j]),
                static_cast<float>(b[i].values_f16[j]));
    }
    EXPECT_EQ(a[i].values_f32, b[i].values_f32);
    EXPECT_EQ(a[i].indices, b[i].indices);
    EXPECT_EQ(a[i].token, b[i].token);
  }
}

// ---------------------------------------------------------------------------
// Placement: GroupKey affinity is deterministic, spill only on imbalance.

TEST(ServeCluster, AffinityKeepsOneKeyOnOneDevice) {
  // Distinct-shape interactive requests, far batching deadline so nothing
  // executes while we look: every request of one GroupKey must land on the
  // same device (the deterministic hash target), with zero spills while
  // the cluster is idle enough.
  Cluster cluster({.policy = {.max_batch = 64, .max_wait_s = 0.2},
                   .num_devices = 4,
                   .max_queue = 512,
                   .work_stealing = false,
                   .spill_margin = 1 << 20});
  const auto x64 = exact_scan_workload(64);
  const auto x128 = exact_scan_workload(128);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 6; ++i) {
    futs.push_back(cluster.submit(Request::cumsum(x64, 64)));
    futs.push_back(cluster.submit(Request::cumsum(x128, 128)));
  }
  cluster.shutdown(ShutdownMode::Drain);
  std::set<int> dev64, dev128;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto r = futs[i].get();
    ASSERT_TRUE(r.ok()) << r.reason;
    (i % 2 ? dev128 : dev64).insert(r.device);
  }
  EXPECT_EQ(dev64.size(), 1u);   // one key, one device
  EXPECT_EQ(dev128.size(), 1u);
  const auto m = cluster.metrics();
  EXPECT_EQ(m.routed_affinity, futs.size());
  EXPECT_EQ(m.routed_spill, 0u);
}

TEST(ServeCluster, OverloadedAffinityTargetSpillsToLeastLoaded) {
  // Tiny spill margin and a far deadline: the second same-key bulk request
  // already sees the target 1 deeper than an idle sibling and spills.
  Cluster cluster({.policy = {.max_batch = 64, .max_wait_s = 0.2},
                   .num_devices = 4,
                   .max_queue = 512,
                   .work_stealing = false,
                   .spill_margin = 1});
  const auto x = exact_scan_workload(96);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 12; ++i) {
    futs.push_back(
        cluster.submit(Request::cumsum(x, 128, false, Priority::Bulk)));
  }
  cluster.shutdown(ShutdownMode::Drain);
  std::set<int> devices;
  for (auto& f : futs) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.reason;
    devices.insert(r.device);
  }
  EXPECT_GT(devices.size(), 1u);  // load balancing engaged
  const auto m = cluster.metrics();
  EXPECT_GT(m.routed_spill, 0u);
  EXPECT_EQ(m.routed_affinity + m.routed_spill, 12u);
}

// ---------------------------------------------------------------------------
// Work stealing: a hot device's bulk backlog is drained by idle siblings;
// interactive requests are never stolen.

TEST(ServeCluster, WorkStealingDrainsBulkBacklog) {
  // Every request shares one GroupKey and a huge spill margin pins them to
  // the affinity device — without stealing, one device does all the work.
  Cluster cluster({.policy = {.max_batch = 4, .max_wait_s = 50e-6},
                   .num_devices = 4,
                   .max_queue = 512,
                   .steal_min_backlog = 4,
                   .steal_poll_s = 50e-6,
                   .spill_margin = 1 << 20});
  const auto x = exact_scan_workload(256);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(
        cluster.submit(Request::cumsum(x, 128, false, Priority::Bulk)));
  }
  std::set<int> devices;
  for (auto& f : futs) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.reason;
    devices.insert(r.device);
  }
  cluster.shutdown(ShutdownMode::Drain);
  const auto m = cluster.metrics();
  EXPECT_EQ(m.completed, 64u);
  EXPECT_EQ(m.routed_spill, 0u);  // placement never moved the key...
  EXPECT_GE(m.steals, 1u);        // ...stealing moved the work
  EXPECT_GE(m.stolen_requests, 1u);
  EXPECT_GE(m.steals_suffered, 1u);
  EXPECT_GT(devices.size(), 1u);
  // The victim's shard saw the thefts; a thief's shard recorded its gains.
  std::uint64_t suffered = 0, gained = 0;
  for (const auto& d : cluster.per_device_metrics()) {
    suffered += d.steals_suffered;
    gained += d.steals;
  }
  EXPECT_EQ(suffered, m.steals_suffered);
  EXPECT_EQ(gained, m.steals);
}

TEST(ServeCluster, StealBulkNeverTakesInteractive) {
  // Batcher-level guarantee the cluster relies on: only the bulk lane is
  // stealable, and only once it is at least min_backlog deep.
  const BatchPolicy policy{.max_batch = 8, .max_wait_s = 1.0};
  const auto now = Clock::now();
  const auto x = exact_scan_workload(32);
  Batcher q;
  auto push = [&](Priority prio, std::uint64_t seq) {
    Pending p;
    p.req = Request::cumsum(x, 128, false, prio);
    p.enqueued = now;
    p.seq = seq;
    q.push(std::move(p));
  };
  push(Priority::Interactive, 0);
  push(Priority::Interactive, 1);
  push(Priority::Bulk, 2);
  EXPECT_TRUE(q.steal_bulk(policy, 2).empty());  // bulk backlog 1 < 2
  push(Priority::Bulk, 3);
  auto stolen = q.steal_bulk(policy, 2);
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_EQ(stolen[0].seq, 2u);
  EXPECT_EQ(stolen[1].seq, 3u);
  EXPECT_EQ(q.size(), 2u);  // both interactive requests still queued
  EXPECT_EQ(q.bulk_size(), 0u);
}

// ---------------------------------------------------------------------------
// Heterogeneous devices: skewed core counts change per-device timing, never
// values. (Integer-valued scan workloads are exact under any partitioning;
// top-p is excluded because its row partitioning follows the core count.)

TEST(ServeCluster, HeterogeneousDevicesAgreeBitExactly) {
  const auto base = sim::MachineConfig::ascend_910b4();
  Cluster cluster({.policy = {.max_batch = 4, .max_wait_s = 100e-6},
                   .num_devices = 4,
                   .device_machines = {base, base.with_ai_cores(8),
                                       base.with_ai_cores(4),
                                       base.with_ai_cores(2)},
                   .steal_min_backlog = 2,
                   .spill_margin = 1});  // spread across the skewed devices
  // Precompute references first: submission must be a tight burst so the
  // backlog (and thus spill/steal pressure) actually builds.
  Session ref;
  std::vector<std::vector<half>> inputs;
  std::vector<std::vector<float>> want;
  for (int i = 0; i < 24; ++i) {
    auto x = exact_scan_workload(64 + 32 * (i % 4), 700 + i);
    auto r = ref.cumsum_batched(x, 1, x.size());
    std::vector<float> w(r.values.size());
    std::transform(r.values.begin(), r.values.end(), w.begin(),
                   [](half h) { return static_cast<float>(h); });
    want.push_back(std::move(w));
    inputs.push_back(std::move(x));
  }
  std::vector<std::future<Response>> futs;
  for (const auto& x : inputs) {
    futs.push_back(
        cluster.submit(Request::cumsum(x, 128, false, Priority::Bulk)));
  }
  std::set<int> devices;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto r = futs[i].get();
    ASSERT_TRUE(r.ok()) << r.reason;
    devices.insert(r.device);
    ASSERT_EQ(r.values_f16.size(), want[i].size());
    for (std::size_t j = 0; j < want[i].size(); ++j) {
      ASSERT_EQ(static_cast<float>(r.values_f16[j]), want[i][j])
          << "case " << i << " index " << j << " device " << r.device;
    }
  }
  EXPECT_GT(devices.size(), 1u);  // the skewed devices actually served
}

// ---------------------------------------------------------------------------
// Shutdown: device-parallel, idempotent, never a dangling future.

TEST(ServeCluster, CancelShutdownResolvesEveryFuture) {
  Cluster cluster({.policy = {.max_batch = 64, .max_wait_s = 1.0},
                   .num_devices = 3,
                   .max_queue = 512});
  const auto x = exact_scan_workload(128);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 30; ++i) {
    futs.push_back(cluster.submit(
        Request::cumsum(x, 128, false,
                        i % 2 ? Priority::Bulk : Priority::Interactive)));
  }
  cluster.shutdown(ShutdownMode::Cancel);
  EXPECT_TRUE(cluster.stopped());
  std::size_t completed = 0, cancelled = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);  // resolved, not dangling
    const auto r = f.get();
    ASSERT_TRUE(r.status == Status::Ok || r.status == Status::Cancelled);
    (r.ok() ? completed : cancelled)++;
  }
  EXPECT_EQ(completed + cancelled, 30u);
  EXPECT_GT(cancelled, 0u);
  const auto m = cluster.metrics();
  EXPECT_EQ(m.cancelled, cancelled);
  EXPECT_EQ(m.completed, completed);

  // Idempotent; post-shutdown submissions reject with a reason.
  cluster.shutdown(ShutdownMode::Drain);
  const auto late = cluster.submit(Request::cumsum(x)).get();
  EXPECT_EQ(late.status, Status::Rejected);
  EXPECT_NE(late.reason.find("shutting down"), std::string::npos);
}

TEST(ServeCluster, ClusterWideAdmissionBound) {
  // One hot key, far deadline: the cluster-level cap binds on the summed
  // backlog even though each device's own queue is far from its limit.
  Cluster cluster({.policy = {.max_batch = 64, .max_wait_s = 0.2},
                   .num_devices = 4,
                   .max_queue = 8,
                   .interactive_reserve = 2,
                   .work_stealing = false,
                   .spill_margin = 1 << 20});
  const auto x = exact_scan_workload(64);
  std::vector<std::future<Response>> admitted;
  std::size_t rejected = 0;
  for (int i = 0; i < 10; ++i) {
    auto f =
        cluster.submit(Request::cumsum(x, 128, false, Priority::Bulk));
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      const auto r = f.get();
      ASSERT_EQ(r.status, Status::Rejected);
      EXPECT_NE(r.reason.find("cluster queue full"), std::string::npos)
          << r.reason;
      rejected++;
    } else {
      admitted.push_back(std::move(f));
    }
  }
  EXPECT_EQ(admitted.size(), 6u);  // max_queue - interactive_reserve
  EXPECT_EQ(rejected, 4u);
  // The reserve keeps the interactive lane open cluster-wide.
  auto hi = cluster.submit(Request::cumsum(x));
  EXPECT_NE(hi.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  cluster.shutdown(ShutdownMode::Drain);
  for (auto& f : admitted) EXPECT_TRUE(f.get().ok());
  EXPECT_TRUE(hi.get().ok());
  EXPECT_EQ(cluster.metrics().rejected_capacity, rejected);
}

// ---------------------------------------------------------------------------
// Metrics: per-shard views, merged view, stable JSON schema.

TEST(ServeCluster, PerDeviceAndMergedMetricsAgree) {
  Cluster cluster({.policy = {.max_batch = 8, .max_wait_s = 100e-6},
                   .num_devices = 4});
  const auto x = exact_scan_workload(128);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 20; ++i) {
    futs.push_back(cluster.submit(Request::cumsum(x, 16u << (i % 4))));
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  cluster.shutdown(ShutdownMode::Drain);

  const auto parts = cluster.per_device_metrics();
  ASSERT_EQ(parts.size(), 4u);
  std::uint64_t completed = 0;
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(parts[static_cast<std::size_t>(d)].device, d);
    completed += parts[static_cast<std::size_t>(d)].completed;
  }
  const auto m = cluster.metrics();
  EXPECT_EQ(m.device, -1);  // merged view is not one device's
  EXPECT_EQ(m.completed, completed);
  EXPECT_EQ(m.completed, 20u);
  EXPECT_EQ(m.submitted, 20u);  // front end + shards, counted once

  const std::string j = cluster.metrics_json();
  for (const char* key :
       {"\"merged\"", "\"devices\"", "\"cluster\"", "\"routed_affinity\"",
        "\"steals\"", "\"admission\"", "\"latency\"", "\"simulated\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << "missing " << key;
  }
}

// ---------------------------------------------------------------------------
// Device health: the per-device state machine (serve/health.hpp), brownout
// shedding, half-open readmission, and shutdown racing a quarantine drain.

TEST(ServeClusterHealth, HealthMonitorWalksTheStateMachine) {
  HealthPolicy hp;
  hp.window = 4;
  hp.min_samples = 2;
  hp.quarantine_hold_s = 0;  // promote on the very next tick
  hp.canary_batches = 2;
  HealthMonitor mon(2, hp);
  EXPECT_EQ(mon.state(0), HealthState::Healthy);
  EXPECT_TRUE(mon.placeable(0));
  EXPECT_EQ(mon.placeable_count(), 2u);

  // Clean traffic never transitions; a retried success scores retry_weight.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(mon.record(0, false, 0).has_value());
  EXPECT_EQ(mon.score(0), 0.0);
  EXPECT_FALSE(mon.record(1, false, 3).has_value());
  EXPECT_EQ(mon.score(1), hp.retry_weight);

  // Faults walk Healthy -> Degraded -> Quarantined (two records: one fault
  // in the window of 4 cleans is exactly the degraded threshold, two are
  // the quarantine threshold).
  auto t1 = mon.record(0, true, 0);
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->from, HealthState::Healthy);
  EXPECT_EQ(t1->to, HealthState::Degraded);
  EXPECT_TRUE(mon.placeable(0));  // degraded still takes traffic
  auto t2 = mon.record(0, true, 0);
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(t2->to, HealthState::Quarantined);
  EXPECT_FALSE(mon.placeable(0));
  EXPECT_EQ(mon.placeable_count(), 1u);
  EXPECT_FALSE(mon.try_admit_canary(0));  // not probing yet

  // Hold elapses -> Probing, with a bounded canary budget.
  std::vector<HealthTransition> promoted;
  mon.tick(&promoted);
  ASSERT_EQ(promoted.size(), 1u);
  EXPECT_EQ(promoted[0].device, 0);
  EXPECT_EQ(promoted[0].to, HealthState::Probing);
  EXPECT_FALSE(mon.placeable(0));  // probing is canaries-only
  EXPECT_TRUE(mon.try_admit_canary(0));
  EXPECT_TRUE(mon.try_admit_canary(0));
  EXPECT_FALSE(mon.try_admit_canary(0));  // budget of 2 exhausted

  // A faulting canary re-quarantines; clean canaries readmit with a reset
  // window (stale quarantine-era faults must not re-degrade instantly).
  auto t3 = mon.record(0, true, 0, 1);
  ASSERT_TRUE(t3.has_value());
  EXPECT_EQ(t3->to, HealthState::Quarantined);
  mon.tick(nullptr);
  EXPECT_TRUE(mon.has_canary_slot());
  ASSERT_TRUE(mon.try_admit_canary(0));
  // An untagged outcome is a straggler from a pre-quarantine launch: it
  // must neither advance nor reset the readmission count, and it leaves
  // the reserved canary slot in flight.
  EXPECT_FALSE(mon.record(0, false, 0).has_value());
  EXPECT_FALSE(mon.record(0, true, 0).has_value());  // even a faulting one
  EXPECT_EQ(mon.state(0), HealthState::Probing);
  // A canary that survived only through retries is released but does not
  // count clean (the consecutive-clean count restarts).
  EXPECT_FALSE(mon.record(0, false, 2, 1).has_value());
  ASSERT_TRUE(mon.try_admit_canary(0));
  EXPECT_FALSE(mon.record(0, false, 0, 1).has_value());  // 1 of 2 clean
  ASSERT_TRUE(mon.try_admit_canary(0));
  auto t4 = mon.record(0, false, 0, 1);
  ASSERT_TRUE(t4.has_value());
  EXPECT_EQ(t4->from, HealthState::Probing);
  EXPECT_EQ(t4->to, HealthState::Healthy);
  EXPECT_EQ(mon.score(0), 0.0);  // clean slate
  EXPECT_EQ(mon.placeable_count(), 2u);
  EXPECT_FALSE(mon.has_canary_slot());  // nobody probing any more
}

TEST(ServeClusterHealth, BrownoutShedsBulkAndKeepsInteractiveLane) {
  using sim::FaultPlan;
  const auto x = exact_scan_workload(256, 41);
  // With 2 devices and a 0.75 floor, losing one device browns the cluster
  // out. The key's affinity target is the device we kill.
  const int bad =
      static_cast<int>(group_key_hash(group_key(Request::cumsum(x))) % 2);
  std::vector<FaultPlan> plans(2);
  plans[static_cast<std::size_t>(bad)] = FaultPlan::dead_from_launch(0);
  HealthPolicy hp;
  hp.window = 4;
  hp.min_samples = 1;
  hp.quarantine_hold_s = 3600;  // stays quarantined for the whole test
  Cluster cluster({.policy = {.max_batch = 4, .max_wait_s = 50e-6},
                   .num_devices = 2,
                   .retry = {.max_attempts = 2, .backoff_s = 1e-6},
                   .device_fault_plans = plans,
                   .work_stealing = false,
                   .spill_margin = 1 << 20,
                   .health = hp,
                   .brownout_min_healthy = 0.75});
  EXPECT_FALSE(cluster.in_brownout());

  // Two faulted launches quarantine the bad device; both requests still
  // complete via failover to the healthy sibling.
  for (int i = 0; i < 2; ++i) {
    const auto r = cluster.submit(Request::cumsum(x)).get();
    ASSERT_TRUE(r.ok()) << r.reason;
    EXPECT_NE(r.device, bad);
  }
  ASSERT_EQ(cluster.device_health(bad), HealthState::Quarantined);
  ASSERT_TRUE(cluster.in_brownout());

  // Brownout: bulk work is shed with a typed reason; the interactive lane
  // keeps serving on the surviving device.
  const auto bulk =
      cluster.submit(Request::cumsum(x, 128, false, Priority::Bulk)).get();
  EXPECT_EQ(bulk.status, Status::Rejected);
  EXPECT_NE(bulk.reason.find("brownout"), std::string::npos) << bulk.reason;
  const auto inter = cluster.submit(Request::cumsum(x)).get();
  EXPECT_TRUE(inter.ok()) << inter.reason;
  EXPECT_NE(inter.device, bad);

  cluster.shutdown(ShutdownMode::Drain);
  const auto m = cluster.metrics();
  EXPECT_GE(m.shed_brownout, 1u);
  EXPECT_GE(m.failovers, 1u);
  EXPECT_GE(m.health_transitions, 2u);
  // Shed requests are capacity rejections too (one admission accounting).
  EXPECT_GE(m.rejected_capacity, m.shed_brownout);
  // The JSON surfaces both the counters and the live per-device states.
  const std::string j = cluster.metrics_json();
  for (const char* key : {"\"health\"", "\"quarantined\"", "\"failovers\"",
                          "\"tiles_resumed\"", "\"shed_brownout\"",
                          "\"canary_probes\"", "\"health_transitions\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(ServeClusterHealth, ProbingCanaryRefaultsAndRequarantines) {
  using sim::FaultPlan;
  const auto x = exact_scan_workload(256, 43);
  const int bad =
      static_cast<int>(group_key_hash(group_key(Request::cumsum(x))) % 2);
  std::vector<FaultPlan> plans(2);
  plans[static_cast<std::size_t>(bad)] = FaultPlan::dead_from_launch(0);
  HealthPolicy hp;
  hp.window = 4;
  hp.min_samples = 1;
  hp.quarantine_hold_s = 1e-3;  // readmission attempt almost immediately
  hp.canary_batches = 1;
  Cluster cluster({.policy = {.max_batch = 4, .max_wait_s = 50e-6},
                   .num_devices = 2,
                   .retry = {.max_attempts = 2, .backoff_s = 1e-6},
                   .device_fault_plans = plans,
                   .work_stealing = false,
                   .spill_margin = 1 << 20,
                   .health = hp});
  for (int i = 0; i < 2; ++i) {
    const auto r = cluster.submit(Request::cumsum(x)).get();
    ASSERT_TRUE(r.ok()) << r.reason;
  }
  ASSERT_EQ(cluster.device_health(bad), HealthState::Quarantined);

  // After the hold the next best-effort *bulk* submit is routed to the
  // probing device as a canary (interactive and deadline-bearing requests
  // are never canaries — their SLOs must not be staked on a suspect
  // device); the canary faults on the still-dead device, the device goes
  // straight back to quarantine, and the request itself still completes
  // via failover.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // An interactive request first: it must NOT be canary-admitted — it
  // places on the healthy sibling and the suspect device keeps probing.
  const auto ri = cluster.submit(Request::cumsum(x)).get();
  EXPECT_TRUE(ri.ok()) << ri.reason;
  EXPECT_NE(ri.device, bad);
  EXPECT_EQ(ri.resumed_from, -1);
  EXPECT_EQ(cluster.device_health(bad), HealthState::Probing);
  const auto r =
      cluster.submit(Request::cumsum(x, 128, false, Priority::Bulk)).get();
  EXPECT_TRUE(r.ok()) << r.reason;
  EXPECT_EQ(r.resumed_from, bad);
  EXPECT_NE(r.device, bad);
  EXPECT_EQ(cluster.device_health(bad), HealthState::Quarantined);
  cluster.shutdown(ShutdownMode::Drain);
  const auto m = cluster.metrics();
  EXPECT_GE(m.canary_probes, 1u);
  EXPECT_GE(m.failovers, 2u);
  // Quarantine -> Probing -> Quarantine on top of the initial two.
  EXPECT_GE(m.health_transitions, 4u);
}

TEST(ServeClusterHealth, ShutdownRacingQuarantineDrainResolvesEveryFuture) {
  using sim::FaultPlan;
  // Shutdown races failover and the quarantine drain: submitter threads
  // flood the cluster while the affinity device is dying and the main
  // thread cancels mid-stream. Whatever interleaving results, every future
  // must resolve with a terminal status — never a dangling future.
  const auto x = exact_scan_workload(512, 47);
  const int bad =
      static_cast<int>(group_key_hash(group_key(Request::cumsum(x))) % 4);
  for (int round = 0; round < 3; ++round) {
    std::vector<FaultPlan> plans(4);
    plans[static_cast<std::size_t>(bad)] = FaultPlan::dead_from_launch(0);
    HealthPolicy hp;
    hp.window = 4;
    hp.min_samples = 1;
    hp.quarantine_hold_s = round == 0 ? 1e-4 : 3600;  // race probing too
    auto cluster = std::make_unique<Cluster>(
        ClusterOptions{.policy = {.max_batch = 4, .max_wait_s = 50e-6},
                       .num_devices = 4,
                       .max_queue = 1024,
                       .retry = {.max_attempts = 2, .backoff_s = 1e-6},
                       .device_fault_plans = plans,
                       .steal_min_backlog = 4,
                       .spill_margin = 1 << 20,
                       .health = hp});
    constexpr std::size_t kReqs = 96;
    std::vector<std::future<Response>> futs(kReqs);
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < kReqs;
             i = next.fetch_add(1)) {
          futs[i] = cluster->submit(Request::cumsum(
              x, 128, false, i % 3 ? Priority::Bulk : Priority::Interactive));
        }
      });
    }
    // Let the flood meet the dying device, then shut down mid-drain.
    // Two deterministic gates instead of a timing guess: half the flood
    // submitted (the shutdown really races live submitters) and at least
    // one completion on the record (the "something completed" assertion
    // below cannot depend on how fast the submit path got).
    while (next.load() < kReqs / 2) std::this_thread::yield();
    while (cluster->metrics().completed == 0) std::this_thread::yield();
    cluster->shutdown(round == 2 ? ShutdownMode::Drain
                                 : ShutdownMode::Cancel);
    for (auto& t : clients) t.join();
    std::size_t ok = 0, terminal = 0;
    for (auto& f : futs) {
      ASSERT_TRUE(f.valid());
      ASSERT_EQ(f.wait_for(std::chrono::seconds(10)),
                std::future_status::ready)
          << "round " << round << ": dangling future";
      const auto r = f.get();
      ASSERT_TRUE(r.status == Status::Ok || r.status == Status::Failed ||
                  r.status == Status::Cancelled ||
                  r.status == Status::Rejected)
          << "round " << round << ": " << status_name(r.status);
      ++terminal;
      if (r.ok()) ++ok;
    }
    EXPECT_EQ(terminal, kReqs);
    EXPECT_GT(ok, 0u) << "round " << round << ": nothing completed";
    // Post-shutdown metrics balance: everything admitted is accounted for.
    const auto m = cluster->metrics();
    EXPECT_EQ(m.admitted, m.completed + m.failed + m.cancelled)
        << "round " << round;
  }
}

TEST(ServeCluster, DeviceStatsExposePerDeviceDegradation) {
  // A clean cluster after a drain: every device reports full core count
  // and zero failures; op calls land where the requests were served.
  Cluster cluster({.policy = {.max_batch = 8, .max_wait_s = 100e-6},
                   .num_devices = 2});
  const auto x = exact_scan_workload(128);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(cluster.submit(Request::cumsum(x)));
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  cluster.shutdown(ShutdownMode::Drain);
  std::uint64_t calls = 0;
  for (int d = 0; d < cluster.num_devices(); ++d) {
    const auto s = cluster.device(d).device_stats();
    EXPECT_EQ(s.active_cores, 20);
    EXPECT_EQ(s.op_failures, 0u);
    calls += s.op_calls;
  }
  EXPECT_GE(calls, 1u);
}

}  // namespace
}  // namespace ascend
