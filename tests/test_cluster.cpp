// Cluster serving tests: multi-device placement and work stealing must be
// observationally invisible — bit-exact results versus a single-device
// Engine on the same stream, across both host executors — while the
// cluster-only machinery (affinity routing, spill, bulk-batch stealing,
// device-parallel shutdown, per-device metrics shards) is exercised and
// asserted directly.
#include <algorithm>
#include <chrono>
#include <future>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/ascan.hpp"
#include "serve/batcher.hpp"
#include "serve/cluster.hpp"
#include "sim/executor.hpp"
#include "test_helpers.hpp"

namespace ascend {
namespace {

using ascan::Session;
using namespace ascan::serve;
using testing::exact_scan_workload;

sim::MachineConfig cfg_with(sim::ExecutorMode mode) {
  auto cfg = sim::MachineConfig::ascend_910b4();
  cfg.executor = mode;
  return cfg;
}

std::vector<std::int8_t> seg_flags(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  auto f = rng.mask_i8(n, 0.05);
  f[0] = 1;
  return f;
}

/// One reference case: a request plus its expected response computed with
/// direct Session calls (no serving layer).
struct Expected {
  Request req;
  Response direct;
};

Expected make_case(std::size_t i, Session& ref) {
  Rng rng(5000 + i);
  Expected e;
  switch (i % 4) {
    case 0: {
      const std::size_t n = 64 + 32 * (i % 5);
      auto x = exact_scan_workload(n, 10 + i);
      auto r = ref.cumsum_batched(x, 1, n);
      e.direct.values_f16 = std::move(r.values);
      e.req = Request::cumsum(std::move(x), 128, false,
                              i % 3 ? Priority::Bulk : Priority::Interactive);
      break;
    }
    case 1: {
      const std::size_t n = 96 + 16 * (i % 3);
      auto x = exact_scan_workload(n, 20 + i);
      auto f = seg_flags(n, 30 + i);
      auto r = ref.segmented_cumsum(x, f);
      e.direct.values_f32 = std::move(r.values);
      e.req = Request::segmented_cumsum(std::move(x), std::move(f));
      break;
    }
    case 2: {
      auto x = rng.uniform_f16(128 + (i % 4) * 64, -100.0, 100.0);
      auto r = ref.sort(x, i % 8 == 2);
      e.direct.sorted_values = std::move(r.values);
      e.direct.indices = std::move(r.indices);
      e.req = Request::sort(std::move(x), i % 8 == 2);
      break;
    }
    default: {
      auto probs = rng.token_probs_f16(256);
      const double u = rng.next_double();
      e.direct.token = ref.top_p_sample(probs, 0.9, u).index;
      e.req = Request::top_p(std::move(probs), 0.9, u);
      break;
    }
  }
  return e;
}

void expect_matches(const Response& got, const Expected& e, std::size_t i) {
  ASSERT_EQ(got.status, Status::Ok) << "case " << i << ": " << got.reason;
  ASSERT_EQ(got.values_f16.size(), e.direct.values_f16.size()) << "case " << i;
  for (std::size_t j = 0; j < got.values_f16.size(); ++j) {
    ASSERT_EQ(static_cast<float>(got.values_f16[j]),
              static_cast<float>(e.direct.values_f16[j]))
        << "case " << i << " index " << j;
  }
  ASSERT_EQ(got.values_f32, e.direct.values_f32) << "case " << i;
  ASSERT_EQ(got.sorted_values.size(), e.direct.sorted_values.size());
  for (std::size_t j = 0; j < got.sorted_values.size(); ++j) {
    ASSERT_EQ(static_cast<float>(got.sorted_values[j]),
              static_cast<float>(e.direct.sorted_values[j]))
        << "case " << i << " index " << j;
  }
  ASSERT_EQ(got.indices, e.direct.indices) << "case " << i;
  ASSERT_EQ(got.token, e.direct.token) << "case " << i;
}

// ---------------------------------------------------------------------------
// Tentpole: the serving device must not matter. Whatever device the
// placement hash, a spill or a steal lands a request on, the result is
// bit-exact with a single-device engine / direct Session execution.

void run_cluster_bit_exact(sim::ExecutorMode mode) {
  Session ref(cfg_with(mode));
  constexpr std::size_t kCases = 24;
  std::vector<Expected> cases;
  cases.reserve(kCases);
  for (std::size_t i = 0; i < kCases; ++i) cases.push_back(make_case(i, ref));

  Cluster cluster({.policy = {.max_batch = 8, .max_wait_s = 300e-6},
                   .num_devices = 4,
                   .machine = cfg_with(mode),
                   .steal_min_backlog = 2});
  std::vector<std::future<Response>> futs;
  futs.reserve(kCases);
  for (const auto& c : cases) futs.push_back(cluster.submit(c.req));
  for (std::size_t i = 0; i < kCases; ++i) {
    const Response r = futs[i].get();
    expect_matches(r, cases[i], i);
    EXPECT_GE(r.device, 0);
    EXPECT_LT(r.device, 4);
    EXPECT_GE(r.launch_id, 1u);
  }
  cluster.shutdown(ShutdownMode::Drain);
  const auto m = cluster.metrics();
  EXPECT_EQ(m.completed, kCases);
  EXPECT_EQ(m.failed + m.cancelled + m.rejected_capacity, 0u);
  EXPECT_EQ(m.routed_affinity + m.routed_spill, kCases);
}

TEST(ServeCluster, BitExactVersusDirectSessionSpawn) {
  run_cluster_bit_exact(sim::ExecutorMode::Spawn);
}

TEST(ServeCluster, BitExactVersusDirectSessionPool) {
  run_cluster_bit_exact(sim::ExecutorMode::Pool);
}

TEST(ServeCluster, DeterministicAcrossRunsForTheSameStream) {
  // Same seeded stream through two independent clusters: whatever batch
  // compositions and steal interleavings each run produces, the values
  // must be identical (placement is a pure hash; kernels are deterministic
  // and batching-invariant).
  Session ref;
  constexpr std::size_t kCases = 16;
  std::vector<Expected> cases;
  for (std::size_t i = 0; i < kCases; ++i) cases.push_back(make_case(i, ref));

  auto run = [&] {
    Cluster cluster({.policy = {.max_batch = 8, .max_wait_s = 200e-6},
                     .num_devices = 3,
                     .steal_min_backlog = 2});
    std::vector<std::future<Response>> futs;
    for (const auto& c : cases) futs.push_back(cluster.submit(c.req));
    std::vector<Response> rs;
    rs.reserve(kCases);
    for (auto& f : futs) rs.push_back(f.get());
    return rs;
  };
  const auto a = run();
  const auto b = run();
  for (std::size_t i = 0; i < kCases; ++i) {
    ASSERT_EQ(a[i].status, Status::Ok) << a[i].reason;
    ASSERT_EQ(b[i].status, Status::Ok) << b[i].reason;
    EXPECT_EQ(a[i].values_f16.size(), b[i].values_f16.size());
    for (std::size_t j = 0; j < a[i].values_f16.size(); ++j) {
      ASSERT_EQ(static_cast<float>(a[i].values_f16[j]),
                static_cast<float>(b[i].values_f16[j]));
    }
    EXPECT_EQ(a[i].values_f32, b[i].values_f32);
    EXPECT_EQ(a[i].indices, b[i].indices);
    EXPECT_EQ(a[i].token, b[i].token);
  }
}

// ---------------------------------------------------------------------------
// Placement: GroupKey affinity is deterministic, spill only on imbalance.

TEST(ServeCluster, AffinityKeepsOneKeyOnOneDevice) {
  // Distinct-shape interactive requests, far batching deadline so nothing
  // executes while we look: every request of one GroupKey must land on the
  // same device (the deterministic hash target), with zero spills while
  // the cluster is idle enough.
  Cluster cluster({.policy = {.max_batch = 64, .max_wait_s = 0.2},
                   .num_devices = 4,
                   .max_queue = 512,
                   .work_stealing = false,
                   .spill_margin = 1 << 20});
  const auto x64 = exact_scan_workload(64);
  const auto x128 = exact_scan_workload(128);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 6; ++i) {
    futs.push_back(cluster.submit(Request::cumsum(x64, 64)));
    futs.push_back(cluster.submit(Request::cumsum(x128, 128)));
  }
  cluster.shutdown(ShutdownMode::Drain);
  std::set<int> dev64, dev128;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto r = futs[i].get();
    ASSERT_TRUE(r.ok()) << r.reason;
    (i % 2 ? dev128 : dev64).insert(r.device);
  }
  EXPECT_EQ(dev64.size(), 1u);   // one key, one device
  EXPECT_EQ(dev128.size(), 1u);
  const auto m = cluster.metrics();
  EXPECT_EQ(m.routed_affinity, futs.size());
  EXPECT_EQ(m.routed_spill, 0u);
}

TEST(ServeCluster, OverloadedAffinityTargetSpillsToLeastLoaded) {
  // Tiny spill margin and a far deadline: the second same-key bulk request
  // already sees the target 1 deeper than an idle sibling and spills.
  Cluster cluster({.policy = {.max_batch = 64, .max_wait_s = 0.2},
                   .num_devices = 4,
                   .max_queue = 512,
                   .work_stealing = false,
                   .spill_margin = 1});
  const auto x = exact_scan_workload(96);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 12; ++i) {
    futs.push_back(
        cluster.submit(Request::cumsum(x, 128, false, Priority::Bulk)));
  }
  cluster.shutdown(ShutdownMode::Drain);
  std::set<int> devices;
  for (auto& f : futs) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.reason;
    devices.insert(r.device);
  }
  EXPECT_GT(devices.size(), 1u);  // load balancing engaged
  const auto m = cluster.metrics();
  EXPECT_GT(m.routed_spill, 0u);
  EXPECT_EQ(m.routed_affinity + m.routed_spill, 12u);
}

// ---------------------------------------------------------------------------
// Work stealing: a hot device's bulk backlog is drained by idle siblings;
// interactive requests are never stolen.

TEST(ServeCluster, WorkStealingDrainsBulkBacklog) {
  // Every request shares one GroupKey and a huge spill margin pins them to
  // the affinity device — without stealing, one device does all the work.
  Cluster cluster({.policy = {.max_batch = 4, .max_wait_s = 50e-6},
                   .num_devices = 4,
                   .max_queue = 512,
                   .steal_min_backlog = 4,
                   .steal_poll_s = 50e-6,
                   .spill_margin = 1 << 20});
  const auto x = exact_scan_workload(256);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(
        cluster.submit(Request::cumsum(x, 128, false, Priority::Bulk)));
  }
  std::set<int> devices;
  for (auto& f : futs) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.reason;
    devices.insert(r.device);
  }
  cluster.shutdown(ShutdownMode::Drain);
  const auto m = cluster.metrics();
  EXPECT_EQ(m.completed, 64u);
  EXPECT_EQ(m.routed_spill, 0u);  // placement never moved the key...
  EXPECT_GE(m.steals, 1u);        // ...stealing moved the work
  EXPECT_GE(m.stolen_requests, 1u);
  EXPECT_GE(m.steals_suffered, 1u);
  EXPECT_GT(devices.size(), 1u);
  // The victim's shard saw the thefts; a thief's shard recorded its gains.
  std::uint64_t suffered = 0, gained = 0;
  for (const auto& d : cluster.per_device_metrics()) {
    suffered += d.steals_suffered;
    gained += d.steals;
  }
  EXPECT_EQ(suffered, m.steals_suffered);
  EXPECT_EQ(gained, m.steals);
}

TEST(ServeCluster, StealBulkNeverTakesInteractive) {
  // Batcher-level guarantee the cluster relies on: only the bulk lane is
  // stealable, and only once it is at least min_backlog deep.
  const BatchPolicy policy{.max_batch = 8, .max_wait_s = 1.0};
  const auto now = Clock::now();
  const auto x = exact_scan_workload(32);
  Batcher q;
  auto push = [&](Priority prio, std::uint64_t seq) {
    Pending p;
    p.req = Request::cumsum(x, 128, false, prio);
    p.enqueued = now;
    p.seq = seq;
    q.push(std::move(p));
  };
  push(Priority::Interactive, 0);
  push(Priority::Interactive, 1);
  push(Priority::Bulk, 2);
  EXPECT_TRUE(q.steal_bulk(policy, 2).empty());  // bulk backlog 1 < 2
  push(Priority::Bulk, 3);
  auto stolen = q.steal_bulk(policy, 2);
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_EQ(stolen[0].seq, 2u);
  EXPECT_EQ(stolen[1].seq, 3u);
  EXPECT_EQ(q.size(), 2u);  // both interactive requests still queued
  EXPECT_EQ(q.bulk_size(), 0u);
}

// ---------------------------------------------------------------------------
// Heterogeneous devices: skewed core counts change per-device timing, never
// values. (Integer-valued scan workloads are exact under any partitioning;
// top-p is excluded because its row partitioning follows the core count.)

TEST(ServeCluster, HeterogeneousDevicesAgreeBitExactly) {
  const auto base = sim::MachineConfig::ascend_910b4();
  Cluster cluster({.policy = {.max_batch = 4, .max_wait_s = 100e-6},
                   .num_devices = 4,
                   .device_machines = {base, base.with_ai_cores(8),
                                       base.with_ai_cores(4),
                                       base.with_ai_cores(2)},
                   .steal_min_backlog = 2,
                   .spill_margin = 1});  // spread across the skewed devices
  // Precompute references first: submission must be a tight burst so the
  // backlog (and thus spill/steal pressure) actually builds.
  Session ref;
  std::vector<std::vector<half>> inputs;
  std::vector<std::vector<float>> want;
  for (int i = 0; i < 24; ++i) {
    auto x = exact_scan_workload(64 + 32 * (i % 4), 700 + i);
    auto r = ref.cumsum_batched(x, 1, x.size());
    std::vector<float> w(r.values.size());
    std::transform(r.values.begin(), r.values.end(), w.begin(),
                   [](half h) { return static_cast<float>(h); });
    want.push_back(std::move(w));
    inputs.push_back(std::move(x));
  }
  std::vector<std::future<Response>> futs;
  for (const auto& x : inputs) {
    futs.push_back(
        cluster.submit(Request::cumsum(x, 128, false, Priority::Bulk)));
  }
  std::set<int> devices;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto r = futs[i].get();
    ASSERT_TRUE(r.ok()) << r.reason;
    devices.insert(r.device);
    ASSERT_EQ(r.values_f16.size(), want[i].size());
    for (std::size_t j = 0; j < want[i].size(); ++j) {
      ASSERT_EQ(static_cast<float>(r.values_f16[j]), want[i][j])
          << "case " << i << " index " << j << " device " << r.device;
    }
  }
  EXPECT_GT(devices.size(), 1u);  // the skewed devices actually served
}

// ---------------------------------------------------------------------------
// Shutdown: device-parallel, idempotent, never a dangling future.

TEST(ServeCluster, CancelShutdownResolvesEveryFuture) {
  Cluster cluster({.policy = {.max_batch = 64, .max_wait_s = 1.0},
                   .num_devices = 3,
                   .max_queue = 512});
  const auto x = exact_scan_workload(128);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 30; ++i) {
    futs.push_back(cluster.submit(
        Request::cumsum(x, 128, false,
                        i % 2 ? Priority::Bulk : Priority::Interactive)));
  }
  cluster.shutdown(ShutdownMode::Cancel);
  EXPECT_TRUE(cluster.stopped());
  std::size_t completed = 0, cancelled = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);  // resolved, not dangling
    const auto r = f.get();
    ASSERT_TRUE(r.status == Status::Ok || r.status == Status::Cancelled);
    (r.ok() ? completed : cancelled)++;
  }
  EXPECT_EQ(completed + cancelled, 30u);
  EXPECT_GT(cancelled, 0u);
  const auto m = cluster.metrics();
  EXPECT_EQ(m.cancelled, cancelled);
  EXPECT_EQ(m.completed, completed);

  // Idempotent; post-shutdown submissions reject with a reason.
  cluster.shutdown(ShutdownMode::Drain);
  const auto late = cluster.submit(Request::cumsum(x)).get();
  EXPECT_EQ(late.status, Status::Rejected);
  EXPECT_NE(late.reason.find("shutting down"), std::string::npos);
}

TEST(ServeCluster, ClusterWideAdmissionBound) {
  // One hot key, far deadline: the cluster-level cap binds on the summed
  // backlog even though each device's own queue is far from its limit.
  Cluster cluster({.policy = {.max_batch = 64, .max_wait_s = 0.2},
                   .num_devices = 4,
                   .max_queue = 8,
                   .interactive_reserve = 2,
                   .work_stealing = false,
                   .spill_margin = 1 << 20});
  const auto x = exact_scan_workload(64);
  std::vector<std::future<Response>> admitted;
  std::size_t rejected = 0;
  for (int i = 0; i < 10; ++i) {
    auto f =
        cluster.submit(Request::cumsum(x, 128, false, Priority::Bulk));
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      const auto r = f.get();
      ASSERT_EQ(r.status, Status::Rejected);
      EXPECT_NE(r.reason.find("cluster queue full"), std::string::npos)
          << r.reason;
      rejected++;
    } else {
      admitted.push_back(std::move(f));
    }
  }
  EXPECT_EQ(admitted.size(), 6u);  // max_queue - interactive_reserve
  EXPECT_EQ(rejected, 4u);
  // The reserve keeps the interactive lane open cluster-wide.
  auto hi = cluster.submit(Request::cumsum(x));
  EXPECT_NE(hi.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  cluster.shutdown(ShutdownMode::Drain);
  for (auto& f : admitted) EXPECT_TRUE(f.get().ok());
  EXPECT_TRUE(hi.get().ok());
  EXPECT_EQ(cluster.metrics().rejected_capacity, rejected);
}

// ---------------------------------------------------------------------------
// Metrics: per-shard views, merged view, stable JSON schema.

TEST(ServeCluster, PerDeviceAndMergedMetricsAgree) {
  Cluster cluster({.policy = {.max_batch = 8, .max_wait_s = 100e-6},
                   .num_devices = 4});
  const auto x = exact_scan_workload(128);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 20; ++i) {
    futs.push_back(cluster.submit(Request::cumsum(x, 16u << (i % 4))));
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  cluster.shutdown(ShutdownMode::Drain);

  const auto parts = cluster.per_device_metrics();
  ASSERT_EQ(parts.size(), 4u);
  std::uint64_t completed = 0;
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(parts[static_cast<std::size_t>(d)].device, d);
    completed += parts[static_cast<std::size_t>(d)].completed;
  }
  const auto m = cluster.metrics();
  EXPECT_EQ(m.device, -1);  // merged view is not one device's
  EXPECT_EQ(m.completed, completed);
  EXPECT_EQ(m.completed, 20u);
  EXPECT_EQ(m.submitted, 20u);  // front end + shards, counted once

  const std::string j = cluster.metrics_json();
  for (const char* key :
       {"\"merged\"", "\"devices\"", "\"cluster\"", "\"routed_affinity\"",
        "\"steals\"", "\"admission\"", "\"latency\"", "\"simulated\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(ServeCluster, DeviceStatsExposePerDeviceDegradation) {
  // A clean cluster after a drain: every device reports full core count
  // and zero failures; op calls land where the requests were served.
  Cluster cluster({.policy = {.max_batch = 8, .max_wait_s = 100e-6},
                   .num_devices = 2});
  const auto x = exact_scan_workload(128);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(cluster.submit(Request::cumsum(x)));
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  cluster.shutdown(ShutdownMode::Drain);
  std::uint64_t calls = 0;
  for (int d = 0; d < cluster.num_devices(); ++d) {
    const auto s = cluster.device(d).device_stats();
    EXPECT_EQ(s.active_cores, 20);
    EXPECT_EQ(s.op_failures, 0u);
    calls += s.op_calls;
  }
  EXPECT_GE(calls, 1u);
}

}  // namespace
}  // namespace ascend
