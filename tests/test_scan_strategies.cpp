// Functional tests of the alternative scan strategies (StreamScan and
// decoupled look-back) against the CPU reference and MCScan.
#include <gtest/gtest.h>

#include "kernels/mcscan.hpp"
#include "kernels/reference.hpp"
#include "kernels/scan_strategies.hpp"
#include "test_helpers.hpp"

namespace ascend::kernels {
namespace {

using acc::Device;
using StrategyFn = sim::Report (*)(Device&, acc::GlobalTensor<half>,
                                   acc::GlobalTensor<float>, std::size_t,
                                   const StrategyOptions&);

struct Case {
  const char* name;
  StrategyFn fn;
};

class ScanStrategy
    : public ::testing::TestWithParam<std::tuple<Case, std::size_t, int>> {};

TEST_P(ScanStrategy, MatchesReferenceExactly) {
  const auto [c, n, blocks] = GetParam();
  Device dev;
  auto x = dev.upload(testing::exact_scan_workload(n, n * 13 + 1));
  auto y = dev.alloc<float>(n, -1.0f);
  c.fn(dev, x.tensor(), y.tensor(), n, {.blocks = blocks});
  const auto want =
      ref::inclusive_scan<half, float>(std::span<const half>(x.host()));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(y[i], want[i]) << c.name << " n=" << n << " blocks=" << blocks
                             << " i=" << i;
  }
}

const Case kCases[] = {
    {"stream_scan", &stream_scan},
    {"lookback_scan", &lookback_scan},
};

INSTANTIATE_TEST_SUITE_P(
    Shapes, ScanStrategy,
    ::testing::Combine(
        ::testing::ValuesIn(kCases),
        ::testing::Values<std::size_t>(1, 100, 8192, 8193, 70000, 500000),
        ::testing::Values(1, 3, 40)),
    [](const auto& ti) {
      return std::string(std::get<0>(ti.param).name) + "_n" +
             std::to_string(std::get<1>(ti.param)) + "_b" +
             std::to_string(std::get<2>(ti.param));
    });

TEST(ScanStrategyNoise, LookbackWithinFp32Tolerance) {
  const std::size_t n = 200000;
  Device dev;
  auto host = testing::noise_workload(n, 9);
  auto x = dev.upload(host);
  auto y = dev.alloc<float>(n, 0.0f);
  lookback_scan(dev, x.tensor(), y.tensor(), n, {});
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += double(float(host[i]));
    if (i % 997 == 0 || i == n - 1) EXPECT_NEAR(y[i], acc, 0.25) << i;
  }
}

TEST(ScanStrategyTiming, LookbackBeatsStreamScanAtScale) {
  const std::size_t n = 1 << 21;
  Device dev;
  auto x = dev.alloc<half>(n, half(0.0f));
  auto y = dev.alloc<float>(n, 0.0f);
  const double t_ss = stream_scan(dev, x.tensor(), y.tensor(), n, {}).time_s;
  const double t_lb = lookback_scan(dev, x.tensor(), y.tensor(), n, {}).time_s;
  // The serial GM-latency chain of StreamScan dominates at scale; the
  // look-back decouples it (the point of [36]).
  EXPECT_LT(t_lb, t_ss);
}

TEST(ScanStrategyTiming, McScanCompetitiveWithSinglePassStrategies) {
  const std::size_t n = 1 << 21;
  Device dev;
  auto x = dev.alloc<half>(n, half(0.0f));
  auto y = dev.alloc<float>(n, 0.0f);
  const double t_mc =
      mcscan<half, float>(dev, x.tensor(), y.tensor(), n, {}).time_s;
  const double t_lb = lookback_scan(dev, x.tensor(), y.tensor(), n, {}).time_s;
  // Neither should dominate by an order of magnitude; MCScan's win is
  // using the otherwise-idle cube cores.
  EXPECT_LT(t_mc, 5.0 * t_lb);
  EXPECT_LT(t_lb, 5.0 * t_mc);
}

}  // namespace
}  // namespace ascend::kernels
