// Pins the SIMD host verification path (kernels/vec_ref.hpp) against the
// scalar gold reference (kernels/reference.hpp): bit-identical results on
// integer-valued corpora — the exactness contract the serving benches rely
// on when they verify every response with vec_ref instead of ref.
#include "kernels/vec_ref.hpp"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/reference.hpp"
#include "test_helpers.hpp"

namespace ascend {
namespace {

std::vector<half> int_row(Rng& rng, std::size_t n, int lo, int hi) {
  std::vector<half> x(n);
  for (auto& v : x) {
    v = half(static_cast<float>(lo + static_cast<int>(rng.next_below(
                                         static_cast<std::uint64_t>(hi - lo)))));
  }
  return x;
}

TEST(VecRef, MatchesReferenceOnBitRows) {
  // The serving benches' workload: 0/1 rows across the sizes that exercise
  // every vector-block/tail split (all residues mod 8, plus long rows).
  Rng rng(11);
  for (std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{17},
        std::size_t{63}, std::size_t{128}, std::size_t{320},
        std::size_t{2048}}) {
    std::vector<half> x(n);
    for (auto& v : x) v = half(rng.bernoulli(0.5) ? 1.0f : 0.0f);
    const auto gold = ref::inclusive_scan<half, half>(x);
    const auto fast = vecref::inclusive_scan_f16(x);
    ASSERT_EQ(vecref::mismatch_count(std::span<const half>(gold),
                                     std::span<const half>(fast)),
              0u)
        << "n=" << n;
    const auto gold32 = ref::inclusive_scan<half, float>(x);
    const auto fast32 = vecref::inclusive_scan_f32(x);
    ASSERT_EQ(vecref::mismatch_count(std::span<const float>(gold32),
                                     std::span<const float>(fast32)),
              0u)
        << "n=" << n;
  }
}

TEST(VecRef, MatchesReferenceOnSmallSignedIntegers) {
  // Mixed-sign small integers: partial sums wander around zero, so this
  // also covers cancellation back to exact zero (the tree order must land
  // on the same +0.0 the sequential order does).
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.next_below(200);
    const auto x = int_row(rng, n, -8, 9);
    const auto gold = ref::inclusive_scan<half, half>(x);
    const auto fast = vecref::inclusive_scan_f16(x);
    ASSERT_EQ(vecref::mismatch_count(std::span<const half>(gold),
                                     std::span<const half>(fast)),
              0u)
        << "trial=" << trial << " n=" << n;
  }
}

TEST(VecRef, SegmentedMatchesScalarDefinition) {
  // y[i] = sum since the last flagged position; position 0 implicitly
  // starts a segment. Compare against a direct scalar evaluation of that
  // definition over random integer rows and random flags (including
  // adjacent flags = length-1 segments, and flagless tails crossing the
  // 8-lane boundary).
  Rng rng(37);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.next_below(300);
    const auto x = int_row(rng, n, 0, 5);
    std::vector<std::int8_t> flags(n, 0);
    for (auto& f : flags) f = rng.bernoulli(0.15) ? 1 : 0;
    flags[0] = 1;

    std::vector<float> gold(n);
    float acc = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      if (flags[i] != 0) acc = 0.0f;
      acc += static_cast<float>(x[i]);
      gold[i] = acc;
    }
    const auto fast = vecref::segmented_inclusive_scan(x, flags);
    ASSERT_EQ(vecref::mismatch_count(std::span<const float>(gold),
                                     std::span<const float>(fast)),
              0u)
        << "trial=" << trial << " n=" << n;
  }
}

TEST(VecRef, MismatchCountersSeeEveryDivergence) {
  std::vector<half> a = {half(1.0f), half(2.0f), half(0.0f)};
  std::vector<half> b = a;
  EXPECT_EQ(vecref::mismatch_count(std::span<const half>(a),
                                   std::span<const half>(b)),
            0u);
  b[1] = half(3.0f);
  EXPECT_EQ(vecref::mismatch_count(std::span<const half>(a),
                                   std::span<const half>(b)),
            1u);
  // Bit-level: -0.0 differs from +0.0 even though they compare ==.
  b[1] = a[1];
  b[2] = half(-0.0f);
  EXPECT_EQ(vecref::mismatch_count(std::span<const half>(a),
                                   std::span<const half>(b)),
            1u);
  // Length differences count every absent element.
  b.pop_back();
  b.pop_back();
  EXPECT_EQ(vecref::mismatch_count(std::span<const half>(a),
                                   std::span<const half>(b)),
            2u);
}

TEST(VecRef, VerifyHelpersAccumulate) {
  Rng rng(5);
  vecref::VerifyStats stats;
  std::vector<half> x(100);
  for (auto& v : x) v = half(rng.bernoulli(0.5) ? 1.0f : 0.0f);
  const auto good = ref::inclusive_scan<half, half>(x);
  vecref::verify_cumsum(x, good, stats);
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.elements, 100u);
  EXPECT_TRUE(stats.clean());

  auto bad = good;
  bad[50] = half(float(bad[50]) + 1.0f);
  vecref::verify_cumsum(x, bad, stats);
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.mismatches, 1u);
  EXPECT_FALSE(stats.clean());

  vecref::VerifyStats other;
  other.requests = 3;
  other.elements = 7;
  other.mismatches = 2;
  stats.merge(other);
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.mismatches, 3u);
}

}  // namespace
}  // namespace ascend
