// Failure-injection tests: every misuse of the programming model or the
// operator APIs must fail loudly (throw) rather than corrupt state, and a
// failing sub-core must never deadlock its siblings.
#include <atomic>

#include <gtest/gtest.h>

#include "ascendc/ascendc.hpp"
#include "core/ascan.hpp"
#include "sim/executor.hpp"
#include "kernels/mcscan.hpp"
#include "kernels/radix_sort.hpp"
#include "kernels/sampling.hpp"
#include "kernels/segmented_scan.hpp"
#include "kernels/split.hpp"
#include "kernels/topk.hpp"
#include "test_helpers.hpp"

namespace ascend {
namespace {

using acc::Device;
using acc::KernelContext;
using acc::LaunchMode;
using acc::TPosition;

sim::MachineConfig small_cfg() {
  auto cfg = sim::MachineConfig::ascend_910b4();
  cfg.num_ai_cores = 2;
  return cfg;
}

TEST(FailureInjection, ThrowBeforeSyncAllDoesNotDeadlockSiblings) {
  Device dev(small_cfg());
  std::atomic<int> reached{0};
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 2, .mode = LaunchMode::Mix},
                  [&](KernelContext& c) {
                    if (c.is_cube() && c.GetBlockIdx() == 0) {
                      throw Error("boom");
                    }
                    ++reached;
                    c.SyncAll();  // must be poisoned, not hang
                    ++reached;
                  }),
      Error);
  // The five surviving sub-cores (2 blocks x 3 minus the thrower) reached
  // the barrier and were released by the poison; none of them completed
  // the epilogue (the barrier can never complete with a dead member).
  EXPECT_EQ(reached.load(), 5);
}

TEST(FailureInjection, ThrowBeforeFlagSetPoisonsWaiters) {
  Device dev(small_cfg());
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 1, .mode = LaunchMode::Mix},
                  [&](KernelContext& c) {
                    auto& f = c.shared().flags("never_set", 1);
                    if (c.is_cube()) throw Error("producer died");
                    if (c.GetSubBlockIdx() == 0) f.wait(c, 0);  // poisoned
                  }),
      Error);
}

TEST(FailureInjection, ScratchpadOverflowInsideKernel) {
  Device dev(small_cfg());
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
                  [&](KernelContext& c) {
                    acc::TPipe pipe(c);
                    acc::TBuf b(c, TPosition::VECCALC);
                    pipe.InitBuffer(b, dev.config().ub_bytes + 1);
                  }),
      Error);
}

TEST(FailureInjection, L0OverflowOnCubeCore) {
  Device dev(small_cfg());
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 1, .mode = LaunchMode::CubeOnly},
                  [&](KernelContext& c) {
                    acc::TPipe pipe(c);
                    acc::TQue q(c, TPosition::A2);
                    pipe.InitBuffer(q, 3, 32 << 10);  // 96K > 64K L0A
                  }),
      Error);
}

TEST(FailureInjection, DataCopyOutOfRange) {
  Device dev(small_cfg());
  auto x = dev.alloc<half>(64, half(0.0f));
  auto xt = x.tensor();
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
                  [&](KernelContext& c) {
                    acc::TPipe pipe(c);
                    acc::TBuf b(c, TPosition::VECIN);
                    pipe.InitBuffer(b, 64);
                    auto t = b.Get<half>();
                    acc::DataCopy(c, t, xt, 65);  // src too small
                  }),
      Error);
}

TEST(FailureInjection, GatherIndexOutOfRange) {
  Device dev(small_cfg());
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
                  [&](KernelContext& c) {
                    acc::TPipe pipe(c);
                    acc::TBuf sb(c, TPosition::VECCALC),
                        ib(c, TPosition::VECCALC), db(c, TPosition::VECCALC);
                    pipe.InitBuffer(sb, 64);
                    pipe.InitBuffer(ib, 64);
                    pipe.InitBuffer(db, 64);
                    auto src = sb.Get<float>();
                    auto idx = ib.Get<std::int32_t>();
                    auto dst = db.Get<float>();
                    idx[0] = 1000;  // out of range
                    acc::Gather(c, dst, src, idx, 1);
                  }),
      Error);
}

TEST(FailureInjection, DoubleDeQueOnEmptyQueue) {
  Device dev(small_cfg());
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
                  [&](KernelContext& c) {
                    acc::TPipe pipe(c);
                    acc::TQue q(c, TPosition::VECIN);
                    pipe.InitBuffer(q, 1, 64);
                    (void)q.DeQue<half>();  // nothing enqueued
                  }),
      Error);
}

TEST(FailureInjection, ForeignTensorReturnedToQueue) {
  Device dev(small_cfg());
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
                  [&](KernelContext& c) {
                    acc::TPipe pipe(c);
                    acc::TQue q1(c, TPosition::VECIN), q2(c, TPosition::VECIN);
                    pipe.InitBuffer(q1, 1, 64);
                    pipe.InitBuffer(q2, 1, 64);
                    auto t = q1.AllocTensor<half>();
                    q2.FreeTensor(t);  // wrong queue
                  }),
      Error);
}

// --- Operator argument validation across the public kernels ----------------

TEST(FailureInjection, OperatorsRejectUndersizedOutputs) {
  Device dev;
  auto x = dev.alloc<half>(100, half(0.0f));
  auto small_f = dev.alloc<float>(10);
  auto small_h = dev.alloc<half>(10);
  auto small_i = dev.alloc<std::int32_t>(10);
  auto mask = dev.alloc<std::int8_t>(100, std::int8_t{1});

  EXPECT_THROW((kernels::mcscan<half, float>(dev, x.tensor(),
                                             small_f.tensor(), 100, {})),
               Error);
  EXPECT_THROW(kernels::radix_sort_f16(dev, x.tensor(), small_h.tensor(),
                                       small_i.tensor(), 100, {}),
               Error);
  EXPECT_THROW(kernels::split_ind<half>(dev, x.tensor(), {}, mask.tensor(),
                                        small_h.tensor(), small_i.tensor(),
                                        100, {}),
               Error);
  EXPECT_THROW(kernels::segmented_scan(dev, x.tensor(), mask.tensor(),
                                       small_f.tensor(), 100, {}),
               Error);
}

TEST(FailureInjection, SamplersRejectBadParameters) {
  Device dev;
  auto probs = dev.alloc<half>(16, half(0.0625f));
  EXPECT_THROW(kernels::top_p_sample(dev, probs.tensor(), 16, 0.0, 0.5, {}),
               Error);  // p = 0
  EXPECT_THROW(kernels::top_p_sample(dev, probs.tensor(), 16, 1.5, 0.5, {}),
               Error);  // p > 1
  EXPECT_THROW(kernels::top_p_sample(dev, probs.tensor(), 16, 0.9, 1.0, {}),
               Error);  // u = 1
  EXPECT_THROW(kernels::top_p_sample(dev, probs.tensor(), 0, 0.9, 0.5, {}),
               Error);  // empty
  auto zeros = dev.alloc<half>(8, half(0.0f));
  EXPECT_THROW(kernels::weighted_sample(dev, zeros.tensor(), 8, 0.5, {}),
               Error);  // zero total weight
}

TEST(FailureInjection, DeviceStateUnchangedAfterRejectedCall) {
  Device dev;
  auto x = dev.alloc<half>(64, half(2.0f));
  auto y = dev.alloc<float>(64, -7.0f);
  EXPECT_THROW(
      (kernels::mcscan<half, float>(dev, x.tensor(), y.tensor(), 64,
                                    {.s = 99})),
      Error);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(y[i], -7.0f) << "output touched by rejected call";
  }
  // The device still works after the failure.
  kernels::mcscan<half, float>(dev, x.tensor(), y.tensor(), 64, {});
  EXPECT_EQ(y[63], 128.0f);
}

// --- Fault-plan determinism ------------------------------------------------

TEST(FailureInjection, InjectorDecisionsAreAPureHashOfTheirKey) {
  sim::FaultPlan p;
  p.seed = 7;
  p.mte_transient_rate = 0.1;
  p.ecc_single_rate = 0.05;
  p.ecc_double_rate = 0.02;
  p.hang_rate = 0.02;
  p.throttle_rate = 0.3;
  sim::FaultInjector a(p), b(p);
  bool any_fault = false, any_throttle = false;
  for (std::uint64_t launch = 0; launch < 4; ++launch) {
    for (std::uint32_t sub = 0; sub < 12; ++sub) {
      EXPECT_EQ(a.clock_scale(launch, sub), b.clock_scale(launch, sub));
      any_throttle |= a.clock_scale(launch, sub) != 1.0;
      for (std::uint32_t ord = 0; ord < 64; ++ord) {
        const auto fa = a.transfer_fault(launch, sub, ord);
        EXPECT_EQ(fa, b.transfer_fault(launch, sub, ord));
        any_fault |= fa != sim::FaultKind::None;
      }
    }
  }
  EXPECT_TRUE(any_fault);
  EXPECT_TRUE(any_throttle);
}

TEST(FailureInjection, SameFaultPlanSeedProducesIdenticalReports) {
  const auto x = testing::exact_scan_workload(2048, 21);
  auto run_once = [&x](bool& faulted) {
    auto cfg = small_cfg();
    cfg.num_ai_cores = 4;
    ascan::Session s(cfg);
    sim::FaultPlan p;
    p.seed = 42;
    p.mte_transient_rate = 0.01;
    p.ecc_single_rate = 0.01;
    p.hang_rate = 0.002;
    p.throttle_rate = 0.3;
    s.set_fault_plan(p);
    s.set_retry_policy({.max_attempts = 2, .max_core_exclusions = 1});
    try {
      faulted = false;
      return s.cumsum(x).report;
    } catch (const sim::FaultError& e) {
      faulted = true;
      return e.attempt_report();
    }
  };
  bool f1 = false, f2 = false;
  const sim::Report r1 = run_once(f1);
  const sim::Report r2 = run_once(f2);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(r1.mte_faults, r2.mte_faults);
  EXPECT_EQ(r1.ecc_single, r2.ecc_single);
  EXPECT_EQ(r1.ecc_double, r2.ecc_double);
  EXPECT_EQ(r1.hangs, r2.hangs);
  EXPECT_EQ(r1.throttled_subcores, r2.throttled_subcores);
  EXPECT_EQ(r1.retries, r2.retries);
  EXPECT_EQ(r1.excluded_cores, r2.excluded_cores);
  EXPECT_EQ(r1.launches, r2.launches);
  EXPECT_DOUBLE_EQ(r1.time_s, r2.time_s);
  EXPECT_DOUBLE_EQ(r1.backoff_s, r2.backoff_s);
}

TEST(FailureInjection, JitteredBackoffIsSeededAndExecutorInvariant) {
  // Backoff jitter de-synchronizes a retry herd but must stay a pure
  // function of (jitter_seed, call ordinal, retry ordinal): bit-identical
  // across runs and across host executors, never dependent on thread
  // scheduling or wall clock.
  const auto x = testing::exact_scan_workload(2048, 31);
  auto run_once = [&x](sim::ExecutorMode mode, double jitter,
                       std::uint64_t jitter_seed) {
    auto cfg = small_cfg();
    cfg.num_ai_cores = 4;
    cfg.executor = mode;
    ascan::Session s(cfg);
    sim::FaultPlan p;
    p.seed = 42;
    p.mte_transient_rate = 0.01;
    s.set_fault_plan(p);
    s.set_retry_policy({.max_attempts = 4,
                        .backoff_s = 20e-6,
                        .backoff_jitter = jitter,
                        .jitter_seed = jitter_seed});
    for (int i = 0; i < 4; ++i) {
      try {
        (void)s.cumsum(x);
      } catch (const sim::FaultError&) {
        // Exhausted budgets stay part of the deterministic record.
      }
    }
    return s.cumulative_retry_stats();
  };

  const auto a = run_once(sim::ExecutorMode::Spawn, 0.5, 7);
  const auto b = run_once(sim::ExecutorMode::Spawn, 0.5, 7);
  const auto c = run_once(sim::ExecutorMode::Pool, 0.5, 7);
  ASSERT_GE(a.retries, 1u) << "plan never exercised the backoff path";
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_DOUBLE_EQ(a.backoff_s, b.backoff_s);  // same seed, same run
  EXPECT_EQ(a.attempts, c.attempts);
  EXPECT_EQ(a.retries, c.retries);
  EXPECT_DOUBLE_EQ(a.backoff_s, c.backoff_s);  // executor-invariant

  // A different jitter seed moves the delays (the fault sequence itself is
  // the fault plan's business and stays put)...
  const auto d = run_once(sim::ExecutorMode::Spawn, 0.5, 8);
  EXPECT_EQ(a.retries, d.retries);
  EXPECT_NE(a.backoff_s, d.backoff_s);
  // ...and zero jitter reproduces the legacy fixed doubling, bounded by
  // the jittered run's [1 -/+ 0.5] envelope.
  const auto e = run_once(sim::ExecutorMode::Spawn, 0.0, 7);
  EXPECT_EQ(a.retries, e.retries);
  EXPECT_GE(a.backoff_s, 0.5 * e.backoff_s);
  EXPECT_LE(a.backoff_s, 1.5 * e.backoff_s);
  EXPECT_NE(a.backoff_s, e.backoff_s);
}

TEST(FailureInjection, DifferentSeedsProduceDifferentFaultSequences) {
  sim::FaultPlan p;
  p.mte_transient_rate = 0.1;
  p.hang_rate = 0.1;
  p.seed = 1;
  sim::FaultInjector a(p);
  p.seed = 2;
  sim::FaultInjector b(p);
  int differing = 0;
  for (std::uint32_t ord = 0; ord < 256; ++ord) {
    differing += a.transfer_fault(0, 0, ord) != b.transfer_fault(0, 0, ord);
  }
  EXPECT_GT(differing, 0);
}

// --- ascan::Session argument validation ------------------------------------

TEST(FailureInjection, SessionRejectsEmptyInputs) {
  ascan::Session s(small_cfg());
  EXPECT_THROW(s.cumsum({}), Error);
  EXPECT_THROW(s.cumsum_f16({}, {.algo = ascan::ScanAlgo::ScanU}), Error);
  EXPECT_THROW(s.cumsum_i8({}), Error);
  EXPECT_THROW(s.cumsum_batched({}, 0, 0), Error);
  EXPECT_THROW(s.clone({}), Error);
  EXPECT_THROW(s.split({}, {}), Error);
  EXPECT_THROW(s.masked_select({}, {}), Error);
  EXPECT_THROW(s.sort({}), Error);
  EXPECT_THROW(s.topk({}, 1), Error);
  EXPECT_THROW(s.top_p_sample({}, 0.9, 0.5), Error);
  EXPECT_THROW(s.multinomial({}, 0.5), Error);
  EXPECT_THROW(s.top_p_sample_batch({}, 0, 0, 0.9, {}), Error);
  EXPECT_THROW(s.segmented_cumsum({}, {}), Error);
  EXPECT_THROW(s.reduce({}), Error);
}

TEST(FailureInjection, SessionRejectsShapeMismatches) {
  ascan::Session s(small_cfg());
  const auto x = testing::exact_scan_workload(64, 23);
  EXPECT_THROW(s.split(x, std::vector<std::int8_t>(32, 1)), Error);
  EXPECT_THROW(s.masked_select(x, std::vector<std::int8_t>(32, 1)), Error);
  EXPECT_THROW(s.segmented_cumsum(x, std::vector<std::int8_t>(32, 0)),
               Error);
  EXPECT_THROW(s.cumsum_batched(x, 4, 32), Error);  // 4*32 != 64
  EXPECT_THROW(s.top_p_sample_batch(x, 4, 32, 0.9, {0.5, 0.5}), Error);
}

TEST(FailureInjection, SessionRejectsMoreBlocksThanCores) {
  ascan::Session s(small_cfg());  // 2 AI cores
  const auto x = testing::exact_scan_workload(256, 25);
  EXPECT_THROW(s.cumsum(x, {.blocks = 3}), Error);
}

TEST(FailureInjection, SessionRejectsInvalidTileSizes) {
  ascan::Session s(small_cfg());
  const auto x = testing::exact_scan_workload(256, 27);
  EXPECT_THROW(s.cumsum(x, {.tile = 99}), Error);
  EXPECT_THROW(s.cumsum_f16(x, {.algo = ascan::ScanAlgo::ScanU, .tile = 48}),
               Error);
  EXPECT_THROW(s.sort(x, false, ascan::SortAlgo::Radix, 31), Error);
}

TEST(FailureInjection, SessionRejectsOutOfRangeTopK) {
  ascan::Session s(small_cfg());
  const auto x = testing::exact_scan_workload(64, 29);
  EXPECT_THROW(s.topk(x, 0), Error);
  EXPECT_THROW(s.topk(x, 65), Error);
}

}  // namespace
}  // namespace ascend
