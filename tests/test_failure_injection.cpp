// Failure-injection tests: every misuse of the programming model or the
// operator APIs must fail loudly (throw) rather than corrupt state, and a
// failing sub-core must never deadlock its siblings.
#include <atomic>

#include <gtest/gtest.h>

#include "ascendc/ascendc.hpp"
#include "kernels/mcscan.hpp"
#include "kernels/radix_sort.hpp"
#include "kernels/sampling.hpp"
#include "kernels/segmented_scan.hpp"
#include "kernels/split.hpp"
#include "kernels/topk.hpp"
#include "test_helpers.hpp"

namespace ascend {
namespace {

using acc::Device;
using acc::KernelContext;
using acc::LaunchMode;
using acc::TPosition;

sim::MachineConfig small_cfg() {
  auto cfg = sim::MachineConfig::ascend_910b4();
  cfg.num_ai_cores = 2;
  return cfg;
}

TEST(FailureInjection, ThrowBeforeSyncAllDoesNotDeadlockSiblings) {
  Device dev(small_cfg());
  std::atomic<int> reached{0};
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 2, .mode = LaunchMode::Mix},
                  [&](KernelContext& c) {
                    if (c.is_cube() && c.GetBlockIdx() == 0) {
                      throw Error("boom");
                    }
                    ++reached;
                    c.SyncAll();  // must be poisoned, not hang
                    ++reached;
                  }),
      Error);
  // The five surviving sub-cores (2 blocks x 3 minus the thrower) reached
  // the barrier and were released by the poison; none of them completed
  // the epilogue (the barrier can never complete with a dead member).
  EXPECT_EQ(reached.load(), 5);
}

TEST(FailureInjection, ThrowBeforeFlagSetPoisonsWaiters) {
  Device dev(small_cfg());
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 1, .mode = LaunchMode::Mix},
                  [&](KernelContext& c) {
                    auto& f = c.shared().flags("never_set", 1);
                    if (c.is_cube()) throw Error("producer died");
                    if (c.GetSubBlockIdx() == 0) f.wait(c, 0);  // poisoned
                  }),
      Error);
}

TEST(FailureInjection, ScratchpadOverflowInsideKernel) {
  Device dev(small_cfg());
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
                  [&](KernelContext& c) {
                    acc::TPipe pipe(c);
                    acc::TBuf b(c, TPosition::VECCALC);
                    pipe.InitBuffer(b, dev.config().ub_bytes + 1);
                  }),
      Error);
}

TEST(FailureInjection, L0OverflowOnCubeCore) {
  Device dev(small_cfg());
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 1, .mode = LaunchMode::CubeOnly},
                  [&](KernelContext& c) {
                    acc::TPipe pipe(c);
                    acc::TQue q(c, TPosition::A2);
                    pipe.InitBuffer(q, 3, 32 << 10);  // 96K > 64K L0A
                  }),
      Error);
}

TEST(FailureInjection, DataCopyOutOfRange) {
  Device dev(small_cfg());
  auto x = dev.alloc<half>(64, half(0.0f));
  auto xt = x.tensor();
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
                  [&](KernelContext& c) {
                    acc::TPipe pipe(c);
                    acc::TBuf b(c, TPosition::VECIN);
                    pipe.InitBuffer(b, 64);
                    auto t = b.Get<half>();
                    acc::DataCopy(c, t, xt, 65);  // src too small
                  }),
      Error);
}

TEST(FailureInjection, GatherIndexOutOfRange) {
  Device dev(small_cfg());
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
                  [&](KernelContext& c) {
                    acc::TPipe pipe(c);
                    acc::TBuf sb(c, TPosition::VECCALC),
                        ib(c, TPosition::VECCALC), db(c, TPosition::VECCALC);
                    pipe.InitBuffer(sb, 64);
                    pipe.InitBuffer(ib, 64);
                    pipe.InitBuffer(db, 64);
                    auto src = sb.Get<float>();
                    auto idx = ib.Get<std::int32_t>();
                    auto dst = db.Get<float>();
                    idx[0] = 1000;  // out of range
                    acc::Gather(c, dst, src, idx, 1);
                  }),
      Error);
}

TEST(FailureInjection, DoubleDeQueOnEmptyQueue) {
  Device dev(small_cfg());
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
                  [&](KernelContext& c) {
                    acc::TPipe pipe(c);
                    acc::TQue q(c, TPosition::VECIN);
                    pipe.InitBuffer(q, 1, 64);
                    (void)q.DeQue<half>();  // nothing enqueued
                  }),
      Error);
}

TEST(FailureInjection, ForeignTensorReturnedToQueue) {
  Device dev(small_cfg());
  EXPECT_THROW(
      acc::launch(dev, {.block_dim = 1, .mode = LaunchMode::VectorOnly},
                  [&](KernelContext& c) {
                    acc::TPipe pipe(c);
                    acc::TQue q1(c, TPosition::VECIN), q2(c, TPosition::VECIN);
                    pipe.InitBuffer(q1, 1, 64);
                    pipe.InitBuffer(q2, 1, 64);
                    auto t = q1.AllocTensor<half>();
                    q2.FreeTensor(t);  // wrong queue
                  }),
      Error);
}

// --- Operator argument validation across the public kernels ----------------

TEST(FailureInjection, OperatorsRejectUndersizedOutputs) {
  Device dev;
  auto x = dev.alloc<half>(100, half(0.0f));
  auto small_f = dev.alloc<float>(10);
  auto small_h = dev.alloc<half>(10);
  auto small_i = dev.alloc<std::int32_t>(10);
  auto mask = dev.alloc<std::int8_t>(100, std::int8_t{1});

  EXPECT_THROW((kernels::mcscan<half, float>(dev, x.tensor(),
                                             small_f.tensor(), 100, {})),
               Error);
  EXPECT_THROW(kernels::radix_sort_f16(dev, x.tensor(), small_h.tensor(),
                                       small_i.tensor(), 100, {}),
               Error);
  EXPECT_THROW(kernels::split_ind<half>(dev, x.tensor(), {}, mask.tensor(),
                                        small_h.tensor(), small_i.tensor(),
                                        100, {}),
               Error);
  EXPECT_THROW(kernels::segmented_scan(dev, x.tensor(), mask.tensor(),
                                       small_f.tensor(), 100, {}),
               Error);
}

TEST(FailureInjection, SamplersRejectBadParameters) {
  Device dev;
  auto probs = dev.alloc<half>(16, half(0.0625f));
  EXPECT_THROW(kernels::top_p_sample(dev, probs.tensor(), 16, 0.0, 0.5, {}),
               Error);  // p = 0
  EXPECT_THROW(kernels::top_p_sample(dev, probs.tensor(), 16, 1.5, 0.5, {}),
               Error);  // p > 1
  EXPECT_THROW(kernels::top_p_sample(dev, probs.tensor(), 16, 0.9, 1.0, {}),
               Error);  // u = 1
  EXPECT_THROW(kernels::top_p_sample(dev, probs.tensor(), 0, 0.9, 0.5, {}),
               Error);  // empty
  auto zeros = dev.alloc<half>(8, half(0.0f));
  EXPECT_THROW(kernels::weighted_sample(dev, zeros.tensor(), 8, 0.5, {}),
               Error);  // zero total weight
}

TEST(FailureInjection, DeviceStateUnchangedAfterRejectedCall) {
  Device dev;
  auto x = dev.alloc<half>(64, half(2.0f));
  auto y = dev.alloc<float>(64, -7.0f);
  EXPECT_THROW(
      (kernels::mcscan<half, float>(dev, x.tensor(), y.tensor(), 64,
                                    {.s = 99})),
      Error);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(y[i], -7.0f) << "output touched by rejected call";
  }
  // The device still works after the failure.
  kernels::mcscan<half, float>(dev, x.tensor(), y.tensor(), 64, {});
  EXPECT_EQ(y[63], 128.0f);
}

}  // namespace
}  // namespace ascend
