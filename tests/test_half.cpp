// Unit tests for the IEEE binary16 implementation.
#include "common/half.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace ascend {
namespace {

TEST(Half, ZeroAndSignedZero) {
  EXPECT_EQ(half(0.0f).bits(), 0x0000u);
  EXPECT_EQ(half(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(float(half::from_bits(0x8000u)), 0.0f);
  EXPECT_TRUE(std::signbit(float(half::from_bits(0x8000u))));
}

TEST(Half, ExactSmallIntegers) {
  // All integers up to 2048 are exactly representable.
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(float(half(static_cast<float>(i))), static_cast<float>(i))
        << "i=" << i;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(half(1.0f).bits(), 0x3c00u);
  EXPECT_EQ(half(-2.0f).bits(), 0xc000u);
  EXPECT_EQ(half(0.5f).bits(), 0x3800u);
  EXPECT_EQ(half(65504.0f).bits(), 0x7bffu);  // max finite
  EXPECT_EQ(half(1.0f / 1024.0f / 16384.0f).bits(), 0x0001u);  // 2^-24 min sub
}

TEST(Half, RoundTripAllFiniteBitPatterns) {
  // Every finite half converts to float and back bit-exactly.
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const half h = half::from_bits(static_cast<std::uint16_t>(b));
    if (h.isnan()) continue;
    const half round_tripped = half(float(h));
    EXPECT_EQ(round_tripped.bits(), h.bits()) << "bits=" << b;
  }
}

TEST(Half, NanPropagation) {
  const half qnan = half::quiet_nan();
  EXPECT_TRUE(qnan.isnan());
  EXPECT_TRUE(std::isnan(float(qnan)));
  EXPECT_TRUE(half(std::numeric_limits<float>::quiet_NaN()).isnan());
  EXPECT_FALSE(qnan == qnan);  // NaN compares unequal to itself
}

TEST(Half, InfinityBehaviour) {
  EXPECT_TRUE(half::infinity().isinf());
  EXPECT_EQ(float(half::infinity()), std::numeric_limits<float>::infinity());
  // Overflow on conversion saturates to infinity.
  EXPECT_TRUE(half(1e6f).isinf());
  EXPECT_TRUE(half(-1e6f).isinf());
  EXPECT_TRUE(half(65520.0f).isinf());   // rounds up to inf (tie to even)
  EXPECT_EQ(half(65519.0f).bits(), 0x7bffu);  // rounds down to max finite
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10: ties to even (1.0).
  EXPECT_EQ(half(1.0f + 0x1.0p-11f).bits(), half(1.0f).bits());
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even.
  EXPECT_EQ(half(1.0f + 3 * 0x1.0p-11f).bits(),
            half(1.0f + 0x1.0p-9f).bits());
  // Slightly above halfway rounds up.
  EXPECT_EQ(half(1.0f + 0x1.1p-11f).bits(), half(1.0f + 0x1.0p-10f).bits());
}

TEST(Half, Subnormals) {
  const float min_sub = 0x1.0p-24f;
  EXPECT_EQ(half(min_sub).bits(), 0x0001u);
  EXPECT_EQ(float(half::from_bits(0x0001u)), min_sub);
  // Largest subnormal: (1023/1024) * 2^-14.
  const float max_sub = 1023.0f / 1024.0f * 0x1.0p-14f;
  EXPECT_EQ(half(max_sub).bits(), 0x03ffu);
  // Values below half the minimum subnormal flush to zero.
  EXPECT_EQ(half(0x1.0p-26f).bits(), 0x0000u);
  // Halfway between 0 and min subnormal: ties to even (zero).
  EXPECT_EQ(half(0x1.0p-25f).bits(), 0x0000u);
  // Just above halfway rounds up to the min subnormal.
  EXPECT_EQ(half(0x1.2p-25f).bits(), 0x0001u);
}

TEST(Half, Arithmetic) {
  EXPECT_EQ(float(half(1.5f) + half(2.25f)), 3.75f);
  EXPECT_EQ(float(half(2.0f) * half(3.0f)), 6.0f);
  EXPECT_EQ(float(half(7.0f) - half(2.0f)), 5.0f);
  EXPECT_EQ(float(half(8.0f) / half(2.0f)), 4.0f);
  EXPECT_EQ(float(-half(3.0f)), -3.0f);
  half h(1.0f);
  h += half(1.0f);
  EXPECT_EQ(float(h), 2.0f);
}

TEST(Half, ArithmeticRoundsResult) {
  // 2048 + 1 is not representable (spacing is 2 at that magnitude): RNE
  // keeps 2048.
  EXPECT_EQ(float(half(2048.0f) + half(1.0f)), 2048.0f);
  // 2049 rounds to 2048 on conversion already.
  EXPECT_EQ(float(half(2049.0f)), 2048.0f);
  EXPECT_EQ(float(half(2051.0f)), 2052.0f);
}

TEST(Half, Comparisons) {
  EXPECT_LT(half(1.0f), half(2.0f));
  EXPECT_GT(half(2.0f), half(-3.0f));
  EXPECT_LE(half(2.0f), half(2.0f));
  EXPECT_EQ(half(0.0f), half(-0.0f));  // +0 == -0
}

TEST(Half, ComparisonConsistentWithFloatForRandomPairs) {
  // half's operators must agree with the float promotion semantics for
  // every non-NaN pair (sampled).
  std::uint32_t state = 0x1234567u;
  auto next = [&] {
    state = state * 1664525u + 1013904223u;
    return static_cast<std::uint16_t>(state >> 16);
  };
  for (int i = 0; i < 50000; ++i) {
    const half a = half::from_bits(next());
    const half b = half::from_bits(next());
    if (a.isnan() || b.isnan()) continue;
    EXPECT_EQ(a < b, float(a) < float(b));
    EXPECT_EQ(a == b, float(a) == float(b));
    EXPECT_EQ(a <= b, float(a) <= float(b));
  }
}

TEST(Half, AdditionCommutesAndNegationInverts) {
  std::uint32_t state = 99u;
  auto next = [&] {
    state = state * 1664525u + 1013904223u;
    return static_cast<std::uint16_t>(state >> 16);
  };
  for (int i = 0; i < 20000; ++i) {
    const half a = half::from_bits(next());
    const half b = half::from_bits(next());
    if (a.isnan() || b.isnan() || a.isinf() || b.isinf()) continue;
    EXPECT_EQ((a + b).bits(), (b + a).bits());
    EXPECT_EQ((-(-a)).bits(), a.bits());
  }
}

TEST(Half, EpsilonAndLimits) {
  EXPECT_EQ(float(half::epsilon()), 0x1.0p-10f);
  EXPECT_EQ(float(half::max()), 65504.0f);
  EXPECT_EQ(float(half::lowest()), -65504.0f);
}

// --- hardware / portable conversion equivalence -----------------------------
//
// half.hpp routes conversions through F16C when available, with the portable
// bit-twiddling code as fallback. The two must be indistinguishable: the
// half<->float boundary is crossed by every emulated lane, so a single
// divergent bit pattern would make results depend on the build host. These
// sweeps pin bit-equivalence (NaN payloads and quieting included), whether or
// not the hardware path is compiled in — on a non-F16C build both names alias
// the portable path and the sweeps degenerate to self-consistency.

TEST(HalfHwSw, ExhaustiveHalfToFloat) {
  // All 65536 half patterns, compared as float *bits* so NaN payloads and
  // signed zeros are distinguished (EXPECT_EQ on float would treat every
  // NaN pair as a failure and +0/-0 as equal).
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const auto h = static_cast<std::uint16_t>(b);
    const std::uint32_t hw = detail::float_bits(detail::half_bits_to_float(h));
    const std::uint32_t sw =
        detail::float_bits(detail::half_bits_to_float_portable(h));
    ASSERT_EQ(hw, sw) << "half bits=0x" << std::hex << b;
  }
}

TEST(HalfHwSw, ExhaustiveHalfToFloatQuietensSignalingNan) {
  // IEEE convertFormat quietens signaling NaNs: both paths must set the
  // float quiet bit for every half NaN (VCVTPH2PS does; the portable path
  // mirrors it).
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const half h = half::from_bits(static_cast<std::uint16_t>(b));
    if (!h.isnan()) continue;
    const std::uint32_t f = detail::float_bits(float(h));
    EXPECT_EQ(f & 0x00400000u, 0x00400000u) << "half bits=0x" << std::hex << b;
  }
}

TEST(HalfHwSw, StratifiedFloatToHalf) {
  // Full 2^32 is too slow for a unit test; stratify instead. The strata are
  // chosen where float->half rounding changes regime: exactly-representable
  // halves, round-to-nearest-even ties, the subnormal range, the
  // overflow/underflow boundaries, inf/NaN payloads, and a pseudo-random
  // sample of the remaining space. (The full sweep was run once out of
  // band: zero mismatches over all 4.3e9 patterns.)
  const auto check = [](std::uint32_t fb) {
    const float f = detail::bits_float(fb);
    ASSERT_EQ(detail::float_to_half_bits(f),
              detail::float_to_half_bits_portable(f))
        << "float bits=0x" << std::hex << fb;
  };
  // Every half value widened, nudged one float-ulp each way (rounding
  // boundaries around representable points), and halfway patterns.
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const std::uint32_t fb = detail::float_bits(
        detail::half_bits_to_float_portable(static_cast<std::uint16_t>(b)));
    check(fb);
    check(fb + 1);
    check(fb - 1);
    check(fb ^ 0x1000u);  // flip the RNE tie bit for normals
  }
  // Overflow boundary (65504..65520..inf) and the subnormal/zero boundary.
  for (std::uint32_t fb = 0x477fe000u; fb <= 0x47800800u; ++fb) check(fb);
  for (std::uint32_t fb = 0x33000000u - 0x800u; fb <= 0x33000000u + 0x800u;
       ++fb) {
    check(fb);
    check(fb | 0x80000000u);
  }
  // Float NaN payload handling (quiet + signaling, both signs).
  for (std::uint32_t m = 1; m <= 0x007fffffu; m += 0x1357u) {
    check(0x7f800000u | m);
    check(0xff800000u | m);
  }
  // Pseudo-random remainder of the space (deterministic LCG).
  std::uint32_t state = 0xdecafbadu;
  for (int i = 0; i < 300000; ++i) {
    state = state * 1664525u + 1013904223u;
    check(state);
  }
}

TEST(HalfHwSw, BulkConvertersMatchScalar) {
  // half_to_float_n / float_to_half_n take the 8-lane VCVT path for the
  // vectorizable body and the scalar path for the tail; both must agree
  // with element-by-element conversion at every position, including across
  // the 8-lane seam and for NaN payloads.
  constexpr std::size_t kN = 1027;  // not a multiple of 8: exercises the tail
  std::uint32_t state = 0xace1u;
  const auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return static_cast<std::uint16_t>(state >> 16);
  };
  std::vector<half> hs(kN);
  for (auto& h : hs) h = half::from_bits(next());
  hs[0] = half::from_bits(0x7c01u);  // signaling NaN in the vector body
  hs[kN - 1] = half::from_bits(0xfdffu);  // NaN in the scalar tail

  std::vector<float> widened(kN);
  half_to_float_n(hs.data(), widened.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(detail::float_bits(widened[i]),
              detail::float_bits(static_cast<float>(hs[i])))
        << "i=" << i;
  }

  std::vector<half> narrowed(kN);
  float_to_half_n(widened.data(), narrowed.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(narrowed[i].bits(), half(widened[i]).bits()) << "i=" << i;
  }
}

}  // namespace
}  // namespace ascend
