// Tests for the discrete-event scheduler, using hand-built traces.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

namespace ascend::sim {
namespace {

class TraceFixture {
 public:
  TraceFixture(int subcores, const MachineConfig& cfg) : cfg_(cfg) {
    trace_.per_subcore.resize(static_cast<std::size_t>(subcores));
    trace_.is_cube_subcore.assign(static_cast<std::size_t>(subcores), false);
  }

  std::uint32_t compute(int subcore, EngineKind eng, double cycles,
                        std::initializer_list<std::uint32_t> deps = {}) {
    TraceOp op;
    op.id = next_id_++;
    op.engine = eng;
    op.kind = TraceOp::Kind::Compute;
    op.cycles = cycles;
    for (auto d : deps) op.add_dep(d);
    trace_.per_subcore[static_cast<std::size_t>(subcore)].push_back(op);
    return op.id;
  }

  std::uint32_t transfer(int subcore, EngineKind eng, std::uint64_t bytes,
                         std::initializer_list<std::uint32_t> deps = {}) {
    TraceOp op;
    op.id = next_id_++;
    op.engine = eng;
    op.kind = TraceOp::Kind::Transfer;
    op.cycles = cfg_.mte_issue_cycles;
    op.bytes = bytes;
    op.gm_addr = 0;  // disable L2 modelling in unit tests
    for (auto d : deps) op.add_dep(d);
    trace_.per_subcore[static_cast<std::size_t>(subcore)].push_back(op);
    return op.id;
  }

  std::uint32_t barrier(int subcore, std::uint32_t epoch) {
    TraceOp op;
    op.id = next_id_++;
    op.engine = EngineKind::Scalar;
    op.kind = TraceOp::Kind::Barrier;
    op.barrier_epoch = epoch;
    trace_.per_subcore[static_cast<std::size_t>(subcore)].push_back(op);
    return op.id;
  }

  Report run(Timeline* tl = nullptr) {
    trace_.max_op_id = next_id_ - 1;
    Scheduler sched(cfg_, nullptr);
    return sched.run(trace_, tl);
  }

 private:
  MachineConfig cfg_;
  KernelTrace trace_;
  std::uint32_t next_id_ = 1;
};

MachineConfig test_config() {
  MachineConfig cfg;
  cfg.launch_overhead_s = 0;  // cleaner arithmetic in unit tests
  cfg.sync_all_s = 0;
  cfg.mte_issue_cycles = 0;
  cfg.gm_latency_s = 0;
  cfg.hbm_efficiency = 1.0;
  return cfg;
}

TEST(Scheduler, SingleComputeOpDuration) {
  auto cfg = test_config();
  TraceFixture f(1, cfg);
  f.compute(0, EngineKind::Compute, 1800.0);
  const Report r = f.run();
  EXPECT_NEAR(r.time_s, 1800.0 / cfg.clock_hz, 1e-12);
  EXPECT_EQ(r.num_ops, 1u);
}

TEST(Scheduler, SameEngineOpsSerialise) {
  auto cfg = test_config();
  TraceFixture f(1, cfg);
  f.compute(0, EngineKind::Compute, 1000.0);
  f.compute(0, EngineKind::Compute, 1000.0);
  const Report r = f.run();
  EXPECT_NEAR(r.time_s, 2000.0 / cfg.clock_hz, 1e-12);
}

TEST(Scheduler, DifferentEnginesOverlapWithoutDeps) {
  auto cfg = test_config();
  TraceFixture f(1, cfg);
  f.compute(0, EngineKind::Compute, 1000.0);
  f.compute(0, EngineKind::Mte2, 1000.0);
  const Report r = f.run();
  EXPECT_NEAR(r.time_s, 1000.0 / cfg.clock_hz, 1e-12);
}

TEST(Scheduler, DependencyForcesSequence) {
  auto cfg = test_config();
  TraceFixture f(1, cfg);
  const auto a = f.compute(0, EngineKind::Mte2, 1000.0);
  f.compute(0, EngineKind::Compute, 500.0, {a});
  const Report r = f.run();
  EXPECT_NEAR(r.time_s, 1500.0 / cfg.clock_hz, 1e-12);
}

TEST(Scheduler, PipeliningOverlapsStages) {
  // Two-stage pipeline (MTE2 load then Compute), two tiles with
  // independent buffers: total = load + max stages + compute, not 4 stages.
  auto cfg = test_config();
  TraceFixture f(1, cfg);
  const auto a0 = f.compute(0, EngineKind::Mte2, 1000.0);
  const auto c0 = f.compute(0, EngineKind::Compute, 1000.0, {a0});
  (void)c0;
  const auto a1 = f.compute(0, EngineKind::Mte2, 1000.0);
  f.compute(0, EngineKind::Compute, 1000.0, {a1});
  const Report r = f.run();
  // load0 [0,1000], load1 [1000,2000], compute0 [1000,2000],
  // compute1 [2000,3000].
  EXPECT_NEAR(r.time_s, 3000.0 / cfg.clock_hz, 1e-9);
}

TEST(Scheduler, TransferDurationMatchesMteBandwidth) {
  auto cfg = test_config();
  TraceFixture f(1, cfg);
  f.transfer(0, EngineKind::Mte2, 128000);
  const Report r = f.run();
  EXPECT_NEAR(r.time_s, 128000.0 / cfg.mte_bandwidth, 1e-9);
  EXPECT_EQ(r.gm_read_bytes, 128000u);
}

TEST(Scheduler, ConcurrentTransfersHitHbmCeiling) {
  auto cfg = test_config();
  cfg.num_ai_cores = 20;
  TraceFixture f(20, cfg);
  // 20 sub-cores each read 128 KB concurrently: demand 20*128 GB/s
  // = 2.56 TB/s against 800 GB/s -> each flow gets 40 GB/s.
  for (int s = 0; s < 20; ++s) f.transfer(s, EngineKind::Mte2, 128 << 10);
  const Report r = f.run();
  EXPECT_NEAR(r.time_s, (128 << 10) / 40e9, 1e-9);
}

TEST(Scheduler, BarrierAlignsSubcores) {
  auto cfg = test_config();
  TraceFixture f(2, cfg);
  f.compute(0, EngineKind::Compute, 1000.0);
  const auto b0 = f.barrier(0, 1);
  f.compute(0, EngineKind::Compute, 100.0, {b0});
  f.compute(1, EngineKind::Compute, 5000.0);
  const auto b1 = f.barrier(1, 1);
  f.compute(1, EngineKind::Compute, 100.0, {b1});
  const Report r = f.run();
  // Slow sub-core dominates: 5000 + 100 cycles.
  EXPECT_NEAR(r.time_s, 5100.0 / cfg.clock_hz, 1e-9);
}

TEST(Scheduler, CrossSubcoreDependency) {
  auto cfg = test_config();
  TraceFixture f(2, cfg);
  const auto produce = f.compute(0, EngineKind::Mte3, 2000.0);
  f.compute(1, EngineKind::Compute, 1000.0, {produce});
  const Report r = f.run();
  EXPECT_NEAR(r.time_s, 3000.0 / cfg.clock_hz, 1e-9);
}

TEST(Scheduler, LaunchOverheadAdds) {
  auto cfg = test_config();
  cfg.launch_overhead_s = 5e-6;
  TraceFixture f(1, cfg);
  f.compute(0, EngineKind::Compute, 1800.0);
  const Report r = f.run();
  EXPECT_NEAR(r.time_s, 5e-6 + 1e-6, 1e-12);
}

TEST(Scheduler, EngineBusyAccounting) {
  auto cfg = test_config();
  TraceFixture f(1, cfg);
  f.compute(0, EngineKind::Compute, 1800.0);
  f.compute(0, EngineKind::Scalar, 900.0);
  const Report r = f.run();
  EXPECT_NEAR(r.vec_busy_s, 1e-6, 1e-12);  // subcore not cube
  EXPECT_NEAR(r.scalar_busy_s, 0.5e-6, 1e-12);
}

TEST(Scheduler, CubeAttribution) {
  auto cfg = test_config();
  TraceFixture f(1, cfg);
  f.compute(0, EngineKind::Compute, 1800.0);
  // Mark subcore 0 as a cube core via the fixture's trace: easiest is to
  // re-run with a manual trace here.
  KernelTrace tr;
  tr.per_subcore.resize(1);
  TraceOp op;
  op.id = 1;
  op.engine = EngineKind::Compute;
  op.kind = TraceOp::Kind::Compute;
  op.cycles = 1800.0;
  tr.per_subcore[0].push_back(op);
  tr.is_cube_subcore = {true};
  tr.max_op_id = 1;
  Scheduler sched(cfg, nullptr);
  const Report r = sched.run(tr);
  EXPECT_NEAR(r.cube_busy_s, 1e-6, 1e-12);
  EXPECT_DOUBLE_EQ(r.vec_busy_s, 0.0);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  auto cfg = test_config();
  auto build_and_run = [&] {
    TraceFixture f(4, cfg);
    for (int s = 0; s < 4; ++s) {
      auto t = f.transfer(s, EngineKind::Mte2, 64 << 10);
      auto c = f.compute(s, EngineKind::Compute, 500.0 * (s + 1), {t});
      f.transfer(s, EngineKind::Mte3, 64 << 10, {c});
    }
    return f.run().time_s;
  };
  EXPECT_DOUBLE_EQ(build_and_run(), build_and_run());
}

TEST(Scheduler, GmLatencyDelaysDependentsNotEngine) {
  auto cfg = test_config();
  cfg.gm_latency_s = 1e-6;
  TraceFixture f(1, cfg);
  // Two back-to-back transfers on the same MTE2: the engine streams them
  // consecutively (latency does not serialise the engine)...
  const auto t1 = f.transfer(0, EngineKind::Mte2, 128000);
  const auto t2 = f.transfer(0, EngineKind::Mte2, 128000);
  (void)t2;
  // ...but a compute op depending on the first transfer's data waits the
  // extra latency.
  f.compute(0, EngineKind::Compute, 1800.0, {t1});
  const Report r = f.run();
  const double stream = 128000.0 / cfg.mte_bandwidth;
  // Timeline: t1 streams [0, 1us], t2 streams [1us, 2us]; the compute
  // starts at t1-data-visible = 1us + 1us latency = 2us, runs 1us.
  EXPECT_NEAR(r.time_s, std::max(2 * stream + 1e-6, 2e-6 + 1e-6), 1e-9);
}

TEST(Scheduler, TimelineCaptureMatchesReport) {
  auto cfg = test_config();
  TraceFixture f(2, cfg);
  f.compute(0, EngineKind::Compute, 1000.0);
  const auto t = f.transfer(1, EngineKind::Mte2, 64000);
  f.compute(1, EngineKind::Compute, 500.0, {t});
  Timeline tl;
  const Report r = f.run(&tl);
  ASSERT_EQ(tl.events.size(), 3u);
  EXPECT_DOUBLE_EQ(tl.total_s, r.time_s);
  for (const auto& e : tl.events) {
    EXPECT_LE(e.end_s, r.time_s + 1e-15);
    EXPECT_GE(e.end_s, e.start_s);
  }
}

}  // namespace
}  // namespace ascend::sim
