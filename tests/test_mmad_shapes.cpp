// Cube-layer depth tests: Mmad on non-square shapes, accumulation chains,
// padding alignment, cost monotonicity, and the constant matrices of §4.
#include <gtest/gtest.h>

#include "ascendc/ascendc.hpp"
#include "common/rng.hpp"
#include "kernels/common.hpp"

namespace ascend::acc {
namespace {

template <typename F>
void on_cube(F&& body) {
  Device dev(sim::MachineConfig::single_core());
  launch(dev, {.block_dim = 1, .mode = LaunchMode::CubeOnly},
         [&](KernelContext& c) { body(c); });
}

struct CubeBufs {
  TPipe pipe;
  TBuf a1, a2, b2, co;
  LocalTensor<half> stage, A, B;
  LocalTensor<float> C;

  explicit CubeBufs(KernelContext& c, std::size_t elems = 16384)
      : pipe(c), a1(c, TPosition::A1), a2(c, TPosition::A2),
        b2(c, TPosition::B2), co(c, TPosition::CO1) {
    pipe.InitBuffer(a1, elems * sizeof(half));
    pipe.InitBuffer(a2, elems * sizeof(half));
    pipe.InitBuffer(b2, elems * sizeof(half));
    pipe.InitBuffer(co, elems * sizeof(float));
    stage = a1.Get<half>();
    A = a2.Get<half>();
    B = b2.Get<half>();
    C = co.Get<float>();
  }
};

TEST(MmadShapes, RectangularMKN) {
  on_cube([](KernelContext& c) {
    CubeBufs b(c);
    // A: 3x5, B: 5x2 -> C: 3x2 with known values.
    const std::size_t M = 3, K = 5, N = 2;
    for (std::size_t i = 0; i < M * K; ++i) {
      b.stage[i] = half(static_cast<float>(i % 7) - 3.0f);
    }
    LoadData(c, b.A, b.stage, M * K);
    for (std::size_t i = 0; i < K * N; ++i) {
      b.stage[i] = half(static_cast<float>((i * 3) % 5) - 2.0f);
    }
    LoadData(c, b.B, b.stage, K * N);
    Mmad(c, b.C, b.A, b.B, M, K, N, false);
    // Host-computed reference.
    for (std::size_t i = 0; i < M; ++i) {
      for (std::size_t j = 0; j < N; ++j) {
        float want = 0.0f;
        for (std::size_t k = 0; k < K; ++k) {
          const float av = static_cast<float>(static_cast<int>(i * K + k) % 7) - 3.0f;
          const float bv = static_cast<float>(((k * N + j) * 3) % 5) - 2.0f;
          want += av * bv;
        }
        EXPECT_EQ(b.C[i * N + j], want) << i << "," << j;
      }
    }
  });
}

TEST(MmadShapes, AccumulationChainMatchesSum) {
  on_cube([](KernelContext& c) {
    CubeBufs b(c);
    const std::size_t s = 16;
    for (std::size_t i = 0; i < s * s; ++i) b.stage[i] = half(1.0f);
    LoadData(c, b.A, b.stage, s * s);
    LoadData(c, b.B, b.stage, s * s);
    for (int rep = 0; rep < 5; ++rep) {
      Mmad(c, b.C, b.A, b.B, s, s, s, /*accumulate=*/rep > 0);
    }
    // Each Mmad adds s (=16) to every entry; 5 reps -> 80.
    EXPECT_EQ(b.C[0], 80.0f);
    EXPECT_EQ(b.C[s * s - 1], 80.0f);
  });
}

TEST(MmadShapes, ScanIdentityOnTile) {
  // Equation 1 on a random 32x32 tile: A@U + L^-@(A@1) equals the flat scan.
  on_cube([](KernelContext& c) {
    CubeBufs b(c);
    const std::size_t s = 32;
    Rng rng(3);
    std::vector<float> z(s * s);
    for (std::size_t i = 0; i < s * s; ++i) {
      z[i] = static_cast<float>(rng.next_below(5));
      b.stage[i] = half(z[i]);
    }
    LoadData(c, b.A, b.stage, s * s);
    // C1 = A @ 1s
    auto ones = kernels::make_all_ones<half>(s);
    for (std::size_t i = 0; i < s * s; ++i) b.stage[i] = ones[i];
    LoadData(c, b.B, b.stage, s * s);
    Mmad(c, b.C, b.A, b.B, s, s, s, false);
    std::vector<float> c1(s * s);
    for (std::size_t i = 0; i < s * s; ++i) c1[i] = b.C[i];
    // C2 = A @ U
    auto upper = kernels::make_upper_ones<half>(s);
    for (std::size_t i = 0; i < s * s; ++i) b.stage[i] = upper[i];
    LoadData(c, b.B, b.stage, s * s);
    Mmad(c, b.C, b.A, b.B, s, s, s, false);
    // C2 += L^- @ C1 (stage C1 back through fp16, as ScanUL1 does)
    auto lower = kernels::make_strict_lower_ones<half>(s);
    for (std::size_t i = 0; i < s * s; ++i) b.stage[i] = lower[i];
    LoadData(c, b.A, b.stage, s * s);
    for (std::size_t i = 0; i < s * s; ++i) b.stage[i] = half(c1[i]);
    LoadData(c, b.B, b.stage, s * s);
    Mmad(c, b.C, b.A, b.B, s, s, s, true);
    // Reference: flat inclusive scan of z.
    float acc = 0.0f;
    for (std::size_t i = 0; i < s * s; ++i) {
      acc += z[i];
      ASSERT_EQ(b.C[i], acc) << i;
    }
  });
}

TEST(MmadShapes, CostGrowsWithPaddedDimensions) {
  // A 17x17x17 matmul pads to 32x32x32 on the 16-granular cube: its
  // simulated time must exceed the 16x16x16 one.
  auto time_of = [](std::size_t m) {
    Device dev(sim::MachineConfig::single_core());
    return launch(dev, {.block_dim = 1, .mode = LaunchMode::CubeOnly},
                  [&](KernelContext& c) {
                    CubeBufs b(c);
                    // Equal-size loads so only the Mmad shape varies.
                    LoadData(c, b.A, b.stage, 32 * 32);
                    LoadData(c, b.B, b.stage, 32 * 32);
                    Mmad(c, b.C, b.A, b.B, m, m, m, false);
                  })
        .time_s;
  };
  EXPECT_GT(time_of(17), time_of(16));
  EXPECT_NEAR(time_of(17), time_of(32), 1e-12);  // same padded shape
}

TEST(ConstantMatrices, DefinitionsMatchSection4) {
  const auto u = kernels::make_upper_ones<half>(4);
  const auto lm = kernels::make_strict_lower_ones<half>(4);
  const auto ones = kernels::make_all_ones<half>(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(float(u[i * 4 + j]), j >= i ? 1.0f : 0.0f);
      EXPECT_EQ(float(lm[i * 4 + j]), j < i ? 1.0f : 0.0f);
      EXPECT_EQ(float(ones[i * 4 + j]), 1.0f);
    }
  }
  // U + L^- + diag-less identity relationship: U[i][i]=1, L^-[i][i]=0.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(float(u[i * 4 + i]), 1.0f);
    EXPECT_EQ(float(lm[i * 4 + i]), 0.0f);
  }
}

TEST(MmadShapes, Int8KAlignmentIs32) {
  // int8 Mmad pads K to 32: K=17 and K=32 cost the same; K=33 costs more.
  auto time_of = [](std::size_t k) {
    Device dev(sim::MachineConfig::single_core());
    return launch(
               dev, {.block_dim = 1, .mode = LaunchMode::CubeOnly},
               [&](KernelContext& c) {
                 TPipe pipe(c);
                 TBuf a2(c, TPosition::A2), b2(c, TPosition::B2),
                     co(c, TPosition::CO1);
                 pipe.InitBuffer(a2, 4096);
                 pipe.InitBuffer(b2, 4096);
                 pipe.InitBuffer(co, 4096);
                 auto A = a2.Get<std::int8_t>();
                 auto B = b2.Get<std::int8_t>();
                 auto C = co.Get<std::int32_t>();
                 Mmad(c, C, A, B, 8, k, 8, false);
               })
        .time_s;
  };
  EXPECT_NEAR(time_of(17), time_of(32), 1e-12);
  EXPECT_GT(time_of(33), time_of(32));
}

}  // namespace
}  // namespace ascend::acc
