// Tests for the L2 cache model (write-allocate, write-back LRU).
#include "sim/l2_cache.hpp"

#include <gtest/gtest.h>

namespace ascend::sim {
namespace {

TEST(L2Cache, ColdReadMisses) {
  L2Cache l2(1 << 20, 512);
  const auto a = l2.access(0x10000, 4096, false);
  EXPECT_EQ(a.hit_bytes, 0u);
  EXPECT_EQ(a.miss_bytes, 4096u);
  EXPECT_EQ(a.writeback_bytes, 0u);
}

TEST(L2Cache, RepeatReadHits) {
  L2Cache l2(1 << 20, 512);
  l2.access(0x10000, 4096, false);
  const auto a = l2.access(0x10000, 4096, false);
  EXPECT_EQ(a.hit_bytes, 4096u);
  EXPECT_EQ(a.miss_bytes, 0u);
}

TEST(L2Cache, WriteThenReadHits) {
  // The cube->vector GM round trip of the paper's kernels: fixpipe writes a
  // tile, the vector core's MTE2 reads it back — on-chip.
  L2Cache l2(1 << 20, 512);
  const auto w = l2.access(0x20000, 8192, true);
  EXPECT_EQ(w.miss_bytes, 8192u);  // write-allocate
  const auto r = l2.access(0x20000, 8192, false);
  EXPECT_EQ(r.hit_bytes, 8192u);
}

TEST(L2Cache, PartialOverlapPartialHit) {
  L2Cache l2(1 << 20, 512);
  l2.access(0, 4096, false);  // lines 0..7
  const auto a = l2.access(0, 8192, false);  // lines 0..15: 8 hit, 8 miss
  EXPECT_EQ(a.hit_bytes, 4096u);
  EXPECT_EQ(a.miss_bytes, 4096u);
}

TEST(L2Cache, DirtyEvictionReportsWriteback) {
  // Tiny direct-mapped-ish cache: 8 KiB, 512 B lines, 1 way -> 16 sets.
  L2Cache l2(8 << 10, 512, /*ways=*/1);
  l2.access(0, 8192, true);  // fill all 16 sets dirty
  // Touch the aliasing range: evicts all 16 dirty lines.
  const auto a = l2.access(8192, 8192, false);
  EXPECT_EQ(a.miss_bytes, 8192u);
  EXPECT_EQ(a.writeback_bytes, 8192u);
  // Re-touching the (now clean) second range evicts nothing.
  const auto b = l2.access(0, 8192, false);
  EXPECT_EQ(b.writeback_bytes, 0u);
}

TEST(L2Cache, CleanEvictionNoWriteback) {
  L2Cache l2(8 << 10, 512, 1);
  l2.access(0, 8192, false);            // clean fill
  const auto a = l2.access(8192, 8192, false);  // evicts clean lines
  EXPECT_EQ(a.writeback_bytes, 0u);
}

TEST(L2Cache, StreamingWriteChargesSteadyStateWritebacks) {
  // Stream 4 MiB of writes through a 64 KiB cache: almost every allocated
  // line evicts an earlier dirty line.
  L2Cache l2(64 << 10, 512, 16);
  std::uint64_t wb = 0;
  for (std::uint64_t off = 0; off < (4 << 20); off += 8192) {
    wb += l2.access(0x40000000 + off, 8192, true).writeback_bytes;
  }
  // All but the resident 64 KiB must have been written back.
  EXPECT_GE(wb, (4u << 20) - (64u << 10) - (64u << 10));
}

TEST(L2Cache, CapacityEviction) {
  L2Cache l2(64 << 10, 512);
  for (std::uint64_t off = 0; off < (1 << 20); off += 4096) {
    l2.access(0x100000 + off, 4096, false);
  }
  EXPECT_EQ(l2.access(0x100000, 4096, false).hit_bytes, 0u);
}

TEST(L2Cache, WorkingSetWithinCapacityStaysResident) {
  L2Cache l2(1 << 20, 512, /*ways=*/16);
  for (int sweep = 0; sweep < 2; ++sweep) {
    std::uint64_t hit = 0, total = 0;
    for (std::uint64_t off = 0; off < (256 << 10); off += 8192) {
      hit += l2.access(0x200000 + off, 8192, false).hit_bytes;
      total += 8192;
    }
    if (sweep == 1) EXPECT_EQ(hit, total);
  }
}

TEST(L2Cache, ResetClears) {
  L2Cache l2(1 << 20, 512);
  l2.access(0, 4096, true);
  l2.reset();
  const auto a = l2.access(0, 4096, false);
  EXPECT_EQ(a.hit_bytes, 0u);
  EXPECT_EQ(a.writeback_bytes, 0u);  // dirty state cleared too
  EXPECT_EQ(l2.misses(), 8u);
}

TEST(L2Cache, UnalignedRangeNormalisesBytes) {
  L2Cache l2(1 << 20, 512);
  const auto a = l2.access(100, 10, false);
  EXPECT_EQ(a.hit_bytes + a.miss_bytes, 10u);
  const auto b = l2.access(0, 512, false);
  EXPECT_EQ(b.hit_bytes, 512u);  // line 0 resident
}

}  // namespace
}  // namespace ascend::sim
