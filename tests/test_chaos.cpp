// Chaos harness: sweep seeded fault plans across every operator and assert
// the resilience contract — each plan either completes with bit-exact
// results (after retries / core exclusion) or fails with a clean typed
// error. Never silent corruption, never a deadlock.
//
// All workloads are integer-valued so every reduction is exact in fp16 /
// fp32 regardless of how blocks partition the data; a retry or a
// degraded-core relaunch must therefore reproduce the fault-free result
// bit for bit.
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ascan.hpp"
#include "kernels/mcscan.hpp"
#include "kernels/vec_cumsum.hpp"
#include "serve/cluster.hpp"
#include "sim/executor.hpp"
#include "sim/fault.hpp"
#include "test_helpers.hpp"

namespace ascend {
namespace {

sim::MachineConfig chaos_cfg() {
  auto cfg = sim::MachineConfig::ascend_910b4();
  cfg.num_ai_cores = 4;
  cfg.watchdog_s = 0.01;  // far above any healthy sub-millisecond launch
  return cfg;
}

/// Distinct integer-valued fp16 keys (a bijective permutation of
/// [-n/2, n/2) for power-of-two n), so sorts, top-k and their index
/// outputs have a unique answer.
std::vector<half> distinct_keys(std::size_t n) {
  std::vector<half> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = (i * 2654435761u) % n;  // odd multiplier: bijection
    x[i] = half(static_cast<float>(p) - static_cast<float>(n / 2));
  }
  return x;
}

/// Flattened float signature of an operator result, for exact comparison.
using Sig = std::vector<float>;

struct ChaosOp {
  const char* name;
  bool allow_exclusion;  ///< result is partition-independent bit-for-bit
  std::function<Sig(ascan::Session&)> run;
};

std::vector<ChaosOp> chaos_ops() {
  const auto scan_x = testing::exact_scan_workload(2048, 11);
  const auto keys = distinct_keys(1024);
  auto mask = std::vector<std::int8_t>(2048);
  {
    Rng rng(17);
    for (auto& m : mask) m = rng.bernoulli(0.3) ? 1 : 0;
  }
  auto flags = std::vector<std::int8_t>(2048);
  {
    Rng rng(19);
    for (auto& f : flags) f = rng.bernoulli(1.0 / 64) ? 1 : 0;
  }
  // Distinct dyadic probabilities: exactly representable in fp16.
  auto probs = std::vector<half>(512);
  for (std::size_t i = 0; i < 512; ++i) {
    const std::size_t p = (i * 2654435761u) % 512;
    probs[i] = half(static_cast<float>(p + 1) / 512.0f);
  }

  std::vector<ChaosOp> ops;
  ops.push_back({"cumsum", true, [scan_x](ascan::Session& s) {
                   return s.cumsum(scan_x).values;
                 }});
  ops.push_back({"sort", true, [keys](ascan::Session& s) {
                   auto r = s.sort(keys);
                   Sig sig;
                   for (auto v : r.values) sig.push_back(float(v));
                   for (auto i : r.indices) sig.push_back(float(i));
                   return sig;
                 }});
  ops.push_back({"topk", true, [keys](ascan::Session& s) {
                   auto r = s.topk(keys, 37);
                   Sig sig;
                   for (auto v : r.values) sig.push_back(float(v));
                   for (auto i : r.indices) sig.push_back(float(i));
                   return sig;
                 }});
  ops.push_back({"masked_select", true, [keys, mask](ascan::Session& s) {
                   auto big = distinct_keys(2048);
                   auto r = s.masked_select(big, mask);
                   Sig sig;
                   for (auto v : r.values) sig.push_back(float(v));
                   return sig;
                 }});
  ops.push_back({"segmented_cumsum", true,
                 [scan_x, flags](ascan::Session& s) {
                   return s.segmented_cumsum(scan_x, flags).values;
                 }});
  // Top-p's internal float scans are partition-*dependent* in their
  // rounding, so a degraded relaunch may legitimately pick a different
  // token: exclusion stays off and exhausted retries surface as errors.
  ops.push_back({"top_p", false, [probs](ascan::Session& s) {
                   auto r = s.top_p_sample(probs, 0.9, 0.37);
                   return Sig{static_cast<float>(r.index),
                              static_cast<float>(r.nucleus)};
                 }});
  return ops;
}

sim::FaultPlan plan_for(std::uint64_t seed, std::size_t op) {
  sim::FaultPlan p;
  p.seed = seed * 1000003 + op;
  // seed % 6 == 0 leaves a fault-free plan in the mix on purpose.
  const double inten = static_cast<double>(seed % 6) / 5.0;
  p.mte_transient_rate = 0.004 * inten;
  p.ecc_single_rate = 0.002 * inten;
  p.ecc_double_rate = 0.0004 * inten;
  p.hang_rate = 0.0008 * inten;
  p.throttle_rate = 0.25 * inten;
  return p;
}

TEST(Chaos, SweepSeededFaultPlansAcrossAllOperators) {
  const auto ops = chaos_ops();

  // Fault-free references.
  std::vector<Sig> ref;
  for (const auto& op : ops) {
    ascan::Session s(chaos_cfg());
    ref.push_back(op.run(s));
  }

  int plans = 0, exact = 0, typed_errors = 0, recovered = 0, degraded = 0;
  for (std::uint64_t seed = 1; seed <= 36; ++seed) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      ++plans;
      ascan::Session s(chaos_cfg());
      s.set_fault_plan(plan_for(seed, i));
      s.set_retry_policy(
          {.max_attempts = 3,
           .backoff_s = 20e-6,
           .max_core_exclusions = ops[i].allow_exclusion ? 1 : 0});
      try {
        const Sig got = ops[i].run(s);
        ASSERT_EQ(got.size(), ref[i].size())
            << ops[i].name << " seed " << seed;
        for (std::size_t j = 0; j < got.size(); ++j) {
          ASSERT_EQ(got[j], ref[i][j])
              << ops[i].name << " seed " << seed << " index " << j
              << " diverged after "
              << s.last_retry_stats().retries << " retries";
        }
        ++exact;
        if (s.last_retry_stats().retries > 0) ++recovered;
        if (s.last_retry_stats().excluded_cores > 0) ++degraded;
      } catch (const sim::FaultError& e) {
        // Clean typed failure: carries the fault kind and a message.
        EXPECT_NE(e.kind(), sim::FaultKind::None);
        EXPECT_FALSE(std::string(e.what()).empty());
        ++typed_errors;
      }
      // Anything else (plain Error, deadlock assertion) escapes and fails
      // the test: the contract is bit-exact or typed, nothing in between.
    }
  }
  EXPECT_GE(plans, 200);
  EXPECT_EQ(plans, exact + typed_errors);
  EXPECT_GT(recovered, 0) << "no plan exercised the retry path";
  EXPECT_GT(typed_errors, 0) << "no plan exhausted the retry budget";
  RecordProperty("plans", plans);
  RecordProperty("exact", exact);
  RecordProperty("typed_errors", typed_errors);
  RecordProperty("recovered", recovered);
  RecordProperty("degraded", degraded);
}

TEST(Chaos, SingleTransientMteIsSurvivedWithOneRetry) {
  const auto x = testing::exact_scan_workload(2048, 3);
  ascan::Session clean(chaos_cfg());
  const auto ref = clean.cumsum(x);

  ascan::Session s(chaos_cfg());
  s.set_fault_plan(sim::FaultPlan::one_transient_mte(0));
  s.set_retry_policy({.max_attempts = 3});
  const auto got = s.cumsum(x);
  EXPECT_EQ(got.values, ref.values);
  EXPECT_EQ(got.report.retries, 1u);
  EXPECT_EQ(got.report.mte_faults, 1u);
  EXPECT_GT(got.report.backoff_s, 0.0);
  // The failed attempt's simulated time is accounted for.
  EXPECT_GT(got.report.time_s, ref.report.time_s);
  EXPECT_EQ(s.last_retry_stats().attempts, 2u);
  EXPECT_EQ(s.last_retry_stats().retries, 1u);
  EXPECT_EQ(s.last_retry_stats().last_fault, sim::FaultKind::MteTransient);
}

TEST(Chaos, TransientFaultWithoutRetryPolicyThrowsTransferError) {
  ascan::Session s(chaos_cfg());
  s.set_fault_plan(sim::FaultPlan::one_transient_mte(0));
  const auto x = testing::exact_scan_workload(1024, 5);
  EXPECT_THROW(s.cumsum(x), sim::TransferError);
  // The forced fault is consumed; the session stays usable and correct.
  ascan::Session clean(chaos_cfg());
  EXPECT_EQ(s.cumsum(x).values, clean.cumsum(x).values);
}

TEST(Chaos, RetryBudgetExhaustionEscalatesToCoreExclusion) {
  // max_attempts = 1 exhausts the retry level instantly, forcing the
  // degradation path: the faulted core goes offline and the relaunch on
  // blocks-1 cores still produces the bit-exact result.
  const auto x = testing::exact_scan_workload(2048, 7);
  ascan::Session clean(chaos_cfg());
  const auto ref = clean.cumsum(x);

  ascan::Session s(chaos_cfg());
  s.set_fault_plan(sim::FaultPlan::one_transient_mte(0));
  s.set_retry_policy({.max_attempts = 1, .max_core_exclusions = 1});
  const auto got = s.cumsum(x);
  EXPECT_EQ(got.values, ref.values);
  EXPECT_EQ(got.report.excluded_cores, 1u);
  EXPECT_EQ(s.active_cores(), chaos_cfg().num_ai_cores - 1);
  EXPECT_EQ(s.last_retry_stats().excluded_cores, 1u);
}

TEST(Chaos, PersistentEccDoubleBurnsExclusionsThenThrowsEccError) {
  ascan::Session s(chaos_cfg());
  sim::FaultPlan p;
  p.ecc_double_rate = 1.0;  // every transfer hits the bad page
  s.set_fault_plan(p);
  s.set_retry_policy({.max_attempts = 3, .max_core_exclusions = 2});
  EXPECT_THROW(s.cumsum(testing::exact_scan_workload(512, 13)),
               sim::EccError);
  // EccDouble is not retryable: no same-core retries, straight to
  // exclusion, and both exclusions were spent before giving up.
  EXPECT_EQ(s.last_retry_stats().last_fault, sim::FaultKind::EccDouble);
  EXPECT_EQ(s.last_retry_stats().excluded_cores, 2u);
  EXPECT_EQ(s.active_cores(), chaos_cfg().num_ai_cores - 2);
}

TEST(Chaos, HangSurfacesAsTimeoutAndRestoresOutputBuffers) {
  acc::Device dev(chaos_cfg());
  sim::FaultPlan p;
  p.hang_rate = 1.0;
  dev.set_fault_plan(p);
  auto x = dev.upload(testing::exact_scan_workload(1024, 9));
  auto y = dev.alloc<float>(1024, -5.0f);
  EXPECT_THROW((kernels::mcscan<half, float>(dev, x.tensor(), y.tensor(),
                                             1024, {})),
               sim::TimeoutError);
  // The launch is idempotent-relaunchable: the failed attempt's partial
  // writes were rolled back.
  for (std::size_t i = 0; i < 1024; ++i) {
    ASSERT_EQ(y[i], -5.0f) << "partial write visible at " << i;
  }
}

TEST(Chaos, TimingCacheBypassedWhileFaultPlanArmed) {
  // An armed injector keys fault decisions on the per-attempt launch
  // ordinal; a timing-cache hit would skip the attempt entirely and
  // desynchronise the fault sequence. The engine must bypass the cache for
  // every launch while the plan is armed — even for shapes it already
  // cached — and resume caching when disarmed.
  auto cfg = chaos_cfg();
  cfg.timing_cache = true;
  acc::Device dev(cfg);
  auto x = dev.upload(testing::exact_scan_workload(1024, 21));
  auto y = dev.alloc<half>(1024);
  auto launch_once = [&] {
    return kernels::vec_cumsum(dev, x.tensor(), y.tensor(), 1024);
  };
  for (int i = 0; i < 5; ++i) launch_once();
  const auto& stats = dev.engine().cache_stats();
  ASSERT_GE(stats.hits, 1u) << "fault-free launches should reach steady state";
  const auto hits_before = stats.hits;
  const auto bypasses_before = stats.bypasses;

  sim::FaultPlan p;
  p.seed = 3;
  p.ecc_single_rate = 0.2;  // correctable scrubs: launches still succeed
  dev.set_fault_plan(p);
  for (int i = 0; i < 3; ++i) launch_once();
  EXPECT_EQ(stats.hits, hits_before) << "armed plan must bypass the cache";
  EXPECT_EQ(stats.bypasses, bypasses_before + 3);

  dev.set_fault_plan(sim::FaultPlan::none());
  for (int i = 0; i < 3; ++i) launch_once();
  EXPECT_GT(stats.hits, hits_before)
      << "disarming must restore cache hits once the shape re-stabilises";
}

// ---------------------------------------------------------------------------
// Cluster chaos: one battered device in a healthy cluster must degrade
// gracefully — its requests retry, fail typed or get served elsewhere —
// while the cluster keeps serving and shutdown always completes.

TEST(Chaos, ClusterToleratesOneFaultyDevice) {
  using namespace ascan::serve;
  const auto x = testing::exact_scan_workload(1024, 23);
  ascan::Session ref(chaos_cfg());
  const auto want = ref.cumsum_batched(x, 1, x.size()).values;

  std::uint64_t completed_total = 0, failed_total = 0, retries_total = 0;
  std::uint64_t faulty_device_calls = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sim::FaultPlan bad;
    bad.seed = seed * 101;
    bad.mte_transient_rate = 0.01;
    bad.ecc_double_rate = 0.001;
    bad.hang_rate = 0.001;
    std::vector<sim::FaultPlan> plans(4);  // only device 1 is armed
    plans[1] = bad;
    Cluster cluster({.policy = {.max_batch = 4, .max_wait_s = 100e-6},
                     .num_devices = 4,
                     .machine = chaos_cfg(),
                     .retry = {.max_attempts = 3,
                               .backoff_s = 20e-6,
                               .max_core_exclusions = 1},
                     .device_fault_plans = plans,
                     .steal_min_backlog = 2,
                     .spill_margin = 1});  // spread the hot key everywhere
    std::vector<std::future<Response>> futs;
    for (int i = 0; i < 24; ++i) {
      futs.push_back(
          cluster.submit(Request::cumsum(x, 128, false, Priority::Bulk)));
    }
    cluster.shutdown(ShutdownMode::Drain);
    for (auto& f : futs) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                std::future_status::ready)
          << "seed " << seed << ": dangling future";
      const auto r = f.get();
      ASSERT_TRUE(r.status == Status::Ok || r.status == Status::Failed)
          << "seed " << seed << ": " << status_name(r.status);
      if (r.ok()) {
        // Even a retried / degraded / stolen execution is bit-exact.
        ASSERT_EQ(r.values_f16.size(), want.size());
        for (std::size_t j = 0; j < want.size(); ++j) {
          ASSERT_EQ(static_cast<float>(r.values_f16[j]),
                    static_cast<float>(want[j]))
              << "seed " << seed << " device " << r.device << " index " << j;
        }
      } else {
        EXPECT_FALSE(r.reason.empty());
      }
    }
    const auto m = cluster.metrics();
    EXPECT_EQ(m.admitted, m.completed + m.failed) << "seed " << seed;
    completed_total += m.completed;
    failed_total += m.failed;
    retries_total += m.sim_retries;
    faulty_device_calls += cluster.device(1).device_stats().op_calls;
    // Steal/routing counters are part of the exported degradation story.
    const std::string j = cluster.metrics_json();
    EXPECT_NE(j.find("\"steals\""), std::string::npos);
    EXPECT_NE(j.find("\"steals_suffered\""), std::string::npos);
  }
  EXPECT_GT(completed_total, 0u);
  EXPECT_GT(retries_total, 0u) << "no seed exercised the retry path";
  EXPECT_GT(faulty_device_calls, 0u) << "the faulty device never saw traffic";
  RecordProperty("completed", static_cast<int>(completed_total));
  RecordProperty("failed", static_cast<int>(failed_total));
  RecordProperty("sim_retries", static_cast<int>(retries_total));
}

TEST(Chaos, ClusterShutdownNeverWedgesWhileADeviceHangs) {
  using namespace ascan::serve;
  // Device 0 hangs on every launch; the watchdog in chaos_cfg() turns each
  // hang into a typed TimeoutError, so its requests fail cleanly instead
  // of wedging the drain. Device 1 keeps serving.
  sim::FaultPlan hang;
  hang.seed = 9;
  hang.hang_rate = 1.0;
  Cluster cluster({.policy = {.max_batch = 2, .max_wait_s = 50e-6},
                   .num_devices = 2,
                   .machine = chaos_cfg(),
                   .retry = {.max_attempts = 2},
                   .device_fault_plans = {hang, sim::FaultPlan{}}});
  Rng rng(31);
  std::vector<std::future<Response>> futs;
  // Many distinct GroupKeys so the affinity hash lands work on both
  // devices (interactive lane: never stolen, so the hanging device must
  // handle — and cleanly fail — its own share).
  for (int i = 0; i < 16; ++i) {
    futs.push_back(cluster.submit(Request::top_p(
        rng.token_probs_f16(128 + 16 * static_cast<std::size_t>(i)), 0.9,
        rng.next_double())));
  }
  const auto x = testing::exact_scan_workload(512, 29);
  for (std::size_t tile : {16u, 32u, 64u, 128u}) {
    futs.push_back(cluster.submit(Request::cumsum(x, tile)));
    futs.push_back(cluster.submit(Request::cumsum(x, tile, true)));
  }
  cluster.shutdown(ShutdownMode::Drain);  // must return despite the hangs
  EXPECT_TRUE(cluster.stopped());
  std::size_t ok = 0, failed = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const auto r = f.get();
    ASSERT_TRUE(r.status == Status::Ok || r.status == Status::Failed);
    (r.ok() ? ok : failed)++;
  }
  EXPECT_GT(ok, 0u) << "the healthy device stopped serving";
  EXPECT_GT(failed, 0u) << "the hanging device never surfaced a failure";
  EXPECT_GT(cluster.device(0).device_stats().op_failures, 0u);
  EXPECT_EQ(cluster.device(1).device_stats().op_failures, 0u);
}

TEST(Chaos, ClusterQuarantinesDeadDeviceAndResumesFromTileCheckpoints) {
  using namespace ascan::serve;
  // The acceptance scenario of the device-health tentpole: a device serves
  // traffic normally, then dies mid-run and stays dead (persistent fault
  // from launch ordinal 2 onward). The cluster must degrade -> quarantine
  // it, fail its in-flight batches over to siblings — resuming from the
  // tile checkpoints stashed at the fault — and complete *every* submitted
  // request bit-exact with the unfaulted single-device run.
  constexpr std::size_t kReqs = 32;
  constexpr std::size_t kN = 2048;  // 8 tile columns of 16x16 per row
  ascan::Session ref(chaos_cfg());
  std::vector<std::vector<half>> inputs;
  std::vector<std::vector<half>> want;
  for (std::size_t i = 0; i < kReqs; ++i) {
    auto x = testing::exact_scan_workload(kN, 900 + i);
    want.push_back(ref.cumsum_batched(x, 1, kN, 16).values);
    inputs.push_back(std::move(x));
  }

  // Every request shares one GroupKey; the device we kill is its affinity
  // target, so the whole backlog sits on the dying device when it dies.
  const int bad = static_cast<int>(
      group_key_hash(group_key(Request::cumsum(inputs[0], 16))) % 4);
  std::vector<sim::FaultPlan> plans(4);
  plans[static_cast<std::size_t>(bad)] = sim::FaultPlan::dead_from_launch(2);

  HealthPolicy hp;
  hp.window = 4;
  hp.min_samples = 1;           // degrade on the 1st fault, quarantine on 2nd
  hp.quarantine_hold_s = 3600;  // never readmitted within the test
  Cluster cluster({.policy = {.max_batch = 4, .max_wait_s = 100e-6},
                   .num_devices = 4,
                   .max_queue = 512,
                   .machine = chaos_cfg(),
                   .retry = {.max_attempts = 2, .backoff_s = 1e-6},
                   .device_fault_plans = plans,
                   .work_stealing = false,
                   .spill_margin = 1 << 20,  // pin the key to `bad`
                   .health = hp});
  std::vector<std::future<Response>> futs;
  futs.reserve(kReqs);
  for (const auto& x : inputs) {
    futs.push_back(
        cluster.submit(Request::cumsum(x, 16, false, Priority::Bulk)));
  }
  std::size_t resumed_elsewhere = 0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto r = futs[i].get();
    ASSERT_EQ(r.status, Status::Ok) << "case " << i << ": " << r.reason;
    ASSERT_EQ(r.values_f16.size(), want[i].size()) << "case " << i;
    for (std::size_t j = 0; j < want[i].size(); ++j) {
      ASSERT_EQ(static_cast<float>(r.values_f16[j]),
                static_cast<float>(want[i][j]))
          << "case " << i << " index " << j << " device " << r.device
          << " resumed_from " << r.resumed_from;
    }
    if (r.resumed_from >= 0) {
      // Failover provenance: the launch faulted on the dead device and the
      // request finished on a different (healthy) one.
      EXPECT_EQ(r.resumed_from, bad) << "case " << i;
      EXPECT_NE(r.device, bad) << "case " << i;
      ++resumed_elsewhere;
    }
  }
  cluster.shutdown(ShutdownMode::Drain);
  EXPECT_EQ(cluster.device_health(bad), HealthState::Quarantined);
  for (int d = 0; d < 4; ++d) {
    if (d != bad) EXPECT_EQ(cluster.device_health(d), HealthState::Healthy);
  }
  const auto m = cluster.metrics();
  EXPECT_EQ(m.admitted, m.completed);  // every admitted request finished Ok
  EXPECT_EQ(m.failed + m.cancelled, 0u);
  EXPECT_GE(m.failovers, 1u);
  EXPECT_GE(m.tiles_resumed, 1u)
      << "no in-flight batch resumed from a tile checkpoint";
  EXPECT_GE(resumed_elsewhere, 1u);
  EXPECT_GE(m.health_transitions, 2u);  // Healthy -> Degraded -> Quarantined
  EXPECT_EQ(m.shed_brownout, 0u);       // 3/4 healthy is above the floor
  RecordProperty("failovers", static_cast<int>(m.failovers));
  RecordProperty("tiles_resumed", static_cast<int>(m.tiles_resumed));
}

TEST(Chaos, WatchdogDeadlineScalesWithLaunchShape) {
  // The watchdog deadline must grow with the launch's own serial-work
  // estimate: a flat deadline tuned for small launches would misclassify a
  // giant-but-healthy launch as a hang. With scaling disabled the big
  // launch trips the flat deadline mid-run; with the default scale the
  // same launch completes bit-exact.
  const auto x = testing::exact_scan_workload(1 << 20, 33);
  ascan::Session probe(chaos_cfg());
  const auto ref = probe.cumsum(x);
  ASSERT_GT(ref.report.time_s, 0.0);

  auto cfg = chaos_cfg();
  cfg.watchdog_s = ref.report.time_s / 8;  // below the launch's own runtime
  cfg.watchdog_scale = 0;                  // flat deadline: misclassified
  ascan::Session flat(cfg);
  EXPECT_THROW(flat.cumsum(x), sim::TimeoutError);

  cfg.watchdog_scale = 8.0;  // deadline grows with the launch shape
  ascan::Session scaled(cfg);
  const auto got = scaled.cumsum(x);
  EXPECT_EQ(got.values, ref.values);
  EXPECT_EQ(got.report.hangs, 0u);
  EXPECT_EQ(got.report.retries, 0u);
}

TEST(Chaos, ThrottledStragglersOnlyStretchTime) {
  const auto x = testing::exact_scan_workload(2048, 15);
  ascan::Session clean(chaos_cfg());
  const auto ref = clean.cumsum(x);

  ascan::Session s(chaos_cfg());
  sim::FaultPlan p;
  p.seed = 5;
  p.throttle_rate = 1.0;  // every sub-core runs at half clock
  p.throttle_factor = 0.5;
  s.set_fault_plan(p);
  const auto got = s.cumsum(x);
  EXPECT_EQ(got.values, ref.values);
  EXPECT_GT(got.report.throttled_subcores, 0u);
  EXPECT_GT(got.report.time_s, ref.report.time_s);
  EXPECT_EQ(got.report.retries, 0u);
}

TEST(Chaos, DeviceDiesWhileHoldingPreemptionParkedBatchFailsOverBitExact) {
  using namespace ascan::serve;
  // Cross-test of the SLO-preemption tentpole against the device-health
  // machinery: a bulk launch is preempted at a tile boundary (parked as a
  // host-side checkpoint in the device's own queue), then the device dies
  // serving the interactive traffic that caused the park and is
  // quarantined while still *holding* the parked batch. The quarantine
  // drain must carry the checkpoint to a healthy sibling, which resumes
  // from the parked tile — not from scratch — and completes bit-exact.
  constexpr std::size_t kN = 8192;  // tile 16 -> 32 tile boundaries
  ascan::Session ref(chaos_cfg());
  const auto x = testing::exact_scan_workload(kN, 401);
  const auto want = ref.cumsum_batched(x, 1, kN, 16).values;

  const int bad = static_cast<int>(
      group_key_hash(group_key(Request::cumsum(x, 16))) % 2);
  // Two interactive requests whose GroupKeys also hash to the dying
  // device (distinct keys -> two separate launches -> two faults ->
  // quarantine). Length is part of the GroupKey, so scan lengths until
  // the affinity hash matches.
  const auto hi_len = [&](std::size_t from) {
    for (std::size_t n = from;; n += 16) {
      const auto k = group_key(Request::cumsum(testing::exact_scan_workload(n), 64));
      if (static_cast<int>(group_key_hash(k) % 2) == bad) return n;
    }
  };
  const std::size_t n1 = hi_len(256), n2 = hi_len(n1 + 16);

  std::vector<sim::FaultPlan> plans(2);
  // Launch 0 is the bulk batch (parks cleanly); everything after it
  // faults, so the interactive launches kill the device while the parked
  // checkpoint is still queued on it.
  plans[static_cast<std::size_t>(bad)] = sim::FaultPlan::dead_from_launch(1);
  HealthPolicy hp;
  hp.window = 4;
  hp.min_samples = 1;
  hp.quarantine_hold_s = 3600;
  Cluster cluster({.policy = {.max_batch = 2,
                              .max_wait_s = 50e-6,
                              .aging_factor = 1e9,
                              .preempt_slack_s = 1e9},
                   .num_devices = 2,
                   .machine = chaos_cfg(),
                   .retry = {.max_attempts = 2, .backoff_s = 1e-6},
                   .device_fault_plans = plans,
                   .work_stealing = false,
                   .spill_margin = 1 << 20,  // placement is pure affinity
                   .health = hp});

  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  Request bulk = Request::cumsum(x, 16, false, Priority::Bulk);
  bulk.on_chunk = [&](const StreamChunk&) {
    std::lock_guard<std::mutex> lk(mu);
    started = true;
    cv.notify_all();
  };
  auto bulk_fut = cluster.submit(std::move(bulk));
  {
    std::unique_lock<std::mutex> lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(10),
                            [&] { return started; }))
        << "bulk launch never started on the affinity device";
  }
  auto hi1 = cluster.submit(
      Request::cumsum(testing::exact_scan_workload(n1), 64)
          .with_slo(SloTier::Gold, 10e-3));
  auto hi2 = cluster.submit(
      Request::cumsum(testing::exact_scan_workload(n2), 64)
          .with_slo(SloTier::Gold, 10e-3));

  const auto r = bulk_fut.get();
  ASSERT_EQ(r.status, Status::Ok) << r.reason;
  // The interactive launches died with the device; they may fail over or
  // fail typed, but must resolve either way.
  for (auto* f : {&hi1, &hi2}) {
    const auto hr = f->get();
    ASSERT_TRUE(hr.status == Status::Ok || hr.status == Status::Failed);
  }
  cluster.shutdown(ShutdownMode::Drain);

  EXPECT_EQ(cluster.device_health(bad), HealthState::Quarantined);
  EXPECT_GE(r.preemptions, 1u) << "bulk was never parked";
  EXPECT_EQ(r.resumed_from, bad)
      << "parked batch did not fail over from the dead device";
  EXPECT_NE(r.device, bad);
  ASSERT_EQ(r.values_f16.size(), want.size());
  for (std::size_t j = 0; j < want.size(); ++j) {
    ASSERT_EQ(static_cast<float>(r.values_f16[j]),
              static_cast<float>(want[j]))
        << "index " << j << " (resumed_from " << r.resumed_from << ")";
  }
  const auto m = cluster.metrics();
  EXPECT_GE(m.preemptions, 1u);
  EXPECT_GE(m.tiles_resumed, 1u)
      << "the parked checkpoint was recomputed from scratch";
  EXPECT_GE(m.preempted_tiles_resumed, 1u);
}

}  // namespace
}  // namespace ascend
