// Functional tests of the segmented scan operator.
#include <gtest/gtest.h>

#include "kernels/segmented_scan.hpp"
#include "test_helpers.hpp"

namespace ascend::kernels {
namespace {

using acc::Device;

std::vector<float> ref_segmented_scan(std::span<const half> x,
                                      std::span<const std::int8_t> flags) {
  std::vector<float> out(x.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (flags[i] != 0) acc = 0.0;
    acc += double(float(x[i]));
    out[i] = static_cast<float>(acc);
  }
  return out;
}

class SegScan : public ::testing::TestWithParam<
                    std::tuple<std::size_t, double, int>> {};

TEST_P(SegScan, MatchesReference) {
  const auto [n, start_density, blocks] = GetParam();
  Device dev;
  Rng rng(n * 17 + static_cast<std::size_t>(start_density * 100));
  std::vector<half> x(n);
  for (auto& v : x) v = half(rng.bernoulli(0.05) ? 1.0f : 0.0f);
  auto f = rng.mask_i8(n, start_density);
  auto gx = dev.upload(x);
  auto gf = dev.upload(f);
  auto gy = dev.alloc<float>(n, -1.0f);
  segmented_scan(dev, gx.tensor(), gf.tensor(), gy.tensor(), n,
                 {.blocks = blocks});
  const auto want = ref_segmented_scan(std::span<const half>(x),
                                       std::span<const std::int8_t>(f));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(gy[i], want[i]) << "n=" << n << " d=" << start_density
                              << " blocks=" << blocks << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SegScan,
    ::testing::Combine(::testing::Values<std::size_t>(1, 100, 4096, 4097,
                                                      100000),
                       ::testing::Values(0.0, 0.001, 0.1, 1.0),
                       ::testing::Values(1, 20)),
    [](const auto& ti) {
      return "n" + std::to_string(std::get<0>(ti.param)) + "_d" +
             std::to_string(
                 static_cast<int>(std::get<1>(ti.param) * 1000)) +
             "_b" + std::to_string(std::get<2>(ti.param));
    });

TEST(SegScanEdge, SingleSegmentEqualsPlainScan) {
  const std::size_t n = 30000;
  Device dev;
  Rng rng(4);
  std::vector<half> x(n);
  for (auto& v : x) v = half(rng.bernoulli(0.1) ? 1.0f : 0.0f);
  std::vector<std::int8_t> f(n, 0);  // no explicit starts
  auto gx = dev.upload(x);
  auto gf = dev.upload(f);
  auto gy = dev.alloc<float>(n);
  segmented_scan(dev, gx.tensor(), gf.tensor(), gy.tensor(), n, {});
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; i += 37) {
    // recompute reference lazily
  }
  double racc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    racc += double(float(x[i]));
    if (i % 37 == 0 || i == n - 1) ASSERT_EQ(gy[i], racc) << i;
  }
  (void)acc;
}

TEST(SegScanEdge, EveryElementItsOwnSegment) {
  // Integer-valued data: the cs - base formulation is exact (general
  // floats would show fp32 cancellation noise, as on real hardware).
  const std::size_t n = 10000;
  Device dev;
  Rng rng(5);
  std::vector<half> x(n);
  for (auto& v : x) {
    v = half(static_cast<float>(rng.next_below(7)) - 3.0f);
  }
  std::vector<std::int8_t> f(n, 1);
  auto gx = dev.upload(x);
  auto gf = dev.upload(f);
  auto gy = dev.alloc<float>(n);
  segmented_scan(dev, gx.tensor(), gf.tensor(), gy.tensor(), n, {});
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(gy[i], float(x[i])) << i;
  }
}

TEST(SegScanEdge, SegmentSpanningManyChunksAndWorkers) {
  // One start near the beginning; the segment spans every chunk boundary
  // and every worker boundary.
  const std::size_t n = 200000;
  Device dev;
  std::vector<half> x(n, half(0.0f));
  std::vector<std::int8_t> f(n, 0);
  f[3] = 1;
  for (std::size_t i = 0; i < n; i += 1000) x[i] = half(1.0f);
  auto gx = dev.upload(x);
  auto gf = dev.upload(f);
  auto gy = dev.alloc<float>(n);
  segmented_scan(dev, gx.tensor(), gf.tensor(), gy.tensor(), n, {});
  // y[n-1] = number of 1.0 marks at positions >= 3... all multiples of
  // 1000 except position 0 restart? position 0 starts segment A (implicit),
  // position 3 starts segment B which runs to the end.
  double want = 0.0;
  for (std::size_t i = 3; i < n; ++i) want += double(float(x[i]));
  ASSERT_EQ(gy[n - 1], want);
  ASSERT_EQ(gy[2], 1.0f);  // implicit first segment: x[0] = 1
}

}  // namespace
}  // namespace ascend::kernels
