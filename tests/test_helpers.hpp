// Shared helpers for kernel tests: workload builders and fp16 comparison
// with rounding-aware tolerances.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/half.hpp"
#include "common/rng.hpp"

namespace ascend::testing {

/// 0/1-valued fp16 data whose inclusive scan stays integral and <= 2047,
/// so every fp16 rounding step in any kernel is exact and device results
/// must equal the reference bit-for-bit.
inline std::vector<half> exact_scan_workload(std::size_t n,
                                             std::uint64_t seed = 1) {
  Rng rng(seed);
  const double p =
      n == 0 ? 0.0 : std::min(0.5, 1500.0 / static_cast<double>(n));
  std::vector<half> x(n);
  for (auto& v : x) v = half(rng.bernoulli(p) ? 1.0f : 0.0f);
  return x;
}

/// Zero-mean fp16 noise: prefix sums random-walk around 0 (magnitude
/// ~ sqrt(n)), avoiding fp16 range overflow for large n.
inline std::vector<half> noise_workload(std::size_t n,
                                        std::uint64_t seed = 2) {
  Rng rng(seed);
  std::vector<half> x(n);
  for (auto& v : x) v = half(static_cast<float>(rng.uniform(-1.0, 1.0)));
  return x;
}

/// Asserts |a-b| within `ulps` fp16 units-in-last-place of the larger
/// magnitude, accumulated over `steps` sequential roundings.
inline void expect_f16_near(float device, double reference, double max_abs,
                            std::size_t steps, std::size_t i) {
  // ulp of fp16 at magnitude m is about m * 2^-10.
  const double ulp = std::max(std::abs(max_abs), 1.0) * 0x1.0p-10;
  const double tol = ulp * (2.0 + static_cast<double>(steps));
  EXPECT_NEAR(static_cast<double>(device), reference, tol) << "index " << i;
}

}  // namespace ascend::testing
