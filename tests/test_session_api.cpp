// Integration tests of the public ascan::Session API — every operator a
// downstream user can reach, exercised end-to-end through host vectors.
#include <gtest/gtest.h>

#include "core/ascan.hpp"
#include "kernels/reference.hpp"
#include "test_helpers.hpp"

namespace ascan {
namespace {

using ascend::Rng;

TEST(Session, CumsumMcscan) {
  Session s;
  auto x = ascend::testing::exact_scan_workload(50000);
  const auto r = s.cumsum(x);
  const auto want =
      ascend::ref::inclusive_scan<half, float>(std::span<const half>(x));
  ASSERT_EQ(r.values.size(), x.size());
  for (std::size_t i = 0; i < x.size(); i += 11) {
    ASSERT_EQ(r.values[i], want[i]) << i;
  }
  EXPECT_GT(r.report.time_s, 0.0);
  EXPECT_EQ(s.total().launches, 1);
}

TEST(Session, CumsumExclusive) {
  Session s;
  auto x = ascend::testing::exact_scan_workload(10000, 3);
  const auto r = s.cumsum(x, {.exclusive = true});
  const auto want =
      ascend::ref::exclusive_scan<half, float>(std::span<const half>(x));
  for (std::size_t i = 0; i < x.size(); ++i) ASSERT_EQ(r.values[i], want[i]);
}

TEST(Session, CumsumF16Algorithms) {
  Session s;
  auto x = ascend::testing::exact_scan_workload(30000, 5);
  const auto want =
      ascend::ref::inclusive_scan<half, half>(std::span<const half>(x));
  for (auto algo :
       {ScanAlgo::ScanU, ScanAlgo::ScanUL1, ScanAlgo::VectorBaseline}) {
    const auto r = s.cumsum_f16(x, {.algo = algo});
    for (std::size_t i = 0; i < x.size(); i += 7) {
      ASSERT_EQ(float(r.values[i]), float(want[i]))
          << static_cast<int>(algo) << " @" << i;
    }
  }
  EXPECT_THROW(s.cumsum_f16(x, {.algo = ScanAlgo::MCScan}), ascend::Error);
}

TEST(Session, CumsumI8) {
  Session s;
  Rng rng(1);
  auto mask = rng.mask_i8(25000, 0.4);
  const auto r = s.cumsum_i8(mask);
  const auto want = ascend::ref::inclusive_scan<std::int8_t, std::int32_t>(
      std::span<const std::int8_t>(mask));
  for (std::size_t i = 0; i < mask.size(); i += 3) {
    ASSERT_EQ(r.values[i], want[i]) << i;
  }
}

TEST(Session, CumsumBatchedBothSchedules) {
  Session s;
  const std::size_t batch = 6, len = 5000;
  Rng rng(2);
  std::vector<half> x(batch * len);
  for (auto& v : x) v = half(rng.bernoulli(0.1) ? 1.0f : 0.0f);
  const auto want = ascend::ref::batched_inclusive_scan<half, half>(
      std::span<const half>(x), batch, len);
  for (bool ul1 : {false, true}) {
    const auto r = s.cumsum_batched(x, batch, len, 128, ul1);
    for (std::size_t i = 0; i < x.size(); i += 13) {
      ASSERT_EQ(float(r.values[i]), float(want[i])) << ul1 << " @" << i;
    }
  }
}

TEST(Session, CloneIsIdentityAndFast) {
  Session s;
  Rng rng(3);
  auto x = rng.uniform_f16(1 << 22, -5.0, 5.0);
  const auto r = s.clone(x);
  for (std::size_t i = 0; i < x.size(); i += 101) {
    ASSERT_EQ(r.values[i].bits(), x[i].bits());
  }
  ASSERT_EQ(r.values.back().bits(), x.back().bits());
  // At bandwidth-bound sizes the copy approaches the 800 GB/s ceiling
  // (Fig. 8's torch.clone yardstick); small sizes are launch-bound.
  EXPECT_GT(r.report.bandwidth(x.size() * 4), 500e9);
  EXPECT_LT(r.report.bandwidth(x.size() * 4), 800e9);
}

TEST(Session, SplitAndMaskedSelect) {
  Session s;
  Rng rng(4);
  auto x = rng.uniform_f16(40000, -1.0, 1.0);
  auto mask = rng.mask_i8(x.size(), 0.3);
  const auto sp = s.split(x, mask);
  const auto want = ascend::ref::split(std::span<const half>(x),
                                       std::span<const std::int8_t>(mask));
  ASSERT_EQ(sp.num_true, want.num_true);
  for (std::size_t i = 0; i < x.size(); i += 17) {
    ASSERT_EQ(sp.values[i].bits(), want.values[i].bits());
    ASSERT_EQ(sp.indices[i], want.indices[i]);
  }
  const auto ms = s.masked_select(x, mask);
  ASSERT_EQ(ms.values.size(), want.num_true);
  const auto ms_base = s.masked_select(x, mask, 128, /*baseline=*/true);
  ASSERT_EQ(ms_base.values.size(), want.num_true);
  for (std::size_t i = 0; i < ms.values.size(); ++i) {
    ASSERT_EQ(ms.values[i].bits(), ms_base.values[i].bits());
  }
}

TEST(Session, SortBothAlgorithmsBothOrders) {
  Session s;
  Rng rng(5);
  auto x = rng.uniform_f16(30000, -10.0, 10.0);
  for (bool desc : {false, true}) {
    const auto want = ascend::ref::stable_sort(std::span<const half>(x), desc);
    for (auto algo : {SortAlgo::Radix, SortAlgo::Baseline}) {
      const auto r = s.sort(x, desc, algo);
      for (std::size_t i = 0; i < x.size(); i += 23) {
        ASSERT_EQ(r.values[i].bits(), want.values[i].bits());
        ASSERT_EQ(r.indices[i], want.indices[i]);
      }
    }
  }
}

TEST(Session, TopK) {
  Session s;
  Rng rng(6);
  auto x = rng.uniform_f16(20000, 0.0, 1.0);
  const auto want = ascend::ref::topk(std::span<const half>(x), 100);
  for (bool baseline : {false, true}) {
    const auto r = s.topk(x, 100, baseline);
    for (std::size_t i = 0; i < 100; ++i) {
      ASSERT_EQ(r.values[i].bits(), want.values[i].bits()) << baseline << i;
      ASSERT_EQ(r.indices[i], want.indices[i]) << baseline << i;
    }
  }
}

TEST(Session, TopPSampling) {
  Session s;
  Rng rng(7);
  auto probs = rng.token_probs_f16(8192);
  const auto r = s.top_p_sample(probs, 0.9, 0.0);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < probs.size(); ++i) {
    if (float(probs[i]) > float(probs[argmax])) argmax = i;
  }
  EXPECT_EQ(r.index, static_cast<std::int32_t>(argmax));
}

TEST(Session, Multinomial) {
  Session s;
  std::vector<half> w(512, half(0.0f));
  w[17] = half(1.0f);
  EXPECT_EQ(s.multinomial(w, 0.42).index, 17);
}

TEST(Session, SegmentedCumsum) {
  Session s;
  std::vector<half> x = {half(1.0f), half(2.0f), half(3.0f), half(4.0f)};
  std::vector<std::int8_t> f = {0, 0, 1, 0};
  const auto r = s.segmented_cumsum(x, f);
  const float want[] = {1, 3, 3, 7};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(r.values[static_cast<std::size_t>(i)], want[i]) << i;
  }
  EXPECT_THROW(s.segmented_cumsum(x, {}), ascend::Error);
}

TEST(Session, ReduceBothPaths) {
  Session s;
  std::vector<half> x(10000, half(1.0f));
  EXPECT_EQ(s.reduce(x, true).values[0], 10000.0f);
  EXPECT_EQ(s.reduce(x, false).values[0], 10000.0f);
}

TEST(Session, TopPSampleBatch) {
  Session s;
  Rng rng(19);
  const std::size_t batch = 4, vocab = 4096;
  std::vector<half> probs;
  probs.reserve(batch * vocab);
  for (std::size_t b = 0; b < batch; ++b) {
    auto row = rng.token_probs_f16(vocab);
    probs.insert(probs.end(), row.begin(), row.end());
  }
  const auto r = s.top_p_sample_batch(probs, batch, vocab, 0.9,
                                      {0.0, 0.0, 0.0, 0.0});
  ASSERT_EQ(r.tokens.size(), batch);
  for (std::size_t b = 0; b < batch; ++b) {
    // u = 0 -> the row argmax.
    std::size_t argmax = 0;
    for (std::size_t i = 1; i < vocab; ++i) {
      if (float(probs[b * vocab + i]) > float(probs[b * vocab + argmax])) {
        argmax = i;
      }
    }
    EXPECT_EQ(r.tokens[b], static_cast<std::int32_t>(argmax)) << b;
  }
  EXPECT_GT(r.report.launches, 4);
  EXPECT_THROW(s.top_p_sample_batch(probs, batch, vocab, 0.9, {0.5}),
               ascend::Error);
}

TEST(Session, TotalAccumulates) {
  Session s;
  auto x = ascend::testing::exact_scan_workload(5000);
  s.cumsum(x);
  s.clone(x);
  EXPECT_GE(s.total().launches, 2);
  EXPECT_GT(s.total().time_s, 0.0);
}

TEST(Session, SingleCoreConfig) {
  Session s(MachineConfig::single_core());
  auto x = ascend::testing::exact_scan_workload(2000);
  const auto r = s.cumsum(x, {.blocks = 1});
  EXPECT_EQ(r.values.size(), x.size());
}

}  // namespace
}  // namespace ascan
