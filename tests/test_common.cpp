// Tests for the common substrate: checks, math helpers, RNG, table printer.
#include <sstream>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/dtype.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace ascend {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    ASCAN_CHECK(false, "value=" << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value=42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { ASCAN_CHECK(1 + 1 == 2); }

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 128), 1);
  EXPECT_EQ(ceil_div<std::size_t>(0, 8), 0u);
}

TEST(MathUtil, AlignUp) {
  EXPECT_EQ(align_up(13, 8), 16);
  EXPECT_EQ(align_up(16, 8), 16);
  EXPECT_EQ(align_up(0, 8), 0);
}

TEST(MathUtil, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_EQ(log2_floor(1), 0);
  EXPECT_EQ(log2_floor(1023), 9);
  EXPECT_EQ(log2_floor(1024), 10);
}

TEST(DType, SizesAndNames) {
  EXPECT_EQ(dtype_size(DType::f16), 2u);
  EXPECT_EQ(dtype_size(DType::i8), 1u);
  EXPECT_EQ(dtype_size(DType::i32), 4u);
  EXPECT_EQ(dtype_name(DType::f16), "f16");
  EXPECT_EQ(dtype_of_v<half>, DType::f16);
  EXPECT_EQ(dtype_of_v<std::int8_t>, DType::i8);
  static_assert(std::is_same_v<cube_accum_t<half>, float>);
  static_assert(std::is_same_v<cube_accum_t<std::int8_t>, std::int32_t>);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NextBelowUnbiasedSmoke) {
  Rng r(11);
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[r.next_below(4)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, MaskDensity) {
  Rng r(5);
  auto m = r.mask_i8(100000, 0.3);
  std::size_t ones = 0;
  for (auto v : m) {
    EXPECT_TRUE(v == 0 || v == 1);
    ones += static_cast<std::size_t>(v);
  }
  EXPECT_NEAR(static_cast<double>(ones) / 100000.0, 0.3, 0.02);
}

TEST(Rng, TokenProbsNormalised) {
  Rng r(9);
  auto p = r.token_probs_f16(4096);
  double total = 0;
  for (auto v : p) {
    EXPECT_GE(float(v), 0.0f);
    total += float(v);
  }
  EXPECT_NEAR(total, 1.0, 0.05);  // fp16 rounding tolerance
}

TEST(Table, FormatsAlignedRows) {
  Table t({"n", "time", "label"});
  t.add_row({std::int64_t{1024}, 3.14159, std::string("scanU")});
  t.add_row({std::int64_t{65536}, 2.0, std::string("x")});
  std::ostringstream os;
  t.print(os, 3);
  const std::string s = os.str();
  EXPECT_NE(s.find("scanU"), std::string::npos);
  EXPECT_NE(s.find("65536"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), Error);
}

TEST(Format, SiAndBytes) {
  EXPECT_EQ(format_si(1500.0, "B/s"), "1.5 KB/s");
  EXPECT_EQ(format_bytes(2048), "2 KiB");
  EXPECT_EQ(format_time_s(2.5e-6), "2.5 us");
  EXPECT_EQ(format_time_s(0.25), "250 ms");
}

}  // namespace
}  // namespace ascend
